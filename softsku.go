package softsku

import (
	"fmt"
	"io"

	"softsku/internal/cache"
	"softsku/internal/chaos"
	"softsku/internal/core"
	"softsku/internal/decision"
	"softsku/internal/emon"
	"softsku/internal/knob"
	"softsku/internal/loadgen"
	"softsku/internal/mem"
	"softsku/internal/platform"
	"softsku/internal/sim"
	"softsku/internal/telemetry"
	"softsku/internal/workload"
)

// Re-exported building blocks. Aliases keep the public API thin while
// the implementation lives in focused internal packages.
type (
	// SKU describes one hardware platform (Table 1).
	SKU = platform.SKU
	// Server is a booted, knob-configured instance of a SKU.
	Server = platform.Server
	// Config is a complete soft-SKU knob assignment.
	Config = knob.Config
	// Service is a synthetic microservice model (§2.1).
	Service = workload.Profile
	// Machine simulates one server running one service.
	Machine = sim.Machine
	// Operating is a machine's steady-state operating point.
	Operating = sim.Operating
	// TuneInput is µSKU's input file (§4).
	TuneInput = core.Input
	// TuneResult is a complete µSKU run.
	TuneResult = core.Result
	// Tool is a µSKU instance bound to one service/platform pair.
	Tool = core.Tool
	// Tracer records a hierarchical span trace of tuning runs
	// (Tool.SetTracer), exportable as JSON or Chrome trace_event.
	Tracer = telemetry.Tracer
	// TraceSpan is one timed, annotated region of a trace.
	TraceSpan = telemetry.Span
	// MetricsRegistry holds counters/gauges/histograms with a
	// Prometheus text exporter.
	MetricsRegistry = telemetry.Registry
	// ChaosInjector is the fault-injection interface the platform,
	// A/B-test, fleet, and load layers consult (Tool.SetChaos).
	ChaosInjector = chaos.Injector
	// ChaosEngine is the seeded deterministic injector: the same seed
	// always reproduces the same fault schedule.
	ChaosEngine = chaos.Engine
	// ChaosConfig sets per-fault-class injection rates.
	ChaosConfig = chaos.Config
	// DecisionLedger is the append-only decision-trace flight recorder
	// a Tool (Tool.SetRecorder) and fleet rollouts write structured,
	// causally linked decision events into; exportable as JSONL and
	// servable live at /debug/decisions.
	DecisionLedger = decision.Ledger
	// DecisionEvent is one recorded decision. Events are built by the
	// decision package's constructors, never by hand (enforced by
	// softskulint's decisionevent analyzer).
	DecisionEvent = decision.Event
	// DecisionObjective is the counterfactual policy a recorded ledger
	// is replayed under (metric, guardrail, confidence).
	DecisionObjective = decision.Objective
	// DecisionReport is the outcome of one counterfactual replay:
	// re-judged trials, per-group winners, and every divergence.
	DecisionReport = decision.Report
)

// ChaosDisabled is the no-op injector (equivalent to a nil injector).
var ChaosDisabled = chaos.Disabled

// NewChaos builds a deterministic fault injector from a seed and
// per-class rates.
func NewChaos(seed uint64, cfg ChaosConfig) *ChaosEngine { return chaos.New(seed, cfg) }

// DefaultChaosConfig returns the standard production fault mix.
func DefaultChaosConfig() ChaosConfig { return chaos.DefaultConfig() }

// IsChaosFault reports whether an error is an injected (retryable)
// fault rather than a permanent validation failure.
func IsChaosFault(err error) bool { return chaos.IsFault(err) }

// NewTracer returns an empty span tracer for Tool.SetTracer.
func NewTracer() *Tracer { return telemetry.NewTracer() }

// NewDecisionLedger returns an empty decision ledger for
// Tool.SetRecorder. The same Input and seed always produce a
// byte-identical JSONL export at any worker count.
func NewDecisionLedger() *DecisionLedger { return decision.NewLedger() }

// ReadDecisionLedger parses a JSONL ledger (as written by
// DecisionLedger.WriteJSONL or musku -decisions-out), validating
// sequence numbers and causal links.
func ReadDecisionLedger(r io.Reader) ([]DecisionEvent, error) { return decision.ReadJSONL(r) }

// ReplayDecisions re-walks a recorded ledger under a counterfactual
// objective — a different metric, guardrail, or confidence — and
// reports every decision that would have gone the other way, using
// only the evidence moments recorded per trial (no simulation).
func ReplayDecisions(events []DecisionEvent, obj DecisionObjective) (*DecisionReport, error) {
	return decision.Replay(events, obj)
}

// WriteDecisionTree renders a ledger as an indented causal tree, the
// skutrace tree view.
func WriteDecisionTree(w io.Writer, events []DecisionEvent) error {
	return decision.WriteTree(w, events)
}

// SetCharacterizationCache enables or disables the process-wide
// content-addressed characterization cache (DESIGN.md §11) and returns
// the previous setting. Enabled by default; results are bit-identical
// either way (the cache key covers every input that reaches a
// measurement window), so disabling it — the CLIs' -sim-cache=off —
// only trades speed for an independent re-measurement of every window.
func SetCharacterizationCache(enabled bool) bool {
	return sim.SetCharacterizationCache(enabled)
}

// ResetCharacterizationCache drops every cached characterization
// window, so subsequent runs measure from a cold cache.
func ResetCharacterizationCache() { sim.ResetCharacterizationCache() }

// Metrics returns the process-wide telemetry registry every
// instrumented subsystem (sim engine, A/B tester, tuner, fleet, EMON)
// reports into. Export it with MetricsRegistry.WritePrometheus.
func Metrics() *MetricsRegistry { return telemetry.Default }

// Platform constructors (Table 1).
var (
	Skylake18   = platform.Skylake18
	Skylake20   = platform.Skylake20
	Broadwell16 = platform.Broadwell16
)

// PlatformByName returns one of the three fleet SKUs.
func PlatformByName(name string) (*SKU, error) { return platform.ByName(name) }

// Platforms returns the three fleet SKUs in Table 1 order.
func Platforms() []*SKU { return platform.FleetSKUs() }

// Services returns the seven production microservices in the paper's
// presentation order.
func Services() []*Service { return workload.All() }

// ServiceByName looks up one of the seven microservices.
func ServiceByName(name string) (*Service, error) { return workload.ByName(name) }

// ProductionConfig returns the hand-tuned production configuration for
// a service/platform pair (§6.2).
func ProductionConfig(sku *SKU, svc *Service) Config { return sim.ProductionConfig(sku, svc) }

// StockConfig returns the off-the-shelf configuration after a fresh
// server re-install (§6.2).
func StockConfig(sku *SKU) Config { return sim.StockConfig(sku) }

// NewServer boots a server of the given SKU with the configuration.
func NewServer(sku *SKU, cfg Config) (*Server, error) { return platform.NewServer(sku, cfg) }

// NewMachine builds the simulator for a server running a service.
func NewMachine(srv *Server, svc *Service, seed uint64) (*Machine, error) {
	return sim.NewMachine(srv, workload.ForPlatform(svc, srv.SKU().Name), seed)
}

// Characterization is the §2-style profile of one microservice at its
// QoS-limited peak: the counters of Figs 2-12 for one service.
type Characterization struct {
	Service  string
	Platform string

	// Architectural (EMON) view.
	Counters emon.Counters
	TopDown  struct{ Retiring, FrontEnd, BadSpec, BackEnd float64 }

	// System-level view at the searched peak load.
	QPS            float64
	MeanLatencySec float64
	P99LatencySec  float64
	Util           float64
	UserUtil       float64
	KernelUtil     float64
	RunningFrac    float64
	QueueFrac      float64
	SchedFrac      float64
	IOFrac         float64
	CtxSwitchRate  float64 // per second per busy core
}

// String renders the characterization compactly.
func (c Characterization) String() string {
	return fmt.Sprintf(
		"%s on %s: IPC=%.2f MIPS=%.0f QPS=%.0f util=%.0f%% lat(mean/p99)=%.3g/%.3gs\n"+
			"  topdown: retiring=%.0f%% frontend=%.0f%% badspec=%.0f%% backend=%.0f%%\n"+
			"  MPKI: L1{c=%.1f d=%.1f} L2{c=%.1f d=%.1f} LLC{c=%.2f d=%.2f} ITLB=%.2f DTLB=%.2f/%.2f\n"+
			"  memory: %.1f GB/s @ %.0f ns; request: run=%.0f%% queue=%.0f%% sched=%.0f%% io=%.0f%%; ctx=%.0f/s/core",
		c.Service, c.Platform, c.Counters.IPC, c.Counters.MIPS, c.QPS, c.Util*100,
		c.MeanLatencySec, c.P99LatencySec,
		c.TopDown.Retiring*100, c.TopDown.FrontEnd*100, c.TopDown.BadSpec*100, c.TopDown.BackEnd*100,
		c.Counters.L1CodeMPKI, c.Counters.L1DataMPKI, c.Counters.L2CodeMPKI, c.Counters.L2DataMPKI,
		c.Counters.LLCCodeMPKI, c.Counters.LLCDataMPKI,
		c.Counters.ITLBMPKI, c.Counters.DTLBLoadMPKI, c.Counters.DTLBStoreMPKI,
		c.Counters.MemBWGBs, c.Counters.MemLatencyNS,
		c.RunningFrac*100, c.QueueFrac*100, c.SchedFrac*100, c.IOFrac*100, c.CtxSwitchRate)
}

// Option configures characterization runs.
type Option func(*charOpts)

type charOpts struct {
	seed     uint64
	platform string
	config   *Config
}

// Seed sets the workload seed (default 1).
func Seed(s uint64) Option { return func(o *charOpts) { o.seed = s } }

// OnPlatform overrides the service's default production platform.
func OnPlatform(name string) Option { return func(o *charOpts) { o.platform = name } }

// WithConfig overrides the hand-tuned production configuration.
func WithConfig(cfg Config) Option { return func(o *charOpts) { o.config = &cfg } }

// Characterize profiles one microservice at its QoS-limited peak on
// production-configured servers, reproducing the paper's §2
// measurements for that service.
func Characterize(service string, opts ...Option) (Characterization, error) {
	o := charOpts{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	base, err := workload.ByName(service)
	if err != nil {
		return Characterization{}, err
	}
	platName := o.platform
	if platName == "" {
		platName = base.Platform
	}
	sku, err := platform.ByName(platName)
	if err != nil {
		return Characterization{}, err
	}
	prof := workload.ForPlatform(base, sku.Name)
	cfg := sim.ProductionConfig(sku, prof)
	if o.config != nil {
		cfg = *o.config
	}
	srv, err := platform.NewServer(sku, cfg)
	if err != nil {
		return Characterization{}, err
	}
	m, err := sim.NewMachine(srv, prof, o.seed)
	if err != nil {
		return Characterization{}, err
	}
	op := m.SolvePeak()
	peak := m.FindPeak(o.seed)

	var c Characterization
	c.Service = prof.Name
	c.Platform = sku.Name
	c.Counters = emon.NewSampler(m, loadgen.Flat(), o.seed).ReadCounters(0)
	c.TopDown.Retiring = op.TopDown.Retiring
	c.TopDown.FrontEnd = op.TopDown.FrontEnd
	c.TopDown.BadSpec = op.TopDown.BadSpec
	c.TopDown.BackEnd = op.TopDown.BackEnd
	r := peak.Result
	c.QPS = r.QPS
	c.MeanLatencySec = r.Latency.Mean()
	c.P99LatencySec = r.Latency.Quantile(0.99)
	c.Util, c.UserUtil, c.KernelUtil = r.Util, r.UserUtil, r.KernelUtil
	c.RunningFrac, c.QueueFrac, c.SchedFrac, c.IOFrac = r.RunFrac, r.QueueFrac, r.SchedFrac, r.IOFrac
	c.CtxSwitchRate = r.CtxSwitchRate
	return c, nil
}

// DefaultTuneInput returns a µSKU input with the prototype's defaults
// for the given target.
func DefaultTuneInput(service, platform string) TuneInput {
	return core.DefaultInput(service, platform)
}

// ParseTuneInput parses µSKU's input-file format (§4).
func ParseTuneInput(text string) (TuneInput, error) { return core.ParseInput(text) }

// NewTool builds a µSKU tool from an input.
func NewTool(in TuneInput) (*Tool, error) { return core.New(in) }

// NewToolForService builds a µSKU tool for a user-defined microservice
// profile — the extension point for tuning services beyond the
// paper's seven.
func NewToolForService(in TuneInput, svc *Service, sku *SKU) (*Tool, error) {
	return core.NewForService(in, svc, sku)
}

// Tune runs µSKU end to end: sweep the design space, compose the soft
// SKU, and validate it against production and stock configurations.
func Tune(in TuneInput) (*TuneResult, error) {
	tool, err := core.New(in)
	if err != nil {
		return nil, err
	}
	return tool.Run()
}

// FormatTuneMap renders a tuning run's design-space map as a table.
func FormatTuneMap(res *TuneResult) string { return core.FormatMap(res) }

// ParallelFor runs fn(i) for every i in [0, n) across a bounded pool
// of workers (workers <= 0: GOMAXPROCS; <= 1: plain serial loop) — the
// deterministic fan-out primitive behind parallel sweeps. Callers must
// keep each fn(i) hermetic and merge results by index, never by
// completion order.
func ParallelFor(workers, n int, fn func(int)) { core.ParallelFor(workers, n, fn) }

// CoResult is one co-location interference measurement (§7 extension).
type CoResult = sim.CoResult

// Colocate measures mutual interference between two services sharing a
// server: the affinity signal a µSKU-aware scheduler would consume
// (§7 "µSKU and co-location").
func Colocate(sku *SKU, a, b *Service, seed uint64) (CoResult, error) {
	return sim.Colocate(sku, a, b, seed)
}

// StressCurve reproduces the Intel MLC-style loaded-latency experiment
// behind Fig 12 for one platform: (bandwidth GB/s, latency ns) points.
func StressCurve(sku *SKU, points int) []mem.Point {
	return mem.NewModel(sku).StressCurve(points)
}

// MemoryPoint is one (bandwidth, latency) sample.
type MemoryPoint = mem.Point

// CacheLevel re-exports hierarchy levels for MPKI queries.
type CacheLevel = cache.Level

// Cache levels.
const (
	L1     = cache.L1
	L2     = cache.L2
	LLC    = cache.LLC
	Memory = cache.Memory
)
