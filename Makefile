GO ?= go

.PHONY: build test check bench fmt chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full health check: gofmt, vet, build, and tests under -race.
check:
	sh scripts/check.sh

# Regenerates every paper table/figure and writes BENCH_telemetry.json
# with ns/op and sim-seconds/wall-second for the tracked benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

fmt:
	gofmt -w .

# Seeded chaos smoke: a short guardrailed tuning run under the default
# injected-fault mix. Must complete and print a composed soft SKU;
# the same -chaos-seed always reproduces the same fault schedule.
chaos:
	$(GO) run ./cmd/musku -service Web -knobs thp -chaos -chaos-seed 7 -guardrail-pct 2 -max-samples 1500 -q
