GO ?= go

.PHONY: build test check bench fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full health check: gofmt, vet, build, and tests under -race.
check:
	sh scripts/check.sh

# Regenerates every paper table/figure and writes BENCH_telemetry.json
# with ns/op and sim-seconds/wall-second for the tracked benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

fmt:
	gofmt -w .
