GO ?= go

.PHONY: build test check bench bench-parallel bench-simcache bench-search bench-twin bench-decision bench-fleet bench-lint fmt chaos lint lint-fixtures lint-graph soak

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full health check: gofmt, vet, softskulint, build, and tests under
# -race with shuffled test order.
check:
	sh scripts/check.sh

# Project-specific static analysis (DESIGN.md §9, §14): determinism,
# metric-name, knob-error, span-pairing, and seed-plumbing invariants,
# plus the module-wide detflow call-graph taint analysis. Suppress an
# intentional finding with "//lint:ignore <analyzer> <reason>" on or
# above the line; for detflow that accepts one call edge.
lint:
	$(GO) run ./cmd/softskulint ./...

# Module call graph as DOT, annotated with nondeterminism sources
# (red), intrinsic carriers (orange), tainted nodes (filled), and
# suppressed edges (dashed). Render with: make lint-graph | dot -Tsvg
lint-graph:
	$(GO) run ./cmd/softskulint -graph ./...

# Fast iteration loop for analyzer work: just the golden-file tests
# over internal/analysis/testdata plus the CLI integration tests.
# Regenerate goldens with: go test ./internal/analysis -run TestGolden -update
lint-fixtures:
	$(GO) test -count=1 -run 'TestGolden|TestSuiteSelfClean|TestFixture|TestClean|TestOnly|TestList|TestDetflow|TestCallee|TestLoadModule|TestJSON|TestGraph' ./internal/analysis ./cmd/softskulint

# Cost of the interprocedural gate itself (DESIGN.md §14): one full
# module load + call-graph build + detflow taint run, and the
# call-graph build alone. Medians are recorded in BENCH_lint.json so a
# regression in the analysis hot path (type-check fan-out, CHA
# memoization, fixed-point propagation) is visible in review.
bench-lint:
	$(GO) test -run XXX -bench 'BenchmarkLint(Module|Callgraph)$$' -benchmem -benchtime 1x -count 3 ./internal/analysis

# Regenerates every paper table/figure and writes BENCH_telemetry.json
# with ns/op and sim-seconds/wall-second for the tracked benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

# Scaling of the deterministic parallel sweep runtime (DESIGN.md §10):
# one full four-knob tuning run at 1, 4, and 8 workers. Results are
# bit-identical at every worker count (parallel_test.go proves it);
# wall-clock speedup is bounded by the host's core count. Medians are
# recorded in BENCH_parallel.json.
bench-parallel:
	$(GO) test -run XXX -bench BenchmarkSweepParallel -benchmem -benchtime 1x -count 3 ./internal/core

# Characterization-cache effect on a full tuning run (DESIGN.md §11):
# the same four-knob sweep with the cache off vs on. The windows/op
# metric counts characterization windows actually executed — the cache
# must cut it ≥2x (control-arm dedupe alone halves it) with the
# wall-clock gain to match. Medians are recorded in BENCH_simcache.json;
# TestSimCacheBitIdentical proves both rows compute identical Results.
bench-simcache:
	$(GO) test -run XXX -bench 'Benchmark(Sweep|Climb)Cache(Off|On)$$' -benchmem -benchtime 1x -count 3 ./internal/core

# Search-efficiency comparison across the pluggable optimizers
# (DESIGN.md §15): the same four-knob tuning run under the independent
# sweep, hill climb, successive halving, and CEM. windows/op counts
# fresh characterization windows (distinct configs — the simcache
# absorbs revisits), best_pct/op is the winner's measured gain over
# production, pct_per_vhour normalizes by virtual A/B time. Medians
# are recorded in BENCH_search.json; the acceptance bar is halving or
# CEM matching the hill climb's objective on fewer fresh windows than
# the independent sweep.
bench-search:
	$(GO) test -run XXX -bench 'BenchmarkSearch(Independent|Hill|Halving|CEM)$$' -benchmem -benchtime 1x -count 3 ./internal/core

# Tiered-fidelity ladder efficiency (DESIGN.md §16): the bench-search
# hill-climb and halving runs re-measured with the analytical twin
# armed (-twin / twin = on). windows/op must drop below the unpruned
# optimizer's BENCH_search.json count while best_pct/op and the
# composed soft SKU stay identical (TestTwinPrunedSearchMatchesUnpruned
# proves identity); pruned/op counts arms vetoed on a prediction alone,
# twin_err/op is the run's median cross-check error in percent. The
# twin-package rows price one prediction (µs) against the ~1s window it
# replaces. Medians are recorded in BENCH_twin.json.
bench-twin:
	$(GO) test -run XXX -bench 'BenchmarkSearchTwin(Hill|Halving)$$' -benchmem -benchtime 1x -count 3 ./internal/core
	$(GO) test -run XXX -bench 'BenchmarkTwin(Predict|Score)$$' -benchmem ./internal/twin

# Decision flight-recorder overhead: the same four-knob tuning run
# with the ledger detached vs attached (DESIGN.md §12). Recording is
# all on the serial merge phase — per trial one 64-read analytic
# evidence capture plus struct appends — so the two rows must be
# within noise of each other. Medians are recorded in
# BENCH_decision.json; TestLedgerBitIdentical proves the ledger itself
# is byte-identical at any worker count.
bench-decision:
	$(GO) test -run XXX -bench 'BenchmarkSweepRecorder(Off|On)$$' -benchmem -benchtime 1x -count 3 ./internal/core

# Self-healing controller soak throughput (DESIGN.md §13): the same
# 20-epoch, 1008-server soak with the fault engine off vs on. The On
# row runs the full default fault mix plus day-long sensor blackouts,
# so the delta prices the robustness machinery (breakers, quarantine,
# degraded mode, watchdog ride-outs), not just the injector draws.
# Each row also reports epochs/sec; medians go to BENCH_fleet.json.
bench-fleet:
	$(GO) test -run XXX -bench 'BenchmarkSoakChaos(Off|On)$$' -benchmem -benchtime 1x -count 3 ./internal/fleet/controller

fmt:
	gofmt -w .

# Seeded chaos smoke: a short guardrailed tuning run under the default
# injected-fault mix. Must complete and print a composed soft SKU;
# the same -chaos-seed always reproduces the same fault schedule.
chaos:
	$(GO) run ./cmd/musku -service Web -knobs thp -chaos -chaos-seed 7 -guardrail-pct 2 -max-samples 1500 -q

# Deterministic self-healing fleet soak (DESIGN.md §13): 20 control
# epochs (one virtual day each) over the default 24-pool /
# 1008-server fleet under the sustained default fault mix plus sensor
# blackouts. Exits non-zero unless every non-quarantined pool ends
# converged. The report, decision ledger, and chaos fingerprint are a
# pure function of (-seed, -chaos-seed, fleet size) at any -parallel;
# scripts/check.sh's fleet soak smoke runs a scaled-down soak twice at
# different -parallel counts and byte-compares the ledgers.
soak:
	$(GO) run ./cmd/fleetd -chaos -chaos-seed 99 -seed 42 -epochs 20 -q
