module softsku

go 1.22
