package softsku_test

import (
	"strings"
	"testing"

	"softsku"
	"softsku/internal/knob"
)

func TestPlatformsAndServices(t *testing.T) {
	if got := len(softsku.Platforms()); got != 3 {
		t.Fatalf("platforms = %d", got)
	}
	if got := len(softsku.Services()); got != 7 {
		t.Fatalf("services = %d", got)
	}
	if _, err := softsku.PlatformByName("Skylake18"); err != nil {
		t.Fatal(err)
	}
	if _, err := softsku.ServiceByName("Cache2"); err != nil {
		t.Fatal(err)
	}
	if _, err := softsku.ServiceByName("Search"); err == nil {
		t.Fatal("unknown service must error")
	}
}

func TestNewServerAndMachine(t *testing.T) {
	sku := softsku.Skylake18()
	svc, _ := softsku.ServiceByName("Feed1")
	srv, err := softsku.NewServer(sku, softsku.ProductionConfig(sku, svc))
	if err != nil {
		t.Fatal(err)
	}
	m, err := softsku.NewMachine(srv, svc, 1)
	if err != nil {
		t.Fatal(err)
	}
	op := m.SolvePeak()
	if op.IPC <= 0 || op.MIPS <= 0 {
		t.Fatalf("degenerate operating point: %v", op)
	}
}

func TestCharacterize(t *testing.T) {
	c, err := softsku.Characterize("Feed2", softsku.Seed(3))
	if err != nil {
		t.Fatal(err)
	}
	if c.Platform != "Skylake18" {
		t.Fatalf("default platform = %s", c.Platform)
	}
	if c.Counters.IPC <= 0 || c.QPS <= 0 || c.Util <= 0 {
		t.Fatalf("degenerate characterization: %+v", c)
	}
	sum := c.TopDown.Retiring + c.TopDown.FrontEnd + c.TopDown.BadSpec + c.TopDown.BackEnd
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("top-down sum = %g", sum)
	}
	out := c.String()
	for _, want := range []string{"Feed2", "IPC", "topdown", "MPKI"} {
		if !strings.Contains(out, want) {
			t.Errorf("characterization string missing %q", want)
		}
	}
}

func TestCharacterizeOnPlatformWithConfig(t *testing.T) {
	sku := softsku.Broadwell16()
	cfg := softsku.StockConfig(sku)
	c, err := softsku.Characterize("Web",
		softsku.OnPlatform("Broadwell16"), softsku.WithConfig(cfg), softsku.Seed(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.Platform != "Broadwell16" {
		t.Fatalf("platform = %s", c.Platform)
	}
}

func TestTuneRestricted(t *testing.T) {
	in := softsku.DefaultTuneInput("Web", "Skylake18")
	in.Knobs = []knob.ID{knob.THP}
	in.AB.MinSamples = 150
	in.AB.MaxSamples = 1000
	res, err := softsku.Tune(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.SoftSKU.THP != knob.THPAlways {
		t.Fatalf("THP tuning should pick always: %v", res.SoftSKU)
	}
	table := softsku.FormatTuneMap(res)
	if !strings.Contains(table, "thp") {
		t.Fatalf("tune map missing knob rows:\n%s", table)
	}
}

func TestParseTuneInput(t *testing.T) {
	in, err := softsku.ParseTuneInput("microservice = Ads1\nsweep = hillclimb\n")
	if err != nil {
		t.Fatal(err)
	}
	if in.Microservice != "Ads1" {
		t.Fatalf("parsed: %+v", in)
	}
}

func TestStressCurve(t *testing.T) {
	curve := softsku.StressCurve(softsku.Skylake20(), 20)
	if len(curve) != 20 {
		t.Fatalf("points = %d", len(curve))
	}
	if curve[19].LatencyNS <= curve[0].LatencyNS {
		t.Fatal("stress curve must rise")
	}
}
