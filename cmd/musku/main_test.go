package main

import (
	"os"
	"path/filepath"
	"testing"

	"softsku/internal/knob"
)

func TestBuildInputFromFlags(t *testing.T) {
	in, err := buildInput("", "Web", "Skylake18", "hillclimb", "", "qps", "thp,shp", 9, 2500, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if in.Microservice != "Web" || in.Platform != "Skylake18" || in.Seed != 9 {
		t.Fatalf("parsed: %+v", in)
	}
	if in.AB.MaxSamples != 2500 {
		t.Fatalf("max-samples flag not applied: %d", in.AB.MaxSamples)
	}
	if in.Parallel != 4 {
		t.Fatalf("parallel flag not applied: %d", in.Parallel)
	}
	if !in.Twin {
		t.Fatal("twin flag not applied")
	}
	if len(in.Knobs) != 2 || in.Knobs[0] != knob.THP {
		t.Fatalf("knobs: %v", in.Knobs)
	}
}

func TestBuildInputFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.conf")
	if err := os.WriteFile(path, []byte("microservice = Ads1\nsweep = exhaustive\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	in, err := buildInput(path, "", "", "", "", "", "", 0, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if in.Microservice != "Ads1" {
		t.Fatalf("parsed: %+v", in)
	}
}

func TestBuildInputErrors(t *testing.T) {
	if _, err := buildInput("", "", "", "independent", "", "mips", "", 1, 0, 0, false); err == nil {
		t.Fatal("missing service must error")
	}
	if _, err := buildInput("/nonexistent/file", "", "", "", "", "", "", 1, 0, 0, false); err == nil {
		t.Fatal("missing file must error")
	}
	if _, err := buildInput("", "Web", "", "bogus", "", "mips", "", 1, 0, 0, false); err == nil {
		t.Fatal("bad sweep must error")
	}
	if _, err := buildInput("", "Web", "", "independent", "exhaustive", "mips", "", 1, 0, 0, false); err == nil {
		t.Fatal("-search must reject non-adaptive modes")
	}
}

func TestBuildInputSearchOverridesSweep(t *testing.T) {
	for flag, want := range map[string]string{
		"hill": "hillclimb", "halving": "halving", "cem": "cem",
	} {
		in, err := buildInput("", "Web", "", "independent", flag, "mips", "", 1, 0, 0, false)
		if err != nil {
			t.Fatalf("-search %s: %v", flag, err)
		}
		if got := in.Sweep.String(); got != want {
			t.Fatalf("-search %s: sweep = %s, want %s", flag, got, want)
		}
	}
}
