// Command musku runs the µSKU design tool (§4, Fig 13): it sweeps the
// soft-SKU design space for a target microservice with A/B tests on
// the simulated production fleet, composes the most performant knob
// configuration, and reports its gains over hand-tuned production and
// stock servers.
//
// Usage:
//
//	musku -input tune.conf
//	musku -service Web -platform Skylake18 [-sweep independent] [-metric mips]
//	musku -service Web -search halving    # adaptive optimizer: hill | halving | cem
//	musku -service Web -search halving -twin  # twin-pruned search (fewer windows, same SKU)
//	musku -service Web -validate 3
//	musku -service Web -chaos -chaos-seed 7 -guardrail-pct 2
//
// The input-file format is one "key = value" per line:
//
//	microservice = Web
//	platform     = Skylake18        # defaults to the service's fleet placement
//	sweep        = independent      # independent | exhaustive | hillclimb | halving | cem
//	metric       = mips             # mips | qps
//	knobs        = cdp, thp, shp    # defaults to every applicable knob
//	seed         = 1
//	max_samples  = 30000
//	parallel     = 4                # trial workers (0 = GOMAXPROCS)
//	twin         = off              # analytical-twin fidelity ladder (DESIGN.md §16)
//
// Candidate trials run across a bounded worker pool (-parallel);
// results are merged in design-space order, so output is bit-identical
// at any worker count for a given seed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"softsku"
	"softsku/internal/chaos"
	"softsku/internal/decision"
	"softsku/internal/knob"
	"softsku/internal/telemetry"
)

func main() {
	var (
		inputPath  = flag.String("input", "", "µSKU input file (overrides the other flags)")
		service    = flag.String("service", "", "target microservice (Web, Feed1, ..., Cache2)")
		platName   = flag.String("platform", "", "hardware platform (default: the service's fleet placement)")
		sweep      = flag.String("sweep", "independent", "sweep mode: independent | exhaustive | hillclimb | halving | cem")
		search     = flag.String("search", "", "adaptive optimizer: hill | halving | cem (overrides -sweep)")
		metric     = flag.String("metric", "mips", "performance metric: mips | qps")
		knobList   = flag.String("knobs", "", "comma-separated knob subset (default: all applicable)")
		seed       = flag.Uint64("seed", 1, "workload seed")
		maxSamples = flag.Int("max-samples", 0, "per-arm sample cap for A/B trials (0: default 30000)")
		parallel   = flag.Int("parallel", 0, "trial worker count; results are seed-deterministic at any value (0: GOMAXPROCS)")
		twin       = flag.Bool("twin", false, "arm the analytical-twin fidelity ladder: prune predicted-losing arms before any window runs")
		validate   = flag.Int("validate", 0, "after tuning, validate across N simulated code pushes")
		decOut     = flag.String("decisions-out", "", "write the decision ledger as JSONL (replay with skutrace)")
		simCache   = flag.String("sim-cache", "on", "characterization cache: on | off (off re-measures every window; results are identical)")
		quiet      = flag.Bool("q", false, "suppress progress logging")
		jsonOut    = flag.Bool("json", false, "emit the result as JSON instead of tables")
		obs        telemetry.CLI
		cc         chaos.CLI
	)
	obs.Flags()
	cc.Flags()
	flag.Parse()

	switch *simCache {
	case "on":
	case "off":
		softsku.SetCharacterizationCache(false)
	default:
		fatal(fmt.Errorf("-sim-cache must be on or off, got %q", *simCache))
	}

	in, err := buildInput(*inputPath, *service, *platName, *sweep, *search, *metric, *knobList, *seed, *maxSamples, *parallel, *twin)
	if err != nil {
		fatal(err)
	}
	in.AB.GuardrailPct = cc.GuardrailPct
	tool, err := softsku.NewTool(in)
	if err != nil {
		fatal(err)
	}
	// The flight recorder is always on: recording is append-only structs
	// behind the serial merge phase, so it costs nothing measurable (see
	// make bench-decision) and every run stays explainable after the fact.
	ledger := decision.NewLedger()
	tool.SetRecorder(ledger)
	obs.Decisions = ledger.Handler()
	eng := cc.Engine()
	if eng != nil {
		tool.SetChaos(eng)
	}
	if !*quiet {
		tool.SetLogger(os.Stderr)
	}
	tracer, err := obs.Start()
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := obs.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "musku:", err)
		}
	}()
	tool.SetTracer(tracer)
	res, err := tool.Run()
	if err != nil {
		fatal(err)
	}
	if *decOut != "" {
		f, err := os.Create(*decOut)
		if err != nil {
			fatal(err)
		}
		if err := ledger.WriteJSONL(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if eng != nil && !*quiet {
		fmt.Fprintf(os.Stderr, "chaos: %s\n", eng.Summary())
		fmt.Fprintf(os.Stderr, "chaos: %d settings skipped, %d guardrail reverts\n",
			res.Skipped, res.Reverts)
	}

	if *jsonOut {
		emitJSON(res)
		serveWait(&obs)
		return
	}

	fmt.Printf("target:        %s on %s (%s sweep, %s metric)\n",
		res.Service, res.Platform, res.Sweep, res.Metric)
	fmt.Printf("production:    %s\n", res.Baseline)
	fmt.Printf("soft SKU:      %s\n", res.SoftSKU)
	fmt.Printf("vs production: %s\n", res.VsProduction)
	fmt.Printf("vs stock:      %s\n", res.VsStock)
	if res.ExhaustiveBest != 0 {
		// The optimizer's own estimate: best single measurement for
		// exhaustive/halving/cem, accepted moves compounded for hillclimb.
		fmt.Printf("search gain:   %+.2f%% (optimizer's estimate vs production)\n", res.ExhaustiveBest)
	}
	fmt.Printf("reboots:       %d   virtual tuning time: %.1f h\n\n", res.Reboots, res.VirtualHours)
	if len(res.Map) > 0 {
		fmt.Println("design-space map:")
		fmt.Print(softsku.FormatTuneMap(res))
	}

	if *validate > 0 {
		fmt.Printf("\nvalidating across %d code pushes (ODS QPS)...\n", *validate)
		v, err := tool.Validate(res.SoftSKU, *validate, 96)
		if err != nil {
			fatal(err)
		}
		for _, p := range v.Pushes {
			fmt.Printf("  push %d: soft %.0f QPS vs prod %.0f QPS (%+.2f%%)\n",
				p.Push, p.SoftQPS, p.ProdQPS, p.DeltaPct)
		}
		fmt.Printf("  mean advantage %+.2f%%, stable=%v\n", v.MeanDeltaPct, v.StableAdvantage)
	}
	serveWait(&obs)
}

// serveWait keeps the process alive after the run when -serve is
// active, so the finished ledger and metrics stay scrapeable until the
// user interrupts the process.
func serveWait(obs *telemetry.CLI) {
	if !obs.Serving() {
		return
	}
	fmt.Fprintf(os.Stderr, "musku: serving observability on http://%s (ctrl-c to exit)\n", obs.ServingAddr())
	obs.Wait()
}

func buildInput(path, service, plat, sweep, search, metric, knobList string, seed uint64, maxSamples, parallel int, twin bool) (softsku.TuneInput, error) {
	if path != "" {
		text, err := os.ReadFile(path)
		if err != nil {
			return softsku.TuneInput{}, err
		}
		return softsku.ParseTuneInput(string(text))
	}
	if service == "" {
		return softsku.TuneInput{}, fmt.Errorf("musku: provide -input FILE or -service NAME")
	}
	// Reuse the file parser so flag and file semantics stay identical.
	text := fmt.Sprintf("microservice = %s\nsweep = %s\nmetric = %s\nseed = %d\n",
		service, sweep, metric, seed)
	if search != "" {
		// Later lines win, so -search overrides -sweep through the same
		// parser path ("search" accepts only the adaptive optimizers).
		text += "search = " + search + "\n"
	}
	if plat != "" {
		text += "platform = " + plat + "\n"
	}
	if knobList != "" {
		text += "knobs = " + knobList + "\n"
	}
	if maxSamples > 0 {
		text += fmt.Sprintf("max_samples = %d\n", maxSamples)
	}
	if parallel > 0 {
		text += fmt.Sprintf("parallel = %d\n", parallel)
	}
	if twin {
		text += "twin = on\n"
	}
	return softsku.ParseTuneInput(text)
}

// jsonResult is the stable machine-readable shape of a tuning run.
type jsonResult struct {
	Service         string  `json:"service"`
	Platform        string  `json:"platform"`
	Sweep           string  `json:"sweep"`
	Metric          string  `json:"metric"`
	Production      string  `json:"production"`
	SoftSKU         string  `json:"soft_sku"`
	VsProductionPct float64 `json:"vs_production_pct"`
	VsStockPct      float64 `json:"vs_stock_pct"`
	// SearchGainPct is the optimizer's own gain estimate (see
	// core.Result.ExhaustiveBest); absent for the independent sweep.
	SearchGainPct float64    `json:"search_gain_pct,omitempty"`
	Significant   bool       `json:"significant"`
	Reboots       int        `json:"reboots"`
	VirtualHours  float64    `json:"virtual_hours"`
	Skipped       int        `json:"skipped,omitempty"`
	Reverts       int        `json:"reverts,omitempty"`
	Knobs         []jsonKnob `json:"knobs"`
}

type jsonKnob struct {
	Knob     string   `json:"knob"`
	Baseline string   `json:"baseline"`
	Chosen   string   `json:"chosen,omitempty"`
	DeltaPct *float64 `json:"delta_pct,omitempty"`
}

func emitJSON(res *softsku.TuneResult) {
	out := jsonResult{
		Service:         res.Service,
		Platform:        res.Platform,
		Sweep:           res.Sweep.String(),
		Metric:          res.Metric.String(),
		Production:      res.Baseline.String(),
		SoftSKU:         res.SoftSKU.String(),
		VsProductionPct: res.VsProduction.DeltaPct,
		VsStockPct:      res.VsStock.DeltaPct,
		SearchGainPct:   res.ExhaustiveBest,
		Significant:     res.VsProduction.Significant,
		Reboots:         res.Reboots,
		VirtualHours:    res.VirtualHours,
		Skipped:         res.Skipped,
		Reverts:         res.Reverts,
	}
	for _, sweep := range res.Map {
		k := jsonKnob{Knob: sweep.Knob.String(), Baseline: sweep.Baseline.Name}
		if best := sweep.Best(); best != nil {
			k.Chosen = best.Setting.Name
			d := best.Outcome.DeltaPct
			k.DeltaPct = &d
		}
		out.Knobs = append(out.Knobs, k)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "musku:", err)
	os.Exit(1)
}

// Interface check: knob IDs parse through the same path the input file
// uses (keeps -knobs flag and file format in lockstep).
var _ = knob.ParseID
