// Command fleetd soaks the self-healing fleet controller: a
// deterministic control loop that keeps a sharded, mixed-SKU fleet of
// simulated servers tuned while load drifts and injected faults land
// (ROADMAP item 1: µSKU as a continuous, chaos-hardened control loop).
//
// Usage:
//
//	fleetd -servers 1008 -epochs 20
//	fleetd -chaos -chaos-seed 7 -epochs 20 -ledger-out soak.jsonl
//	fleetd -chaos -parallel 8 -json
//
// The soak is a pure function of (-seed, -chaos-seed, fleet size):
// the decision ledger and the chaos fingerprint are byte-identical
// across runs at any -parallel count, which is exactly what
// scripts/check.sh's soak smoke asserts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"softsku/internal/chaos"
	"softsku/internal/core"
	"softsku/internal/fleet/controller"
	"softsku/internal/telemetry"
)

func main() {
	var (
		servers   = flag.Int("servers", 1008, "total simulated servers across the default 24-pool fleet")
		epochs    = flag.Int("epochs", 20, "control epochs to soak (one virtual day each)")
		seed      = flag.Uint64("seed", 1, "controller seed: load, drift, jitter, and tuning streams derive from it")
		parallel  = flag.Int("parallel", 0, "trial worker count inside re-tunes; output is seed-deterministic at any value (0: GOMAXPROCS)")
		driftRate = flag.Float64("drift-rate", 0.04, "per-pool per-epoch probability of a real workload shift")
		tuneMax   = flag.Int("tune-samples", 120, "per-arm sample cap for drift-chasing A/B trials")
		tuneSrch  = flag.String("tune-search", "independent", "re-tune optimizer: independent | hill | halving | cem")
		tuneTwin  = flag.Bool("tune-twin", false, "arm the analytical-twin fidelity ladder inside re-tunes (prunes predicted-losing arms before any window runs)")
		decOut    = flag.String("ledger-out", "", "write the soak's decision ledger as JSONL (replay with skutrace)")
		jsonOut   = flag.Bool("json", false, "emit the soak report as JSON instead of text")
		quiet     = flag.Bool("q", false, "suppress per-epoch progress logging")
		obs       telemetry.CLI
		cc        chaos.CLI
	)
	obs.Flags()
	cc.Flags()
	flag.Parse()

	cfg := controller.DefaultConfig()
	cfg.Seed = *seed
	cfg.Parallel = *parallel
	cfg.DriftRate = *driftRate
	cfg.TuneMinSamples = 40
	cfg.TuneMaxSamples = *tuneMax
	if *tuneSrch != "independent" {
		mode, err := core.ParseSweepMode(*tuneSrch, true)
		if err != nil {
			fatal(err)
		}
		cfg.TuneSweep = mode
	}
	if cc.GuardrailPct > 0 {
		cfg.TuneGuardrailPct = cc.GuardrailPct
	}
	cfg.TuneTwin = *tuneTwin

	ctl, err := controller.New(cfg, controller.DefaultFleetSpec(*servers))
	if err != nil {
		fatal(err)
	}
	if eng := engine(&cc); eng != nil {
		ctl.SetChaos(eng)
	}
	if !*quiet {
		ctl.SetLogger(os.Stderr)
	}
	obs.Decisions = ctl.Ledger().Handler()
	if _, err := obs.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := obs.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "fleetd:", err)
		}
	}()

	rep, err := ctl.Run(*epochs)
	if err != nil {
		fatal(err)
	}

	if *decOut != "" {
		f, err := os.Create(*decOut)
		if err != nil {
			fatal(err)
		}
		if err := ctl.Ledger().WriteJSONL(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("soak:        %d epochs over %d pools / %d servers (%.0f virtual days)\n",
			rep.Epochs, rep.Pools, rep.Servers, rep.VirtualSec/86400)
		fmt.Printf("tuning:      %d drifts, %d re-tunes, %d rollouts (%d failed)\n",
			rep.Drifted, rep.Retuned, rep.RolledOut, rep.RolloutFailures)
		fmt.Printf("self-heal:   %d quarantined, %d repaired, %d breaker opens, %d freezes, %d degraded pool-epochs\n",
			rep.Quarantined, rep.Repaired, rep.BreakerOpens, rep.Freezes, rep.DegradedEpochs)
		if rep.Fingerprint != "" {
			fmt.Printf("chaos:       %d fault events, fingerprint %s\n", rep.FaultEvents, rep.Fingerprint)
		}
		state := "CONVERGED"
		if !rep.Converged {
			state = fmt.Sprintf("MIXED (%d pools)", rep.MixedPools)
		}
		fmt.Printf("state:       %s\n", state)
	}
	if !rep.Converged {
		os.Exit(2)
	}
	if obs.Serving() {
		fmt.Fprintf(os.Stderr, "fleetd: serving observability on http://%s (ctrl-c to exit)\n", obs.ServingAddr())
		obs.Wait()
	}
}

// engine builds the soak's fault engine with the sensor-blackout class
// enabled on top of the default fault mix.
func engine(cc *chaos.CLI) *chaos.Engine {
	if !cc.Enabled {
		return nil
	}
	cfg := chaos.DefaultConfig()
	cfg.BlackoutPct = 0.01
	cfg.BlackoutSec = 86400
	return chaos.New(cc.Seed, cfg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetd:", err)
	os.Exit(1)
}
