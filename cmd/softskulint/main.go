// Command softskulint is the repo's project-specific static-analysis
// gate (DESIGN.md §9): a stdlib-only vet-style multichecker that
// loads every package in the module and enforces the invariants the
// A/B measurement pipeline's trustworthiness rests on — seeded
// determinism, bounded metric cardinality, never-dropped knob-
// mutation errors, closed trace spans, and caller-controlled
// randomness.
//
// Usage:
//
//	softskulint [-only a,b] [-list] [packages]
//
// Packages default to ./... . Diagnostics print as
// "file:line: [analyzer] message" and any finding exits 1; load or
// type-check failures exit 2. Suppress an intentional finding with
// a reasoned directive on (or just above) the offending line:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"softsku/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("softskulint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := analysis.All()
	if *only != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintln(stderr, "softskulint:", err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "softskulint:", err)
		return 2
	}
	modRoot, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "softskulint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(stderr, "softskulint:", err)
		return 2
	}
	units, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "softskulint:", err)
		return 2
	}

	res := analysis.Run(units, analyzers)
	for _, d := range res.Findings {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(modRoot, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", name, d.Pos.Line, d.Analyzer, d.Message)
	}
	suffix := ""
	if res.Suppressed > 0 {
		suffix = fmt.Sprintf(" (%d suppressed)", res.Suppressed)
	}
	fmt.Fprintf(stdout, "softskulint: %d package%s, %d finding%s%s\n",
		res.Packages, plural(res.Packages), len(res.Findings), plural(len(res.Findings)), suffix)
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}
