// Command softskulint is the repo's project-specific static-analysis
// gate (DESIGN.md §9, §14): a stdlib-only vet-style multichecker that
// loads every package in the module and enforces the invariants the
// A/B measurement pipeline's trustworthiness rests on — seeded
// determinism, bounded metric cardinality, never-dropped knob-
// mutation errors, closed trace spans, caller-controlled randomness,
// and (via the module-wide detflow call-graph taint analysis) the
// absence of any transitive path from a sim-facing export to a
// nondeterminism source.
//
// Usage:
//
//	softskulint [-only a,b] [-list] [-json] [-graph] [packages]
//
// Packages default to ./... . Diagnostics print as
// "file:line: [analyzer] message" and any finding exits 1; load or
// type-check failures exit 2. -json emits the same result as one
// machine-readable object (findings carry the offending call path for
// detflow). -graph dumps the module call graph as DOT, with taint and
// suppression annotations, and exits 0. Suppress an intentional
// finding with a reasoned directive on (or just above) the offending
// line:
//
//	//lint:ignore <analyzer> <reason>
//
// For detflow the directive is per call edge: placed at a call site
// it accepts every nondeterministic path introduced by that edge.
// Directives that suppress nothing are reported as stale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"softsku/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("softskulint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as one machine-readable JSON object")
	graph := fs.Bool("graph", false, "dump the module call graph as DOT (taint + suppression annotated) and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := analysis.All()
	if *only != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintln(stderr, "softskulint:", err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "softskulint:", err)
		return 2
	}
	modRoot, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "softskulint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(stderr, "softskulint:", err)
		return 2
	}
	mod, err := loader.LoadModule(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "softskulint:", err)
		return 2
	}
	units, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "softskulint:", err)
		return 2
	}

	if *graph {
		analysis.DetflowDOT(mod, units, stdout)
		return 0
	}

	res := analysis.RunAll(mod, units, analyzers)
	rel := func(name string) string {
		if r, err := filepath.Rel(modRoot, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}

	var parts []string
	if res.Suppressed > 0 {
		parts = append(parts, fmt.Sprintf("%d suppressed", res.Suppressed))
	}
	if res.Stale > 0 {
		parts = append(parts, fmt.Sprintf("%d stale", res.Stale))
	}
	suffix := ""
	if len(parts) > 0 {
		suffix = " (" + strings.Join(parts, ", ") + ")"
	}
	summary := fmt.Sprintf("softskulint: %d package%s, %d finding%s%s",
		res.Packages, plural(res.Packages), len(res.Findings), plural(len(res.Findings)), suffix)

	if *asJSON {
		type jsonFinding struct {
			File     string   `json:"file"`
			Line     int      `json:"line"`
			Analyzer string   `json:"analyzer"`
			Message  string   `json:"message"`
			Path     []string `json:"path,omitempty"`
		}
		report := struct {
			Packages   int           `json:"packages"`
			Findings   []jsonFinding `json:"findings"`
			Suppressed int           `json:"suppressed"`
			Stale      int           `json:"stale"`
			Summary    string        `json:"summary"`
		}{
			Packages:   res.Packages,
			Findings:   []jsonFinding{},
			Suppressed: res.Suppressed,
			Stale:      res.Stale,
			Summary:    summary,
		}
		for _, d := range res.Findings {
			report.Findings = append(report.Findings, jsonFinding{
				File: rel(d.Pos.Filename), Line: d.Pos.Line,
				Analyzer: d.Analyzer, Message: d.Message, Path: d.Path,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "softskulint:", err)
			return 2
		}
	} else {
		for _, d := range res.Findings {
			fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
		fmt.Fprintln(stdout, summary)
	}
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}
