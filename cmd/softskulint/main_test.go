package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"

	"softsku/internal/analysis"
)

// The integration tests re-exec this test binary as the real CLI:
// TestMain routes through run() when the env var is set, so the tests
// observe the exact exit codes and output format check.sh depends on.
func TestMain(m *testing.M) {
	if os.Getenv("SOFTSKULINT_RUN_MAIN") == "1" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func lint(t *testing.T, args ...string) (string, int) {
	t.Helper()
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], args...)
	cmd.Dir = root
	cmd.Env = append(os.Environ(), "SOFTSKULINT_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("exec: %v\n%s", err, out)
	}
	return string(out), code
}

var (
	diagRE    = regexp.MustCompile(`^[^:]+\.go:\d+: \[[a-z]+\] .+$`)
	summaryRE = regexp.MustCompile(`^softskulint: \d+ packages?, \d+ findings?( \((\d+ suppressed)?(, )?(\d+ stale)?\))?$`)
)

// TestFixturePackageFindings drives the binary over a dirty fixture
// package and pins the contract: non-zero exit, every diagnostic in
// file:line: [analyzer] message form, and a trailing summary line.
func TestFixturePackageFindings(t *testing.T) {
	out, code := lint(t, "./internal/analysis/testdata/knoberr/knobs")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (findings)\n%s", code, out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("want diagnostics plus summary, got:\n%s", out)
	}
	for _, l := range lines[:len(lines)-1] {
		if !diagRE.MatchString(l) {
			t.Errorf("diagnostic line %q does not match %s", l, diagRE)
		}
		if !strings.Contains(l, "[knoberr]") {
			t.Errorf("diagnostic line %q from unexpected analyzer", l)
		}
	}
	last := lines[len(lines)-1]
	if !summaryRE.MatchString(last) {
		t.Errorf("summary line %q does not match %s", last, summaryRE)
	}
	if !strings.Contains(last, "1 package, 10 findings (2 suppressed)") {
		t.Errorf("summary %q: want 10 findings with 2 suppressed over 1 package", last)
	}
}

// TestCleanPackageExitsZero runs a clean module package.
func TestCleanPackageExitsZero(t *testing.T) {
	out, code := lint(t, "./internal/rng")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if want := "softskulint: 1 package, 0 findings\n"; out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

// TestOnlySubset checks analyzer selection and rejection of unknown
// names.
func TestOnlySubset(t *testing.T) {
	out, code := lint(t, "-only", "spanend", "./internal/analysis/testdata/knoberr/knobs")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (knoberr findings filtered out)\n%s", code, out)
	}
	if _, code := lint(t, "-only", "bogus", "./internal/rng"); code != 2 {
		t.Fatalf("unknown analyzer: exit = %d, want 2", code)
	}
}

// TestJSON pins the machine-readable output check.sh consumes: one
// object with packages/findings/suppressed/stale/summary, detflow
// findings carrying their offending call path, and the same exit code
// contract as the text mode.
func TestJSON(t *testing.T) {
	out, code := lint(t, "-json", "./internal/analysis/testdata/detflow/sim", "./internal/analysis/testdata/detflow/helper")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (findings)\n%s", code, out)
	}
	var report struct {
		Packages int `json:"packages"`
		Findings []struct {
			File     string   `json:"file"`
			Line     int      `json:"line"`
			Analyzer string   `json:"analyzer"`
			Message  string   `json:"message"`
			Path     []string `json:"path"`
		} `json:"findings"`
		Suppressed int    `json:"suppressed"`
		Stale      int    `json:"stale"`
		Summary    string `json:"summary"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if report.Packages != 2 {
		t.Errorf("packages = %d, want 2", report.Packages)
	}
	if report.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the accepted Wall edge)", report.Suppressed)
	}
	if !summaryRE.MatchString(report.Summary) {
		t.Errorf("summary %q does not match %s", report.Summary, summaryRE)
	}
	wantPath := []string{"sim.Step", "helper.Wrap", "helper.stamp", "time.Now"}
	found := false
	for _, f := range report.Findings {
		if f.Analyzer != "detflow" || len(f.Path) == 0 || f.Path[0] != "sim.Step" {
			continue
		}
		found = true
		if strings.Join(f.Path, "→") != strings.Join(wantPath, "→") {
			t.Errorf("sim.Step path = %v, want %v", f.Path, wantPath)
		}
		if !strings.HasSuffix(f.File, "sim.go") || f.Line == 0 {
			t.Errorf("finding position = %s:%d, want a sim.go line", f.File, f.Line)
		}
	}
	if !found {
		t.Errorf("no detflow finding rooted at sim.Step in:\n%s", out)
	}
}

// TestCleanJSONExitsZero: a clean package still emits the object.
func TestCleanJSONExitsZero(t *testing.T) {
	out, code := lint(t, "-json", "./internal/rng")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	var report struct {
		Findings []struct{} `json:"findings"`
		Summary  string     `json:"summary"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(report.Findings) != 0 || !strings.Contains(report.Summary, "0 findings") {
		t.Errorf("clean run reported findings:\n%s", out)
	}
}

// TestGraph pins the DOT dump: a digraph mentioning the fixture's
// cross-package edge and always exiting 0 even though taint exists.
func TestGraph(t *testing.T) {
	out, code := lint(t, "-graph", "./internal/analysis/testdata/detflow/sim", "./internal/analysis/testdata/detflow/helper")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (-graph is a dump, not a gate)\n%s", code, out)
	}
	if !strings.HasPrefix(out, "digraph detflow") {
		t.Errorf("output does not start with the digraph header:\n%.200s", out)
	}
	for _, want := range []string{`"sim.Step"`, `"helper.Wrap"`, `"time.Now"`, "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %s", want)
		}
	}
}

// TestListAnalyzers pins the suite roster.
func TestListAnalyzers(t *testing.T) {
	out, code := lint(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing %s:\n%s", a.Name, out)
		}
	}
}
