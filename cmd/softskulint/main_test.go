package main

import (
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"

	"softsku/internal/analysis"
)

// The integration tests re-exec this test binary as the real CLI:
// TestMain routes through run() when the env var is set, so the tests
// observe the exact exit codes and output format check.sh depends on.
func TestMain(m *testing.M) {
	if os.Getenv("SOFTSKULINT_RUN_MAIN") == "1" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func lint(t *testing.T, args ...string) (string, int) {
	t.Helper()
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], args...)
	cmd.Dir = root
	cmd.Env = append(os.Environ(), "SOFTSKULINT_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("exec: %v\n%s", err, out)
	}
	return string(out), code
}

var (
	diagRE    = regexp.MustCompile(`^[^:]+\.go:\d+: \[[a-z]+\] .+$`)
	summaryRE = regexp.MustCompile(`^softskulint: \d+ packages?, \d+ findings?( \(\d+ suppressed\))?$`)
)

// TestFixturePackageFindings drives the binary over a dirty fixture
// package and pins the contract: non-zero exit, every diagnostic in
// file:line: [analyzer] message form, and a trailing summary line.
func TestFixturePackageFindings(t *testing.T) {
	out, code := lint(t, "./internal/analysis/testdata/knoberr/knobs")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (findings)\n%s", code, out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("want diagnostics plus summary, got:\n%s", out)
	}
	for _, l := range lines[:len(lines)-1] {
		if !diagRE.MatchString(l) {
			t.Errorf("diagnostic line %q does not match %s", l, diagRE)
		}
		if !strings.Contains(l, "[knoberr]") {
			t.Errorf("diagnostic line %q from unexpected analyzer", l)
		}
	}
	last := lines[len(lines)-1]
	if !summaryRE.MatchString(last) {
		t.Errorf("summary line %q does not match %s", last, summaryRE)
	}
	if !strings.Contains(last, "1 package, 6 findings (1 suppressed)") {
		t.Errorf("summary %q: want 6 findings with 1 suppressed over 1 package", last)
	}
}

// TestCleanPackageExitsZero runs a clean module package.
func TestCleanPackageExitsZero(t *testing.T) {
	out, code := lint(t, "./internal/rng")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if want := "softskulint: 1 package, 0 findings\n"; out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

// TestOnlySubset checks analyzer selection and rejection of unknown
// names.
func TestOnlySubset(t *testing.T) {
	out, code := lint(t, "-only", "spanend", "./internal/analysis/testdata/knoberr/knobs")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (knoberr findings filtered out)\n%s", code, out)
	}
	if _, code := lint(t, "-only", "bogus", "./internal/rng"); code != 2 {
		t.Fatalf("unknown analyzer: exit = %d, want 2", code)
	}
}

// TestListAnalyzers pins the suite roster.
func TestListAnalyzers(t *testing.T) {
	out, code := lint(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing %s:\n%s", a.Name, out)
		}
	}
}
