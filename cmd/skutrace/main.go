// Command skutrace inspects decision-trace ledgers — the append-only
// JSONL flight recording musku writes with -decisions-out (and serves
// live at /debug/decisions). It renders the causal decision tree,
// diffs two ledgers event by event, and replays a recorded run under a
// counterfactual objective without re-running the simulator: each
// trial_measured event carries per-metric evidence moments, enough to
// re-judge every verdict, guardrail, and winner under a different
// metric, confidence, or guardrail threshold.
//
// Usage:
//
//	skutrace tree ledger.jsonl
//	skutrace diff a.jsonl b.jsonl
//	skutrace replay -metric p99 [-guardrail-pct 5] [-confidence 0.99] [-json] ledger.jsonl
//
// Exit status: 0 on success (for diff: ledgers identical; for replay:
// no divergences), 1 when differences/divergences are found, 2 on
// usage or input errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"softsku/internal/decision"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "tree":
		return runTree(args[1:], stdout, stderr)
	case "diff":
		return runDiff(args[1:], stdout, stderr)
	case "replay":
		return runReplay(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "skutrace: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  skutrace tree ledger.jsonl                 render the causal decision tree
  skutrace diff a.jsonl b.jsonl              compare two ledgers event by event
  skutrace replay [flags] ledger.jsonl       re-judge a run under another objective
    -metric mips|qps|perfwatt|p99            counterfactual objective (default: recorded)
    -guardrail-pct N                         re-evaluate guardrails at N% (0 off; default: recorded)
    -confidence C                            significance level in (0,1) (default: recorded)
    -json                                    emit the full report as JSON
`)
}

func loadLedger(path string) ([]decision.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := decision.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

func runTree(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "skutrace: tree wants exactly one ledger file")
		return 2
	}
	events, err := loadLedger(args[0])
	if err != nil {
		fmt.Fprintln(stderr, "skutrace:", err)
		return 2
	}
	if err := decision.WriteTree(stdout, events); err != nil {
		fmt.Fprintln(stderr, "skutrace:", err)
		return 2
	}
	return 0
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "skutrace: diff wants exactly two ledger files")
		return 2
	}
	a, err := loadLedger(args[0])
	if err != nil {
		fmt.Fprintln(stderr, "skutrace:", err)
		return 2
	}
	b, err := loadLedger(args[1])
	if err != nil {
		fmt.Fprintln(stderr, "skutrace:", err)
		return 2
	}
	lines := decision.Diff(a, b)
	if len(lines) == 0 {
		fmt.Fprintf(stdout, "ledgers identical (%d events)\n", len(a))
		return 0
	}
	for _, l := range lines {
		fmt.Fprintln(stdout, l)
	}
	return 1
}

func runReplay(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("skutrace replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	metric := fs.String("metric", "", "counterfactual objective: "+strings.Join(decision.KnownMetrics(), " | ")+" (default: recorded)")
	guardrail := fs.Float64("guardrail-pct", -1, "re-evaluate guardrails at this % regression (0 disables; default: recorded)")
	confidence := fs.Float64("confidence", 0, "significance level in (0,1) (default: recorded)")
	asJSON := fs.Bool("json", false, "emit the full report as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "skutrace: replay wants exactly one ledger file")
		return 2
	}
	events, err := loadLedger(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "skutrace:", err)
		return 2
	}
	rep, err := decision.Replay(events, decision.Objective{
		Metric:       *metric,
		GuardrailPct: *guardrail,
		Confidence:   *confidence,
	})
	if err != nil {
		fmt.Fprintln(stderr, "skutrace:", err)
		return 2
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "skutrace:", err)
			return 2
		}
	} else {
		fmt.Fprint(stdout, rep.Summary())
	}
	if len(rep.Divergences) > 0 {
		return 1
	}
	return 0
}
