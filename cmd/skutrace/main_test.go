package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"softsku/internal/decision"
)

// writeFixtureLedger builds a small ledger on disk: one sweep where
// thp=always wins on mips but regresses p99, so replaying under -metric
// p99 must diverge.
func writeFixtureLedger(t *testing.T, dir, name string, mutate func(l *decision.Ledger)) string {
	t.Helper()
	l := decision.NewLedger()
	root := l.Record(-1, decision.RunStarted("Web", "Skylake18", "independent", "mips", 7, 0.95, 2))
	sweep := l.Record(root, decision.SweepStarted("sweep/thp", "thp", "madvise"))
	out := decision.TrialOutcome{
		DeltaPct: 3, PValue: 1e-6, Significant: true, Samples: 600, VirtualSec: 660,
		EvidenceID: "00000000deadbeef",
		Evidence: []decision.Evidence{
			{Metric: "mips",
				Control:   decision.Stat{N: 32, Mean: 100, Var: 4},
				Treatment: decision.Stat{N: 32, Mean: 103, Var: 4}},
			{Metric: "p99",
				Control:   decision.Stat{N: 32, Mean: 0.010, Var: 1e-8},
				Treatment: decision.Stat{N: 32, Mean: 0.013, Var: 1e-8}},
		},
	}
	trial := l.Record(sweep, decision.TrialMeasured("sweep/thp/1", "thp", "always", "thp=madvise", "thp=always", out))
	l.Record(trial, decision.ArmAccepted("thp", "always", 3))
	l.Record(root, decision.RunFinished("thp=always", 3, 0.2, 0, 0))
	if mutate != nil {
		mutate(l)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestTreeRendersCausality(t *testing.T) {
	path := writeFixtureLedger(t, t.TempDir(), "a.jsonl", nil)
	code, out, errs := runCmd("tree", path)
	if code != 0 {
		t.Fatalf("tree exited %d: %s", code, errs)
	}
	for _, want := range []string{"run Web on Skylake18", "sweep thp", "accepted thp=always"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
	// Child events must be indented under their parents.
	lines := strings.Split(out, "\n")
	if len(lines) < 5 || strings.Index(lines[1], "#") <= strings.Index(lines[0], "#") {
		t.Fatalf("no causal indentation:\n%s", out)
	}
}

func TestDiffIdenticalAndDivergent(t *testing.T) {
	dir := t.TempDir()
	a := writeFixtureLedger(t, dir, "a.jsonl", nil)
	b := writeFixtureLedger(t, dir, "b.jsonl", nil)
	code, out, _ := runCmd("diff", a, b)
	if code != 0 || !strings.Contains(out, "identical") {
		t.Fatalf("identical ledgers: exit %d, out %q", code, out)
	}
	c := writeFixtureLedger(t, dir, "c.jsonl", func(l *decision.Ledger) {
		l.Record(0, decision.Skip("sweep/extra", "x", "only in c"))
	})
	code, out, _ = runCmd("diff", a, c)
	if code != 1 || out == "" {
		t.Fatalf("divergent ledgers: exit %d, out %q", code, out)
	}
}

func TestReplayRecordedObjectiveIsClean(t *testing.T) {
	path := writeFixtureLedger(t, t.TempDir(), "a.jsonl", nil)
	code, out, errs := runCmd("replay", path)
	if code != 0 {
		t.Fatalf("identity replay exited %d: %s%s", code, out, errs)
	}
	if !strings.Contains(out, "0 divergences") {
		t.Fatalf("identity replay not clean:\n%s", out)
	}
}

func TestReplayP99FlipsVerdictWithoutSimulator(t *testing.T) {
	path := writeFixtureLedger(t, t.TempDir(), "a.jsonl", nil)
	code, out, errs := runCmd("replay", "-metric", "p99", path)
	if code != 1 {
		t.Fatalf("p99 replay exited %d, want 1 (divergences): %s%s", code, out, errs)
	}
	if !strings.Contains(out, "recorded: accepted") || !strings.Contains(out, "p99") {
		t.Fatalf("p99 replay output:\n%s", out)
	}
}

func TestReplayJSONReport(t *testing.T) {
	path := writeFixtureLedger(t, t.TempDir(), "a.jsonl", nil)
	code, out, _ := runCmd("replay", "-metric", "p99", "-json", path)
	if code != 1 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{`"replayed_metric": "p99"`, `"divergences"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON report missing %s:\n%s", want, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCmd(); code != 2 {
		t.Fatal("no args should exit 2")
	}
	if code, _, _ := runCmd("bogus"); code != 2 {
		t.Fatal("unknown subcommand should exit 2")
	}
	if code, _, _ := runCmd("replay", "-metric", "nope", "x.jsonl"); code != 2 {
		t.Fatal("missing file should exit 2")
	}
	if code, _, errs := runCmd("help"); code != 0 || errs != "" {
		t.Fatal("help should exit 0")
	}
}
