// Command stress reproduces the Intel Memory Latency Checker
// experiment behind Fig 12: it sweeps injected memory bandwidth from
// idle to saturation on each platform and prints the loaded-latency
// curve, optionally with every microservice's operating point.
//
// Usage:
//
//	stress                        # curves for all three platforms
//	stress -platform Skylake18    # one platform
//	stress -points 25 -services   # finer curve plus service points
//	stress -parallel 4            # one worker per platform curve; same output
//	stress -chaos -chaos-seed 7   # corrupt latency samples like a faulty prober
//	stress -twin                  # calibrated-twin cross-check, one probe window per service
//
// With -chaos, each latency sample passes through the deterministic
// fault injector the tuner is hardened against: corrupted readings are
// printed alongside the true value and marked, showing the outliers
// µSKU's A/B tester rejects. -guardrail-pct is accepted for flag parity
// with musku but only affects tuning runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"softsku"
	"softsku/internal/chaos"
	"softsku/internal/knob"
	"softsku/internal/sim"
	"softsku/internal/telemetry"
	"softsku/internal/twin"
	"softsku/internal/workload"
)

func main() {
	var (
		platName = flag.String("platform", "", "platform name (default: all three)")
		points   = flag.Int("points", 13, "points per stress curve")
		services = flag.Bool("services", false, "also print each microservice's operating point")
		twinChk  = flag.Bool("twin", false, "cross-check the calibrated analytical twin against one off-anchor window per service")
		seed     = flag.Uint64("seed", 1, "workload seed for -services")
		parallel = flag.Int("parallel", 0, "curve workers; output order is fixed (0: GOMAXPROCS)")
		simCache = flag.String("sim-cache", "on", "characterization cache: on | off (off re-measures every window; results are identical)")
		obs      telemetry.CLI
		cc       chaos.CLI
	)
	obs.Flags()
	cc.Flags()
	flag.Parse()
	switch *simCache {
	case "on":
	case "off":
		softsku.SetCharacterizationCache(false)
	default:
		fmt.Fprintf(os.Stderr, "stress: -sim-cache must be on or off, got %q\n", *simCache)
		os.Exit(1)
	}
	var inj softsku.ChaosInjector = softsku.ChaosDisabled
	if eng := cc.Engine(); eng != nil {
		inj = eng
	}

	tracer, err := obs.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "stress:", err)
		os.Exit(1)
	}
	defer func() {
		if err := obs.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "stress:", err)
		}
	}()
	root := tracer.StartSpan("stress", "memory")
	defer root.End()

	var skus []*softsku.SKU
	if *platName != "" {
		sku, err := softsku.PlatformByName(*platName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stress:", err)
			os.Exit(1)
		}
		skus = append(skus, sku)
	} else {
		skus = softsku.Platforms()
	}

	// Curves are pure per platform, so they compute in parallel; the
	// chaos pass and printing stay serial in platform order, keeping
	// output (and injected-fault draws) identical at any worker count.
	curves := make([][]softsku.MemoryPoint, len(skus))
	softsku.ParallelFor(*parallel, len(skus), func(i int) {
		curves[i] = softsku.StressCurve(skus[i], *points)
	})
	for i, sku := range skus {
		sp := root.StartChild("curve."+sku.Name, "memory")
		sp.Set("points", *points)
		fmt.Printf("== %s loaded-latency curve (peak %.0f GB/s, unloaded %.0f ns) ==\n",
			sku.Name, sku.MemPeakGBs, sku.MemUnloadedNS)
		fmt.Printf("%12s  %12s\n", "GB/s", "latency ns")
		for _, p := range curves[i] {
			if v, hit := inj.CorruptSample("latency", p.LatencyNS); hit {
				fmt.Printf("%12.1f  %12.0f  <- corrupted sample (true %.0f ns)\n",
					p.BandwidthGBs, v, p.LatencyNS)
				continue
			}
			fmt.Printf("%12.1f  %12.0f\n", p.BandwidthGBs, p.LatencyNS)
		}
		fmt.Println()
		sp.End()
	}

	if *services {
		fmt.Println("== microservice operating points (production config, peak load) ==")
		fmt.Printf("%-8s %-12s %10s %12s\n", "service", "platform", "GB/s", "latency ns")
		for _, svc := range softsku.Services() {
			sp := root.StartChild("service."+svc.Name, "memory")
			c, err := softsku.Characterize(svc.Name, softsku.Seed(*seed))
			if err != nil {
				fmt.Fprintln(os.Stderr, "stress:", err)
				os.Exit(1)
			}
			sp.Set("bw_gbs", c.Counters.MemBWGBs)
			sp.Set("latency_ns", c.Counters.MemLatencyNS)
			sp.End()
			fmt.Printf("%-8s %-12s %10.1f %12.0f\n",
				svc.Name, svc.Platform, c.Counters.MemBWGBs, c.Counters.MemLatencyNS)
		}
	}

	if *twinChk {
		twinCheck(root, *seed)
	}
	if obs.Serving() {
		fmt.Fprintf(os.Stderr, "stress: serving observability on http://%s (ctrl-c to exit)\n", obs.ServingAddr())
		obs.Wait()
	}
}

// twinCheck calibrates the analytical twin for every service on its
// production platform, then measures one configuration the calibration
// never saw (production with THP flipped) and prints the calibrated
// prediction beside the simulator's answer. The anchors fit exactly by
// construction, so the probe column is the honest out-of-sample error —
// the number the tuner's pruning margins must dominate (DESIGN.md §16).
func twinCheck(root *telemetry.Span, seed uint64) {
	fmt.Println("\n== analytical-twin cross-check (calibrated, off-anchor probe) ==")
	fmt.Printf("%-8s %-12s %8s %12s %12s %8s\n",
		"service", "platform", "alpha", "probe MIPS", "twin MIPS", "err")
	for _, svc := range softsku.Services() {
		sku, err := softsku.PlatformByName(svc.Platform)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stress:", err)
			os.Exit(1)
		}
		prof := workload.ForPlatform(svc, sku.Name)
		sp := root.StartChild("twin."+prof.Name, "twin")
		ev := twin.NewEvaluator(sku, prof, seed, prof.MaxCPUUtil, twin.MetricFor("mips"))
		if err := ev.Calibrate(); err != nil {
			fmt.Fprintln(os.Stderr, "stress:", err)
			os.Exit(1)
		}
		probe := softsku.ProductionConfig(sku, prof)
		if probe.THP == knob.THPNever {
			probe.THP = knob.THPAlways
		} else {
			probe.THP = knob.THPNever
		}
		srv, err := softsku.NewServer(sku, probe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stress:", err)
			os.Exit(1)
		}
		m, err := sim.NewMachine(srv, prof, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stress:", err)
			os.Exit(1)
		}
		meas := m.Solve(prof.MaxCPUUtil).MIPS
		alpha, beta := ev.Coefficients()
		pred := alpha*twin.NewModel(sku, prof).Predict(probe, prof.MaxCPUUtil).Op.MIPS + beta
		errPct := 0.0
		if meas != 0 {
			errPct = (pred - meas) / meas * 100
		}
		sp.Set("alpha", alpha)
		sp.Set("err_pct", errPct)
		sp.End()
		fmt.Printf("%-8s %-12s %8.4f %12.0f %12.0f %+7.2f%%\n",
			prof.Name, sku.Name, alpha, meas, pred, errPct)
	}
}
