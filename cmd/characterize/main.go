// Command characterize regenerates the paper's §2 characterization
// (Tables 1-2, Figs 1-12) and, with -tuning, the §6 µSKU evaluation
// figures (Figs 14-19) and the ablation studies, printing each as an
// aligned text table with the paper's reference values alongside.
//
// Usage:
//
//	characterize                 # Tables 1-2, Figs 1-12
//	characterize -only fig9      # one table/figure
//	characterize -tuning         # add Figs 14-19 (slow: full µSKU runs)
//	characterize -ablations      # add the ablation studies
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"softsku/internal/figures"
	"softsku/internal/telemetry"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "workload seed")
		only      = flag.String("only", "", "render a single item, e.g. table2, fig9, fig19, ablationA")
		tuning    = flag.Bool("tuning", false, "include the µSKU evaluation figures (Figs 14-19)")
		ablations = flag.Bool("ablations", false, "include the ablation studies")
		obs       telemetry.CLI
	)
	obs.Flags()
	flag.Parse()

	tracer, err := obs.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
	defer func() {
		if err := obs.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
		}
	}()
	root := tracer.StartSpan("characterize", "characterization")
	defer root.End()

	ctx := figures.NewContext(*seed)
	type item struct {
		key  string
		slow bool
		gen  func() figures.Table
	}
	items := []item{
		{"table1", false, figures.Table1SKUs},
		{"table2", false, func() figures.Table { return figures.Table2Throughput(ctx) }},
		{"fig1", false, func() figures.Table { return figures.Fig1Diversity(ctx) }},
		{"fig2", false, func() figures.Table { return figures.Fig2Breakdown(ctx) }},
		{"fig3", false, func() figures.Table { return figures.Fig3CPUUtil(ctx) }},
		{"fig4", false, func() figures.Table { return figures.Fig4CtxSwitch(ctx) }},
		{"fig5", false, figures.Fig5Mix},
		{"fig6", false, func() figures.Table { return figures.Fig6IPC(ctx) }},
		{"fig7", false, func() figures.Table { return figures.Fig7TopDown(ctx) }},
		{"fig8", false, func() figures.Table { return figures.Fig8L1L2(ctx) }},
		{"fig9", false, func() figures.Table { return figures.Fig9LLC(ctx) }},
		{"fig10", false, func() figures.Table { return figures.Fig10Ways(*seed) }},
		{"fig11", false, func() figures.Table { return figures.Fig11TLB(ctx) }},
		{"fig12", false, func() figures.Table { return figures.Fig12Bandwidth(ctx) }},
		{"fig14", true, func() figures.Table { return figures.Fig14Frequency(*seed) }},
		{"fig15", true, func() figures.Table { return figures.Fig15CoreCount(*seed) }},
		{"fig16", true, func() figures.Table { return figures.Fig16CDP(*seed) }},
		{"fig17", true, func() figures.Table { return figures.Fig17Prefetcher(*seed) }},
		{"fig18", true, func() figures.Table { return figures.Fig18HugePages(*seed) }},
		{"fig19", true, func() figures.Table { return figures.Fig19SoftSKU(*seed) }},
		{"ablationA", true, func() figures.Table { return figures.AblationSearch(*seed) }},
		{"ablationB", true, func() figures.Table { return figures.AblationSampling(*seed) }},
		{"ablationC", true, func() figures.Table { return figures.AblationMetric(*seed) }},
		{"ablationD", true, func() figures.Table { return figures.AblationSHPSearch(*seed) }},
		{"extensionE", true, func() figures.Table { return figures.ExtensionColocation(*seed) }},
		{"extensionF", true, func() figures.Table { return figures.ExtensionEnergy(*seed) }},
		{"extensionG", true, func() figures.Table { return figures.ExtensionSPEC(*seed) }},
	}

	render := func(it item) string {
		sp := root.StartChild(it.key, "figure")
		defer sp.End()
		return it.gen().String()
	}

	if *only != "" {
		want := strings.ToLower(*only)
		for _, it := range items {
			if strings.ToLower(it.key) == want {
				fmt.Println(render(it))
				return
			}
		}
		fmt.Fprintf(os.Stderr, "characterize: unknown item %q\n", *only)
		os.Exit(1)
	}

	for _, it := range items {
		isAblation := strings.HasPrefix(it.key, "ablation") || strings.HasPrefix(it.key, "extension")
		if isAblation && !*ablations {
			continue
		}
		if it.slow && !isAblation && !*tuning {
			continue
		}
		fmt.Println(render(it))
	}
}
