package chaos

import "flag"

// CLI bundles the standard fault-injection flags shared by the
// command-line tools, mirroring telemetry.CLI: declare it, call
// Flags() before flag.Parse(), then Engine() after.
type CLI struct {
	// Enabled turns injection on (-chaos).
	Enabled bool
	// Seed drives the deterministic fault schedule (-chaos-seed): the
	// same seed reproduces the same faults at the same points.
	Seed uint64
	// GuardrailPct is forwarded to the A/B tester (-guardrail-pct):
	// abort and revert any trial regressing beyond this many percent.
	// 0 (the default) keeps the guardrail off, preserving the exact
	// pre-guardrail trial schedule.
	GuardrailPct float64
}

// Flags registers -chaos, -chaos-seed, and -guardrail-pct.
func (c *CLI) Flags() {
	flag.BoolVar(&c.Enabled, "chaos", false,
		"enable deterministic fault injection (apply failures, dropouts, crashes, load spikes)")
	flag.Uint64Var(&c.Seed, "chaos-seed", 1,
		"fault-injection seed; the same seed reproduces the same fault schedule")
	flag.Float64Var(&c.GuardrailPct, "guardrail-pct", 0,
		"abort and revert A/B trials regressing beyond this percent (0 disables the guardrail)")
}

// Engine returns the configured injector, or nil when -chaos is off.
func (c *CLI) Engine() *Engine {
	if !c.Enabled {
		return nil
	}
	return New(c.Seed, DefaultConfig())
}
