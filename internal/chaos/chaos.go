// Package chaos is the fault model for the operational half of the
// paper (§4): µSKU experiments on live production servers, so the
// tuner must tolerate machine failures, corrupted counter samples,
// sampler dropouts, and load drift without ever hurting serving
// capacity. This package injects exactly those faults — deterministic
// per seed — at the points the sim/platform/fleet layers consult:
// knob applications and reboots (platform.Server), A/B samples
// (abtest.Run), rollout waves (fleet.Rollout), the load profile
// (loadgen.Profile), and fleet sensor reads (fleet/controller's drift
// detector, via sensor-blackout episodes).
//
// Determinism contract: an Engine draws every fault class from its own
// seeded rng sub-stream, so two runs with the same seed that make the
// same sequence of calls experience the same fault schedule, fault for
// fault (asserted by tests via Events/Fingerprint). Load spikes are a
// pure function of (seed, t), so they are identical even across
// differently-interleaved runs.
//
// The zero cost of disabled injection matters: consumers hold a nil
// Injector by default and skip every hook, so chaos-off runs are
// bit-identical to — and as fast as — runs built before this layer
// existed (BENCH_chaos.json records the overhead).
package chaos

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"softsku/internal/rng"
	"softsku/internal/telemetry"
)

// Injected-fault telemetry: every fault the engine deals out is
// counted, so a chaos run's metrics export shows exactly how much
// adversity the defensive machinery absorbed.
var (
	mApplyFailures = telemetry.Default.Counter("softsku_chaos_apply_failures_total",
		"Transient knob-apply failures injected into Server.Apply.")
	mStuckReboots = telemetry.Default.Counter("softsku_chaos_stuck_reboots_total",
		"Stuck reboots injected into Server.Apply.")
	mSampleDropouts = telemetry.Default.Counter("softsku_chaos_sample_dropouts_total",
		"EMON sampler dropouts injected into A/B trials.")
	mSampleOutliers = telemetry.Default.Counter("softsku_chaos_sample_outliers_total",
		"Corrupted (outlier) samples injected into A/B trials.")
	mServerCrashes = telemetry.Default.Counter("softsku_chaos_server_crashes_total",
		"Server crashes injected into rollout waves.")
	mSlowWaves = telemetry.Default.Counter("softsku_chaos_slow_waves_total",
		"Slow deployment waves injected into rollouts.")
	mLoadSpikes = telemetry.Default.Counter("softsku_chaos_load_spikes_total",
		"Load-spike windows injected into the load profile.")
	mSensorBlackouts = telemetry.Default.Counter("softsku_chaos_sensor_blackouts_total",
		"Sensor-blackout episodes injected into ODS sampling.")
)

// Injector is consulted by the layers that can fault. A nil Injector
// (the default everywhere) means a fault-free world; Disabled is an
// explicit no-op for call sites that want a non-nil value.
type Injector interface {
	// ApplyFault returns a non-nil *FaultError when this knob
	// application should transiently fail, leaving server state
	// untouched.
	ApplyFault(target string) error
	// StuckReboot reports whether a required reboot hangs; the apply
	// attempt fails without state change and must be retried.
	StuckReboot(target string) bool
	// DropSample reports whether this sampler read is lost (the EMON
	// collector missed its multiplexing window).
	DropSample(arm string) bool
	// CorruptSample returns the possibly-perturbed value of one sample
	// and whether it was corrupted into an outlier.
	CorruptSample(arm string, v float64) (float64, bool)
	// CrashServer reports whether a server crashes during a rollout
	// wave, failing the wave's health check.
	CrashServer(target string) bool
	// WaveDelay returns extra virtual seconds a deployment wave takes
	// (0 for a healthy wave).
	WaveDelay(wave int) float64
	// LoadSpike returns the multiplicative load factor at virtual time
	// t (1 when no spike is active). Pure in (seed, t).
	LoadSpike(t float64) float64
	// DropSensor reports whether an ODS sensor read for series at
	// virtual time t is silently lost to a sensor-blackout episode.
	// Once an episode starts for a series it persists for BlackoutSec
	// of virtual time, so drift detectors see a sustained gap rather
	// than isolated missing points.
	DropSensor(series string, t float64) bool
}

// Disabled is the explicit no-op injector.
var Disabled Injector = disabled{}

type disabled struct{}

func (disabled) ApplyFault(string) error                           { return nil }
func (disabled) StuckReboot(string) bool                           { return false }
func (disabled) DropSample(string) bool                            { return false }
func (disabled) CorruptSample(_ string, v float64) (float64, bool) { return v, false }
func (disabled) CrashServer(string) bool                           { return false }
func (disabled) WaveDelay(int) float64                             { return 0 }
func (disabled) LoadSpike(float64) float64                         { return 1 }
func (disabled) DropSensor(string, float64) bool                   { return false }

// FaultError is a transient, injected failure. Consumers distinguish
// it from real validation errors with IsFault and retry with backoff.
type FaultError struct {
	Kind   string // "apply-fail" | "stuck-reboot"
	Target string
}

// Error describes the fault.
func (e *FaultError) Error() string {
	return fmt.Sprintf("chaos: injected %s on %s (transient)", e.Kind, e.Target)
}

// IsFault reports whether err is (or wraps) an injected transient
// fault, as opposed to a real error that retrying cannot fix.
func IsFault(err error) bool {
	for err != nil {
		if _, ok := err.(*FaultError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Config sets per-fault-class rates. The zero value injects nothing;
// DefaultConfig is the "default chaos" the -chaos CLI flag enables.
type Config struct {
	ApplyFailPct   float64 // P(one Server.Apply attempt transiently fails)
	StuckRebootPct float64 // P(a required reboot hangs), per attempt
	DropPct        float64 // P(one sampler read is lost)
	OutlierPct     float64 // P(one sample is corrupted into an outlier)
	OutlierMag     float64 // outlier multiplier (applied up or down)
	CrashPct       float64 // P(a server crashes), per server per wave
	SlowWavePct    float64 // P(a deployment wave is slow)
	SlowWaveSec    float64 // extra virtual seconds for a slow wave
	SpikePct       float64 // P(a load-spike window contains a spike)
	SpikeMag       float64 // spike amplitude (0.5 → +50% load)
	SpikeWindowSec float64 // spike scheduling window length
	BlackoutPct    float64 // P(one sensor read starts a blackout episode)
	BlackoutSec    float64 // virtual seconds a blackout episode persists
}

// DefaultConfig is the fault mix a production fleet actually serves
// up: occasional apply failures and stuck reboots, rare sampler
// dropouts and corrupted counter reads, the odd crashed machine, and
// transient load spikes on top of the diurnal cycle.
func DefaultConfig() Config {
	return Config{
		ApplyFailPct:   0.05,
		StuckRebootPct: 0.02,
		DropPct:        0.01,
		OutlierPct:     0.005,
		OutlierMag:     4.0,
		CrashPct:       0.02,
		SlowWavePct:    0.10,
		SlowWaveSec:    30,
		SpikePct:       0.25,
		SpikeMag:       0.35,
		SpikeWindowSec: 1800,
		BlackoutPct:    0.002,
		BlackoutSec:    1800,
	}
}

// Event is one injected fault, recorded in order within its class so
// tests can assert that equal seeds yield equal schedules.
type Event struct {
	Seq    int    // global record order (informational)
	Kind   string // fault class
	Target string // server / arm / wave the fault hit
}

// Engine is the seeded fault injector. Each fault class draws from an
// independent rng sub-stream (derived with rng.Split), so the number
// of draws in one class never perturbs another class's schedule.
// Engine is safe for concurrent use.
type Engine struct {
	cfg  Config
	seed uint64

	mu       sync.Mutex
	apply    *rng.Source
	reboot   *rng.Source
	drop     *rng.Source
	corrupt  *rng.Source
	crash    *rng.Source
	wave     *rng.Source
	blackout *rng.Source
	events   []Event
	spiked   map[int64]bool     // spike windows already recorded
	dark     map[string]float64 // series -> blackout episode end time
	children []*Engine          // per-trial injectors, in creation order
}

// New builds an engine dealing faults from cfg at the given seed.
func New(seed uint64, cfg Config) *Engine {
	root := rng.New(seed ^ 0xc4a05) // keep chaos streams clear of workload seeds
	return &Engine{
		cfg:      cfg,
		seed:     seed,
		apply:    root.Split("apply"),
		reboot:   root.Split("reboot"),
		drop:     root.Split("drop"),
		corrupt:  root.Split("corrupt"),
		crash:    root.Split("crash"),
		wave:     root.Split("wave"),
		blackout: root.Split("blackout"),
		spiked:   make(map[int64]bool),
		dark:     make(map[string]float64),
	}
}

// Seed returns the engine's fault seed.
func (e *Engine) Seed() uint64 { return e.seed }

// Split derives a child injector whose per-class fault streams are
// independent of the parent's and of every sibling's, keyed by label.
// Parallel trials each draw from their own child, so the number of
// draws one trial makes never perturbs another trial's schedule — the
// property that keeps sweep results bit-identical at any worker count.
// The child keeps the parent's seed for LoadSpike (the spike schedule
// is fleet-wide, pure in (seed, t)) and reports through the parent:
// Events, Fingerprint, Counts and Summary cover the whole family, with
// children appended in creation order. Create children serially (while
// building trial specs, not inside workers) so that order — and thus
// the fingerprint — is deterministic.
func (e *Engine) Split(label string) *Engine {
	child := New(rng.Derive(e.seed, label), e.cfg)
	child.seed = e.seed // LoadSpike stays pure in the fleet-wide (seed, t)
	e.mu.Lock()
	e.children = append(e.children, child)
	e.mu.Unlock()
	return child
}

func (e *Engine) record(kind, target string) {
	e.events = append(e.events, Event{Seq: len(e.events), Kind: kind, Target: target})
}

// ApplyFault implements Injector.
func (e *Engine) ApplyFault(target string) error {
	if e.cfg.ApplyFailPct <= 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.apply.Bool(e.cfg.ApplyFailPct) {
		return nil
	}
	e.record("apply-fail", target)
	mApplyFailures.Inc()
	return &FaultError{Kind: "apply-fail", Target: target}
}

// StuckReboot implements Injector.
func (e *Engine) StuckReboot(target string) bool {
	if e.cfg.StuckRebootPct <= 0 {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.reboot.Bool(e.cfg.StuckRebootPct) {
		return false
	}
	e.record("stuck-reboot", target)
	mStuckReboots.Inc()
	return true
}

// DropSample implements Injector.
func (e *Engine) DropSample(arm string) bool {
	if e.cfg.DropPct <= 0 {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.drop.Bool(e.cfg.DropPct) {
		return false
	}
	e.record("sample-dropout", arm)
	mSampleDropouts.Inc()
	return true
}

// CorruptSample implements Injector.
func (e *Engine) CorruptSample(arm string, v float64) (float64, bool) {
	if e.cfg.OutlierPct <= 0 {
		return v, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.corrupt.Bool(e.cfg.OutlierPct) {
		return v, false
	}
	e.record("sample-outlier", arm)
	mSampleOutliers.Inc()
	mag := e.cfg.OutlierMag
	if mag <= 1 {
		mag = 4
	}
	if e.corrupt.Bool(0.5) {
		return v * mag, true
	}
	return v / mag, true
}

// CrashServer implements Injector.
func (e *Engine) CrashServer(target string) bool {
	if e.cfg.CrashPct <= 0 {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.crash.Bool(e.cfg.CrashPct) {
		return false
	}
	e.record("server-crash", target)
	mServerCrashes.Inc()
	return true
}

// WaveDelay implements Injector.
func (e *Engine) WaveDelay(wave int) float64 {
	if e.cfg.SlowWavePct <= 0 {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.wave.Bool(e.cfg.SlowWavePct) {
		return 0
	}
	e.record("slow-wave", fmt.Sprintf("wave%d", wave))
	mSlowWaves.Inc()
	sec := e.cfg.SlowWaveSec
	if sec <= 0 {
		sec = 30
	}
	return sec
}

// LoadSpike implements Injector. It is a pure function of (seed, t):
// virtual time is divided into SpikeWindowSec windows, each window
// independently seeded, so the spike schedule is identical across runs
// regardless of how consumers interleave their draws.
func (e *Engine) LoadSpike(t float64) float64 {
	if e.cfg.SpikePct <= 0 || e.cfg.SpikeWindowSec <= 0 {
		return 1
	}
	win := int64(math.Floor(t / e.cfg.SpikeWindowSec))
	src := rng.New(rng.Fold(e.seed^0x591ce, uint64(win)))
	if !src.Bool(e.cfg.SpikePct) {
		return 1
	}
	// The spike occupies a random sub-interval of its window.
	w := e.cfg.SpikeWindowSec
	start := (float64(win) + 0.5*src.Float64()) * w
	dur := (0.15 + 0.35*src.Float64()) * w
	if t < start || t >= start+dur {
		return 1
	}
	e.mu.Lock()
	if !e.spiked[win] {
		e.spiked[win] = true
		e.record("load-spike", fmt.Sprintf("window%d", win))
		mLoadSpikes.Inc()
	}
	e.mu.Unlock()
	return 1 + e.cfg.SpikeMag
}

// DropSensor implements Injector. Episodes draw from the blackout
// stream: the first drawn start is recorded once as a sensor-blackout
// event, and every read of the same series before the episode's end
// time is silently dropped without touching the stream — so a long
// blackout consumes exactly one draw and the schedule other series
// see is unperturbed.
func (e *Engine) DropSensor(series string, t float64) bool {
	if e.cfg.BlackoutPct <= 0 || e.cfg.BlackoutSec <= 0 {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if until, ok := e.dark[series]; ok && t < until {
		return true
	}
	if !e.blackout.Bool(e.cfg.BlackoutPct) {
		return false
	}
	e.dark[series] = t + e.cfg.BlackoutSec
	e.record("sensor-blackout", series)
	mSensorBlackouts.Inc()
	return true
}

// Events returns a copy of every fault injected so far — the engine's
// own, then each child's (recursively), in child creation order — with
// Seq renumbered over the merged view.
func (e *Engine) Events() []Event {
	e.mu.Lock()
	evs := append([]Event(nil), e.events...)
	kids := append([]*Engine(nil), e.children...)
	e.mu.Unlock()
	for _, c := range kids {
		evs = append(evs, c.Events()...)
	}
	for i := range evs {
		evs[i].Seq = i
	}
	return evs
}

// Fingerprint renders the fault schedule as one string — the cheap way
// for tests to assert that two runs saw identical schedules.
func (e *Engine) Fingerprint() string {
	var b strings.Builder
	for _, ev := range e.Events() {
		fmt.Fprintf(&b, "%s:%s;", ev.Kind, ev.Target)
	}
	return b.String()
}

// Counts tallies injected faults by kind.
func (e *Engine) Counts() map[string]int {
	counts := make(map[string]int)
	for _, ev := range e.Events() {
		counts[ev.Kind]++
	}
	return counts
}

// Summary renders the fault tally for CLI output.
func (e *Engine) Summary() string {
	counts := e.Counts()
	if len(counts) == 0 {
		return "no faults injected"
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	total := 0
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%d %s", counts[k], k))
		total += counts[k]
	}
	return fmt.Sprintf("%d faults injected (%s)", total, strings.Join(parts, ", "))
}
