package chaos

import (
	"math"
	"testing"
)

// drive exercises every fault class in a fixed sequence and returns
// the engine, so determinism tests can compare schedules.
func drive(seed uint64) *Engine {
	e := New(seed, DefaultConfig())
	for i := 0; i < 500; i++ {
		e.ApplyFault("srv")
		e.StuckReboot("srv")
		e.DropSample("treatment")
		e.CorruptSample("control", 100)
		e.CrashServer("web/3")
		e.WaveDelay(i)
		e.LoadSpike(float64(i) * 100)
	}
	return e
}

func TestSameSeedSameSchedule(t *testing.T) {
	a, b := drive(7), drive(7)
	ea, eb := a.Events(), b.Events()
	if len(ea) == 0 {
		t.Fatal("default config injected nothing over 500 rounds")
	}
	if len(ea) != len(eb) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprints differ for equal seeds")
	}
}

func TestDifferentSeedsDifferentSchedule(t *testing.T) {
	if drive(1).Fingerprint() == drive(2).Fingerprint() {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestClassStreamsAreIndependent(t *testing.T) {
	// Extra draws in one fault class must not perturb another class's
	// schedule — the property that keeps schedules stable when one
	// consumer retries more than another.
	a, b := New(9, DefaultConfig()), New(9, DefaultConfig())
	for i := 0; i < 200; i++ {
		b.DropSample("x") // b draws 200 extra dropout decisions first
	}
	var sa, sb string
	for i := 0; i < 300; i++ {
		if a.ApplyFault("s") != nil {
			sa += "F"
		} else {
			sa += "."
		}
		if b.ApplyFault("s") != nil {
			sb += "F"
		} else {
			sb += "."
		}
	}
	if sa != sb {
		t.Fatalf("apply schedule perturbed by dropout draws:\n%s\n%s", sa, sb)
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	cfg := DefaultConfig()
	e := New(3, cfg)
	const n = 20000
	fails := 0
	for i := 0; i < n; i++ {
		if e.ApplyFault("s") != nil {
			fails++
		}
	}
	got := float64(fails) / n
	if math.Abs(got-cfg.ApplyFailPct) > 0.01 {
		t.Fatalf("apply-fail rate %.3f, configured %.3f", got, cfg.ApplyFailPct)
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	e := New(1, Config{})
	for i := 0; i < 1000; i++ {
		if e.ApplyFault("s") != nil || e.StuckReboot("s") || e.DropSample("a") ||
			e.CrashServer("s") || e.WaveDelay(i) != 0 || e.LoadSpike(float64(i)) != 1 {
			t.Fatal("zero config must inject nothing")
		}
		if v, hit := e.CorruptSample("a", 42); hit || v != 42 {
			t.Fatal("zero config must not corrupt samples")
		}
	}
	if len(e.Events()) != 0 {
		t.Fatalf("events recorded under zero config: %v", e.Events())
	}
}

func TestDisabledInjector(t *testing.T) {
	d := Disabled
	if d.ApplyFault("s") != nil || d.StuckReboot("s") || d.DropSample("a") ||
		d.CrashServer("s") || d.WaveDelay(0) != 0 || d.LoadSpike(0) != 1 {
		t.Fatal("Disabled must no-op")
	}
	if v, hit := d.CorruptSample("a", 7); hit || v != 7 {
		t.Fatal("Disabled must not corrupt")
	}
}

func TestLoadSpikeIsPureInT(t *testing.T) {
	// Same (seed, t) must give the same factor regardless of call
	// order or how many other draws happened in between.
	a := New(11, DefaultConfig())
	b := drive(11) // b has consumed many class-stream draws
	for _, tt := range []float64{0, 500, 1234, 7200, 40000, 86400} {
		if fa, fb := a.LoadSpike(tt), b.LoadSpike(tt); fa != fb {
			t.Fatalf("LoadSpike(%g) not pure: %g vs %g", tt, fa, fb)
		}
	}
}

func TestLoadSpikeAmplitude(t *testing.T) {
	cfg := DefaultConfig()
	e := New(5, cfg)
	spikes, flats := 0, 0
	for tt := 0.0; tt < 50*cfg.SpikeWindowSec; tt += 60 {
		switch f := e.LoadSpike(tt); f {
		case 1:
			flats++
		case 1 + cfg.SpikeMag:
			spikes++
		default:
			t.Fatalf("unexpected spike factor %g", f)
		}
	}
	if spikes == 0 || flats == 0 {
		t.Fatalf("spike schedule degenerate: %d spikes, %d flats", spikes, flats)
	}
}

func TestCorruptSampleMagnitude(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OutlierPct = 1 // corrupt every sample
	e := New(2, cfg)
	up, down := 0, 0
	for i := 0; i < 200; i++ {
		v, hit := e.CorruptSample("a", 100)
		if !hit {
			t.Fatal("OutlierPct=1 must corrupt every sample")
		}
		switch {
		case math.Abs(v-100*cfg.OutlierMag) < 1e-9:
			up++
		case math.Abs(v-100/cfg.OutlierMag) < 1e-9:
			down++
		default:
			t.Fatalf("outlier value %g not ±%gx", v, cfg.OutlierMag)
		}
	}
	if up == 0 || down == 0 {
		t.Fatalf("outliers should go both directions: %d up, %d down", up, down)
	}
}

func TestFaultErrorDetection(t *testing.T) {
	err := &FaultError{Kind: "apply-fail", Target: "srv"}
	if !IsFault(err) {
		t.Fatal("FaultError must be detected")
	}
	if IsFault(nil) {
		t.Fatal("nil is not a fault")
	}
	wrapped := wrapErr{err}
	if !IsFault(wrapped) {
		t.Fatal("wrapped FaultError must be detected")
	}
}

type wrapErr struct{ inner error }

func (w wrapErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w wrapErr) Unwrap() error { return w.inner }

func TestSplitChildrenAreDecoupled(t *testing.T) {
	// Extra draws in one child must not perturb a sibling's schedule,
	// and the same (parent seed, label) must rebuild the same child —
	// the two properties parallel trials rely on.
	mk := func(extraDraws int) (string, string) {
		parent := New(21, DefaultConfig())
		a, b := parent.Split("trial/a"), parent.Split("trial/b")
		for i := 0; i < extraDraws; i++ {
			a.DropSample("x")
		}
		var sa, sb string
		for i := 0; i < 300; i++ {
			if a.ApplyFault("s") != nil {
				sa += "F"
			} else {
				sa += "."
			}
			if b.ApplyFault("s") != nil {
				sb += "F"
			} else {
				sb += "."
			}
		}
		return sa, sb
	}
	a0, b0 := mk(0)
	a1, b1 := mk(500)
	if b0 != b1 {
		t.Fatalf("sibling schedule perturbed by other child's draws:\n%s\n%s", b0, b1)
	}
	if a0 != a1 {
		t.Fatalf("child apply schedule not reproducible:\n%s\n%s", a0, a1)
	}
	if a0 == b0 {
		t.Fatal("differently-labeled children produced identical schedules")
	}
}

func TestSplitEventsMergeInCreationOrder(t *testing.T) {
	parent := New(33, DefaultConfig())
	kids := []*Engine{parent.Split("t/0"), parent.Split("t/1"), parent.Split("t/2")}
	// Drive children out of creation order: the merged view must still
	// come out in creation order, independent of draw interleaving.
	for _, k := range []*Engine{kids[2], kids[0], kids[1]} {
		for i := 0; i < 400; i++ {
			k.ApplyFault("srv")
			k.DropSample("a")
		}
	}
	parent.ApplyFault("own") // parent's own events come first
	want := append([]Event(nil), parent.events...)
	for _, k := range kids {
		want = append(want, k.Events()...)
	}
	got := parent.Events()
	if len(got) != len(want) {
		t.Fatalf("merged %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Seq != i {
			t.Fatalf("event %d has Seq %d; merged view must renumber", i, got[i].Seq)
		}
		if got[i].Kind != want[i].Kind || got[i].Target != want[i].Target {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if parent.Fingerprint() == New(33, DefaultConfig()).Fingerprint() {
		t.Fatal("fingerprint must include children's events")
	}
}

func TestSplitSharesLoadSpikeSchedule(t *testing.T) {
	// LoadSpike is fleet-wide: a child must see the same spike schedule
	// as its parent and every sibling, at any t.
	parent := New(11, DefaultConfig())
	a, b := parent.Split("trial/a"), parent.Split("trial/b")
	for tt := 0.0; tt < 40*DefaultConfig().SpikeWindowSec; tt += 333 {
		fp, fa, fb := parent.LoadSpike(tt), a.LoadSpike(tt), b.LoadSpike(tt)
		if fp != fa || fp != fb {
			t.Fatalf("LoadSpike(%g) differs across family: parent %g, a %g, b %g", tt, fp, fa, fb)
		}
	}
}

func TestSummaryAndCounts(t *testing.T) {
	e := New(1, Config{})
	if got := e.Summary(); got != "no faults injected" {
		t.Fatalf("empty summary = %q", got)
	}
	e2 := drive(4)
	counts := e2.Counts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(e2.Events()) {
		t.Fatalf("counts sum %d != events %d", total, len(e2.Events()))
	}
}

func TestSensorBlackoutEpisodes(t *testing.T) {
	// Once an episode starts for a series, every read of that series
	// before the episode end is dropped; reads after it are judged
	// afresh. Other series keep their own independent episodes.
	cfg := Config{BlackoutPct: 1, BlackoutSec: 100}
	e := New(5, cfg)
	if !e.DropSensor("qps.web", 0) {
		t.Fatal("BlackoutPct=1 must start an episode on the first read")
	}
	for _, tt := range []float64{1, 50, 99.9} {
		if !e.DropSensor("qps.web", tt) {
			t.Fatalf("read at t=%g inside the episode must be dropped", tt)
		}
	}
	// An in-episode read must not consume a blackout draw: only two
	// episode starts (one per series) may be recorded.
	if !e.DropSensor("qps.feed", 10) {
		t.Fatal("second series must get its own episode")
	}
	if got := e.Counts()["sensor-blackout"]; got != 2 {
		t.Fatalf("recorded %d sensor-blackout events, want 2 (one per episode)", got)
	}
}

func TestSensorBlackoutDeterministic(t *testing.T) {
	run := func() string {
		e := New(21, DefaultConfig())
		s := ""
		for i := 0; i < 4000; i++ {
			if e.DropSensor("qps.pool", float64(i)*300) {
				s += "D"
			} else {
				s += "."
			}
		}
		return s + "|" + e.Fingerprint()
	}
	if run() != run() {
		t.Fatal("same seed must reproduce the same blackout schedule")
	}
}

func TestSensorBlackoutStreamIndependent(t *testing.T) {
	// Blackout draws must not perturb the other class streams.
	a, b := New(9, DefaultConfig()), New(9, DefaultConfig())
	for i := 0; i < 500; i++ {
		b.DropSensor("s", float64(i)*1000)
	}
	var sa, sb string
	for i := 0; i < 300; i++ {
		if a.CrashServer("s") {
			sa += "C"
		} else {
			sa += "."
		}
		if b.CrashServer("s") {
			sb += "C"
		} else {
			sb += "."
		}
	}
	if sa != sb {
		t.Fatalf("crash schedule perturbed by blackout draws:\n%s\n%s", sa, sb)
	}
}

func TestSensorBlackoutZeroAndDisabled(t *testing.T) {
	e := New(1, Config{})
	for i := 0; i < 1000; i++ {
		if e.DropSensor("s", float64(i)) {
			t.Fatal("zero config must not drop sensor reads")
		}
	}
	if Disabled.DropSensor("s", 0) {
		t.Fatal("Disabled must not drop sensor reads")
	}
}
