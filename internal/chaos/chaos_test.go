package chaos

import (
	"math"
	"testing"
)

// drive exercises every fault class in a fixed sequence and returns
// the engine, so determinism tests can compare schedules.
func drive(seed uint64) *Engine {
	e := New(seed, DefaultConfig())
	for i := 0; i < 500; i++ {
		e.ApplyFault("srv")
		e.StuckReboot("srv")
		e.DropSample("treatment")
		e.CorruptSample("control", 100)
		e.CrashServer("web/3")
		e.WaveDelay(i)
		e.LoadSpike(float64(i) * 100)
	}
	return e
}

func TestSameSeedSameSchedule(t *testing.T) {
	a, b := drive(7), drive(7)
	ea, eb := a.Events(), b.Events()
	if len(ea) == 0 {
		t.Fatal("default config injected nothing over 500 rounds")
	}
	if len(ea) != len(eb) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprints differ for equal seeds")
	}
}

func TestDifferentSeedsDifferentSchedule(t *testing.T) {
	if drive(1).Fingerprint() == drive(2).Fingerprint() {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestClassStreamsAreIndependent(t *testing.T) {
	// Extra draws in one fault class must not perturb another class's
	// schedule — the property that keeps schedules stable when one
	// consumer retries more than another.
	a, b := New(9, DefaultConfig()), New(9, DefaultConfig())
	for i := 0; i < 200; i++ {
		b.DropSample("x") // b draws 200 extra dropout decisions first
	}
	var sa, sb string
	for i := 0; i < 300; i++ {
		if a.ApplyFault("s") != nil {
			sa += "F"
		} else {
			sa += "."
		}
		if b.ApplyFault("s") != nil {
			sb += "F"
		} else {
			sb += "."
		}
	}
	if sa != sb {
		t.Fatalf("apply schedule perturbed by dropout draws:\n%s\n%s", sa, sb)
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	cfg := DefaultConfig()
	e := New(3, cfg)
	const n = 20000
	fails := 0
	for i := 0; i < n; i++ {
		if e.ApplyFault("s") != nil {
			fails++
		}
	}
	got := float64(fails) / n
	if math.Abs(got-cfg.ApplyFailPct) > 0.01 {
		t.Fatalf("apply-fail rate %.3f, configured %.3f", got, cfg.ApplyFailPct)
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	e := New(1, Config{})
	for i := 0; i < 1000; i++ {
		if e.ApplyFault("s") != nil || e.StuckReboot("s") || e.DropSample("a") ||
			e.CrashServer("s") || e.WaveDelay(i) != 0 || e.LoadSpike(float64(i)) != 1 {
			t.Fatal("zero config must inject nothing")
		}
		if v, hit := e.CorruptSample("a", 42); hit || v != 42 {
			t.Fatal("zero config must not corrupt samples")
		}
	}
	if len(e.Events()) != 0 {
		t.Fatalf("events recorded under zero config: %v", e.Events())
	}
}

func TestDisabledInjector(t *testing.T) {
	d := Disabled
	if d.ApplyFault("s") != nil || d.StuckReboot("s") || d.DropSample("a") ||
		d.CrashServer("s") || d.WaveDelay(0) != 0 || d.LoadSpike(0) != 1 {
		t.Fatal("Disabled must no-op")
	}
	if v, hit := d.CorruptSample("a", 7); hit || v != 7 {
		t.Fatal("Disabled must not corrupt")
	}
}

func TestLoadSpikeIsPureInT(t *testing.T) {
	// Same (seed, t) must give the same factor regardless of call
	// order or how many other draws happened in between.
	a := New(11, DefaultConfig())
	b := drive(11) // b has consumed many class-stream draws
	for _, tt := range []float64{0, 500, 1234, 7200, 40000, 86400} {
		if fa, fb := a.LoadSpike(tt), b.LoadSpike(tt); fa != fb {
			t.Fatalf("LoadSpike(%g) not pure: %g vs %g", tt, fa, fb)
		}
	}
}

func TestLoadSpikeAmplitude(t *testing.T) {
	cfg := DefaultConfig()
	e := New(5, cfg)
	spikes, flats := 0, 0
	for tt := 0.0; tt < 50*cfg.SpikeWindowSec; tt += 60 {
		switch f := e.LoadSpike(tt); f {
		case 1:
			flats++
		case 1 + cfg.SpikeMag:
			spikes++
		default:
			t.Fatalf("unexpected spike factor %g", f)
		}
	}
	if spikes == 0 || flats == 0 {
		t.Fatalf("spike schedule degenerate: %d spikes, %d flats", spikes, flats)
	}
}

func TestCorruptSampleMagnitude(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OutlierPct = 1 // corrupt every sample
	e := New(2, cfg)
	up, down := 0, 0
	for i := 0; i < 200; i++ {
		v, hit := e.CorruptSample("a", 100)
		if !hit {
			t.Fatal("OutlierPct=1 must corrupt every sample")
		}
		switch {
		case math.Abs(v-100*cfg.OutlierMag) < 1e-9:
			up++
		case math.Abs(v-100/cfg.OutlierMag) < 1e-9:
			down++
		default:
			t.Fatalf("outlier value %g not ±%gx", v, cfg.OutlierMag)
		}
	}
	if up == 0 || down == 0 {
		t.Fatalf("outliers should go both directions: %d up, %d down", up, down)
	}
}

func TestFaultErrorDetection(t *testing.T) {
	err := &FaultError{Kind: "apply-fail", Target: "srv"}
	if !IsFault(err) {
		t.Fatal("FaultError must be detected")
	}
	if IsFault(nil) {
		t.Fatal("nil is not a fault")
	}
	wrapped := wrapErr{err}
	if !IsFault(wrapped) {
		t.Fatal("wrapped FaultError must be detected")
	}
}

type wrapErr struct{ inner error }

func (w wrapErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w wrapErr) Unwrap() error { return w.inner }

func TestSummaryAndCounts(t *testing.T) {
	e := New(1, Config{})
	if got := e.Summary(); got != "no faults injected" {
		t.Fatalf("empty summary = %q", got)
	}
	e2 := drive(4)
	counts := e2.Counts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(e2.Events()) {
		t.Fatalf("counts sum %d != events %d", total, len(e2.Events()))
	}
}
