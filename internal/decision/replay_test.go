package decision

import (
	"strings"
	"testing"
)

// synthLedger builds a recorded run tuned for mips whose evidence
// panels disagree across metrics:
//
//   - thp=on: mips winner (+3%), p99 regression (+20% latency)
//   - thp=madvise: mips wash, p99 winner (-20% latency)
//   - freq=2.4: guardrail-tripped at -4% mips, mild p99 win
//
// so replaying under p99 must flip the thp choice, and replaying with
// a looser guardrail must un-trip the freq trial.
func synthLedger() *Ledger {
	l := NewLedger()
	root := l.Record(-1, RunStarted("Web", "Skylake18", "independent", "mips", 7, 0.95, 2))

	sweep := l.Record(root, SweepStarted("sweep/thp", "thp", "off"))
	tOn := l.Record(sweep, TrialMeasured("sweep/thp/0", "thp", "on", "thp=off", "thp=on", TrialOutcome{
		DeltaPct: 3, PValue: 1e-6, Significant: true, Samples: 300,
		Evidence: []Evidence{
			{Metric: "mips", Control: Stat{N: 300, Mean: 100, Var: 4}, Treatment: Stat{N: 300, Mean: 103, Var: 4}},
			{Metric: "p99", Control: Stat{N: 64, Mean: 0.010, Var: 1e-8}, Treatment: Stat{N: 64, Mean: 0.012, Var: 1e-8}},
		},
	}))
	tMad := l.Record(sweep, TrialMeasured("sweep/thp/1", "thp", "madvise", "thp=off", "thp=madvise", TrialOutcome{
		DeltaPct: -0.1, PValue: 0.4, Significant: false, Samples: 300,
		Evidence: []Evidence{
			{Metric: "mips", Control: Stat{N: 300, Mean: 100, Var: 4}, Treatment: Stat{N: 300, Mean: 99.9, Var: 4}},
			{Metric: "p99", Control: Stat{N: 64, Mean: 0.010, Var: 1e-8}, Treatment: Stat{N: 64, Mean: 0.008, Var: 1e-8}},
		},
	}))
	l.Record(tMad, ArmRejected("thp", "madvise", -0.1, 0.4, false))
	l.Record(tOn, ArmAccepted("thp", "on", 3))

	sweep2 := l.Record(root, SweepStarted("sweep/freq", "freq", "2.0"))
	tTurbo := l.Record(sweep2, TrialMeasured("sweep/freq/0", "freq", "2.4", "freq=2.0", "freq=2.4", TrialOutcome{
		DeltaPct: -4, PValue: 1e-9, Significant: true, Samples: 120,
		Evidence: []Evidence{
			{Metric: "mips", Control: Stat{N: 120, Mean: 100, Var: 4}, Treatment: Stat{N: 120, Mean: 96, Var: 4}},
			{Metric: "p99", Control: Stat{N: 64, Mean: 0.010, Var: 1e-8}, Treatment: Stat{N: 64, Mean: 0.0099, Var: 1e-8}},
		},
	}))
	l.Record(tTurbo, GuardrailTrip(-4, 120, 2))
	l.Record(tTurbo, Revert("sweep/freq/0", "freq=2.0"))
	l.Record(sweep2, BaselineKept("freq", "2.0"))

	fin := l.Record(root, SweepStarted("final", "", "production"))
	l.Record(fin, TrialMeasured("final/production", "", "", "production", "softsku", TrialOutcome{
		DeltaPct: 5, PValue: 1e-9, Significant: true, Samples: 2000,
	}))
	l.Record(root, RunFinished("thp=on", 5, 8, 0, 1))
	return l
}

func TestReplayIdentity(t *testing.T) {
	evs := synthLedger().Events()
	rep, err := Replay(evs, Objective{GuardrailPct: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 0 {
		t.Fatalf("identity replay diverged:\n%s", rep.Summary())
	}
	if rep.Metric != "mips" || rep.Recorded != "mips" || rep.Missing != 0 {
		t.Fatalf("identity report wrong: %+v", rep)
	}
	if rep.Trials != 4 {
		t.Fatalf("re-judged %d trials, want 4", rep.Trials)
	}
	for _, c := range rep.Choices {
		if c.Recorded != c.Replayed {
			t.Fatalf("identity choice flipped: %+v", c)
		}
	}
	if rep.RecordedSKU != "thp=on" {
		t.Fatalf("recorded SKU %q", rep.RecordedSKU)
	}
}

func TestReplayUnderP99FlipsTheChoice(t *testing.T) {
	evs := synthLedger().Events()
	rep, err := Replay(evs, Objective{Metric: "p99", GuardrailPct: -1})
	if err != nil {
		t.Fatal(err)
	}
	// The final validation carries no evidence panel in this synthetic
	// ledger, so it is reported missing rather than silently judged.
	if rep.Trials != 3 || rep.Missing != 1 {
		t.Fatalf("trials=%d missing=%d, want 3/1", rep.Trials, rep.Missing)
	}
	var kinds []string
	for _, d := range rep.Divergences {
		kinds = append(kinds, d.Kind)
	}
	if len(rep.Divergences) != 3 {
		t.Fatalf("want 3 divergences (2 verdicts + 1 choice), got %v:\n%s", kinds, rep.Summary())
	}
	var choice *Divergence
	for i := range rep.Divergences {
		if rep.Divergences[i].Kind == "choice" {
			choice = &rep.Divergences[i]
		}
	}
	if choice == nil || choice.Recorded != "thp=on" || choice.Replayed != "thp=madvise" {
		t.Fatalf("p99 replay did not flip thp to madvise: %+v\n%s", choice, rep.Summary())
	}
	// The guardrail-tripped freq trial keeps its recorded outcome
	// (GuardrailPct < 0), so sweep/freq stays at baseline.
	for _, c := range rep.Choices {
		if c.Group == "sweep/freq" && (c.Recorded != "baseline" || c.Replayed != "baseline") {
			t.Fatalf("freq choice moved: %+v", c)
		}
	}
}

func TestReplayLooserGuardrailUntripsTrial(t *testing.T) {
	evs := synthLedger().Events()
	rep, err := Replay(evs, Objective{GuardrailPct: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) != 1 {
		t.Fatalf("want exactly the guardrail divergence:\n%s", rep.Summary())
	}
	d := rep.Divergences[0]
	if d.Kind != "guardrail" || !strings.Contains(d.Recorded, "guardrail-tripped") || strings.Contains(d.Replayed, "tripped") {
		t.Fatalf("guardrail divergence wrong: %+v", d)
	}
}

func TestReplayErrors(t *testing.T) {
	if _, err := Replay(nil, Objective{}); err == nil {
		t.Fatal("replay of empty ledger succeeded")
	}
	if _, err := Replay(synthLedger().Events(), Objective{Metric: "latency"}); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestKnownMetricsSortedAndComplete(t *testing.T) {
	got := KnownMetrics()
	want := []string{"mips", "p99", "perfwatt", "qps"}
	if len(got) != len(want) {
		t.Fatalf("metrics %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("metrics %v, want %v", got, want)
		}
	}
}
