package decision

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// buildLedger assembles a small but structurally complete tuning
// ledger through the public constructors.
func buildLedger() *Ledger {
	l := NewLedger()
	root := l.Record(-1, RunStarted("Web", "Skylake18", "independent", "mips", 7, 0.95, 2))
	sweep := l.Record(root, SweepStarted("sweep/thp", "thp", "off"))
	ev := []Evidence{
		{Metric: "mips", Control: Stat{N: 300, Mean: 100, Var: 4}, Treatment: Stat{N: 300, Mean: 103, Var: 4}},
		{Metric: "p99", Control: Stat{N: 32, Mean: 0.01, Var: 1e-8}, Treatment: Stat{N: 32, Mean: 0.012, Var: 1e-8}},
	}
	trial := l.Record(sweep, TrialMeasured("sweep/thp/1", "thp", "on", "thp=off", "thp=on", TrialOutcome{
		DeltaPct: 3, PValue: 0.001, Significant: true, Samples: 300, VirtualSec: 150,
		EvidenceID: "00deadbeef00cafe", Evidence: ev,
	}))
	l.Record(trial, ArmAccepted("thp", "on", 3))
	l.Record(root, RunFinished("thp=on", 3, 5, 0, 0))
	return l
}

func TestLedgerSeqAndParents(t *testing.T) {
	l := buildLedger()
	evs := l.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, e := range evs {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Parent >= e.Seq {
			t.Fatalf("event %d parents forward to %d", i, e.Parent)
		}
	}
	if evs[0].Parent != -1 || evs[2].Parent != 1 || evs[3].Parent != 2 {
		t.Fatalf("parent links wrong: %+v", evs)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	l := buildLedger()
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != l.Len() {
		t.Fatalf("JSONL has %d lines for %d events", n, l.Len())
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, l.Events()) {
		t.Fatalf("round trip diverged:\n%+v\n%+v", back, l.Events())
	}
}

func TestJSONLRejectsCorruptLedgers(t *testing.T) {
	for _, bad := range []string{
		`{"seq":1,"parent":-1,"kind":"run_started"}`,                                               // seq gap
		`{"seq":0,"parent":0,"kind":"run_started"}`,                                                // self-parent
		`{"seq":0,"parent":-1,"kind":"run_started"}` + "\n" + `{"seq":1,"parent":5,"kind":"skip"}`, // forward parent
		`not json`,
	} {
		if _, err := ReadJSONL(strings.NewReader(bad)); err == nil {
			t.Errorf("ledger %q parsed without error", bad)
		}
	}
}

func TestFiniteSanitizesFloats(t *testing.T) {
	e := TrialMeasured("l", "k", "s", "c", "t", TrialOutcome{DeltaPct: math.Inf(1), PValue: math.NaN()})
	if e.DeltaPct != math.MaxFloat64 || e.PValue != 0 {
		t.Fatalf("infinities not clamped: %+v", e)
	}
	if _, err := json.Marshal(e); err != nil {
		t.Fatalf("sanitized event not marshalable: %v", err)
	}
}

func TestBufferDrainRebasesParents(t *testing.T) {
	l := NewLedger()
	root := l.Record(-1, RunStarted("Web", "Skylake18", "independent", "mips", 1, 0.95, 0))
	var b Buffer
	first := b.Record(-1, TrialStarted(0.95, 300, 30000, 2))
	b.Record(first, GuardrailTrip(-4, 120, 2))
	trial := l.Record(root, TrialMeasured("t", "thp", "on", "c", "t", TrialOutcome{}))
	b.DrainTo(l, trial)
	evs := l.Events()
	if b.Len() != 0 {
		t.Fatal("drain did not empty the buffer")
	}
	started, trip := evs[2], evs[3]
	if started.Kind != KindTrialStarted || started.Parent != trial {
		t.Fatalf("buffered root not rebased onto trial: %+v", started)
	}
	if trip.Kind != KindGuardrailTrip || trip.Parent != started.Seq {
		t.Fatalf("buffer-local parent not rebased: %+v", trip)
	}
}

func TestWriteTreeIndentsByCausality(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTree(&buf, buildLedger().Events()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("tree has %d lines", len(lines))
	}
	wantDepth := []int{0, 1, 2, 3, 1}
	for i, line := range lines {
		indent := (len(line) - len(strings.TrimLeft(line, " "))) / 2
		if indent != wantDepth[i] {
			t.Fatalf("line %d indented %d, want %d: %q", i, indent, wantDepth[i], line)
		}
	}
	if !strings.Contains(buf.String(), "accepted thp=on") {
		t.Fatalf("tree missing acceptance summary:\n%s", buf.String())
	}
}

func TestDiff(t *testing.T) {
	a, b := buildLedger().Events(), buildLedger().Events()
	if d := Diff(a, b); d != nil {
		t.Fatalf("identical ledgers diff: %v", d)
	}
	b[2].DeltaPct = 99
	d := Diff(a, b)
	if len(d) != 1 || !strings.Contains(d[0], "#2") {
		t.Fatalf("diff missed the changed event: %v", d)
	}
	if d := Diff(a, a[:3]); len(d) == 0 {
		t.Fatal("length mismatch not reported")
	}
}

func TestHandlerServesTail(t *testing.T) {
	l := buildLedger()
	rr := httptest.NewRecorder()
	l.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/decisions?n=2", nil))
	var got struct {
		Total  int     `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if got.Total != 5 || len(got.Events) != 2 || got.Events[1].Kind != KindRunFinished {
		t.Fatalf("tail wrong: %+v", got)
	}
	rr = httptest.NewRecorder()
	l.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/decisions?n=bogus", nil))
	if rr.Code != 400 {
		t.Fatalf("bad n accepted: %d", rr.Code)
	}
}
