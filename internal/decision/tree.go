package decision

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Summary renders one event as a single human line, used by the tree
// view and diffs.
func (e Event) Summary() string {
	switch e.Kind {
	case KindRunStarted:
		return fmt.Sprintf("run %s on %s (%s sweep, %s metric, seed %d, confidence %g, guardrail %g%%)",
			e.Service, e.Platform, e.Sweep, e.Metric, e.Seed, e.Confidence, e.GuardrailPct)
	case KindSweepStarted:
		if e.Knob != "" {
			return fmt.Sprintf("sweep %s (baseline %s)", e.Knob, e.Control)
		}
		return fmt.Sprintf("group %s (baseline %s)", e.Label, e.Control)
	case KindTrialStarted:
		return fmt.Sprintf("trial started (%s, guardrail %g%%)", e.Detail, e.GuardrailPct)
	case KindTrialMeasured:
		what := e.Setting
		if what == "" {
			what = e.Treatment
		}
		return fmt.Sprintf("measured %s: %+.3f%% (p=%.3g, sig=%v, n=%d)",
			what, e.DeltaPct, e.PValue, e.Significant, e.Samples)
	case KindArmAccepted:
		if e.Detail == "baseline kept" {
			return fmt.Sprintf("kept baseline %s for %s", e.Setting, e.Knob)
		}
		return fmt.Sprintf("accepted %s=%s (%+.3f%%)", e.Knob, e.Setting, e.DeltaPct)
	case KindArmRejected:
		return fmt.Sprintf("rejected %s=%s (%+.3f%%, p=%.3g, sig=%v)",
			e.Knob, e.Setting, e.DeltaPct, e.PValue, e.Significant)
	case KindGuardrailTrip:
		return fmt.Sprintf("guardrail trip: %+.3f%% past -%g%% after %d samples",
			e.DeltaPct, e.GuardrailPct, e.Samples)
	case KindRevert:
		return fmt.Sprintf("reverted %s to control %s", e.Label, e.Control)
	case KindSkip:
		return fmt.Sprintf("skipped %s (%s): %s", e.Setting, e.Label, e.Detail)
	case KindConverged:
		return "converged: " + e.Detail
	case KindRungAdvanced:
		return fmt.Sprintf("rung %d advanced (%s, cap %d samples/arm)", e.Wave, e.Detail, e.Samples)
	case KindBudgetExhausted:
		return fmt.Sprintf("%s budget exhausted after %d rounds (%s)", e.Label, e.Wave, e.Detail)
	case KindRunFinished:
		return fmt.Sprintf("finished: soft SKU %s, vs production %+.2f%% (%s)",
			e.Treatment, e.DeltaPct, e.Detail)
	case KindRolloutStarted:
		return fmt.Sprintf("rollout %s -> %s (%d servers, %s)", e.Service, e.Treatment, e.Servers, e.Detail)
	case KindWavePassed:
		return fmt.Sprintf("wave %d passed (%d servers, %s)", e.Wave, e.Servers, e.Detail)
	case KindWaveFailed:
		return fmt.Sprintf("wave %d FAILED (%d servers): %s", e.Wave, e.Servers, e.Detail)
	case KindRollback:
		return fmt.Sprintf("rolled back %d servers", e.Servers)
	case KindRolloutDone:
		return fmt.Sprintf("rollout done in %d waves (%s)", e.Wave, e.Detail)
	case KindEpochStarted:
		return fmt.Sprintf("epoch %d (t=%gs, %d servers, %s)", e.Epoch, e.VirtualSec, e.Servers, e.Detail)
	case KindEpochDone:
		return fmt.Sprintf("epoch %d done (%s)", e.Epoch, e.Detail)
	case KindDriftDetected:
		return fmt.Sprintf("drift on %s: %+.1f%% over %d samples (%s)", e.Service, e.DeltaPct, e.Samples, e.Detail)
	case KindDegradedEnter:
		return fmt.Sprintf("%s DEGRADED: %d samples (%s)", e.Service, e.Samples, e.Detail)
	case KindDegradedExit:
		return fmt.Sprintf("%s recovered (%d samples)", e.Service, e.Samples)
	case KindBreakerOpen:
		return fmt.Sprintf("breaker OPEN on %s (%s)", e.Service, e.Detail)
	case KindBreakerProbe:
		return fmt.Sprintf("breaker half-open probe on %s", e.Service)
	case KindBreakerClosed:
		return fmt.Sprintf("breaker closed on %s", e.Service)
	case KindQuarantine:
		return fmt.Sprintf("quarantined %s (%s)", e.Label, e.Detail)
	case KindRepair:
		return fmt.Sprintf("repaired %s", e.Label)
	case KindConfigFreeze:
		return fmt.Sprintf("froze config of %s (%s)", e.Service, e.Detail)
	case KindWatchdogAbandon:
		return fmt.Sprintf("watchdog abandoned %s after %gs", e.Label, e.VirtualSec)
	default:
		return string(e.Kind)
	}
}

// WriteTree renders events as an indented decision tree in sequence
// order: every event on one line under its causal parent, the
// skutrace `tree` view.
func WriteTree(w io.Writer, events []Event) error {
	depth := make([]int, len(events))
	for i, e := range events {
		d := 0
		if e.Parent >= 0 && e.Parent < i {
			d = depth[e.Parent] + 1
		}
		depth[i] = d
		if _, err := fmt.Fprintf(w, "%s#%-4d %s\n", strings.Repeat("  ", d), e.Seq, e.Summary()); err != nil {
			return err
		}
	}
	return nil
}

// Diff compares two ledgers event by event and returns one line per
// divergence (nil when identical). Comparison is on the canonical
// JSON encoding, so any field difference — verdicts, deltas, evidence
// moments — surfaces.
func Diff(a, b []Event) []string {
	var out []string
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		ja, _ := json.Marshal(a[i])
		jb, _ := json.Marshal(b[i])
		if string(ja) != string(jb) {
			out = append(out, fmt.Sprintf("#%d differs:\n  a: %s\n  b: %s", i, ja, jb))
		}
	}
	if len(a) != len(b) {
		out = append(out, fmt.Sprintf("length differs: a has %d events, b has %d", len(a), len(b)))
	}
	return out
}
