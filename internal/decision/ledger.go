package decision

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"softsku/internal/telemetry"
)

// Ledger volume telemetry: one counter, so operators can see how many
// decisions a tuning run generates without reading the ledger.
var mEvents = telemetry.Default.Counter("softsku_decision_events_total",
	"Decision events appended to ledgers.")

// Sink receives decision events. Ledger appends directly; Buffer
// collects events produced inside a parallel trial for a serial,
// spec-ordered drain — the split that keeps ledgers byte-identical at
// any worker count.
type Sink interface {
	// Record appends e with the given causal parent (-1: root, or, for
	// a Buffer, "the trial this buffer belongs to") and returns the
	// event's sequence number within the sink.
	Record(parent int, e Event) int
}

// Ledger is the append-only decision log of one run. It is safe for
// concurrent use, but deterministic ledgers require that appends
// happen on the serial phases of the run (spec build and merge) —
// the recording call sites in core/fleet obey that, and abtest's
// parallel-phase events route through a per-trial Buffer.
type Ledger struct {
	mu     sync.Mutex
	events []Event
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Record appends e, assigning its sequence number and parent link.
func (l *Ledger) Record(parent int, e Event) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = len(l.events)
	e.Parent = parent
	l.events = append(l.events, e)
	mEvents.Inc()
	return e.Seq
}

// Len returns the number of recorded events.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of the ledger's events in append order.
func (l *Ledger) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Tail returns a copy of the last n events (all events when n <= 0).
func (l *Ledger) Tail(n int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > len(l.events) {
		n = len(l.events)
	}
	out := make([]Event, n)
	copy(out, l.events[len(l.events)-n:])
	return out
}

// WriteJSONL writes the ledger as JSON Lines: one compact object per
// event, in append order. encoding/json marshals struct fields in
// declaration order, so the byte stream is a pure function of the
// event sequence — the property TestLedgerBitIdentical pins.
func (l *Ledger) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range l.Events() {
		b, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("decision: marshal event %d: %w", e.Seq, err)
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL ledger back into events. Sequence numbers
// and parent links are validated so replay and rendering can index
// into the slice without bounds anxiety.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("decision: line %d: %w", line, err)
		}
		if e.Seq != len(events) {
			return nil, fmt.Errorf("decision: line %d: sequence %d out of order (want %d)", line, e.Seq, len(events))
		}
		if e.Parent < -1 || e.Parent >= e.Seq {
			return nil, fmt.Errorf("decision: line %d: parent %d is not an earlier event", line, e.Parent)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// Handler serves the ledger tail as JSON — the /debug/decisions
// endpoint. Query parameter n bounds the tail (default 64, 0 = all).
func (l *Ledger) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 64
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, `{"error":"n must be an integer"}`, http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Total  int     `json:"total"`
			Events []Event `json:"events"`
		}{l.Len(), l.Tail(n)})
	})
}

// Buffer collects the events one trial produces while it runs on a
// worker goroutine (abtest's trial_started and guardrail_trip).
// Buffered parents are buffer-local: -1 means "the trial's own ledger
// event", i >= 0 the buffer's i-th event. DrainTo rebases both onto
// real ledger sequence numbers during the serial merge, so event
// order in the ledger never depends on worker scheduling.
//
// A Buffer is used by one trial goroutine at a time and is not
// otherwise synchronized.
type Buffer struct {
	events []Event
}

// Record implements Sink with buffer-local sequence numbers.
func (b *Buffer) Record(parent int, e Event) int {
	e.Seq = len(b.events)
	e.Parent = parent
	b.events = append(b.events, e)
	return e.Seq
}

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return len(b.events) }

// DrainTo appends the buffered events to l as descendants of parent
// and empties the buffer.
func (b *Buffer) DrainTo(l *Ledger, parent int) {
	base := make([]int, len(b.events))
	for i, e := range b.events {
		p := parent
		if e.Parent >= 0 && e.Parent < i {
			p = base[e.Parent]
		}
		base[i] = l.Record(p, e)
	}
	b.events = b.events[:0]
}
