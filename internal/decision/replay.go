package decision

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"softsku/internal/stats"
)

// Counterfactual replay (ROADMAP item 5): re-walk a recorded ledger
// under a different objective or guardrail and report every decision
// that would have gone the other way — without re-running the
// simulator. The raw material is the evidence panel each
// trial_measured event carries: per-metric (n, mean, var) moments for
// both arms, enough to re-run Welch's t-test and the guardrail rule
// for any recorded metric.
//
// Replay recomputes only what the objective changes. Under the
// recorded metric the recorded verdict is reused verbatim (identity:
// replaying a ledger under its own objective reports zero
// divergences), and with GuardrailPct < 0 the recorded guardrail
// outcome is kept — recomputing it from final moments would
// second-guess the sequential trip rule abtest actually ran.

// Metrics replay understands. The first three are the tuner's live
// objectives; p99 exists only as recorded evidence (lower is better).
var replayMetrics = map[string]float64{
	"mips":     1,
	"qps":      1,
	"perfwatt": 1,
	"p99":      -1, // latency: improvement is a negative delta
}

// KnownMetrics lists the objectives a ledger can be replayed under.
func KnownMetrics() []string {
	out := make([]string, 0, len(replayMetrics))
	for m := range replayMetrics {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Objective is the counterfactual policy a ledger is replayed under.
type Objective struct {
	// Metric is the objective to re-judge trials on: mips, qps,
	// perfwatt, or p99. Empty means the recorded metric.
	Metric string
	// GuardrailPct re-evaluates each trial's guardrail at this
	// threshold (0 disables it). Negative keeps each trial's recorded
	// guardrail outcome.
	GuardrailPct float64
	// Confidence overrides the significance level (0: recorded).
	Confidence float64
}

// Divergence is one decision that would have changed under the
// replayed objective.
type Divergence struct {
	Seq      int    `json:"seq"`   // the event whose decision changed
	Label    string `json:"label"` // trial or group label
	Kind     string `json:"kind"`  // verdict | choice | guardrail
	Recorded string `json:"recorded"`
	Replayed string `json:"replayed"`
}

func (d Divergence) String() string {
	return fmt.Sprintf("#%d %s [%s] recorded: %s | replayed: %s", d.Seq, d.Label, d.Kind, d.Recorded, d.Replayed)
}

// Choice is one decision group's winner under the replayed objective.
type Choice struct {
	Group    string `json:"group"`    // sweep label
	Knob     string `json:"knob"`     // empty for multi-knob groups
	Recorded string `json:"recorded"` // chosen setting (or "baseline")
	Replayed string `json:"replayed"`
}

// Report is the result of one counterfactual replay.
type Report struct {
	Service      string       `json:"service"`
	Platform     string       `json:"platform"`
	Sweep        string       `json:"sweep"`
	Recorded     string       `json:"recorded_metric"`
	Metric       string       `json:"replayed_metric"`
	GuardrailPct float64      `json:"guardrail_pct"`
	Confidence   float64      `json:"confidence"`
	Trials       int          `json:"trials"`      // trials re-judged
	Missing      int          `json:"missing"`     // trials lacking evidence for the metric
	Choices      []Choice     `json:"choices"`     // every group's winner, recorded vs replayed
	Divergences  []Divergence `json:"divergences"` // decisions that flipped
	RecordedSKU  string       `json:"recorded_softsku"`
	Note         string       `json:"note,omitempty"`
}

// Summary renders the report for terminals.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replay %s on %s (%s sweep): recorded objective %s -> replayed %s",
		r.Service, r.Platform, r.Sweep, r.Recorded, r.Metric)
	if r.GuardrailPct > 0 {
		fmt.Fprintf(&b, ", guardrail %g%%", r.GuardrailPct)
	}
	fmt.Fprintf(&b, "\n%d trials re-judged", r.Trials)
	if r.Missing > 0 {
		fmt.Fprintf(&b, " (%d lacked %s evidence)", r.Missing, r.Metric)
	}
	fmt.Fprintf(&b, ", %d divergences\n", len(r.Divergences))
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	for _, c := range r.Choices {
		mark := "  "
		if c.Recorded != c.Replayed {
			mark = "~>"
		}
		fmt.Fprintf(&b, "%s %-24s recorded %-12s replayed %s\n", mark, c.Group, c.Recorded, c.Replayed)
	}
	if r.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", r.Note)
	}
	return b.String()
}

// trialReplay is one trial's recorded and replayed judgement.
type trialReplay struct {
	seq      int
	label    string
	knob     string
	setting  string
	recAcc   bool    // recorded: accepted (has arm_accepted child)
	recTrip  bool    // recorded: guardrail tripped
	repOK    bool    // replayed: candidate eligible (significant improvement, no trip)
	repTrip  bool    // replayed: guardrail would trip
	repGain  float64 // replayed: directed gain (positive = better)
	repDelta float64 // replayed: raw delta pct on the replay metric
	missing  bool    // no evidence for the replay metric
}

// Replay re-walks a recorded ledger under obj. The ledger must start
// with a run_started event (i.e. come from core.Tool, not fleet).
func Replay(events []Event, obj Objective) (*Report, error) {
	var run *Event
	for i := range events {
		if events[i].Kind == KindRunStarted {
			run = &events[i]
			break
		}
	}
	if run == nil {
		return nil, fmt.Errorf("decision: ledger has no run_started event; nothing to replay")
	}
	metric := obj.Metric
	if metric == "" {
		metric = run.Metric
	}
	dir, ok := replayMetrics[metric]
	if !ok {
		return nil, fmt.Errorf("decision: unknown replay metric %q (known: %s)",
			metric, strings.Join(KnownMetrics(), ", "))
	}
	confidence := obj.Confidence
	if confidence <= 0 || confidence >= 1 {
		confidence = run.Confidence
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	alpha := 1 - confidence
	guardrail := obj.GuardrailPct
	if guardrail < 0 {
		guardrail = run.GuardrailPct
	}
	sameMetric := metric == run.Metric
	sameGuardrail := obj.GuardrailPct < 0 ||
		(obj.GuardrailPct == run.GuardrailPct && (obj.Confidence <= 0 || obj.Confidence == run.Confidence))
	sameVerdict := sameMetric && (obj.Confidence <= 0 || obj.Confidence == run.Confidence)

	rep := &Report{
		Service:      run.Service,
		Platform:     run.Platform,
		Sweep:        run.Sweep,
		Recorded:     run.Metric,
		Metric:       metric,
		GuardrailPct: guardrail,
		Confidence:   confidence,
	}

	// Index children by kind for recorded-outcome lookups. A
	// baseline-kept event parents to the sweep, not a trial, so it
	// never lands in accepted — the recorded winner lookup below falls
	// through to "baseline" exactly when the sweep kept it.
	accepted := make(map[int]bool) // trial seq -> arm_accepted descendant
	tripped := make(map[int]bool)  // trial seq -> guardrail_trip descendant
	// trialOf walks parent links to the nearest trial_measured ancestor
	// (-1 if none): a guardrail_trip drains under the trial's
	// trial_started event, one hop below the trial itself.
	trialOf := func(seq int) int {
		for p := seq; p >= 0 && p < len(events); p = events[p].Parent {
			if events[p].Kind == KindTrialMeasured {
				return p
			}
		}
		return -1
	}
	for _, e := range events {
		switch e.Kind {
		case KindArmAccepted:
			if e.Detail != "baseline kept" {
				if t := trialOf(e.Parent); t >= 0 {
					accepted[t] = true
				}
			}
		case KindGuardrailTrip:
			if t := trialOf(e.Parent); t >= 0 {
				tripped[t] = true
			}
		case KindRunFinished:
			rep.RecordedSKU = e.Treatment
		}
	}

	// Re-judge every measured trial, grouped under its sweep event.
	groups := make(map[int][]trialReplay) // sweep seq -> trials in order
	var groupOrder []int
	groupOf := make(map[int]*Event)
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case KindSweepStarted:
			groupOf[e.Seq] = e
			groupOrder = append(groupOrder, e.Seq)
		case KindTrialMeasured:
			tr := trialReplay{
				seq:     e.Seq,
				label:   e.Label,
				knob:    e.Knob,
				setting: e.Setting,
				recAcc:  accepted[e.Seq],
				recTrip: tripped[e.Seq],
			}
			if tr.setting == "" {
				tr.setting = e.Treatment
			}

			// Replayed verdict: reuse the recorded one when nothing about
			// it changes; otherwise re-run Welch on the evidence moments.
			var sig bool
			var gain, delta float64
			if sameVerdict {
				sig, delta, gain = e.Significant, e.DeltaPct, e.DeltaPct
			} else if ev := findEvidence(e.Evidence, metric); ev == nil {
				tr.missing = true
				rep.Missing++
			} else {
				w := stats.WelchFromMoments(
					ev.Treatment.N, ev.Treatment.Mean, ev.Treatment.Var,
					ev.Control.N, ev.Control.Mean, ev.Control.Var)
				sig = w.P < alpha
				delta = deltaPct(ev.Control.Mean, ev.Treatment.Mean)
				gain = dir * delta
			}
			if !tr.missing {
				rep.Trials++
				tr.repDelta = delta
				tr.repGain = gain
				if sameGuardrail {
					tr.repTrip = tr.recTrip
				} else {
					tr.repTrip = guardrail > 0 && sig && gain < -guardrail
				}
				tr.repOK = sig && gain > 0 && !tr.repTrip

				// Recorded eligibility: was this candidate a significant
				// improvement under the recorded objective? (recAcc alone
				// encodes the within-group argmax, which choice divergence
				// below handles; eligibility is the per-trial verdict.)
				recEligible := e.Significant && e.DeltaPct > 0 && !tr.recTrip
				recV := verdict(recEligible, tr.recTrip)
				repV := verdict(tr.repOK, tr.repTrip)
				if tr.repTrip != tr.recTrip {
					rep.Divergences = append(rep.Divergences, Divergence{
						Seq: e.Seq, Label: e.Label, Kind: "guardrail",
						Recorded: recV, Replayed: repV,
					})
				} else if tr.repOK != recEligible {
					rep.Divergences = append(rep.Divergences, Divergence{
						Seq: e.Seq, Label: e.Label, Kind: "verdict",
						Recorded: fmt.Sprintf("%s (%+.3f%% %s)", recV, e.DeltaPct, run.Metric),
						Replayed: fmt.Sprintf("%s (%+.3f%% %s)", repV, tr.repDelta, metric),
					})
				}
			}
			groups[e.Parent] = append(groups[e.Parent], tr)
		}
	}

	// Group choices: recorded winner (arm_accepted child of a trial,
	// or baseline kept) vs the replayed argmax over eligible trials.
	for _, gseq := range groupOrder {
		g := groupOf[gseq]
		trials := groups[gseq]
		// The final validations measure the composed SKU; they choose
		// nothing, so there is no winner to compare.
		if len(trials) == 0 || g.Label == "final" {
			continue
		}
		recorded := "baseline"
		for _, tr := range trials {
			if tr.recAcc {
				recorded = chosenName(tr)
			}
		}
		replayed := "baseline"
		bestGain := 0.0
		anyMissing := false
		for _, tr := range trials {
			if tr.missing {
				anyMissing = true
				continue
			}
			if tr.repOK && tr.repGain > bestGain {
				bestGain = tr.repGain
				replayed = chosenName(tr)
			}
		}
		if anyMissing {
			replayed += " (partial evidence)"
		}
		rep.Choices = append(rep.Choices, Choice{
			Group: g.Label, Knob: g.Knob, Recorded: recorded, Replayed: replayed,
		})
		if recorded != replayed {
			rep.Divergences = append(rep.Divergences, Divergence{
				Seq: gseq, Label: g.Label, Kind: "choice",
				Recorded: recorded, Replayed: replayed,
			})
		}
	}

	if run.Sweep == "hillclimb" && len(rep.Divergences) > 0 {
		rep.Note = "hill-climb rounds chain: after the first diverging round the recorded candidate sets " +
			"no longer match what the replayed objective would have explored — divergences past it are indicative only"
	}
	sort.SliceStable(rep.Divergences, func(i, j int) bool { return rep.Divergences[i].Seq < rep.Divergences[j].Seq })
	return rep, nil
}

func chosenName(tr trialReplay) string {
	if tr.knob != "" {
		return tr.knob + "=" + tr.setting
	}
	return tr.setting
}

func verdict(accepted, trip bool) string {
	switch {
	case trip:
		return "guardrail-tripped"
	case accepted:
		return "accepted"
	default:
		return "rejected"
	}
}

func findEvidence(evs []Evidence, metric string) *Evidence {
	for i := range evs {
		if evs[i].Metric == metric {
			return &evs[i]
		}
	}
	return nil
}

// deltaPct mirrors abtest's definition, including the zero-control
// edges (±Inf clamped by callers via finite when re-recorded).
func deltaPct(control, treatment float64) float64 {
	switch {
	case control != 0:
		return (treatment - control) / control * 100
	case treatment == 0:
		return 0
	case treatment > 0:
		return math.Inf(1)
	default:
		return math.Inf(-1)
	}
}
