// Package decision is the tuning pipeline's flight recorder: an
// append-only, seeded-deterministic ledger of every decision µSKU
// makes while composing a soft SKU — trials started and measured,
// arms accepted or rejected with their p-value and delta, guardrail
// trips, reverts, skips, rollout waves passing and failing — each
// with a causal parent link, exported as JSONL (one compact JSON
// object per line, stable field order).
//
// The ledger is bound by the repo's determinism contract (DESIGN.md
// §8): two runs with the same core.Input and seed must produce
// byte-identical ledgers at any worker count, with or without chaos.
// That rules out wall-clock timestamps and scheduler-dependent span
// ids; the link from a ledger event back to the telemetry trace is
// instead the EvidenceID, a label-derived deterministic id stamped
// into both the event and the trial's span arguments.
//
// Events must be built through the constructors in this file —
// softskulint's decisionevent analyzer rejects hand-rolled Event
// literals outside this package — so the schema consumed by
// cmd/skutrace, the replay engine, and /debug/decisions stays
// canonical.
package decision

import (
	"fmt"
	"math"
	"strconv"
)

// Kind names one decision-event class. The set is closed: replay and
// rendering switch on it.
type Kind string

// Event kinds, in rough causal order of a tuning run and a rollout.
const (
	KindRunStarted      Kind = "run_started"
	KindSweepStarted    Kind = "sweep_started"
	KindTrialStarted    Kind = "trial_started"
	KindTrialMeasured   Kind = "trial_measured"
	KindArmAccepted     Kind = "arm_accepted"
	KindArmRejected     Kind = "arm_rejected"
	KindGuardrailTrip   Kind = "guardrail_trip"
	KindRevert          Kind = "revert"
	KindSkip            Kind = "skip"
	KindConverged       Kind = "converged"
	KindRungAdvanced    Kind = "rung_advanced"
	KindBudgetExhausted Kind = "budget_exhausted"
	KindRunFinished     Kind = "run_finished"
	KindRolloutStarted  Kind = "rollout_started"
	KindWavePassed      Kind = "wave_passed"
	KindWaveFailed      Kind = "wave_failed"
	KindRollback        Kind = "rollback"
	KindRolloutDone     Kind = "rollout_done"

	// Fleet-controller kinds: the continuous tuning loop's epoch
	// lifecycle and its self-healing machinery (breakers, quarantine,
	// flap damping, degraded mode, watchdog abandons).
	KindEpochStarted    Kind = "epoch_started"
	KindEpochDone       Kind = "epoch_done"
	KindDriftDetected   Kind = "drift_detected"
	KindDegradedEnter   Kind = "degraded_enter"
	KindDegradedExit    Kind = "degraded_exit"
	KindBreakerOpen     Kind = "breaker_open"
	KindBreakerProbe    Kind = "breaker_probe"
	KindBreakerClosed   Kind = "breaker_closed"
	KindQuarantine      Kind = "quarantine"
	KindRepair          Kind = "repair"
	KindConfigFreeze    Kind = "config_freeze"
	KindWatchdogAbandon Kind = "watchdog_abandon"
	KindTwinPruned      Kind = "twin_pruned"
)

// Stat is the sufficient statistics of one arm's sample stream for
// one metric: enough to re-run Welch's t-test at replay time without
// the raw samples.
type Stat struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Var  float64 `json:"var"`
}

// Evidence is one metric's paired measurement panel for a trial. A
// trial carries one Evidence per candidate objective (mips, qps,
// perfwatt, p99), so a replay under a different objective has real
// moments to test — the counterfactual layer's raw material.
type Evidence struct {
	Metric    string `json:"metric"`
	Control   Stat   `json:"control"`
	Treatment Stat   `json:"treatment"`
}

// Event is one ledger entry. Seq and Parent are assigned by the
// ledger on append (Parent -1 marks a root); every other field is set
// by the constructor for its kind and zero elsewhere — omitempty
// keeps the JSONL compact and the schema greppable.
type Event struct {
	Seq    int    `json:"seq"`
	Parent int    `json:"parent"`
	Kind   Kind   `json:"kind"`
	Label  string `json:"label,omitempty"`

	// Run identity (run_started / rollout_started).
	Service      string  `json:"service,omitempty"`
	Platform     string  `json:"platform,omitempty"`
	Sweep        string  `json:"sweep,omitempty"`
	Metric       string  `json:"metric,omitempty"`
	Seed         uint64  `json:"seed,omitempty"`
	Confidence   float64 `json:"confidence,omitempty"`
	GuardrailPct float64 `json:"guardrail_pct,omitempty"`

	// Knob decision payload (sweep/trial/arm events).
	Knob        string  `json:"knob,omitempty"`
	Setting     string  `json:"setting,omitempty"`
	Control     string  `json:"control,omitempty"`
	Treatment   string  `json:"treatment,omitempty"`
	DeltaPct    float64 `json:"delta_pct,omitempty"`
	PValue      float64 `json:"p_value,omitempty"`
	Significant bool    `json:"significant,omitempty"`
	Samples     int     `json:"samples,omitempty"`
	VirtualSec  float64 `json:"virtual_sec,omitempty"`

	// Rollout payload.
	Wave    int `json:"wave,omitempty"`
	Servers int `json:"servers,omitempty"`

	// Controller payload: the epoch an event belongs to (1-based; 0 is
	// omitted for non-controller events).
	Epoch int `json:"epoch,omitempty"`

	Detail string `json:"detail,omitempty"`

	// EvidenceID is the deterministic id linking this event to the
	// telemetry span that produced its measurements: both carry
	// hex(rng.Derive(runSeed, "evidence/"+label)).
	EvidenceID string     `json:"evidence_id,omitempty"`
	Evidence   []Evidence `json:"evidence,omitempty"`
}

// finite sanitizes a float for JSON: encoding/json rejects NaN and
// ±Inf, and the A/B tester's DeltaPct is ±Inf when the control mean
// is zero. Infinities clamp to ±MaxFloat64 (still "beyond any
// threshold" for every comparison replay makes); NaN becomes 0.
func finite(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	default:
		return v
	}
}

// RunStarted opens a tuning run's ledger: the target, the objective,
// and the statistical policy every recorded verdict was made under.
func RunStarted(service, platform, sweep, metric string, seed uint64, confidence, guardrailPct float64) Event {
	return Event{
		Kind:         KindRunStarted,
		Service:      service,
		Platform:     platform,
		Sweep:        sweep,
		Metric:       metric,
		Seed:         seed,
		Confidence:   finite(confidence),
		GuardrailPct: finite(guardrailPct),
	}
}

// SweepStarted opens one decision group: a knob sweep, a hill-climb
// round, an exhaustive enumeration, or the final validations. knob is
// empty for multi-knob groups; baseline is the configuration (or
// setting) the group's candidates are measured against.
func SweepStarted(label, knob, baseline string) Event {
	return Event{Kind: KindSweepStarted, Label: label, Knob: knob, Control: baseline}
}

// TrialStarted records that an A/B comparison began, with the sample
// budget it was given. Emitted by abtest.Run through the trial's
// buffer, so it appears as a child of the trial_measured event.
func TrialStarted(confidence float64, minSamples, maxSamples int, guardrailPct float64) Event {
	return Event{
		Kind:         KindTrialStarted,
		Confidence:   finite(confidence),
		Samples:      maxSamples,
		GuardrailPct: finite(guardrailPct),
		Detail:       detailBudget(minSamples, maxSamples),
	}
}

func detailBudget(minSamples, maxSamples int) string {
	return "per-arm sample budget " + strconv.Itoa(minSamples) + ".." + strconv.Itoa(maxSamples)
}

// TrialOutcome carries a measured trial's verdict and evidence into
// TrialMeasured. It is a plain argument bundle, not a ledger event —
// hand-built literals are fine.
type TrialOutcome struct {
	DeltaPct    float64
	PValue      float64
	Significant bool
	Samples     int
	VirtualSec  float64
	EvidenceID  string
	Evidence    []Evidence
}

// TrialMeasured records one resolved A/B trial: the arms, the verdict
// under the run's objective, and the evidence panels a counterfactual
// replay re-judges under other objectives.
func TrialMeasured(label, knob, setting, control, treatment string, o TrialOutcome) Event {
	evs := make([]Evidence, len(o.Evidence))
	for i, e := range o.Evidence {
		e.Control.Mean = finite(e.Control.Mean)
		e.Control.Var = finite(e.Control.Var)
		e.Treatment.Mean = finite(e.Treatment.Mean)
		e.Treatment.Var = finite(e.Treatment.Var)
		evs[i] = e
	}
	return Event{
		Kind:        KindTrialMeasured,
		Label:       label,
		Knob:        knob,
		Setting:     setting,
		Control:     control,
		Treatment:   treatment,
		DeltaPct:    finite(o.DeltaPct),
		PValue:      finite(o.PValue),
		Significant: o.Significant,
		Samples:     o.Samples,
		VirtualSec:  finite(o.VirtualSec),
		EvidenceID:  o.EvidenceID,
		Evidence:    evs,
	}
}

// ArmAccepted records the winning candidate of a decision group.
// Parent it to the winning trial_measured event.
func ArmAccepted(knob, setting string, deltaPct float64) Event {
	return Event{Kind: KindArmAccepted, Knob: knob, Setting: setting, DeltaPct: finite(deltaPct)}
}

// BaselineKept records a group that chose no candidate: the baseline
// setting stays. Parent it to the group's sweep_started event.
func BaselineKept(knob, setting string) Event {
	return Event{Kind: KindArmAccepted, Knob: knob, Setting: setting, Detail: "baseline kept"}
}

// ArmRejected records a measured candidate that was not chosen, with
// the statistics that doomed it. Parent it to its trial_measured
// event.
func ArmRejected(knob, setting string, deltaPct, pValue float64, significant bool) Event {
	return Event{
		Kind:        KindArmRejected,
		Knob:        knob,
		Setting:     setting,
		DeltaPct:    finite(deltaPct),
		PValue:      finite(pValue),
		Significant: significant,
	}
}

// GuardrailTrip records an A/B trial aborted early because the
// treatment regressed past the guardrail. Emitted by abtest.Run
// through the trial's buffer.
func GuardrailTrip(deltaPct float64, samples int, guardrailPct float64) Event {
	return Event{
		Kind:         KindGuardrailTrip,
		DeltaPct:     finite(deltaPct),
		Samples:      samples,
		GuardrailPct: finite(guardrailPct),
	}
}

// Revert records a tripped treatment server restored to the control
// configuration.
func Revert(label, control string) Event {
	return Event{Kind: KindRevert, Label: label, Control: control}
}

// Skip records a candidate setting abandoned after persistent
// injected faults — the tuner degraded rather than aborting.
func Skip(label, setting, reason string) Event {
	return Event{Kind: KindSkip, Label: label, Setting: setting, Detail: reason}
}

// TwinPruned records a candidate arm discarded on a low-fidelity
// prediction before any window ran (the tiered-fidelity ladder,
// DESIGN.md §16). DeltaPct is the predicted delta vs the round's
// control, GuardrailPct the safety margin it had to clear, and the
// evidence panel carries the predicted absolute scores so a replay can
// re-derive the prune verdict. Parent it to the round's sweep_started
// event.
func TwinPruned(knob, setting, label string, predictedDeltaPct, marginPct float64, rung string, ctrlScore, armScore float64, metric string) Event {
	return Event{
		Kind:         KindTwinPruned,
		Knob:         knob,
		Setting:      setting,
		Label:        label,
		DeltaPct:     finite(predictedDeltaPct),
		GuardrailPct: finite(marginPct),
		Detail:       "rung=" + rung,
		Evidence: []Evidence{{
			Metric:    metric + "_twin_predicted",
			Control:   Stat{N: 1, Mean: finite(ctrlScore)},
			Treatment: Stat{N: 1, Mean: finite(armScore)},
		}},
	}
}

// Converged records a search round in which the optimizer decided to
// stop: a hill-climb round with no winning neighbour, the last
// successive-halving rung, or a stalled CEM generation.
func Converged(detail string) Event {
	return Event{Kind: KindConverged, Detail: detail}
}

// RungAdvanced records one successive-halving rung: how many arms
// raced, how many survived into the next rung, and the per-arm sample
// cap the rung ran under. Parent it to the rung's sweep_started event.
func RungAdvanced(rung, arms, survivors, maxSamples int) Event {
	return Event{
		Kind:    KindRungAdvanced,
		Wave:    rung,
		Samples: maxSamples,
		Detail:  fmt.Sprintf("arms=%d survivors=%d", arms, survivors),
	}
}

// BudgetExhausted records a search that ran out of round budget before
// its own convergence test fired — the terminal marker that
// distinguishes a truncated climb from a crashed run. Parent it to the
// run_started event.
func BudgetExhausted(search string, rounds int, best string) Event {
	return Event{
		Kind:   KindBudgetExhausted,
		Label:  search,
		Wave:   rounds,
		Detail: fmt.Sprintf("best so far %s", best),
	}
}

// RunFinished closes a tuning run: the composed soft SKU and its
// validated gains, plus the degradation totals.
func RunFinished(softSKU string, vsProductionPct, vsStockPct float64, skipped, reverts int) Event {
	return Event{
		Kind:      KindRunFinished,
		Treatment: softSKU,
		DeltaPct:  finite(vsProductionPct),
		Detail: fmt.Sprintf("vs_stock_pct=%+.2f skipped=%d reverts=%d",
			finite(vsStockPct), skipped, reverts),
	}
}

// RolloutStarted opens a fleet rollout's ledger entry.
func RolloutStarted(service, cfg string, servers, maxUnavailable int) Event {
	return Event{
		Kind:      KindRolloutStarted,
		Service:   service,
		Treatment: cfg,
		Servers:   servers,
		Detail:    fmt.Sprintf("max_unavailable=%d", maxUnavailable),
	}
}

// WavePassed records one deployment wave that passed its health check.
func WavePassed(wave, servers, rebooted int) Event {
	return Event{Kind: KindWavePassed, Wave: wave, Servers: servers, Detail: fmt.Sprintf("rebooted=%d", rebooted)}
}

// WaveFailed records a wave that failed its health check, aborting
// the rollout.
func WaveFailed(wave, servers int, reason string) Event {
	return Event{Kind: KindWaveFailed, Wave: wave, Servers: servers, Detail: reason}
}

// Rollback records the touched servers restored to the prior
// configuration after a failed wave.
func Rollback(servers int) Event {
	return Event{Kind: KindRollback, Servers: servers}
}

// RolloutDone closes a rollout that converged.
func RolloutDone(waves, rebooted int) Event {
	return Event{Kind: KindRolloutDone, Wave: waves, Detail: fmt.Sprintf("rebooted=%d", rebooted)}
}

// EpochStarted opens one controller epoch: the virtual time it covers
// and the fleet it governs.
func EpochStarted(epoch int, virtualSec float64, pools, servers int) Event {
	return Event{
		Kind:       KindEpochStarted,
		Epoch:      epoch,
		VirtualSec: finite(virtualSec),
		Servers:    servers,
		Detail:     fmt.Sprintf("pools=%d", pools),
	}
}

// EpochDone closes a controller epoch with its work tally.
func EpochDone(epoch, drifted, retuned, rolledOut, failures int) Event {
	return Event{
		Kind:  KindEpochDone,
		Epoch: epoch,
		Detail: fmt.Sprintf("drifted=%d retuned=%d rolled_out=%d rollout_failures=%d",
			drifted, retuned, rolledOut, failures),
	}
}

// DriftDetected records a pool whose sensed load moved past the drift
// threshold since its configuration was last tuned.
func DriftDetected(pool string, deltaPct, thresholdPct float64, samples int) Event {
	return Event{
		Kind:     KindDriftDetected,
		Service:  pool,
		DeltaPct: finite(deltaPct),
		Samples:  samples,
		Detail:   fmt.Sprintf("threshold=%.1f%%", finite(thresholdPct)),
	}
}

// DegradedEnter records a pool entering degraded mode: its sensor
// series is too sparse to trust (blackout), so the controller holds
// the last-known-good configuration instead of tuning blind.
func DegradedEnter(pool string, samples, minSamples int) Event {
	return Event{
		Kind:    KindDegradedEnter,
		Service: pool,
		Samples: samples,
		Detail:  fmt.Sprintf("min_samples=%d; holding last-known-good config", minSamples),
	}
}

// DegradedExit records a pool's sensor series recovering enough to
// resume drift detection.
func DegradedExit(pool string, samples int) Event {
	return Event{Kind: KindDegradedExit, Service: pool, Samples: samples}
}

// BreakerOpen records a pool's circuit breaker opening after repeated
// rollout failures: the pool is left alone for holdEpochs epochs.
func BreakerOpen(pool string, failures, holdEpochs int) Event {
	return Event{
		Kind:    KindBreakerOpen,
		Service: pool,
		Detail:  fmt.Sprintf("failures=%d hold_epochs=%d", failures, holdEpochs),
	}
}

// BreakerProbe records a half-open probe: one rollout allowed through
// an open breaker to test whether the pool has recovered.
func BreakerProbe(pool string) Event {
	return Event{Kind: KindBreakerProbe, Service: pool}
}

// BreakerClosed records a breaker closing after a successful probe.
func BreakerClosed(pool string) Event {
	return Event{Kind: KindBreakerClosed, Service: pool}
}

// Quarantine records a repeat-offender server pulled out of rotation.
func Quarantine(pool string, server, strikes int) Event {
	return Event{
		Kind:    KindQuarantine,
		Service: pool,
		Label:   fmt.Sprintf("%s/%d", pool, server),
		Detail:  fmt.Sprintf("strikes=%d", strikes),
	}
}

// Repair records a quarantined server restored to rotation on the
// pool's current configuration.
func Repair(pool string, server int) Event {
	return Event{Kind: KindRepair, Service: pool, Label: fmt.Sprintf("%s/%d", pool, server)}
}

// ConfigFreeze records flap damping: a pool that exhausted its
// rollback budget has its configuration frozen for holdEpochs epochs.
func ConfigFreeze(pool string, reverts, holdEpochs int) Event {
	return Event{
		Kind:    KindConfigFreeze,
		Service: pool,
		Detail:  fmt.Sprintf("reverts=%d hold_epochs=%d", reverts, holdEpochs),
	}
}

// WatchdogAbandon records a server whose stuck reboot exhausted the
// rollout watchdog budget and was abandoned rather than wedging the
// epoch.
func WatchdogAbandon(pool string, server int, budgetSec float64) Event {
	return Event{
		Kind:       KindWatchdogAbandon,
		Service:    pool,
		Label:      fmt.Sprintf("%s/%d", pool, server),
		VirtualSec: finite(budgetSec),
	}
}
