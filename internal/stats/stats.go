// Package stats provides the statistical machinery µSKU relies on:
// online mean/variance accumulation, Student-t confidence intervals,
// and Welch's t-test for comparing A/B measurement populations.
//
// The paper's A/B tester collects performance-counter samples until a
// 95% confidence interval is tight enough to resolve single-digit
// percent effects (§4), declaring "no significant difference" if
// ~30,000 samples do not suffice. This package implements exactly that
// decision procedure.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations online using Welford's algorithm, so
// a million counter samples cost O(1) memory.
type Sample struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll incorporates a slice of observations.
func (s *Sample) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean, or 0 with no observations.
func (s *Sample) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 with no observations.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Sample) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n < 1 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI returns the half-width of the two-sided confidence interval on the
// mean at the given confidence level (e.g. 0.95).
func (s *Sample) CI(level float64) float64 {
	if s.n < 2 {
		return math.Inf(1)
	}
	t := TQuantile(1-(1-level)/2, float64(s.n-1))
	return t * s.StdErr()
}

// RelCI returns CI(level)/Mean — the relative half-width — used by the
// A/B tester's stop rule. Returns +Inf if the mean is zero or fewer
// than two observations exist.
func (s *Sample) RelCI(level float64) float64 {
	if s.mean == 0 {
		return math.Inf(1)
	}
	return math.Abs(s.CI(level) / s.mean)
}

// String summarizes the sample for logs and design-space maps.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g (95%%)", s.n, s.mean, s.CI(0.95))
}

// Welch reports Welch's two-sample t-test between a and b.
type Welch struct {
	T  float64 // t statistic (mean(a) - mean(b), studentized)
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest compares the means of two samples without assuming equal
// variances. It returns a zero-value result (P=1) if either sample has
// fewer than two observations or both variances are zero.
func WelchTTest(a, b *Sample) Welch {
	return WelchFromMoments(a.N(), a.Mean(), a.Variance(), b.N(), b.Mean(), b.Variance())
}

// WelchFromMoments runs Welch's t-test from sufficient statistics —
// per-arm count, mean, and (sample) variance — instead of live
// Sample accumulators. This is the replay path: a decision ledger
// records each trial's moments per metric, and counterfactual replay
// re-judges the trial under a different objective without the raw
// sample stream. Semantics match WelchTTest exactly.
func WelchFromMoments(na int, meanA, varA float64, nb int, meanB, varB float64) Welch {
	if na < 2 || nb < 2 {
		return Welch{P: 1}
	}
	va := varA / float64(na)
	vb := varB / float64(nb)
	if va+vb == 0 {
		if meanA == meanB {
			return Welch{P: 1}
		}
		return Welch{T: math.Inf(1), DF: float64(na + nb - 2), P: 0}
	}
	t := (meanA - meanB) / math.Sqrt(va+vb)
	df := (va + vb) * (va + vb) /
		(va*va/float64(na-1) + vb*vb/float64(nb-1))
	p := 2 * (1 - TCDF(math.Abs(t), df))
	if p < 0 {
		p = 0
	}
	return Welch{T: t, DF: df, P: p}
}

// Significant reports whether the two samples' means differ at the
// given significance level alpha (e.g. 0.05 for 95% confidence).
func Significant(a, b *Sample, alpha float64) bool {
	return WelchTTest(a, b).P < alpha
}

// TCDF returns the cumulative distribution function of Student's t
// distribution with df degrees of freedom, evaluated at t.
func TCDF(t, df float64) float64 {
	if df <= 0 {
		panic("stats: TCDF with non-positive df")
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TQuantile returns the p-quantile of Student's t distribution with df
// degrees of freedom (inverse CDF), via bisection on TCDF.
func TQuantile(p, df float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: TQuantile requires 0 < p < 1")
	}
	if p == 0.5 {
		return 0
	}
	// Bracket then bisect; the t quantiles of interest are modest.
	lo, hi := -1e3, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// RegIncBeta returns the regularized incomplete beta function
// I_x(a, b), computed with the standard continued-fraction expansion.
func RegIncBeta(a, b, x float64) float64 {
	if x < 0 || x > 1 {
		panic("stats: RegIncBeta x out of [0,1]")
	}
	if x == 0 {
		return 0
	}
	if x == 1 {
		return 1
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(b*math.Log(1-x)+a*math.Log(x)-lbeta)*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta
// function (Numerical Recipes' modified Lentz method).
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. It copies xs and panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// GeoMean returns the geometric mean of xs; all values must be > 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean requires positive values")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
