package stats

import (
	"math"
	"testing"
	"testing/quick"

	"softsku/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSampleMoments(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N=%d", s.N())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean=%g", s.Mean())
	}
	// Unbiased variance of this classic dataset is 32/7.
	if !almost(s.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("var=%g", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max=%g/%g", s.Min(), s.Max())
	}
}

func TestSampleWelfordMatchesTwoPass(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		xs := make([]float64, 100)
		var s Sample
		for i := range xs {
			xs[i] = src.Norm(50, 10)
			s.Add(xs[i])
		}
		mean := Mean(xs)
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		variance := varSum / float64(len(xs)-1)
		return almost(s.Mean(), mean, 1e-9) && almost(s.Variance(), variance, 1e-7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCIShrinksWithN(t *testing.T) {
	src := rng.New(1)
	var small, large Sample
	for i := 0; i < 20; i++ {
		small.Add(src.Norm(100, 5))
	}
	for i := 0; i < 2000; i++ {
		large.Add(src.Norm(100, 5))
	}
	if large.CI(0.95) >= small.CI(0.95) {
		t.Fatalf("CI did not shrink: small=%g large=%g", small.CI(0.95), large.CI(0.95))
	}
}

func TestCICoverage(t *testing.T) {
	// ~95% of 95% CIs on a known mean should contain it.
	src := rng.New(2)
	const trials = 400
	covered := 0
	for i := 0; i < trials; i++ {
		var s Sample
		for j := 0; j < 30; j++ {
			s.Add(src.Norm(10, 2))
		}
		if math.Abs(s.Mean()-10) <= s.CI(0.95) {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.90 || frac > 0.99 {
		t.Fatalf("95%% CI coverage %.3f, want ~0.95", frac)
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Classic t-table critical values for two-sided 95%.
	cases := []struct {
		df   float64
		want float64
	}{
		{1, 12.706}, {5, 2.571}, {10, 2.228}, {30, 2.042}, {1000, 1.962},
	}
	for _, c := range cases {
		got := TQuantile(0.975, c.df)
		if !almost(got, c.want, 0.01) {
			t.Errorf("t(0.975, df=%g) = %g, want %g", c.df, got, c.want)
		}
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	got := TQuantile(0.025, 7)
	want := -TQuantile(0.975, 7)
	if !almost(got, want, 1e-6) {
		t.Fatalf("asymmetric quantiles: %g vs %g", got, want)
	}
}

func TestTCDFRoundTrip(t *testing.T) {
	for _, df := range []float64{2, 9, 57} {
		for _, p := range []float64{0.1, 0.3, 0.5, 0.9, 0.975} {
			q := TQuantile(p, df)
			if back := TCDF(q, df); !almost(back, p, 1e-6) {
				t.Errorf("round trip df=%g p=%g got %g", df, p, back)
			}
		}
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Fatal("edges wrong")
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.42, 0.9} {
		if got := RegIncBeta(1, 1, x); !almost(got, x, 1e-10) {
			t.Errorf("I_%g(1,1) = %g", x, got)
		}
	}
	// I_x(a,b) + I_{1-x}(b,a) = 1.
	if got := RegIncBeta(2.5, 4, 0.3) + RegIncBeta(4, 2.5, 0.7); !almost(got, 1, 1e-10) {
		t.Errorf("complement identity: %g", got)
	}
}

func TestWelchDetectsDifference(t *testing.T) {
	src := rng.New(3)
	var a, b Sample
	for i := 0; i < 500; i++ {
		a.Add(src.Norm(100, 5))
		b.Add(src.Norm(102, 5)) // 2% shift
	}
	res := WelchTTest(&a, &b)
	if res.P > 0.01 {
		t.Fatalf("failed to detect 2%% shift: p=%g", res.P)
	}
	if res.T > 0 {
		t.Fatalf("t statistic sign wrong: %g", res.T)
	}
}

func TestWelchNoFalsePositiveRate(t *testing.T) {
	src := rng.New(4)
	const trials = 300
	fp := 0
	for i := 0; i < trials; i++ {
		var a, b Sample
		for j := 0; j < 50; j++ {
			a.Add(src.Norm(100, 5))
			b.Add(src.Norm(100, 5))
		}
		if Significant(&a, &b, 0.05) {
			fp++
		}
	}
	rate := float64(fp) / trials
	if rate > 0.10 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestWelchDegenerate(t *testing.T) {
	var a, b Sample
	a.Add(1)
	if got := WelchTTest(&a, &b); got.P != 1 {
		t.Fatalf("tiny samples should be inconclusive, p=%g", got.P)
	}
	var c, d Sample
	c.AddAll([]float64{5, 5, 5})
	d.AddAll([]float64{5, 5, 5})
	if got := WelchTTest(&c, &d); got.P != 1 {
		t.Fatalf("identical constant samples should have p=1, got %g", got.P)
	}
	var e Sample
	e.AddAll([]float64{6, 6, 6})
	if got := WelchTTest(&c, &e); got.P != 0 {
		t.Fatalf("distinct constant samples should have p=0, got %g", got.P)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Percentile(xs, 0); got != 15 {
		t.Fatalf("p0=%g", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Fatalf("p100=%g", got)
	}
	if got := Percentile(xs, 50); got != 35 {
		t.Fatalf("p50=%g", got)
	}
	// Input must not be mutated.
	if xs[0] != 15 || xs[4] != 50 {
		t.Fatal("Percentile mutated input")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); !almost(got, 4, 1e-9) {
		t.Fatalf("geomean=%g", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	src := rng.New(5)
	for i := 0; i < 100000; i++ {
		h.Observe(src.Exp(1e-3)) // exponential, mean 1 ms
	}
	if !almost(h.Mean(), 1e-3, 5e-5) {
		t.Fatalf("mean=%g", h.Mean())
	}
	// p50 of exp(mean m) is m*ln2; log-bucket resolution is ~20%.
	p50 := h.Quantile(0.5)
	if p50 < 0.5e-3 || p50 > 1.1e-3 {
		t.Fatalf("p50=%g", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 3.5e-3 || p99 > 7e-3 {
		t.Fatalf("p99=%g", p99)
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(1e-3)
		b.Observe(2e-3)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("count=%d", a.Count())
	}
	if !almost(a.Mean(), 1.5e-3, 1e-9) {
		t.Fatalf("merged mean=%g", a.Mean())
	}
	a.Reset()
	if a.Count() != 0 || a.Mean() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHistogramMonotoneQuantiles(t *testing.T) {
	f := func(seed uint64) bool {
		var h Histogram
		src := rng.New(seed)
		for i := 0; i < 1000; i++ {
			h.Observe(src.Pareto(1e-5, 1.2))
		}
		prev := 0.0
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatTableAligned(t *testing.T) {
	out := FormatTable([]string{"svc", "ipc"}, [][]string{{"Web", "0.6"}, {"Cache1", "1.0"}})
	if len(out) == 0 {
		t.Fatal("empty table")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("keys=%v", keys)
	}
}

func BenchmarkSampleAdd(b *testing.B) {
	var s Sample
	for i := 0; i < b.N; i++ {
		s.Add(float64(i & 1023))
	}
}

func BenchmarkTQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = TQuantile(0.975, 29)
	}
}
