package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a log-bucketed latency histogram suited to the
// microsecond-to-seconds request-latency range the microservices span.
// The zero value is ready to use.
type Histogram struct {
	counts []uint64 // bucket i covers [base*growth^i, base*growth^(i+1))
	under  uint64   // observations below base
	total  uint64
	sum    float64
	maxv   float64
}

const (
	histBase    = 1e-7 // 100 ns
	histGrowth  = 1.2
	histBuckets = 140 // covers ~100ns .. ~10000s
)

// Observe records one value (e.g. a request latency in seconds).
// Negative values are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	if h.counts == nil {
		h.counts = make([]uint64, histBuckets)
	}
	h.total++
	h.sum += v
	if v > h.maxv {
		h.maxv = v
	}
	if v < histBase {
		h.under++
		return
	}
	i := int(math.Log(v/histBase) / math.Log(histGrowth))
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
}

// Count returns the number of observations.
func (h Histogram) Count() uint64 { return h.total }

// Mean returns the mean of all observations.
func (h Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest observation.
func (h Histogram) Max() float64 { return h.maxv }

// Quantile returns an estimate of the q-quantile (0..1) using the
// bucket upper bound, which is conservative for tail-latency QoS
// checks.
func (h Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	cum := h.under
	if cum >= target {
		return histBase
	}
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return histBase * math.Pow(histGrowth, float64(i+1))
		}
	}
	return h.maxv
}

// Sum returns the sum of all observations.
func (h Histogram) Sum() float64 { return h.sum }

// Copy returns a deep copy whose bucket storage is independent of h.
func (h Histogram) Copy() Histogram {
	c := h
	if h.counts != nil {
		c.counts = append([]uint64(nil), h.counts...)
	}
	return c
}

// EachBucket calls f for every non-empty bucket in ascending order of
// upper bound, including the implicit sub-base bucket. Exporters use
// this to render cumulative bucket counts without knowing the bucket
// layout.
func (h Histogram) EachBucket(f func(upperBound float64, count uint64)) {
	if h.under > 0 {
		f(histBase, h.under)
	}
	for i, c := range h.counts {
		if c > 0 {
			f(histBase*math.Pow(histGrowth, float64(i+1)), c)
		}
	}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make([]uint64, histBuckets)
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.under += other.under
	h.total += other.total
	h.sum += other.sum
	if other.maxv > h.maxv {
		h.maxv = other.maxv
	}
}

// Reset clears all recorded observations.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.under, h.total, h.sum, h.maxv = 0, 0, 0, 0
}

// String renders a compact summary.
func (h Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p99=%s max=%s",
		h.total, fmtDur(h.Mean()), fmtDur(h.Quantile(0.5)),
		fmtDur(h.Quantile(0.99)), fmtDur(h.maxv))
}

func fmtDur(sec float64) string {
	switch {
	case sec >= 1:
		return fmt.Sprintf("%.2fs", sec)
	case sec >= 1e-3:
		return fmt.Sprintf("%.2fms", sec*1e3)
	case sec >= 1e-6:
		return fmt.Sprintf("%.2fµs", sec*1e6)
	default:
		return fmt.Sprintf("%.0fns", sec*1e9)
	}
}

// Series is a simple named value sequence used when rendering tables.
type Series struct {
	Name   string
	Values []float64
}

// FormatTable renders labeled rows of series values as an aligned text
// table — the shape in which benches print reproduced figures.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, hcol := range header {
		widths[i] = len(hcol)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// SortedKeys returns map keys in sorted order for deterministic output.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
