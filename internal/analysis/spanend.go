package analysis

import (
	"go/ast"
	"go/types"
)

// SpanEnd pairs every Tracer.StartSpan / Span.StartChild with an End.
// An unended span exports with a provisional duration and keeps every
// descendant's flame attribution wrong — the trace stops answering
// "where does the tuning run's wall time go", which is the whole
// reason PR 1 added it. Within each function, a span assigned to a
// local must have s.End() somewhere in the same function (a deferred
// call is the idiom); a span whose result is discarded can never be
// ended and is always a finding. Spans that escape the function —
// returned, passed along, or stored into a field or another variable
// — are some other owner's to close and are not flagged.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "every started trace span must be ended in its function (or escape to an owner)",
	Run:  runSpanEnd,
}

func runSpanEnd(p *Pass) {
	for _, f := range p.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkSpanFunc(fd)
		}
	}
}

func (p *Pass) checkSpanFunc(fd *ast.FuncDecl) {
	// One pass with parent links: find span starts, End calls, and
	// escaping uses of span-holding locals.
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	type start struct {
		call *ast.CallExpr
		obj  types.Object // local holding the span; nil if discarded
	}
	var starts []start
	ended := make(map[types.Object]bool)
	escaped := make(map[types.Object]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)

		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.Callee(call)
		if fn == nil {
			return true
		}
		switch {
		case (fn.Name() == "StartSpan" && isTelemetryMethod(fn, "Tracer")) ||
			(fn.Name() == "StartChild" && isTelemetryMethod(fn, "Span")):
			starts = append(starts, start{call: call, obj: p.spanDest(call, parents)})
		case fn.Name() == "End" && isTelemetryMethod(fn, "Span"):
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj := p.Info().Uses[id]; obj != nil {
						ended[obj] = true
					}
				}
			}
		}
		return true
	})

	// Escape scan: a use of the span local anywhere other than the
	// defining assignment, an End call receiver, or a plain method
	// call on the span (Set / StartChild / End chains) hands
	// ownership elsewhere.
	tracked := make(map[types.Object]bool)
	for _, s := range starts {
		if s.obj != nil && s.obj != escapeMarker && !ended[s.obj] {
			tracked[s.obj] = true
		}
	}
	if len(tracked) > 0 {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info().Uses[id]
			if obj == nil || !tracked[obj] {
				return true
			}
			if sel, ok := parents[id].(*ast.SelectorExpr); ok && sel.X == id {
				if _, ok := parents[sel].(*ast.CallExpr); ok {
					return true // method call on the span itself
				}
			}
			escaped[obj] = true
			return true
		})
	}

	for _, s := range starts {
		name := p.Callee(s.call).Name()
		switch {
		case s.obj == escapeMarker:
			// Ownership moved (returned, stored in a field, passed on);
			// the receiver is responsible for ending it.
		case s.obj == nil:
			p.Reportf(s.call.Pos(),
				"result of %s is discarded, so the span can never be ended; assign it and call End (ideally deferred)", name)
		case !ended[s.obj] && !escaped[s.obj]:
			p.Reportf(s.call.Pos(),
				"span %q from %s is never ended in this function; call %s.End() (ideally deferred) so the trace closes", s.obj.Name(), name, s.obj.Name())
		}
	}
}

// spanDest resolves the local variable a span-start call is assigned
// to. It returns nil when the result is discarded (expression
// statement or blank identifier) and escapeMarker when the span goes
// somewhere untrackable (field store, call argument, return value,
// method chain).
func (p *Pass) spanDest(call *ast.CallExpr, parents map[ast.Node]ast.Node) types.Object {
	parent := parents[call]
	// Unwrap parenthesized expressions.
	for {
		if pe, ok := parent.(*ast.ParenExpr); ok {
			parent = parents[pe]
			continue
		}
		break
	}
	switch pt := parent.(type) {
	case *ast.ExprStmt:
		return nil // discarded
	case *ast.AssignStmt:
		for i, rhs := range pt.Rhs {
			if ast.Unparen(rhs) == call && i < len(pt.Lhs) {
				if id, ok := pt.Lhs[i].(*ast.Ident); ok {
					if id.Name == "_" {
						return nil
					}
					if obj := p.Info().Defs[id]; obj != nil {
						return obj
					}
					return p.Info().Uses[id]
				}
			}
		}
		return escapeMarker
	case *ast.ValueSpec:
		for i, v := range pt.Values {
			if ast.Unparen(v) == call && i < len(pt.Names) {
				if pt.Names[i].Name == "_" {
					return nil
				}
				return p.Info().Defs[pt.Names[i]]
			}
		}
		return escapeMarker
	default:
		// Call argument, return value, composite literal, field store,
		// channel send, method chain — ownership moves elsewhere.
		return escapeMarker
	}
}

// escapeMarker is the sentinel destination for spans whose ownership
// leaves the function; such starts are never flagged.
var escapeMarker types.Object = types.NewLabel(0, nil, "span-escapes")
