package analysis

import (
	"strings"
)

// Suppression directives: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// silences findings from the named analyzers on the directive's own
// line (trailing comment) or on the line immediately below (comment
// on its own line). The reason is mandatory — an unexplained
// suppression is itself a finding, as is a name no analyzer answers
// to; neither can be suppressed, so directives cannot rot silently.

const ignorePrefix = "//lint:ignore"

type lineRef struct {
	file string
	line int
}

// ignoreIndex records which (analyzer, file, line) triples are
// suppressed.
type ignoreIndex struct {
	lines map[string]map[lineRef]bool
}

func buildIgnoreIndex(u *Unit) (*ignoreIndex, []Diagnostic) {
	idx := &ignoreIndex{lines: make(map[string]map[lineRef]bool)}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	var bad []Diagnostic
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "softskulint",
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\" (reason is mandatory)",
					})
					continue
				}
				for _, name := range strings.Split(fields[0], ",") {
					if !known[name] {
						bad = append(bad, Diagnostic{
							Pos:      pos,
							Analyzer: "softskulint",
							Message:  "//lint:ignore names unknown analyzer \"" + name + "\" (known: " + KnownNames() + ")",
						})
						continue
					}
					idx.add(name, pos.Filename, pos.Line)
					idx.add(name, pos.Filename, pos.Line+1)
				}
			}
		}
	}
	return idx, bad
}

func (ix *ignoreIndex) add(analyzer, filename string, line int) {
	m := ix.lines[analyzer]
	if m == nil {
		m = make(map[lineRef]bool)
		ix.lines[analyzer] = m
	}
	m[lineRef{filename, line}] = true
}

func (ix *ignoreIndex) suppresses(d Diagnostic) bool {
	return ix.lines[d.Analyzer][lineRef{d.Pos.Filename, d.Pos.Line}]
}
