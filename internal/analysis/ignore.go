package analysis

import (
	"sort"
	"strings"
)

// Suppression directives: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// silences findings from the named analyzers on the directive's own
// line (trailing comment) or on the line immediately below (comment
// on its own line). The reason is mandatory — an unexplained
// suppression is itself a finding, as is a name no analyzer answers
// to; neither can be suppressed, so directives cannot rot silently.
//
// For the module-scope detflow analyzer the same directive works per
// call edge: placed on (or above) a call site it prunes that edge
// from the taint propagation, so every path through the edge is
// accepted as deliberate.
//
// Directive rot is audited too: after a run, any directive naming
// only analyzers that actually ran yet suppressing zero diagnostics
// (and pruning zero tainted edges) is reported as stale.

const ignorePrefix = "//lint:ignore"

type lineRef struct {
	file string
	line int
}

// directive is one parsed //lint:ignore occurrence for one analyzer
// name (a comma list yields one directive per name).
type directive struct {
	analyzer string
	pos      lineRef // the directive's own line
	hits     int     // diagnostics suppressed / tainted edges pruned
}

// ignoreTable indexes every well-formed directive of a run, across
// all units, and tracks per-directive usage for the stale audit.
type ignoreTable struct {
	// lines maps (analyzer, file, line) → the governing directive;
	// each directive covers its own line and the line below.
	lines map[string]map[lineRef]*directive
	all   []*directive
	seen  map[lineRef]bool // directive lines already parsed (units can share files)
	bad   []Diagnostic
}

func newIgnoreTable() *ignoreTable {
	return &ignoreTable{
		lines: make(map[string]map[lineRef]*directive),
		seen:  make(map[lineRef]bool),
	}
}

// addUnit parses u's directives into the table. Units may overlap on
// files (a package's production files are also part of the module
// view); each directive line is parsed once.
func (ix *ignoreTable) addUnit(u *Unit) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				at := lineRef{pos.Filename, pos.Line}
				if ix.seen[at] {
					continue
				}
				ix.seen[at] = true
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					ix.bad = append(ix.bad, Diagnostic{
						Pos:      pos,
						Analyzer: "softskulint",
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\" (reason is mandatory)",
					})
					continue
				}
				for _, name := range strings.Split(fields[0], ",") {
					if !known[name] {
						ix.bad = append(ix.bad, Diagnostic{
							Pos:      pos,
							Analyzer: "softskulint",
							Message:  "//lint:ignore names unknown analyzer \"" + name + "\" (known: " + KnownNames() + ")",
						})
						continue
					}
					d := &directive{analyzer: name, pos: at}
					ix.all = append(ix.all, d)
					ix.add(d, pos.Filename, pos.Line)
					ix.add(d, pos.Filename, pos.Line+1)
				}
			}
		}
	}
}

func (ix *ignoreTable) add(d *directive, filename string, line int) {
	m := ix.lines[d.analyzer]
	if m == nil {
		m = make(map[lineRef]*directive)
		ix.lines[d.analyzer] = m
	}
	m[lineRef{filename, line}] = d
}

// suppresses consumes a diagnostic if a directive governs its line,
// recording the hit.
func (ix *ignoreTable) suppresses(d Diagnostic) bool {
	dir := ix.lines[d.Analyzer][lineRef{d.Pos.Filename, d.Pos.Line}]
	if dir == nil {
		return false
	}
	dir.hits++
	return true
}

// covers reports (without recording a hit) whether a directive for
// analyzer governs file:line. Module analyzers use this to prune
// edges before propagation, then credit the directive via markUsed
// only if the pruned edge actually carried taint.
func (ix *ignoreTable) covers(analyzer, file string, line int) bool {
	return ix.lines[analyzer][lineRef{file, line}] != nil
}

// markUsed credits the directive governing file:line with one hit.
func (ix *ignoreTable) markUsed(analyzer, file string, line int) {
	if d := ix.lines[analyzer][lineRef{file, line}]; d != nil {
		d.hits++
	}
}

// totalHits sums suppressed-diagnostic and pruned-edge credits.
func (ix *ignoreTable) totalHits() int {
	n := 0
	for _, d := range ix.all {
		n += d.hits
	}
	return n
}

// stale returns one diagnostic per directive that names an analyzer
// in ran yet suppressed nothing — directive rot. Directives naming
// analyzers outside the run set are exempt (they never had the
// chance to fire), and stale findings, like malformed ones, cannot
// themselves be suppressed.
func (ix *ignoreTable) stale(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range ix.all {
		if d.hits > 0 || !ran[d.analyzer] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      positionOf(d.pos),
			Analyzer: "softskulint",
			Message:  "//lint:ignore " + d.analyzer + " suppressed no diagnostics in this run; delete the stale directive",
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return out
}
