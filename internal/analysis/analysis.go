// Package analysis is softskulint's stdlib-only static-analysis
// framework: a vet-style multichecker that loads every package in the
// module with go/parser + go/types and runs project-specific analyzers
// enforcing the invariants the A/B pipeline's trustworthiness rests on
// (DESIGN.md §9). The paper's confidence tests assume the measurement
// harness itself is reproducible and honest; these analyzers make the
// repo's equivalents — seeded determinism, bounded metric cardinality,
// never-dropped knob errors, closed trace spans, caller-controlled
// randomness — machine-checked instead of conventions.
//
// The framework deliberately uses only go/ast, go/parser, go/token,
// go/types and go/importer so go.mod stays dependency-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Run inspects a fully
// type-checked package and returns its findings.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the guarded invariant.
	Doc string
	// Run reports findings for one package via Pass.Reportf.
	Run func(p *Pass)
}

// Diagnostic is one finding, rendered as "file:line: [analyzer] msg".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Pass is the per-package state handed to each analyzer.
type Pass struct {
	Unit *Unit
	name string
	out  []Diagnostic
}

// Fset returns the position table for the package's files.
func (p *Pass) Fset() *token.FileSet { return p.Unit.Fset }

// Files returns the package's parsed files (including test files;
// analyzers that only govern production code skip via IsTestFile).
func (p *Pass) Files() []*ast.File { return p.Unit.Files }

// PkgName returns the package's declared name (not import path), the
// handle the sim-facing allowlist keys on.
func (p *Pass) PkgName() string { return p.Unit.Name }

// Info returns the type-checker's fact tables.
func (p *Pass) Info() *types.Info { return p.Unit.Info }

// IsTestFile reports whether f is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool { return p.Unit.Test[f] }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.out = append(p.out, Diagnostic{
		Pos:      p.Unit.Fset.Position(pos),
		Analyzer: p.name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Callee resolves the called function or method of call, or nil for
// indirect calls (function values, conversions).
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := p.Info().Uses[id].(*types.Func)
	return f
}

// simFacing is the set of packages bound by the determinism contract:
// one -chaos-seed (or workload seed) must reproduce a run
// byte-for-byte, so nothing in them may consult ambient state.
var simFacing = map[string]bool{
	"sim":      true,
	"abtest":   true,
	"core":     true,
	"chaos":    true,
	"loadgen":  true,
	"workload": true,
	"fleet":    true,
	"decision": true, // the ledger must be byte-identical run to run
	// The self-healing control loop: breaker holds, watchdog budgets,
	// and epoch clocks must come from the virtual clock / seeded
	// streams, never from the wall clock or ambient goroutines.
	"controller": true,
}

// SimFacing reports whether the named package is bound by the seeded
// determinism contract.
func SimFacing(pkgName string) bool { return simFacing[pkgName] }

// telemetryPath is the import path whose Registry / Tracer / Span
// types the metricname and spanend analyzers key on.
const telemetryPath = "softsku/internal/telemetry"

// rngPath is the import path of the repo's deterministic rng.
const rngPath = "softsku/internal/rng"

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Nondeterminism,
		MetricName,
		KnobErr,
		SpanEnd,
		SeedArg,
		Goroutine,
		DecisionEvent,
	}
}

// ByName resolves analyzer names (comma-free, exact) to analyzers.
// Unknown names return an error listing the known set.
func ByName(names []string) ([]*Analyzer, error) {
	known := make(map[string]*Analyzer)
	for _, a := range All() {
		known[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := known[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", n, KnownNames())
		}
		out = append(out, a)
	}
	return out, nil
}

// KnownNames returns the comma-separated analyzer names.
func KnownNames() string {
	var s string
	for i, a := range All() {
		if i > 0 {
			s += ","
		}
		s += a.Name
	}
	return s
}

// Result is the outcome of running a suite over a set of packages.
type Result struct {
	Findings   []Diagnostic // surviving diagnostics, sorted
	Suppressed int          // diagnostics silenced by //lint:ignore
	Packages   int          // packages analyzed
}

// Run executes analyzers over units, applies //lint:ignore
// suppressions, and returns the sorted surviving findings. Malformed
// directives are themselves findings (they cannot be suppressed).
func Run(units []*Unit, analyzers []*Analyzer) Result {
	res := Result{}
	dirs := make(map[string]bool)
	for _, u := range units {
		dirs[u.Dir] = true
		idx, directiveDiags := buildIgnoreIndex(u)
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Unit: u, name: a.Name}
			a.Run(pass)
			diags = append(diags, pass.out...)
		}
		for _, d := range diags {
			if idx.suppresses(d) {
				res.Suppressed++
				continue
			}
			res.Findings = append(res.Findings, d)
		}
		res.Findings = append(res.Findings, directiveDiags...)
	}
	res.Packages = len(dirs)
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return res
}
