// Package analysis is softskulint's stdlib-only static-analysis
// framework: a vet-style multichecker that loads every package in the
// module with go/parser + go/types and runs project-specific analyzers
// enforcing the invariants the A/B pipeline's trustworthiness rests on
// (DESIGN.md §9). The paper's confidence tests assume the measurement
// harness itself is reproducible and honest; these analyzers make the
// repo's equivalents — seeded determinism, bounded metric cardinality,
// never-dropped knob errors, closed trace spans, caller-controlled
// randomness — machine-checked instead of conventions.
//
// The framework deliberately uses only go/ast, go/parser, go/token,
// go/types and go/importer so go.mod stays dependency-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Per-package analyzers set
// Run (inspects one fully type-checked unit); module analyzers set
// RunModule instead and see every production package of the module in
// one consistent type universe — the facility interprocedural checks
// like detflow need.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the guarded invariant.
	Doc string
	// Run reports findings for one package via Pass.Reportf.
	Run func(p *Pass)
	// RunModule reports findings over the whole module; it runs once
	// per invocation, only when a Module was loaded.
	RunModule func(mp *ModulePass)
}

// Diagnostic is one finding, rendered as "file:line: [analyzer] msg".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Path is the offending call chain for interprocedural findings
	// (detflow), outermost caller first; empty for local findings.
	Path []string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Pass is the per-package state handed to each analyzer.
type Pass struct {
	Unit *Unit
	name string
	out  []Diagnostic
}

// Fset returns the position table for the package's files.
func (p *Pass) Fset() *token.FileSet { return p.Unit.Fset }

// Files returns the package's parsed files (including test files;
// analyzers that only govern production code skip via IsTestFile).
func (p *Pass) Files() []*ast.File { return p.Unit.Files }

// PkgName returns the package's declared name (not import path), the
// handle the sim-facing allowlist keys on.
func (p *Pass) PkgName() string { return p.Unit.Name }

// Info returns the type-checker's fact tables.
func (p *Pass) Info() *types.Info { return p.Unit.Info }

// IsTestFile reports whether f is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool { return p.Unit.Test[f] }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.out = append(p.out, Diagnostic{
		Pos:      p.Unit.Fset.Position(pos),
		Analyzer: p.name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass is the whole-module state handed to a module analyzer:
// every production package in one type universe, plus access to the
// run's suppression table so interprocedural analyzers can honor
// //lint:ignore directives at interior call sites, not just at the
// final report position.
type ModulePass struct {
	Mod  *Module
	name string
	ign  *ignoreTable
	out  []Diagnostic
}

// Reportf records a module-scope finding at pos with its offending
// call path (outermost caller first).
func (mp *ModulePass) Reportf(pos token.Position, path []string, format string, args ...interface{}) {
	mp.out = append(mp.out, Diagnostic{
		Pos:      pos,
		Analyzer: mp.name,
		Message:  fmt.Sprintf(format, args...),
		Path:     path,
	})
}

// SuppressedAt reports whether a //lint:ignore directive for this
// analyzer governs file:line. It does not credit the directive — call
// UseSuppression once the suppression demonstrably absorbed a real
// finding, so stale directives still surface in the audit.
func (mp *ModulePass) SuppressedAt(file string, line int) bool {
	return mp.ign.covers(mp.name, file, line)
}

// UseSuppression credits the directive governing file:line with one
// absorbed finding.
func (mp *ModulePass) UseSuppression(file string, line int) {
	mp.ign.markUsed(mp.name, file, line)
}

// Callee resolves the called function or method of call, or nil for
// indirect calls (function values, conversions).
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := p.Info().Uses[id].(*types.Func)
	return f
}

// simFacing is the set of packages bound by the determinism contract:
// one -chaos-seed (or workload seed) must reproduce a run
// byte-for-byte, so nothing in them may consult ambient state.
var simFacing = map[string]bool{
	"sim":      true,
	"abtest":   true,
	"core":     true,
	"chaos":    true,
	"loadgen":  true,
	"workload": true,
	"fleet":    true,
	"decision": true, // the ledger must be byte-identical run to run
	// The self-healing control loop: breaker holds, watchdog budgets,
	// and epoch clocks must come from the virtual clock / seeded
	// streams, never from the wall clock or ambient goroutines.
	"controller": true,
	// The analytical twin prices prune decisions: any ambient state in
	// its model or calibration would make the search's window schedule
	// (and hence the ledger) diverge between runs.
	"twin": true,
}

// SimFacing reports whether the named package is bound by the seeded
// determinism contract.
func SimFacing(pkgName string) bool { return simFacing[pkgName] }

// telemetryPath is the import path whose Registry / Tracer / Span
// types the metricname and spanend analyzers key on.
const telemetryPath = "softsku/internal/telemetry"

// rngPath is the import path of the repo's deterministic rng.
const rngPath = "softsku/internal/rng"

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Nondeterminism,
		MetricName,
		KnobErr,
		SpanEnd,
		SeedArg,
		Goroutine,
		DecisionEvent,
		Detflow,
	}
}

// ByName resolves analyzer names (comma-free, exact) to analyzers.
// Unknown names return an error listing the known set.
func ByName(names []string) ([]*Analyzer, error) {
	known := make(map[string]*Analyzer)
	for _, a := range All() {
		known[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := known[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", n, KnownNames())
		}
		out = append(out, a)
	}
	return out, nil
}

// KnownNames returns the comma-separated analyzer names.
func KnownNames() string {
	var s string
	for i, a := range All() {
		if i > 0 {
			s += ","
		}
		s += a.Name
	}
	return s
}

// Result is the outcome of running a suite over a set of packages.
type Result struct {
	Findings   []Diagnostic // surviving diagnostics, sorted
	Suppressed int          // findings absorbed by //lint:ignore (incl. pruned tainted edges)
	Stale      int          // //lint:ignore directives that absorbed nothing
	Packages   int          // packages analyzed
}

// positionOf turns a lineRef back into a renderable position.
func positionOf(at lineRef) token.Position {
	return token.Position{Filename: at.file, Line: at.line}
}

// Run executes per-unit analyzers over units, applies //lint:ignore
// suppressions and the stale-directive audit, and returns the sorted
// surviving findings. Module analyzers are skipped (no Module here);
// use RunAll when one was loaded.
func Run(units []*Unit, analyzers []*Analyzer) Result {
	return RunAll(nil, units, analyzers)
}

// RunAll executes the per-unit analyzers over units and, when mod is
// non-nil, the module analyzers over mod, sharing one suppression
// table so a directive is audited against everything that ran.
// Malformed and stale directives are themselves findings and cannot
// be suppressed.
func RunAll(mod *Module, units []*Unit, analyzers []*Analyzer) Result {
	res := Result{}
	ign := newIgnoreTable()
	for _, u := range units {
		ign.addUnit(u)
	}
	dirs := make(map[string]bool)
	for _, u := range units {
		dirs[u.Dir] = true
		var diags []Diagnostic
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Unit: u, name: a.Name}
			a.Run(pass)
			diags = append(diags, pass.out...)
		}
		for _, d := range diags {
			if ign.suppresses(d) {
				continue
			}
			res.Findings = append(res.Findings, d)
		}
	}
	if mod != nil {
		for _, a := range analyzers {
			if a.RunModule == nil {
				continue
			}
			mp := &ModulePass{Mod: mod, name: a.Name, ign: ign}
			a.RunModule(mp)
			res.Findings = append(res.Findings, mp.out...)
		}
	}
	// A directive only counts as auditable if its analyzer actually
	// ran: module analyzers need a loaded Module to participate.
	ran := make(map[string]bool)
	for _, a := range analyzers {
		if a.Run != nil || (mod != nil && a.RunModule != nil) {
			ran[a.Name] = true
		}
	}
	staleDiags := ign.stale(ran)
	res.Stale = len(staleDiags)
	res.Findings = append(res.Findings, staleDiags...)
	res.Findings = append(res.Findings, ign.bad...)
	res.Suppressed = ign.totalHits()
	res.Packages = len(dirs)
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return res
}
