package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDetflowGolden pins the interprocedural analyzer end to end over
// a two-package fixture: a sim-facing package whose exports reach
// nondeterminism only through a helper package. The golden must show
// the complete cross-package call path (e.g. sim.Step → helper.Wrap →
// helper.stamp → time.Now), the CHA-resolved interface dispatch, the
// suppressed-edge acceptance, and that clean idioms stay clean.
func TestDetflowGolden(t *testing.T) {
	l := fixtureLoader(t)
	pattern := "internal/analysis/testdata/detflow/..."
	mod, err := l.LoadModule(pattern)
	if err != nil {
		t.Fatalf("loading module view: %v", err)
	}
	units, err := l.Load(pattern)
	if err != nil {
		t.Fatalf("loading units: %v", err)
	}
	got := renderResult(RunAll(mod, units, []*Analyzer{Detflow}))
	goldenPath := filepath.Join("testdata", "detflow.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantB, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if want := string(wantB); got != want {
		t.Errorf("diagnostics diverge from golden %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestDetflowPathField checks the structured Path on detflow
// diagnostics (what `softskulint -json` serializes): outermost caller
// first, terminating at the source.
func TestDetflowPathField(t *testing.T) {
	l := fixtureLoader(t)
	mod, err := l.LoadModule("internal/analysis/testdata/detflow/...")
	if err != nil {
		t.Fatal(err)
	}
	res := RunAll(mod, nil, []*Analyzer{Detflow})
	want := []string{"sim.Step", "helper.Wrap", "helper.stamp", "time.Now"}
	for _, d := range res.Findings {
		if len(d.Path) > 0 && d.Path[0] == "sim.Step" {
			if strings.Join(d.Path, " → ") != strings.Join(want, " → ") {
				t.Errorf("sim.Step path = %v, want %v", d.Path, want)
			}
			return
		}
	}
	t.Errorf("no finding rooted at sim.Step; findings: %v", res.Findings)
}

// TestLoadModuleExcludesTestOnly: a directory whose only Go file is a
// _test.go loads as a per-directory unit (so its directives and
// diagnostics are seen) but must stay out of the module call graph —
// test scaffolding is not part of what ships.
func TestLoadModuleExcludesTestOnly(t *testing.T) {
	l := fixtureLoader(t)
	pattern := "internal/analysis/testdata/detflow/..."
	mod, err := l.LoadModule(pattern)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range mod.Pkgs {
		if strings.HasSuffix(p.Path, "/testonly") {
			t.Errorf("test-only package %s leaked into the module view", p.Path)
		}
	}
	var paths []string
	for _, p := range mod.Pkgs {
		paths = append(paths, p.Path)
	}
	if len(mod.Pkgs) != 2 {
		t.Errorf("module view = %v, want exactly helper and sim", paths)
	}
	units, err := l.Load(pattern)
	if err != nil {
		t.Fatal(err)
	}
	foundTestOnly := false
	for _, u := range units {
		if u.Name == "testonly" {
			foundTestOnly = true
		}
	}
	if !foundTestOnly {
		t.Error("unit loading should still see the test-only package")
	}
}

// TestCalleeResolution pins Pass.Callee against import aliasing,
// parenthesized callees, and function-value indirection.
func TestCalleeResolution(t *testing.T) {
	l := fixtureLoader(t)
	units, err := l.LoadDir(filepath.Join("testdata", "callee"))
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 {
		t.Fatalf("want 1 unit, got %d", len(units))
	}
	p := &Pass{Unit: units[0]}
	got := make(map[string]string) // first call argument → resolved name
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return true
			}
			if fn := p.Callee(call); fn != nil {
				got[lit.Value] = fn.Name()
			} else {
				got[lit.Value] = "<nil>"
			}
			return true
		})
	}
	want := map[string]string{
		`"x"`:   "ToUpper", // aliased selector
		`"y"`:   "ToLower", // parenthesized aliased selector
		`"z"`:   "local",   // parenthesized plain ident
		`" w "`: "<nil>",   // call through a function value
	}
	for arg, name := range want {
		if got[arg] != name {
			t.Errorf("Callee for call with arg %s = %q, want %q", arg, got[arg], name)
		}
	}
}
