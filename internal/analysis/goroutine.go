package analysis

import "go/ast"

// Goroutine keeps concurrency in sim-facing packages behind the
// deterministic fan-out primitive. A bare `go` statement spawns work
// whose completion order nothing constrains — results folded in from
// such a goroutine depend on the scheduler, which breaks the
// bit-identical-at-any-worker-count guarantee the parallel sweep
// runtime makes (DESIGN.md §10). Production code in those packages
// must route fan-out through core.ParallelFor, which bounds workers
// and forces index-ordered merging; a genuinely safe goroutine (the
// pool's own workers) carries a //lint:ignore goroutine directive
// explaining why. Test files are exempt — tests may spawn goroutines
// to provoke the race detector.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "forbid bare go statements in sim-facing packages; use core.ParallelFor",
	Run:  runGoroutine,
}

func runGoroutine(p *Pass) {
	if !SimFacing(p.PkgName()) {
		return
	}
	for _, f := range p.Files() {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(),
					"bare go statement makes completion order scheduler-dependent; fan out through core.ParallelFor and merge results by index")
			}
			return true
		})
	}
}
