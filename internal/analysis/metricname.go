package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// MetricName keeps the telemetry registry's namespace bounded and
// greppable. A metric name built with fmt.Sprintf (or any runtime
// string) can mint a new time series per call — unbounded cardinality
// is exactly the failure ODS-style systems guard against — and a name
// outside softsku_[a-z0-9_]+ escapes the exported namespace every
// dashboard and BENCH harness scrapes. So Registry.Counter / Gauge /
// Histogram must get a compile-time constant name matching the
// pattern; variable parts belong in telemetry.Labels(const, k, v...)
// label values, never in the family name.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "telemetry metric names must be softsku_-prefixed compile-time constants",
	Run:  runMetricName,
}

var metricNameRE = regexp.MustCompile(`^softsku_[a-z0-9_]+$`)

func runMetricName(p *Pass) {
	for _, f := range p.Files() {
		if p.IsTestFile(f) {
			continue // tests exercise registries with throwaway names
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.Callee(call)
			if fn == nil || len(call.Args) == 0 {
				return true
			}
			switch fn.Name() {
			case "Counter", "Gauge", "Histogram":
			default:
				return true
			}
			if !isTelemetryMethod(fn, "Registry") {
				return true
			}
			p.checkMetricNameArg(call.Args[0], fn.Name())
			return true
		})
	}
}

// checkMetricNameArg validates the name argument: a string constant
// matching the pattern, or telemetry.Labels(<constant>, ...) whose
// base family matches.
func (p *Pass) checkMetricNameArg(arg ast.Expr, method string) {
	if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
		if fn := p.Callee(inner); fn != nil && fn.Name() == "Labels" &&
			fn.Pkg() != nil && fn.Pkg().Path() == telemetryPath && len(inner.Args) > 0 {
			p.checkMetricNameArg(inner.Args[0], method)
			return
		}
	}
	tv := p.Info().Types[arg]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		p.Reportf(arg.Pos(),
			"Registry.%s name must be a compile-time string constant — runtime-built names (fmt.Sprintf, concatenated variables) mint unbounded series; put variable parts in telemetry.Labels values", method)
		return
	}
	name := constant.StringVal(tv.Value)
	if !metricNameRE.MatchString(name) {
		p.Reportf(arg.Pos(),
			"metric name %q must match %s so it lands in the exported softsku_ namespace", name, metricNameRE)
	}
}

// isTelemetryMethod reports whether fn is a method whose receiver is
// (a pointer to) the named telemetry type.
func isTelemetryMethod(fn *types.Func, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == telemetryPath
}
