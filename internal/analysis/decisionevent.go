package analysis

import (
	"go/ast"
	"go/types"
)

// decisionPath is the import path of the decision-trace flight
// recorder whose Event type this analyzer guards.
const decisionPath = "softsku/internal/decision"

// DecisionEvent keeps the decision ledger's schema in one place. A
// decision.Event assembled as a raw composite literal outside the
// decision package bypasses the constructors (TrialMeasured,
// ArmAccepted, GuardrailTrip, ...) that sanitize floats (finite: no
// NaN/Inf in the JSONL), stamp the Kind, and keep field semantics
// consistent — the properties counterfactual replay and the
// bit-identical-ledger test rest on. Every recording site must build
// events through the constructors; supporting value types
// (decision.Evidence, decision.Stat, decision.TrialOutcome) stay free
// to construct anywhere. Test files are NOT exempt: a test that forges
// an Event literal pins a schema the constructors may never produce.
var DecisionEvent = &Analyzer{
	Name: "decisionevent",
	Doc:  "decision.Event values must be built via the decision package's constructors",
	Run:  runDecisionEvent,
}

func runDecisionEvent(p *Pass) {
	if p.PkgName() == "decision" {
		return // the constructors themselves live here
	}
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := p.Info().Types[lit]
			if !ok {
				return true
			}
			if isDecisionEvent(tv.Type) {
				p.Reportf(lit.Pos(),
					"decision.Event composite literal bypasses the event constructors; raw literals skip float sanitization and kind stamping, corrupting the ledger schema replay depends on — use decision.TrialMeasured/ArmAccepted/... instead")
			}
			return true
		})
	}
}

// isDecisionEvent reports whether t (possibly behind pointers) is the
// named type Event from softsku/internal/decision.
func isDecisionEvent(t types.Type) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Event" && obj.Pkg() != nil && obj.Pkg().Path() == decisionPath
}
