package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one type-checked analysis unit: a package's production
// files merged with its in-package test files (external _test
// packages form their own unit). Merging means every file is analyzed
// exactly once while importers of the package still see the
// production-only variant.
type Unit struct {
	Path  string // import path ("softsku/internal/sim"), synthetic for testdata
	Dir   string
	Name  string // declared package name
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Test  map[*ast.File]bool // per-file: is a _test.go file
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-local imports are resolved by recursively
// type-checking their directories, everything else falls back to
// go/importer's source importer over GOROOT.
type Loader struct {
	ModRoot string
	ModPath string
	Fset    *token.FileSet
	std     types.Importer
	cache   map[string]*types.Package // production-variant import cache
	prod    map[string]*ProdPkg       // full export data behind cache entries
}

// ProdPkg is one production package (no _test.go files) in the
// loader's shared import universe: every ProdPkg of a module was
// type-checked through the same importer cache, so types.Object
// identities line up across packages — the property the module call
// graph's cross-package resolution (interface satisfaction, callee
// identity) depends on. Per-directory Units re-type-check their files
// independently and must NOT be mixed into this universe.
type ProdPkg struct {
	Path  string // import path within the module
	Dir   string
	Name  string // declared package name
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Module is the whole-module view: every production package matched
// by a LoadModule pattern, in one consistent type universe, sorted by
// import path.
type Module struct {
	Fset *token.FileSet
	Pkgs []*ProdPkg
}

// NewLoader builds a loader rooted at the directory containing go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", modRoot)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*types.Package),
		prod:    make(map[string]*ProdPkg),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer: module-local paths type-check
// their directory's production files; all other paths go to the
// stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
		files, _, err := l.parseDir(dir, false)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("analysis: no Go files in %s for import %q", dir, path)
		}
		info := newInfo()
		pkg, err := l.check(path, files, info)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		l.prod[path] = &ProdPkg{
			Path: path, Dir: dir, Name: pkg.Name(),
			Files: files, Pkg: pkg, Info: info,
		}
		return pkg, nil
	}
	return l.std.Import(path)
}

// parseDir parses a directory's .go files. withTests controls whether
// _test.go files are included; the returned map marks them.
func (l *Loader) parseDir(dir string, withTests bool) ([]*ast.File, map[*ast.File]bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	isTest := make(map[*ast.File]bool)
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		test := strings.HasSuffix(name, "_test.go")
		if test && !withTests {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		isTest[f] = test
		files = append(files, f)
	}
	return files, isTest, nil
}

func (l *Loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	if info == nil {
		info = newInfo()
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// importPath maps dir to its import path within the module; synthetic
// testdata fixtures (outside normal builds) keep a path under the
// module so fixture imports of module packages still resolve.
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// LoadDir type-checks one directory and returns its analysis units:
// the merged production+in-package-test unit, plus one unit per
// external _test package if present.
func (l *Loader) LoadDir(dir string) ([]*Unit, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	all, isTest, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	path := l.importPath(dir)

	// Split by package name: the production package (plus in-package
	// tests) vs external "_test" packages.
	byName := make(map[string][]*ast.File)
	var names []string
	for _, f := range all {
		n := f.Name.Name
		if byName[n] == nil {
			names = append(names, n)
		}
		byName[n] = append(byName[n], f)
	}
	sort.Strings(names)

	var units []*Unit
	for _, n := range names {
		files := byName[n]
		upath := path
		if strings.HasSuffix(n, "_test") && byName[strings.TrimSuffix(n, "_test")] != nil {
			upath = path + "_test"
		}
		info := newInfo()
		pkg, err := l.check(upath, files, info)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{
			Path: upath, Dir: dir, Name: n,
			Fset: l.Fset, Files: files, Pkg: pkg, Info: info, Test: isTest,
		})
	}
	return units, nil
}

// PackageDirs expands a pattern relative to root: "dir/..." walks for
// every directory holding Go files (skipping testdata, vendor and
// dot-dirs), anything else names a single directory.
func PackageDirs(root, pattern string) ([]string, error) {
	if !strings.HasSuffix(pattern, "...") {
		dir := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pattern, "./")))
		return []string{dir}, nil
	}
	base := strings.TrimSuffix(pattern, "...")
	base = strings.TrimSuffix(base, "/")
	start := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(base, "./")))
	var dirs []string
	err := filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != start && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasPrefix(d.Name(), ".") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasProductionGo reports whether dir contains at least one buildable
// non-test Go file. Directories whose only Go files are _test.go
// (external test fixtures, test-only helper packages) have no
// production variant and must stay out of the module call graph.
func hasProductionGo(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		return true
	}
	return false
}

// LoadModule expands patterns and type-checks every matched
// production package through the shared import cache, so all returned
// packages live in one type universe (object identities comparable
// across packages). _test.go files and test-only directories are
// excluded entirely: the module call graph describes what ships.
func (l *Loader) LoadModule(patterns ...string) (*Module, error) {
	seen := make(map[string]bool)
	mod := &Module{Fset: l.Fset}
	for _, pat := range patterns {
		dirs, err := PackageDirs(l.ModRoot, pat)
		if err != nil {
			return nil, err
		}
		for _, dir := range dirs {
			dir, err := filepath.Abs(dir)
			if err != nil {
				return nil, err
			}
			path := l.importPath(dir)
			if seen[path] || !hasProductionGo(dir) {
				continue
			}
			seen[path] = true
			if _, err := l.Import(path); err != nil {
				return nil, err
			}
			mod.Pkgs = append(mod.Pkgs, l.prod[path])
		}
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })
	return mod, nil
}

// Load expands patterns and type-checks every matched directory.
func (l *Loader) Load(patterns ...string) ([]*Unit, error) {
	seen := make(map[string]bool)
	var units []*Unit
	for _, pat := range patterns {
		dirs, err := PackageDirs(l.ModRoot, pat)
		if err != nil {
			return nil, err
		}
		for _, dir := range dirs {
			if seen[dir] {
				continue
			}
			seen[dir] = true
			us, err := l.LoadDir(dir)
			if err != nil {
				return nil, err
			}
			units = append(units, us...)
		}
	}
	return units, nil
}
