package analysis

import (
	"go/ast"
	"go/types"
)

// KnobErr guards the mutation paths a soft-SKU verdict depends on.
// When a knob apply / set / rollback / revert fails and the error is
// discarded, the server silently keeps its old configuration while
// the A/B harness measures it as the new one — the verdict is then an
// artifact, not a result (the paper's §4 trial protocol assumes both
// arms actually run their assigned configs). Any call to a function
// or method named Apply, Set, Rollback or Revert whose final result
// is an error must not drop that error: not as a bare expression
// statement, not into the blank identifier (whether by assignment —
// `_ =`, `a, _ :=` — or by var declaration — `var _ =`,
// `var a, _ =`, at function or package level), not behind go/defer.
var KnobErr = &Analyzer{
	Name: "knoberr",
	Doc:  "errors from Apply/Set/Rollback/Revert mutation calls must not be discarded",
	Run:  runKnobErr,
}

var mutationNames = map[string]bool{
	"Apply": true, "Set": true, "Rollback": true, "Revert": true,
}

func runKnobErr(p *Pass) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if name, ok := p.mutationErrCall(st.X); ok {
					p.Reportf(st.Pos(),
						"error from %s is discarded; a failed apply leaves the server on its old config while the A/B verdict assumes the new one — handle or log it", name)
				}
			case *ast.GoStmt:
				if name, ok := p.mutationErrCall(st.Call); ok {
					p.Reportf(st.Pos(), "error from %s inside go statement is unobservable; capture it in the goroutine", name)
				}
			case *ast.DeferStmt:
				if name, ok := p.mutationErrCall(st.Call); ok {
					p.Reportf(st.Pos(), "error from deferred %s is discarded; wrap it in a closure that handles the error", name)
				}
			case *ast.AssignStmt:
				p.checkAssignDiscard(st)
			case *ast.ValueSpec:
				p.checkSpecDiscard(st)
			}
			return true
		})
	}
}

// checkSpecDiscard flags var declarations that route a mutation error
// to the blank identifier: `var _ = k.Set(v)` or
// `var rebooted, _ = srv.Apply(cfg)`, at function or package level.
// These were the knoberr blind spot: declaration forms never pass
// through checkAssignDiscard's *ast.AssignStmt case.
func (p *Pass) checkSpecDiscard(vs *ast.ValueSpec) {
	if len(vs.Values) == 1 {
		name, ok := p.mutationErrCall(vs.Values[0])
		if !ok || len(vs.Names) == 0 {
			return
		}
		if vs.Names[len(vs.Names)-1].Name == "_" {
			p.Reportf(vs.Pos(), "error from %s is declared into _; a silently failed mutation corrupts the A/B verdict — handle or log it", name)
		}
		return
	}
	// Parallel declaration: each value is a single-valued expression.
	for i, v := range vs.Values {
		if name, ok := p.mutationErrCall(v); ok && i < len(vs.Names) && vs.Names[i].Name == "_" {
			p.Reportf(vs.Pos(), "error from %s is declared into _; a silently failed mutation corrupts the A/B verdict — handle or log it", name)
		}
	}
}

// checkAssignDiscard flags assignments that route a mutation error to
// the blank identifier: `_, _ = srv.Apply(cfg)` or `_ = k.Set(v)`.
func (p *Pass) checkAssignDiscard(st *ast.AssignStmt) {
	if len(st.Rhs) == 1 {
		name, ok := p.mutationErrCall(st.Rhs[0])
		if !ok || len(st.Lhs) == 0 {
			return
		}
		if isBlank(st.Lhs[len(st.Lhs)-1]) {
			p.Reportf(st.Pos(), "error from %s is assigned to _; a silently failed mutation corrupts the A/B verdict — handle or log it", name)
		}
		return
	}
	// Parallel assignment: each RHS is a single-valued expression.
	for i, rhs := range st.Rhs {
		if name, ok := p.mutationErrCall(rhs); ok && i < len(st.Lhs) && isBlank(st.Lhs[i]) {
			p.Reportf(st.Pos(), "error from %s is assigned to _; a silently failed mutation corrupts the A/B verdict — handle or log it", name)
		}
	}
}

// mutationErrCall reports whether expr is a call to a mutation-named
// function or method whose last result is an error, returning a
// display name like "(*platform.Server).Apply".
func (p *Pass) mutationErrCall(expr ast.Expr) (string, bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := p.Callee(call)
	if fn == nil || !mutationNames[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return "", false
	}
	last := res.At(res.Len() - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return "", false
	}
	return displayName(fn), true
}

func displayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
