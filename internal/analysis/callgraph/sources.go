package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// SourceKind classifies a nondeterminism source.
type SourceKind string

const (
	// KindWallClock is a machine-clock read (time.Now and friends).
	KindWallClock SourceKind = "wallclock"
	// KindGlobalRand is the process-global math/rand stream.
	KindGlobalRand SourceKind = "globalrand"
	// KindEnv is ambient process environment (os.Getenv, ...).
	KindEnv SourceKind = "env"
	// KindHostConfig is host-shape introspection (runtime.NumCPU, ...).
	KindHostConfig SourceKind = "hostconfig"
	// KindMapOrder is a map range whose iteration order escapes into
	// an order-sensitive result.
	KindMapOrder SourceKind = "maporder"
	// KindSelectOrder is a select with several ready-eligible comm
	// clauses — the runtime picks uniformly at random.
	KindSelectOrder SourceKind = "selectorder"
	// KindAtomicCounter is a sync/atomic counter value returned to
	// the caller — its value is scheduler-ordered.
	KindAtomicCounter SourceKind = "atomiccounter"
)

// Source describes one nondeterminism source, either a catalogued
// out-of-module function (Pos zero) or a body intrinsic (Pos set to
// the offending statement).
type Source struct {
	Kind   SourceKind
	Label  string // path element: "time.Now", "map-range@hist.go:218"
	Detail string // one-line human explanation
	Pos    token.Position
}

// wallClockFuncs mirrors the per-package nondeterminism analyzer's
// catalog: time-package functions that consult the machine clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
	"Hostname": true, "Getpid": true,
}

var hostConfigFuncs = map[string]bool{
	"NumCPU": true, "GOMAXPROCS": true, "NumGoroutine": true,
}

// classifySource reports whether fn is a catalogued out-of-module
// nondeterminism source.
func classifySource(fn *types.Func) (Source, bool) {
	if fn.Pkg() == nil {
		return Source{}, false
	}
	sig, _ := fn.Type().(*types.Signature)
	hasRecv := sig != nil && sig.Recv() != nil
	switch fn.Pkg().Path() {
	case "time":
		if !hasRecv && wallClockFuncs[fn.Name()] {
			return Source{Kind: KindWallClock, Label: "time." + fn.Name(),
				Detail: "reads the machine clock"}, true
		}
	case "math/rand", "math/rand/v2":
		// Package-level functions draw from the global stream; methods
		// on a *rand.Rand are caller-seeded and the per-package
		// nondeterminism analyzer governs their use directly.
		if !hasRecv {
			return Source{Kind: KindGlobalRand, Label: fn.Pkg().Path() + "." + fn.Name(),
				Detail: "draws from the process-global random stream"}, true
		}
	case "os":
		if !hasRecv && envFuncs[fn.Name()] {
			return Source{Kind: KindEnv, Label: "os." + fn.Name(),
				Detail: "consults the ambient process environment"}, true
		}
	case "runtime":
		if !hasRecv && hostConfigFuncs[fn.Name()] {
			return Source{Kind: KindHostConfig, Label: "runtime." + fn.Name(),
				Detail: "depends on host shape, varying machine to machine"}, true
		}
	}
	return Source{}, false
}

// scanIntrinsics finds body-level nondeterminism sources in one
// function body (or initializer expression).
func scanIntrinsics(fset *token.FileSet, info *types.Info, body ast.Node) []Source {
	var out []Source
	sortedVars := sortCallArgs(info, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.RangeStmt:
			if src, ok := mapOrderEscape(fset, info, st, sortedVars); ok {
				out = append(out, src)
			}
		case *ast.SelectStmt:
			if src, ok := multiCommSelect(fset, st); ok {
				out = append(out, src)
			}
		}
		return true
	})
	out = append(out, atomicReturns(fset, info, body)...)
	return out
}

// atPos renders a stable location tag for intrinsic labels.
func atPos(fset *token.FileSet, pos token.Pos) (string, token.Position) {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line), p
}

// mapOrderEscape reports a map range whose iteration order leaks into
// an order-sensitive accumulator: an append (or string +=) to a
// variable declared outside the loop, with no later sort of that
// variable in the same function. The collect-then-sort idiom
// (append keys, sort.Strings(keys)) therefore stays clean, as do
// commutative folds (sums, counts, max) and keyed writes (m2[k] = v).
func mapOrderEscape(fset *token.FileSet, info *types.Info, rs *ast.RangeStmt, sortedVars map[types.Object]bool) (Source, bool) {
	tv, ok := info.Types[rs.X]
	if !ok {
		return Source{}, false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return Source{}, false
	}
	var hit ast.Node
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			obj := assignedObj(info, lhs)
			if obj == nil || sortedVars[obj] || !declaredOutside(obj, rs) {
				continue
			}
			switch {
			case as.Tok == token.ADD_ASSIGN && isStringy(obj):
				hit = as
			case i < len(as.Rhs) && isAppendTo(info, as.Rhs[i], obj):
				hit = as
			case len(as.Rhs) == 1 && isAppendTo(info, as.Rhs[0], obj):
				hit = as
			}
		}
		return hit == nil
	})
	if hit == nil {
		return Source{}, false
	}
	at, pos := atPos(fset, rs.For)
	return Source{
		Kind:   KindMapOrder,
		Label:  "map-range@" + at,
		Detail: "map iteration order escapes into an order-sensitive result (append without a later sort)",
		Pos:    pos,
	}, true
}

// assignedObj resolves the object behind a plain identifier LHS.
func assignedObj(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// declaredOutside reports whether obj was declared before the range
// statement (so writes inside the loop accumulate across iterations).
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos()
}

func isStringy(obj types.Object) bool {
	basic, ok := obj.Type().Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isAppendTo reports whether expr is `append(obj, ...)`.
func isAppendTo(info *types.Info, expr ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if bi, ok := info.Uses[id].(*types.Builtin); !ok || bi.Name() != "append" {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && info.Uses[arg] == obj
}

// sortCallArgs collects every object passed to a sort.*/slices.Sort*
// call anywhere in the function — the clearing half of the
// collect-then-sort idiom.
func sortCallArgs(info *types.Info, body ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		if path == "slices" && !strings.HasPrefix(fn.Name(), "Sort") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						out[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// multiCommSelect flags selects with two or more non-default comm
// clauses: when several are ready the runtime chooses uniformly at
// random, so whatever the chosen arm computes is schedule-dependent.
func multiCommSelect(fset *token.FileSet, st *ast.SelectStmt) (Source, bool) {
	comms := 0
	for _, cl := range st.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms < 2 {
		return Source{}, false
	}
	at, pos := atPos(fset, st.Select)
	return Source{
		Kind:   KindSelectOrder,
		Label:  "select@" + at,
		Detail: fmt.Sprintf("select with %d comm clauses; the runtime picks a ready one at random", comms),
		Pos:    pos,
	}, true
}

// atomicReturns flags sync/atomic read-modify-write or load results
// that flow into the function's return value: the number returned
// depends on scheduler interleaving. Pure side-effect uses
// (statement-position Add, CAS loops feeding a metric) stay clean.
func atomicReturns(fset *token.FileSet, info *types.Info, body ast.Node) []Source {
	// Objects assigned from an atomic call result.
	carriers := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if !exprUsesAtomic(info, rhs) {
				continue
			}
			if len(as.Rhs) == 1 {
				for _, lhs := range as.Lhs {
					if obj := assignedObj(info, lhs); obj != nil {
						carriers[obj] = true
					}
				}
			} else if i < len(as.Lhs) {
				if obj := assignedObj(info, as.Lhs[i]); obj != nil {
					carriers[obj] = true
				}
			}
		}
		return true
	})
	var out []Source
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			direct := exprUsesAtomic(info, res)
			viaVar := false
			if !direct {
				ast.Inspect(res, func(rn ast.Node) bool {
					if id, ok := rn.(*ast.Ident); ok && carriers[info.Uses[id]] {
						viaVar = true
					}
					return !viaVar
				})
			}
			if direct || viaVar {
				at, pos := atPos(fset, ret.Return)
				out = append(out, Source{
					Kind:   KindAtomicCounter,
					Label:  "atomic@" + at,
					Detail: "returns a sync/atomic counter value; its magnitude is scheduler-ordered",
					Pos:    pos,
				})
				break
			}
		}
		return true
	})
	return out
}

// exprUsesAtomic reports whether expr contains a call into
// sync/atomic (function or method form).
func exprUsesAtomic(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if fn := calleeOf(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
			found = true
		}
		return !found
	})
	return found
}
