// Package callgraph builds a module-wide static call graph from
// type-checked production packages, using only go/ast and go/types.
// It exists so softskulint's detflow analyzer can prove — not assume —
// that no sim-facing export transitively reaches a nondeterminism
// source through helper packages (DESIGN.md §14).
//
// Resolution strategy, and its honest limits:
//
//   - Static calls and concrete method calls resolve to their
//     *types.Func directly (one edge per call site).
//   - Interface method calls resolve by class-hierarchy analysis
//     (CHA): an edge is added to every concrete method in the module
//     whose type satisfies the interface. CHA is sound but
//     imprecise — it over-approximates (edges to implementations the
//     call can never reach) and never under-approximates within the
//     module's type set.
//   - Calls through function *values* (stored func fields, closures
//     passed around, package-level func variables) produce no edge:
//     the graph cannot see through data flow. This is the documented
//     escape hatch the injected telemetry wall clock rides on — its
//     time.Now lives behind a func variable precisely because it is
//     observability-only by contract.
//   - A function literal's body is attributed to the enclosing
//     declared function: taint inside a closure taints its author.
//     Calls in package-level var initializers are attributed to a
//     synthetic per-package "init" node.
//
// All packages handed to Build must come from one type-check universe
// (the analysis.Loader's shared production import cache); object
// identities are how cross-package callees and interface
// satisfaction are resolved.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one production package in a shared type universe.
type Package struct {
	Path  string // import path
	Name  string // declared package name
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Node is one function, method, or synthetic package-init in the
// graph, or a catalogued nondeterminism source outside the module
// (time.Now, math/rand.Intn, ...).
type Node struct {
	Key     string // stable id: import/path.Recv.Name
	Label   string // display form: pkg.Recv.Name
	PkgPath string
	PkgName string
	// Exported marks exported functions and exported methods — the
	// entry points a package's importers can reach directly.
	Exported bool
	// Pos is the declaration site (zero for non-module source leaves).
	Pos token.Position
	// Source is non-nil for catalogued nondeterminism sources outside
	// the module (the node is then a leaf: no out-edges).
	Source *Source
	// Intrinsics are body-derived nondeterminism sources: map ranges
	// whose iteration order escapes, selects with several comm
	// clauses, atomic counter values returned to the caller.
	Intrinsics []Source
	// Out holds the node's call edges in source order.
	Out []*Edge
}

// Edge is one call site: From's body calls To at Pos. Dynamic edges
// come from CHA interface dispatch (one per satisfying type).
type Edge struct {
	From, To *Node
	Pos      token.Position
	Dynamic  bool
}

// Graph is the module call graph.
type Graph struct {
	Nodes map[string]*Node
	keys  []string // sorted node keys, fixed at Build time
}

// SortedNodes returns the nodes in deterministic key order.
func (g *Graph) SortedNodes() []*Node {
	out := make([]*Node, len(g.keys))
	for i, k := range g.keys {
		out[i] = g.Nodes[k]
	}
	return out
}

// builder carries the in-progress graph.
type builder struct {
	fset    *token.FileSet
	pkgs    []*Package
	modPkgs map[*types.Package]*Package // module membership by object identity
	byFn    map[*types.Func]*Node
	graph   *Graph
	// concrete is the CHA universe: every named non-interface,
	// non-generic type declared in the module.
	concrete []concreteType
	// implCache memoizes CHA resolution per (interface, method name).
	implCache map[implKey][]*types.Func
}

type concreteType struct {
	name *types.TypeName
	typ  types.Type // the named type T; method sets taken over *T
}

type implKey struct {
	iface  *types.Interface
	method string
}

// Build constructs the call graph over pkgs. fset must be the file
// set the packages were parsed with.
func Build(fset *token.FileSet, pkgs []*Package) *Graph {
	b := &builder{
		fset:      fset,
		pkgs:      pkgs,
		modPkgs:   make(map[*types.Package]*Package),
		byFn:      make(map[*types.Func]*Node),
		graph:     &Graph{Nodes: make(map[string]*Node)},
		implCache: make(map[implKey][]*types.Func),
	}
	for _, p := range pkgs {
		b.modPkgs[p.Pkg] = p
	}
	b.collectConcreteTypes()
	// Pass 1: a node per declared function/method so cross-package
	// edges in pass 2 always find their target.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						b.nodeForFunc(fn)
					}
				}
			}
		}
	}
	// Pass 2: edges and intrinsic sources.
	for _, p := range pkgs {
		for _, f := range p.Files {
			b.addFile(p, f)
		}
	}
	b.graph.keys = make([]string, 0, len(b.graph.Nodes))
	for k := range b.graph.Nodes {
		b.graph.keys = append(b.graph.keys, k)
	}
	sort.Strings(b.graph.keys)
	return b.graph
}

// collectConcreteTypes gathers the CHA universe in deterministic
// package/name order.
func (b *builder) collectConcreteTypes() {
	for _, p := range b.pkgs {
		scope := p.Pkg.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			b.concrete = append(b.concrete, concreteType{name: tn, typ: named})
		}
	}
}

// funcKey builds the stable node id for fn.
func funcKey(fn *types.Func) string {
	pkg := "builtin"
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if recv := recvName(fn); recv != "" {
		return pkg + "." + recv + "." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// funcLabel builds the display form (short package name).
func funcLabel(fn *types.Func) string {
	pkg := "builtin"
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name()
		// Stdlib paths read better fully qualified: time.Now not t.Now.
		if p := fn.Pkg().Path(); !strings.Contains(p, "/") {
			pkg = p
		}
	}
	if recv := recvName(fn); recv != "" {
		return pkg + "." + recv + "." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// recvName returns the bare receiver type name of a method, "" for
// plain functions and interface methods' abstract receivers keep
// their interface name.
func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		return "interface"
	}
	return ""
}

// nodeForFunc returns (creating if needed) the node for a declared
// module function.
func (b *builder) nodeForFunc(fn *types.Func) *Node {
	if n, ok := b.byFn[fn]; ok {
		return n
	}
	key := funcKey(fn)
	if n, ok := b.graph.Nodes[key]; ok {
		b.byFn[fn] = n
		return n
	}
	n := &Node{
		Key:      key,
		Label:    funcLabel(fn),
		Pos:      b.fset.Position(fn.Pos()),
		Exported: fn.Exported(),
	}
	if fn.Pkg() != nil {
		n.PkgPath = fn.Pkg().Path()
		n.PkgName = fn.Pkg().Name()
	}
	b.byFn[fn] = n
	b.graph.Nodes[key] = n
	return n
}

// initNode returns the synthetic per-package init node.
func (b *builder) initNode(p *Package) *Node {
	key := p.Path + ".init"
	if n, ok := b.graph.Nodes[key]; ok {
		return n
	}
	n := &Node{
		Key: key, Label: p.Name + ".init",
		PkgPath: p.Path, PkgName: p.Name,
		Exported: true, // init runs unconditionally for every importer
	}
	b.graph.Nodes[key] = n
	return n
}

// sourceNode returns (creating if needed) the leaf node for a
// catalogued out-of-module source.
func (b *builder) sourceNode(fn *types.Func, src Source) *Node {
	key := funcKey(fn)
	if n, ok := b.graph.Nodes[key]; ok {
		return n
	}
	s := src
	n := &Node{
		Key: key, Label: funcLabel(fn), Source: &s,
	}
	if fn.Pkg() != nil {
		n.PkgPath = fn.Pkg().Path()
		n.PkgName = fn.Pkg().Name()
	}
	b.graph.Nodes[key] = n
	return n
}

// addFile walks one file, attributing calls and intrinsics to the
// enclosing declared function (or the package init node).
func (b *builder) addFile(p *Package, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[d.Name].(*types.Func)
			if !ok {
				continue
			}
			node := b.nodeForFunc(fn)
			b.addCalls(p, node, d.Body)
			node.Intrinsics = append(node.Intrinsics, scanIntrinsics(b.fset, p.Info, d.Body)...)
		case *ast.GenDecl:
			// Package-level initializers can call into the module
			// (e.g. building default tables); attribute them to init.
			for _, spec := range d.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				for _, v := range vs.Values {
					if containsCall(v) {
						node := b.initNode(p)
						b.addCalls(p, node, v)
						node.Intrinsics = append(node.Intrinsics, scanIntrinsics(b.fset, p.Info, v)...)
					}
				}
			}
		}
	}
}

func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

// addCalls records an edge for every resolvable call in body.
func (b *builder) addCalls(p *Package, from *Node, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(p.Info, call)
		if fn == nil {
			return true // indirect call, conversion, or builtin
		}
		pos := b.fset.Position(call.Lparen)
		if iface := interfaceRecv(fn); iface != nil {
			// CHA: fan the abstract call out to every concrete
			// module method satisfying the interface.
			for _, impl := range b.implementations(iface, fn.Name()) {
				b.edgeTo(from, impl, pos, true)
			}
			return true
		}
		b.edgeTo(from, fn, pos, false)
		return true
	})
}

// edgeTo links from → fn if fn is a module function or a catalogued
// source; other out-of-module callees are irrelevant to taint and
// dropped.
func (b *builder) edgeTo(from *Node, fn *types.Func, pos token.Position, dynamic bool) {
	var to *Node
	if b.isModuleFunc(fn) {
		to = b.nodeForFunc(fn)
	} else if src, ok := classifySource(fn); ok {
		to = b.sourceNode(fn, src)
	} else {
		return
	}
	if to == from {
		return // self-recursion adds nothing to reachability
	}
	from.Out = append(from.Out, &Edge{From: from, To: to, Pos: pos, Dynamic: dynamic})
}

// isModuleFunc reports whether fn was declared in one of the loaded
// packages (object-identity check against the shared universe).
func (b *builder) isModuleFunc(fn *types.Func) bool {
	return fn.Pkg() != nil && b.modPkgs[fn.Pkg()] != nil
}

// calleeOf resolves the called function or method, nil for indirect
// calls, conversions and builtins. Mirrors analysis.(*Pass).Callee.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// interfaceRecv returns the receiver interface of an abstract method,
// nil for plain functions and concrete methods.
func interfaceRecv(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	iface, _ := t.Underlying().(*types.Interface)
	return iface
}

// implementations resolves an interface method to the concrete module
// methods that can answer it (CHA), memoized per (iface, name).
func (b *builder) implementations(iface *types.Interface, name string) []*types.Func {
	key := implKey{iface, name}
	if impls, ok := b.implCache[key]; ok {
		return impls
	}
	var impls []*types.Func
	for _, ct := range b.concrete {
		if !types.Implements(ct.typ, iface) && !types.Implements(types.NewPointer(ct.typ), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(ct.typ), true, ct.name.Pkg(), name)
		if m, ok := obj.(*types.Func); ok {
			impls = append(impls, m)
		}
	}
	b.implCache[key] = impls
	return impls
}

// DOT renders the graph for debugging (`softskulint -graph`). Nodes
// the caller marked tainted are filled; catalogued sources are red
// boxes; suppressed edges (pruned by //lint:ignore detflow) come in
// dashed. Both maps may be nil.
func (g *Graph) DOT(w interface{ Write([]byte) (int, error) }, tainted map[string]bool, suppressedEdge func(*Edge) bool) {
	fmt.Fprintln(w, "digraph detflow {")
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [fontname=\"monospace\", fontsize=10];")
	for _, n := range g.SortedNodes() {
		attrs := fmt.Sprintf("label=%q", n.Label)
		switch {
		case n.Source != nil:
			attrs += ", shape=box, color=red"
		case len(n.Intrinsics) > 0:
			attrs += ", shape=box, color=orange"
		default:
			attrs += ", shape=ellipse"
		}
		if tainted != nil && tainted[n.Key] {
			attrs += ", style=filled, fillcolor=mistyrose"
		}
		fmt.Fprintf(w, "  %q [%s];\n", n.Key, attrs)
	}
	for _, n := range g.SortedNodes() {
		for _, e := range n.Out {
			var opts []string
			if e.Dynamic {
				opts = append(opts, "arrowhead=empty")
			}
			if suppressedEdge != nil && suppressedEdge(e) {
				opts = append(opts, "style=dashed", "color=gray")
			}
			attr := ""
			if len(opts) > 0 {
				attr = " [" + strings.Join(opts, ", ") + "]"
			}
			fmt.Fprintf(w, "  %q -> %q%s;\n", e.From.Key, e.To.Key, attr)
		}
	}
	fmt.Fprintln(w, "}")
}
