package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// sharedLoader amortizes stdlib source type-checking across golden
// cases; fixture packages import telemetry/rng from the real module.
var (
	loaderOnce sync.Once
	loaderInst *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loaderInst, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loaderInst
}

// renderResult formats findings the way the golden files store them:
// basename-relative diagnostics plus a trailing suppression count, so
// the goldens pin the suppression machinery too.
func renderResult(res Result) string {
	var b strings.Builder
	for _, d := range res.Findings {
		fmt.Fprintf(&b, "%s:%d: [%s] %s\n", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
	}
	fmt.Fprintf(&b, "-- suppressed: %d\n", res.Suppressed)
	return b.String()
}

func TestGolden(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		dir      string // under testdata/, golden at <dir>.golden
	}{
		{Nondeterminism, "nondeterminism/sim"},
		{Nondeterminism, "nondeterminism/clockfree"},
		{Nondeterminism, "nondeterminism/memocache"},
		{MetricName, "metricname/metrics"},
		{KnobErr, "knoberr/knobs"},
		{SpanEnd, "spanend/spans"},
		{SeedArg, "seedarg/sim"},
		{Goroutine, "goroutine/sim"},
		{Goroutine, "goroutine/controller"},
		{Nondeterminism, "nondeterminism/controller"},
		{DecisionEvent, "decisionevent/events"},
		{Nondeterminism, "directives/bad"},
		{KnobErr, "directives/stale"},
	}
	l := fixtureLoader(t)
	for _, c := range cases {
		c := c
		t.Run(strings.ReplaceAll(c.dir, "/", "_"), func(t *testing.T) {
			units, err := l.LoadDir(filepath.Join("testdata", filepath.FromSlash(c.dir)))
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			got := renderResult(Run(units, []*Analyzer{c.analyzer}))
			goldenPath := filepath.Join("testdata", filepath.FromSlash(c.dir)+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantB, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if want := string(wantB); got != want {
				t.Errorf("diagnostics diverge from golden %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestSuiteSelfClean runs the full suite over its own package — the
// analyzers must hold themselves to the invariants they enforce.
func TestSuiteSelfClean(t *testing.T) {
	l := fixtureLoader(t)
	units, err := l.LoadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	res := Run(units, All())
	for _, d := range res.Findings {
		t.Errorf("unexpected finding: %s", d)
	}
}
