package analysis

import (
	"go/ast"
	"go/types"
)

// SeedArg keeps randomness caller-controlled in the sim-facing
// packages. The determinism contract only composes if every stream in
// a run hangs off the run's seed: an exported constructor that
// fabricates its own stream (rng.New with a literal or package-level
// seed) is invisible to -chaos-seed and silently forks the
// reproduction. Constructors must receive randomness from the caller
// — a *rng.Source parameter (preferred; pair with rng.Split) or an
// explicit seed parameter — and every rng.New inside an exported
// constructor must derive its argument from a parameter.
var SeedArg = &Analyzer{
	Name: "seedarg",
	Doc:  "exported sim-facing constructors must take their randomness from the caller",
	Run:  runSeedArg,
}

func runSeedArg(p *Pass) {
	if !SimFacing(p.PkgName()) {
		return
	}
	for _, f := range p.Files() {
		if p.IsTestFile(f) {
			continue // tests pin their own constant seeds by design
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil || !fd.Name.IsExported() {
				continue
			}
			if !p.isConstructor(fd) {
				continue
			}
			params := p.paramObjects(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := p.Callee(call)
				if fn == nil || fn.Name() != "New" || fn.Pkg() == nil || fn.Pkg().Path() != rngPath {
					return true
				}
				if len(call.Args) != 1 || !p.referencesAny(call.Args[0], params) {
					p.Reportf(call.Pos(),
						"exported constructor %s fabricates its own rng stream; derive it from a caller-supplied *rng.Source or seed parameter so -chaos-seed reaches every stream", fd.Name.Name)
				}
				return true
			})
		}
	}
}

// isConstructor reports whether fd looks like a constructor: named
// New* or returning (a pointer to) a named type declared in this
// package.
func (p *Pass) isConstructor(fd *ast.FuncDecl) bool {
	if len(fd.Name.Name) >= 3 && fd.Name.Name[:3] == "New" {
		return true
	}
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		t := p.Info().Types[field.Type].Type
		if t == nil {
			continue
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg() == p.Unit.Pkg {
				return true
			}
		}
	}
	return false
}

// paramObjects collects the constructor's parameter objects.
func (p *Pass) paramObjects(fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := p.Info().Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// referencesAny reports whether expr mentions any of the given
// objects (e.g. rng.New(seed ^ 0x10ad) references the seed param).
func (p *Pass) referencesAny(expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if objs[p.Info().Uses[id]] {
				found = true
			}
		}
		return !found
	})
	return found
}
