// Fixture: decision.Event construction outside the decision package.
package events

import "softsku/internal/decision"

// recordByConstructor is the sanctioned path: events come from the
// decision package's constructors.
func recordByConstructor(l *decision.Ledger) {
	parent := l.Record(-1, decision.RunStarted("Web", "Skylake18", "independent", "mips", 1, 0.95, 2))
	l.Record(parent, decision.Skip("sweep/thp/1", "always", "injected fault"))
}

// forgeLiteral bypasses the constructors — no finite() sanitization,
// hand-stamped kind.
func forgeLiteral(l *decision.Ledger) {
	l.Record(-1, decision.Event{Kind: "run_started", Service: "Web"})
}

// forgePointer hides the literal behind a pointer.
func forgePointer() *decision.Event {
	return &decision.Event{Kind: "skip", Detail: "forged"}
}

// supportTypesAreFine: the evidence value types carry no kind or
// causal links, so literals are the normal way to build them.
func supportTypesAreFine() decision.Evidence {
	return decision.Evidence{
		Metric:    "mips",
		Control:   decision.Stat{N: 32, Mean: 100, Var: 4},
		Treatment: decision.Stat{N: 32, Mean: 103, Var: 4},
	}
}

// suppressed documents a deliberate forge (e.g. a migration shim).
func suppressed() decision.Event {
	//lint:ignore decisionevent fixture exercising suppression
	return decision.Event{Kind: "revert"}
}
