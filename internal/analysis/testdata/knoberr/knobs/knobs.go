// Fixture: discarded errors on knob/platform mutation paths.
package knobs

import "errors"

type Server struct{}

func (s *Server) Apply(cfg string) (bool, error) { return false, errors.New("apply failed") }
func (s *Server) Rollback() error                { return nil }
func (s *Server) Revert() error                  { return nil }

type Knob struct{}

func (k *Knob) Set(v int) error { return nil }

// Gauge.Set returns no error: the analyzer must leave it alone even
// though the method name collides.
type Gauge struct{}

func (g *Gauge) Set(v float64) {}

func demo(s *Server, k *Knob, g *Gauge) {
	s.Apply("thp")
	_, _ = s.Apply("thp")
	_ = k.Set(3)
	go s.Rollback()
	defer s.Revert()
	g.Set(1.5)
	if _, err := s.Apply("checked"); err != nil {
		panic(err)
	}
	rebooted, _ := s.Apply("partial")
	_ = rebooted
	//lint:ignore knoberr fixture exercising suppression
	_ = k.Set(9)
	if err := k.Set(4); err != nil {
		panic(err)
	}
}

var _ = demo

// Declaration-form discards: the historical knoberr blind spot.
// Assignment forms (`_ =`, `rebooted, _ :=`) are pinned above in
// demo; these pin the `var` equivalents at both scopes.
var pkgServer = &Server{}

var _ = pkgServer.Rollback()

var booted, _ = pkgServer.Apply("declared")

func demoDecls(s *Server, k *Knob) {
	var _ = k.Set(7)
	var rebooted, _ = s.Apply("declform")
	_ = rebooted
	var ok, err = s.Apply("kept")
	_, _ = ok, err
	//lint:ignore knoberr fixture exercising suppression on a declaration
	var _ = k.Set(11)
}

var _ = demoDecls
var _ = booted
