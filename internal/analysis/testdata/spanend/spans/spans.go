// Fixture: StartSpan/StartChild ↔ End pairing.
package spans

import "softsku/internal/telemetry"

type holder struct{ sp *telemetry.Span }

func leaked(tr *telemetry.Tracer) {
	sp := tr.StartSpan("tune", "t")
	sp.Set("k", 1)
}

func discarded(tr *telemetry.Tracer) {
	tr.StartSpan("tune", "t")
}

func leakedChild(tr *telemetry.Tracer) {
	sp := tr.StartSpan("tune", "t")
	defer sp.End()
	child := sp.StartChild("trial", "t")
	child.Set("k", 2)
}

func deferred(tr *telemetry.Tracer) {
	sp := tr.StartSpan("tune", "t")
	defer sp.End()
	child := sp.StartChild("trial", "t")
	child.End()
}

func closureEnd(tr *telemetry.Tracer) {
	sp := tr.StartSpan("tune", "t")
	defer func() { sp.End() }()
}

func escapesField(tr *telemetry.Tracer, h *holder) {
	h.sp = tr.StartSpan("tune", "t")
}

func escapesReturn(tr *telemetry.Tracer) *telemetry.Span {
	return tr.StartSpan("tune", "t")
}

func escapesAlias(tr *telemetry.Tracer) *telemetry.Span {
	sp := tr.StartSpan("tune", "t")
	out := sp
	return out
}

func suppressed(tr *telemetry.Tracer) {
	//lint:ignore spanend fixture exercising suppression
	tr.StartSpan("open", "t")
}

var (
	_ = leaked
	_ = discarded
	_ = leakedChild
	_ = deferred
	_ = closureEnd
	_ = escapesField
	_ = escapesReturn
	_ = escapesAlias
	_ = suppressed
)
