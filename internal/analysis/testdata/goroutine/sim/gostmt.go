// Fixture: bare go statements in a sim-facing package.
package sim

import "sync"

// fanOutBare loses completion-order control: merged results depend on
// the scheduler.
func fanOutBare(fns []func()) {
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		fn := fn
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}

// poolWorker documents a deliberate, merge-ordered worker spawn.
func poolWorker(work func()) {
	//lint:ignore goroutine fixture exercising suppression
	go work()
}

// fireAndForget is also a finding — even a single goroutine detaches
// from the deterministic call tree.
func fireAndForget(f func()) {
	go f()
}
