// Fixture: the self-healing control loop (internal/fleet/controller)
// is in the sim-facing set, so the goroutine analyzer polices it: the
// epoch loop is strictly serial and only the inner A/B trials may fan
// out, through core.ParallelFor's merge-ordered pool.
package controller

import "sync"

type pool struct{ name string }

// epochFanOut is the bug this fixture pins: detecting drift across
// pools in spawned goroutines makes ledger order scheduler-dependent.
func epochFanOut(pools []*pool, detect func(*pool)) {
	var wg sync.WaitGroup
	for _, p := range pools {
		wg.Add(1)
		p := p
		go func() {
			defer wg.Done()
			detect(p)
		}()
	}
	wg.Wait()
}

// probeAsync is also a finding — even a lone breaker half-open probe
// must run inline so its ledger events land in epoch order.
func probeAsync(probe func()) {
	go probe()
}

// serialEpoch is the accepted shape: pools in sorted order, one at a
// time; parallelism lives below, inside the tuning trials.
func serialEpoch(pools []*pool, detect func(*pool)) {
	for _, p := range pools {
		detect(p)
	}
}

var _ = serialEpoch
