// Fixture: memoization-cache patterns in a sim-facing package. The
// characterization cache (internal/sim/simcache.go) must stay free of
// ambient state; this fixture pins what the analyzer rejects — wall
// clock TTLs and random eviction — and shows the clean single-flight
// shape it accepts.
package sim

import (
	"math/rand"
	"sync"
	"time"
)

type entry struct {
	once  sync.Once
	value float64
	added time.Time
}

type memoCache struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// badGetTTL expires entries on the wall clock: two runs of the same
// seed see different hit patterns depending on machine speed.
func (c *memoCache) badGetTTL(key string, compute func() float64) float64 {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok || time.Since(e.added) > time.Minute {
		e = &entry{added: time.Now()}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.value = compute() })
	return e.value
}

// badEvictRandom picks eviction victims with ambient randomness, so
// the surviving entries — and every downstream hit/miss — differ per
// run.
func (c *memoCache) badEvictRandom() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.entries {
		if rand.Intn(2) == 0 {
			delete(c.entries, k)
			return
		}
	}
}

// goodGet is the clean content-addressed single-flight shape: keyed
// purely on inputs, first requester computes inside the entry's once,
// latecomers block on it. Nothing ambient — no findings.
func (c *memoCache) goodGet(key string, compute func() float64) float64 {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &entry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.value = compute() })
	return e.value
}

var (
	_ = (*memoCache).badGetTTL
	_ = (*memoCache).badEvictRandom
	_ = (*memoCache).goodGet
)
