// Fixture: circuit-breaker timers in the control loop. Breaker holds
// and watchdog budgets must be counted in epochs / virtual seconds so
// a seeded soak replays byte-for-byte; reading the wall clock for
// them is the finding. The injected telemetry clock stays fine for
// observability timestamps — it is frozen in deterministic runs.
package controller

import (
	"time"

	"softsku/internal/telemetry"
)

type breaker struct {
	openedAt  time.Time
	holdUntil int // epoch index
}

// badHoldExpiry re-closes the breaker on the wall clock: how many
// epochs a pool stays fenced depends on machine speed, so two runs of
// the same seed diverge.
func (b *breaker) badHoldExpiry() bool {
	return time.Since(b.openedAt) > 2*time.Minute
}

// badOpen stamps the hold with ambient time — same defect at the
// other end of the timer.
func (b *breaker) badOpen() {
	b.openedAt = time.Now()
}

// goodHoldExpiry counts the hold in control epochs: pure state, no
// clock, identical at any -parallel and on any machine.
func (b *breaker) goodHoldExpiry(epoch int) bool {
	return epoch >= b.holdUntil
}

// goodEventStamp is the accepted clock read: ledger events carry the
// injected telemetry clock, which deterministic runs freeze.
func goodEventStamp() time.Time {
	return telemetry.Now()
}

var (
	_ = (*breaker).badHoldExpiry
	_ = (*breaker).badOpen
	_ = (*breaker).goodHoldExpiry
	_ = goodEventStamp
)
