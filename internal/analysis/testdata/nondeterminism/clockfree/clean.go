// Fixture: the same calls are fine outside the sim-facing package
// set — observability and CLI code may read the wall clock.
package clockfree

import "time"

func wallClockAllowedHere() time.Time {
	time.Sleep(0)
	return time.Now()
}

var _ = wallClockAllowedHere
