// Fixture: wall-clock and ambient-randomness hits inside a package
// named like a sim-facing one.
package sim

import (
	"math/rand"
	"time"
)

func badTiming() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}

func badRand() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10) + rand.Intn(10)
}

// okDuration only touches pure time types: allowed.
func okDuration(d time.Duration) float64 {
	return d.Seconds()
}

func suppressed() time.Time {
	//lint:ignore nondeterminism fixture exercising suppression
	return time.Now()
}

var _ = badTiming
var _ = badRand
var _ = okDuration
var _ = suppressed
