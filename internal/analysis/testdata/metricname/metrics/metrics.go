// Fixture: metric-name constancy and namespace checks.
package metrics

import (
	"fmt"

	"softsku/internal/telemetry"
)

const good = "softsku_fixture_good_total"

var reg = telemetry.NewRegistry()

func register(service string, n int) {
	reg.Counter(good, "constant name").Inc()
	reg.Counter("softsku_fixture_"+"concat_total", "constant concat").Inc()
	reg.Counter(telemetry.Labels(good, "svc", service), "variability in labels").Inc()
	reg.Counter(fmt.Sprintf("softsku_%s_total", service), "runtime name").Inc()
	reg.Gauge("mips_"+service, "runtime name").Set(1)
	reg.Histogram("SoftSKU_BadCase", "bad pattern").Observe(1)
	reg.Counter(telemetry.Labels("qps.total", "svc", service), "bad pattern via Labels").Inc()
	//lint:ignore metricname fixture exercising suppression
	reg.Counter(fmt.Sprintf("softsku_%d", n), "suppressed").Inc()
}

var _ = register
