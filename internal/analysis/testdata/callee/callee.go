// Fixture: Pass.Callee resolution corners — aliased imports,
// parenthesized callees, and indirect calls through function values
// (which must resolve to nil, not a wrong function).
package callee

import al "strings"

func local(s string) string { return s }

func use() string {
	a := al.ToUpper("x")   // aliased selector
	b := (al.ToLower)("y") // parenthesized aliased selector
	c := (local)("z")      // parenthesized plain ident
	f := al.TrimSpace      // function value: calls through f are indirect
	d := f(" w ")
	return a + b + c + d
}
