// Fixture: the stale-suppression audit. A directive must absorb at
// least one diagnostic per run; one that absorbs nothing is directive
// rot and becomes a finding itself. Directives naming analyzers that
// did not run are exempt — they never had the chance to fire.
package stale

type Knob struct{}

func (Knob) Apply(v string) error { return nil }

func demo() {
	var k Knob

	//lint:ignore knoberr fixture: live — absorbs the discarded error below
	k.Apply("accepted")

	//lint:ignore knoberr fixture: stale — the call below handles its error
	if err := k.Apply("handled"); err != nil {
		panic(err)
	}

	//lint:ignore nondeterminism fixture: exempt — nondeterminism is not in this run
	k.Apply("other-analyzer")
}
