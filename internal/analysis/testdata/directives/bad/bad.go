// Fixture: malformed suppression directives are findings themselves.
package bad

//lint:ignore nondeterminism
func missingReason() {}

//lint:ignore nosuchanalyzer because reasons
func unknownAnalyzer() {}

var (
	_ = missingReason
	_ = unknownAnalyzer
)
