// Fixture: a helper package whose functions hide nondeterminism one
// or two hops away from the sim-facing caller — the class of leak the
// per-package analyzers cannot see and detflow must.
package helper

import (
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"
)

// stamp reads the wall clock directly.
func stamp() time.Time { return time.Now() }

// Wrap adds a hop so the offending path crosses three frames.
func Wrap() time.Time { return stamp() }

// Clock satisfies sim.Ticker; Tick draws from the global stream, so
// interface dispatch must carry the taint back to the caller.
type Clock struct{}

func (Clock) Tick() int { return rand.Intn(10) }

// Keys leaks map iteration order: append without a later sort.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys is the collect-then-sort idiom and must stay clean.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Env consults ambient process state.
func Env() string { return os.Getenv("SOFTSKU_MODE") }

// Cores reads the host shape.
func Cores() int { return runtime.NumCPU() }

var seq uint64

// Seq returns a scheduler-ordered atomic counter value.
func Seq() uint64 { return atomic.AddUint64(&seq, 1) }

// Pick returns whichever channel is ready first — the runtime picks
// among ready clauses at random.
func Pick(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Tally folds a map into a sum: commutative, so order cannot escape;
// must stay clean.
func Tally(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
