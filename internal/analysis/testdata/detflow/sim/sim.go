// Fixture: a sim-facing package whose exports reach nondeterminism
// sources only transitively, through the helper package — every
// diagnostic must show the complete cross-package call path.
package sim

import (
	"time"

	"softsku/internal/analysis/testdata/detflow/helper"
)

// Step reaches the wall clock three frames deep:
// sim.Step → helper.Wrap → helper.stamp → time.Now.
func Step() time.Time { return helper.Wrap() }

// Ticker is dispatched by interface; CHA must resolve helper.Clock.
type Ticker interface{ Tick() int }

// Drive reaches global math/rand through interface dispatch.
func Drive(t Ticker) int { return t.Tick() }

// Order leaks map iteration order via the helper.
func Order(m map[string]int) []string { return helper.Keys(m) }

// Sorted uses the deterministic helper and must stay clean.
func Sorted(m map[string]int) []string { return helper.SortedKeys(m) }

// Sum folds through the commutative helper and must stay clean.
func Sum(m map[string]int) int { return helper.Tally(m) }

// Mode consults the ambient environment two frames up.
func Mode() string { return helper.Env() }

// Width reaches host-shape introspection.
func Width() int { return helper.Cores() }

// Next returns a scheduler-ordered counter.
func Next() uint64 { return helper.Seq() }

// Race reaches a multi-clause select.
func Race(a, b chan int) int { return helper.Pick(a, b) }

// Wall is a deliberate, reasoned acceptance: the introducing edge is
// pruned, so no path through helper.Wrap is reported here.
func Wall() time.Time {
	//lint:ignore detflow fixture: observability-only timestamp, proven result-invariant
	return helper.Wrap()
}

// hidden is tainted but unexported — not a contract entry point, so
// it must not be reported on its own.
func hidden() string { return helper.Env() }

var _ = hidden
