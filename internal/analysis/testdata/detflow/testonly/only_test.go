// Fixture: a directory whose only Go file is a _test.go. It loads as
// a per-directory analysis unit but must never enter the module call
// graph — test scaffolding is not part of what ships.
package testonly

import "time"

// TestishHelper would taint any caller, but nothing production can
// import a test-only package, so the module view must exclude it.
func TestishHelper() time.Time { return time.Now() }
