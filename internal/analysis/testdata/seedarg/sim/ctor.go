// Fixture: caller-controlled randomness in exported constructors.
package sim

import "softsku/internal/rng"

type Thing struct{ src *rng.Source }

// NewFromSource is the preferred form: the caller hands the stream in.
func NewFromSource(src *rng.Source) *Thing { return &Thing{src: src} }

// NewFromSeed derives its stream from an explicit seed parameter.
func NewFromSeed(seed uint64) *Thing { return &Thing{src: rng.New(seed ^ 0xfab)} }

// Fabricated is a constructor by return type and mints a stream no
// caller controls.
func Fabricated() *Thing { return &Thing{src: rng.New(42)} }

// NewIgnoringSeed takes a seed but derives nothing from it.
func NewIgnoringSeed(seed uint64) *Thing {
	_ = seed
	return &Thing{src: rng.New(7)}
}

// NewSuppressed documents a genuinely intentional constant stream.
func NewSuppressed() *Thing {
	//lint:ignore seedarg fixture exercising suppression
	return &Thing{src: rng.New(1)}
}

// helper is unexported; private fixed streams are the author's
// business (and typically zero-value hardening).
func helper() *Thing { return &Thing{src: rng.New(3)} }

var _ = helper
