package analysis

import (
	"testing"

	"softsku/internal/analysis/callgraph"
)

// BenchmarkLintModule prices the full gate as check.sh pays it: a
// cold loader, the whole-module type-check (shared import universe
// plus per-directory units), and every analyzer including the detflow
// call-graph taint run. The dominant cost is go/importer's source
// type-checking of the stdlib, which the shared loader amortizes
// across packages but not across iterations — that cold-start is the
// number CI actually experiences.
func BenchmarkLintModule(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		l, err := NewLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		mod, err := l.LoadModule("./...")
		if err != nil {
			b.Fatal(err)
		}
		units, err := l.Load("./...")
		if err != nil {
			b.Fatal(err)
		}
		res := RunAll(mod, units, All())
		if len(res.Findings) != 0 {
			b.Fatalf("module not self-clean: %v", res.Findings)
		}
	}
}

// BenchmarkLintCallgraph isolates the interprocedural machinery from
// the type-check: CHA-resolved call-graph construction plus the
// detflow fixed-point taint propagation over the already-loaded
// module. This is the part PR-sized code growth scales, so it gets
// its own row in BENCH_lint.json.
func BenchmarkLintCallgraph(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		b.Fatal(err)
	}
	mod, err := l.LoadModule("./...")
	if err != nil {
		b.Fatal(err)
	}
	pkgs := make([]*callgraph.Package, 0, len(mod.Pkgs))
	for _, p := range mod.Pkgs {
		pkgs = append(pkgs, &callgraph.Package{
			Path: p.Path, Name: p.Name, Files: p.Files, Pkg: p.Pkg, Info: p.Info,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := callgraph.Build(mod.Fset, pkgs)
		tainted := propagate(g, func(*callgraph.Edge) bool { return false }, liveIntrinsicsOf(g))
		if len(g.Nodes) == 0 || len(tainted) == 0 {
			b.Fatal("degenerate graph")
		}
	}
}

// liveIntrinsicsOf treats every intrinsic as live — the worst case
// for propagation, and what an undirected module looks like.
func liveIntrinsicsOf(g *callgraph.Graph) map[*callgraph.Node][]callgraph.Source {
	live := make(map[*callgraph.Node][]callgraph.Source)
	for _, n := range g.SortedNodes() {
		if len(n.Intrinsics) > 0 {
			live[n] = n.Intrinsics
		}
	}
	return live
}
