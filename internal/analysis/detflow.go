package analysis

import (
	"sort"
	"strings"

	"softsku/internal/analysis/callgraph"
)

// Detflow is the interprocedural half of the determinism contract.
// The per-package nondeterminism analyzer catches a sim-facing
// function that calls time.Now directly; detflow catches the one that
// reaches it three helpers deep in stats, ods, or telemetry — hidden
// client-side variability of exactly the kind that corrupts repeated
// measurements and, with them, every A/B confidence interval built on
// top (SoftSKU §4). It builds the module call graph (static calls,
// concrete method calls, interface dispatch via CHA), computes
// transitive reachability from every exported function or method of
// the sim-facing packages to a catalog of nondeterminism sources
// (wall clock, global math/rand, ambient env, host shape, escaping
// map-iteration order, multi-clause selects, returned atomic
// counters), and reports the full offending call path so the finding
// is actionable at the edge that introduced it.
//
// Suppression is per call edge: `//lint:ignore detflow <reason>` on
// (or above) a call site removes that edge from the propagation, so
// one reasoned directive at the introducing call accepts every path
// through it. A directive whose edge carries no taint is reported by
// the stale-suppression audit like any other dead directive.
var Detflow = &Analyzer{
	Name:      "detflow",
	Doc:       "sim-facing exports must not transitively reach nondeterminism sources (module-wide call-graph taint)",
	RunModule: runDetflow,
}

// runDetflow executes the build → prune → propagate → report
// pipeline. Every traversal walks nodes and edges in deterministic
// (sorted-key, source) order: the linter is held to the same
// one-input-one-output contract it enforces.
func runDetflow(mp *ModulePass) {
	pkgs := make([]*callgraph.Package, 0, len(mp.Mod.Pkgs))
	for _, p := range mp.Mod.Pkgs {
		pkgs = append(pkgs, &callgraph.Package{
			Path: p.Path, Name: p.Name, Files: p.Files, Pkg: p.Pkg, Info: p.Info,
		})
	}
	g := callgraph.Build(mp.Mod.Fset, pkgs)

	suppressedEdge := func(e *callgraph.Edge) bool {
		return mp.SuppressedAt(e.Pos.Filename, e.Pos.Line)
	}
	// Intrinsic sources governed by a directive are accepted outright:
	// the directive demonstrably silenced a real source, so it is
	// credited immediately (unlike edges, whose credit waits until the
	// callee side proves tainted).
	liveIntrinsics := make(map[*callgraph.Node][]callgraph.Source)
	for _, n := range g.SortedNodes() {
		for _, src := range n.Intrinsics {
			if mp.SuppressedAt(src.Pos.Filename, src.Pos.Line) {
				mp.UseSuppression(src.Pos.Filename, src.Pos.Line)
				continue
			}
			liveIntrinsics[n] = append(liveIntrinsics[n], src)
		}
	}

	tainted := propagate(g, suppressedEdge, liveIntrinsics)

	// Credit edge suppressions that actually block taint; the rest
	// stay uncredited and fall to the stale audit.
	for _, n := range g.SortedNodes() {
		for _, e := range n.Out {
			if suppressedEdge(e) && tainted[e.To] {
				mp.UseSuppression(e.Pos.Filename, e.Pos.Line)
			}
		}
	}

	for _, root := range g.SortedNodes() {
		if !isDetflowRoot(root) || !tainted[root] {
			continue
		}
		reportPaths(mp, root, suppressedEdge, liveIntrinsics, tainted)
	}
}

// isDetflowRoot reports whether n is an entry point of the
// determinism contract: an exported function/method (or the package
// initializer) of a sim-facing package.
func isDetflowRoot(n *callgraph.Node) bool {
	return n.Source == nil && n.Exported && SimFacing(n.PkgName)
}

// propagate computes the tainted node set: reachable-to-source over
// live (unsuppressed) edges, plus nodes carrying live intrinsics,
// plus catalogued source leaves. Fixed-point iteration over sorted
// nodes keeps the result order-independent of map layout.
func propagate(g *callgraph.Graph, suppressedEdge func(*callgraph.Edge) bool, liveIntrinsics map[*callgraph.Node][]callgraph.Source) map[*callgraph.Node]bool {
	tainted := make(map[*callgraph.Node]bool)
	nodes := g.SortedNodes()
	for _, n := range nodes {
		if n.Source != nil || len(liveIntrinsics[n]) > 0 {
			tainted[n] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if tainted[n] {
				continue
			}
			for _, e := range n.Out {
				if suppressedEdge(e) {
					continue
				}
				if tainted[e.To] {
					tainted[n] = true
					changed = true
					break
				}
			}
		}
	}
	return tainted
}

// pathStep is one hop of a rendered offending path.
type pathStep struct {
	edge *callgraph.Edge
}

// reportPaths emits one diagnostic per distinct terminal source the
// root reaches, each carrying the shortest offending call path
// (BFS over live edges restricted to tainted nodes; ties broken by
// edge order, which follows source order).
func reportPaths(mp *ModulePass, root *callgraph.Node, suppressedEdge func(*callgraph.Edge) bool, liveIntrinsics map[*callgraph.Node][]callgraph.Source, tainted map[*callgraph.Node]bool) {
	type queued struct {
		node *callgraph.Node
		path []pathStep
	}
	visited := map[*callgraph.Node]bool{root: true}
	queue := []queued{{node: root}}
	type finding struct {
		terminalKey string
		path        []string
		src         callgraph.Source
		steps       []pathStep
	}
	var findings []finding
	seenTerminal := make(map[string]bool)

	record := func(q queued, src callgraph.Source, terminalKey string, terminalLabel string) {
		if seenTerminal[terminalKey] {
			return
		}
		seenTerminal[terminalKey] = true
		labels := []string{root.Label}
		for _, st := range q.path {
			labels = append(labels, st.edge.To.Label)
		}
		if terminalLabel != "" && (len(labels) == 1 || labels[len(labels)-1] != terminalLabel) {
			labels = append(labels, terminalLabel)
		}
		findings = append(findings, finding{terminalKey: terminalKey, path: labels, src: src, steps: q.path})
	}

	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		// Intrinsic sources terminate a path at the node itself.
		for _, src := range liveIntrinsics[q.node] {
			record(q, src, q.node.Key+"/"+src.Label, src.Label)
		}
		if q.node.Source != nil {
			record(q, *q.node.Source, q.node.Key, "")
			continue
		}
		for _, e := range q.node.Out {
			if suppressedEdge(e) || visited[e.To] || (!tainted[e.To] && e.To.Source == nil) {
				continue
			}
			visited[e.To] = true
			next := make([]pathStep, len(q.path), len(q.path)+1)
			copy(next, q.path)
			queue = append(queue, queued{node: e.To, path: append(next, pathStep{edge: e})})
		}
	}

	sort.Slice(findings, func(i, j int) bool { return findings[i].terminalKey < findings[j].terminalKey })
	for _, f := range findings {
		pos := root.Pos
		if len(f.steps) > 0 {
			pos = f.steps[0].edge.Pos
		} else if f.src.Pos.Filename != "" {
			pos = f.src.Pos
		}
		mp.Reportf(pos, f.path,
			"sim-facing export %s transitively reaches %s (%s): %s — make the path deterministic (virtual time, caller-seeded rng, sorted iteration) or accept the introducing call edge with //lint:ignore detflow <reason>",
			root.Label, f.src.Label, f.src.Detail, strings.Join(f.path, " → "))
	}
}

// DetflowDOT writes the module call graph as DOT with taint and
// suppression annotations — `softskulint -graph`'s debugging view.
// units supply the //lint:ignore directives governing edge pruning.
func DetflowDOT(mod *Module, units []*Unit, w interface{ Write([]byte) (int, error) }) {
	ign := newIgnoreTable()
	for _, u := range units {
		ign.addUnit(u)
	}
	pkgs := make([]*callgraph.Package, 0, len(mod.Pkgs))
	for _, p := range mod.Pkgs {
		pkgs = append(pkgs, &callgraph.Package{
			Path: p.Path, Name: p.Name, Files: p.Files, Pkg: p.Pkg, Info: p.Info,
		})
	}
	g := callgraph.Build(mod.Fset, pkgs)
	suppressedEdge := func(e *callgraph.Edge) bool {
		return ign.covers(Detflow.Name, e.Pos.Filename, e.Pos.Line)
	}
	liveIntrinsics := make(map[*callgraph.Node][]callgraph.Source)
	for _, n := range g.SortedNodes() {
		for _, src := range n.Intrinsics {
			if !ign.covers(Detflow.Name, src.Pos.Filename, src.Pos.Line) {
				liveIntrinsics[n] = append(liveIntrinsics[n], src)
			}
		}
	}
	tainted := propagate(g, suppressedEdge, liveIntrinsics)
	taintKeys := make(map[string]bool, len(tainted))
	for n, t := range tainted {
		if t {
			taintKeys[n.Key] = true
		}
	}
	g.DOT(w, taintKeys, suppressedEdge)
}
