package analysis

import (
	"go/ast"
	"go/types"
)

// Nondeterminism guards the repo's core reproducibility contract: one
// seed ⇒ one byte-identical run (DESIGN.md §8). Inside the sim-facing
// packages, wall-clock reads and ambient randomness silently decouple
// a run from its seed — the A/B verdicts would stop being replayable
// and chaos schedules stop being reproducible — so `time` calls that
// consult the machine clock and every use of math/rand are findings.
// Authors are pointed at virtual time (sim.Engine.Now), the injected
// telemetry wall clock (telemetry.Now) for observability-only
// timing, and softsku/internal/rng (rng.Split for private streams).
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "forbid wall-clock and ambient randomness in sim-facing packages",
	Run:  runNondeterminism,
}

// wallClock lists the time-package functions that consult the machine
// clock. Pure types and constructors (time.Duration, time.Unix) are
// deterministic and stay allowed.
var wallClock = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

func runNondeterminism(p *Pass) {
	if !SimFacing(p.PkgName()) {
		return
	}
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info().Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if wallClock[sel.Sel.Name] {
					p.Reportf(sel.Pos(),
						"time.%s reads the wall clock and breaks seeded determinism; use virtual time (sim.Engine.Now) or the injected telemetry clock (telemetry.Now)",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				p.Reportf(sel.Pos(),
					"math/rand breaks the one-seed-one-run contract; use softsku/internal/rng (rng.New(seed), rng.Split for private sub-streams)")
			}
			return true
		})
	}
}
