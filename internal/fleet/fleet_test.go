package fleet

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"softsku/internal/chaos"
	"softsku/internal/knob"
	"softsku/internal/platform"
	"softsku/internal/sim"
	"softsku/internal/workload"
)

func webPool(t *testing.T, n int) (*Fleet, knob.Config) {
	t.Helper()
	f := New()
	sku := platform.Skylake18()
	web, _ := workload.ByName("Web")
	cfg := sim.ProductionConfig(sku, web)
	if err := f.AddPool(web, sku, n, cfg); err != nil {
		t.Fatal(err)
	}
	return f, cfg
}

func TestAddPoolAndLookup(t *testing.T) {
	f, cfg := webPool(t, 10)
	p, err := f.Pool("Web")
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 10 || p.Config() != cfg {
		t.Fatalf("pool state: size=%d", p.Size())
	}
	if _, err := f.Pool("Feed1"); err == nil {
		t.Fatal("missing pool must error")
	}
	if err := f.AddPool(p.Service, p.SKU, 5, cfg); err == nil {
		t.Fatal("duplicate pool must error")
	}
	if names := f.Services(); len(names) != 1 || names[0] != "Web" {
		t.Fatalf("services = %v", names)
	}
}

func TestAddPoolValidation(t *testing.T) {
	f := New()
	sku := platform.Skylake18()
	web, _ := workload.ByName("Web")
	if err := f.AddPool(web, sku, 0, sim.ProductionConfig(sku, web)); err == nil {
		t.Fatal("zero-size pool must error")
	}
	bad := sim.ProductionConfig(sku, web)
	bad.CoreFreqMHz = 99999
	if err := f.AddPool(web, sku, 1, bad); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestRolloutLiveReconfig(t *testing.T) {
	// MSR-only changes (THP, CDP, prefetchers, frequency) roll out in a
	// single pass with no reboots.
	f, cfg := webPool(t, 50)
	soft := cfg.With(knob.THP, knob.THPSetting(knob.THPAlways))
	r, err := f.Rollout("Web", soft, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rebooted != 0 || r.Waves != 1 || r.Servers != 50 {
		t.Fatalf("live rollout: %+v", r)
	}
	p, _ := f.Pool("Web")
	if p.Config().THP != knob.THPAlways || p.Reboots() != 0 {
		t.Fatal("pool config not applied")
	}
}

func TestRolloutRebootWaves(t *testing.T) {
	// SHP changes need reboots; availability bounds the wave size.
	f, cfg := webPool(t, 53)
	soft := cfg.With(knob.SHP, knob.IntSetting("300", 300))
	r, err := f.Rollout("Web", soft, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rebooted != 53 {
		t.Fatalf("rebooted = %d, want 53", r.Rebooted)
	}
	if r.Waves != 6 { // ceil(53/10)
		t.Fatalf("waves = %d, want 6", r.Waves)
	}
	for i, w := range r.WaveRebooted {
		if i < 5 && w != 10 {
			t.Fatalf("wave %d rebooted %d, want 10", i, w)
		}
	}
	if r.WaveRebooted[5] != 3 {
		t.Fatalf("last wave rebooted %d, want 3", r.WaveRebooted[5])
	}
	p, _ := f.Pool("Web")
	if p.Reboots() != 53 {
		t.Fatalf("pool reboots = %d", p.Reboots())
	}
}

func TestRolloutInvalidConfig(t *testing.T) {
	f, cfg := webPool(t, 5)
	bad := cfg
	bad.Cores = 999
	if _, err := f.Rollout("Web", bad, 2); err == nil {
		t.Fatal("invalid rollout config must error")
	}
}

func TestRolloutEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		pool       int
		maxUnavail int
		wantErr    bool
	}{
		{"zero maxUnavailable", 5, 0, true},
		{"negative maxUnavailable", 5, -3, true},
		{"wave larger than pool", 4, 100, false},
		{"single-server pool", 1, 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, cfg := webPool(t, tc.pool)
			soft := cfg.With(knob.SHP, knob.IntSetting("300", 300))
			r, err := f.Rollout("Web", soft, tc.maxUnavail)
			p, _ := f.Pool("Web")
			if tc.wantErr {
				if err == nil {
					t.Fatal("rollout must reject the availability bound")
				}
				if p.Config() != cfg || p.Reboots() != 0 {
					t.Fatal("rejected rollout must not touch the pool")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if r.Waves != 1 || r.Rebooted != tc.pool {
				t.Fatalf("rollout = %+v, want one wave covering all %d servers", r, tc.pool)
			}
			if p.Config() != soft {
				t.Fatal("pool config not applied")
			}
		})
	}
}

func TestRolloutEmptyPool(t *testing.T) {
	f, cfg := webPool(t, 1)
	p, _ := f.Pool("Web")
	p.servers = nil // a fully drained pool
	if _, err := f.Rollout("Web", cfg, 2); err == nil {
		t.Fatal("empty pool must be an explicit error")
	}
}

// crashTargets crashes exactly the named servers, leaving every other
// fault class disabled.
type crashTargets struct {
	chaos.Injector
	targets map[string]bool
}

func (c crashTargets) CrashServer(target string) bool { return c.targets[target] }

func TestRolloutMidWaveCrashRollsBack(t *testing.T) {
	// Acceptance: a mid-wave failure aborts the remaining waves and
	// rolls back, leaving every server on the original configuration.
	f, cfg := webPool(t, 10)
	f.SetChaos(crashTargets{chaos.Disabled, map[string]bool{"Web/5": true}})
	soft := cfg.With(knob.SHP, knob.IntSetting("300", 300))
	r, err := f.Rollout("Web", soft, 3) // waves: [0-2] [3-5] [6-8] [9]
	if err == nil {
		t.Fatal("crashed wave must surface an error")
	}
	if !r.Aborted || r.FailedWave != 2 || !r.RolledBack {
		t.Fatalf("self-healing record wrong: %+v", r)
	}
	if r.Waves != 2 {
		t.Fatalf("later waves must never run, got %d", r.Waves)
	}
	p, _ := f.Pool("Web")
	if p.Config() != cfg {
		t.Fatal("pool must stay on the original configuration")
	}
	for i, srv := range p.servers {
		if srv.Config() != cfg {
			t.Fatalf("server %d left on %v after rollback", i, srv.Config())
		}
	}
	// Wave 1 (3 servers) and wave 2's survivors (2) rebooted forward,
	// then back; the crashed server and waves 3-4 were never touched.
	if r.Rebooted != 5 {
		t.Fatalf("forward reboots = %d, want 5", r.Rebooted)
	}
	if p.Reboots() != 10 {
		t.Fatalf("total reboots = %d, want 10 (5 forward + 5 rollback)", p.Reboots())
	}
}

func TestRolloutSlowWaves(t *testing.T) {
	f, cfg := webPool(t, 10)
	f.SetChaos(chaos.New(5, chaos.Config{SlowWavePct: 1, SlowWaveSec: 30}))
	soft := cfg.With(knob.SHP, knob.IntSetting("300", 300))
	r, err := f.Rollout("Web", soft, 5) // 2 waves, both slow
	if err != nil {
		t.Fatal(err)
	}
	if r.SlowSec != 60 {
		t.Fatalf("slow waves absorbed %g s, want 60", r.SlowSec)
	}
}

func TestRolloutChaosDeterministic(t *testing.T) {
	run := func(seed uint64) (string, string, bool) {
		f, cfg := webPool(t, 40)
		eng := chaos.New(seed, chaos.DefaultConfig())
		f.SetChaos(eng)
		soft := cfg.With(knob.SHP, knob.IntSetting("300", 300))
		r, err := f.Rollout("Web", soft, 5)
		return fmt.Sprintf("%+v", r), eng.Fingerprint(), err == nil
	}
	r1, f1, ok1 := run(9)
	r2, f2, ok2 := run(9)
	if r1 != r2 || f1 != f2 || ok1 != ok2 {
		t.Fatalf("same seed must reproduce the rollout exactly:\n%s (%s)\n%s (%s)", r1, f1, r2, f2)
	}
}

func TestRedeployFungibility(t *testing.T) {
	// The §3 story: same SKU, different service — servers move between
	// pools through reconfiguration.
	f := New()
	sku := platform.Skylake18()
	web, _ := workload.ByName("Web")
	cache2, _ := workload.ByName("Cache2")
	webCfg := sim.ProductionConfig(sku, web)      // SHP 200
	cacheCfg := sim.ProductionConfig(sku, cache2) // SHP 0
	if err := f.AddPool(web, sku, 20, webCfg); err != nil {
		t.Fatal(err)
	}
	if err := f.AddPool(cache2, sku, 10, cacheCfg); err != nil {
		t.Fatal(err)
	}
	r, err := f.Redeploy("Web", "Cache2", 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Servers != 5 {
		t.Fatalf("moved %d", r.Servers)
	}
	// Web's SHP reservation differs from Cache2's, so moving requires
	// reboots.
	if r.Rebooted != 5 {
		t.Fatalf("rebooted = %d, want 5", r.Rebooted)
	}
	webP, _ := f.Pool("Web")
	cacheP, _ := f.Pool("Cache2")
	if webP.Size() != 15 || cacheP.Size() != 15 {
		t.Fatalf("sizes after redeploy: %d / %d", webP.Size(), cacheP.Size())
	}
}

func TestRedeployRejectsCrossSKU(t *testing.T) {
	f := New()
	web, _ := workload.ByName("Web")
	ads2, _ := workload.ByName("Ads2")
	skl18, skl20 := platform.Skylake18(), platform.Skylake20()
	_ = f.AddPool(web, skl18, 10, sim.ProductionConfig(skl18, web))
	_ = f.AddPool(ads2, skl20, 10, sim.ProductionConfig(skl20, ads2))
	if _, err := f.Redeploy("Web", "Ads2", 2); err == nil {
		t.Fatal("cross-SKU redeploy must be rejected")
	}
}

func TestRedeployBounds(t *testing.T) {
	f, _ := webPool(t, 5)
	web, _ := workload.ByName("Web")
	sku := platform.Skylake18()
	cache2, _ := workload.ByName("Cache2")
	_ = f.AddPool(cache2, sku, 2, sim.ProductionConfig(sku, cache2))
	_ = web
	if _, err := f.Redeploy("Web", "Cache2", 5); err == nil {
		t.Fatal("cannot empty a pool")
	}
	if _, err := f.Redeploy("Web", "Cache2", 0); err == nil {
		t.Fatal("zero-server move must error")
	}
}

func TestPoolThroughputScalesWithSize(t *testing.T) {
	fA, _ := webPool(t, 2)
	fB, _ := webPool(t, 4)
	a, err := fA.PoolThroughput("Web", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fB.PoolThroughput("Web", 1)
	if err != nil {
		t.Fatal(err)
	}
	if b != 2*a {
		t.Fatalf("aggregate throughput must scale: %g vs %g", a, b)
	}
}

func TestCapacitySavings(t *testing.T) {
	// §6.2: single-digit speedups at hundreds of thousands of servers.
	if got := CapacitySavings(100000, 4.5); got < 4000 || got > 4500 {
		t.Fatalf("savings at +4.5%% on 100k servers = %d", got)
	}
	if got := CapacitySavings(100, 0); got != 0 {
		t.Fatalf("no gain, no savings: %d", got)
	}
	if got := CapacitySavings(0, 10); got != 0 {
		t.Fatalf("empty pool: %d", got)
	}
}

func TestCapacitySavingsProperty(t *testing.T) {
	f := func(n uint16, gain uint8) bool {
		servers := int(n%50000) + 1
		g := float64(gain%20) + 0.1
		saved := CapacitySavings(servers, g)
		if saved < 0 || saved >= servers {
			return false
		}
		// The remaining servers at +g% must still cover the old load.
		remaining := float64(servers-saved) * (1 + g/100)
		return remaining >= float64(servers)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// stuckAlways wedges every reboot it is asked about.
type stuckAlways struct{ chaos.Injector }

func (stuckAlways) StuckReboot(string) bool { return true }

// stuckCount wedges each target's first n reboot attempts and records
// how often it was consulted.
type stuckCount struct {
	chaos.Injector
	n     int
	tries map[string]int
}

func (s stuckCount) StuckReboot(target string) bool {
	s.tries[target]++
	return s.tries[target] <= s.n
}

func TestWatchdogAbandonsStuckReboots(t *testing.T) {
	f, cfg := webPool(t, 3)
	f.SetChaos(stuckAlways{chaos.Disabled})
	f.SetWatchdog(30)
	soft := cfg.With(knob.SHP, knob.IntSetting("300", 300))
	r, err := f.Rollout("Web", soft, 3)
	if err == nil {
		t.Fatal("fully wedged rollout must abort")
	}
	if !r.Aborted || !r.RolledBack {
		t.Fatalf("rollout: %+v", r)
	}
	if !reflect.DeepEqual(r.Abandoned, []int{0, 1, 2}) {
		t.Fatalf("abandoned = %v", r.Abandoned)
	}
	// Each server waited 5+10 = 15 virtual seconds before the next
	// doubling would have blown the 30s budget.
	if r.SlowSec != 45 {
		t.Fatalf("slow = %g, want 45", r.SlowSec)
	}
	p, _ := f.Pool("Web")
	if p.OffConfig() != 0 {
		t.Fatal("abandoned rollout left the pool mixed")
	}
}

func TestWatchdogRidesOutTransientStuckReboot(t *testing.T) {
	f, cfg := webPool(t, 3)
	f.SetChaos(stuckCount{chaos.Disabled, 1, map[string]int{}})
	f.SetWatchdog(30)
	soft := cfg.With(knob.SHP, knob.IntSetting("300", 300))
	r, err := f.Rollout("Web", soft, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rebooted != 3 || len(r.Abandoned) != 0 {
		t.Fatalf("rollout: %+v", r)
	}
	if r.SlowSec != 15 { // one 5s backoff per server
		t.Fatalf("slow = %g, want 15", r.SlowSec)
	}
}

func TestWatchdogDisabledDrawsNothing(t *testing.T) {
	// With no watchdog armed, a reboot rollout must not consult the
	// stuck-reboot stream at all — the legacy draw sequence is part of
	// the determinism contract.
	f, cfg := webPool(t, 3)
	counter := stuckCount{chaos.Disabled, 0, map[string]int{}}
	f.SetChaos(counter)
	soft := cfg.With(knob.SHP, knob.IntSetting("300", 300))
	if _, err := f.Rollout("Web", soft, 3); err != nil {
		t.Fatal(err)
	}
	if len(counter.tries) != 0 {
		t.Fatalf("watchdog-off rollout drew from the reboot stream: %v", counter.tries)
	}
}

func TestRolloutCrashAttribution(t *testing.T) {
	f, cfg := webPool(t, 10)
	f.SetChaos(crashTargets{chaos.Disabled, map[string]bool{"Web/3": true, "Web/7": true}})
	soft := cfg.With(knob.THP, knob.THPSetting(knob.THPAlways))
	r, _ := f.Rollout("Web", soft, 10)
	if !reflect.DeepEqual(r.Crashed, []int{3, 7}) {
		t.Fatalf("crashed = %v, want [3 7]", r.Crashed)
	}
}

func TestQuarantineRepairLifecycle(t *testing.T) {
	f, cfg := webPool(t, 5)
	if err := f.Quarantine("Web", 2); err != nil {
		t.Fatal(err)
	}
	p, _ := f.Pool("Web")
	if p.Size() != 4 || !reflect.DeepEqual(p.ServerIDs(), []int{0, 1, 3, 4}) {
		t.Fatalf("rotation after quarantine: %v", p.ServerIDs())
	}
	if q := p.QuarantinedIDs(); !reflect.DeepEqual(q, []int{2}) {
		t.Fatalf("quarantined = %v", q)
	}
	if err := f.Quarantine("Web", 2); err == nil {
		t.Fatal("double quarantine must error")
	}
	// A rollout while one server sits in quarantine only touches the
	// rotation; the quarantined machine keeps its old config.
	soft := cfg.With(knob.THP, knob.THPSetting(knob.THPNever))
	if _, err := f.Rollout("Web", soft, 2); err != nil {
		t.Fatal(err)
	}
	if p.OffConfig() != 0 {
		t.Fatal("in-rotation servers must converge")
	}
	// Repair reconfigures to the pool's *current* config and re-inserts
	// at the id's ascending position.
	if err := f.Repair("Web", 2); err != nil {
		t.Fatal(err)
	}
	if p.Size() != 5 || len(p.QuarantinedIDs()) != 0 {
		t.Fatalf("pool after repair: size=%d quar=%v", p.Size(), p.QuarantinedIDs())
	}
	if !reflect.DeepEqual(p.ServerIDs(), []int{0, 1, 2, 3, 4}) {
		t.Fatalf("ids after repair: %v", p.ServerIDs())
	}
	if p.OffConfig() != 0 {
		t.Fatal("repaired server must come back on the pool config")
	}
	if err := f.Repair("Web", 2); err == nil {
		t.Fatal("double repair must error")
	}
}

func TestQuarantineLastServerRefused(t *testing.T) {
	f, _ := webPool(t, 2)
	if err := f.Quarantine("Web", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Quarantine("Web", 1); err == nil {
		t.Fatal("quarantining the last server must be refused")
	}
	if err := f.Quarantine("Web", 99); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestRolloutRevalidatesMovedServerSKU(t *testing.T) {
	// A Redeploy between same-name pools whose SKU structs disagree on
	// limits can leave a pool mixed-capability; wave-start re-validation
	// must catch a config the stragglers cannot realize.
	f := New()
	web, _ := workload.ByName("Web")
	feed, _ := workload.ByName("Feed1")
	sku := platform.Skylake18()
	narrow := platform.Skylake18()
	narrow.HugePagePoolMiB = 512 // same SKU name, tighter huge-page pool
	if err := f.AddPool(web, sku, 4, sku.StockConfig()); err != nil {
		t.Fatal(err)
	}
	if err := f.AddPool(feed, narrow, 3, narrow.StockConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Redeploy("Feed1", "Web", 2); err != nil {
		t.Fatal(err)
	}
	p, _ := f.Pool("Web")
	if p.Size() != 6 {
		t.Fatalf("size = %d", p.Size())
	}
	// 400 SHPs = 800 MiB: fine on the pool's nominal SKU, over the moved
	// servers' 512 MiB pool.
	soft := sku.StockConfig().With(knob.SHP, knob.IntSetting("400", 400))
	r, err := f.Rollout("Web", soft, 2)
	if err == nil {
		t.Fatal("rollout onto a mixed-capability pool must abort")
	}
	if !r.Aborted || r.FailedWave != 3 {
		t.Fatalf("rollout: %+v", r)
	}
	if p.OffConfig() != 0 {
		t.Fatalf("%d servers left off-config after abort", p.OffConfig())
	}
	if p.Config() != sku.StockConfig() {
		t.Fatal("pool config must be unchanged after abort")
	}
}

func TestRedeployValidatesDestConfig(t *testing.T) {
	// The destination's current config must be realizable on every moved
	// server before either pool is mutated.
	f := New()
	web, _ := workload.ByName("Web")
	feed, _ := workload.ByName("Feed1")
	sku := platform.Skylake18()
	narrow := platform.Skylake18()
	narrow.HugePagePoolMiB = 512
	cfg := sku.StockConfig().With(knob.SHP, knob.IntSetting("400", 400))
	if err := f.AddPool(web, sku, 4, cfg); err != nil {
		t.Fatal(err)
	}
	if err := f.AddPool(feed, narrow, 3, narrow.StockConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Redeploy("Feed1", "Web", 2); err == nil {
		t.Fatal("redeploy into an unrealizable dest config must error")
	}
	src, _ := f.Pool("Feed1")
	dst, _ := f.Pool("Web")
	if src.Size() != 3 || dst.Size() != 4 {
		t.Fatalf("pools mutated by failed redeploy: src=%d dst=%d", src.Size(), dst.Size())
	}
}

func TestRedeployAssignsFreshIDs(t *testing.T) {
	f := New()
	web, _ := workload.ByName("Web")
	feed, _ := workload.ByName("Feed1")
	sku := platform.Skylake18()
	if err := f.AddPool(web, sku, 6, sku.StockConfig()); err != nil {
		t.Fatal(err)
	}
	if err := f.AddPool(feed, sku, 4, sku.StockConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Redeploy("Web", "Feed1", 2); err != nil {
		t.Fatal(err)
	}
	src, _ := f.Pool("Web")
	dst, _ := f.Pool("Feed1")
	if !reflect.DeepEqual(src.ServerIDs(), []int{0, 1, 2, 3}) {
		t.Fatalf("src ids = %v", src.ServerIDs())
	}
	if !reflect.DeepEqual(dst.ServerIDs(), []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("dst ids = %v", dst.ServerIDs())
	}
}
