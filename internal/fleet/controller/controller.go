// Package controller runs µSKU as a continuous, self-healing fleet
// control loop — the paper's @scale story made operational. A one-shot
// tuning run (internal/core) finds a soft SKU for one service on one
// machine; the controller keeps a sharded fleet of pools across mixed
// SKUs converged while load drifts, sensors black out, and hardware
// flakes, epoch after epoch (ROADMAP item 1; AutoTune's continuous
// end-to-end tuning posture).
//
// Each epoch the loop:
//
//  1. samples every pool's request rate into an ODS series (diurnal
//     load × a seeded per-pool drift walk × injected spikes), minus
//     whatever a sensor blackout swallows,
//  2. detects drift per pool by comparing the epoch-window mean
//     against the load level the pool was last tuned at (`ods.Query`
//     over the window),
//  3. re-tunes only the drifted pools with the full µSKU pipeline
//     (simcache makes the repeat characterizations nearly free), and
//  4. rolls the new soft SKU out through the health-checked,
//     watchdogged deployment waves of internal/fleet.
//
// The robustness machinery is the point. Per-pool circuit breakers
// open after consecutive rollout failures and retry through half-open
// probes with deterministic, label-jittered exponential holds. Repeat
// offender servers (crash or watchdog-abandon strikes) are quarantined
// out of rotation and repaired epochs later. A rollback budget freezes
// a flapping pool's configuration outright. And when sensor blackout
// starves drift detection below a sample floor, the pool enters a
// degraded mode that holds the last-known-good configuration instead
// of acting on garbage.
//
// Determinism contract: given the same seed and fleet spec, a soak is
// bit-identical — same decision ledger bytes, same chaos fingerprint —
// at any -parallel count. The epoch loop itself is serial over pools
// in sorted name order; only the trials inside a retune parallelize,
// and those already guarantee order-independent merges. All randomness
// is label-derived (rng.Derive) from the one seed.
package controller

import (
	"fmt"
	"io"
	"math"
	"sort"

	"softsku/internal/abtest"
	"softsku/internal/chaos"
	"softsku/internal/core"
	"softsku/internal/decision"
	"softsku/internal/fleet"
	"softsku/internal/knob"
	"softsku/internal/loadgen"
	"softsku/internal/ods"
	"softsku/internal/platform"
	"softsku/internal/rng"
	"softsku/internal/sim"
	"softsku/internal/telemetry"
	"softsku/internal/workload"
)

// Control-loop telemetry: how much drift the fleet saw and how much
// defensive machinery engaged while absorbing it.
var (
	mEpochs = telemetry.Default.Counter("softsku_controller_epochs_total",
		"Control epochs executed.")
	mDrifts = telemetry.Default.Counter("softsku_controller_drifts_total",
		"Workload drifts detected across pools.")
	mRetunes = telemetry.Default.Counter("softsku_controller_retunes_total",
		"µSKU re-tuning runs triggered by drift.")
	mDegraded = telemetry.Default.Counter("softsku_controller_degraded_epochs_total",
		"Pool-epochs spent in degraded mode holding last-known-good config.")
	mBreakerOpens = telemetry.Default.Counter("softsku_controller_breaker_opens_total",
		"Circuit breakers opened after consecutive rollout failures.")
	mFreezes = telemetry.Default.Counter("softsku_controller_config_freezes_total",
		"Pool configurations frozen after exhausting the rollback budget.")
)

// Config tunes the control loop. DefaultConfig returns the values the
// soak tests and cmd/fleetd use; zero values are not patched — start
// from DefaultConfig and override.
type Config struct {
	Seed uint64

	// EpochSec is the virtual duration of one control epoch. The
	// default is a full diurnal period so the epoch-window mean cancels
	// the diurnal swing and drift detection reacts to real workload
	// change, not time of day.
	EpochSec        float64
	SamplesPerEpoch int // rate samples written per pool per epoch

	// DriftPct triggers a re-tune when the epoch-window mean rate
	// diverges from the level the pool was last tuned at by more than
	// this percentage.
	DriftPct float64
	// DriftRate is the per-pool per-epoch probability of a real
	// workload shift (a step in the hidden drift walk the controller
	// must detect and chase).
	DriftRate float64

	// MinSamples is the degraded-mode floor: with fewer epoch-window
	// samples than this (sensor blackout), the pool holds its
	// last-known-good configuration instead of acting.
	MinSamples int

	// MaxUnavailPct bounds each rollout wave to this fraction of the
	// pool (at least one server).
	MaxUnavailPct float64
	// MaxRetunesPerEpoch caps re-tuning work per epoch; drifted pools
	// past the cap stay drifted and are picked up next epoch.
	MaxRetunesPerEpoch int
	// WatchdogSec arms the rollout stuck-reboot watchdog.
	WatchdogSec float64

	// BreakerFailures consecutive rollout failures open a pool's
	// circuit breaker; it half-opens for a probe after a hold of
	// BreakerBaseHold epochs, doubling per reopen up to BreakerMaxHold,
	// plus a label-derived jitter epoch.
	BreakerFailures int
	BreakerBaseHold int
	BreakerMaxHold  int

	// QuarantineStrikes crash/abandon strikes against one server pull
	// it out of rotation; RepairEpochs epochs later it is repaired and
	// rejoins at the pool's current configuration.
	QuarantineStrikes int
	RepairEpochs      int

	// FreezeReverts rollbacks exhaust a pool's flap budget and freeze
	// its configuration for FreezeHoldEpochs epochs.
	FreezeReverts    int
	FreezeHoldEpochs int

	// Re-tune pipeline shape: which knobs to sweep, trial worker count,
	// and A/B sampling bounds (small: drift chasing wants cheap
	// directional answers, not publication-grade confidence).
	Knobs            []knob.ID
	Parallel         int
	TuneMinSamples   int
	TuneMaxSamples   int
	TuneGuardrailPct float64
	// TuneConfidence is the A/B significance level for drift-chasing
	// trials. Lower than the offline default on purpose: the controller
	// wants cheap directional answers every epoch, and a wrong accept
	// is bounded by the guardrail plus next epoch's re-tune.
	TuneConfidence float64
	// TuneSweep selects the re-tune optimizer. The zero value is
	// core.SweepIndependent (the paper's mode and the historical
	// behavior); the adaptive searchers (hillclimb, halving, cem) trade
	// more trial rounds for cross-knob coverage.
	TuneSweep core.SweepMode
	// TuneTwin arms the analytical-twin fidelity ladder inside every
	// re-tune (DESIGN.md §16): predicted-losing arms are pruned before
	// they cost a characterization window, which matters at the
	// controller's cadence of up to MaxRetunesPerEpoch tunes per pool
	// per epoch.
	TuneTwin bool
}

// DefaultConfig returns the control-loop defaults.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		EpochSec:           86400, // one diurnal period
		SamplesPerEpoch:    24,    // hourly rate samples
		DriftPct:           8,
		DriftRate:          0.05,
		MinSamples:         8,
		MaxUnavailPct:      0.2,
		MaxRetunesPerEpoch: 2,
		WatchdogSec:        120,
		BreakerFailures:    3,
		BreakerBaseHold:    2,
		BreakerMaxHold:     8,
		QuarantineStrikes:  3,
		RepairEpochs:       4,
		FreezeReverts:      4,
		FreezeHoldEpochs:   3,
		Knobs:              []knob.ID{knob.UncoreFreq, knob.THP},
		TuneMinSamples:     150,
		TuneMaxSamples:     900,
		TuneGuardrailPct:   2,
		TuneConfidence:     0.8,
	}
}

// PoolSpec places one pool: a workload on a SKU in a region. Pool
// names are "<Service>@<Region>" and must be unique.
type PoolSpec struct {
	Service string // workload profile name (workload.ByName)
	Region  string
	SKU     string // platform name; "" means the service's default
	Servers int
}

// DefaultFleetSpec spreads total servers across the paper's seven
// services in three regions on their Table 1 platforms, plus Web on
// Broadwell16 (§5) — 24 pools over all three fleet SKUs.
func DefaultFleetSpec(total int) []PoolSpec {
	regions := []string{"use", "usw", "eu"}
	var specs []PoolSpec
	for _, svc := range workload.All() {
		for _, r := range regions {
			specs = append(specs, PoolSpec{Service: svc.Name, Region: r})
		}
	}
	for _, r := range regions {
		specs = append(specs, PoolSpec{Service: "Web", Region: r + "-bw", SKU: "Broadwell16"})
	}
	per := total / len(specs)
	if per < 1 {
		per = 1
	}
	rem := total - per*len(specs)
	for i := range specs {
		specs[i].Servers = per
		if i < rem {
			specs[i].Servers++
		}
	}
	return specs
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
)

// poolState is the controller's per-pool memory between epochs.
type poolState struct {
	name   string
	series string

	load      *loadgen.Profile // stateful diurnal profile (monotone t)
	drift     *rng.Source      // hidden workload-shift walk
	driftMult float64
	nominal   float64 // rated request rate at driftMult 1
	tunedLoad float64 // epoch-mean rate at the last successful tune

	pendingLoad float64 // epoch-mean rate behind the current drift detection

	breaker    breakerState
	probing    bool   // this epoch's re-tune is a half-open probe
	failures   int    // consecutive rollout failures while closed
	opens      int    // times opened (drives exponential hold)
	holdUntil  int    // epoch when an open breaker half-opens
	jitterSeed uint64 // label-derived jitter stream for holds

	reverts     int // rollbacks since the last freeze (flap budget)
	frozenUntil int // epoch when a frozen config thaws

	degraded bool
	lastGood knob.Config

	strikes     map[int]int // crash/abandon strikes by stable server id
	quarantined map[int]int // server id -> epoch quarantined
}

// Controller is the fleet control loop.
type Controller struct {
	cfg    Config
	fleet  *fleet.Fleet
	store  *ods.Store
	ledger *decision.Ledger
	chaos  *chaos.Engine // nil: fault-free soak
	pools  []*poolState
	epoch  int
	now    float64 // virtual seconds
	logW   io.Writer

	report Report
}

// Report aggregates one soak.
type Report struct {
	Epochs  int `json:"epochs"`
	Pools   int `json:"pools"`
	Servers int `json:"servers"`

	Drifted         int `json:"drifted"`
	Retuned         int `json:"retuned"`
	RolledOut       int `json:"rolled_out"`
	RolloutFailures int `json:"rollout_failures"`

	Quarantined    int `json:"quarantined"`
	Repaired       int `json:"repaired"`
	BreakerOpens   int `json:"breaker_opens"`
	Freezes        int `json:"freezes"`
	DegradedEpochs int `json:"degraded_pool_epochs"`

	MixedPools int  `json:"mixed_pools"`
	Converged  bool `json:"converged"`

	VirtualSec  float64 `json:"virtual_sec"`
	FaultEvents int     `json:"fault_events"`
	Fingerprint string  `json:"fault_fingerprint,omitempty"`
}

// New builds a controller over the given fleet spec. Pools are
// provisioned at their production configuration; every pool gets its
// own label-derived load, drift, and jitter streams so the soak is a
// pure function of cfg.Seed.
func New(cfg Config, specs []PoolSpec) (*Controller, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("controller: empty fleet spec")
	}
	c := &Controller{
		cfg:    cfg,
		fleet:  fleet.New(),
		store:  ods.NewStore(),
		ledger: decision.NewLedger(),
	}
	seen := make(map[string]bool)
	for _, sp := range specs {
		base, err := workload.ByName(sp.Service)
		if err != nil {
			return nil, err
		}
		skuName := sp.SKU
		if skuName == "" {
			skuName = base.Platform
		}
		sku, err := platform.ByName(skuName)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%s@%s", sp.Service, sp.Region)
		if seen[name] {
			return nil, fmt.Errorf("controller: duplicate pool %s", name)
		}
		seen[name] = true
		// The pool runs a region-named clone of the service profile:
		// pool identity must be distinct for the fleet, the ledger, and
		// the simcache key.
		clone := *base
		clone.Name = name
		cfg0 := sim.ProductionConfig(sku, &clone)
		if err := c.fleet.AddPool(&clone, sku, sp.Servers, cfg0); err != nil {
			return nil, err
		}
		c.pools = append(c.pools, &poolState{
			name:        name,
			series:      "fleet.qps." + name,
			load:        loadgen.NewDiurnal(rng.Derive(cfg.Seed, "load/"+name)),
			drift:       rng.New(rng.Derive(cfg.Seed, "drift/"+name)),
			driftMult:   1,
			nominal:     1000,
			tunedLoad:   1000,
			jitterSeed:  rng.Derive(cfg.Seed, "breaker/"+name),
			lastGood:    cfg0,
			strikes:     make(map[int]int),
			quarantined: make(map[int]int),
		})
	}
	sort.Slice(c.pools, func(i, j int) bool { return c.pools[i].name < c.pools[j].name })
	c.fleet.SetRecorder(c.ledger)
	c.fleet.SetWatchdog(cfg.WatchdogSec)
	return c, nil
}

// SetChaos attaches a fault engine to the whole soak: sensor blackouts
// starve drift detection, load spikes masquerade as drift, and the
// rollout path (a per-fleet child stream) crashes servers and wedges
// reboots. nil (the default) runs fault-free.
func (c *Controller) SetChaos(e *chaos.Engine) {
	c.chaos = e
	if e == nil {
		c.fleet.SetChaos(nil)
		return
	}
	c.fleet.SetChaos(e.Split("fleet"))
	for _, ps := range c.pools {
		ps.load.SetChaos(e) // LoadSpike is pure in (seed, t): fleet-wide spikes
	}
}

// SetLogger directs per-epoch progress lines (nil disables).
func (c *Controller) SetLogger(w io.Writer) { c.logW = w }

// Fleet returns the controlled fleet.
func (c *Controller) Fleet() *fleet.Fleet { return c.fleet }

// Ledger returns the soak's decision ledger.
func (c *Controller) Ledger() *decision.Ledger { return c.ledger }

// Store returns the ODS store holding the per-pool rate series.
func (c *Controller) Store() *ods.Store { return c.store }

func (c *Controller) logf(format string, args ...interface{}) {
	if c.logW != nil {
		fmt.Fprintf(c.logW, format+"\n", args...)
	}
}

// Run executes n control epochs and returns the soak report. The
// convergence accounting at the end counts pools with any in-rotation
// server off the pool configuration — the "no pool left mixed"
// acceptance bar.
func (c *Controller) Run(n int) (*Report, error) {
	for i := 0; i < n; i++ {
		if err := c.step(); err != nil {
			return nil, err
		}
	}
	c.report.Epochs = c.epoch
	c.report.Pools = len(c.pools)
	c.report.Servers = 0
	c.report.MixedPools = 0
	for _, ps := range c.pools {
		pool, err := c.fleet.Pool(ps.name)
		if err != nil {
			return nil, err
		}
		c.report.Servers += pool.Size() + len(pool.QuarantinedIDs())
		if pool.OffConfig() > 0 {
			c.report.MixedPools++
		}
	}
	c.report.Converged = c.report.MixedPools == 0
	c.report.VirtualSec = c.now
	if c.chaos != nil {
		c.report.FaultEvents = len(c.chaos.Events())
		c.report.Fingerprint = c.chaos.Fingerprint()
	}
	return &c.report, nil
}

// step runs one control epoch: repair, sample, detect, re-tune, roll
// out. Strictly serial over pools in sorted name order — determinism
// comes from this order plus label-derived streams, not from luck.
func (c *Controller) step() error {
	servers := 0
	for _, ps := range c.pools {
		pool, err := c.fleet.Pool(ps.name)
		if err != nil {
			return err
		}
		servers += pool.Size()
	}
	epochSeq := c.ledger.Record(-1, decision.EpochStarted(c.epoch, c.now, len(c.pools), servers))
	mEpochs.Inc()

	c.repairs(epochSeq)
	c.sample()

	drifted, retuned, rolledOut, failures := 0, 0, 0, 0
	for _, ps := range c.pools {
		act, driftSeq := c.detect(ps, epochSeq)
		if !act {
			continue
		}
		drifted++
		if retuned >= c.cfg.MaxRetunesPerEpoch {
			c.logf("epoch %d: %s drifted but re-tune budget exhausted; deferred", c.epoch, ps.name)
			continue
		}
		retuned++
		ok, err := c.retune(ps, driftSeq)
		if err != nil {
			return err
		}
		if ok {
			rolledOut++
		} else {
			failures++
		}
	}

	c.ledger.Record(epochSeq, decision.EpochDone(c.epoch, drifted, retuned, rolledOut, failures))
	c.logf("epoch %d: drifted=%d retuned=%d rolled_out=%d failures=%d",
		c.epoch, drifted, retuned, rolledOut, failures)
	c.now += c.cfg.EpochSec
	c.epoch++
	return nil
}

// repairs returns quarantined servers that have served their time,
// break-glass reconfigured to the pool's current soft SKU.
func (c *Controller) repairs(epochSeq int) {
	for _, ps := range c.pools {
		if len(ps.quarantined) == 0 {
			continue
		}
		ids := make([]int, 0, len(ps.quarantined))
		for id, since := range ps.quarantined {
			if c.epoch-since >= c.cfg.RepairEpochs {
				ids = append(ids, id)
			}
		}
		sort.Ints(ids)
		for _, id := range ids {
			if err := c.fleet.Repair(ps.name, id); err != nil {
				continue
			}
			delete(ps.quarantined, id)
			ps.strikes[id] = 0
			c.ledger.Record(epochSeq, decision.Repair(ps.name, id))
			c.report.Repaired++
		}
	}
}

// sample writes this epoch's rate series for every pool: nominal rate
// × the hidden drift walk × the diurnal/spike load factor. A sensor
// blackout silently swallows the point — exactly the starvation
// degraded mode exists for.
func (c *Controller) sample() {
	dt := c.cfg.EpochSec / float64(c.cfg.SamplesPerEpoch)
	for _, ps := range c.pools {
		// The hidden workload shift this controller exists to chase: a
		// seeded step walk, one draw per epoch.
		if ps.drift.Bool(c.cfg.DriftRate) {
			step := 0.15 + 0.35*ps.drift.Float64()
			if ps.drift.Bool(0.5) {
				ps.driftMult *= 1 + step
			} else {
				ps.driftMult *= 1 - step
			}
			if ps.driftMult < 0.3 {
				ps.driftMult = 0.3
			}
			if ps.driftMult > 3 {
				ps.driftMult = 3
			}
		}
		for k := 0; k < c.cfg.SamplesPerEpoch; k++ {
			t := c.now + (float64(k)+0.5)*dt
			v := ps.nominal * ps.driftMult * ps.load.Factor(t)
			if c.chaos != nil && c.chaos.DropSensor(ps.series, t) {
				continue
			}
			if err := c.store.Append(ps.series, t, v); err != nil {
				// Non-decreasing t is guaranteed by construction; an
				// append failure here is a programming error worth seeing.
				panic(err)
			}
		}
	}
}

// detect decides whether a pool needs a re-tune this epoch, recording
// degraded-mode transitions, drift detections, and breaker probes. It
// returns the ledger seq the re-tune should nest under.
func (c *Controller) detect(ps *poolState, epochSeq int) (bool, int) {
	pts, err := c.store.Query(ps.series, c.now, c.now+c.cfg.EpochSec)
	n := 0
	if err == nil {
		n = len(pts)
	}
	if n < c.cfg.MinSamples {
		// Sensor blackout starved the window: drift estimates from a
		// handful of points are noise, so hold last-known-good.
		if !ps.degraded {
			ps.degraded = true
			c.ledger.Record(epochSeq, decision.DegradedEnter(ps.name, n, c.cfg.MinSamples))
		}
		c.report.DegradedEpochs++
		mDegraded.Inc()
		return false, -1
	}
	if ps.degraded {
		ps.degraded = false
		c.ledger.Record(epochSeq, decision.DegradedExit(ps.name, n))
	}
	sum := 0.0
	for _, p := range pts {
		sum += p.V
	}
	cur := sum / float64(n)
	deltaPct := (cur - ps.tunedLoad) / ps.tunedLoad * 100
	if math.Abs(deltaPct) <= c.cfg.DriftPct {
		return false, -1
	}
	driftSeq := c.ledger.Record(epochSeq, decision.DriftDetected(ps.name, deltaPct, c.cfg.DriftPct, n))
	c.report.Drifted++
	mDrifts.Inc()
	ps.pendingLoad = cur
	if c.epoch < ps.frozenUntil {
		c.logf("epoch %d: %s drifted %+.1f%% but config is frozen until epoch %d",
			c.epoch, ps.name, deltaPct, ps.frozenUntil)
		return false, -1
	}
	if ps.breaker == breakerOpen {
		if c.epoch < ps.holdUntil {
			c.logf("epoch %d: %s drifted %+.1f%% but breaker is open until epoch %d",
				c.epoch, ps.name, deltaPct, ps.holdUntil)
			return false, -1
		}
		// Half-open: this epoch's re-tune is the probe.
		c.ledger.Record(driftSeq, decision.BreakerProbe(ps.name))
		ps.probing = true
	}
	return true, driftSeq
}

// retune runs the µSKU pipeline for one drifted pool and rolls the
// result out, feeding the breaker / quarantine / freeze machinery with
// the outcome. Returns whether the pool ended the epoch on the new
// (or confirmed) configuration.
func (c *Controller) retune(ps *poolState, driftSeq int) (bool, error) {
	pool, err := c.fleet.Pool(ps.name)
	if err != nil {
		return false, err
	}
	metric := core.MetricMIPS
	if pool.Service.IntrospectivePerf {
		metric = core.MetricQPS
	}
	ab := abtest.DefaultConfig()
	ab.MinSamples = c.cfg.TuneMinSamples
	ab.MaxSamples = c.cfg.TuneMaxSamples
	ab.GuardrailPct = c.cfg.TuneGuardrailPct
	if c.cfg.TuneConfidence > 0 {
		ab.Confidence = c.cfg.TuneConfidence
	}
	in := core.Input{
		Microservice: ps.name,
		Platform:     pool.SKU.Name,
		Sweep:        c.cfg.TuneSweep,
		Metric:       metric,
		Knobs:        c.cfg.Knobs,
		// Constant per-pool seed: repeat re-tunes of an unchanged pool
		// replay the same trial schedule, so the simcache absorbs them.
		Seed:     rng.Derive(c.cfg.Seed, "tune/"+ps.name),
		Parallel: c.cfg.Parallel,
		Twin:     c.cfg.TuneTwin,
		AB:       ab,
	}
	tool, err := core.NewForService(in, pool.Service, pool.SKU)
	if err != nil {
		return false, err
	}
	tool.SetRecorder(c.ledger)
	tool.SetRecorderParent(driftSeq)
	tool.SetParallel(c.cfg.Parallel)
	if c.chaos != nil {
		tool.SetChaos(c.chaos.Split(fmt.Sprintf("tune/%s/%d", ps.name, c.epoch)))
	}
	res, err := tool.Run()
	if err != nil {
		return false, fmt.Errorf("controller: re-tune of %s failed: %w", ps.name, err)
	}
	c.report.Retuned++
	mRetunes.Inc()

	target := res.SoftSKU
	if target == pool.Config() {
		// Drift confirmed the current soft SKU; nothing to roll out.
		c.success(ps, driftSeq)
		return true, nil
	}
	maxUnavail := int(float64(pool.Size()) * c.cfg.MaxUnavailPct)
	if maxUnavail < 1 {
		maxUnavail = 1
	}
	c.fleet.SetRecorderParent(driftSeq)
	r, err := c.fleet.Rollout(ps.name, target, maxUnavail)
	if err == nil {
		c.report.RolledOut++
		ps.lastGood = target
		c.success(ps, driftSeq)
		return true, nil
	}
	c.failure(ps, driftSeq, r)
	return false, nil
}

// success books a converged re-tune: the pool is tuned for the load it
// just measured, its failure streak resets, and a probing breaker
// closes.
func (c *Controller) success(ps *poolState, driftSeq int) {
	ps.tunedLoad = ps.pendingLoad
	ps.failures = 0
	if ps.probing {
		ps.probing = false
		ps.breaker = breakerClosed
		ps.opens = 0
		c.ledger.Record(driftSeq, decision.BreakerClosed(ps.name))
	}
}

// failure books a failed rollout: strike crashed/abandoned servers
// toward quarantine, charge the flap budget, and trip or re-trip the
// breaker.
func (c *Controller) failure(ps *poolState, driftSeq int, r fleet.Rollout) {
	c.report.RolloutFailures++
	for _, id := range append(append([]int(nil), r.Crashed...), r.Abandoned...) {
		ps.strikes[id]++
		if ps.strikes[id] < c.cfg.QuarantineStrikes {
			continue
		}
		if _, gone := ps.quarantined[id]; gone {
			continue
		}
		if err := c.fleet.Quarantine(ps.name, id); err != nil {
			continue // last server: keep it, keep striking
		}
		ps.quarantined[id] = c.epoch
		c.ledger.Record(driftSeq, decision.Quarantine(ps.name, id, ps.strikes[id]))
		c.report.Quarantined++
	}
	if r.RolledBack {
		ps.reverts++
		if ps.reverts >= c.cfg.FreezeReverts {
			ps.frozenUntil = c.epoch + 1 + c.cfg.FreezeHoldEpochs
			c.ledger.Record(driftSeq, decision.ConfigFreeze(ps.name, ps.reverts, c.cfg.FreezeHoldEpochs))
			c.report.Freezes++
			mFreezes.Inc()
			ps.reverts = 0
		}
	}
	if ps.probing {
		// The half-open probe failed: reopen with a doubled hold.
		ps.probing = false
		c.open(ps, driftSeq)
		return
	}
	ps.failures++
	if ps.failures >= c.cfg.BreakerFailures {
		c.open(ps, driftSeq)
	}
}

// open trips a pool's breaker: exponential hold in epochs, capped,
// plus a deterministic label-derived jitter epoch so same-pool holds
// do not synchronize across seeds.
func (c *Controller) open(ps *poolState, driftSeq int) {
	ps.opens++
	hold := c.cfg.BreakerBaseHold
	for i := 1; i < ps.opens; i++ {
		hold *= 2
		if hold >= c.cfg.BreakerMaxHold {
			hold = c.cfg.BreakerMaxHold
			break
		}
	}
	hold += int(rng.Fold(ps.jitterSeed, uint64(ps.opens)) % 2)
	ps.breaker = breakerOpen
	ps.holdUntil = c.epoch + 1 + hold
	ps.failures = 0
	c.ledger.Record(driftSeq, decision.BreakerOpen(ps.name, c.cfg.BreakerFailures, hold))
	c.report.BreakerOpens++
	mBreakerOpens.Inc()
}
