package controller

import (
	"testing"

	"softsku/internal/chaos"
)

// benchSoak measures one acceptance-scale controller soak — 20 control
// epochs over the default 24-pool / 1008-server fleet — with the fault
// engine off vs on. The chaos row carries the full default fault mix
// plus day-long sensor blackouts, so the Off/On delta is the price of
// the self-healing machinery (breakers, quarantine, degraded mode,
// watchdog ride-outs) under sustained faults, not just the injector
// draws. Each iteration also reports epochs/sec so BENCH_fleet.json
// can record soak throughput directly. Medians of `make bench-fleet`.
func benchSoak(b *testing.B, withChaos bool) {
	const epochs = 20
	specs := DefaultFleetSpec(1008)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Seed = 42
		cfg.DriftRate = 0.04
		cfg.TuneMinSamples = 40
		cfg.TuneMaxSamples = 120
		c, err := New(cfg, specs)
		if err != nil {
			b.Fatal(err)
		}
		if withChaos {
			ccfg := chaos.DefaultConfig()
			ccfg.BlackoutPct = 0.01
			ccfg.BlackoutSec = 86400
			c.SetChaos(chaos.New(99, ccfg))
		}
		rep, err := c.Run(epochs)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Converged {
			b.Fatalf("bench soak did not converge: %+v", rep)
		}
	}
	b.ReportMetric(float64(epochs*b.N)/b.Elapsed().Seconds(), "epochs/sec")
}

func BenchmarkSoakChaosOff(b *testing.B) { benchSoak(b, false) }
func BenchmarkSoakChaosOn(b *testing.B)  { benchSoak(b, true) }
