package controller

import (
	"bytes"
	"testing"

	"softsku/internal/chaos"
	"softsku/internal/decision"
)

// smallSpec is a three-pool fleet spanning all three SKUs — big enough
// to exercise mixed-SKU handling, small enough to soak repeatedly.
func smallSpec(perPool int) []PoolSpec {
	return []PoolSpec{
		{Service: "Web", Region: "use", Servers: perPool},    // Skylake18
		{Service: "Cache1", Region: "use", Servers: perPool}, // Skylake20
		{Service: "Web", Region: "use-bw", SKU: "Broadwell16", Servers: perPool},
	}
}

// fastCfg shrinks the tuning pipeline for test soaks.
func fastCfg(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.SamplesPerEpoch = 12
	cfg.MinSamples = 8
	cfg.DriftRate = 0.5 // shift often so short soaks still re-tune
	cfg.TuneMinSamples = 40
	cfg.TuneMaxSamples = 120
	return cfg
}

// soak runs one controller soak and returns the report, the ledger
// bytes, and the chaos fingerprint ("" without chaos).
func soak(t *testing.T, cfg Config, specs []PoolSpec, epochs int, chaosCfg *chaos.Config, chaosSeed uint64) (*Report, []byte, string) {
	t.Helper()
	c, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	fp := ""
	var eng *chaos.Engine
	if chaosCfg != nil {
		eng = chaos.New(chaosSeed, *chaosCfg)
		c.SetChaos(eng)
	}
	rep, err := c.Run(epochs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Ledger().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if eng != nil {
		fp = eng.Fingerprint()
	}
	return rep, buf.Bytes(), fp
}

func kinds(t *testing.T, ledger []byte) map[decision.Kind]int {
	t.Helper()
	events, err := decision.ReadJSONL(bytes.NewReader(ledger))
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[decision.Kind]int)
	for _, e := range events {
		m[e.Kind]++
	}
	return m
}

func TestSoakDetectsAndChasesDrift(t *testing.T) {
	cfg := fastCfg(11)
	cfg.Parallel = 4
	rep, ledger, _ := soak(t, cfg, smallSpec(10), 6, nil, 0)
	if rep.Drifted == 0 || rep.Retuned == 0 {
		t.Fatalf("fault-free soak saw no drift work: %+v", rep)
	}
	if !rep.Converged || rep.MixedPools != 0 {
		t.Fatalf("fault-free soak must converge: %+v", rep)
	}
	if rep.RolloutFailures != 0 || rep.Quarantined != 0 {
		t.Fatalf("fault-free soak hit failure machinery: %+v", rep)
	}
	k := kinds(t, ledger)
	if k[decision.KindEpochStarted] != 6 || k[decision.KindEpochDone] != 6 {
		t.Fatalf("epoch events: %v", k)
	}
	if k[decision.KindDriftDetected] == 0 {
		t.Fatal("no drift_detected events in ledger")
	}
}

func TestSoakBitIdenticalAcrossParallelAndRuns(t *testing.T) {
	// The PR 6 bit-identity matrix extended with the controller
	// dimension: {fault-free, chaos} x {-parallel 1, 8}; ledgers and
	// fault fingerprints must match byte for byte.
	ccfg := chaos.DefaultConfig()
	for _, tc := range []struct {
		name     string
		chaosCfg *chaos.Config
	}{
		{"plain", nil},
		{"chaos", &ccfg},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg1 := fastCfg(23)
			cfg1.Parallel = 1
			cfg8 := fastCfg(23)
			cfg8.Parallel = 8
			rep1, led1, fp1 := soak(t, cfg1, smallSpec(8), 5, tc.chaosCfg, 7)
			rep8, led8, fp8 := soak(t, cfg8, smallSpec(8), 5, tc.chaosCfg, 7)
			if !bytes.Equal(led1, led8) {
				a, _ := decision.ReadJSONL(bytes.NewReader(led1))
				b, _ := decision.ReadJSONL(bytes.NewReader(led8))
				for _, d := range decision.Diff(a, b) {
					t.Log(d)
				}
				t.Fatal("ledger differs between -parallel=1 and -parallel=8")
			}
			if fp1 != fp8 {
				t.Fatalf("fault fingerprint differs: %q vs %q", fp1, fp8)
			}
			if *rep1 != *rep8 {
				t.Fatalf("reports differ:\n  par1: %+v\n  par8: %+v", rep1, rep8)
			}
			// And a same-config repeat run is identical too (Engine.Split
			// stream determinism across controller epochs).
			repR, ledR, fpR := soak(t, cfg8, smallSpec(8), 5, tc.chaosCfg, 7)
			if !bytes.Equal(led8, ledR) || fp8 != fpR || *rep8 != *repR {
				t.Fatal("repeat same-seed soak diverged")
			}
		})
	}
}

func TestDegradedModeHoldsLastKnownGoodUnderBlackout(t *testing.T) {
	cfg := fastCfg(5)
	// Total sensor blackout: the first draw on each series starts an
	// episode that outlasts the soak.
	ccfg := chaos.Config{BlackoutPct: 1, BlackoutSec: cfg.EpochSec * 100}
	rep, ledger, _ := soak(t, cfg, smallSpec(6), 4, &ccfg, 3)
	if rep.Retuned != 0 || rep.Drifted != 0 {
		t.Fatalf("blind controller must not act: %+v", rep)
	}
	if rep.DegradedEpochs != 3*4 {
		t.Fatalf("degraded pool-epochs = %d, want 12", rep.DegradedEpochs)
	}
	if !rep.Converged {
		t.Fatalf("held pools must stay converged: %+v", rep)
	}
	k := kinds(t, ledger)
	if k[decision.KindDegradedEnter] != 3 {
		t.Fatalf("degraded_enter = %d, want one per pool", k[decision.KindDegradedEnter])
	}
	if k[decision.KindDegradedExit] != 0 {
		t.Fatal("nothing should exit degraded mode under total blackout")
	}
}

func TestDegradedModeExitsWhenSensorsRecover(t *testing.T) {
	cfg := fastCfg(9)
	cfg.DriftRate = 0.3
	// Episodic blackouts: whole-epoch outages that end, so pools must
	// both enter and leave degraded mode across a longer soak.
	ccfg := chaos.Config{BlackoutPct: 0.08, BlackoutSec: cfg.EpochSec * 1.2}
	rep, ledger, _ := soak(t, cfg, smallSpec(6), 10, &ccfg, 21)
	k := kinds(t, ledger)
	if k[decision.KindDegradedEnter] == 0 {
		t.Fatalf("no degraded_enter events (report %+v); pick a different seed", rep)
	}
	if k[decision.KindDegradedExit] == 0 {
		t.Fatalf("no degraded_exit events (report %+v); pick a different seed", rep)
	}
	if !rep.Converged {
		t.Fatalf("soak must converge: %+v", rep)
	}
}

func TestBreakerQuarantineFreezeUnderHeavyCrashes(t *testing.T) {
	cfg := fastCfg(13)
	cfg.DriftRate = 0.9 // drift nearly every epoch: rollouts keep retrying
	cfg.RepairEpochs = 2
	// Crashes dominate: most rollouts fail their health check, feeding
	// strikes, reverts, and the breaker.
	ccfg := chaos.Config{CrashPct: 0.6}
	rep, ledger, _ := soak(t, cfg, smallSpec(10), 14, &ccfg, 17)
	if rep.RolloutFailures < 3 {
		t.Fatalf("expected sustained rollout failures: %+v", rep)
	}
	if rep.BreakerOpens == 0 {
		t.Fatalf("breaker never opened: %+v", rep)
	}
	if rep.Quarantined == 0 {
		t.Fatalf("no repeat offender quarantined: %+v", rep)
	}
	k := kinds(t, ledger)
	for _, kind := range []decision.Kind{
		decision.KindBreakerOpen, decision.KindBreakerProbe, decision.KindQuarantine,
	} {
		if k[kind] == 0 {
			t.Fatalf("no %s events in ledger (kinds: %v)", kind, k)
		}
	}
	// Failed rollouts always roll back, so even a badly mauled fleet
	// ends every pool internally consistent.
	if rep.MixedPools != 0 {
		t.Fatalf("pools left mixed: %+v", rep)
	}
}

func TestSoakAcceptance(t *testing.T) {
	// The PR acceptance soak: >=1000 servers, 20 epochs, sustained
	// chaos with >=5 fault episodes, every pool converged, ledgers
	// byte-identical at -parallel=1 vs -parallel=8.
	if testing.Short() {
		t.Skip("acceptance soak is long; run without -short")
	}
	specs := DefaultFleetSpec(1008)
	ccfg := chaos.DefaultConfig()
	ccfg.BlackoutPct = 0.01
	ccfg.BlackoutSec = 86400

	cfg1 := DefaultConfig()
	cfg1.Seed = 42
	cfg1.DriftRate = 0.04
	cfg1.TuneMinSamples = 40
	cfg1.TuneMaxSamples = 120
	cfg1.Parallel = 1
	cfg8 := cfg1
	cfg8.Parallel = 8

	rep1, led1, fp1 := soak(t, cfg1, specs, 20, &ccfg, 99)
	rep8, led8, fp8 := soak(t, cfg8, specs, 20, &ccfg, 99)

	if rep1.Servers < 1000 {
		t.Fatalf("fleet too small: %d servers", rep1.Servers)
	}
	if rep1.FaultEvents < 5 {
		t.Fatalf("only %d fault episodes injected", rep1.FaultEvents)
	}
	if !rep1.Converged || rep1.MixedPools != 0 {
		t.Fatalf("soak did not converge: %+v", rep1)
	}
	if rep1.Drifted == 0 || rep1.Retuned == 0 {
		t.Fatalf("soak did no tuning work: %+v", rep1)
	}
	if !bytes.Equal(led1, led8) {
		a, _ := decision.ReadJSONL(bytes.NewReader(led1))
		b, _ := decision.ReadJSONL(bytes.NewReader(led8))
		diffs := decision.Diff(a, b)
		for i, d := range diffs {
			if i >= 5 {
				break
			}
			t.Log(d)
		}
		t.Fatal("acceptance soak ledger differs between -parallel=1 and -parallel=8")
	}
	if fp1 != fp8 || *rep1 != *rep8 {
		t.Fatalf("acceptance soak diverged: fp %q vs %q", fp1, fp8)
	}
}
