// Package fleet models the operational side of soft SKUs (§1, §3):
// pools of identical servers dedicated to microservices, rolling
// soft-SKU deployments that bound unavailability, redeployment of
// fungible hardware between services as allocation needs shift, and
// the aggregate capacity arithmetic that turns single-digit percent
// speedups into thousands of servers.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"softsku/internal/chaos"
	"softsku/internal/decision"
	"softsku/internal/knob"
	"softsku/internal/platform"
	"softsku/internal/sim"
	"softsku/internal/telemetry"
	"softsku/internal/workload"
)

// Rollout telemetry: per-machine deployment events, so fleet-scale
// simulations expose how much reconfiguration churn a soft-SKU
// rollout generates.
var (
	mRollouts = telemetry.Default.Counter("softsku_fleet_rollouts_total",
		"Soft-SKU rollout operations performed.")
	mRolloutServers = telemetry.Default.Counter("softsku_fleet_rollout_servers_total",
		"Servers reconfigured by rollouts.")
	mRolloutReboots = telemetry.Default.Counter("softsku_fleet_rollout_reboots_total",
		"Servers rebooted by rollouts.")
	mRolloutWaves = telemetry.Default.Counter("softsku_fleet_rollout_waves_total",
		"Deployment waves executed by rollouts.")
	mRedeploys = telemetry.Default.Counter("softsku_fleet_redeploys_total",
		"Cross-pool server redeployments.")
	mRedeployServers = telemetry.Default.Counter("softsku_fleet_redeploy_servers_total",
		"Servers moved between pools by redeployments.")

	// Self-healing telemetry: waves that failed their health check and
	// the rollbacks that put the pool back on its prior soft SKU.
	mRollbacks = telemetry.Default.Counter("softsku_rollback_total",
		"Rollouts aborted and rolled back after a failed wave health check.")
	mRollbackServers = telemetry.Default.Counter("softsku_rollback_servers_total",
		"Servers restored to their prior configuration by rollbacks.")
	mHealthFailures = telemetry.Default.Counter("softsku_fleet_health_check_failures_total",
		"Servers that failed a post-wave configuration health check.")
)

// Pool is the set of servers of one SKU dedicated to one microservice,
// all running the same soft-SKU configuration (the fleet's deployment
// unit: services run stand-alone on dedicated bare metal, §3).
type Pool struct {
	Service *workload.Profile
	SKU     *platform.SKU
	servers []*platform.Server
	cfg     knob.Config
}

// Size returns the number of servers in the pool.
func (p *Pool) Size() int { return len(p.servers) }

// Config returns the pool's current soft-SKU configuration.
func (p *Pool) Config() knob.Config { return p.cfg }

// Reboots sums reboot counts across the pool's servers.
func (p *Pool) Reboots() int {
	total := 0
	for _, s := range p.servers {
		total += s.Reboots()
	}
	return total
}

// Fleet is a collection of service pools.
type Fleet struct {
	pools map[string]*Pool
	chaos chaos.Injector   // nil: fault-free rollouts
	rec   *decision.Ledger // nil: rollouts unrecorded
}

// New returns an empty fleet.
func New() *Fleet { return &Fleet{pools: make(map[string]*Pool)} }

// SetChaos attaches a fault injector consulted during rollouts: servers
// can crash mid-reconfiguration (they come back on their old config and
// fail the wave's health check, triggering abort + rollback) and waves
// can run slow. nil (the default) disables injection.
func (f *Fleet) SetChaos(inj chaos.Injector) { f.chaos = inj }

// SetRecorder attaches a decision ledger: every Rollout appends its
// wave-by-wave record — rollout_started, wave_passed/wave_failed,
// rollback, rollout_done — so operational decisions land in the same
// flight record as the tuning decisions that produced the
// configuration. nil (the default) disables recording.
func (f *Fleet) SetRecorder(l *decision.Ledger) { f.rec = l }

// AddPool provisions n servers of the SKU for a service at the given
// configuration.
func (f *Fleet) AddPool(svc *workload.Profile, sku *platform.SKU, n int, cfg knob.Config) error {
	if n < 1 {
		return fmt.Errorf("fleet: pool for %s needs at least one server", svc.Name)
	}
	if _, ok := f.pools[svc.Name]; ok {
		return fmt.Errorf("fleet: pool for %s already exists", svc.Name)
	}
	prof := workload.ForPlatform(svc, sku.Name)
	pool := &Pool{Service: prof, SKU: sku, cfg: cfg}
	for i := 0; i < n; i++ {
		srv, err := platform.NewServer(sku, cfg)
		if err != nil {
			return err
		}
		pool.servers = append(pool.servers, srv)
	}
	f.pools[svc.Name] = pool
	return nil
}

// Pool returns a service's pool.
func (f *Fleet) Pool(service string) (*Pool, error) {
	p, ok := f.pools[service]
	if !ok {
		return nil, fmt.Errorf("fleet: no pool for %s", service)
	}
	return p, nil
}

// Services lists pool names, sorted.
func (f *Fleet) Services() []string {
	names := make([]string, 0, len(f.pools))
	for n := range f.pools {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Rollout summarizes one deployment wave plan.
type Rollout struct {
	Servers      int // servers reconfigured
	Rebooted     int // servers rebooted by the forward deployment
	Waves        int // deployment waves (bounded unavailability)
	MaxUnavail   int
	WaveRebooted []int

	// Self-healing record when a wave fails its health check.
	Aborted    bool    // remaining waves never ran
	FailedWave int     // 1-based index of the failing wave (0: none)
	RolledBack bool    // touched servers restored to the prior config
	SlowSec    float64 // injected wave slowdowns absorbed
}

// Rollout applies a soft-SKU configuration to a pool in waves: at most
// maxUnavailable servers are rebooting at any time, so the service
// keeps serving (§3: servers are redeployed to different soft SKUs
// through reconfiguration and/or reboot). MSR-only changes apply
// in-place in a single pass.
//
// After each wave, every server in the wave must round-trip the new
// configuration (health check). A failed wave aborts the remaining
// waves and rolls every touched server back to the pool's prior
// configuration, so a rollout either converges completely or leaves
// the pool exactly as it found it; the returned Rollout records the
// abort alongside the error.
func (f *Fleet) Rollout(service string, cfg knob.Config, maxUnavailable int) (Rollout, error) {
	pool, err := f.Pool(service)
	if err != nil {
		return Rollout{}, err
	}
	if pool.Size() == 0 {
		return Rollout{}, fmt.Errorf("fleet: pool for %s is empty; nothing to roll out", service)
	}
	if maxUnavailable < 1 {
		return Rollout{}, fmt.Errorf(
			"fleet: maxUnavailable must be at least 1, got %d (a zero wave would never finish)", maxUnavailable)
	}
	if err := pool.SKU.Validate(cfg); err != nil {
		return Rollout{}, err
	}
	needsReboot := false
	for _, id := range knob.Diff(pool.cfg, cfg) {
		if id.RequiresReboot() {
			needsReboot = true
		}
	}
	// MSR-only changes reconfigure live: nothing goes down, so the
	// whole pool is one wave regardless of the availability bound.
	waveSize := maxUnavailable
	if !needsReboot {
		waveSize = pool.Size()
	}
	r := Rollout{Servers: pool.Size(), MaxUnavail: maxUnavailable}
	rootSeq := -1
	if f.rec != nil {
		rootSeq = f.rec.Record(-1, decision.RolloutStarted(service, cfg.String(), pool.Size(), maxUnavailable))
	}
	prev := pool.cfg
	for start := 0; start < pool.Size(); start += waveSize {
		end := start + waveSize
		if end > pool.Size() {
			end = pool.Size()
		}
		wave := r.Waves + 1
		if f.chaos != nil {
			r.SlowSec += f.chaos.WaveDelay(wave)
		}
		rebootedThisWave := 0
		var cause error
		for i, srv := range pool.servers[start:end] {
			if f.chaos != nil && f.chaos.CrashServer(fmt.Sprintf("%s/%d", service, start+i)) {
				// The server died mid-reconfiguration and came back on its
				// old configuration; the health check below catches it.
				continue
			}
			rebooted, err := srv.Apply(cfg)
			if err != nil {
				cause = err
				continue
			}
			if rebooted {
				r.Rebooted++
				rebootedThisWave++
			}
		}
		r.Waves++
		r.WaveRebooted = append(r.WaveRebooted, rebootedThisWave)
		unhealthy := 0
		for _, srv := range pool.servers[start:end] {
			if srv.Config() != cfg {
				unhealthy++
				mHealthFailures.Inc()
			}
		}
		if unhealthy > 0 {
			r.Aborted = true
			r.FailedWave = wave
			restored := f.rollback(pool, prev, end, &r)
			if f.rec != nil {
				failSeq := f.rec.Record(rootSeq, decision.WaveFailed(wave, end-start,
					fmt.Sprintf("health check failed: %d servers off-config", unhealthy)))
				f.rec.Record(failSeq, decision.Rollback(restored))
			}
			recordRollout(r)
			err := fmt.Errorf("fleet: rollout of %s aborted at wave %d/%d: health check failed; pool rolled back",
				service, wave, (pool.Size()+waveSize-1)/waveSize)
			if cause != nil {
				err = fmt.Errorf("%w (first failure: %v)", err, cause)
			}
			return r, err
		}
		if f.rec != nil {
			f.rec.Record(rootSeq, decision.WavePassed(wave, end-start, rebootedThisWave))
		}
	}
	pool.cfg = cfg
	if f.rec != nil {
		f.rec.Record(rootSeq, decision.RolloutDone(r.Waves, r.Rebooted))
	}
	recordRollout(r)
	return r, nil
}

// rollback restores the prior configuration on the first n servers of
// the pool — everything a failed rollout may have touched — and
// returns how many servers it reconfigured. The rollback path is
// break-glass: it does not consult the fault injector, so the pool
// always converges back to its prior state.
func (f *Fleet) rollback(pool *Pool, prev knob.Config, n int, r *Rollout) int {
	mRollbacks.Inc()
	restored := 0
	for _, srv := range pool.servers[:n] {
		if srv.Config() == prev {
			continue
		}
		if _, err := srv.Apply(prev); err == nil {
			restored++
		}
	}
	r.RolledBack = true
	mRollbackServers.Add(float64(restored))
	return restored
}

// recordRollout publishes one completed rollout's per-machine event
// counts to the telemetry registry.
func recordRollout(r Rollout) {
	mRollouts.Inc()
	mRolloutServers.Add(float64(r.Servers))
	mRolloutReboots.Add(float64(r.Rebooted))
	mRolloutWaves.Add(float64(r.Waves))
}

// Redeploy moves n servers from one pool to another, reconfiguring
// them to the destination's soft SKU — the hardware-fungibility story
// that motivates soft SKUs over custom silicon (§1, §3). Both pools
// must run the same hardware SKU; that is the whole point of limiting
// platform diversity.
func (f *Fleet) Redeploy(from, to string, n int) (Rollout, error) {
	src, err := f.Pool(from)
	if err != nil {
		return Rollout{}, err
	}
	dst, err := f.Pool(to)
	if err != nil {
		return Rollout{}, err
	}
	if src.SKU.Name != dst.SKU.Name {
		return Rollout{}, fmt.Errorf(
			"fleet: cannot redeploy across SKUs (%s -> %s); fungibility requires identical hardware",
			src.SKU.Name, dst.SKU.Name)
	}
	if n < 1 || n >= src.Size() {
		return Rollout{}, fmt.Errorf("fleet: cannot move %d of %d servers from %s", n, src.Size(), from)
	}
	r := Rollout{Servers: n, MaxUnavail: n, Waves: 1}
	moved := src.servers[src.Size()-n:]
	src.servers = src.servers[:src.Size()-n]
	for _, srv := range moved {
		rebooted, err := srv.Apply(dst.cfg)
		if err != nil {
			return r, err
		}
		if rebooted {
			r.Rebooted++
		}
	}
	r.WaveRebooted = []int{r.Rebooted}
	dst.servers = append(dst.servers, moved...)
	mRedeploys.Inc()
	mRedeployServers.Add(float64(n))
	mRolloutReboots.Add(float64(r.Rebooted))
	return r, nil
}

// PoolThroughput returns the pool's aggregate peak throughput (QPS)
// under its current configuration.
func (f *Fleet) PoolThroughput(service string, seed uint64) (float64, error) {
	pool, err := f.Pool(service)
	if err != nil {
		return 0, err
	}
	srv, err := platform.NewServer(pool.SKU, pool.cfg)
	if err != nil {
		return 0, err
	}
	m, err := sim.NewMachine(srv, pool.Service, seed)
	if err != nil {
		return 0, err
	}
	return m.SolvePeak().QPS * float64(pool.Size()), nil
}

// CapacitySavings converts a soft SKU's throughput gain into the
// provisioning reduction at a given pool size: the servers no longer
// needed to serve the same aggregate load ("achieving even
// single-digit percent speedups can yield immense aggregate data
// center efficiency benefits", §6.2).
func CapacitySavings(servers int, gainPct float64) int {
	if gainPct <= 0 || servers < 1 {
		return 0
	}
	needed := int(math.Ceil(float64(servers) / (1 + gainPct/100)))
	return servers - needed
}
