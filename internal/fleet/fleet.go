// Package fleet models the operational side of soft SKUs (§1, §3):
// pools of identical servers dedicated to microservices, rolling
// soft-SKU deployments that bound unavailability, redeployment of
// fungible hardware between services as allocation needs shift, and
// the aggregate capacity arithmetic that turns single-digit percent
// speedups into thousands of servers.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"softsku/internal/chaos"
	"softsku/internal/decision"
	"softsku/internal/knob"
	"softsku/internal/platform"
	"softsku/internal/sim"
	"softsku/internal/telemetry"
	"softsku/internal/workload"
)

// Rollout telemetry: per-machine deployment events, so fleet-scale
// simulations expose how much reconfiguration churn a soft-SKU
// rollout generates.
var (
	mRollouts = telemetry.Default.Counter("softsku_fleet_rollouts_total",
		"Soft-SKU rollout operations performed.")
	mRolloutServers = telemetry.Default.Counter("softsku_fleet_rollout_servers_total",
		"Servers reconfigured by rollouts.")
	mRolloutReboots = telemetry.Default.Counter("softsku_fleet_rollout_reboots_total",
		"Servers rebooted by rollouts.")
	mRolloutWaves = telemetry.Default.Counter("softsku_fleet_rollout_waves_total",
		"Deployment waves executed by rollouts.")
	mRedeploys = telemetry.Default.Counter("softsku_fleet_redeploys_total",
		"Cross-pool server redeployments.")
	mRedeployServers = telemetry.Default.Counter("softsku_fleet_redeploy_servers_total",
		"Servers moved between pools by redeployments.")

	// Self-healing telemetry: waves that failed their health check and
	// the rollbacks that put the pool back on its prior soft SKU.
	mRollbacks = telemetry.Default.Counter("softsku_rollback_total",
		"Rollouts aborted and rolled back after a failed wave health check.")
	mRollbackServers = telemetry.Default.Counter("softsku_rollback_servers_total",
		"Servers restored to their prior configuration by rollbacks.")
	mHealthFailures = telemetry.Default.Counter("softsku_fleet_health_check_failures_total",
		"Servers that failed a post-wave configuration health check.")
	mQuarantines = telemetry.Default.Counter("softsku_fleet_quarantines_total",
		"Servers pulled out of rotation as repeat offenders.")
	mRepairs = telemetry.Default.Counter("softsku_fleet_repairs_total",
		"Quarantined servers restored to rotation.")
	mWatchdogAbandons = telemetry.Default.Counter("softsku_fleet_watchdog_abandons_total",
		"Servers abandoned by the rollout watchdog after a stuck reboot exhausted its budget.")
	mRevalidationAborts = telemetry.Default.Counter("softsku_fleet_revalidation_aborts_total",
		"Rollout waves aborted because the target config failed per-server SKU re-validation.")
)

// Pool is the set of servers of one SKU dedicated to one microservice,
// all running the same soft-SKU configuration (the fleet's deployment
// unit: services run stand-alone on dedicated bare metal, §3).
//
// Every server carries a stable id assigned at provisioning: ids
// survive quarantines and redeploys, so fault attribution ("which
// machine crashed three rollouts in a row?") stays meaningful as pool
// composition changes. The ids slice is kept ascending and parallel to
// servers, which makes iteration order — and therefore chaos draws and
// ledger bytes — canonical.
type Pool struct {
	Service *workload.Profile
	SKU     *platform.SKU
	servers []*platform.Server
	ids     []int // stable per-server ids, parallel to servers, ascending
	nextID  int
	quar    map[int]*platform.Server // quarantined, out of rotation
	cfg     knob.Config
}

// Size returns the number of in-rotation servers in the pool.
func (p *Pool) Size() int { return len(p.servers) }

// Config returns the pool's current soft-SKU configuration.
func (p *Pool) Config() knob.Config { return p.cfg }

// ServerIDs returns the stable ids of the in-rotation servers, in
// rollout order.
func (p *Pool) ServerIDs() []int {
	return append([]int(nil), p.ids...)
}

// QuarantinedIDs returns the ids of quarantined servers, sorted.
func (p *Pool) QuarantinedIDs() []int {
	out := make([]int, 0, len(p.quar))
	for id := range p.quar {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// OffConfig counts in-rotation servers whose live configuration
// differs from the pool's — a converged pool reports 0, so the fleet
// controller can assert "no pool left in a mixed state" after every
// epoch.
func (p *Pool) OffConfig() int {
	n := 0
	for _, s := range p.servers {
		if s.Config() != p.cfg {
			n++
		}
	}
	return n
}

// Reboots sums reboot counts across the pool's in-rotation servers.
func (p *Pool) Reboots() int {
	total := 0
	for _, s := range p.servers {
		total += s.Reboots()
	}
	return total
}

// Fleet is a collection of service pools.
type Fleet struct {
	pools       map[string]*Pool
	chaos       chaos.Injector   // nil: fault-free rollouts
	rec         *decision.Ledger // nil: rollouts unrecorded
	recParent   int              // causal parent for rollout roots (-1: ledger root)
	watchdogSec float64          // 0: no stuck-reboot retries (legacy one-shot applies)
}

// New returns an empty fleet.
func New() *Fleet { return &Fleet{pools: make(map[string]*Pool), recParent: -1} }

// SetChaos attaches a fault injector consulted during rollouts: servers
// can crash mid-reconfiguration (they come back on their old config and
// fail the wave's health check, triggering abort + rollback) and waves
// can run slow. nil (the default) disables injection.
func (f *Fleet) SetChaos(inj chaos.Injector) { f.chaos = inj }

// SetRecorder attaches a decision ledger: every Rollout appends its
// wave-by-wave record — rollout_started, wave_passed/wave_failed,
// rollback, rollout_done — so operational decisions land in the same
// flight record as the tuning decisions that produced the
// configuration. nil (the default) disables recording.
func (f *Fleet) SetRecorder(l *decision.Ledger) { f.rec = l }

// SetRecorderParent makes subsequent Rollout ledger entries children
// of seq instead of roots — the fleet controller nests each epoch's
// rollouts under that epoch's event. -1 (the default) records roots.
func (f *Fleet) SetRecorderParent(seq int) { f.recParent = seq }

// SetWatchdog arms the rollout watchdog: a server whose required
// reboot hangs (injected stuck reboot) is retried with exponential
// backoff charged to the rollout's virtual clock until the cumulative
// wait would exceed sec, then abandoned — the server stays on its old
// configuration and the wave's health check fails, so the rollout
// aborts cleanly instead of wedging. 0 (the default) restores the
// pre-watchdog single-attempt behaviour, drawing nothing from the
// fault streams.
func (f *Fleet) SetWatchdog(sec float64) { f.watchdogSec = sec }

// AddPool provisions n servers of the SKU for a service at the given
// configuration.
func (f *Fleet) AddPool(svc *workload.Profile, sku *platform.SKU, n int, cfg knob.Config) error {
	if n < 1 {
		return fmt.Errorf("fleet: pool for %s needs at least one server", svc.Name)
	}
	if _, ok := f.pools[svc.Name]; ok {
		return fmt.Errorf("fleet: pool for %s already exists", svc.Name)
	}
	prof := workload.ForPlatform(svc, sku.Name)
	pool := &Pool{Service: prof, SKU: sku, cfg: cfg, quar: make(map[int]*platform.Server)}
	for i := 0; i < n; i++ {
		srv, err := platform.NewServer(sku, cfg)
		if err != nil {
			return err
		}
		pool.servers = append(pool.servers, srv)
		pool.ids = append(pool.ids, pool.nextID)
		pool.nextID++
	}
	f.pools[svc.Name] = pool
	return nil
}

// Pool returns a service's pool.
func (f *Fleet) Pool(service string) (*Pool, error) {
	p, ok := f.pools[service]
	if !ok {
		return nil, fmt.Errorf("fleet: no pool for %s", service)
	}
	return p, nil
}

// Services lists pool names, sorted.
func (f *Fleet) Services() []string {
	names := make([]string, 0, len(f.pools))
	for n := range f.pools {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Rollout summarizes one deployment wave plan.
type Rollout struct {
	Servers      int // servers reconfigured
	Rebooted     int // servers rebooted by the forward deployment
	Waves        int // deployment waves (bounded unavailability)
	MaxUnavail   int
	WaveRebooted []int

	// Self-healing record when a wave fails its health check.
	Aborted    bool    // remaining waves never ran
	FailedWave int     // 1-based index of the failing wave (0: none)
	RolledBack bool    // touched servers restored to the prior config
	SlowSec    float64 // injected wave slowdowns absorbed

	// Fault attribution by stable server id, so callers (the fleet
	// controller's quarantine policy) can track repeat offenders.
	Crashed   []int // servers that crashed mid-reconfiguration
	Abandoned []int // servers abandoned by the watchdog after stuck reboots
}

// Rollout applies a soft-SKU configuration to a pool in waves: at most
// maxUnavailable servers are rebooting at any time, so the service
// keeps serving (§3: servers are redeployed to different soft SKUs
// through reconfiguration and/or reboot). MSR-only changes apply
// in-place in a single pass.
//
// After each wave, every server in the wave must round-trip the new
// configuration (health check). A failed wave aborts the remaining
// waves and rolls every touched server back to the pool's prior
// configuration, so a rollout either converges completely or leaves
// the pool exactly as it found it; the returned Rollout records the
// abort alongside the error.
func (f *Fleet) Rollout(service string, cfg knob.Config, maxUnavailable int) (Rollout, error) {
	pool, err := f.Pool(service)
	if err != nil {
		return Rollout{}, err
	}
	if pool.Size() == 0 {
		return Rollout{}, fmt.Errorf("fleet: pool for %s is empty; nothing to roll out", service)
	}
	if maxUnavailable < 1 {
		return Rollout{}, fmt.Errorf(
			"fleet: maxUnavailable must be at least 1, got %d (a zero wave would never finish)", maxUnavailable)
	}
	if err := pool.SKU.Validate(cfg); err != nil {
		return Rollout{}, err
	}
	needsReboot := false
	for _, id := range knob.Diff(pool.cfg, cfg) {
		if id.RequiresReboot() {
			needsReboot = true
		}
	}
	// MSR-only changes reconfigure live: nothing goes down, so the
	// whole pool is one wave regardless of the availability bound.
	waveSize := maxUnavailable
	if !needsReboot {
		waveSize = pool.Size()
	}
	r := Rollout{Servers: pool.Size(), MaxUnavail: maxUnavailable}
	rootSeq := -1
	if f.rec != nil {
		rootSeq = f.rec.Record(f.recParent, decision.RolloutStarted(service, cfg.String(), pool.Size(), maxUnavailable))
	}
	prev := pool.cfg
	for start := 0; start < pool.Size(); start += waveSize {
		end := start + waveSize
		if end > pool.Size() {
			end = pool.Size()
		}
		wave := r.Waves + 1
		// Re-validate the target against each server's own SKU at wave
		// start: a Redeploy can change pool composition between waves of
		// concurrent operations (or between validation and rollout), and a
		// config valid for the pool's nominal SKU may be invalid for a
		// server that arrived from elsewhere. Pushing it anyway would brick
		// part of a mixed fleet; aborting keeps the rollout atomic.
		for i, srv := range pool.servers[start:end] {
			if err := srv.SKU().Validate(cfg); err != nil {
				mRevalidationAborts.Inc()
				r.Aborted = true
				r.FailedWave = wave
				restored := 0
				if start > 0 {
					restored = f.rollback(pool, prev, start, &r)
				}
				if f.rec != nil {
					failSeq := f.rec.Record(rootSeq, decision.WaveFailed(wave, end-start,
						fmt.Sprintf("re-validation failed on server %d: %v", pool.ids[start+i], err)))
					if restored > 0 {
						f.rec.Record(failSeq, decision.Rollback(restored))
					}
				}
				recordRollout(r)
				return r, fmt.Errorf("fleet: rollout of %s aborted at wave %d: config invalid for server %d's SKU: %w",
					service, wave, pool.ids[start+i], err)
			}
		}
		if f.chaos != nil {
			r.SlowSec += f.chaos.WaveDelay(wave)
		}
		rebootedThisWave := 0
		var cause error
		for i, srv := range pool.servers[start:end] {
			target := fmt.Sprintf("%s/%d", service, pool.ids[start+i])
			if f.chaos != nil && f.chaos.CrashServer(target) {
				// The server died mid-reconfiguration and came back on its
				// old configuration; the health check below catches it.
				r.Crashed = append(r.Crashed, pool.ids[start+i])
				continue
			}
			if needsReboot && f.watchdogSec > 0 && f.chaos != nil {
				if !f.rideOutStuckReboot(target, &r.SlowSec) {
					// Watchdog budget exhausted: abandon the server on its
					// old configuration rather than wedging the epoch. The
					// health check below turns this into a clean abort.
					r.Abandoned = append(r.Abandoned, pool.ids[start+i])
					mWatchdogAbandons.Inc()
					if f.rec != nil {
						f.rec.Record(rootSeq, decision.WatchdogAbandon(service, pool.ids[start+i], f.watchdogSec))
					}
					continue
				}
			}
			rebooted, err := srv.Apply(cfg)
			if err != nil {
				cause = err
				continue
			}
			if rebooted {
				r.Rebooted++
				rebootedThisWave++
			}
		}
		r.Waves++
		r.WaveRebooted = append(r.WaveRebooted, rebootedThisWave)
		unhealthy := 0
		for _, srv := range pool.servers[start:end] {
			if srv.Config() != cfg {
				unhealthy++
				mHealthFailures.Inc()
			}
		}
		if unhealthy > 0 {
			r.Aborted = true
			r.FailedWave = wave
			restored := f.rollback(pool, prev, end, &r)
			if f.rec != nil {
				failSeq := f.rec.Record(rootSeq, decision.WaveFailed(wave, end-start,
					fmt.Sprintf("health check failed: %d servers off-config", unhealthy)))
				f.rec.Record(failSeq, decision.Rollback(restored))
			}
			recordRollout(r)
			err := fmt.Errorf("fleet: rollout of %s aborted at wave %d/%d: health check failed; pool rolled back",
				service, wave, (pool.Size()+waveSize-1)/waveSize)
			if cause != nil {
				err = fmt.Errorf("%w (first failure: %v)", err, cause)
			}
			return r, err
		}
		if f.rec != nil {
			f.rec.Record(rootSeq, decision.WavePassed(wave, end-start, rebootedThisWave))
		}
	}
	pool.cfg = cfg
	if f.rec != nil {
		f.rec.Record(rootSeq, decision.RolloutDone(r.Waves, r.Rebooted))
	}
	recordRollout(r)
	return r, nil
}

// rideOutStuckReboot asks the fault injector whether this server's
// reboot hangs and, if so, retries with exponential backoff (5s
// doubling, charged to the rollout's virtual clock) until either an
// attempt goes through or the cumulative wait would exceed the
// watchdog budget. It returns false when the server must be abandoned.
// Every attempt draws from the reboot stream, so the schedule is a
// pure function of the seed and the target labels.
func (f *Fleet) rideOutStuckReboot(target string, slowSec *float64) bool {
	const baseBackoff = 5.0
	waited, backoff := 0.0, baseBackoff
	for f.chaos.StuckReboot(target) {
		if waited+backoff > f.watchdogSec {
			*slowSec += waited
			return false
		}
		waited += backoff
		backoff *= 2
	}
	*slowSec += waited
	return true
}

// Quarantine pulls a server out of rotation by stable id — the
// controller's repeat-offender response. The server keeps its id and
// configuration; it no longer participates in rollouts, health checks,
// or capacity until Repair puts it back. The last in-rotation server
// cannot be quarantined: an empty pool could never converge.
func (f *Fleet) Quarantine(service string, id int) error {
	pool, err := f.Pool(service)
	if err != nil {
		return err
	}
	if pool.Size() <= 1 {
		return fmt.Errorf("fleet: refusing to quarantine the last server of %s", service)
	}
	for i, sid := range pool.ids {
		if sid != id {
			continue
		}
		pool.quar[id] = pool.servers[i]
		pool.servers = append(pool.servers[:i], pool.servers[i+1:]...)
		pool.ids = append(pool.ids[:i], pool.ids[i+1:]...)
		mQuarantines.Inc()
		return nil
	}
	return fmt.Errorf("fleet: no in-rotation server %d in pool %s", id, service)
}

// Repair returns a quarantined server to rotation, break-glass
// reconfiguring it to the pool's current soft SKU first (repair crews
// do not consult the fault injector). The server is re-inserted at its
// id's ascending position, so rollout order — and with it the chaos
// draw sequence — stays canonical regardless of quarantine history.
func (f *Fleet) Repair(service string, id int) error {
	pool, err := f.Pool(service)
	if err != nil {
		return err
	}
	srv, ok := pool.quar[id]
	if !ok {
		return fmt.Errorf("fleet: no quarantined server %d in pool %s", id, service)
	}
	if _, err := srv.Apply(pool.cfg); err != nil {
		return fmt.Errorf("fleet: repair of %s/%d failed: %w", service, id, err)
	}
	delete(pool.quar, id)
	at := sort.SearchInts(pool.ids, id)
	pool.ids = append(pool.ids, 0)
	copy(pool.ids[at+1:], pool.ids[at:])
	pool.ids[at] = id
	pool.servers = append(pool.servers, nil)
	copy(pool.servers[at+1:], pool.servers[at:])
	pool.servers[at] = srv
	mRepairs.Inc()
	return nil
}

// rollback restores the prior configuration on the first n servers of
// the pool — everything a failed rollout may have touched — and
// returns how many servers it reconfigured. The rollback path is
// break-glass: it does not consult the fault injector, so the pool
// always converges back to its prior state.
func (f *Fleet) rollback(pool *Pool, prev knob.Config, n int, r *Rollout) int {
	mRollbacks.Inc()
	restored := 0
	for _, srv := range pool.servers[:n] {
		if srv.Config() == prev {
			continue
		}
		if _, err := srv.Apply(prev); err == nil {
			restored++
		}
	}
	r.RolledBack = true
	mRollbackServers.Add(float64(restored))
	return restored
}

// recordRollout publishes one completed rollout's per-machine event
// counts to the telemetry registry.
func recordRollout(r Rollout) {
	mRollouts.Inc()
	mRolloutServers.Add(float64(r.Servers))
	mRolloutReboots.Add(float64(r.Rebooted))
	mRolloutWaves.Add(float64(r.Waves))
}

// Redeploy moves n servers from one pool to another, reconfiguring
// them to the destination's soft SKU — the hardware-fungibility story
// that motivates soft SKUs over custom silicon (§1, §3). Both pools
// must run the same hardware SKU; that is the whole point of limiting
// platform diversity.
func (f *Fleet) Redeploy(from, to string, n int) (Rollout, error) {
	src, err := f.Pool(from)
	if err != nil {
		return Rollout{}, err
	}
	dst, err := f.Pool(to)
	if err != nil {
		return Rollout{}, err
	}
	if src.SKU.Name != dst.SKU.Name {
		return Rollout{}, fmt.Errorf(
			"fleet: cannot redeploy across SKUs (%s -> %s); fungibility requires identical hardware",
			src.SKU.Name, dst.SKU.Name)
	}
	if n < 1 || n >= src.Size() {
		return Rollout{}, fmt.Errorf("fleet: cannot move %d of %d servers from %s", n, src.Size(), from)
	}
	moved := src.servers[src.Size()-n:]
	// Validate the destination's config against every moved server's own
	// SKU before mutating either pool: SKU structs are mutable, so two
	// pools with the same SKU name can still disagree on limits, and a
	// half-moved batch would leave both pools in a mixed state.
	for _, srv := range moved {
		if err := srv.SKU().Validate(dst.cfg); err != nil {
			return Rollout{}, fmt.Errorf("fleet: redeploy %s -> %s: destination config invalid for moved server: %w",
				from, to, err)
		}
	}
	r := Rollout{Servers: n, MaxUnavail: n, Waves: 1}
	src.servers = src.servers[:src.Size()-n]
	src.ids = src.ids[:len(src.ids)-n]
	for _, srv := range moved {
		rebooted, err := srv.Apply(dst.cfg)
		if err != nil {
			return r, err
		}
		if rebooted {
			r.Rebooted++
		}
	}
	r.WaveRebooted = []int{r.Rebooted}
	dst.servers = append(dst.servers, moved...)
	// Moved servers get fresh ids in the destination's namespace; per-pool
	// ids must stay unique and ascending for canonical rollout order.
	for range moved {
		dst.ids = append(dst.ids, dst.nextID)
		dst.nextID++
	}
	mRedeploys.Inc()
	mRedeployServers.Add(float64(n))
	mRolloutReboots.Add(float64(r.Rebooted))
	return r, nil
}

// PoolThroughput returns the pool's aggregate peak throughput (QPS)
// under its current configuration.
func (f *Fleet) PoolThroughput(service string, seed uint64) (float64, error) {
	pool, err := f.Pool(service)
	if err != nil {
		return 0, err
	}
	srv, err := platform.NewServer(pool.SKU, pool.cfg)
	if err != nil {
		return 0, err
	}
	m, err := sim.NewMachine(srv, pool.Service, seed)
	if err != nil {
		return 0, err
	}
	return m.SolvePeak().QPS * float64(pool.Size()), nil
}

// CapacitySavings converts a soft SKU's throughput gain into the
// provisioning reduction at a given pool size: the servers no longer
// needed to serve the same aggregate load ("achieving even
// single-digit percent speedups can yield immense aggregate data
// center efficiency benefits", §6.2).
func CapacitySavings(servers int, gainPct float64) int {
	if gainPct <= 0 || servers < 1 {
		return 0
	}
	needed := int(math.Ceil(float64(servers) / (1 + gainPct/100)))
	return servers - needed
}
