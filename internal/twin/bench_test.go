package twin

import (
	"testing"

	"softsku/internal/sim"
)

// BenchmarkTwinPredict prices one full analytical prediction — span
// construction, cache/TLB allocation, and the simulator's own queueing
// solve on the predicted rates — rotating across the studied design
// space so per-config memoization (address-space layouts) reflects
// steady-state search use. This is the ladder's cheap rung: the number
// to compare against is the ~10^9 ns a fresh characterization window
// costs (BENCH_search.json ns_per_op / windows_per_op).
func BenchmarkTwinPredict(b *testing.B) {
	sku, prof := pairFor(b, "Web")
	m := NewModel(sku, prof)
	cfgs := variants(sku, prof)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(cfgs[i%len(cfgs)], prof.MaxCPUUtil)
	}
}

// BenchmarkTwinScore prices one ladder answer through the calibrated
// evaluator — the call the search layer makes per candidate arm. The
// simcache stays cold here, so every answer comes from the twin rung
// (worst case; cached-rung answers skip the model entirely).
func BenchmarkTwinScore(b *testing.B) {
	sim.ResetCharacterizationCache()
	sku, prof := pairFor(b, "Web")
	ev := NewEvaluator(sku, prof, 1, prof.MaxCPUUtil, MetricFor("mips"))
	if err := ev.Calibrate(); err != nil {
		b.Fatal(err)
	}
	sim.ResetCharacterizationCache() // drop the calibration anchors: force the twin rung
	cfgs := variants(sku, prof)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := ev.Score(cfgs[i%len(cfgs)]); !ok {
			b.Fatal("ladder could not answer")
		}
	}
}
