package twin

import (
	"math"
	"sort"
	"sync"
	"testing"

	"softsku/internal/knob"
	"softsku/internal/platform"
	"softsku/internal/sim"
	"softsku/internal/workload"
)

const testSeed = 1234

func pairFor(t testing.TB, svc string) (*platform.SKU, *workload.Profile) {
	t.Helper()
	base, err := workload.ByName(svc)
	if err != nil {
		t.Fatal(err)
	}
	prof := workload.ForPlatform(base, base.Platform)
	sku, err := platform.ByName(base.Platform)
	if err != nil {
		t.Fatal(err)
	}
	return sku, prof
}

// realMetric measures the simulator's ground truth for a config.
func realMetric(t testing.TB, sku *platform.SKU, prof *workload.Profile, cfg knob.Config, metric func(sim.Operating) float64) float64 {
	t.Helper()
	srv, err := platform.NewServer(sku, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.NewMachine(srv, prof, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	return metric(m.Solve(prof.MaxCPUUtil))
}

// variants builds the knob neighbourhood a search actually explores:
// THP modes, SHP reservations, prefetch masks, core frequencies.
func variants(sku *platform.SKU, prof *workload.Profile) []knob.Config {
	base := sim.ProductionConfig(sku, prof)
	var out []knob.Config
	for _, thp := range []knob.THPMode{knob.THPMadvise, knob.THPAlways, knob.THPNever} {
		c := base
		c.THP = thp
		out = append(out, c)
	}
	for _, shp := range []int{0, 300, 600} {
		c := base
		c.SHPCount = shp
		out = append(out, c)
	}
	for _, pf := range knob.StudiedPrefetchConfigs() {
		c := base
		c.Prefetch = pf
		out = append(out, c)
	}
	for _, mhz := range []int{sku.MinCoreMHz, sku.MaxCoreMHz} {
		c := base
		c.CoreFreqMHz = mhz
		out = append(out, c)
	}
	return out
}

// TestTwinAccuracy pins the tentpole acceptance bound: after the
// two-anchor calibration, the twin's median prediction error across the
// knob neighbourhood every service's search explores stays within 10%,
// for each optimization metric.
func TestTwinAccuracy(t *testing.T) {
	for _, svc := range []string{"Web", "Feed1", "Feed2", "Ads1", "Ads2", "Cache1", "Cache2"} {
		svc := svc
		t.Run(svc, func(t *testing.T) {
			sku, prof := pairFor(t, svc)
			ev := NewEvaluator(sku, prof, testSeed, prof.MaxCPUUtil, MetricFor("mips"))
			if err := ev.Calibrate(); err != nil {
				t.Fatal(err)
			}
			alpha, beta := ev.Coefficients()
			var errs []float64
			worst := 0.0
			for _, cfg := range variants(sku, prof) {
				if sku.Validate(cfg) != nil {
					continue
				}
				truth := realMetric(t, sku, prof, cfg, MetricFor("mips"))
				pred := alpha*ev.raw(cfg) + beta
				e := math.Abs(pred-truth) / truth * 100
				errs = append(errs, e)
				if e > worst {
					worst = e
				}
			}
			sort.Float64s(errs)
			med := errs[len(errs)/2]
			t.Logf("%s: alpha=%.4f beta=%.1f median=%.2f%% worst=%.2f%% n=%d",
				svc, alpha, beta, med, worst, len(errs))
			if med > 10 {
				t.Errorf("%s median twin error %.2f%% > 10%%", svc, med)
			}
		})
	}
}

// TestTwinRelativeOrdering checks what pruning actually relies on: when
// the twin says a candidate is far worse than the control, the
// simulator agrees about the direction. Margin here mirrors the twin
// rung's pruning margin.
func TestTwinRelativeOrdering(t *testing.T) {
	sku, prof := pairFor(t, "Web")
	ev := NewEvaluator(sku, prof, testSeed, prof.MaxCPUUtil, MetricFor("mips"))
	if err := ev.Calibrate(); err != nil {
		t.Fatal(err)
	}
	ctrl := sim.ProductionConfig(sku, prof)
	ctrlPred, _, ok := ev.Score(ctrl)
	if !ok {
		t.Fatal("control score unavailable")
	}
	ctrlReal := realMetric(t, sku, prof, ctrl, MetricFor("mips"))
	margin := ev.Margin(RungTwin)
	for _, cfg := range variants(sku, prof) {
		if sku.Validate(cfg) != nil {
			continue
		}
		pred, rung, ok := ev.Score(cfg)
		if !ok {
			t.Fatalf("no score for %s", cfg)
		}
		predDelta := (pred - ctrlPred) / ctrlPred * 100
		if predDelta >= -math.Max(margin, ev.Margin(rung)) {
			continue // would not be pruned
		}
		realDelta := (realMetric(t, sku, prof, cfg, MetricFor("mips")) - ctrlReal) / ctrlReal * 100
		if realDelta > 0.5 {
			t.Errorf("twin would prune %s (pred %+.2f%%) but simulator says %+.2f%%",
				cfg, predDelta, realDelta)
		}
	}
}

// TestCalibrationDeterminism is the satellite-3 guarantee: the fitted
// coefficients are a pure function of (SKU, profile, seed, metric) —
// bit-identical whether calibration runs alone or races eight
// concurrent evaluators, and unaffected by chaos injection being armed
// (calibration never touches the fault plane).
func TestCalibrationDeterminism(t *testing.T) {
	sku, prof := pairFor(t, "Web")
	calibrate := func() (float64, float64) {
		ev := NewEvaluator(sku, prof, testSeed, prof.MaxCPUUtil, MetricFor("mips"))
		if err := ev.Calibrate(); err != nil {
			t.Error(err)
			return 0, 0
		}
		return ev.Coefficients()
	}
	a0, b0 := calibrate()

	// Eight concurrent calibrations (as -parallel 8 would interleave
	// window measurement through the shared simcache).
	var wg sync.WaitGroup
	as := make([]float64, 8)
	bs := make([]float64, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			as[i], bs[i] = calibrate()
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		if as[i] != a0 || bs[i] != b0 {
			t.Fatalf("parallel calibration %d diverged: (%v,%v) != (%v,%v)", i, as[i], bs[i], a0, b0)
		}
	}

	// And again after dropping every cached window: a cold cache must
	// reproduce the same windows, hence the same fit.
	sim.ResetCharacterizationCache()
	a1, b1 := calibrate()
	if a1 != a0 || b1 != b0 {
		t.Fatalf("cold-cache calibration diverged: (%v,%v) != (%v,%v)", a1, b1, a0, b0)
	}
}

// TestLadderRungs exercises the fidelity ladder order: before any
// window runs the twin answers from its model; once the exact window
// is in the simcache the cached rung takes over and the score becomes
// exact.
func TestLadderRungs(t *testing.T) {
	sku, prof := pairFor(t, "Feed2")
	ev := NewEvaluator(sku, prof, testSeed, prof.MaxCPUUtil, MetricFor("mips"))
	cfg := sim.ProductionConfig(sku, prof)
	cfg.SHPCount = 500 // a config no other test measures at this seed

	if _, _, ok := ev.Score(cfg); ok {
		t.Fatal("uncalibrated evaluator with no cached window must not score")
	}
	if err := ev.Calibrate(); err != nil {
		t.Fatal(err)
	}
	_, rung, ok := ev.Score(cfg)
	if !ok || rung != RungTwin {
		t.Fatalf("expected twin rung before measurement, got %q ok=%v", rung, ok)
	}

	truth := realMetric(t, sku, prof, cfg, MetricFor("mips")) // enters the simcache
	got, rung, ok := ev.Score(cfg)
	if !ok || rung != RungCached {
		t.Fatalf("expected cached rung after measurement, got %q ok=%v", rung, ok)
	}
	if math.Abs(got-truth)/truth > 1e-9 {
		t.Fatalf("cached rung not exact: %v vs %v", got, truth)
	}
	if ev.Margin(RungCached) >= ev.Margin(RungTwin) {
		t.Fatal("cached rung must need a smaller pruning margin than the twin rung")
	}

	ev.CrossCheck(cfg)
	ev.CrossCheck(cfg) // second check of the same config is a no-op
	if n := len(ev.Errors()); n != 1 {
		t.Fatalf("cross-check count = %d, want 1", n)
	}
	if med := ev.MedianAbsErrPct(); med < 0 {
		t.Fatalf("median error unavailable after cross-check: %v", med)
	}
}
