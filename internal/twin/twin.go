// Package twin is the analytical digital twin of the discrete-event
// characterization pipeline (ROADMAP item 4, DESIGN.md §16): a
// closed-form model that predicts sim.Characterize's per-window rates —
// cache/TLB miss mix, memory traffic, context switches — directly from
// the knob configuration, the SKU's cache/TLB geometry, and the
// workload profile's span mix, in microseconds and with no event loop.
// Predicted rates are priced through the *identical* cycle-accounting
// and queueing fixed point the simulator uses (sim.SolveRates), so any
// twin-vs-simulator divergence comes from the predicted counts alone.
//
// The model is deliberately first-order: every access class the stream
// generator produces (tiered shared heap, strided streams, per-core
// private state, stack, tiered code fetch) becomes a uniform span of
// (rate, bytes), and each cache level keeps the densest spans — the
// closed-form stand-in for steady-state LRU. Residual error is absorbed
// by a per-(SKU, Profile) least-squares calibration against two real
// windows (evaluator.go) and continuously cross-checked against every
// real window the tuner measures.
package twin

import (
	"math"
	"sort"

	"softsku/internal/knob"
	"softsku/internal/platform"
	"softsku/internal/sim"
	"softsku/internal/tlb"
	"softsku/internal/workload"
)

// Model predicts characterization windows for one (SKU, Profile) pair.
// It is cheap to construct and Rates is pure arithmetic over ~20 spans;
// the only non-trivial state is the memoized huge-page layout per
// (THP, SHP) combination. Not safe for concurrent use — the search
// layer only calls it from serial phases (DESIGN.md §16).
type Model struct {
	sku    *platform.SKU
	prof   *workload.Profile
	layout workload.Layout

	spaces map[spaceKey]*spaceInfo
}

type spaceKey struct {
	thp knob.THPMode
	shp int
}

// spaceInfo caches what the twin needs from tlb.NewAddressSpace for one
// huge-page configuration: per-region huge coverage and the wasted SHP
// reservation.
type spaceInfo struct {
	hf        []float64 // huge fraction per layout region
	wastedMiB float64
}

// NewModel builds the analytical twin for a SKU/profile pair. The
// profile should already be platform-adjusted (workload.ForPlatform),
// exactly as handed to sim.NewMachine.
func NewModel(sku *platform.SKU, prof *workload.Profile) *Model {
	return &Model{
		sku:    sku,
		prof:   prof,
		layout: prof.BuildLayout(),
		spaces: make(map[spaceKey]*spaceInfo),
	}
}

// space returns the memoized huge-page layout for a configuration. The
// AddressSpace itself replays the kernel's SHP/THP materialization
// (hugepage.go), so the twin's huge fractions are exact, not modelled.
func (m *Model) space(cfg knob.Config) *spaceInfo {
	key := spaceKey{thp: cfg.THP, shp: cfg.SHPCount}
	if s, ok := m.spaces[key]; ok {
		return s
	}
	s := &spaceInfo{hf: make([]float64, len(m.layout.Regions))}
	as, err := tlb.NewAddressSpace(m.layout.Regions, cfg.THP, cfg.SHPCount)
	if err == nil {
		for i := range m.layout.Regions {
			s.hf[i] = as.HugeFraction(i)
		}
		s.wastedMiB = float64(as.WastedSHPMiB())
	}
	m.spaces[key] = s
	return s
}

// span is one access class: rate accesses per instruction spread
// uniformly over bytes of unique address space (as one thread sees
// it). llcRate/llcBytes are the fleet-wide aggregates that compete for
// the shared LLC: shared spans appear once, per-thread private spans
// and per-pool code spans with their replica count folded in.
type span struct {
	rate     float64
	bytes    float64
	llcRate  float64
	llcBytes float64
	code     bool
	store    float64 // store fraction of the span's accesses
	seq      bool    // strided stream: prefetchable, page-local

	hf      float64 // huge-page fraction of the span's backing
	entries float64 // STLB entries its page set needs
	seqWalk float64 // seq spans: recency-bound walk probability
}

// segment is one disjoint byte range of a tiered footprint with the
// access rate the nested-tier mixture deposits into it.
type segment struct{ a, b, rate float64 }

// segments cuts a nested-tier access distribution ("Frac of accesses
// uniform over the first Bytes") into disjoint ranges. extraCut adds a
// boundary (the SHP slab edge) so each segment has homogeneous backing.
func segments(tiers []workload.Tier, total uint64, rate float64, extraCut uint64) []segment {
	bounds := []float64{float64(total)}
	for _, t := range tiers {
		if t.Frac > 0 && t.Bytes > 0 && t.Bytes < total {
			bounds = append(bounds, float64(t.Bytes))
		}
	}
	if extraCut > 0 && extraCut < total {
		bounds = append(bounds, float64(extraCut))
	}
	sort.Float64s(bounds)
	// The remainder tier spreads whatever the named tiers leave over the
	// whole footprint.
	rest := 1.0
	for _, t := range tiers {
		if t.Frac > 0 && t.Bytes > 0 {
			rest -= t.Frac
		}
	}
	if rest < 0 {
		rest = 0
	}
	all := append(append([]workload.Tier(nil), tiers...), workload.Tier{Frac: rest, Bytes: total})
	var segs []segment
	a := 0.0
	for _, b := range bounds {
		if b <= a {
			continue
		}
		r := 0.0
		for _, t := range all {
			if t.Frac > 0 && t.Bytes > 0 && float64(t.Bytes) >= b {
				r += t.Frac * (b - a) / float64(t.Bytes)
			}
		}
		segs = append(segs, segment{a: a, b: b, rate: r * rate})
		a = b
	}
	return segs
}

// dataBacking resolves a byte range of the combined data footprint into
// its huge fraction and STLB entry demand, honoring the slab/heap
// overlay (stream.go MapDataOffset): offsets below SHPHeap live in the
// page-scattered SHP slab, the rest in the (contiguous) heap.
func (m *Model) dataBacking(sp *spaceInfo, a, b float64) (hf, entries float64) {
	p := m.prof
	slabEnd := float64(p.SHPHeap)
	slabBytes := math.Max(0, math.Min(b, slabEnd)-a)
	heapBytes := (b - a) - slabBytes
	var hfSlab, hfHeap float64
	if m.layout.SHPHeap >= 0 {
		hfSlab = sp.hf[m.layout.SHPHeap]
	}
	hfHeap = sp.hf[m.layout.Heap]
	if b-a > 0 {
		hf = (slabBytes*hfSlab + heapBytes*hfHeap) / (b - a)
	}
	// 4 KiB entries: one per small page. 2 MiB entries: the heap's huge
	// prefix is contiguous (bytes/2M chunks); the slab scatters pages
	// uniformly, so a small range touches ~one distinct chunk per page
	// until the slab's huge chunks saturate.
	entries = (slabBytes*(1-hfSlab) + heapBytes*(1-hfHeap)) / tlb.PageSize4K
	entries += heapBytes * hfHeap / tlb.PageSize2M
	if hfSlab > 0 {
		slabChunks := math.Ceil(float64(p.SHPHeap) / tlb.PageSize2M)
		entries += math.Min(slabBytes*hfSlab/tlb.PageSize4K, slabChunks*hfSlab)
	}
	return hf, entries
}

// codeBacking resolves a byte range of one text pool: JIT code caches
// scatter lines across the region at page granularity (MapCodeLine), so
// small hot tiers land on random pages whose huge coverage equals the
// region's overall fraction; file-backed text is contiguous and never
// huge.
func (m *Model) codeBacking(sp *spaceInfo, a, b float64) (hf, entries float64) {
	hf = sp.hf[m.layout.Text[0]]
	bytes := b - a
	entries = bytes * (1 - hf) / tlb.PageSize4K
	if hf > 0 {
		regionChunks := math.Ceil(float64(m.prof.CodeFootprint) / tlb.PageSize2M)
		scatter := math.Min(bytes*hf/tlb.PageSize4K, regionChunks*hf)
		if m.layout.CodePerm == nil {
			scatter = bytes * hf / tlb.PageSize2M
		}
		entries += scatter
	}
	return hf, entries
}

// seqCoverage maps the prefetcher mask onto the fraction of new-line
// strided-stream accesses the hardware covers ahead of demand, and
// whether covered lines land in L1 (DCU/DCU-IP) or L2 (stream
// prefetcher). The IP-stride prefetcher locks onto the generator's
// stable per-stream IPs; the L2 streamer tracks its page-local
// forward walk; plain DCU next-line covers about half of a sub-line
// strided walk. Adjacent-line adds a small bonus on top.
func seqCoverage(pf knob.PrefetchMask) (cov float64, fillL1 bool) {
	switch {
	case pf.Has(knob.PrefetchDCUIP):
		cov, fillL1 = 0.85, true
	case pf.Has(knob.PrefetchL2HW):
		cov, fillL1 = 0.80, false
	case pf.Has(knob.PrefetchDCU):
		cov, fillL1 = 0.50, true
	}
	if cov > 0 && pf.Has(knob.PrefetchL2Adj) {
		cov = math.Min(cov+0.05, 0.95)
	}
	return cov, fillL1
}

// alloc distributes capacity bytes over spans hottest-first by access
// density — the closed-form stand-in for steady-state LRU, which keeps
// whatever delivers the most hits per byte. rates and bytes are
// parallel; the returned slice holds each span's resident fraction.
// The sort is stable on exact float comparisons, so the allocation is
// bit-deterministic.
func alloc(rates, bytes []float64, capacity float64) []float64 {
	idx := make([]int, len(rates))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		i, j := idx[x], idx[y]
		di, dj := 0.0, 0.0
		if bytes[i] > 0 {
			di = rates[i] / bytes[i]
		}
		if bytes[j] > 0 {
			dj = rates[j] / bytes[j]
		}
		return di > dj
	})
	res := make([]float64, len(rates))
	for _, i := range idx {
		if capacity <= 0 {
			break
		}
		if bytes[i] <= 0 {
			continue
		}
		take := math.Min(bytes[i], capacity)
		res[i] = take / bytes[i]
		capacity -= take
	}
	return res
}

// Rates predicts the characterization window sim.Characterize would
// measure under cfg: per-instruction cache/TLB/memory event counts with
// the same denominators (window instruction count, thread count,
// context-switch schedule) as measure().
func (m *Model) Rates(cfg knob.Config) *sim.WindowRates {
	prof, sku := m.prof, m.sku
	sp := m.space(cfg)
	nthreads := sim.WindowThreads(cfg.Cores)
	instr := sim.WindowInstructions(cfg.Cores)
	f := float64(instr)
	coreScale := float64(cfg.Cores) / float64(nthreads)
	mix := prof.Mix.Normalize()

	// ---- Access-class rates (events per instruction; identical for
	// every thread, so per-instruction rates are also window-wide). ----
	fetchRate := 1.0 / 8 // one I-cache line access per fetch group
	dataRate := mix.Load + mix.Store
	storeBase := 0.0
	if dataRate > 0 {
		storeBase = mix.Store / dataRate
	}
	rStack := dataRate * prof.StackFrac
	rSeq := dataRate * (1 - prof.StackFrac) * prof.DataSeqFrac
	rPriv := dataRate * (1 - prof.StackFrac) * (1 - prof.DataSeqFrac) * prof.PrivateFrac
	rTier := dataRate * (1 - prof.StackFrac) * (1 - prof.DataSeqFrac) * (1 - prof.PrivateFrac)

	var spans []span

	// Tiered shared heap, cut into disjoint segments (and at the SHP
	// slab edge so each segment has one backing).
	dTiers := []workload.Tier{prof.DataHot, prof.DataMid, prof.DataWarm}
	for _, sg := range segments(dTiers, prof.DataFootprint, rTier, prof.SHPHeap) {
		hf, entries := m.dataBacking(sp, sg.a, sg.b)
		spans = append(spans, span{
			rate: sg.rate, bytes: sg.b - sg.a,
			llcRate: sg.rate, llcBytes: sg.b - sg.a,
			store: storeBase, hf: hf, entries: entries,
		})
	}

	// Stack: a handful of hot lines, one page; shared region.
	spans = append(spans, span{
		rate: rStack, bytes: 64 * 64,
		llcRate: rStack, llcBytes: 64 * 64,
		store: storeBase, entries: 1,
	})

	// Strided streams. Sub-line strides revisit the current line
	// (intra-line reuse, an L1 hit by construction); line-crossing steps
	// walk the SeqSpan — prefetchable, page-local, far too large to
	// cache. TLB behaviour is recency-bound: one possible walk per page
	// crossing, never capacity-bound.
	if rSeq > 0 && prof.SeqSpan > 0 {
		stride := float64(prof.SeqStride)
		newLine := math.Min(1, stride/64)
		reuse := rSeq * (1 - newLine)
		if reuse > 0 {
			spans = append(spans, span{
				rate: reuse, bytes: 4 * 64,
				llcRate: reuse, llcBytes: 4 * 64,
				store: storeBase, entries: 1,
			})
		}
		seqBytes := float64(prof.SeqSpan)
		hf, entries := m.dataBacking(sp, 0, seqBytes)
		walk := (1-hf)*math.Min(1, stride/tlb.PageSize4K) + hf*(stride/tlb.PageSize2M)
		spans = append(spans, span{
			rate: rSeq * newLine, bytes: seqBytes,
			llcRate: rSeq * newLine, llcBytes: seqBytes,
			store: storeBase, seq: true,
			hf: hf, entries: entries, seqWalk: walk,
		})
	}

	// Per-core private request state: disjoint per thread, scaled so
	// each sim thread stands in for coreScale real cores. Freshly
	// allocated state is written before it is read (store-heavy).
	if rPriv > 0 && prof.PrivateBytes > 0 {
		pbase, pspan := workload.PrivateSpan(prof, 0, coreScale)
		hf, entries := m.dataBacking(sp, float64(pbase), float64(pbase+pspan))
		spans = append(spans, span{
			rate: rPriv, bytes: float64(pspan),
			llcRate: rPriv, llcBytes: float64(pspan) * float64(nthreads),
			store: 0.65 + 0.35*storeBase, hf: hf, entries: entries,
		})
	}

	// Tiered code fetch. Threads spread across the profile's code pools;
	// each pool's text is a distinct region, so the LLC sees poolsUsed
	// replicas of every segment.
	poolsUsed := prof.CodePools
	if nthreads < poolsUsed {
		poolsUsed = nthreads
	}
	cTiers := []workload.Tier{prof.CodeHot, prof.CodeMid, prof.CodeWarm}
	for _, sg := range segments(cTiers, prof.CodeFootprint, fetchRate, 0) {
		hf, entries := m.codeBacking(sp, sg.a, sg.b)
		spans = append(spans, span{
			rate: sg.rate, bytes: sg.b - sg.a,
			llcRate: sg.rate, llcBytes: (sg.b - sg.a) * float64(poolsUsed),
			code: true, hf: hf, entries: entries,
		})
	}

	// ---- Prefetch: peel covered strided-stream traffic off the demand
	// path before the cache ladder sees it. ----
	cov, fillL1 := seqCoverage(cfg.Prefetch)
	var covRate, covStore float64
	for i := range spans {
		if spans[i].seq && cov > 0 {
			covRate = spans[i].rate * cov
			covStore = spans[i].store
			spans[i].rate *= 1 - cov
			spans[i].llcRate *= 1 - cov
		}
	}

	// ---- Cache ladder: greedy density allocation at each capacity. ----
	n := len(spans)
	rates := make([]float64, n)
	sizes := make([]float64, n)
	codeRates := make([]float64, n)
	dataRates := make([]float64, n)
	llcRates := make([]float64, n)
	llcSizes := make([]float64, n)
	for i, s := range spans {
		rates[i], sizes[i] = s.rate, s.bytes
		llcRates[i], llcSizes[i] = s.llcRate, s.llcBytes
		if s.code {
			codeRates[i] = s.rate
		} else {
			dataRates[i] = s.rate
		}
	}
	resL1I := alloc(codeRates, sizes, float64(sku.L1I))
	resL1D := alloc(dataRates, sizes, float64(sku.L1D))
	resL2 := alloc(rates, sizes, float64(sku.L1I+sku.L1D+sku.L2))

	totalLLC := float64(sku.LLC * sku.Sockets)
	var resLLC []float64
	if cfg.CDP.Enabled() && sku.LLCWays > 0 {
		codeCap := totalLLC * float64(cfg.CDP.CodeWays) / float64(sku.LLCWays)
		dataCap := totalLLC * float64(cfg.CDP.DataWays) / float64(sku.LLCWays)
		llcCode := make([]float64, n)
		llcData := make([]float64, n)
		for i, s := range spans {
			if s.code {
				llcCode[i] = s.llcRate
			} else {
				llcData[i] = s.llcRate
			}
		}
		rc := alloc(llcCode, llcSizes, codeCap)
		rd := alloc(llcData, llcSizes, dataCap)
		resLLC = make([]float64, n)
		for i := range resLLC {
			resLLC[i] = rc[i] + rd[i]
		}
	} else {
		resLLC = alloc(llcRates, llcSizes, totalLLC)
	}

	// ---- STLB: one greedy allocation of the unified second-level TLB
	// over every span's page set (walks are charged only on STLB misses,
	// tlb.go). Seq spans churn entries but are recency-bound themselves.
	tlbRates := make([]float64, n)
	tlbEntries := make([]float64, n)
	for i, s := range spans {
		tlbRates[i] = s.rate
		if s.seq {
			// Covered prefetch traffic still translates on the demand side.
			tlbRates[i] += covRate
		}
		tlbEntries[i] = s.entries
	}
	resSTLB := alloc(tlbRates, tlbEntries, float64(sku.STLB))

	r := &sim.WindowRates{Instructions: instr}
	c := &r.Counts
	c.Instructions = instr
	c.Branches = uint64(f * mix.Branch)
	c.Mispredicts = uint64(float64(c.Branches) * prof.BranchMispredict)

	var codeL2, codeLLC, codeMem float64
	var dataL2, dataLLC, dataMem float64
	var storeL2, storeLLC, storeMem float64
	var itlbWalks, dtlbWalks float64
	var prefetchMem float64

	for i, s := range spans {
		h1 := resL1D[i]
		if s.code {
			h1 = resL1I[i]
		}
		h2 := math.Max(resL2[i], h1)
		h3 := math.Max(resLLC[i], h2)
		acc := s.rate * f
		atL2, atLLC, atMem := acc*(h2-h1), acc*(h3-h2), acc*(1-h3)
		if s.code {
			codeL2 += atL2
			codeLLC += atLLC
			codeMem += atMem
		} else {
			dataL2 += atL2 * (1 - s.store)
			dataLLC += atLLC * (1 - s.store)
			dataMem += atMem * (1 - s.store)
			storeL2 += atL2 * s.store
			storeLLC += atLLC * s.store
			storeMem += atMem * s.store
		}
		// TLB walks: capacity-bound for random spans, recency-bound for
		// strided streams (one possible walk per page crossing).
		var walkProb float64
		if s.seq {
			walkProb = s.seqWalk
		} else {
			walkProb = 1 - resSTLB[i]
		}
		walks := s.rate * f * walkProb
		if s.code {
			itlbWalks += walks
		} else {
			dtlbWalks += walks
		}
		if s.seq && covRate > 0 {
			// Covered lines the LLC doesn't hold are fetched from DRAM by
			// the prefetcher; the demand access then hits L1 or L2.
			prefetchMem += covRate * (1 - h3)
			cAcc := covRate * f
			if !fillL1 {
				dataL2 += cAcc * (1 - covStore)
				storeL2 += cAcc * covStore
			}
			// Covered accesses still translate: same walk probability.
			dtlbWalks += cAcc * walkProb
		}
	}

	c.CodeL2, c.CodeLLC, c.CodeMem = uint64(codeL2), uint64(codeLLC), uint64(codeMem)
	c.DataL2, c.DataLLC, c.DataMem = uint64(dataL2), uint64(dataLLC), uint64(dataMem)
	c.StoreL2, c.StoreLLC, c.StoreMem = uint64(storeL2), uint64(storeLLC), uint64(storeMem)
	const walkCycles = 30
	c.ITLBWalkCycles = uint64(itlbWalks * walkCycles)
	c.DTLBWalkCycles = uint64(dtlbWalks * walkCycles)

	// SHP over-reservation pressure: wasted MiB become cold data misses,
	// exactly as measure() charges them.
	extra := uint64(f * sp.wastedMiB * sim.SHPPressureMissPerMiB)
	c.DataMem += extra

	r.CtxSwitches = sim.PredictCtxSwitches(cfg.Cores, cfg.CoreFreqMHz, prof.CtxSwitchRate)
	r.DemandMemPerInstr = (codeMem + dataMem + storeMem + float64(extra)) / f
	r.PrefetchMemPerInstr = prefetchMem
	return r
}

// Prediction is one twin evaluation: the full operating point from the
// shared bandwidth↔latency fixed point, plus an M/G/1-style tail
// proxy — service time stretched by the utilization headroom's
// exponential tail (ln(100) ≈ 4.605 for the 99th percentile), the same
// queueing approximation the EMON panel reports.
type Prediction struct {
	Op  sim.Operating
	P99 float64 // seconds
}

// Predict prices the predicted window rates through sim.SolveRates at
// the given utilization and derives the queueing tail proxy.
func (m *Model) Predict(cfg knob.Config, util float64) Prediction {
	op := sim.SolveRates(m.sku, m.prof, cfg, m.Rates(cfg), util)
	svc := 0.0
	if op.CoreIPS > 0 {
		svc = m.prof.PathLength / op.CoreIPS
	}
	head := math.Max(1-op.Util, 0.02)
	return Prediction{Op: op, P99: svc / head * math.Log(100)}
}
