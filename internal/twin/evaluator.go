package twin

import (
	"fmt"
	"sort"

	"softsku/internal/knob"
	"softsku/internal/platform"
	"softsku/internal/sim"
	"softsku/internal/telemetry"
	"softsku/internal/workload"
)

// Twin telemetry: how often each rung of the tiered-fidelity ladder
// answered, and the continuous cross-check of twin predictions against
// every real window the tuner measures (DESIGN.md §16). The error
// histogram is the twin's health signal — a drifting tail means the
// model no longer matches the simulator and pruning margins are stale.
var (
	mTwinScores = telemetry.Default.Counter("softsku_twin_scores_total",
		"Candidate scores served by the analytical twin rung.")
	mTwinCacheScores = telemetry.Default.Counter("softsku_twin_cache_scores_total",
		"Candidate scores served by the simcache-hit rung (exact, no window).")
	mTwinCrossChecks = telemetry.Default.Counter("softsku_twin_crosschecks_total",
		"Twin predictions compared against a measured window.")
	mTwinAbsErr = telemetry.Default.Histogram("softsku_twin_abs_err_pct",
		"Absolute twin prediction error vs the measured window, percent.")
)

// Ladder rungs, lowest fidelity first. Prune margins widen as fidelity
// drops: a simcache hit reprices exact measured rates (error is noise
// only), while the analytical twin carries model error and needs real
// headroom before its word is taken.
const (
	RungTwin   = "twin"
	RungCached = "cached"
)

// Evaluator is the tiered-fidelity ladder for one tuning run: it scores
// candidate configurations without running characterization windows,
// answering from the cheapest rung that can — the calibrated analytical
// twin, or an exact repricing of a window the process-wide simcache
// already holds. It satisfies the search layer's core.Evaluator
// interface structurally; twin never imports core.
//
// Not safe for concurrent use. The search layer calls it only from
// serial phases (spec building, post-merge), which is also what makes
// its answers independent of -parallel: the simcache's contents at
// those points are fixed by the round structure, not by worker
// scheduling.
type Evaluator struct {
	sku    *platform.SKU
	prof   *workload.Profile
	seed   uint64
	util   float64
	metric func(sim.Operating) float64

	model *Model

	alpha, beta float64
	calibrated  bool

	checked map[string]bool
	errs    []float64
}

// NewEvaluator builds the ladder for a (SKU, profile) pair at the run's
// workload seed. metric extracts the scalar under optimization from an
// operating point (the same scalar the A/B trials sample); util is the
// utilization every prediction is priced at.
func NewEvaluator(sku *platform.SKU, prof *workload.Profile, seed uint64, util float64, metric func(sim.Operating) float64) *Evaluator {
	return &Evaluator{
		sku:     sku,
		prof:    prof,
		seed:    seed,
		util:    util,
		metric:  metric,
		model:   NewModel(sku, prof),
		checked: make(map[string]bool),
	}
}

// raw returns the uncalibrated twin metric for a configuration.
func (e *Evaluator) raw(cfg knob.Config) float64 {
	return e.metric(e.model.Predict(cfg, e.util).Op)
}

// exact reprices already-measured window rates through the simulator's
// own solve — zero model error, zero windows.
func (e *Evaluator) exact(r *sim.WindowRates, cfg knob.Config) float64 {
	return e.metric(sim.SolveRates(e.sku, e.prof, cfg, r, e.util))
}

// Calibrate fits the twin's affine residual correction y = α·x + β
// against real windows for the production and stock configurations —
// the two anchors every tuning run measures anyway (round-one control
// and the final validations), so calibration adds zero net windows: the
// windows it runs are simcache entries the run was about to create.
// The fit is a pure function of (SKU, profile, seed, metric), so the
// coefficients are bit-identical at any -parallel and under chaos.
func (e *Evaluator) Calibrate() error {
	anchors := []knob.Config{
		sim.ProductionConfig(e.sku, e.prof),
		sim.StockConfig(e.sku),
	}
	var xs, ys []float64
	seen := make(map[string]bool)
	for _, cfg := range anchors {
		key := cfg.String()
		if seen[key] || e.sku.Validate(cfg) != nil {
			continue
		}
		seen[key] = true
		srv, err := platform.NewServer(e.sku, cfg)
		if err != nil {
			return fmt.Errorf("twin: calibration server: %w", err)
		}
		m, err := sim.NewMachine(srv, e.prof, e.seed)
		if err != nil {
			return fmt.Errorf("twin: calibration machine: %w", err)
		}
		ys = append(ys, e.metric(m.Solve(e.util)))
		xs = append(xs, e.raw(cfg))
	}
	if len(xs) == 0 {
		return fmt.Errorf("twin: no valid calibration anchors")
	}
	e.alpha, e.beta = fit(xs, ys)
	e.calibrated = true
	return nil
}

// fit is the least-squares solve of y = α·x + β. With one point (or a
// degenerate spread) it falls back to a pure ratio correction, and to
// identity if even that is unusable — the twin must never flip the sign
// of a comparison.
func fit(xs, ys []float64) (alpha, beta float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	det := n*sxx - sx*sx
	mean := sx / n
	if det > 1e-9*mean*mean*n && len(xs) > 1 {
		alpha = (n*sxy - sx*sy) / det
		beta = (sy - alpha*sx) / n
		if alpha > 0 {
			return alpha, beta
		}
	}
	if sx > 0 {
		return sy / sx, 0
	}
	return 1, 0
}

// Calibrated reports whether the twin rung is armed.
func (e *Evaluator) Calibrated() bool { return e.calibrated }

// Coefficients returns the fitted residual correction.
func (e *Evaluator) Coefficients() (alpha, beta float64) { return e.alpha, e.beta }

// Score predicts the optimization metric for a configuration from the
// cheapest rung that can answer: an exact repricing when the simcache
// already holds this exact window, the calibrated analytical twin
// otherwise. ok is false when no rung can answer (uncalibrated twin and
// no cached window).
func (e *Evaluator) Score(cfg knob.Config) (score float64, rung string, ok bool) {
	if r, hit := sim.CachedRates(e.sku, e.prof, cfg, 0, e.seed); hit {
		mTwinCacheScores.Inc()
		return e.exact(r, cfg), RungCached, true
	}
	if !e.calibrated {
		return 0, "", false
	}
	mTwinScores.Inc()
	return e.alpha*e.raw(cfg) + e.beta, RungTwin, true
}

// Margin returns the pruning safety margin (percent of the control
// score) a prediction from the given rung must clear before the search
// layer may discard a candidate without measuring it.
func (e *Evaluator) Margin(rung string) float64 {
	if rung == RungCached {
		return 0.25
	}
	return 2.5
}

// CrossCheck compares the twin's prediction against a configuration
// whose window the run just measured, feeding the continuous
// twin-vs-simulator error telemetry. Each distinct configuration is
// checked once per run. No-op before calibration or when the window is
// not (yet) in the simcache.
func (e *Evaluator) CrossCheck(cfg knob.Config) {
	if !e.calibrated {
		return
	}
	key := cfg.String()
	if e.checked[key] {
		return
	}
	r, hit := sim.CachedRates(e.sku, e.prof, cfg, 0, e.seed)
	if !hit {
		return
	}
	e.checked[key] = true
	meas := e.exact(r, cfg)
	pred := e.alpha*e.raw(cfg) + e.beta
	if meas == 0 {
		return
	}
	errPct := (pred - meas) / meas * 100
	if errPct < 0 {
		errPct = -errPct
	}
	e.errs = append(e.errs, errPct)
	mTwinCrossChecks.Inc()
	mTwinAbsErr.Observe(errPct)
}

// Errors returns the per-configuration absolute prediction errors
// (percent) accumulated by CrossCheck, in check order.
func (e *Evaluator) Errors() []float64 { return append([]float64(nil), e.errs...) }

// MedianAbsErrPct returns the median cross-check error, or -1 before
// any check ran.
func (e *Evaluator) MedianAbsErrPct() float64 {
	if len(e.errs) == 0 {
		return -1
	}
	s := append([]float64(nil), e.errs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// MetricFor maps a µSKU optimization-metric name onto its extractor
// from an operating point. Unknown names fall back to MIPS, mirroring
// the trial sampler's default.
func MetricFor(name string) func(sim.Operating) float64 {
	switch name {
	case "qps":
		return func(op sim.Operating) float64 { return op.QPS }
	case "perfwatt":
		return func(op sim.Operating) float64 { return op.MIPSPerWatt }
	default:
		return func(op sim.Operating) float64 { return op.MIPS }
	}
}
