package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"softsku/internal/rng"
	"softsku/internal/telemetry"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 10 {
		t.Fatalf("now = %g", e.Now())
	}
}

func TestEngineFIFOTies(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("ties must run in scheduling order: %v", order)
		}
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1, func() { ran++ })
	e.At(5, func() { ran++ })
	e.At(11, func() { ran++ })
	e.Run(5) // events exactly at the horizon still run
	if ran != 2 {
		t.Fatalf("ran=%d", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending=%d", e.Pending())
	}
	e.Run(20)
	if ran != 3 {
		t.Fatalf("ran=%d after second run", ran)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		if ticks < 100 {
			e.After(0.5, tick)
		}
	}
	e.After(0.5, tick)
	e.Run(1000)
	if ticks != 100 {
		t.Fatalf("ticks=%d", ticks)
	}
	if e.Now() != 1000 {
		t.Fatalf("now=%g", e.Now())
	}
}

func TestEnginePastSchedulingClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(5, func() {
		// Scheduling in the past must clamp to now, not go backwards.
		e.At(1, func() { fired = true })
	})
	e.Run(10)
	if !fired {
		t.Fatal("past-scheduled event never ran")
	}
}

func TestEngineNegativeDelay(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(-3, func() { ran = true })
	e.Run(1)
	if !ran {
		t.Fatal("negative delay should clamp to zero and run")
	}
}

func TestEngineTimeMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		e := NewEngine()
		src := rng.New(seed)
		last := -1.0
		ok := true
		for i := 0; i < 50; i++ {
			e.At(src.Float64()*100, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run(200)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestWallSecondsElapsedNotSummed is the regression test for the
// speedup-gauge double count: the old gauge summed per-Run wall
// durations, so overlapping runs (multiple engines on concurrent
// workers, each measuring the same wall interval) counted the same
// seconds once per engine and understated
// softsku_sim_seconds_per_wall_second. The fixed gauge reports wall
// seconds elapsed since the process's first Run — under a scripted
// clock that advances one second per read, two sequential runs span 3
// elapsed seconds (reads at t=1,2,3,4 with the origin pinned at t=1)
// while the per-call sum is only 2. Pre-fix code reports 2 here.
func TestWallSecondsElapsedNotSummed(t *testing.T) {
	resetWallForTest()
	var tick int64
	restore := telemetry.SetWallClock(func() time.Time {
		tick++
		return time.Unix(tick, 0)
	})
	defer restore()
	defer resetWallForTest()

	e1, e2 := NewEngine(), NewEngine()
	e1.Run(10) // reads clock at t=1 (pins origin) and t=2
	e2.Run(10) // reads clock at t=3 and t=4
	if got := mSimWallSec.Value(); got != 3 {
		t.Fatalf("wall gauge = %g, want 3 elapsed seconds since first Run (per-call sum would be 2)", got)
	}
	if e1.Now() != 10 || e2.Now() != 10 {
		t.Fatalf("engines at %g/%g, want 10", e1.Now(), e2.Now())
	}
	wantThroughput := mSimVirtualSec.Value() / 3 // cumulative virtual over elapsed wall
	if got := mSimThroughput.Value(); got != wantThroughput {
		t.Fatalf("throughput gauge = %g, want %g", got, wantThroughput)
	}
}

// TestWallClockConcurrentRuns drives engines from multiple goroutines
// so the race detector exercises the shared wall-origin state.
func TestWallClockConcurrentRuns(t *testing.T) {
	resetWallForTest()
	defer resetWallForTest()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := NewEngine()
			for i := 0; i < 50; i++ {
				e.After(1, func() {})
				e.Run(e.Now() + 2)
			}
		}()
	}
	wg.Wait()
	if mSimWallSec.Value() < 0 {
		t.Fatal("wall gauge went negative")
	}
}
