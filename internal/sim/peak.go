package sim

// PeakLoad is the outcome of the load-balancer-style peak search: the
// highest offered load the server sustains without violating its QoS
// constraints (§2.3.3 — "load balancers modulate load to ensure
// constraints are met").
type PeakLoad struct {
	OfferedQPS float64
	Result     ServiceResult
	// Feasible reports whether the returned point meets the QoS
	// constraints at all; false means the SLO is unattainable even at
	// minimal load (e.g. the p99 target is below the service's
	// intrinsic latency).
	Feasible bool
}

// FindPeak binary-searches offered QPS for the highest load meeting
// both the service's p99 latency SLO and its utilization ceiling. The
// returned result is the Fig 2–4 measurement at that peak.
func (m *Machine) FindPeak(seed uint64) PeakLoad {
	prof := m.prof
	op := m.Solve(prof.MaxCPUUtil)
	cfg := m.srv.Config()
	smt := m.srv.SKU().SMT

	// Capacity-derived bracket.
	hi := op.CoreIPS * float64(cfg.Cores) / prof.PathLength * 1.5
	lo := hi / 64

	run := func(qps float64) ServiceResult {
		dur := 4000 / qps
		if dur < 0.5 {
			dur = 0.5
		}
		if dur > 30 {
			dur = 30
		}
		s := NewServiceSim(prof, op, cfg.Cores, smt, seed)
		return s.Run(qps, dur)
	}
	feasible := func(r ServiceResult) bool {
		return r.Util <= prof.MaxCPUUtil &&
			r.Latency.Quantile(0.99) <= prof.QoSLatencyP99
	}

	best := run(lo)
	bestQPS := lo
	ok := feasible(best)
	for i := 0; i < 10; i++ {
		mid := (lo + hi) / 2
		r := run(mid)
		if feasible(r) {
			lo, best, bestQPS, ok = mid, r, mid, true
		} else {
			hi = mid
		}
	}
	return PeakLoad{OfferedQPS: bestQPS, Result: best, Feasible: ok}
}
