package sim

import (
	"softsku/internal/knob"
	"softsku/internal/platform"
	"softsku/internal/workload"
)

// ProductionConfig returns the hand-tuned production configuration for
// a service/platform pair (§6.2): maximum core and uncore frequencies
// (Turbo on), all cores active, no CDP, the platform's default
// prefetcher set, THP=madvise, and the operations team's historical
// SHP reservations (200 for Web on Skylake, 488 for Web on Broadwell).
func ProductionConfig(sku *platform.SKU, prof *workload.Profile) knob.Config {
	cfg := knob.Config{
		CoreFreqMHz:   sku.MaxCoreMHz,
		UncoreFreqMHz: sku.MaxUncoreMHz,
		Cores:         sku.Cores(),
		CDP:           knob.CDPConfig{},
		Prefetch:      sku.StockPrefetchers,
		THP:           knob.THPMadvise,
		SHPCount:      0,
	}
	if prof.Name == "Web" {
		switch sku.Name {
		case "Broadwell16":
			cfg.SHPCount = 488
		default:
			cfg.SHPCount = 200
		}
	}
	return cfg
}

// StockConfig returns the off-the-shelf configuration after a fresh
// server re-install (§6.2): like production but with every prefetcher
// on, THP=always, and no SHPs.
func StockConfig(sku *platform.SKU) knob.Config { return sku.StockConfig() }
