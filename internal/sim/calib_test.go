package sim

import (
	"fmt"
	"testing"

	"softsku/internal/cache"
	"softsku/internal/platform"
	"softsku/internal/workload"
)

// newPeakMachine builds a machine for a service on its production
// platform at the hand-tuned production configuration.
func newPeakMachine(t testing.TB, name string) *Machine {
	t.Helper()
	prof, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	sku, err := platform.ByName(prof.Platform)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := platform.NewServer(sku, ProductionConfig(sku, prof))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(srv, prof, 1234)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPrintCharacterization is a diagnostic: -run PrintCharacterization -v
// dumps the full measured characterization for calibration work.
func TestPrintCharacterization(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, name := range []string{"Web", "Feed1", "Feed2", "Ads1", "Ads2", "Cache1", "Cache2"} {
		m := newPeakMachine(t, name)
		op := m.SolvePeak()
		r := op.Rates
		l1c, l1d := r.CacheMPKI(cache.L1)
		l2c, l2d := r.CacheMPKI(cache.L2)
		llcc, llcd := r.CacheMPKI(cache.LLC)
		itlb, dl, ds := r.TLBMPKI()
		fmt.Printf("%-7s IPC=%.2f td={r%.0f f%.0f b%.0f be%.0f} L1{c%.1f d%.1f} L2{c%.1f d%.1f} LLC{c%.2f d%.2f} TLB{i%.2f dl%.2f ds%.2f} bw=%.1f lat=%.0f MIPS=%.0f QPS=%.0f sw=%d\n",
			name, op.IPC,
			op.TopDown.Retiring*100, op.TopDown.FrontEnd*100, op.TopDown.BadSpec*100, op.TopDown.BackEnd*100,
			l1c, l1d, l2c, l2d, llcc, llcd, itlb, dl, ds,
			op.MemBWGBs, op.MemLatencyNS, op.MIPS, op.QPS, r.CtxSwitches)
	}
}
