package sim

import (
	"fmt"
	"math"
	"sync"

	"softsku/internal/knob"
	"softsku/internal/platform"
	"softsku/internal/telemetry"
	"softsku/internal/workload"
)

// Characterization-cache telemetry. A hit means a full prefill +
// 800k-instruction window was skipped; windows counts the measurements
// that actually executed (with the cache off, every Characterize call
// is a window).
var (
	mSimCacheHits = telemetry.Default.Counter("softsku_sim_cache_hits_total",
		"Characterization windows served from the content-addressed cache.")
	mSimCacheMisses = telemetry.Default.Counter("softsku_sim_cache_misses_total",
		"Characterization cache lookups that had to run the window.")
	mSimWindows = telemetry.Default.Counter("softsku_sim_windows_total",
		"Characterization measurement windows executed (prefill + warm-up + measure).")
)

// charCache memoizes WindowRates by the canonical fingerprint of every
// input that can affect Characterize (DESIGN.md §11). Entries are
// single-flight: under core.ParallelFor the first goroutine to request
// a key runs the window inside the entry's once while latecomers block
// on it, so worker count can change neither the results nor the number
// of windows executed. Cached *WindowRates are shared and treated as
// immutable by all consumers (Solve copies Counts by value).
type charCache struct {
	mu      sync.Mutex
	enabled bool
	entries map[string]*charEntry
}

type charEntry struct {
	once  sync.Once
	rates *WindowRates
}

var charcache = charCache{enabled: true, entries: map[string]*charEntry{}}

// SetCharacterizationCache enables or disables the process-wide
// characterization cache and reports the previous setting. Disabled
// (the -sim-cache=off escape hatch) every Characterize call runs its
// own window; results are bit-identical either way — the cache is a
// pure memoization keyed on every input that reaches the window.
func SetCharacterizationCache(enabled bool) bool {
	charcache.mu.Lock()
	defer charcache.mu.Unlock()
	prev := charcache.enabled
	charcache.enabled = enabled
	return prev
}

// CharacterizationCacheEnabled reports whether the cache is active.
func CharacterizationCacheEnabled() bool {
	charcache.mu.Lock()
	defer charcache.mu.Unlock()
	return charcache.enabled
}

// ResetCharacterizationCache drops every cached window. Benchmarks and
// equivalence tests call it between runs so each run observes a cold
// cache; production runs never need it (entries are pure functions of
// their key).
func ResetCharacterizationCache() {
	charcache.mu.Lock()
	defer charcache.mu.Unlock()
	charcache.entries = map[string]*charEntry{}
}

// WindowsExecuted returns the cumulative count of characterization
// measurement windows that actually ran in this process — the quantity
// the cache exists to reduce; benchmarks and tests difference it
// around a run.
//
//lint:ignore detflow the window count equals the number of distinct characterization keys, which a seeded run fixes; exposed for benchmarks to difference
func WindowsExecuted() float64 { return mSimWindows.Value() }

// getOrMeasure returns the cached rates for key, running measure
// exactly once per key across all goroutines.
func (c *charCache) getOrMeasure(key string, measure func() *WindowRates) *WindowRates {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &charEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	hit := true
	e.once.Do(func() {
		hit = false
		r := measure()
		// Publish under the cache mutex so CachedRates can probe
		// completed entries without racing an in-flight measurement;
		// latecomers blocked on the once still synchronize through Do.
		c.mu.Lock()
		e.rates = r
		c.mu.Unlock()
	})
	if hit {
		mSimCacheHits.Inc()
	} else {
		mSimCacheMisses.Inc()
	}
	return e.rates
}

// CachedRates returns the characterization the process-wide cache
// already holds for this exact window key, without executing a window —
// the simcache-hit rung of the tiered-fidelity ladder (DESIGN.md §16).
// It reports false when the cache is disabled, the key is absent, or
// its window is still being measured; it never creates an entry and
// never blocks on one, so a probe costs a map lookup regardless of
// what the parallel trial pool is doing.
func CachedRates(sku *platform.SKU, prof *workload.Profile, cfg knob.Config, catWays int, seed uint64) (*WindowRates, bool) {
	charcache.mu.Lock()
	defer charcache.mu.Unlock()
	if !charcache.enabled {
		return nil, false
	}
	e, ok := charcache.entries[charKey(sku, prof, cfg, catWays, seed)]
	if !ok || e.rates == nil {
		return nil, false
	}
	return e.rates, true
}

// ctxSwitchInterval converts the profile's per-core context-switch rate
// at a core frequency into the switch interval in instructions (IPC≈1
// estimate, as in runWindow). A rate so high the interval rounds below
// one instruction clamps to 1 — switch every chunk — instead of the
// divide-by-zero the unclamped value used to cause. The interval, not
// the raw frequency, is what the measurement window observes, so it is
// the form under which core frequency enters the cache key.
func ctxSwitchInterval(coreFreqMHz int, ratePerSec float64) int {
	if ratePerSec <= 0 {
		return math.MaxInt64
	}
	iv := int(float64(coreFreqMHz) * 1e6 / ratePerSec)
	if iv < 1 {
		iv = 1
	}
	return iv
}

// charKey builds the canonical fingerprint of every input that affects
// a characterization window:
//
//   - the SKU (cache/TLB geometry, LLC size, prefetcher behaviour) and
//     profile (footprints, mixes, seed-independent layout), fingerprinted
//     with %#v so any new scalar field automatically joins the key;
//   - the workload seed (stream contents, age scrambling);
//   - the µarch-relevant knob subset: active cores (thread count, LLC
//     scaling, private-span scaling), CDP way split, prefetch mask, THP
//     mode, SHP reservation;
//   - the applied CAT way limit (Machine.SetCAT, not part of knob.Config);
//   - the context-switch interval — the only path by which core
//     frequency reaches the window. Uncore frequency never does: both
//     frequencies otherwise enter only Solve, which runs per call.
//
// Keys are full canonical strings, not hashes: collisions are
// impossible, so the cache cannot silently merge distinct configs.
func charKey(sku *platform.SKU, prof *workload.Profile, cfg knob.Config, catWays int, seed uint64) string {
	return fmt.Sprintf("sku{%#v}|prof{%#v}|seed=%d|cores=%d|cdp=%d/%d|pf=%d|thp=%d|shp=%d|cat=%d|ctxint=%d",
		*sku, *prof, seed,
		cfg.Cores, cfg.CDP.DataWays, cfg.CDP.CodeWays, uint8(cfg.Prefetch),
		int(cfg.THP), cfg.SHPCount, catWays,
		ctxSwitchInterval(cfg.CoreFreqMHz, prof.CtxSwitchRate))
}
