package sim

import (
	"fmt"

	"softsku/internal/cache"
	"softsku/internal/cpu"
	"softsku/internal/knob"
	"softsku/internal/mem"
	"softsku/internal/platform"
	"softsku/internal/prefetch"
	"softsku/internal/rng"
	"softsku/internal/tlb"
	"softsku/internal/workload"
)

// Colocation implements the §7 future-work direction: when two
// microservices share a machine, their working sets contend in the
// shared LLC and memory system. CoMachine runs threads of two services
// against one hierarchy and reports each side's slowdown relative to
// running alone — the affinity signal a µSKU-aware scheduler would
// consume.

// CoResult is one co-location measurement.
type CoResult struct {
	A, B string // service names

	SoloIPCA, SoloIPCB     float64
	SharedIPCA, SharedIPCB float64

	// SlowdownX = SoloIPC / SharedIPC (>= ~1; higher is worse).
	SlowdownA, SlowdownB float64
}

// String summarizes the pairing.
func (r CoResult) String() string {
	return fmt.Sprintf("%s+%s: %s slows %.2fx, %s slows %.2fx",
		r.A, r.B, r.A, r.SlowdownA, r.B, r.SlowdownB)
}

// coThread bundles one colocated thread's per-service state.
type coThread struct {
	prof     *workload.Profile
	stream   *workload.Stream
	space    *tlb.AddressSpace
	tlb      *tlb.TLB
	pf       *prefetch.Engine
	instr    uint64
	codeHits [4]uint64 // accesses satisfied per level (code)
	dataHits [4]uint64 // accesses satisfied per level (data)
}

// Colocate measures mutual interference between two services sharing a
// server of the given SKU. Each service contributes two simulated
// threads; the solo baseline runs the same threads with an idle
// neighbour on identical machinery, so solo and shared measurements
// differ only in the neighbour's presence.
func Colocate(sku *platform.SKU, profA, profB *workload.Profile, seed uint64) (CoResult, error) {
	const threadsEach = 2
	res := CoResult{A: profA.Name, B: profB.Name}

	soloA, _, err := sharedIPC(sku, profA, nil, threadsEach, seed)
	if err != nil {
		return res, err
	}
	soloB, _, err := sharedIPC(sku, profB, nil, threadsEach, seed)
	if err != nil {
		return res, err
	}
	res.SoloIPCA, res.SoloIPCB = soloA, soloB

	res.SharedIPCA, res.SharedIPCB, err = sharedIPC(sku, profA, profB, threadsEach, seed)
	if err != nil {
		return res, err
	}
	res.SlowdownA = res.SoloIPCA / res.SharedIPCA
	res.SlowdownB = res.SoloIPCB / res.SharedIPCB
	return res, nil
}

// sharedIPC runs threadsEach threads of each profile against one
// shared hierarchy and returns per-service IPC. A nil profB leaves the
// neighbour slots idle (the solo baseline).
func sharedIPC(sku *platform.SKU, profA, profB *workload.Profile, threadsEach int, seed uint64) (float64, float64, error) {
	sides := []*workload.Profile{profA}
	if profB != nil {
		sides = append(sides, profB)
	}
	hier := cache.NewHierarchySized(sku, 2*threadsEach, sku.LLC*sku.Sockets)
	geom := tlb.Geometry{
		ITLB4K: sku.ITLB4K, ITLB2M: sku.ITLB2M,
		DTLB4K: sku.DTLB4K, DTLB2M: sku.DTLB2M, STLB: sku.STLB,
	}
	var threads []*coThread
	var layouts []workload.Layout
	for i, prof := range sides {
		layout := prof.BuildLayout()
		// Disjoint address spaces: shift the second service's regions
		// into their own half of the virtual space.
		if i == 1 {
			for r := range layout.Regions {
				layout.Regions[r].Base |= 1 << 50
			}
		}
		space, err := tlb.NewAddressSpace(layout.Regions, knob.THPMadvise, 0)
		if err != nil {
			return 0, 0, err
		}
		layouts = append(layouts, layout)
		coreScale := float64(sku.Cores()) / float64(2*threadsEach)
		for ti := 0; ti < threadsEach; ti++ {
			core := i*threadsEach + ti
			threads = append(threads, &coThread{
				prof:   prof,
				stream: workload.NewStream(prof, layout, seed+uint64(core)*7919, ti, coreScale),
				space:  space,
				tlb:    tlb.New(geom),
				pf:     prefetch.NewEngine(hier, core, sku.StockPrefetchers),
			})
		}
	}

	// Functional warm-up (as in Machine.Characterize): install each
	// service's steady-state resident set. Classes are installed in
	// coldest-first order, alternating services within each class so
	// neither side's lines are preferentially evicted; age scrambling
	// then sets the steady-state age distribution.
	llc := hier.LLCs
	profs := sides
	installData := func(side int, c *cache.Cache, lo, hi uint64) {
		workload.ForEachDataLine(profs[side], layouts[side], lo, hi, func(addr uint64) {
			c.InstallWarm(addr, cache.Data)
		})
	}
	installCode := func(side int, c *cache.Cache, pool int, bytes uint64) {
		workload.ForEachCodeLine(profs[side], layouts[side], pool, bytes/64, func(addr uint64) {
			c.InstallWarm(addr, cache.Code)
		})
	}
	coreScale := float64(sku.Cores()) / float64(2*threadsEach)
	for side := range profs {
		if p := profs[side]; p.DataSeqFrac > 0 {
			span := p.SeqSpan
			if lim := uint64(sku.LLC * sku.Sockets / 2); span > lim {
				span = lim
			}
			installData(side, llc, 0, span)
		}
	}
	for side, p := range profs {
		for ti := 0; ti < threadsEach; ti++ {
			base, span := workload.PrivateSpan(p, ti, coreScale)
			if span > 0 {
				installData(side, llc, base, base+span)
			}
		}
	}
	for side, p := range profs {
		installData(side, llc, 0, p.DataWarm.Bytes)
	}
	for side, p := range profs {
		for pool := 0; pool < p.CodePools; pool++ {
			installCode(side, llc, pool, p.CodeWarm.Bytes)
		}
	}
	for side, p := range profs {
		installData(side, llc, 0, p.DataMid.Bytes)
		installData(side, llc, 0, p.DataHot.Bytes)
		for ti := 0; ti < threadsEach; ti++ {
			core := side*threadsEach + ti
			pool := ti % p.CodePools
			installCode(side, llc, pool, p.CodeMid.Bytes)
			installCode(side, hier.L2s[core], pool, p.CodeMid.Bytes)
			installCode(side, hier.L1I[core], pool, p.CodeHot.Bytes)
			installData(side, hier.L2s[core], 0, p.DataMid.Bytes)
			installData(side, hier.L1D[core], 0, p.DataHot.Bytes)
		}
	}
	ager := rng.New(seed ^ 0xc010)
	llc.ScrambleAges(ager.Intn)

	const instrPerThread = 300_000
	runPhase := func(count bool) {
		const chunk = 2000
		buf := make([]workload.Access, 0, chunk*2)
		for done := 0; done < instrPerThread; done += chunk {
			for core, th := range threads {
				buf = th.stream.Generate(buf[:0], chunk)
				for idx := range buf {
					a := &buf[idx]
					lvl := hier.Access(core, a.Addr, a.Kind)
					page, huge := th.space.PageOf(int(a.Region), a.Addr)
					th.tlb.Access(page, huge, a.Type)
					th.pf.OnAccess(a.Addr, a.Kind, a.IP, lvl)
					if count {
						if a.Kind == cache.Code {
							th.codeHits[lvl]++
						} else {
							th.dataHits[lvl]++
						}
					}
				}
				if count {
					th.instr += chunk
				}
			}
		}
	}
	runPhase(false) // warm-up
	for _, th := range threads {
		th.tlb.ResetStats()
	}
	hier.ResetStats()
	runPhase(true)

	ipcOf := func(lo, hi int) float64 {
		// Aggregate counts for one service's threads and price them
		// with the shared memory system at nominal conditions.
		prof := threads[lo].prof
		memModel := mem.NewModel(sku)
		var instr uint64
		var code, data [4]uint64
		var walks uint64
		for _, th := range threads[lo:hi] {
			instr += th.instr
			for l := 0; l < 4; l++ {
				code[l] += th.codeHits[l]
				data[l] += th.dataHits[l]
			}
			walks += th.tlb.Stats().WalkCycles
		}
		return priceIPC(sku, prof, instr, code, data, walks, memModel)
	}
	a := ipcOf(0, threadsEach)
	b := 0.0
	if profB != nil {
		b = ipcOf(threadsEach, 2*threadsEach)
	}
	return a, b, nil
}

// priceIPC converts level-hit tallies into IPC with the same cycle
// model the solo path uses. Colocation pricing holds memory latency at
// a moderate-load point: the interference signal of interest here is
// shared-LLC contention; bandwidth coupling is already captured by the
// solo operating points.
func priceIPC(sku *platform.SKU, prof *workload.Profile, instr uint64,
	code, data [4]uint64, walks uint64, memModel *mem.Model) float64 {
	if instr == 0 {
		return 0
	}
	mix := prof.Mix.Normalize()
	var counts cpu.Counts
	counts.Instructions = instr
	counts.Branches = uint64(float64(instr) * mix.Branch)
	counts.Mispredicts = uint64(float64(counts.Branches) * prof.BranchMispredict)
	counts.CodeL2 = code[cache.L2]
	counts.CodeLLC = code[cache.LLC]
	counts.CodeMem = code[cache.Memory]
	counts.DataL2 = data[cache.L2]
	counts.DataLLC = data[cache.LLC]
	counts.DataMem = data[cache.Memory]
	counts.DTLBWalkCycles = walks

	ghz := float64(sku.EffectiveCoreMHz(sku.StockConfig(), prof.AVXFrac())) / 1000
	latNS := memModel.LatencyNS(0.3*sku.MemPeakGBs, prof.Burstiness, 1)
	res := cpu.Analyze(counts, cpu.Params{
		Width:         sku.DispatchWidth,
		L2LatCycles:   sku.L2LatencyNS * ghz,
		LLCLatCycles:  sku.LLCLatencyNS * ghz,
		MemLatCycles:  latNS * ghz,
		MispredictPen: 15,
		DepStallCPI:   prof.DepStallCPI,
		BEOverlap:     prof.BEOverlap,
		SMT:           sku.SMT > 1,
	})
	return res.IPC
}
