package sim

import (
	"math"
	"testing"

	"softsku/internal/platform"
	"softsku/internal/workload"
)

func colocate(t *testing.T, a, b string) CoResult {
	t.Helper()
	pa, err := workload.ByName(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := workload.ByName(b)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Colocate(platform.Skylake18(), pa, pb, 7)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestColocateSelfSymmetric(t *testing.T) {
	r := colocate(t, "Web", "Web")
	if math.Abs(r.SlowdownA-r.SlowdownB) > 0.03 {
		t.Fatalf("self-pairing must be symmetric: %.3f vs %.3f", r.SlowdownA, r.SlowdownB)
	}
	if r.SlowdownA < 1.05 {
		t.Fatalf("a second Web tenant must visibly interfere: %.3f", r.SlowdownA)
	}
}

func TestColocateNeighboursInterfere(t *testing.T) {
	r := colocate(t, "Web", "Feed1")
	// Any LLC-hungry neighbour slows both sides relative to an idle
	// neighbour (allowing slight measurement slack).
	if r.SlowdownA < 0.98 || r.SlowdownB < 0.98 {
		t.Fatalf("negative interference is implausible: %+v", r)
	}
	if r.SlowdownA < 1.02 && r.SlowdownB < 1.02 {
		t.Fatalf("no measurable interference at all: %+v", r)
	}
}

func TestColocateAffinityOrdering(t *testing.T) {
	// The scheduler-relevant signal: neighbours differ. Web suffers
	// more from a second Web (large shared footprint) than from Feed2.
	webWeb := colocate(t, "Web", "Web")
	webFeed2 := colocate(t, "Web", "Feed2")
	if webWeb.SlowdownA <= webFeed2.SlowdownA {
		t.Fatalf("Web should prefer Feed2 over another Web as neighbour: %.3f vs %.3f",
			webWeb.SlowdownA, webFeed2.SlowdownA)
	}
}

func TestColocateDeterministic(t *testing.T) {
	a := colocate(t, "Feed1", "Feed2")
	b := colocate(t, "Feed1", "Feed2")
	if a != b {
		t.Fatalf("colocation measurement not deterministic:\n%+v\n%+v", a, b)
	}
}
