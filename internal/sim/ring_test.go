package sim

import (
	"testing"

	"softsku/internal/workload"
)

// TestReqRingFIFO pushes and pops through several growth cycles and
// wrap-arounds, checking strict FIFO order — the property the service
// sim's determinism rests on.
func TestReqRingFIFO(t *testing.T) {
	var q reqRing
	reqs := make([]*request, 100)
	for i := range reqs {
		reqs[i] = &request{segLeft: i}
	}
	pushed, popped := 0, 0
	for round, batch := range []int{1, 3, 8, 20, 40, 28} {
		for i := 0; i < batch; i++ {
			q.push(reqs[pushed])
			pushed++
		}
		// Drain half after each fill so the head wraps mid-buffer.
		for q.len() > batch/2 {
			if got := q.pop(); got != reqs[popped] {
				t.Fatalf("round %d: popped segLeft=%d, want %d", round, got.segLeft, popped)
			}
			popped++
		}
	}
	for q.len() > 0 {
		if got := q.pop(); got != reqs[popped] {
			t.Fatalf("drain: popped segLeft=%d, want %d", got.segLeft, popped)
		}
		popped++
	}
	if popped != pushed {
		t.Fatalf("popped %d of %d pushed", popped, pushed)
	}
}

// TestReqRingNilsPoppedSlots asserts pop releases its reference so
// completed requests become collectable during a long run — the
// satellite leak fix (the old `q = q[1:]` pops kept every popped
// *request reachable through the backing array).
func TestReqRingNilsPoppedSlots(t *testing.T) {
	var q reqRing
	for i := 0; i < 10; i++ {
		q.push(&request{})
	}
	for q.len() > 0 {
		q.pop()
	}
	for i, r := range q.buf {
		if r != nil {
			t.Fatalf("slot %d still references a popped request", i)
		}
	}
}

// TestServiceSimQueueBounded runs an overloaded service simulation and
// asserts the queue buffers stay near peak queue depth instead of
// growing with the total requests that passed through, and that
// nothing popped stays pinned after the run.
func TestServiceSimQueueBounded(t *testing.T) {
	base, err := workload.ByName("Web")
	if err != nil {
		t.Fatal(err)
	}
	prof := workload.ForPlatform(base, "Skylake18")
	m := machineFor(t, "Web", "Skylake18", nil)
	op := m.Solve(prof.MaxCPUUtil)
	s := NewServiceSim(prof, op, 4, 2, 7)
	// Sustained near-capacity load: queues spike on coalesced wakeup
	// bursts but stay shallow, while many requests flow through.
	res := s.Run(op.QPS*0.8, 2)
	if res.Completed == 0 {
		t.Fatal("no requests completed")
	}
	slots := len(s.runQueue.buf) + len(s.waitQueue.buf)
	if slots > 1<<14 {
		t.Fatalf("queue buffers hold %d slots after %d completions; rings should stay near peak depth", slots, res.Completed)
	}
	live := s.runQueue.len() + s.waitQueue.len()
	held := 0
	for _, r := range s.runQueue.buf {
		if r != nil {
			held++
		}
	}
	for _, r := range s.waitQueue.buf {
		if r != nil {
			held++
		}
	}
	if held != live {
		t.Fatalf("buffers pin %d requests but only %d are queued", held, live)
	}
}

// TestEngineArenaRecycles schedules and runs many generations of
// events on one engine and asserts the arena stays at the peak
// concurrent event count instead of growing with the total scheduled —
// the free list works — and that completed slots drop their closures.
func TestEngineArenaRecycles(t *testing.T) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 10_000 {
			e.After(1e-3, tick)
		}
	}
	e.After(1e-3, tick)
	e.Run(100)
	if n != 10_000 {
		t.Fatalf("ran %d events", n)
	}
	if len(e.arena) > 4 {
		t.Fatalf("arena grew to %d slots for a 1-deep event chain", len(e.arena))
	}
	for i, ev := range e.arena {
		if ev.fn != nil {
			t.Fatalf("arena slot %d still pins its closure", i)
		}
	}
}
