package sim

import (
	"math"
	"testing"

	"softsku/internal/cache"
	"softsku/internal/knob"
	"softsku/internal/platform"
	"softsku/internal/workload"
)

// machineFor builds a production-configured machine, with an optional
// config modifier.
func machineFor(t testing.TB, svc, plat string, mod func(knob.Config) knob.Config) *Machine {
	t.Helper()
	base, err := workload.ByName(svc)
	if err != nil {
		t.Fatal(err)
	}
	prof := workload.ForPlatform(base, plat)
	sku, err := platform.ByName(plat)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ProductionConfig(sku, prof)
	if mod != nil {
		cfg = mod(cfg)
	}
	srv, err := platform.NewServer(sku, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(srv, prof, 1234)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func peakMIPS(t testing.TB, svc, plat string, mod func(knob.Config) knob.Config) float64 {
	return machineFor(t, svc, plat, mod).SolvePeak().MIPS
}

// TestCharacterizationBands pins the measured §2 characterization to
// the paper's reported bands (tolerances documented in EXPERIMENTS.md).
func TestCharacterizationBands(t *testing.T) {
	type band struct{ lo, hi float64 }
	cases := map[string]struct {
		ipc              band
		l1iCode, llcCode band
		llcData          band
		frontEnd         band // TMAM slot fraction
		bwGBs            band
	}{
		"Web":    {ipc: band{0.4, 0.8}, l1iCode: band{30, 80}, llcCode: band{1.0, 3.0}, llcData: band{3, 9}, frontEnd: band{0.25, 0.45}, bwGBs: band{30, 75}},
		"Feed1":  {ipc: band{0.9, 1.7}, l1iCode: band{2, 20}, llcCode: band{0, 0.3}, llcData: band{6, 14}, frontEnd: band{0, 0.12}, bwGBs: band{35, 75}},
		"Feed2":  {ipc: band{0.5, 1.1}, l1iCode: band{20, 60}, llcCode: band{0, 1.0}, llcData: band{2, 8}, frontEnd: band{0.1, 0.3}, bwGBs: band{10, 45}},
		"Ads1":   {ipc: band{0.5, 1.1}, l1iCode: band{20, 60}, llcCode: band{0, 1.0}, llcData: band{2, 9}, frontEnd: band{0.08, 0.3}, bwGBs: band{8, 50}},
		"Ads2":   {ipc: band{0.5, 1.2}, l1iCode: band{15, 50}, llcCode: band{0, 1.0}, llcData: band{2, 9}, frontEnd: band{0.08, 0.3}, bwGBs: band{60, 130}},
		"Cache1": {ipc: band{0.3, 1.1}, l1iCode: band{70, 140}, llcCode: band{0, 3}, llcData: band{2, 9}, frontEnd: band{0.22, 0.5}, bwGBs: band{15, 70}},
		"Cache2": {ipc: band{0.3, 1.1}, l1iCode: band{70, 140}, llcCode: band{0, 3}, llcData: band{2, 9}, frontEnd: band{0.22, 0.5}, bwGBs: band{5, 40}},
	}
	for name, want := range cases {
		prof, _ := workload.ByName(name)
		op := machineFor(t, name, prof.Platform, nil).SolvePeak()
		check := func(metric string, got float64, b band) {
			if got < b.lo || got > b.hi {
				t.Errorf("%s %s = %.3g outside [%g, %g]", name, metric, got, b.lo, b.hi)
			}
		}
		check("IPC", op.IPC, want.ipc)
		l1c, _ := op.Rates.CacheMPKI(cache.L1)
		check("L1I code MPKI", l1c, want.l1iCode)
		llcc, llcd := op.Rates.CacheMPKI(cache.LLC)
		check("LLC code MPKI", llcc, want.llcCode)
		check("LLC data MPKI", llcd, want.llcData)
		check("front-end fraction", op.TopDown.FrontEnd, want.frontEnd)
		check("memory bandwidth", op.MemBWGBs, want.bwGBs)
	}
}

// TestCharacterizationDiversity asserts the cross-service orderings
// the paper's Fig 1 leans on.
func TestCharacterizationDiversity(t *testing.T) {
	ops := map[string]Operating{}
	for _, name := range []string{"Web", "Feed1", "Cache1", "Cache2"} {
		prof, _ := workload.ByName(name)
		ops[name] = machineFor(t, name, prof.Platform, nil).SolvePeak()
	}
	// Web's LLC code misses dwarf Feed1's (Fig 9): "it is unusual for
	// applications to incur non-negligible LLC instruction misses".
	webC, _ := ops["Web"].Rates.CacheMPKI(cache.LLC)
	feedC, _ := ops["Feed1"].Rates.CacheMPKI(cache.LLC)
	if webC < 10*feedC {
		t.Errorf("Web LLC code MPKI %.2f should dwarf Feed1's %.2f", webC, feedC)
	}
	// Cache's L1I misses dwarf Feed1's (Fig 8).
	c1, _ := ops["Cache1"].Rates.CacheMPKI(cache.L1)
	f1, _ := ops["Feed1"].Rates.CacheMPKI(cache.L1)
	if c1 < 4*f1 {
		t.Errorf("Cache1 L1I MPKI %.1f should dwarf Feed1's %.1f", c1, f1)
	}
	// Web ITLB misses dwarf everyone's (Fig 11).
	webITLB, _, _ := ops["Web"].Rates.TLBMPKI()
	feedITLB, _, _ := ops["Feed1"].Rates.TLBMPKI()
	if webITLB < 5*feedITLB {
		t.Errorf("Web ITLB MPKI %.2f vs Feed1 %.2f", webITLB, feedITLB)
	}
	// Feed1 retires the most; Web and Cache are stall-bound (Fig 7).
	if ops["Feed1"].TopDown.Retiring < ops["Web"].TopDown.Retiring {
		t.Error("Feed1 must retire a larger slot fraction than Web")
	}
}

// TestSolveDeterminism: identical machines yield identical operating
// points.
func TestSolveDeterminism(t *testing.T) {
	a := machineFor(t, "Feed2", "Skylake18", nil).SolvePeak()
	b := machineFor(t, "Feed2", "Skylake18", nil).SolvePeak()
	if a.MIPS != b.MIPS || a.IPC != b.IPC || a.MemBWGBs != b.MemBWGBs {
		t.Fatalf("non-deterministic solve: %v vs %v", a, b)
	}
}

// TestFrequencyShape: Fig 14(a) — steep gains to ~1.9 GHz, diminishing
// after, for all three µSKU targets.
func TestFrequencyShape(t *testing.T) {
	for _, tc := range []struct{ svc, plat string }{
		{"Web", "Skylake18"}, {"Web", "Broadwell16"}, {"Ads1", "Skylake18"},
	} {
		at := func(mhz int) float64 {
			return peakMIPS(t, tc.svc, tc.plat, func(c knob.Config) knob.Config {
				return c.With(knob.CoreFreq, knob.IntSetting("f", mhz))
			})
		}
		m16, m19, m22 := at(1600), at(1900), at(2200)
		if !(m16 < m19 && m19 < m22) {
			t.Errorf("%s(%s): frequency scaling not monotone: %.0f %.0f %.0f",
				tc.svc, tc.plat, m16, m19, m22)
		}
		// Diminishing returns per MHz (Fig 14a's bend).
		lowSlope := (m19 - m16) / 300
		highSlope := (m22 - m19) / 300
		if highSlope >= lowSlope {
			t.Errorf("%s(%s): no diminishing returns: %.3g vs %.3g",
				tc.svc, tc.plat, lowSlope, highSlope)
		}
	}
}

// TestUncoreShape: Fig 14(b) — maximum uncore frequency wins.
func TestUncoreShape(t *testing.T) {
	for _, svc := range []string{"Web", "Ads1"} {
		at := func(mhz int) float64 {
			return peakMIPS(t, svc, "Skylake18", func(c knob.Config) knob.Config {
				return c.With(knob.UncoreFreq, knob.IntSetting("u", mhz))
			})
		}
		if !(at(1400) < at(1600) && at(1600) < at(1800)) {
			t.Errorf("%s: uncore frequency scaling not monotone", svc)
		}
	}
}

// TestCDPShapes: Fig 16 — Web(Skylake) wins with {6,5}, Ads1 with
// {9,2}, Web(Broadwell) gains nothing, and extreme partitions are
// catastrophic everywhere.
func TestCDPShapes(t *testing.T) {
	cdp := func(d, c int) func(knob.Config) knob.Config {
		return func(cfg knob.Config) knob.Config {
			return cfg.With(knob.CDP, knob.CDPSetting(knob.CDPConfig{DataWays: d, CodeWays: c}))
		}
	}
	webProd := peakMIPS(t, "Web", "Skylake18", nil)
	web65 := peakMIPS(t, "Web", "Skylake18", cdp(6, 5))
	if web65 <= webProd {
		t.Errorf("Web(Skylake) CDP {6,5} must beat production: %.0f vs %.0f", web65, webProd)
	}
	web92 := peakMIPS(t, "Web", "Skylake18", cdp(9, 2))
	if web92 >= webProd*0.95 {
		t.Errorf("Web(Skylake) CDP {9,2} must be clearly harmful: %.0f vs %.0f", web92, webProd)
	}
	ads1Prod := peakMIPS(t, "Ads1", "Skylake18", nil)
	ads192 := peakMIPS(t, "Ads1", "Skylake18", cdp(9, 2))
	if ads192 <= ads1Prod {
		t.Errorf("Ads1 CDP {9,2} must beat production: %.0f vs %.0f", ads192, ads1Prod)
	}
	bdwProd := peakMIPS(t, "Web", "Broadwell16", nil)
	bdw75 := peakMIPS(t, "Web", "Broadwell16", cdp(7, 5))
	if bdw75 > bdwProd*1.01 {
		t.Errorf("Web(Broadwell) CDP must not gain (bandwidth-saturated): %.0f vs %.0f", bdw75, bdwProd)
	}
}

// TestPrefetcherShapes: Fig 17 — disabling prefetchers wins only on
// bandwidth-starved Broadwell.
func TestPrefetcherShapes(t *testing.T) {
	off := func(c knob.Config) knob.Config {
		return c.With(knob.Prefetch, knob.PrefetchSetting(knob.PrefetchNone))
	}
	sklProd := peakMIPS(t, "Web", "Skylake18", nil)
	sklOff := peakMIPS(t, "Web", "Skylake18", off)
	if sklOff >= sklProd {
		t.Errorf("Web(Skylake) must prefer prefetchers on: off %.0f vs prod %.0f", sklOff, sklProd)
	}
	bdwProd := peakMIPS(t, "Web", "Broadwell16", nil)
	bdwOff := peakMIPS(t, "Web", "Broadwell16", off)
	if bdwOff <= bdwProd {
		t.Errorf("Web(Broadwell) must prefer prefetchers off: off %.0f vs prod %.0f", bdwOff, bdwProd)
	}
}

// TestTHPShapes: Fig 18(a) — always-on helps Web(Skylake) a few
// percent, not Ads1 or Web(Broadwell); never ≈ madvise for Web.
func TestTHPShapes(t *testing.T) {
	thp := func(m knob.THPMode) func(knob.Config) knob.Config {
		return func(c knob.Config) knob.Config { return c.With(knob.THP, knob.THPSetting(m)) }
	}
	webProd := peakMIPS(t, "Web", "Skylake18", nil)
	webAlways := peakMIPS(t, "Web", "Skylake18", thp(knob.THPAlways))
	gain := webAlways/webProd - 1
	if gain < 0.005 || gain > 0.06 {
		t.Errorf("Web(Skylake) THP always gain = %.2f%%, want ~1.9%%", gain*100)
	}
	webNever := peakMIPS(t, "Web", "Skylake18", thp(knob.THPNever))
	if math.Abs(webNever/webProd-1) > 0.01 {
		t.Errorf("Web THP never should match madvise (few allocations use the hint): %+.2f%%",
			(webNever/webProd-1)*100)
	}
	ads1Prod := peakMIPS(t, "Ads1", "Skylake18", nil)
	ads1Always := peakMIPS(t, "Ads1", "Skylake18", thp(knob.THPAlways))
	if math.Abs(ads1Always/ads1Prod-1) > 0.01 {
		t.Errorf("Ads1 THP always should not move throughput: %+.2f%%",
			(ads1Always/ads1Prod-1)*100)
	}
}

// TestSHPShapes: Fig 18(b) — sweet spots at 300 (Skylake) and 400
// (Broadwell), beating the historical production reservations.
func TestSHPShapes(t *testing.T) {
	shp := func(n int) func(knob.Config) knob.Config {
		return func(c knob.Config) knob.Config { return c.With(knob.SHP, knob.IntSetting("n", n)) }
	}
	for _, tc := range []struct {
		plat  string
		sweet int
	}{
		{"Skylake18", 300}, {"Broadwell16", 400},
	} {
		best, bestN := 0.0, 0
		for n := 0; n <= 600; n += 100 {
			v := peakMIPS(t, "Web", tc.plat, shp(n))
			if v > best {
				best, bestN = v, n
			}
		}
		if bestN != tc.sweet {
			t.Errorf("Web(%s): SHP sweep peaks at %d, want %d", tc.plat, bestN, tc.sweet)
		}
	}
}

// TestAVXFrequencyCap: §6.1(1) — Ads1's AVX use caps it at 2.0 GHz.
func TestAVXFrequencyCap(t *testing.T) {
	op := machineFor(t, "Ads1", "Skylake18", nil).SolvePeak()
	if op.EffCoreMHz != 2000 {
		t.Fatalf("Ads1 effective frequency = %g MHz, want 2000", op.EffCoreMHz)
	}
	if web := machineFor(t, "Web", "Skylake18", nil).SolvePeak(); web.EffCoreMHz != 2200 {
		t.Fatalf("Web effective frequency = %g MHz, want 2200", web.EffCoreMHz)
	}
}

// TestCoreCountScaling: Fig 15 — near-linear at low counts, bending
// past ~8 cores.
func TestCoreCountScaling(t *testing.T) {
	at := func(n int) float64 {
		return peakMIPS(t, "Web", "Skylake18", func(c knob.Config) knob.Config {
			return c.With(knob.CoreCount, knob.IntSetting("n", n))
		})
	}
	m2, m8, m18 := at(2), at(8), at(18)
	lowEff := (m8 / m2) / 4.0    // vs ideal 4x
	highEff := (m18 / m8) / 2.25 // vs ideal 2.25x
	if lowEff < 0.85 {
		t.Errorf("2->8 cores should be near-linear, efficiency %.2f", lowEff)
	}
	if highEff >= lowEff {
		t.Errorf("8->18 cores must bend below low-count efficiency: %.2f vs %.2f", highEff, lowEff)
	}
}

// TestCATSweepKnee: Fig 10 — LLC MPKI falls with added ways and has
// flattened by 8 ways for Web.
func TestCATSweepKnee(t *testing.T) {
	m := machineFor(t, "Web", "Skylake18", nil)
	mpki := func(ways int) float64 {
		if err := m.SetCAT(ways); err != nil {
			t.Fatal(err)
		}
		r := m.Characterize()
		c, d := r.CacheMPKI(cache.LLC)
		return c + d
	}
	m2, m8, m11 := mpki(2), mpki(8), mpki(11)
	if !(m2 > m8 && m8 >= m11*0.9) {
		t.Errorf("CAT sweep not monotone-ish: 2w=%.1f 8w=%.1f 11w=%.1f", m2, m8, m11)
	}
	// Knee: most of the benefit arrives by 8 ways.
	if (m2 - m8) < 2*(m8-m11) {
		t.Errorf("knee should be at/before 8 ways: drop2-8=%.2f drop8-11=%.2f", m2-m8, m8-m11)
	}
}

// TestServiceSimBands: Fig 2–4 at the searched peak.
func TestServiceSimBands(t *testing.T) {
	peaks := map[string]PeakLoad{}
	for _, name := range []string{"Web", "Feed1", "Feed2", "Cache1"} {
		prof, _ := workload.ByName(name)
		peaks[name] = machineFor(t, name, prof.Platform, nil).FindPeak(7)
	}
	web := peaks["Web"].Result
	if web.RunFrac < 0.1 || web.RunFrac > 0.45 {
		t.Errorf("Web running fraction %.2f, paper ~0.28", web.RunFrac)
	}
	if web.QueueFrac+web.SchedFrac+web.IOFrac < 0.5 {
		t.Error("Web must be mostly blocked (Fig 2a)")
	}
	feed1 := peaks["Feed1"].Result
	if feed1.RunFrac < 0.9 {
		t.Errorf("Feed1 is a leaf: running %.2f, want >= 0.9", feed1.RunFrac)
	}
	feed2 := peaks["Feed2"].Result
	if feed2.RunFrac < 0.45 || feed2.RunFrac > 0.8 {
		t.Errorf("Feed2 running %.2f, paper ~0.62", feed2.RunFrac)
	}
	// Fig 3: utilization ceilings.
	if web.Util < 0.8 {
		t.Errorf("Web peak utilization %.2f, want high (~0.92)", web.Util)
	}
	c1 := peaks["Cache1"].Result
	if c1.Util > 0.5 {
		t.Errorf("Cache1 peak utilization %.2f, must stay low under QoS", c1.Util)
	}
	if c1.KernelUtil < 0.2*c1.Util {
		t.Errorf("Cache1 kernel share %.2f of %.2f too low (Fig 3)", c1.KernelUtil, c1.Util)
	}
	// Fig 4: Cache context-switches at least 10x Web's per-core rate.
	if c1.CtxSwitchRate < 10*web.CtxSwitchRate {
		t.Errorf("ctx switch rates: Cache1 %.0f vs Web %.0f", c1.CtxSwitchRate, web.CtxSwitchRate)
	}
	// Table 2: throughput and latency scales.
	if c1.QPS < 50_000 {
		t.Errorf("Cache1 QPS %.0f, want O(100K)", c1.QPS)
	}
	if lat := c1.Latency.Quantile(0.5); lat > 1e-3 {
		t.Errorf("Cache1 median latency %.2g s, want µs-scale", lat)
	}
	if lat := feed2.Latency.Quantile(0.5); lat < 0.1 {
		t.Errorf("Feed2 median latency %.2g s, want ~seconds-scale", lat)
	}
}

// TestServiceSimDeterminism: same seed, same result.
func TestServiceSimDeterminism(t *testing.T) {
	m := machineFor(t, "Feed1", "Skylake18", nil)
	op := m.SolvePeak()
	run := func() ServiceResult {
		s := NewServiceSim(m.Profile(), op, 18, 2, 42)
		return s.Run(1500, 2)
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Util != b.Util || a.CtxSwitches != b.CtxSwitches {
		t.Fatalf("non-deterministic service sim: %+v vs %+v", a, b)
	}
}

// TestServiceSimOverload: offered load beyond capacity must saturate
// throughput, not crash or exceed capacity.
func TestServiceSimOverload(t *testing.T) {
	m := machineFor(t, "Feed1", "Skylake18", nil)
	op := m.SolvePeak()
	s := NewServiceSim(m.Profile(), op, 18, 2, 42)
	r := s.Run(50_000, 1) // far beyond Feed1's ~2000 QPS capacity
	if r.Util < 0.95 {
		t.Errorf("overload should saturate CPU: util %.2f", r.Util)
	}
	maxQPS := op.CoreIPS * 18 / m.Profile().PathLength * 1.1
	if r.QPS > maxQPS {
		t.Errorf("completed QPS %.0f exceeds capacity %.0f", r.QPS, maxQPS)
	}
}

// TestMachineRejectsInvalidConfig guards constructor validation.
func TestMachineRejectsInvalidConfig(t *testing.T) {
	sku := platform.Skylake18()
	srv, err := platform.NewServer(sku, sku.StockConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := workload.Web()
	bad.CodePools = 0
	if _, err := NewMachine(srv, bad, 1); err == nil {
		t.Fatal("invalid profile must be rejected")
	}
}

// TestWastedSHPPenalty: over-reserving SHPs costs throughput (Fig 18b
// downslope mechanism).
func TestWastedSHPPenalty(t *testing.T) {
	shp := func(n int) func(knob.Config) knob.Config {
		return func(c knob.Config) knob.Config { return c.With(knob.SHP, knob.IntSetting("n", n)) }
	}
	at300 := peakMIPS(t, "Web", "Skylake18", shp(300))
	at600 := peakMIPS(t, "Web", "Skylake18", shp(600))
	if at600 >= at300 {
		t.Errorf("600 SHPs (300 wasted) must underperform 300: %.0f vs %.0f", at600, at300)
	}
}

// TestEnergyOperatingPoint: the §7 extension exposes power and
// efficiency; lower frequency must improve MIPS/W for memory-bound Web
// even though it costs MIPS.
func TestEnergyOperatingPoint(t *testing.T) {
	at := func(mhz int) Operating {
		return machineFor(t, "Web", "Skylake18", func(c knob.Config) knob.Config {
			return c.With(knob.CoreFreq, knob.IntSetting("f", mhz))
		}).SolvePeak()
	}
	hi, lo := at(2200), at(1600)
	if hi.Watts <= lo.Watts {
		t.Fatalf("power must rise with frequency: %g vs %g", hi.Watts, lo.Watts)
	}
	if hi.MIPS <= lo.MIPS {
		t.Fatal("performance must rise with frequency")
	}
	if lo.MIPSPerWatt <= hi.MIPSPerWatt {
		t.Fatalf("memory-bound Web should be more efficient at 1.6 GHz: %.1f vs %.1f MIPS/W",
			lo.MIPSPerWatt, hi.MIPSPerWatt)
	}
}

// TestServiceSimLatencyRisesWithLoad: open-loop queueing — latency is
// monotone-ish in offered load and explodes near saturation.
func TestServiceSimLatencyRisesWithLoad(t *testing.T) {
	m := machineFor(t, "Feed1", "Skylake18", nil)
	op := m.SolvePeak()
	run := func(qps float64) ServiceResult {
		s := NewServiceSim(m.Profile(), op, 18, 2, 9)
		return s.Run(qps, 2)
	}
	low := run(500)
	mid := run(1500)
	if mid.Latency.Mean() < low.Latency.Mean() {
		t.Fatalf("latency must not fall with load: %g vs %g",
			mid.Latency.Mean(), low.Latency.Mean())
	}
	if mid.Util <= low.Util {
		t.Fatal("utilization must rise with load")
	}
}

// TestFindPeakRespectsQoS: a latency-tightened profile peaks at lower
// load than the stock profile.
func TestFindPeakRespectsQoS(t *testing.T) {
	m1 := machineFor(t, "Feed1", "Skylake18", nil)
	loose := m1.FindPeak(5)

	tight := *m1.Profile()
	tight.QoSLatencyP99 = tight.QoSLatencyP99 / 4
	sku := m1.Server().SKU()
	srv, err := platform.NewServer(sku, m1.Server().Config())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMachine(srv, &tight, 5)
	if err != nil {
		t.Fatal(err)
	}
	strict := m2.FindPeak(5)
	if strict.Feasible && strict.Result.Latency.Quantile(0.99) > tight.QoSLatencyP99 {
		t.Fatalf("feasible peak violated QoS: p99=%g limit=%g",
			strict.Result.Latency.Quantile(0.99), tight.QoSLatencyP99)
	}
	if strict.OfferedQPS > loose.OfferedQPS {
		t.Fatalf("tighter QoS cannot admit more load: %g vs %g",
			strict.OfferedQPS, loose.OfferedQPS)
	}
	if !loose.Feasible {
		t.Fatal("stock QoS must be attainable")
	}
	// An impossible SLO must be reported, not silently returned.
	impossible := *m1.Profile()
	impossible.QoSLatencyP99 = 1e-6
	srv2, err := platform.NewServer(sku, m1.Server().Config())
	if err != nil {
		t.Fatal(err)
	}
	m3, err := NewMachine(srv2, &impossible, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m3.FindPeak(5).Feasible {
		t.Fatal("microsecond SLO on a ms-scale service cannot be feasible")
	}
}

// TestCharacterizeCached: repeated characterization reuses the window.
func TestCharacterizeCached(t *testing.T) {
	m := machineFor(t, "Feed2", "Skylake18", nil)
	a := m.Characterize()
	b := m.Characterize()
	if a != b {
		t.Fatal("Characterize must return the cached rates pointer")
	}
	if err := m.SetCAT(8); err != nil {
		t.Fatal(err)
	}
	c := m.Characterize()
	if c == a {
		t.Fatal("SetCAT must invalidate the cached characterization")
	}
}

// TestSolveUtilClamp: degenerate utilizations are clamped, not fatal.
func TestSolveUtilClamp(t *testing.T) {
	m := machineFor(t, "Feed2", "Skylake18", nil)
	lo := m.Solve(-1)
	hi := m.Solve(5)
	if lo.MIPS <= 0 || hi.MIPS <= 0 {
		t.Fatal("clamped solves must still produce operating points")
	}
	if hi.Util != 1 {
		t.Fatalf("over-unity utilization must clamp to 1, got %g", hi.Util)
	}
}

// TestSPECRoundTrip is an end-to-end validation of the simulator: a
// profile derived from a SPEC benchmark's published counter row
// (workload.SPECProfile's inverse calibration) must, when run through
// the full machine, reproduce that row's MPKI profile — without any
// hand-tuning.
func TestSPECRoundTrip(t *testing.T) {
	sku := platform.Skylake20()
	within := func(got, want, absTol, relTol float64) bool {
		diff := math.Abs(got - want)
		return diff <= absTol || diff <= want*relTol
	}
	for _, ref := range workload.SPEC2006() {
		ref := ref
		prof := workload.SPECProfile(ref)
		srv, err := platform.NewServer(sku, ProductionConfig(sku, prof))
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMachine(srv, prof, 17)
		if err != nil {
			t.Fatal(err)
		}
		r := m.Characterize()
		l1c, l1d := r.CacheMPKI(cache.L1)
		llcc, llcd := r.CacheMPKI(cache.LLC)
		if !within(l1d, ref.L1DataMPKI, 4, 0.5) {
			t.Errorf("%s: L1 data MPKI %.1f vs published %.1f", ref.Name, l1d, ref.L1DataMPKI)
		}
		if !within(l1c, ref.L1CodeMPKI, 3, 0.6) {
			t.Errorf("%s: L1 code MPKI %.1f vs published %.1f", ref.Name, l1c, ref.L1CodeMPKI)
		}
		if !within(llcd, ref.LLCDataMPKI, 1.5, 0.5) {
			t.Errorf("%s: LLC data MPKI %.2f vs published %.2f", ref.Name, llcd, ref.LLCDataMPKI)
		}
		if !within(llcc, ref.LLCCodeMPKI, 0.5, 0.8) {
			t.Errorf("%s: LLC code MPKI %.2f vs published %.2f", ref.Name, llcc, ref.LLCCodeMPKI)
		}
	}
}

// TestSPECIPCOrdering: the simulated SPEC suite must order IPC the way
// the measurements do — cache-friendly hmmer/h264ref fast, mcf slow.
func TestSPECIPCOrdering(t *testing.T) {
	sku := platform.Skylake20()
	ipc := func(name string) float64 {
		for _, ref := range workload.SPEC2006() {
			if ref.Name != name {
				continue
			}
			prof := workload.SPECProfile(ref)
			srv, err := platform.NewServer(sku, ProductionConfig(sku, prof))
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMachine(srv, prof, 17)
			if err != nil {
				t.Fatal(err)
			}
			return m.Solve(1.0).IPC
		}
		t.Fatalf("no such benchmark %s", name)
		return 0
	}
	mcf := ipc("429.mcf")
	hmmer := ipc("456.hmmer")
	if hmmer < 2*mcf {
		t.Fatalf("hmmer IPC %.2f should dwarf mcf's %.2f", hmmer, mcf)
	}
}
