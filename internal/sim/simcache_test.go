package sim

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"softsku/internal/knob"
	"softsku/internal/platform"
	"softsku/internal/workload"
)

// withColdCache runs fn with the characterization cache enabled and
// empty, restoring the previous enable state afterwards.
func withColdCache(t *testing.T, enabled bool, fn func()) {
	t.Helper()
	prev := SetCharacterizationCache(enabled)
	ResetCharacterizationCache()
	defer func() {
		SetCharacterizationCache(prev)
		ResetCharacterizationCache()
	}()
	fn()
}

func keyInputs(t *testing.T, svc, plat string) (*platform.SKU, *workload.Profile, knob.Config) {
	t.Helper()
	base, err := workload.ByName(svc)
	if err != nil {
		t.Fatal(err)
	}
	prof := workload.ForPlatform(base, plat)
	sku, err := platform.ByName(plat)
	if err != nil {
		t.Fatal(err)
	}
	return sku, prof, ProductionConfig(sku, prof)
}

// TestCharKeyCompleteness flips every knob.Config field one at a time
// and asserts the fingerprint changes iff the field is µarch-relevant.
// The table is keyed by field name and must cover every field, so a
// new knob landing in knob.Config fails this test until its cache-key
// treatment is decided — the guard against silently-stale entries.
func TestCharKeyCompleteness(t *testing.T) {
	sku, prof, cfg := keyInputs(t, "Web", "Skylake18")
	if prof.CtxSwitchRate <= 0 {
		t.Fatal("test needs a profile with a nonzero context-switch rate")
	}
	cases := map[string]struct {
		flip       func(*knob.Config)
		wantChange bool
	}{
		// Core frequency reaches the window only through the
		// context-switch interval; a large change moves the interval,
		// so with this profile the key must change.
		"CoreFreqMHz":   {func(c *knob.Config) { c.CoreFreqMHz /= 2 }, true},
		"UncoreFreqMHz": {func(c *knob.Config) { c.UncoreFreqMHz /= 2 }, false},
		"Cores":         {func(c *knob.Config) { c.Cores /= 2 }, true},
		"CDP":           {func(c *knob.Config) { c.CDP = knob.CDPConfig{DataWays: 7, CodeWays: 4} }, true},
		"Prefetch":      {func(c *knob.Config) { c.Prefetch = knob.PrefetchNone }, true},
		"THP":           {func(c *knob.Config) { c.THP = knob.THPNever }, true},
		"SHPCount":      {func(c *knob.Config) { c.SHPCount += 512 }, true},
	}
	typ := reflect.TypeOf(cfg)
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		tc, ok := cases[name]
		if !ok {
			t.Errorf("knob.Config field %s has no cache-key expectation: decide whether it is µarch-relevant and add it to this table (and to charKey if so)", name)
			continue
		}
		base := charKey(sku, prof, cfg, 0, 1)
		mod := cfg
		tc.flip(&mod)
		if mod == cfg {
			t.Errorf("%s: flip did not change the config", name)
			continue
		}
		changed := charKey(sku, prof, mod, 0, 1) != base
		if changed != tc.wantChange {
			t.Errorf("%s: key changed = %v, want %v", name, changed, tc.wantChange)
		}
	}
}

// TestCharKeyNonConfigInputs covers the key inputs that are not
// knob.Config fields: seed, CAT ways, profile, and SKU.
func TestCharKeyNonConfigInputs(t *testing.T) {
	sku, prof, cfg := keyInputs(t, "Web", "Skylake18")
	base := charKey(sku, prof, cfg, 0, 1)
	if charKey(sku, prof, cfg, 0, 2) == base {
		t.Error("seed change did not change the key")
	}
	if charKey(sku, prof, cfg, 4, 1) == base {
		t.Error("CAT way change did not change the key")
	}
	prof2 := *prof
	prof2.DataHot.Bytes += 4096
	if charKey(sku, &prof2, cfg, 0, 1) == base {
		t.Error("profile change did not change the key")
	}
	sku2 := *sku
	sku2.LLC += 1 << 20
	if charKey(&sku2, prof, cfg, 0, 1) == base {
		t.Error("SKU change did not change the key")
	}
}

// TestCharKeyCoreFreqOnlyViaInterval pins the design decision that
// core frequency enters the key only through the context-switch
// interval: with a zero switch rate the key must be frequency-blind,
// and a frequency change too small to move the interval must hit.
func TestCharKeyCoreFreqOnlyViaInterval(t *testing.T) {
	sku, prof, cfg := keyInputs(t, "Web", "Skylake18")
	prof2 := *prof
	prof2.CtxSwitchRate = 0
	mod := cfg
	mod.CoreFreqMHz /= 2
	if charKey(sku, &prof2, cfg, 0, 1) != charKey(sku, &prof2, mod, 0, 1) {
		t.Error("with no context switching, core frequency must not change the key")
	}
}

// TestCtxSwitchInterval covers the satellite divide-by-zero fix: the
// interval clamps to one instruction instead of rounding to zero.
func TestCtxSwitchInterval(t *testing.T) {
	if got := ctxSwitchInterval(2100, 0); got != math.MaxInt64 {
		t.Errorf("zero rate: interval = %d, want MaxInt64", got)
	}
	if got := ctxSwitchInterval(2100, 3500); got != int(2100e6/3500) {
		t.Errorf("normal rate: interval = %d", got)
	}
	if got := ctxSwitchInterval(2100, 1e15); got != 1 {
		t.Errorf("extreme rate: interval = %d, want 1", got)
	}
}

// TestRunWindowExtremeCtxSwitchRate is the regression test for the
// runWindow divide-by-zero: a switch rate high enough to round the
// interval below one instruction used to panic; now it means a switch
// every chunk.
func TestRunWindowExtremeCtxSwitchRate(t *testing.T) {
	base, err := workload.ByName("Web")
	if err != nil {
		t.Fatal(err)
	}
	prof := workload.ForPlatform(base, "Skylake18")
	extreme := *prof
	extreme.CtxSwitchRate = 1e15
	sku, err := platform.ByName("Skylake18")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := platform.NewServer(sku, ProductionConfig(sku, &extreme))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(srv, &extreme, 1)
	if err != nil {
		t.Fatal(err)
	}
	withColdCache(t, false, func() {
		r := m.Characterize()
		if r.CtxSwitches == 0 {
			t.Error("extreme switch rate produced no context switches")
		}
	})
}

// TestCharacterizeCacheEquivalence builds the same machine twice with
// the cache cold and asserts the second characterization is a hit that
// returns rates DeepEqual to an uncached measurement.
func TestCharacterizeCacheEquivalence(t *testing.T) {
	var uncached, first, second *WindowRates
	withColdCache(t, false, func() {
		uncached = machineFor(t, "Web", "Skylake18", nil).Characterize()
	})
	withColdCache(t, true, func() {
		h0, m0 := mSimCacheHits.Value(), mSimCacheMisses.Value()
		first = machineFor(t, "Web", "Skylake18", nil).Characterize()
		second = machineFor(t, "Web", "Skylake18", nil).Characterize()
		if d := mSimCacheMisses.Value() - m0; d != 1 {
			t.Errorf("misses = %v, want 1", d)
		}
		if d := mSimCacheHits.Value() - h0; d != 1 {
			t.Errorf("hits = %v, want 1", d)
		}
	})
	if !reflect.DeepEqual(first, uncached) {
		t.Error("cached measurement differs from uncached")
	}
	if !reflect.DeepEqual(second, first) {
		t.Error("cache hit returned different rates")
	}
}

// TestCharCacheDistinguishes asserts configs that must not share a
// window do not: a different seed, a different knob setting, and a
// CAT-limited machine all miss.
func TestCharCacheDistinguishes(t *testing.T) {
	withColdCache(t, true, func() {
		m0 := mSimCacheMisses.Value()
		machineFor(t, "Web", "Skylake18", nil).Characterize()
		mSeed := machineFor(t, "Web", "Skylake18", nil)
		mSeed.seed = 99
		mSeed.Characterize()
		machineFor(t, "Web", "Skylake18", func(c knob.Config) knob.Config {
			c.THP = knob.THPAlways
			return c
		}).Characterize()
		mCAT := machineFor(t, "Web", "Skylake18", nil)
		if err := mCAT.SetCAT(4); err != nil {
			t.Fatal(err)
		}
		mCAT.Characterize()
		if d := mSimCacheMisses.Value() - m0; d != 4 {
			t.Errorf("misses = %v, want 4 (all four configs distinct)", d)
		}
	})
}

// TestCharCacheSingleFlight races eight goroutines, each with its own
// identically-configured machine, and asserts exactly one window ran
// while everyone got DeepEqual rates — the property that makes the
// cache safe under core.ParallelFor at any worker count.
func TestCharCacheSingleFlight(t *testing.T) {
	const n = 8
	machines := make([]*Machine, n)
	for i := range machines {
		machines[i] = machineFor(t, "Web", "Skylake18", nil)
	}
	withColdCache(t, true, func() {
		h0, m0 := mSimCacheHits.Value(), mSimCacheMisses.Value()
		w0 := mSimWindows.Value()
		rates := make([]*WindowRates, n)
		var wg sync.WaitGroup
		for i := range machines {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rates[i] = machines[i].Characterize()
			}(i)
		}
		wg.Wait()
		for i := 1; i < n; i++ {
			if !reflect.DeepEqual(rates[i], rates[0]) {
				t.Fatalf("goroutine %d observed different rates", i)
			}
		}
		if d := mSimWindows.Value() - w0; d != 1 {
			t.Errorf("windows executed = %v, want 1 (single-flight)", d)
		}
		if d := mSimCacheMisses.Value() - m0; d != 1 {
			t.Errorf("misses = %v, want 1", d)
		}
		if d := mSimCacheHits.Value() - h0; d != n-1 {
			t.Errorf("hits = %v, want %d", d, n-1)
		}
	})
}

// TestFingerprintTypesAddressFree walks the Profile and SKU types and
// rejects pointer-like kinds: charKey fingerprints both with %#v, which
// would render a pointer field as its address and silently break key
// determinism across processes.
func TestFingerprintTypesAddressFree(t *testing.T) {
	var check func(t *testing.T, typ reflect.Type, path string)
	check = func(t *testing.T, typ reflect.Type, path string) {
		switch typ.Kind() {
		case reflect.Ptr, reflect.UnsafePointer, reflect.Chan, reflect.Func, reflect.Interface, reflect.Map:
			t.Errorf("%s has kind %s: unsafe to fingerprint with %%#v; fold it into charKey explicitly", path, typ.Kind())
		case reflect.Struct:
			for i := 0; i < typ.NumField(); i++ {
				f := typ.Field(i)
				check(t, f.Type, path+"."+f.Name)
			}
		case reflect.Slice, reflect.Array:
			check(t, typ.Elem(), path+"[]")
		}
	}
	check(t, reflect.TypeOf(workload.Profile{}), "Profile")
	check(t, reflect.TypeOf(platform.SKU{}), "SKU")
}
