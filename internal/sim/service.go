package sim

import (
	"fmt"
	"math"

	"softsku/internal/rng"
	"softsku/internal/stats"
	"softsku/internal/workload"
)

// ServiceSim is the request-level discrete-event simulation of one
// server: open-loop Poisson arrivals into a worker thread pool,
// non-preemptive hardware-thread scheduling, and per-request phases of
// computing and blocking on downstream microservices. It produces the
// paper's system-level characterization: request-latency breakdowns
// (Fig 2), CPU utilization (Fig 3), and context-switch rates (Fig 4).
type ServiceSim struct {
	prof    *workload.Profile
	coreIPS float64 // per-core instruction throughput (SMT-boosted)
	cores   int
	smt     int
	src     *rng.Source
	eng     *Engine

	slotIPS   float64 // per hardware thread
	freeSlots int
	runQueue  reqRing // ready, waiting for a hardware thread
	idleWrk   int
	waitQueue reqRing // arrived, waiting for a worker thread

	measureStart float64
	busyTime     float64 // hardware-thread busy seconds in the window
	res          ServiceResult

	freeReqs []*request // recycled request objects (closures prebuilt)
}

// reqRing is a FIFO of requests over a reusable circular buffer. The
// slice-based queues it replaces (`q = q[1:]` pops) kept every popped
// *request reachable through the backing array for the run's lifetime;
// the ring nils the slot on pop and recycles the buffer, so steady-state
// queueing allocates nothing (see TestServiceSimQueueAllocs).
type reqRing struct {
	buf  []*request
	head int
	n    int
}

func (q *reqRing) len() int { return q.n }

func (q *reqRing) push(r *request) {
	if q.n == len(q.buf) {
		grown := make([]*request, 2*q.n+8)
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = r
	q.n++
}

func (q *reqRing) pop() *request {
	r := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return r
}

// request tracks one in-flight query. Request objects are recycled
// through ServiceSim.freeReqs, and the two continuation closures every
// segment needs (segment-end transition, downstream wakeup) are built
// once per object — they capture the stable *request pointer, so reuse
// keeps them valid. Steady state therefore schedules segments with zero
// allocations (see TestServiceSimQueueAllocs).
type request struct {
	arrive   float64
	workerAt float64 // time a worker picked it up
	readyAt  float64 // time it last became ready to run
	segLeft  int
	segInstr float64

	queueTime float64
	schedTime float64
	runTime   float64
	ioTime    float64

	segDone func() // end-of-segment transition (built once per object)
	wakeFn  func() // downstream-response delivery (built once per object)
}

// ServiceResult aggregates the measured system-level behaviour.
type ServiceResult struct {
	Duration  float64
	Offered   float64 // offered QPS
	Completed uint64
	QPS       float64

	Latency stats.Histogram // end-to-end request latency, seconds

	// Mean per-request latency components (Fig 2).
	QueueFrac float64 // waiting for a worker thread
	SchedFrac float64 // ready but not running (oversubscription)
	RunFrac   float64 // executing instructions
	IOFrac    float64 // blocked on downstream microservices

	// CPU accounting (Fig 3).
	Util       float64 // busy hardware-thread time / capacity
	UserUtil   float64
	KernelUtil float64

	// Context switches (Fig 4).
	CtxSwitches   uint64
	CtxSwitchRate float64 // per second per busy core
}

// Blocked returns the non-running fraction of request latency.
func (r ServiceResult) Blocked() float64 { return 1 - r.RunFrac }

// String summarizes the run.
func (r ServiceResult) String() string {
	return fmt.Sprintf("qps=%.0f util=%.0f%% lat{%s} run=%.0f%% queue=%.0f%% sched=%.0f%% io=%.0f%%",
		r.QPS, r.Util*100, r.Latency.String(),
		r.RunFrac*100, r.QueueFrac*100, r.SchedFrac*100, r.IOFrac*100)
}

// NewServiceSim builds a request simulator for a service running on a
// machine whose microarchitectural operating point supplies the
// per-core instruction rate.
func NewServiceSim(prof *workload.Profile, op Operating, cores, smt int, seed uint64) *ServiceSim {
	s := &ServiceSim{
		prof:    prof,
		coreIPS: op.CoreIPS,
		cores:   cores,
		smt:     smt,
		src:     rng.New(seed),
		eng:     NewEngine(),
	}
	s.slotIPS = op.CoreIPS / float64(smt)
	s.freeSlots = cores * smt
	s.idleWrk = prof.WorkerThreads
	return s
}

// Run simulates offered QPS of Poisson traffic for duration seconds of
// virtual time (after a 10% warm-up that is excluded from statistics).
func (s *ServiceSim) Run(offeredQPS, duration float64) ServiceResult {
	warm := duration * 0.1
	horizon := warm + duration
	measureStart := warm

	s.res = ServiceResult{Duration: duration, Offered: offeredQPS}
	s.measureStart = measureStart
	s.busyTime = 0

	var arrive func()
	arrive = func() {
		now := s.eng.Now()
		if now < horizon {
			s.eng.After(s.src.Exp(1/offeredQPS), arrive)
		}
		r := s.newRequest(now)
		if s.idleWrk > 0 {
			s.idleWrk--
			s.startOnWorker(r)
		} else {
			s.waitQueue.push(r)
		}
	}

	s.eng.After(s.src.Exp(1/offeredQPS), arrive)
	s.eng.Run(horizon)

	res := &s.res
	res.QPS = float64(res.Completed) / duration
	capacity := float64(s.cores*s.smt) * duration
	res.Util = s.busyTime / capacity
	if res.Util > 1 {
		res.Util = 1
	}
	// Kernel share: the profile's kernel/IO-wait fraction plus direct
	// context-switch cost.
	switchTime := float64(res.CtxSwitches) * ctxSwitchCostSec / capacity * float64(s.smt)
	res.KernelUtil = res.Util*s.prof.KernelFrac + switchTime
	if res.KernelUtil > res.Util {
		res.KernelUtil = res.Util
	}
	res.UserUtil = res.Util - res.KernelUtil
	if busyCore := res.Util * float64(s.cores); busyCore > 0 {
		res.CtxSwitchRate = float64(res.CtxSwitches) / duration / busyCore
	}

	// Normalize latency component fractions.
	total := res.QueueFrac + res.SchedFrac + res.RunFrac + res.IOFrac
	if total > 0 {
		res.QueueFrac /= total
		res.SchedFrac /= total
		res.RunFrac /= total
		res.IOFrac /= total
	}
	return *res
}

// accountBusy accumulates the in-window portion of a compute segment.
func (s *ServiceSim) accountBusy(segTime, start float64) {
	lo, hi := start, start+segTime
	if lo < s.measureStart {
		lo = s.measureStart
	}
	if hi > lo {
		s.busyTime += hi - lo
	}
}

// newRequest takes a recycled request object (or allocates one, building
// its continuation closures exactly once) and resets it for a fresh
// arrival.
func (s *ServiceSim) newRequest(now float64) *request {
	var r *request
	if n := len(s.freeReqs); n > 0 {
		r = s.freeReqs[n-1]
		s.freeReqs = s.freeReqs[:n-1]
		*r = request{segDone: r.segDone, wakeFn: r.wakeFn}
	} else {
		r = &request{}
		r.segDone = func() { s.segmentDone(r) }
		r.wakeFn = func() { s.makeReady(r) }
	}
	r.arrive = now
	r.segLeft = s.prof.DownstreamCalls + 1
	r.segInstr = s.prof.PathLength / float64(r.segLeft)
	return r
}

// startOnWorker begins a request's lifecycle once a worker thread is
// assigned.
func (s *ServiceSim) startOnWorker(r *request) {
	now := s.eng.Now()
	r.workerAt = now
	r.queueTime = now - r.arrive
	s.makeReady(r)
}

// makeReady puts the request's worker into the run queue or directly
// onto a free hardware thread.
func (s *ServiceSim) makeReady(r *request) {
	r.readyAt = s.eng.Now()
	if s.freeSlots > 0 {
		s.freeSlots--
		s.runSegment(r)
	} else {
		s.runQueue.push(r)
	}
}

// runSegment executes the next compute segment on a hardware thread,
// then blocks on downstream I/O or completes.
func (s *ServiceSim) runSegment(r *request) {
	now := s.eng.Now()
	r.schedTime += now - r.readyAt
	// Segment compute demand, with modest service-time variability.
	instr := r.segInstr * (0.7 + 0.6*s.src.Float64())
	segTime := instr / s.slotIPS
	s.accountBusy(segTime, now)
	r.runTime += segTime
	s.res.CtxSwitches++ // dispatch onto the hardware thread
	s.eng.After(segTime, r.segDone)
}

// segmentDone is the end-of-segment continuation: release the hardware
// thread, then either complete the request or block it on a downstream
// call.
func (s *ServiceSim) segmentDone(r *request) {
	r.segLeft--
	// Release the hardware thread; run the next ready worker.
	if s.runQueue.len() > 0 {
		s.runSegment(s.runQueue.pop())
	} else {
		s.freeSlots++
	}
	if r.segLeft <= 0 {
		s.complete(r)
		return
	}
	// Block on a downstream call (voluntary context switch).
	// Responses are delivered on network-interrupt coalescing
	// boundaries, so wakeups arrive in bursts — the source of the
	// scheduler-latency component in Fig 2(b).
	io := s.src.Exp(s.prof.DownstreamLatency)
	const coalesce = 1e-3
	wake := s.eng.Now() + io
	wake = math.Ceil(wake/coalesce) * coalesce
	r.ioTime += wake - s.eng.Now()
	s.eng.At(wake, r.wakeFn)
}

// complete finishes the request, frees its worker, and records
// statistics if past warm-up.
func (s *ServiceSim) complete(r *request) {
	now := s.eng.Now()
	if s.waitQueue.len() > 0 {
		s.startOnWorker(s.waitQueue.pop())
	} else {
		s.idleWrk++
	}
	if r.arrive >= s.measureStart {
		s.res.Completed++
		s.res.Latency.Observe(now - r.arrive)
		s.res.QueueFrac += r.queueTime
		s.res.SchedFrac += r.schedTime
		s.res.RunFrac += r.runTime
		s.res.IOFrac += r.ioTime
	}
	// All of r's scheduled events have fired; recycle the object (and
	// its prebuilt closures) for a future arrival.
	s.freeReqs = append(s.freeReqs, r)
}
