// Package sim binds the substrates into a server simulator: a
// platform.Server runs one workload.Profile, its synthetic streams
// drive the cache/TLB/prefetch models, and a bandwidth↔latency fixed
// point yields the operating point (IPC, MIPS, top-down breakdown,
// memory bandwidth) that the characterization figures and µSKU's A/B
// tests observe. A discrete-event request simulator (service.go)
// layers request latency, queueing, and context-switch behaviour on
// top.
package sim

import (
	"fmt"

	"softsku/internal/cache"
	"softsku/internal/cpu"
	"softsku/internal/knob"
	"softsku/internal/mem"
	"softsku/internal/platform"
	"softsku/internal/prefetch"
	"softsku/internal/rng"
	"softsku/internal/tlb"
	"softsku/internal/workload"
)

const (
	// simThreads is how many representative worker threads drive the
	// shared hierarchy; the LLC is scaled by simThreads/activeCores to
	// preserve per-thread capacity pressure (see cache.NewHierarchySized).
	simThreads = 4

	// Measurement window sizes, instructions per simulated thread.
	warmupInstr  = 200_000
	measureInstr = 600_000

	// ctxSwitchCostSec is the direct (register/scheduler) cost of one
	// context switch. Prior work brackets total cost between ~1 µs and
	// ~12 µs; the indirect (cache pollution) part is emergent from
	// pool switching, so only the direct part is charged here.
	ctxSwitchCostSec = 2e-6

	// shpPressureMissPerMiB converts reserved-but-unused SHP memory
	// into extra cold data misses per instruction: memory lost to an
	// unusable reservation shrinks what the service (and page cache)
	// can keep resident. See DESIGN.md's substitution table.
	shpPressureMissPerMiB = 1e-6
)

// Machine simulates one server of a SKU running one microservice under
// a given soft-SKU configuration.
type Machine struct {
	srv    *platform.Server
	prof   *workload.Profile
	seed   uint64
	layout workload.Layout
	space  *tlb.AddressSpace
	hier   *cache.Hierarchy
	tlbs   []*tlb.TLB
	pfs    []*prefetch.Engine
	thr    []*workload.Stream
	memMod *mem.Model

	nthreads int
	catWays  int // CAT way limit applied via SetCAT; 0 = unlimited
	// pages is the flattened page resolver for runWindow's hot loop.
	pages tlb.Resolver
	// tally[level][0] counts data loads satisfied at level, [1] stores.
	tally [4][2]uint64
	rates *WindowRates // cached characterization, nil until measured
}

// WindowRates are per-instruction event rates measured over one
// window, the inputs to the cycle model's fixed point.
type WindowRates struct {
	Instructions uint64
	Counts       cpu.Counts // absolute counts over the window

	// Per-instruction DRAM line traffic.
	DemandMemPerInstr   float64 // demand LLC misses
	PrefetchMemPerInstr float64 // prefetch fills from DRAM

	CtxSwitches uint64

	// Raw model stats for MPKI reporting.
	Cache cache.LevelStats
	TLB   tlb.Stats
	PF    prefetch.Stats
}

// NewMachine builds the simulator for a server/profile pair. The
// profile should already be platform-adjusted (workload.ForPlatform).
func NewMachine(srv *platform.Server, prof *workload.Profile, seed uint64) (*Machine, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	cfg := srv.Config()
	sku := srv.SKU()

	m := &Machine{srv: srv, prof: prof, seed: seed, memMod: mem.NewModel(sku)}
	m.layout = prof.BuildLayout()
	space, err := tlb.NewAddressSpace(m.layout.Regions, cfg.THP, cfg.SHPCount)
	if err != nil {
		return nil, err
	}
	m.space = space
	m.pages = space.Resolver()

	m.nthreads = simThreads
	if cfg.Cores < m.nthreads {
		m.nthreads = cfg.Cores
	}
	// The simulated threads share the full LLC: service data is shared
	// across cores (one heap), so per-core LLC slicing would be wrong.
	// The footprint component that *does* grow with active cores —
	// per-request private state — is instead scaled into each sim
	// thread's private span (workload.NewStream's coreScale).
	totalLLC := sku.LLC * sku.Sockets
	m.hier = cache.NewHierarchySized(sku, m.nthreads, totalLLC)
	if cfg.CDP.Enabled() {
		if err := m.hier.ApplyCDP(cfg.CDP.DataWays, cfg.CDP.CodeWays); err != nil {
			return nil, err
		}
	}

	geom := tlb.Geometry{
		ITLB4K: sku.ITLB4K, ITLB2M: sku.ITLB2M,
		DTLB4K: sku.DTLB4K, DTLB2M: sku.DTLB2M,
		STLB: sku.STLB,
	}
	coreScale := float64(cfg.Cores) / float64(m.nthreads)
	for i := 0; i < m.nthreads; i++ {
		m.tlbs = append(m.tlbs, tlb.New(geom))
		m.pfs = append(m.pfs, prefetch.NewEngine(m.hier, i, cfg.Prefetch))
		m.thr = append(m.thr, workload.NewStream(prof, m.layout,
			seed+uint64(i)*7919, i, coreScale))
	}
	return m, nil
}

// Server returns the underlying server.
func (m *Machine) Server() *platform.Server { return m.srv }

// Profile returns the workload.
func (m *Machine) Profile() *workload.Profile { return m.prof }

// SetCAT limits the LLC to n ways (the Fig 10 capacity sweep) and
// invalidates the cached characterization.
func (m *Machine) SetCAT(n int) error {
	if err := m.hier.ApplyCAT(n); err != nil {
		return err
	}
	m.catWays = n
	m.rates = nil
	return nil
}

// prefill functionally warms the hierarchy with the steady-state
// resident working set. Measurement windows are far too short to warm
// multi-MiB tiers through sampled accesses alone (the classic
// sampled-simulation cold-start problem, cf. the paper's own warm-up
// discard, §4); installing the tiers directly — coldest first, so LRU
// ends up ordered by heat — lets short windows observe steady-state
// hit rates. The subsequent instruction warm-up settles TLBs and LRU.
func (m *Machine) prefill() {
	prof := m.prof
	installData := func(c *cache.Cache, lo, hi uint64) {
		workload.ForEachDataLine(prof, m.layout, lo, hi, func(addr uint64) {
			c.InstallWarm(addr, cache.Data)
		})
	}
	installCode := func(c *cache.Cache, pool int, bytes uint64) {
		workload.ForEachCodeLine(prof, m.layout, pool, bytes/64, func(addr uint64) {
			c.InstallWarm(addr, cache.Code)
		})
	}
	cfg := m.srv.Config()
	coreScale := float64(cfg.Cores) / float64(m.nthreads)
	llc := m.hier.LLCs
	llcBytes := uint64(m.srv.SKU().LLC * m.srv.SKU().Sockets)
	capSpan := func(b uint64) uint64 {
		if b > llcBytes {
			return llcBytes
		}
		return b
	}
	// Coldest first: the sequential-stream span (pure churn), then
	// private spans, warm tiers, then mid and hot so they end up
	// most-recently-used.
	if prof.DataSeqFrac > 0 {
		installData(llc, 0, capSpan(prof.SeqSpan))
	}
	for ti := 0; ti < m.nthreads; ti++ {
		base, span := workload.PrivateSpan(prof, ti, coreScale)
		if span > 0 {
			installData(llc, base, base+span)
		}
	}
	installData(llc, 0, prof.DataWarm.Bytes)
	for pool := 0; pool < prof.CodePools; pool++ {
		installCode(llc, pool, prof.CodeWarm.Bytes)
	}
	installData(llc, 0, prof.DataMid.Bytes)
	installData(llc, 0, prof.DataHot.Bytes)
	for ti := 0; ti < m.nthreads; ti++ {
		pool := ti % prof.CodePools
		installCode(llc, pool, prof.CodeMid.Bytes)
		installCode(m.hier.L2s[ti], pool, prof.CodeMid.Bytes)
		installCode(m.hier.L1I[ti], pool, prof.CodeHot.Bytes)
		installData(m.hier.L2s[ti], 0, prof.DataMid.Bytes)
		installData(m.hier.L1D[ti], 0, prof.DataHot.Bytes)
	}
}

// Characterize returns the machine's window rates, measuring them if
// neither this machine nor the process-wide characterization cache has
// them yet. The cache key covers every input that reaches the window
// (see charKey), so a hit returns the exact rates a fresh measurement
// would produce; SetCharacterizationCache(false) forces the
// measurement path.
func (m *Machine) Characterize() *WindowRates {
	if m.rates != nil {
		return m.rates
	}
	if CharacterizationCacheEnabled() {
		key := charKey(m.srv.SKU(), m.prof, m.srv.Config(), m.catWays, m.seed)
		m.rates = charcache.getOrMeasure(key, m.measure)
	} else {
		m.rates = m.measure()
	}
	return m.rates
}

// measure runs one characterization measurement window: functional
// prefill, instruction warm-up, stat reset, then a measured window per
// thread, interleaved in chunks so threads genuinely contend for the
// shared LLC.
func (m *Machine) measure() *WindowRates {
	mSimWindows.Inc()
	m.prefill()
	ager := rng.New(m.seed ^ 0xa6e5)
	m.hier.LLCs.ScrambleAges(ager.Intn)
	m.runWindow(warmupInstr)
	m.resetStats()
	switches := m.runWindow(measureInstr)

	instr := uint64(measureInstr) * uint64(m.nthreads)
	r := &WindowRates{
		Instructions: instr,
		CtxSwitches:  switches,
		Cache:        m.hier.Stats(),
	}
	for _, t := range m.tlbs {
		s := t.Stats()
		r.TLB.Fetches += s.Fetches
		r.TLB.FetchMisses += s.FetchMisses
		r.TLB.Loads += s.Loads
		r.TLB.LoadMisses += s.LoadMisses
		r.TLB.Stores += s.Stores
		r.TLB.StoreMisses += s.StoreMisses
		r.TLB.WalkCycles += s.WalkCycles
	}
	for _, p := range m.pfs {
		s := p.Stats()
		r.PF.Issued += s.Issued
		r.PF.Moved += s.Moved
		r.PF.FromMemory += s.FromMemory
	}

	mix := m.prof.Mix.Normalize()
	c := &r.Counts
	c.Instructions = instr
	c.Branches = uint64(float64(instr) * mix.Branch)
	c.Mispredicts = uint64(float64(c.Branches) * m.prof.BranchMispredict)

	// Accesses satisfied at each level: L1 misses that hit L2, etc.
	cs := r.Cache
	c.CodeL2 = cs.L2.Accesses[cache.Code] - cs.L2.Misses[cache.Code]
	c.CodeLLC = cs.LLC.Accesses[cache.Code] - cs.LLC.Misses[cache.Code]
	c.CodeMem = cs.LLC.Misses[cache.Code]
	c.DataL2 = m.tally[cache.L2][0]
	c.DataLLC = m.tally[cache.LLC][0]
	c.DataMem = m.tally[cache.Memory][0]
	c.StoreL2 = m.tally[cache.L2][1]
	c.StoreLLC = m.tally[cache.LLC][1]
	c.StoreMem = m.tally[cache.Memory][1]

	// Split walk cycles by origin using miss counts.
	iw := r.TLB.FetchMisses
	dw := r.TLB.LoadMisses + r.TLB.StoreMisses
	if iw+dw > 0 {
		c.ITLBWalkCycles = r.TLB.WalkCycles * iw / (iw + dw)
		c.DTLBWalkCycles = r.TLB.WalkCycles - c.ITLBWalkCycles
	}

	// SHP over-reservation pressure: wasted MiB become cold misses.
	wasted := float64(m.space.WastedSHPMiB())
	extra := uint64(float64(instr) * wasted * shpPressureMissPerMiB)
	c.DataMem += extra

	r.DemandMemPerInstr = float64(cs.LLC.TotalMisses()+extra) / float64(instr)
	r.PrefetchMemPerInstr = float64(r.PF.FromMemory) / float64(instr)

	return r
}

// runWindow advances every thread by instrPerThread instructions in
// interleaved chunks, returning the number of context switches
// injected.
func (m *Machine) runWindow(instrPerThread int) uint64 {
	cfg := m.srv.Config()
	// Context-switch interval in instructions, from the profile's
	// per-core switch rate at this core frequency (IPC≈1 estimate; the
	// induced error is second-order). ctxSwitchInterval clamps to ≥1,
	// so an extreme switch rate means a switch every chunk instead of
	// the divide-by-zero interval==0 used to cause below.
	interval := ctxSwitchInterval(cfg.CoreFreqMHz, m.prof.CtxSwitchRate)
	var switches uint64
	const chunk = 2000
	buf := make([]workload.Access, 0, chunk*2)
	hier, pages, tally := m.hier, &m.pages, &m.tally
	for done := 0; done < instrPerThread; done += chunk {
		n := chunk
		if instrPerThread-done < n {
			n = instrPerThread - done
		}
		switchNow := done/interval != (done+n)/interval
		for ti := range m.thr {
			buf = m.thr[ti].Generate(buf[:0], n)
			t := m.tlbs[ti]
			pf := m.pfs[ti]
			for i := range buf {
				a := &buf[i]
				lvl := hier.Access(ti, a.Addr, a.Kind)
				if a.Kind == cache.Data {
					st := 0
					if a.Type == tlb.Store {
						st = 1
					}
					tally[lvl][st]++
				}
				page, huge := pages.PageOf(int(a.Region), a.Addr)
				t.Access(page, huge, a.Type)
				pf.OnAccess(a.Addr, a.Kind, a.IP, lvl)
			}
			if switchNow {
				m.thr[ti].SwitchPool()
				switches++
			}
		}
	}
	return switches
}

func (m *Machine) resetStats() {
	m.tally = [4][2]uint64{}
	m.hier.ResetStats()
	for i := range m.tlbs {
		m.tlbs[i].ResetStats()
		m.pfs[i].ResetStats()
	}
}

// Operating is the steady-state operating point of the machine at a
// given CPU utilization: the quantities EMON-style sampling observes.
type Operating struct {
	Util float64

	IPC      float64 // per hardware thread
	SMTBoost float64
	CoreIPS  float64 // per core, SMT-boosted, at effective frequency
	TotalIPS float64 // machine-wide, utilization-scaled
	MIPS     float64 // TotalIPS / 1e6 — µSKU's throughput metric
	QPS      float64 // TotalIPS / path length

	EffCoreMHz   float64
	MemBWGBs     float64 // achieved DRAM bandwidth
	MemLatencyNS float64 // average loaded memory latency
	Watts        float64 // estimated platform power (§7 extension)
	MIPSPerWatt  float64 // energy efficiency of the operating point
	TopDown      cpu.TopDown

	Rates *WindowRates
}

// Solve finds the operating point at the given utilization by solving
// the bandwidth↔latency fixed point: memory latency depends on
// bandwidth, which depends on achieved IPS, which depends on memory
// latency. Saturation-bound services (Web on Broadwell) settle where
// the latency curve's knee caps throughput — the mechanism behind
// Figs 16(b) and 17.
func (m *Machine) Solve(util float64) Operating {
	return solveRates(m.srv.SKU(), m.prof, m.srv.Config(), m.memMod, m.Characterize(), util)
}

// SolveRates computes the operating point implied by explicit window
// rates for a SKU/profile/config triple at the given utilization. It is
// the exact algebra Machine.Solve runs on its own characterization —
// extracted so the analytical twin (internal/twin) can price *predicted*
// rates through the identical cycle-accounting and queueing fixed
// point: any twin-vs-simulator divergence then comes from the predicted
// counts alone, never from a drifting copy of this model.
func SolveRates(sku *platform.SKU, prof *workload.Profile, cfg knob.Config, r *WindowRates, util float64) Operating {
	return solveRates(sku, prof, cfg, mem.NewModel(sku), r, util)
}

func solveRates(sku *platform.SKU, prof *workload.Profile, cfg knob.Config, memMod *mem.Model, r *WindowRates, util float64) Operating {
	if util <= 0 {
		util = 1e-3
	}
	if util > 1 {
		util = 1
	}
	effMHz := sku.EffectiveCoreMHz(cfg, prof.AVXFrac())
	uncore := sku.UncoreScale(cfg)
	ghz := float64(effMHz) / 1000

	counts := r.Counts
	counts.CtxSwitchCycles = uint64(float64(r.CtxSwitches) * ctxSwitchCostSec * float64(effMHz) * 1e6)

	linesPerInstr := r.DemandMemPerInstr + r.PrefetchMemPerInstr
	var res cpu.Result
	var latNS float64
	// achieved(x) is the machine-wide IPS the cycle model delivers when
	// memory latency is priced at the bandwidth x·lines·64 implies. It
	// is monotone non-increasing in x, so the fixed point
	// achieved(IPS) = IPS is unique; bisection is robust even on the
	// steep saturated part of the latency curve where plain iteration
	// oscillates.
	achieved := func(ips float64) float64 {
		bw := ips * linesPerInstr * 64 / 1e9
		latNS = memMod.LatencyNS(bw, prof.Burstiness, uncore)
		p := cpu.Params{
			Width:         sku.DispatchWidth,
			L2LatCycles:   sku.L2LatencyNS * ghz,
			LLCLatCycles:  sku.LLCLatencyNS * (0.45 + 0.55*uncore) * ghz,
			MemLatCycles:  latNS * ghz,
			MispredictPen: 15,
			DepStallCPI:   prof.DepStallCPI,
			BEOverlap:     prof.BEOverlap,
			SMT:           sku.SMT > 1,
		}
		res = cpu.Analyze(counts, p)
		return res.CoreIPS(effMHz) * float64(cfg.Cores) * util
	}
	lo := 0.0
	hi := float64(sku.DispatchWidth) * 1.4 * float64(effMHz) * 1e6 * float64(cfg.Cores)
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if achieved(mid) > mid {
			lo = mid
		} else {
			hi = mid
		}
	}
	totalIPS := achieved((lo + hi) / 2)
	bw := totalIPS * linesPerInstr * 64 / 1e9
	latNS = memMod.LatencyNS(bw, prof.Burstiness, uncore)
	watts := sku.PowerWatts(cfg, effMHz, util, memMod.AchievedGBs(bw))
	return Operating{
		Util:         util,
		IPC:          res.IPC,
		SMTBoost:     res.SMTBoost,
		CoreIPS:      res.CoreIPS(effMHz),
		TotalIPS:     totalIPS,
		MIPS:         totalIPS / 1e6,
		QPS:          totalIPS / prof.PathLength,
		EffCoreMHz:   float64(effMHz),
		MemBWGBs:     memMod.AchievedGBs(bw),
		MemLatencyNS: latNS,
		Watts:        watts,
		MIPSPerWatt:  totalIPS / 1e6 / watts,
		TopDown:      res.TopDown,
		Rates:        r,
	}
}

// WindowInstructions returns the instruction count one characterization
// window measures on a machine with the given active core count — the
// denominator the analytical twin's predicted counts must share with
// measure() for per-instruction rates to line up.
func WindowInstructions(cores int) uint64 {
	n := simThreads
	if cores < n {
		n = cores
	}
	return uint64(measureInstr) * uint64(n)
}

// WindowThreads returns the number of representative worker threads a
// characterization window runs for the given active core count.
func WindowThreads(cores int) int {
	n := simThreads
	if cores < n {
		n = cores
	}
	return n
}

// PredictCtxSwitches replays runWindow's chunk-boundary arithmetic over
// one measurement window without executing it: the number of context
// switches a window at this core frequency and per-core switch rate
// will inject. Exact, including the interval clamping and chunk
// quantization.
func PredictCtxSwitches(cores int, coreFreqMHz int, ratePerSec float64) uint64 {
	interval := ctxSwitchInterval(coreFreqMHz, ratePerSec)
	nthreads := WindowThreads(cores)
	var switches uint64
	const chunk = 2000
	for done := 0; done < measureInstr; done += chunk {
		n := chunk
		if measureInstr-done < n {
			n = measureInstr - done
		}
		if done/interval != (done+n)/interval {
			switches += uint64(nthreads)
		}
	}
	return switches
}

// SHPPressureMissPerMiB exposes the reserved-but-unused SHP memory
// pressure constant so the analytical twin charges over-reservation
// identically to measure().
const SHPPressureMissPerMiB = shpPressureMissPerMiB

// SolvePeak returns the operating point at the service's QoS-derived
// utilization ceiling (Fig 3's peak load).
func (m *Machine) SolvePeak() Operating { return m.Solve(m.prof.MaxCPUUtil) }

// MPKI helpers over the characterization window.

// CacheMPKI returns code and data MPKI at the given level.
func (r *WindowRates) CacheMPKI(level cache.Level) (code, data float64) {
	var s cache.Stats
	switch level {
	case cache.L1:
		// L1I and L1D are reported jointly: code from L1I, data from L1D.
		return r.Cache.L1I.MPKI(cache.Code, r.Instructions),
			r.Cache.L1D.MPKI(cache.Data, r.Instructions)
	case cache.L2:
		s = r.Cache.L2
	case cache.LLC:
		s = r.Cache.LLC
	default:
		return 0, 0
	}
	return s.MPKI(cache.Code, r.Instructions), s.MPKI(cache.Data, r.Instructions)
}

// TLBMPKI returns ITLB, DTLB-load, and DTLB-store MPKI.
func (r *WindowRates) TLBMPKI() (itlb, dload, dstore float64) {
	return r.TLB.MPKI(tlb.Fetch, r.Instructions),
		r.TLB.MPKI(tlb.Load, r.Instructions),
		r.TLB.MPKI(tlb.Store, r.Instructions)
}

// String summarizes the operating point.
func (o Operating) String() string {
	return fmt.Sprintf("util=%.0f%% IPC=%.2f MIPS=%.0f QPS=%.0f bw=%.1fGB/s lat=%.0fns",
		o.Util*100, o.IPC, o.MIPS, o.QPS, o.MemBWGBs, o.MemLatencyNS)
}
