package sim

import (
	"sync"
	"time"

	"softsku/internal/telemetry"
)

// Engine hot-path telemetry: events processed, virtual seconds
// simulated, and the sim-seconds-per-wall-second throughput every perf
// PR reports against. One atomic add per Run call — not per event —
// keeps the overhead unmeasurable.
var (
	mSimEvents = telemetry.Default.Counter("softsku_sim_events_total",
		"Discrete events processed by the simulation engine.")
	mSimRuns = telemetry.Default.Counter("softsku_sim_runs_total",
		"Engine.Run invocations.")
	mSimVirtualSec = telemetry.Default.Counter("softsku_sim_virtual_seconds_total",
		"Virtual seconds simulated.")
	mSimWallSec = telemetry.Default.Gauge("softsku_sim_wall_seconds",
		"Wall seconds elapsed since the first Engine.Run (speedup denominator).")
	mSimThroughput = telemetry.Default.Gauge("softsku_sim_seconds_per_wall_second",
		"Cumulative simulated seconds per wall second (simulation speedup).")
)

// The speedup denominator is the wall time elapsed since the first
// Engine.Run in the process — NOT the sum of per-call durations.
// Summing double-counts whenever engines run concurrently (every
// worker's interval covers the same wall seconds), which understates
// softsku_sim_seconds_per_wall_second by the worker count.
var (
	wallMu    sync.Mutex
	wallBegun bool
	wallStart time.Time
)

// wallElapsed pins the process-wide wall origin on first use and
// returns the seconds elapsed since, on the injectable telemetry
// clock.
func wallElapsed() float64 {
	wallMu.Lock()
	defer wallMu.Unlock()
	if !wallBegun {
		wallBegun = true
		wallStart = telemetry.Now()
		return 0
	}
	return telemetry.Since(wallStart).Seconds()
}

// resetWallForTest clears the pinned wall origin so clock-scripting
// tests observe a fresh first-Run pin.
func resetWallForTest() {
	wallMu.Lock()
	defer wallMu.Unlock()
	wallBegun = false
}

// event is one scheduled occurrence in virtual time. Events live by
// value in the engine's arena; the heap orders arena indices, so
// scheduling allocates nothing once the arena and free list are warm
// (the per-event *event + interface boxing of container/heap used to
// dominate the service sim's allocation profile).
type event struct {
	at  float64 // seconds of virtual time
	seq uint64  // tie-breaker for determinism
	fn  func()
}

// Engine is a deterministic discrete-event simulation loop in virtual
// time. No wall-clock dependence: reproducibility is exact.
type Engine struct {
	now   float64
	seq   uint64
	arena []event  // event storage; slots recycled through free
	queue []int32  // arena indices, heap-ordered by (at, seq)
	free  []int32  // recycled arena slots
	batch []func() // reusable same-timestamp drain buffer for Run
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// less orders heap entries by (at, seq) — identical to the previous
// container/heap ordering, so event execution order is unchanged.
func (e *Engine) less(a, b int32) bool {
	x, y := &e.arena[a], &e.arena[b]
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

func (e *Engine) siftUp(i int) {
	q := e.queue
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && e.less(q[r], q[l]) {
			min = r
		}
		if !e.less(q[min], q[i]) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
}

// At schedules fn at absolute virtual time t (clamped to now).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.arena = append(e.arena, event{})
		idx = int32(len(e.arena) - 1)
	}
	e.arena[idx] = event{at: t, seq: e.seq, fn: fn}
	e.queue = append(e.queue, idx)
	e.siftUp(len(e.queue) - 1)
}

// After schedules fn delay seconds from now.
func (e *Engine) After(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// Run processes events until the queue empties or virtual time reaches
// until. Events scheduled exactly at the horizon still run.
func (e *Engine) Run(until float64) {
	// Wall time is observability-only (the speedup gauge); it flows
	// through the injectable telemetry clock so simulation results can
	// never depend on it. The first Run pins the process-wide origin.
	wallElapsed()
	simStart := e.now
	events := 0
	for len(e.queue) > 0 {
		if e.arena[e.queue[0]].at > until {
			break
		}
		// Advance to the next timestamp and drain every event scheduled
		// at exactly that instant into the reusable batch before running
		// any of them. Pop order is heap order (at, seq), and anything
		// scheduled *during* the batch carries a strictly larger seq than
		// every event already queued, so it lands in a later drain of the
		// same instant — global execution order stays exactly (at, seq)
		// ascending, identical to the one-pop-per-iteration loop.
		e.now = e.arena[e.queue[0]].at
		e.batch = e.batch[:0]
		for len(e.queue) > 0 {
			top := e.queue[0]
			ev := &e.arena[top]
			if ev.at != e.now {
				break
			}
			e.batch = append(e.batch, ev.fn)
			ev.fn = nil // release the closure before recycling the slot
			last := len(e.queue) - 1
			e.queue[0] = e.queue[last]
			e.queue = e.queue[:last]
			if last > 0 {
				e.siftDown(0)
			}
			e.free = append(e.free, top)
		}
		for i, fn := range e.batch {
			e.batch[i] = nil // drop the reference as we go
			fn()
		}
		events += len(e.batch)
	}
	if e.now < until {
		e.now = until
	}
	mSimRuns.Inc()
	mSimEvents.Add(float64(events))
	mSimVirtualSec.Add(e.now - simStart)
	if w := wallElapsed(); w > 0 {
		mSimWallSec.Set(w)
		//lint:ignore detflow counter read feeds the sim-seconds-per-wall-second gauge, observability only — nothing of it enters the simulation result
		mSimThroughput.Set(mSimVirtualSec.Value() / w)
	}
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.queue) }
