package sim

import (
	"container/heap"
	"sync"
	"time"

	"softsku/internal/telemetry"
)

// Engine hot-path telemetry: events processed, virtual seconds
// simulated, and the sim-seconds-per-wall-second throughput every perf
// PR reports against. One atomic add per Run call — not per event —
// keeps the overhead unmeasurable.
var (
	mSimEvents = telemetry.Default.Counter("softsku_sim_events_total",
		"Discrete events processed by the simulation engine.")
	mSimRuns = telemetry.Default.Counter("softsku_sim_runs_total",
		"Engine.Run invocations.")
	mSimVirtualSec = telemetry.Default.Counter("softsku_sim_virtual_seconds_total",
		"Virtual seconds simulated.")
	mSimWallSec = telemetry.Default.Gauge("softsku_sim_wall_seconds",
		"Wall seconds elapsed since the first Engine.Run (speedup denominator).")
	mSimThroughput = telemetry.Default.Gauge("softsku_sim_seconds_per_wall_second",
		"Cumulative simulated seconds per wall second (simulation speedup).")
)

// The speedup denominator is the wall time elapsed since the first
// Engine.Run in the process — NOT the sum of per-call durations.
// Summing double-counts whenever engines run concurrently (every
// worker's interval covers the same wall seconds), which understates
// softsku_sim_seconds_per_wall_second by the worker count.
var (
	wallMu    sync.Mutex
	wallBegun bool
	wallStart time.Time
)

// wallElapsed pins the process-wide wall origin on first use and
// returns the seconds elapsed since, on the injectable telemetry
// clock.
func wallElapsed() float64 {
	wallMu.Lock()
	defer wallMu.Unlock()
	if !wallBegun {
		wallBegun = true
		wallStart = telemetry.Now()
		return 0
	}
	return telemetry.Since(wallStart).Seconds()
}

// resetWallForTest clears the pinned wall origin so clock-scripting
// tests observe a fresh first-Run pin.
func resetWallForTest() {
	wallMu.Lock()
	defer wallMu.Unlock()
	wallBegun = false
}

// event is one scheduled occurrence in virtual time.
type event struct {
	at  float64 // seconds of virtual time
	seq uint64  // tie-breaker for determinism
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulation loop in virtual
// time. No wall-clock dependence: reproducibility is exact.
type Engine struct {
	now   float64
	seq   uint64
	queue eventQueue
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute virtual time t (clamped to now).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn delay seconds from now.
func (e *Engine) After(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// Run processes events until the queue empties or virtual time reaches
// until. Events scheduled exactly at the horizon still run.
func (e *Engine) Run(until float64) {
	// Wall time is observability-only (the speedup gauge); it flows
	// through the injectable telemetry clock so simulation results can
	// never depend on it. The first Run pins the process-wide origin.
	wallElapsed()
	simStart := e.now
	events := 0
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		next.fn()
		events++
	}
	if e.now < until {
		e.now = until
	}
	mSimRuns.Inc()
	mSimEvents.Add(float64(events))
	mSimVirtualSec.Add(e.now - simStart)
	if w := wallElapsed(); w > 0 {
		mSimWallSec.Set(w)
		mSimThroughput.Set(mSimVirtualSec.Value() / w)
	}
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.queue) }
