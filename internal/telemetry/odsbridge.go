package telemetry

import (
	"strings"

	"softsku/internal/ods"
)

// ODSMirror periodically copies selected registry metrics into an
// ods.Store, so fleet-validation queries (QPS means, percentiles over
// ranges) and live telemetry share one source of truth — the way the
// paper's µSKU validates deployed soft SKUs against the same ODS
// series operators watch (§4).
type ODSMirror struct {
	reg    *Registry
	store  *ods.Store
	names  []string // empty = every counter and gauge
	prefix string
}

// NewODSMirror builds a mirror. names selects which scalar metrics
// (counters and gauges) to copy; empty means all. Series are written
// under "telemetry/<metric-name>".
func NewODSMirror(reg *Registry, store *ods.Store, names ...string) *ODSMirror {
	return &ODSMirror{reg: reg, store: store, names: names, prefix: "telemetry/"}
}

// Flush appends the current value of every selected metric to the
// store at virtual time t. Out-of-order appends (t earlier than the
// last flush) are reported by the store; the first error wins.
func (m *ODSMirror) Flush(t float64) error {
	want := func(string) bool { return true }
	if len(m.names) > 0 {
		set := make(map[string]bool, len(m.names))
		for _, n := range m.names {
			set[n] = true
		}
		want = func(name string) bool { return set[name] || set[family(name)] }
	}
	var firstErr error
	m.reg.Each(func(name string, value float64) {
		if !want(name) {
			return
		}
		series := m.prefix + strings.ReplaceAll(name, "\"", "")
		if err := m.store.Append(series, t, value); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	return firstErr
}
