package telemetry

import (
	"testing"
	"time"
)

// A frozen/stepped wall clock makes span timing exactly predictable —
// the property that lets deterministic packages route their
// observability-only wall reads through telemetry.
func TestInjectedClockMakesSpansDeterministic(t *testing.T) {
	cur := time.Unix(1_700_000_000, 0)
	restore := SetWallClock(func() time.Time { return cur })
	defer restore()

	tr := NewTracer()
	root := tr.StartSpan("run", "t")
	cur = cur.Add(250 * time.Millisecond)
	child := root.StartChild("trial", "t")
	cur = cur.Add(50 * time.Millisecond)
	child.End()
	cur = cur.Add(700 * time.Millisecond)
	root.End()

	roots := tr.Tree()
	if len(roots) != 1 || len(roots[0].Children) != 1 {
		t.Fatalf("tree shape = %+v", roots)
	}
	if got := roots[0].DurUSec; got != 1_000_000 {
		t.Errorf("root duration = %g µs, want exactly 1000000", got)
	}
	c := roots[0].Children[0]
	if c.StartUSec != 250_000 || c.DurUSec != 50_000 {
		t.Errorf("child = [%g, +%g] µs, want [250000, +50000]", c.StartUSec, c.DurUSec)
	}
}

func TestSetWallClockRestores(t *testing.T) {
	frozen := time.Unix(42, 0)
	restore := SetWallClock(func() time.Time { return frozen })
	if !Now().Equal(frozen) {
		t.Fatal("injected clock not in effect")
	}
	if got := Since(time.Unix(40, 0)); got != 2*time.Second {
		t.Fatalf("Since on frozen clock = %v, want 2s", got)
	}
	restore()
	if Now().Equal(frozen) {
		t.Fatal("restore did not reinstate the real clock")
	}
}
