package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"softsku/internal/ods"
)

func get(t *testing.T, mux *http.ServeMux, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	return rr, rr.Body.String()
}

// TestMuxMetricsStrictParse is the ISSUE's acceptance check: the
// /metrics payload must survive the strict exposition-format parser,
// with the right content type.
func TestMuxMetricsStrictParse(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Labels("softsku_serve_test_total", "svc", `We"b\n`), "Serving test counter.").Inc()
	reg.Histogram("softsku_serve_test_hist", "Serving test histogram.").Observe(2)
	mux := NewMux(ServeOptions{Registry: reg})
	rr, body := get(t, mux, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	samples, types := parseProm(t, body)
	if len(samples) == 0 || types["softsku_serve_test_hist"] != "histogram" {
		t.Fatalf("parsed %d samples, types %v", len(samples), types)
	}
}

func TestMuxODSListingAndQuery(t *testing.T) {
	store := ods.NewStore()
	for i := 0; i < 10; i++ {
		if err := store.Append("qps", float64(i), float64(100*i)); err != nil {
			t.Fatal(err)
		}
	}
	mux := NewMux(ServeOptions{Registry: NewRegistry(), Store: store})

	_, body := get(t, mux, "/debug/ods")
	var listing struct {
		Series []struct {
			Name  string  `json:"name"`
			Len   int     `json:"len"`
			LastT float64 `json:"last_t"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("listing not JSON: %v\n%s", err, body)
	}
	if len(listing.Series) != 1 || listing.Series[0].Name != "qps" || listing.Series[0].Len != 10 {
		t.Fatalf("listing = %+v", listing)
	}

	_, body = get(t, mux, "/debug/ods?series=qps&from=3&to=7")
	var q struct {
		Points []ods.Point `json:"points"`
	}
	if err := json.Unmarshal([]byte(body), &q); err != nil {
		t.Fatal(err)
	}
	if len(q.Points) != 4 || q.Points[0].T != 3 {
		t.Fatalf("query = %+v", q)
	}

	rr, _ := get(t, mux, "/debug/ods?series=nope")
	if rr.Code != http.StatusNotFound {
		t.Fatalf("unknown series status %d, want 404", rr.Code)
	}
	rr, _ = get(t, mux, "/debug/ods?series=qps&from=abc")
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad from status %d, want 400", rr.Code)
	}
}

func TestMuxDecisionsOffIs404(t *testing.T) {
	mux := NewMux(ServeOptions{Registry: NewRegistry()})
	rr, body := get(t, mux, "/debug/decisions")
	if rr.Code != http.StatusNotFound || !strings.Contains(body, "recording is off") {
		t.Fatalf("status %d body %q", rr.Code, body)
	}
}

func TestMuxDecisionsInjected(t *testing.T) {
	mux := NewMux(ServeOptions{
		Registry: NewRegistry(),
		Decisions: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(`{"total":0,"events":[]}`))
		}),
	})
	rr, body := get(t, mux, "/debug/decisions")
	if rr.Code != http.StatusOK || !strings.Contains(body, `"total"`) {
		t.Fatalf("status %d body %q", rr.Code, body)
	}
}

func TestServeListensAndCloses(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServeOptions{Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
