package telemetry

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns the
// function that stops profiling and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// CLI wires the standard observability flags (-trace-out,
// -metrics-out, -pprof) into a command. Usage:
//
//	var obs telemetry.CLI
//	obs.Flags()
//	flag.Parse()
//	tracer, err := obs.Start()   // nil tracer when -trace-out unset
//	defer obs.Stop()             // or call explicitly to check the error
//
// Start begins CPU profiling when -pprof is set; Stop stops profiling,
// writes the Chrome trace_event file, and exports the Default registry
// in Prometheus text format.
type CLI struct {
	TraceOut   string // Chrome trace_event JSON output path
	MetricsOut string // Prometheus text-format output path
	PprofOut   string // CPU profile output path

	tracer   *Tracer
	stopProf func() error
	stopped  bool
}

// Flags registers the three flags on the default flag set.
func (c *CLI) Flags() { c.FlagSet(flag.CommandLine) }

// FlagSet registers the three flags on fs.
func (c *CLI) FlagSet(fs *flag.FlagSet) {
	fs.StringVar(&c.TraceOut, "trace-out", "", "write a Chrome trace_event JSON of the run (open in chrome://tracing or Perfetto)")
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write telemetry metrics in Prometheus text format on exit")
	fs.StringVar(&c.PprofOut, "pprof", "", "write a CPU profile of the run (inspect with go tool pprof)")
}

// Start begins profiling and returns the run's tracer — non-nil only
// when -trace-out was given, so untraced runs pay no tracing cost.
func (c *CLI) Start() (*Tracer, error) {
	if c.PprofOut != "" {
		stop, err := StartCPUProfile(c.PprofOut)
		if err != nil {
			return nil, fmt.Errorf("telemetry: -pprof: %w", err)
		}
		c.stopProf = stop
	}
	if c.TraceOut != "" {
		c.tracer = NewTracer()
	}
	return c.tracer, nil
}

// Stop finalizes profiling and writes the requested output files. It
// is idempotent; the first call does the work.
func (c *CLI) Stop() error {
	if c.stopped {
		return nil
	}
	c.stopped = true
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.stopProf != nil {
		keep(c.stopProf())
	}
	if c.tracer != nil && c.TraceOut != "" {
		keep(writeFile(c.TraceOut, c.tracer.WriteChromeTrace))
	}
	if c.MetricsOut != "" {
		keep(writeFile(c.MetricsOut, Default.WritePrometheus))
	}
	return firstErr
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
