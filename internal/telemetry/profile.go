package telemetry

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime/pprof"
	"time"

	"softsku/internal/ods"
)

// StartCPUProfile begins writing a CPU profile to path and returns the
// function that stops profiling and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// CLI wires the standard observability flags (-trace-out,
// -metrics-out, -pprof) into a command. Usage:
//
//	var obs telemetry.CLI
//	obs.Flags()
//	flag.Parse()
//	tracer, err := obs.Start()   // nil tracer when -trace-out unset
//	defer obs.Stop()             // or call explicitly to check the error
//
// Start begins CPU profiling when -pprof is set; Stop stops profiling,
// writes the Chrome trace_event file, and exports the Default registry
// in Prometheus text format.
type CLI struct {
	TraceOut   string // Chrome trace_event JSON output path
	MetricsOut string // Prometheus text-format output path
	PprofOut   string // CPU profile output path
	ServeAddr  string // live observability server address (-serve)

	// Decisions is served at /debug/decisions when -serve is active.
	// Callers that record a decision ledger set this (to the ledger's
	// Handler()) before Start; nil serves a recording-is-off 404.
	Decisions http.Handler

	tracer   *Tracer
	stopProf func() error
	stopped  bool

	server    *ObsServer
	store     *ods.Store
	stopFlush chan struct{}
}

// Flags registers the three flags on the default flag set.
func (c *CLI) Flags() { c.FlagSet(flag.CommandLine) }

// FlagSet registers the three flags on fs.
func (c *CLI) FlagSet(fs *flag.FlagSet) {
	fs.StringVar(&c.TraceOut, "trace-out", "", "write a Chrome trace_event JSON of the run (open in chrome://tracing or Perfetto)")
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write telemetry metrics in Prometheus text format on exit")
	fs.StringVar(&c.PprofOut, "pprof", "", "write a CPU profile of the run (inspect with go tool pprof)")
	fs.StringVar(&c.ServeAddr, "serve", "", "serve live observability on this address (/metrics, /debug/ods, /debug/decisions, /debug/pprof)")
}

// Start begins profiling and returns the run's tracer — non-nil only
// when -trace-out was given, so untraced runs pay no tracing cost.
func (c *CLI) Start() (*Tracer, error) {
	if c.PprofOut != "" {
		stop, err := StartCPUProfile(c.PprofOut)
		if err != nil {
			return nil, fmt.Errorf("telemetry: -pprof: %w", err)
		}
		c.stopProf = stop
	}
	if c.TraceOut != "" {
		c.tracer = NewTracer()
	}
	if c.ServeAddr != "" {
		// The server's ODS mirror snapshots the Default registry once a
		// second of wall time, stamped with seconds since Start — purely
		// observational, so the wall clock here can never perturb a
		// simulation verdict.
		c.store = ods.NewStore()
		c.store.SetDefaultRetention(4096)
		srv, err := Serve(c.ServeAddr, ServeOptions{Store: c.store, Decisions: c.Decisions})
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.server = srv
		c.stopFlush = make(chan struct{})
		mirror := NewODSMirror(Default, c.store)
		t0 := Now()
		go func() {
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for {
				select {
				case <-c.stopFlush:
					return
				case <-tick.C:
					mirror.Flush(Since(t0).Seconds())
				}
			}
		}()
	}
	return c.tracer, nil
}

// Serving reports whether the live observability server is running.
func (c *CLI) Serving() bool { return c.server != nil }

// ServingAddr returns the server's resolved listen address ("" when
// not serving) — the port is concrete even when -serve was ":0".
func (c *CLI) ServingAddr() string {
	if c.server == nil {
		return ""
	}
	return c.server.Addr
}

// Wait blocks forever while the observability server runs, so a
// command whose work is done can stay up to be scraped (musku and
// stress call this after printing results when -serve is set). It
// returns immediately when the server is not running.
func (c *CLI) Wait() {
	if c.server == nil {
		return
	}
	select {}
}

// Stop finalizes profiling and writes the requested output files. It
// is idempotent; the first call does the work.
func (c *CLI) Stop() error {
	if c.stopped {
		return nil
	}
	c.stopped = true
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.stopProf != nil {
		keep(c.stopProf())
	}
	if c.stopFlush != nil {
		close(c.stopFlush)
	}
	if c.server != nil {
		keep(c.server.Close())
		c.server = nil
	}
	if c.tracer != nil && c.TraceOut != "" {
		keep(writeFile(c.TraceOut, c.tracer.WriteChromeTrace))
	}
	if c.MetricsOut != "" {
		keep(writeFile(c.MetricsOut, Default.WritePrometheus))
	}
	return firstErr
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
