package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer records a hierarchical trace of one tuning or
// characterization run: a root span per µSKU invocation, child spans
// per knob sweep, per A/B trial, and per sim-engine run, each
// annotated with knob settings, sampled metrics, and confidence-test
// verdicts. Durations are wall-clock — the trace answers "where does
// the run's wall time go", the question the paper answers with
// production profilers.
//
// A nil *Tracer is valid and no-ops everywhere, so instrumentation
// sites never need to check whether tracing was requested.
type Tracer struct {
	mu    sync.Mutex
	t0    time.Time
	spans []*Span
}

// Span is one timed, annotated region of a trace. A nil *Span no-ops
// every method (and children of a nil span are nil), letting spans
// thread through code paths that may run untraced.
type Span struct {
	tr     *Tracer
	id     int
	parent int // -1 for roots
	name   string
	cat    string
	start  time.Duration
	dur    time.Duration
	args   map[string]interface{}
	open   bool
}

// NewTracer returns an empty tracer whose clock starts now (on the
// injectable telemetry wall clock).
func NewTracer() *Tracer {
	return &Tracer{t0: Now()}
}

// StartSpan opens a root span.
func (t *Tracer) StartSpan(name, category string) *Span {
	return t.newSpan(name, category, -1)
}

func (t *Tracer) newSpan(name, category string, parent int) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{
		tr:     t,
		id:     len(t.spans),
		parent: parent,
		name:   name,
		cat:    category,
		start:  Since(t.t0),
		open:   true,
	}
	t.spans = append(t.spans, s)
	return s
}

// StartChild opens a child span under s.
func (s *Span) StartChild(name, category string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, category, s.id)
}

// Set annotates the span with a key/value argument (knob settings,
// MIPS means, p-values, verdicts). Values must be JSON-marshalable.
func (s *Span) Set(key string, value interface{}) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.args == nil {
		s.args = make(map[string]interface{})
	}
	s.args[key] = value
}

// End closes the span, fixing its duration. Ending twice is harmless.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.open {
		s.dur = Since(s.tr.t0) - s.start
		s.open = false
	}
}

// SpanCount returns the number of spans recorded so far.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// snapshot copies span records under the lock; open spans get a
// provisional duration up to now.
type spanRec struct {
	id, parent int
	name, cat  string
	startUS    float64 // microseconds since trace start
	durUS      float64
	args       map[string]interface{}
	open       bool
}

func (t *Tracer) snapshot() []spanRec {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := Since(t.t0)
	out := make([]spanRec, len(t.spans))
	for i, s := range t.spans {
		dur := s.dur
		if s.open {
			dur = now - s.start
		}
		args := make(map[string]interface{}, len(s.args))
		for k, v := range s.args {
			args[k] = v
		}
		out[i] = spanRec{
			id: s.id, parent: s.parent, name: s.name, cat: s.cat,
			startUS: float64(s.start) / float64(time.Microsecond),
			durUS:   float64(dur) / float64(time.Microsecond),
			args:    args, open: s.open,
		}
	}
	return out
}

// JSONSpan is the hierarchical JSON export shape.
type JSONSpan struct {
	Name       string                 `json:"name"`
	Category   string                 `json:"category,omitempty"`
	StartUSec  float64                `json:"start_us"`
	DurUSec    float64                `json:"dur_us"`
	Args       map[string]interface{} `json:"args,omitempty"`
	Unfinished bool                   `json:"unfinished,omitempty"`
	Children   []*JSONSpan            `json:"children,omitempty"`
}

// Tree returns the trace as a forest of root spans.
func (t *Tracer) Tree() []*JSONSpan {
	recs := t.snapshot()
	nodes := make([]*JSONSpan, len(recs))
	for i, r := range recs {
		args := r.args
		if len(args) == 0 {
			args = nil
		}
		nodes[i] = &JSONSpan{
			Name: r.name, Category: r.cat,
			StartUSec: r.startUS, DurUSec: r.durUS,
			Args: args, Unfinished: r.open,
		}
	}
	var roots []*JSONSpan
	for i, r := range recs {
		if r.parent >= 0 {
			p := nodes[r.parent]
			p.Children = append(p.Children, nodes[i])
		} else {
			roots = append(roots, nodes[i])
		}
	}
	return roots
}

// WriteJSON writes the hierarchical trace as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Spans []*JSONSpan `json:"spans"`
	}{t.Tree()})
}

// chromeEvent is one trace_event record: a "complete" (ph=X) event
// with microsecond timestamps, the format chrome://tracing and
// Perfetto open directly.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// WriteChromeTrace writes the trace in Chrome trace_event JSON format.
// Span hierarchy is conveyed by timestamp/duration nesting on one
// thread track, which the viewers reconstruct into the flame shape.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	recs := t.snapshot()
	events := make([]chromeEvent, 0, len(recs))
	for _, r := range recs {
		args := r.args
		if len(args) == 0 {
			args = nil
		}
		events = append(events, chromeEvent{
			Name: r.name, Cat: r.cat, Ph: "X",
			Ts: r.startUS, Dur: r.durUS,
			Pid: 1, Tid: 1, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"})
}
