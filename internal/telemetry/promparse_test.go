package telemetry

import (
	"bufio"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed sample line.
type promSample struct {
	family string
	labels map[string]string
	value  float64
}

// parseProm is a deliberately strict minimal parser for the Prometheus
// text exposition format (version 0.0.4) — the contract /metrics and
// -metrics-out promise scrapers. It enforces the rules a lenient
// consumer would silently paper over:
//
//   - every line is a HELP/TYPE comment or a well-formed sample
//   - label values use only the three legal escapes (\\ \" \n)
//   - a TYPE comment precedes every sample of its family
//   - each family's lines form one contiguous block
//
// It returns the samples keyed by series (family plus rendered label
// set) and the TYPE per family.
func parseProm(t *testing.T, text string) (samples []promSample, types map[string]string) {
	t.Helper()
	types = make(map[string]string)
	closed := make(map[string]bool) // families whose block has ended
	current := ""
	enter := func(fam string, line string) {
		if fam == current {
			return
		}
		if current != "" {
			closed[current] = true
		}
		if closed[fam] {
			t.Fatalf("family %q reappears after its block closed: %q", fam, line)
		}
		current = fam
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("malformed comment line: %q", line)
			}
			fam := fields[2]
			if !validMetricName(fam) {
				t.Fatalf("invalid family name %q in %q", fam, line)
			}
			enter(fam, line)
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					t.Fatalf("TYPE line without a type: %q", line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("unknown TYPE %q in %q", fields[3], line)
				}
				if _, dup := types[fam]; dup {
					t.Fatalf("duplicate TYPE for family %q", fam)
				}
				types[fam] = fields[3]
			}
			continue
		}
		s := parsePromSample(t, line)
		// _bucket/_sum/_count series belong to their histogram family.
		fam := s.family
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(fam, suf)
			if base != fam && types[base] == "histogram" {
				fam = base
				break
			}
		}
		if _, ok := types[fam]; !ok {
			t.Fatalf("sample %q before any TYPE for family %q", line, fam)
		}
		enter(fam, line)
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return samples, types
}

// parsePromSample parses `name{k="v",...} value` with strict escape
// handling inside label values.
func parsePromSample(t *testing.T, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		t.Fatalf("sample line without value: %q", line)
	}
	s.family = line[:i]
	if !validMetricName(s.family) {
		t.Fatalf("invalid metric name %q in %q", s.family, line)
	}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			if rest == "" {
				t.Fatalf("unterminated label set: %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || eq+1 >= len(rest) || rest[eq+1] != '"' {
				t.Fatalf("malformed label pair in %q", line)
			}
			key := rest[:eq]
			if !validLabelName(key) {
				t.Fatalf("invalid label name %q in %q", key, line)
			}
			val, rem, ok := parseEscapedValue(rest[eq+2:])
			if !ok {
				t.Fatalf("illegal escape or unterminated value in %q", line)
			}
			s.labels[key] = val
			rest = rem
			if rest != "" && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	if rest == "" || rest[0] != ' ' {
		t.Fatalf("missing space before value: %q", line)
	}
	vs := strings.TrimPrefix(rest, " ")
	v, err := strconv.ParseFloat(vs, 64)
	if err != nil {
		t.Fatalf("unparseable value %q in %q: %v", vs, line, err)
	}
	s.value = v
	return s
}

// parseEscapedValue consumes an escaped label value up to its closing
// quote. Only \\ \" and \n are legal escapes; a bare newline cannot
// appear (the scanner already split on it, which would break the label
// grammar and fail here).
func parseEscapedValue(rest string) (val, rem string, ok bool) {
	var b strings.Builder
	for i := 0; i < len(rest); i++ {
		switch c := rest[i]; c {
		case '"':
			return b.String(), rest[i+1:], true
		case '\\':
			if i+1 >= len(rest) {
				return "", "", false
			}
			i++
			switch rest[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", false // \t, \u… are NOT part of the format
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", "", false
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validMetricName(s)
}

// TestPrometheusRoundTrip exports a registry holding every metric kind
// plus adversarial label values and HELP text, then re-reads it with
// the strict parser: every series must parse, every label value must
// round-trip byte-for-byte, and histogram buckets must be cumulative.
func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	nasty := map[string]string{
		"plain":     "Web",
		"quote":     `say "hi"`,
		"backslash": `C:\fleet\skus`,
		"newline":   "line1\nline2",
		"tab":       "a\tb", // tabs must pass through verbatim, not as \t
		"unicode":   "caché-μSKU",
		"mixed":     "q\"b\\s\nn",
	}
	for k, v := range nasty {
		r.Counter(Labels("softsku_test_labels_total", "case", k, "val", v),
			"Counter with adversarial label values.").Add(1)
	}
	r.Counter("softsku_test_labels_total_extra",
		"Family whose name extends another family's prefix.").Add(2)
	r.Gauge("softsku_test_gauge", "Help with a \\ backslash\nand a newline.").Set(-3.5)
	h := r.Histogram(Labels("softsku_test_hist", "svc", "Web"), "A labelled histogram.")
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 0.01)
	}
	r.Histogram("softsku_test_hist_plain", "An unlabelled histogram.").Observe(4)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	samples, types := parseProm(t, b.String())

	if got := types["softsku_test_labels_total"]; got != "counter" {
		t.Fatalf("labels_total TYPE = %q, want counter", got)
	}
	if got := types["softsku_test_hist"]; got != "histogram" {
		t.Fatalf("hist TYPE = %q, want histogram", got)
	}

	seen := map[string]string{}
	for _, s := range samples {
		if s.family == "softsku_test_labels_total" {
			seen[s.labels["case"]] = s.labels["val"]
		}
	}
	for k, want := range nasty {
		if got, ok := seen[k]; !ok || got != want {
			t.Errorf("label case %q: round-tripped to %q, want %q", k, got, want)
		}
	}

	// Histogram invariants: cumulative non-decreasing buckets, +Inf
	// bucket equal to _count, for both the labelled and plain series.
	for _, fam := range []string{"softsku_test_hist", "softsku_test_hist_plain"} {
		var prev float64
		var inf, count float64
		var hasInf bool
		for _, s := range samples {
			switch s.family {
			case fam + "_bucket":
				if s.value < prev {
					t.Errorf("%s: bucket le=%q not cumulative: %g < %g", fam, s.labels["le"], s.value, prev)
				}
				prev = s.value
				if s.labels["le"] == "+Inf" {
					inf, hasInf = s.value, true
				}
			case fam + "_count":
				count = s.value
			}
		}
		if !hasInf {
			t.Errorf("%s: no +Inf bucket", fam)
		} else if inf != count {
			t.Errorf("%s: +Inf bucket %g != count %g", fam, inf, count)
		}
	}
}

// TestPrometheusFamilyContiguity reproduces the plain-sort bug: '{'
// sorts after '_', so x_total{...} used to land after x_total_extra,
// splitting the x_total family block. parseProm fails on any reorder.
func TestPrometheusFamilyContiguity(t *testing.T) {
	r := NewRegistry()
	r.Counter("softsku_x_total", "Unlabelled head of the family.").Inc()
	r.Counter(Labels("softsku_x_total", "svc", "Web"), "").Inc()
	r.Counter(Labels("softsku_x_total", "svc", "Ads"), "").Inc()
	r.Counter("softsku_x_total_extra", "A family between the two in byte order.").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	samples, _ := parseProm(t, b.String())
	if len(samples) != 4 {
		t.Fatalf("parsed %d samples, want 4:\n%s", len(samples), b.String())
	}
}

// TestLabelsEscapesOnlySpecEscapes pins Labels' escaping: exactly the
// three spec escapes, nothing more.
func TestLabelsEscapesOnlySpecEscapes(t *testing.T) {
	got := Labels("m", "k", "a\\b\"c\nd\te")
	want := `m{k="a\\b\"c\nd` + "\t" + `e"}`
	if got != want {
		t.Fatalf("Labels = %s, want %s", got, want)
	}
}
