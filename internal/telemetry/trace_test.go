package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("root", "x")
	if sp != nil {
		t.Fatal("nil tracer should return nil span")
	}
	// All of these must be safe on nil.
	child := sp.StartChild("c", "x")
	child.Set("k", 1)
	child.End()
	sp.Set("k", 1)
	sp.End()
	if tr.SpanCount() != 0 {
		t.Fatal("nil tracer has no spans")
	}
}

func TestSpanHierarchy(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("musku.run", "tuning")
	root.Set("service", "Web")
	sweep := root.StartChild("sweep.thp", "sweep")
	trial := sweep.StartChild("trial", "abtest")
	trial.Set("p_value", 0.01)
	trial.Set("significant", true)
	trial.End()
	sweep.End()
	root.End()

	roots := tr.Tree()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	r := roots[0]
	if r.Name != "musku.run" || r.Args["service"] != "Web" {
		t.Fatalf("root = %+v", r)
	}
	if len(r.Children) != 1 || r.Children[0].Name != "sweep.thp" {
		t.Fatalf("children = %+v", r.Children)
	}
	tl := r.Children[0].Children
	if len(tl) != 1 || tl[0].Name != "trial" || tl[0].Args["significant"] != true {
		t.Fatalf("trial = %+v", tl)
	}
	if tl[0].DurUSec > r.DurUSec {
		t.Fatalf("child duration %g exceeds root %g", tl[0].DurUSec, r.DurUSec)
	}
}

func TestWriteJSON(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("run", "t")
	root.StartChild("child", "t").End()
	root.End()
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spans []struct {
			Name     string `json:"name"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "run" || len(doc.Spans[0].Children) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("run", "tuning")
	root.Set("service", "Web")
	c := root.StartChild("trial", "abtest")
	c.End()
	root.End()

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Pid  int                    `json:"pid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "run" || ev.Ph != "X" || ev.Pid != 1 || ev.Args["service"] != "Web" {
		t.Fatalf("root event = %+v", ev)
	}
	// Child must be time-nested within the root for viewers to stack it.
	child := doc.TraceEvents[1]
	if child.Ts < ev.Ts || child.Ts+child.Dur > ev.Ts+ev.Dur+1 {
		t.Fatalf("child [%g,%g] not nested in root [%g,%g]",
			child.Ts, child.Ts+child.Dur, ev.Ts, ev.Ts+ev.Dur)
	}
}

func TestUnfinishedSpanGetsProvisionalDuration(t *testing.T) {
	tr := NewTracer()
	//lint:ignore spanend deliberately left open to exercise unfinished-span export
	tr.StartSpan("open", "x") // never ended
	roots := tr.Tree()
	if len(roots) != 1 || !roots[0].Unfinished {
		t.Fatalf("roots = %+v", roots)
	}
	if roots[0].DurUSec < 0 {
		t.Fatalf("provisional duration negative: %g", roots[0].DurUSec)
	}
	// Double End is harmless.
	sp := tr.StartSpan("twice", "x")
	sp.End()
	sp.End()
}
