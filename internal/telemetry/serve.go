package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"softsku/internal/ods"
)

// The live observability server: one mux exposing the process's
// metrics registry (Prometheus text format), its ODS mirror, the
// decision ledger, and the stdlib pprof handlers — the "-serve :addr"
// sidecar musku and stress start so a long tuning run can be watched
// while it executes instead of only post-mortem from output files.
//
// The decision ledger's handler is injected as a plain http.Handler
// (ServeOptions.Decisions): telemetry sits below internal/decision in
// the import DAG and must not import it.

// ServeOptions selects what the observability mux exposes. Zero-value
// fields degrade gracefully: a nil Registry means Default, a nil Store
// serves an empty series listing, and a nil Decisions handler turns
// /debug/decisions into a 404 that says recording is off.
type ServeOptions struct {
	Registry  *Registry    // /metrics source (nil: Default)
	Store     *ods.Store   // /debug/ods source (nil: empty)
	Decisions http.Handler // /debug/decisions (nil: 404)
}

// NewMux builds the observability mux:
//
//	/metrics          Prometheus text format 0.0.4
//	/debug/ods        series listing; ?series=&from=&to= range query
//	/debug/decisions  decision-ledger tail (?n=, 0 = all)
//	/debug/pprof/*    stdlib pprof handlers
//	/healthz          liveness probe
func NewMux(opts ServeOptions) *http.ServeMux {
	reg := opts.Registry
	if reg == nil {
		reg = Default
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/ods", odsHandler(opts.Store))
	if opts.Decisions != nil {
		mux.Handle("/debug/decisions", opts.Decisions)
	} else {
		mux.HandleFunc("/debug/decisions", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, `{"error":"decision recording is off; run with a decision ledger attached"}`,
				http.StatusNotFound)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// odsHandler serves the ODS mirror. Without a series parameter it
// lists every series with its sample count and latest point; with one
// it returns the points in [from, to) (defaults: the whole series).
func odsHandler(store *ods.Store) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if store == nil {
			json.NewEncoder(w).Encode(struct {
				Series []string `json:"series"`
			}{Series: []string{}})
			return
		}
		q := r.URL.Query()
		name := q.Get("series")
		if name == "" {
			type row struct {
				Name   string  `json:"name"`
				Len    int     `json:"len"`
				LastT  float64 `json:"last_t,omitempty"`
				LastV  float64 `json:"last_v,omitempty"`
				Sample bool    `json:"has_samples"`
			}
			rows := []row{}
			for _, n := range store.Names() {
				rw := row{Name: n, Len: store.Len(n)}
				if p, ok := store.Latest(n); ok {
					rw.LastT, rw.LastV, rw.Sample = p.T, p.V, true
				}
				rows = append(rows, rw)
			}
			json.NewEncoder(w).Encode(struct {
				Series []row `json:"series"`
			}{rows})
			return
		}
		parse := func(key string, def float64) (float64, bool) {
			s := q.Get(key)
			if s == "" {
				return def, true
			}
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf(`{"error":"%s must be a number"}`, key), http.StatusBadRequest)
				return 0, false
			}
			return v, true
		}
		from, ok := parse("from", 0)
		if !ok {
			return
		}
		to, ok := parse("to", 1e308)
		if !ok {
			return
		}
		pts, err := store.Query(name, from, to)
		if err != nil {
			http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusNotFound)
			return
		}
		if pts == nil {
			pts = []ods.Point{}
		}
		json.NewEncoder(w).Encode(struct {
			Series string      `json:"series"`
			Points []ods.Point `json:"points"`
		}{name, pts})
	}
}

// ObsServer is a running observability server.
type ObsServer struct {
	Addr string // resolved listen address (port filled in for ":0")
	srv  *http.Server
}

// Serve starts the observability server on addr (e.g. ":9090" or
// "127.0.0.1:0") and returns once it is listening — scrapes can begin
// immediately. The server runs until Close.
func Serve(addr string, opts ServeOptions) (*ObsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: -serve %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(opts)}
	go srv.Serve(ln)
	return &ObsServer{Addr: ln.Addr().String(), srv: srv}, nil
}

// Close shuts the server down.
func (s *ObsServer) Close() error { return s.srv.Close() }
