package telemetry

import "time"

// The process wall clock behind every telemetry timestamp. The
// sim-facing packages are forbidden (softskulint's nondeterminism
// analyzer) from calling time.Now directly: simulation results must
// depend only on virtual time and the run's seed. Observability-only
// timing — span durations, sim-seconds-per-wall-second throughput —
// flows through this injectable clock instead, so it can never leak
// into a verdict and tests can freeze it.

var wallNow = time.Now

// Now returns the current time on the telemetry wall clock.
func Now() time.Time { return wallNow() }

// Since returns the wall time elapsed since t on the telemetry clock.
func Since(t time.Time) time.Duration { return wallNow().Sub(t) }

// SetWallClock replaces the telemetry wall clock and returns a
// restore function. Tests freeze or step the clock to make span
// durations and throughput gauges deterministic; the replacement must
// be monotonic non-decreasing like the real clock.
func SetWallClock(now func() time.Time) (restore func()) {
	prev := wallNow
	wallNow = now
	return func() { wallNow = prev }
}
