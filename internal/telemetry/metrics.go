// Package telemetry is the reproduction's observability substrate,
// standing in for the ODS + EMON plumbing the paper's µSKU tool leans
// on (§2.2, §4): every A/B trial at Facebook is observable because
// fleet metrics land in ODS and counter reads come from EMON. Here the
// same roles are filled by a process-wide metrics registry (counters,
// gauges, histograms with a Prometheus text exporter), a hierarchical
// span tracer for tuning runs (JSON and Chrome trace_event export),
// and profiling hooks the CLIs expose as -trace-out / -metrics-out /
// -pprof.
//
// Instrumentation sites increment metrics unconditionally — counters
// are single atomic adds, cheap enough for the simulator's hot paths —
// while tracing is nil-gated: a nil *Tracer or *Span no-ops every
// method, so library code can instrument without checking whether a
// trace was requested.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"softsku/internal/stats"
)

// Counter is a monotonically increasing metric (trial counts, events
// simulated). It is a lock-free float64; Add from any goroutine.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter. Negative deltas are ignored — counters
// only go up.
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a metric that can go up and down (sim-seconds per
// wall-second, current pool sizes).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a distribution metric (p-values, samples per trial)
// backed by the same log-bucketed stats.Histogram the simulator uses
// for request latency.
type Histogram struct {
	mu sync.Mutex
	h  stats.Histogram
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.h.Observe(v)
	h.mu.Unlock()
}

// Snapshot returns a copy of the underlying histogram for reading.
func (h *Histogram) Snapshot() stats.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Copy()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Count()
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type metric struct {
	name string // full name, possibly with {labels}
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
// Get-or-create lookups are idempotent, so package-level metric vars
// and repeated registrations share one instance.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
	help    map[string]string // keyed by family (name sans labels)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric), help: make(map[string]string)}
}

// Default is the process-wide registry the instrumented packages
// (sim, abtest, core, fleet, emon) register into; the CLIs export it
// via -metrics-out.
var Default = NewRegistry()

// family strips the {label} suffix: the Prometheus metric family name
// HELP/TYPE comments apply to.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelEscaper escapes a label value per the text exposition format:
// exactly backslash, double-quote, and newline. Go's %q is NOT a
// substitute — it also escapes tabs and non-ASCII into sequences the
// format does not define, corrupting values like service names with
// accents when a strict parser reads them back.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// helpEscaper escapes HELP text: backslash and newline (quotes are
// legal verbatim in HELP).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// Labels formats a labelled metric name: Labels("x_total", "svc",
// "Web") -> `x_total{svc="Web"}`. Pairs are sorted by key so the same
// label set always yields the same series; values are escaped per the
// exposition format.
func Labels(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		kv = append(kv, "")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) lookup(name string, kind metricKind, help string) *metric {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, m.kind, kind))
		}
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, m.kind, kind))
		}
		return m
	}
	m = &metric{name: name, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = &Histogram{}
	}
	r.metrics[name] = m
	if fam := family(name); help != "" && r.help[fam] == "" {
		r.help[fam] = help
	}
	return m
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, kindCounter, help).c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, kindGauge, help).g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.lookup(name, kindHistogram, help).h
}

// Names returns all registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Each calls f with every scalar metric (counters and gauges) and its
// current value, in sorted name order. Histograms are skipped — use
// the exporter or Snapshot for those.
func (r *Registry) Each(f func(name string, value float64)) {
	for _, name := range r.Names() {
		r.mu.RLock()
		m := r.metrics[name]
		r.mu.RUnlock()
		switch m.kind {
		case kindCounter:
			f(name, m.c.Value())
		case kindGauge:
			f(name, m.g.Value())
		}
	}
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE comments per family,
// cumulative le-buckets plus _sum/_count for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	names := r.Names()
	// Order by (family, name), not plain name: '{' sorts after '_', so a
	// plain sort interleaves other families between a labelled series
	// and its family head (x_total_foo between x_total and x_total{...}),
	// and the format requires each family's lines to form one block.
	sort.SliceStable(names, func(i, j int) bool {
		fi, fj := family(names[i]), family(names[j])
		if fi != fj {
			return fi < fj
		}
		return names[i] < names[j]
	})
	// Group by family so HELP/TYPE are emitted once per family even
	// when labels split it into several series.
	seenFamily := make(map[string]bool)
	for _, name := range names {
		r.mu.RLock()
		m := r.metrics[name]
		help := r.help[family(name)]
		r.mu.RUnlock()
		fam := family(name)
		if !seenFamily[fam] {
			seenFamily[fam] = true
			if help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, helpEscaper.Replace(help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, m.kind); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %s\n", name, formatValue(m.c.Value()))
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", name, formatValue(m.g.Value()))
		case kindHistogram:
			err = writeHistogram(w, name, m.h.Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative buckets at
// each non-empty upper bound, then +Inf, _sum, and _count. Label sets
// on the metric name are merged with the le label.
func writeHistogram(w io.Writer, name string, h stats.Histogram) error {
	fam, labels := splitLabels(name)
	var cum uint64
	var werr error
	emit := func(format string, args ...interface{}) {
		if werr == nil {
			_, werr = fmt.Fprintf(w, format, args...)
		}
	}
	h.EachBucket(func(upper float64, count uint64) {
		cum += count
		emit("%s_bucket{%sle=\"%s\"} %d\n", fam, labels, formatValue(upper), cum)
	})
	emit("%s_bucket{%sle=\"+Inf\"} %d\n", fam, labels, h.Count())
	if labels == "" {
		emit("%s_sum %s\n", fam, formatValue(h.Sum()))
		emit("%s_count %d\n", fam, h.Count())
	} else {
		emit("%s_sum{%s} %s\n", fam, strings.TrimSuffix(labels, ","), formatValue(h.Sum()))
		emit("%s_count{%s} %d\n", fam, strings.TrimSuffix(labels, ","), h.Count())
	}
	return werr
}

// splitLabels separates `fam{a="b"}` into ("fam", `a="b",`) — the
// trailing comma lets the caller append the le label.
func splitLabels(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	inner := strings.TrimSuffix(name[i+1:], "}")
	if inner == "" {
		return name[:i], ""
	}
	return name[:i], inner + ","
}

// formatValue renders a sample value the way Prometheus expects:
// shortest float representation.
func formatValue(v float64) string {
	return fmt.Sprintf("%g", v)
}
