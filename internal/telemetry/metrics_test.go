package telemetry

import (
	"strings"
	"testing"

	"softsku/internal/ods"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %g, want 3", got)
	}
	if r.Counter("c_total", "") != c {
		t.Fatal("second lookup should return the same counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %g, want 6", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x", "")
}

func TestLabels(t *testing.T) {
	got := Labels("qps_total", "platform", "Skylake18", "service", "Web")
	want := `qps_total{platform="Skylake18",service="Web"}`
	if got != want {
		t.Fatalf("Labels = %s, want %s", got, want)
	}
	// Key order doesn't matter: same series either way.
	if Labels("qps_total", "service", "Web", "platform", "Skylake18") != want {
		t.Fatal("label ordering should be canonical")
	}
	if Labels("plain") != "plain" {
		t.Fatal("no labels should return the bare name")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("softsku_trials_total", "Trials run.").Add(7)
	r.Gauge("softsku_speedup", "Sim speedup.").Set(1234.5)
	h := r.Histogram("softsku_pvalue", "P-values.")
	h.Observe(0.01)
	h.Observe(0.04)
	h.Observe(0.9)
	r.Counter(Labels("softsku_labeled_total", "svc", "Web"), "Labeled.").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{
		"# HELP softsku_trials_total Trials run.",
		"# TYPE softsku_trials_total counter",
		"softsku_trials_total 7",
		"# TYPE softsku_speedup gauge",
		"softsku_speedup 1234.5",
		"# TYPE softsku_pvalue histogram",
		`softsku_pvalue_bucket{le="+Inf"} 3`,
		"softsku_pvalue_sum 0.95",
		"softsku_pvalue_count 3",
		`softsku_labeled_total{svc="Web"} 1`,
	} {
		if !strings.Contains(out, w) {
			t.Fatalf("exposition missing %q:\n%s", w, out)
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "")
	for i := 0; i < 10; i++ {
		h.Observe(0.001)
	}
	h.Observe(1.0)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The +Inf bucket must equal the total count.
	if !strings.Contains(out, `h_bucket{le="+Inf"} 11`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "h_count 11") {
		t.Fatalf("missing count:\n%s", out)
	}
}

func TestRegistryEachSkipsHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("a", "").Add(1)
	r.Gauge("b", "").Set(2)
	r.Histogram("c", "").Observe(3)
	seen := map[string]float64{}
	r.Each(func(name string, v float64) { seen[name] = v })
	if len(seen) != 2 || seen["a"] != 1 || seen["b"] != 2 {
		t.Fatalf("Each saw %v", seen)
	}
}

func TestODSMirror(t *testing.T) {
	r := NewRegistry()
	r.Counter("trials_total", "").Add(5)
	r.Gauge("speedup", "").Set(2.5)
	r.Counter("ignored_total", "").Add(9)

	store := ods.NewStore()
	m := NewODSMirror(r, store, "trials_total", "speedup")
	if err := m.Flush(100); err != nil {
		t.Fatal(err)
	}
	r.Counter("trials_total", "").Add(3)
	if err := m.Flush(200); err != nil {
		t.Fatal(err)
	}

	if got := store.Len("telemetry/trials_total"); got != 2 {
		t.Fatalf("mirrored points = %d, want 2", got)
	}
	if p, ok := store.Latest("telemetry/trials_total"); !ok || p.V != 8 {
		t.Fatalf("latest mirrored = %v %v", p, ok)
	}
	if got := store.Mean("telemetry/speedup", 0, 1000); got != 2.5 {
		t.Fatalf("mirrored gauge mean = %g", got)
	}
	if store.Len("telemetry/ignored_total") != 0 {
		t.Fatal("unselected metric was mirrored")
	}
}

func TestODSMirrorAll(t *testing.T) {
	r := NewRegistry()
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	store := ods.NewStore()
	if err := NewODSMirror(r, store).Flush(1); err != nil {
		t.Fatal(err)
	}
	if len(store.Names()) != 2 {
		t.Fatalf("mirrored series = %v", store.Names())
	}
}
