package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCLIWritesOutputs(t *testing.T) {
	dir := t.TempDir()
	var c CLI
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.FlagSet(fs)
	if err := fs.Parse([]string{
		"-trace-out", filepath.Join(dir, "t.json"),
		"-metrics-out", filepath.Join(dir, "m.prom"),
		"-pprof", filepath.Join(dir, "cpu.out"),
	}); err != nil {
		t.Fatal(err)
	}
	tracer, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	if tracer == nil {
		t.Fatal("tracer should be live when -trace-out is set")
	}
	sp := tracer.StartSpan("work", "test")
	Default.Counter("cli_test_total", "CLI test counter.").Inc()
	sp.End()
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop(); err != nil { // idempotent
		t.Fatal(err)
	}

	trace, err := os.ReadFile(filepath.Join(dir, "t.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), `"traceEvents"`) || !strings.Contains(string(trace), "work") {
		t.Fatalf("trace file: %s", trace)
	}
	prom, err := os.ReadFile(filepath.Join(dir, "m.prom"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "cli_test_total 1") {
		t.Fatalf("metrics file missing counter: %s", prom)
	}
	if fi, err := os.Stat(filepath.Join(dir, "cpu.out")); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile not written: %v", err)
	}
}

func TestCLIDisabledByDefault(t *testing.T) {
	var c CLI
	tracer, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	if tracer != nil {
		t.Fatal("tracer should be nil without -trace-out")
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
}
