package telemetry

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"softsku/internal/ods"
)

// TestConcurrentTelemetry hammers the registry and tracer from 8
// goroutines while an exporter concurrently snapshots both — the
// satellite requirement that the telemetry layer is -race-clean under
// the access pattern a sharded fleet simulation will produce.
func TestConcurrentTelemetry(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer()

	const (
		writers = 8
		iters   = 500
	)
	var wg sync.WaitGroup
	start := make(chan struct{})

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			c := r.Counter("hammer_total", "shared counter")
			own := r.Counter(fmt.Sprintf("hammer_g%d_total", g), "per-goroutine counter")
			gauge := r.Gauge("hammer_gauge", "shared gauge")
			acc := r.Gauge("hammer_acc_gauge", "shared accumulating gauge")
			h := r.Histogram("hammer_hist", "shared histogram")
			root := tr.StartSpan(fmt.Sprintf("worker%d", g), "test")
			for i := 0; i < iters; i++ {
				c.Inc()
				own.Inc()
				gauge.Set(float64(i))
				acc.Add(1)
				h.Observe(float64(i) * 1e-6)
				sp := root.StartChild("op", "test")
				sp.Set("i", i)
				sp.End()
			}
			root.End()
		}(g)
	}

	// Exporters snapshot concurrently with the writers.
	var expWG sync.WaitGroup
	stop := make(chan struct{})
	for e := 0; e < 2; e++ {
		expWG.Add(1)
		go func() {
			defer expWG.Done()
			<-start
			// Each exporter mirrors into its own retention-bounded store,
			// so the ring buffer is exercised while the writers hammer
			// the source metrics.
			store := ods.NewStore()
			store.SetDefaultRetention(64)
			mirror := NewODSMirror(r, store, "hammer_total", "hammer_gauge")
			tick := 0.0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
				if err := tr.WriteChromeTrace(io.Discard); err != nil {
					t.Error(err)
					return
				}
				tr.Tree()
				if err := mirror.Flush(tick); err != nil {
					t.Error(err)
					return
				}
				tick++
			}
		}()
	}
	close(start)
	wg.Wait()
	close(stop)
	expWG.Wait()

	if got := r.Counter("hammer_total", "").Value(); got != writers*iters {
		t.Fatalf("hammer_total = %g, want %d", got, writers*iters)
	}
	for g := 0; g < writers; g++ {
		if got := r.Counter(fmt.Sprintf("hammer_g%d_total", g), "").Value(); got != iters {
			t.Fatalf("g%d counter = %g, want %d", g, got, iters)
		}
	}
	if got := r.Histogram("hammer_hist", "").Count(); got != writers*iters {
		t.Fatalf("histogram count = %d, want %d", got, writers*iters)
	}
	// Gauge.Add is a CAS loop; concurrent increments must never drop
	// (parallel sweep workers accumulate into shared gauges this way).
	if got := r.Gauge("hammer_acc_gauge", "").Value(); got != writers*iters {
		t.Fatalf("hammer_acc_gauge = %g, want %d (lost Gauge.Add updates)", got, writers*iters)
	}
	// writers roots + writers*iters children
	if got := tr.SpanCount(); got != writers+writers*iters {
		t.Fatalf("spans = %d, want %d", got, writers+writers*iters)
	}
}
