// Package platform models the hardware SKUs of the paper's fleet
// (Table 1): Skylake18, Skylake20, and Broadwell16. A SKU is the
// immutable description of a stock-keeping unit; a Server is a booted
// instance of a SKU whose tunable knobs (MSRs, kernel parameters) have
// been set to a particular soft-SKU configuration.
//
// The package enforces the operational semantics that matter to µSKU:
// which knob changes require a reboot, platform-specific knob ranges,
// and the shared core/uncore power budget that caps AVX-heavy services
// (like Ads1) below the nominal turbo frequency (§6.1(1)).
package platform

import (
	"fmt"
	"math"

	"softsku/internal/knob"
)

// SKU describes one hardware stock-keeping unit. All capacities are in
// bytes; frequencies in MHz; latencies in nanoseconds at nominal
// uncore frequency.
type SKU struct {
	Name      string
	Microarch string

	Sockets        int
	CoresPerSocket int
	SMT            int // hardware threads per core

	CacheBlock int // line size, bytes
	L1I        int // per core
	L1D        int // per core
	L2         int // per core
	LLC        int // per socket
	LLCWays    int

	// TLB geometry (per core). Entries for 4 KiB and 2 MiB pages.
	ITLB4K, ITLB2M int
	DTLB4K, DTLB2M int
	STLB           int // unified second-level TLB entries

	// Frequency capabilities.
	MinCoreMHz, MaxCoreMHz     int
	MinUncoreMHz, MaxUncoreMHz int
	AVXOffsetMHz               int // turbo reduction under heavy AVX

	// Pipeline.
	DispatchWidth int // pipeline slots per cycle for top-down accounting

	// Power model (§7 extension: energy-aware tuning). The core and
	// uncore domains share the CPU power budget; dynamic core power
	// scales superlinearly with frequency.
	IdleWatts       float64 // package + platform idle power
	CoreDynWatts    float64 // per active core at max frequency, full utilization
	UncoreMaxWatts  float64 // uncore domain at maximum uncore frequency
	DRAMWattsPerGBs float64 // incremental DRAM power per GB/s of traffic

	// Memory subsystem (whole platform).
	MemPeakGBs       float64 // achievable peak bandwidth
	MemUnloadedNS    float64 // idle load-to-use latency
	LLCLatencyNS     float64 // LLC hit latency at nominal uncore
	L2LatencyNS      float64
	HugePagePoolMiB  int // memory reservable for static huge pages
	SupportsRDT      bool
	SupportsTurbo    bool
	StockPrefetchers knob.PrefetchMask
}

// Cores returns the total physical core count across sockets.
func (s *SKU) Cores() int { return s.Sockets * s.CoresPerSocket }

// Threads returns the total hardware thread count.
func (s *SKU) Threads() int { return s.Cores() * s.SMT }

// LLCWaySize returns the capacity of a single LLC way in bytes.
func (s *SKU) LLCWaySize() int { return s.LLC / s.LLCWays }

// String identifies the SKU.
func (s *SKU) String() string { return s.Name }

// Skylake18 returns the 18-core single-socket Intel Skylake platform
// (Table 1). Web, Feed1, Feed2, Ads1, and Cache2 run on it.
func Skylake18() *SKU {
	return &SKU{
		Name:      "Skylake18",
		Microarch: "Intel Skylake",

		Sockets:        1,
		CoresPerSocket: 18,
		SMT:            2,

		CacheBlock: 64,
		L1I:        32 << 10,
		L1D:        32 << 10,
		L2:         1 << 20,
		LLC:        25344 << 10, // 24.75 MiB
		LLCWays:    11,

		ITLB4K: 128, ITLB2M: 8,
		DTLB4K: 64, DTLB2M: 32,
		STLB: 1536,

		MinCoreMHz: 1600, MaxCoreMHz: 2200,
		MinUncoreMHz: 1400, MaxUncoreMHz: 1800,
		AVXOffsetMHz: 200,

		DispatchWidth: 4,

		IdleWatts:       62,
		CoreDynWatts:    6.2,
		UncoreMaxWatts:  18,
		DRAMWattsPerGBs: 0.18,

		MemPeakGBs:       118,
		MemUnloadedNS:    78,
		LLCLatencyNS:     18,
		L2LatencyNS:      5,
		HugePagePoolMiB:  2048,
		SupportsRDT:      true,
		SupportsTurbo:    true,
		StockPrefetchers: knob.PrefetchAll,
	}
}

// Skylake20 returns the dual-socket 20-core-per-socket Skylake
// platform (Table 1). Ads2 and Cache1 run on it for its higher peak
// memory bandwidth (Fig 12).
func Skylake20() *SKU {
	return &SKU{
		Name:      "Skylake20",
		Microarch: "Intel Skylake",

		Sockets:        2,
		CoresPerSocket: 20,
		SMT:            2,

		CacheBlock: 64,
		L1I:        32 << 10,
		L1D:        32 << 10,
		L2:         1 << 20,
		LLC:        27 << 20, // 27 MiB per socket
		LLCWays:    11,

		ITLB4K: 128, ITLB2M: 8,
		DTLB4K: 64, DTLB2M: 32,
		STLB: 1536,

		MinCoreMHz: 1600, MaxCoreMHz: 2200,
		MinUncoreMHz: 1400, MaxUncoreMHz: 1800,
		AVXOffsetMHz: 200,

		DispatchWidth: 4,

		IdleWatts:       110,
		CoreDynWatts:    6.0,
		UncoreMaxWatts:  34,
		DRAMWattsPerGBs: 0.18,

		MemPeakGBs:       145,
		MemUnloadedNS:    84, // NUMA raises the average unloaded latency
		LLCLatencyNS:     19,
		L2LatencyNS:      5,
		HugePagePoolMiB:  4096,
		SupportsRDT:      true,
		SupportsTurbo:    true,
		StockPrefetchers: knob.PrefetchAll,
	}
}

// Broadwell16 returns the previous-generation 16-core Broadwell
// platform µSKU also tunes Web on (§5). Its markedly lower peak memory
// bandwidth is what flips the CDP and prefetcher results in Figs 16–17.
func Broadwell16() *SKU {
	return &SKU{
		Name:      "Broadwell16",
		Microarch: "Intel Broadwell",

		Sockets:        1,
		CoresPerSocket: 16,
		SMT:            2,

		CacheBlock: 64,
		L1I:        32 << 10,
		L1D:        32 << 10,
		L2:         256 << 10,
		LLC:        24 << 20,
		LLCWays:    12,

		ITLB4K: 128, ITLB2M: 8,
		DTLB4K: 64, DTLB2M: 32,
		STLB: 1024,

		MinCoreMHz: 1600, MaxCoreMHz: 2200,
		MinUncoreMHz: 1400, MaxUncoreMHz: 1800,
		AVXOffsetMHz: 300,

		DispatchWidth: 4,

		IdleWatts:       58,
		CoreDynWatts:    6.8,
		UncoreMaxWatts:  16,
		DRAMWattsPerGBs: 0.22,

		MemPeakGBs:       34, // older board: half the channels populated
		MemUnloadedNS:    85,
		LLCLatencyNS:     20,
		L2LatencyNS:      4,
		HugePagePoolMiB:  2048,
		SupportsRDT:      true,
		SupportsTurbo:    true,
		StockPrefetchers: knob.PrefetchL2HW | knob.PrefetchDCU,
	}
}

// ByName looks up one of the three fleet SKUs by (case-sensitive)
// name.
func ByName(name string) (*SKU, error) {
	switch name {
	case "Skylake18", "skylake18":
		return Skylake18(), nil
	case "Skylake20", "skylake20":
		return Skylake20(), nil
	case "Broadwell16", "broadwell16":
		return Broadwell16(), nil
	}
	return nil, fmt.Errorf("platform: unknown SKU %q", name)
}

// FleetSKUs returns all three platforms in Table 1 order.
func FleetSKUs() []*SKU {
	return []*SKU{Skylake18(), Skylake20(), Broadwell16()}
}

// StockConfig returns the off-the-shelf configuration for the SKU
// (§6.2): maximum core and uncore frequency, all cores active, no CDP,
// all platform-default prefetchers on, THP always, no SHPs.
func (s *SKU) StockConfig() knob.Config {
	return knob.Config{
		CoreFreqMHz:   s.MaxCoreMHz,
		UncoreFreqMHz: s.MaxUncoreMHz,
		Cores:         s.Cores(),
		CDP:           knob.CDPConfig{},
		Prefetch:      knob.PrefetchAll,
		THP:           knob.THPAlways,
		SHPCount:      0,
	}
}

// Validate reports whether cfg is realizable on this SKU, returning a
// descriptive error otherwise. µSKU refuses to A/B-test unrealizable
// points rather than silently clamping them.
func (s *SKU) Validate(cfg knob.Config) error {
	if cfg.CoreFreqMHz < s.MinCoreMHz || cfg.CoreFreqMHz > s.MaxCoreMHz {
		return fmt.Errorf("platform: core frequency %d MHz outside [%d, %d] on %s",
			cfg.CoreFreqMHz, s.MinCoreMHz, s.MaxCoreMHz, s.Name)
	}
	if cfg.UncoreFreqMHz < s.MinUncoreMHz || cfg.UncoreFreqMHz > s.MaxUncoreMHz {
		return fmt.Errorf("platform: uncore frequency %d MHz outside [%d, %d] on %s",
			cfg.UncoreFreqMHz, s.MinUncoreMHz, s.MaxUncoreMHz, s.Name)
	}
	if cfg.Cores < 1 || cfg.Cores > s.Cores() {
		return fmt.Errorf("platform: core count %d outside [1, %d] on %s",
			cfg.Cores, s.Cores(), s.Name)
	}
	if cfg.CDP.Enabled() {
		if !s.SupportsRDT {
			return fmt.Errorf("platform: %s does not support RDT/CDP", s.Name)
		}
		if cfg.CDP.DataWays < 1 || cfg.CDP.CodeWays < 1 {
			return fmt.Errorf("platform: CDP %s must dedicate at least one way each", cfg.CDP)
		}
		if cfg.CDP.Ways() != s.LLCWays {
			return fmt.Errorf("platform: CDP %s must span all %d LLC ways on %s",
				cfg.CDP, s.LLCWays, s.Name)
		}
	}
	if cfg.SHPCount < 0 {
		return fmt.Errorf("platform: negative SHP count %d", cfg.SHPCount)
	}
	if mib := cfg.SHPCount * 2; mib > s.HugePagePoolMiB {
		return fmt.Errorf("platform: %d SHPs (%d MiB) exceed the %d MiB reservable pool on %s",
			cfg.SHPCount, mib, s.HugePagePoolMiB, s.Name)
	}
	return nil
}

// EffectiveCoreMHz returns the core frequency the power budget allows
// for a workload with the given fraction of AVX/floating-point
// operations. The core and uncore domains share a fixed CPU power
// budget; services with heavy AVX use (Ads1) must run below nominal
// turbo (§6.1(1)).
func (s *SKU) EffectiveCoreMHz(cfg knob.Config, avxFrac float64) int {
	mhz := cfg.CoreFreqMHz
	if avxFrac >= 0.15 {
		// Heavy AVX trips the offset; the cap applies to the turbo
		// range only, never pushing below the minimum.
		cap := s.MaxCoreMHz - s.AVXOffsetMHz
		if mhz > cap {
			mhz = cap
		}
	}
	if mhz < s.MinCoreMHz {
		mhz = s.MinCoreMHz
	}
	return mhz
}

// PowerWatts estimates platform power at the given operating
// conditions: active core count, effective core frequency, CPU
// utilization, uncore frequency, and DRAM traffic. Dynamic core power
// follows the classic f^2.7 voltage/frequency scaling.
func (s *SKU) PowerWatts(cfg knob.Config, effCoreMHz int, util, dramGBs float64) float64 {
	fRatio := float64(effCoreMHz) / float64(s.MaxCoreMHz)
	uRatio := float64(cfg.UncoreFreqMHz) / float64(s.MaxUncoreMHz)
	core := float64(cfg.Cores) * s.CoreDynWatts * util * powf(fRatio, 2.7)
	uncore := s.UncoreMaxWatts * uRatio * uRatio
	return s.IdleWatts + core + uncore + s.DRAMWattsPerGBs*dramGBs
}

func powf(x, p float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Exp(p * math.Log(x))
}

// UncoreScale returns the latency multiplier for uncore-clocked
// structures (LLC, memory controller path) at the configured uncore
// frequency, relative to nominal maximum.
func (s *SKU) UncoreScale(cfg knob.Config) float64 {
	return float64(s.MaxUncoreMHz) / float64(cfg.UncoreFreqMHz)
}
