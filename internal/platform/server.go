package platform

import (
	"fmt"
	"strconv"
	"strings"

	"softsku/internal/chaos"
	"softsku/internal/knob"
)

// Model-specific register addresses µSKU writes, mirroring the Intel
// registers the paper's prototype drives (§5).
const (
	MSRPerfCtl          = 0x199 // core frequency target ratio
	MSRMiscFeature      = 0x1a4 // prefetcher disable bits
	MSRUncoreRatioLimit = 0x620 // uncore min/max ratio
)

// Prefetcher disable bits in MSR 0x1A4. A set bit disables the
// prefetcher, matching Intel's encoding.
const (
	miscL2HWDisable  = 1 << 0
	miscL2AdjDisable = 1 << 1
	miscDCUDisable   = 1 << 2
	miscDCUIPDisable = 1 << 3
)

// Server is a booted instance of a SKU. Knob changes are applied the
// way µSKU applies them in production: frequency and prefetcher knobs
// through MSR writes, CDP through the resctrl interface, THP through a
// kernel configuration file, and core count / SHP reservations through
// boot parameters followed by a reboot (§5).
type Server struct {
	sku     *SKU
	msr     map[uint32]uint64
	kernel  map[string]string // kernel config files and boot parameters
	resctrl knob.CDPConfig
	reboots int
	chaos   chaos.Injector // nil: fault-free (the pre-chaos world)
}

// NewServer boots a server of the given SKU with the given initial
// configuration. The initial boot is not counted in Reboots.
func NewServer(sku *SKU, cfg knob.Config) (*Server, error) {
	if err := sku.Validate(cfg); err != nil {
		return nil, err
	}
	s := &Server{
		sku:    sku,
		msr:    make(map[uint32]uint64),
		kernel: make(map[string]string),
	}
	s.write(cfg)
	return s, nil
}

// SKU returns the server's hardware description.
func (s *Server) SKU() *SKU { return s.sku }

// Reboots returns how many reboots knob changes have forced since the
// server was provisioned. Some microservices cannot tolerate reboots
// on live traffic; µSKU consults this cost when planning sweeps.
func (s *Server) Reboots() int { return s.reboots }

// SetChaos attaches a fault injector consulted on every Apply: knob
// applications can transiently fail and required reboots can hang, in
// both cases leaving server state untouched so the caller can retry.
// nil (the default) disables injection.
func (s *Server) SetChaos(inj chaos.Injector) { s.chaos = inj }

// Apply reconfigures the server to cfg, returning whether a reboot was
// required. Invalid configurations are rejected without any state
// change; under an attached fault injector the attempt may also fail
// transiently (chaos.IsFault distinguishes those — retrying can fix
// them, while validation errors are permanent).
func (s *Server) Apply(cfg knob.Config) (rebooted bool, err error) {
	if err := s.sku.Validate(cfg); err != nil {
		return false, err
	}
	if s.chaos != nil {
		if err := s.chaos.ApplyFault(s.sku.Name); err != nil {
			return false, err
		}
	}
	cur := s.Config()
	for _, id := range knob.Diff(cur, cfg) {
		if id.RequiresReboot() {
			rebooted = true
		}
	}
	if rebooted && s.chaos != nil && s.chaos.StuckReboot(s.sku.Name) {
		return false, &chaos.FaultError{Kind: "stuck-reboot", Target: s.sku.Name}
	}
	s.write(cfg)
	if rebooted {
		s.reboots++
	}
	return rebooted, nil
}

// write encodes cfg into the MSR file, resctrl state, and kernel
// parameters. Config() decodes the same state back, so the encoded
// form is the source of truth.
func (s *Server) write(cfg knob.Config) {
	// Core ratio in 100 MHz units, Intel PERF_CTL layout (bits 15:8).
	s.msr[MSRPerfCtl] = uint64(cfg.CoreFreqMHz/100) << 8
	// Uncore min/max ratio (bits 6:0 max, 14:8 min); µSKU pins both.
	ratio := uint64(cfg.UncoreFreqMHz / 100)
	s.msr[MSRUncoreRatioLimit] = ratio | ratio<<8
	// Prefetcher disables.
	var misc uint64
	if !cfg.Prefetch.Has(knob.PrefetchL2HW) {
		misc |= miscL2HWDisable
	}
	if !cfg.Prefetch.Has(knob.PrefetchL2Adj) {
		misc |= miscL2AdjDisable
	}
	if !cfg.Prefetch.Has(knob.PrefetchDCU) {
		misc |= miscDCUDisable
	}
	if !cfg.Prefetch.Has(knob.PrefetchDCUIP) {
		misc |= miscDCUIPDisable
	}
	s.msr[MSRMiscFeature] = misc

	s.resctrl = cfg.CDP

	// Kernel-side knobs.
	if cfg.Cores < s.sku.Cores() {
		// isolcpus lists the cores the OS may NOT schedule on.
		var isolated []string
		for c := cfg.Cores; c < s.sku.Cores(); c++ {
			isolated = append(isolated, strconv.Itoa(c))
		}
		s.kernel["isolcpus"] = strings.Join(isolated, ",")
	} else {
		delete(s.kernel, "isolcpus")
	}
	s.kernel["transparent_hugepage/enabled"] = cfg.THP.String()
	s.kernel["vm/nr_hugepages"] = strconv.Itoa(cfg.SHPCount)
}

// Config decodes the server's current soft-SKU configuration from its
// MSRs and kernel parameters.
func (s *Server) Config() knob.Config {
	var cfg knob.Config
	cfg.CoreFreqMHz = int(s.msr[MSRPerfCtl]>>8) * 100
	cfg.UncoreFreqMHz = int(s.msr[MSRUncoreRatioLimit]&0x7f) * 100
	misc := s.msr[MSRMiscFeature]
	if misc&miscL2HWDisable == 0 {
		cfg.Prefetch |= knob.PrefetchL2HW
	}
	if misc&miscL2AdjDisable == 0 {
		cfg.Prefetch |= knob.PrefetchL2Adj
	}
	if misc&miscDCUDisable == 0 {
		cfg.Prefetch |= knob.PrefetchDCU
	}
	if misc&miscDCUIPDisable == 0 {
		cfg.Prefetch |= knob.PrefetchDCUIP
	}
	cfg.CDP = s.resctrl

	cfg.Cores = s.sku.Cores()
	if isol, ok := s.kernel["isolcpus"]; ok && isol != "" {
		cfg.Cores -= len(strings.Split(isol, ","))
	}
	if mode, err := knob.ParseTHP(s.kernel["transparent_hugepage/enabled"]); err == nil {
		cfg.THP = mode
	}
	if n, err := strconv.Atoi(s.kernel["vm/nr_hugepages"]); err == nil {
		cfg.SHPCount = n
	}
	return cfg
}

// ReadMSR returns the raw value of an MSR, for diagnostics and tests.
func (s *Server) ReadMSR(addr uint32) uint64 { return s.msr[addr] }

// KernelParam returns a kernel configuration value ("" if unset).
func (s *Server) KernelParam(name string) string { return s.kernel[name] }

// String describes the server and its current configuration.
func (s *Server) String() string {
	return fmt.Sprintf("%s[%s]", s.sku.Name, s.Config())
}
