package platform

import (
	"testing"
	"testing/quick"

	"softsku/internal/chaos"
	"softsku/internal/knob"
)

func TestTable1Attributes(t *testing.T) {
	// The SKUs must match Table 1 of the paper.
	skl18 := Skylake18()
	if skl18.Sockets != 1 || skl18.CoresPerSocket != 18 || skl18.SMT != 2 {
		t.Fatalf("Skylake18 topology wrong: %+v", skl18)
	}
	if skl18.L2 != 1<<20 || skl18.LLC != 25344<<10 || skl18.LLCWays != 11 {
		t.Fatalf("Skylake18 caches wrong")
	}
	skl20 := Skylake20()
	if skl20.Sockets != 2 || skl20.CoresPerSocket != 20 || skl20.LLC != 27<<20 {
		t.Fatalf("Skylake20 wrong: %+v", skl20)
	}
	bdw := Broadwell16()
	if bdw.Sockets != 1 || bdw.CoresPerSocket != 16 || bdw.L2 != 256<<10 || bdw.LLC != 24<<20 {
		t.Fatalf("Broadwell16 wrong: %+v", bdw)
	}
	if bdw.LLCWays != 12 {
		t.Fatalf("Broadwell16 must have 12 LLC ways (Fig 16b), got %d", bdw.LLCWays)
	}
	for _, s := range FleetSKUs() {
		if s.CacheBlock != 64 || s.L1I != 32<<10 || s.L1D != 32<<10 {
			t.Errorf("%s L1/block size wrong", s.Name)
		}
	}
}

func TestBandwidthOrdering(t *testing.T) {
	// Fig 12: Skylake20 > Skylake18 >> Broadwell16 peak bandwidth.
	if !(Skylake20().MemPeakGBs > Skylake18().MemPeakGBs) {
		t.Fatal("Skylake20 must have more bandwidth headroom than Skylake18")
	}
	if !(Skylake18().MemPeakGBs > 1.5*Broadwell16().MemPeakGBs) {
		t.Fatal("Broadwell16 must be markedly bandwidth-poorer than Skylake18")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Skylake18", "Skylake20", "Broadwell16", "skylake18"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("Cascade Lake"); err == nil {
		t.Fatal("expected error for unknown SKU")
	}
}

func TestStockConfigValid(t *testing.T) {
	for _, s := range FleetSKUs() {
		if err := s.Validate(s.StockConfig()); err != nil {
			t.Errorf("%s stock config invalid: %v", s.Name, err)
		}
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	s := Skylake18()
	base := s.StockConfig()
	cases := []knob.Config{
		base.With(knob.CoreFreq, knob.IntSetting("1.0", 1000)),
		base.With(knob.CoreFreq, knob.IntSetting("3.0", 3000)),
		base.With(knob.UncoreFreq, knob.IntSetting("1.2", 1200)),
		base.With(knob.CoreCount, knob.IntSetting("0", 0)),
		base.With(knob.CoreCount, knob.IntSetting("19", 19)),
		base.With(knob.SHP, knob.IntSetting("-1", -1)),
		base.With(knob.SHP, knob.IntSetting("huge", 1<<20)),
		base.With(knob.CDP, knob.CDPSetting(knob.CDPConfig{DataWays: 5, CodeWays: 5})), // 10 != 11
		base.With(knob.CDP, knob.CDPSetting(knob.CDPConfig{DataWays: 11, CodeWays: 0})),
	}
	for i, cfg := range cases {
		if err := s.Validate(cfg); err == nil {
			t.Errorf("case %d: expected validation error for %v", i, cfg)
		}
	}
}

func TestValidateCDPOnBroadwell(t *testing.T) {
	// Fig 16(b) sweeps CDP on Broadwell16, so it must support RDT; a
	// 12-way partition must validate.
	bdw := Broadwell16()
	cfg := bdw.StockConfig().With(knob.CDP,
		knob.CDPSetting(knob.CDPConfig{DataWays: 6, CodeWays: 6}))
	if err := bdw.Validate(cfg); err != nil {
		t.Fatalf("Broadwell16 must accept full-span CDP: %v", err)
	}
}

func TestAVXOffset(t *testing.T) {
	s := Skylake18()
	cfg := s.StockConfig() // 2200 MHz
	if got := s.EffectiveCoreMHz(cfg, 0.0); got != 2200 {
		t.Fatalf("integer workload should run at 2200, got %d", got)
	}
	// Ads1-style AVX-heavy workload is capped at 2.0 GHz (§6.1(1)).
	if got := s.EffectiveCoreMHz(cfg, 0.25); got != 2000 {
		t.Fatalf("AVX workload should cap at 2000, got %d", got)
	}
	// A low requested frequency is unaffected by the turbo offset.
	low := cfg.With(knob.CoreFreq, knob.IntSetting("1.6", 1600))
	if got := s.EffectiveCoreMHz(low, 0.25); got != 1600 {
		t.Fatalf("below-cap request should pass through, got %d", got)
	}
}

func TestUncoreScale(t *testing.T) {
	s := Skylake18()
	max := s.StockConfig()
	if got := s.UncoreScale(max); got != 1.0 {
		t.Fatalf("nominal uncore scale = %g", got)
	}
	slow := max.With(knob.UncoreFreq, knob.IntSetting("1.4", 1400))
	if got := s.UncoreScale(slow); got <= 1.0 {
		t.Fatalf("slower uncore must increase latency scale, got %g", got)
	}
}

func TestServerConfigRoundTrip(t *testing.T) {
	s := Skylake18()
	cfg := knob.Config{
		CoreFreqMHz:   1900,
		UncoreFreqMHz: 1500,
		Cores:         8,
		CDP:           knob.CDPConfig{DataWays: 6, CodeWays: 5},
		Prefetch:      knob.PrefetchDCU | knob.PrefetchDCUIP,
		THP:           knob.THPAlways,
		SHPCount:      300,
	}
	srv, err := NewServer(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Config(); got != cfg {
		t.Fatalf("round trip:\n got %v\nwant %v", got, cfg)
	}
}

func TestServerRoundTripProperty(t *testing.T) {
	s := Skylake20()
	f := func(coreStep, uncoreStep, cores, pf, thp, shp uint8) bool {
		cfg := knob.Config{
			CoreFreqMHz:   1600 + int(coreStep%7)*100,
			UncoreFreqMHz: 1400 + int(uncoreStep%5)*100,
			Cores:         1 + int(cores)%s.Cores(),
			Prefetch:      knob.PrefetchMask(pf % 16),
			THP:           knob.THPMode(thp % 3),
			SHPCount:      int(shp%7) * 100,
		}
		srv, err := NewServer(s, cfg)
		if err != nil {
			return false
		}
		return srv.Config() == cfg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRebootSemantics(t *testing.T) {
	s := Skylake18()
	srv, err := NewServer(s, s.StockConfig())
	if err != nil {
		t.Fatal(err)
	}
	if srv.Reboots() != 0 {
		t.Fatal("initial boot must not count")
	}
	// MSR-only change: no reboot.
	cfg := s.StockConfig().With(knob.CoreFreq, knob.IntSetting("1.8", 1800))
	rebooted, err := srv.Apply(cfg)
	if err != nil || rebooted {
		t.Fatalf("frequency change forced reboot=%v err=%v", rebooted, err)
	}
	// Core count: reboot via isolcpus.
	cfg = cfg.With(knob.CoreCount, knob.IntSetting("8", 8))
	rebooted, err = srv.Apply(cfg)
	if err != nil || !rebooted {
		t.Fatalf("core count change must reboot, got %v err=%v", rebooted, err)
	}
	if srv.Reboots() != 1 {
		t.Fatalf("reboots=%d", srv.Reboots())
	}
	// SHP change: reboot.
	cfg = cfg.With(knob.SHP, knob.IntSetting("200", 200))
	if rebooted, err = srv.Apply(cfg); err != nil || !rebooted {
		t.Fatalf("SHP change must reboot, got %v err=%v", rebooted, err)
	}
	// Re-applying the identical config is free.
	if rebooted, err = srv.Apply(cfg); err != nil || rebooted {
		t.Fatalf("no-op apply must not reboot, got %v err=%v", rebooted, err)
	}
	if srv.Reboots() != 2 {
		t.Fatalf("reboots=%d", srv.Reboots())
	}
}

func TestApplyRejectsInvalidWithoutStateChange(t *testing.T) {
	s := Skylake18()
	srv, _ := NewServer(s, s.StockConfig())
	before := srv.Config()
	bad := before.With(knob.CoreFreq, knob.IntSetting("3.0", 3000))
	if _, err := srv.Apply(bad); err == nil {
		t.Fatal("expected validation error")
	}
	if srv.Config() != before {
		t.Fatal("failed Apply must not change state")
	}
}

func TestIsolcpusEncoding(t *testing.T) {
	s := Skylake18()
	cfg := s.StockConfig().With(knob.CoreCount, knob.IntSetting("16", 16))
	srv, _ := NewServer(s, cfg)
	if got := srv.KernelParam("isolcpus"); got != "16,17" {
		t.Fatalf("isolcpus=%q", got)
	}
}

func TestMSRPrefetcherEncoding(t *testing.T) {
	s := Skylake18()
	cfg := s.StockConfig().With(knob.Prefetch, knob.PrefetchSetting(knob.PrefetchNone))
	srv, _ := NewServer(s, cfg)
	// All four disable bits must be set.
	if got := srv.ReadMSR(MSRMiscFeature); got != 0xf {
		t.Fatalf("MSR 0x1a4 = %#x, want 0xf", got)
	}
	cfg = cfg.With(knob.Prefetch, knob.PrefetchSetting(knob.PrefetchAll))
	if _, err := srv.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	if got := srv.ReadMSR(MSRMiscFeature); got != 0 {
		t.Fatalf("MSR 0x1a4 = %#x, want 0", got)
	}
}

func TestLLCWaySize(t *testing.T) {
	s := Skylake18()
	if got := s.LLCWaySize(); got != 25344<<10/11 {
		t.Fatalf("way size = %d", got)
	}
}

func TestPowerModel(t *testing.T) {
	s := Skylake18()
	stock := s.StockConfig()
	full := s.PowerWatts(stock, s.MaxCoreMHz, 1.0, 60)
	idle := s.PowerWatts(stock, s.MaxCoreMHz, 0.0, 0)
	if full <= idle {
		t.Fatal("utilization must add power")
	}
	if idle < s.IdleWatts || idle > s.IdleWatts+s.UncoreMaxWatts+1 {
		t.Fatalf("idle power %g implausible", idle)
	}
	// Frequency scaling is superlinear: dropping 2.2 -> 1.6 GHz saves
	// more than proportionally on the dynamic component.
	lowF := stock.With(knob.CoreFreq, knob.IntSetting("1.6", 1600))
	hi := s.PowerWatts(stock, 2200, 0.9, 40) - idle
	lo := s.PowerWatts(lowF, 1600, 0.9, 40) - idle
	if lo >= hi*1600/2200 {
		t.Fatalf("dynamic power not superlinear: hi=%g lo=%g", hi, lo)
	}
	// Slower uncore saves power too.
	lowU := stock.With(knob.UncoreFreq, knob.IntSetting("1.4", 1400))
	if s.PowerWatts(lowU, 2200, 0.5, 40) >= s.PowerWatts(stock, 2200, 0.5, 40) {
		t.Fatal("slower uncore must reduce power")
	}
}

func TestApplyChaosTransientFailure(t *testing.T) {
	sku := Skylake18()
	srv, err := NewServer(sku, sku.StockConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaos.Config{ApplyFailPct: 1} // every attempt fails
	srv.SetChaos(chaos.New(1, cfg))
	before := srv.Config()
	target := before.With(knob.THP, knob.THPSetting(knob.THPAlways))
	_, err = srv.Apply(target)
	if err == nil {
		t.Fatal("apply under ApplyFailPct=1 must fail")
	}
	if !chaos.IsFault(err) {
		t.Fatalf("injected failure must be recognizable as transient: %v", err)
	}
	if srv.Config() != before {
		t.Fatal("transient apply failure must not change server state")
	}
	// Detach the injector: the same apply now succeeds (a retry fixes
	// a transient fault).
	srv.SetChaos(nil)
	if _, err := srv.Apply(target); err != nil {
		t.Fatal(err)
	}
	if srv.Config() != target {
		t.Fatal("apply after fault cleared must land")
	}
}

func TestApplyChaosStuckReboot(t *testing.T) {
	sku := Skylake18()
	srv, err := NewServer(sku, sku.StockConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.SetChaos(chaos.New(1, chaos.Config{StuckRebootPct: 1}))
	before := srv.Config()
	rebootCfg := before.With(knob.SHP, knob.IntSetting("300", 300))
	if _, err := srv.Apply(rebootCfg); err == nil || !chaos.IsFault(err) {
		t.Fatalf("reboot-requiring apply must hang under StuckRebootPct=1: %v", err)
	}
	if srv.Config() != before || srv.Reboots() != 0 {
		t.Fatal("stuck reboot must leave state and reboot count untouched")
	}
	// MSR-only changes don't reboot, so they are immune to stuck
	// reboots.
	msrOnly := before.With(knob.THP, knob.THPSetting(knob.THPAlways))
	if _, err := srv.Apply(msrOnly); err != nil {
		t.Fatalf("MSR-only apply must not consult the reboot fault: %v", err)
	}
}

func TestApplyChaosInvalidStillRejected(t *testing.T) {
	// Validation errors must surface as permanent, not transient, even
	// with an injector attached.
	sku := Skylake18()
	srv, _ := NewServer(sku, sku.StockConfig())
	srv.SetChaos(chaos.New(1, chaos.Config{}))
	bad := srv.Config()
	bad.CoreFreqMHz = 99999
	if _, err := srv.Apply(bad); err == nil || chaos.IsFault(err) {
		t.Fatalf("invalid config must fail permanently: %v", err)
	}
}
