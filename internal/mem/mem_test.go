package mem

import (
	"testing"
	"testing/quick"

	"softsku/internal/platform"
)

func TestUnloadedLatency(t *testing.T) {
	m := NewModel(platform.Skylake18())
	if got := m.LatencyNS(0, 0, 1); got != m.UnloadedNS() {
		t.Fatalf("idle latency %g, want %g", got, m.UnloadedNS())
	}
}

func TestHockeyStickShape(t *testing.T) {
	m := NewModel(platform.Skylake18())
	l25 := m.LatencyNS(0.25*m.PeakGBs(), 0, 1)
	l50 := m.LatencyNS(0.50*m.PeakGBs(), 0, 1)
	l90 := m.LatencyNS(0.90*m.PeakGBs(), 0, 1)
	l97 := m.LatencyNS(0.97*m.PeakGBs(), 0, 1)
	if !(l25 < l50 && l50 < l90 && l90 < l97) {
		t.Fatalf("latency must be monotone: %g %g %g %g", l25, l50, l90, l97)
	}
	// Exponential knee: the 90→97% increment dwarfs the 25→50% one.
	if (l97 - l90) < 5*(l50-l25) {
		t.Fatalf("missing hockey stick: low slope %g, knee slope %g", l50-l25, l97-l90)
	}
	// Fig 12: low-load latency stays near the asymptote (< 2x unloaded).
	if l50 > 2*m.UnloadedNS() {
		t.Fatalf("half-load latency %g too far above unloaded %g", l50, m.UnloadedNS())
	}
}

func TestSaturationClamp(t *testing.T) {
	m := NewModel(platform.Broadwell16())
	demand := 2 * m.PeakGBs()
	if got := m.AchievedGBs(demand); got > m.PeakGBs() {
		t.Fatalf("achieved %g exceeds peak %g", got, m.PeakGBs())
	}
	// Latency at over-saturation is finite but very large.
	l := m.LatencyNS(demand, 0, 1)
	if l < 5*m.UnloadedNS() {
		t.Fatalf("saturated latency %g too low", l)
	}
	if l > 1e6 {
		t.Fatalf("saturated latency %g should stay finite", l)
	}
}

func TestBurstinessRaisesLatency(t *testing.T) {
	// §2.4.5: Ads1/Ads2 operate at higher latency than the curve
	// predicts due to traffic burstiness.
	m := NewModel(platform.Skylake18())
	smooth := m.LatencyNS(0.5*m.PeakGBs(), 0, 1)
	bursty := m.LatencyNS(0.5*m.PeakGBs(), 0.4, 1)
	if bursty <= smooth {
		t.Fatalf("burstiness must raise latency: %g vs %g", bursty, smooth)
	}
}

func TestUncoreScaleRaisesLatency(t *testing.T) {
	m := NewModel(platform.Skylake18())
	nominal := m.LatencyNS(0.3*m.PeakGBs(), 0, 1.0)
	slow := m.LatencyNS(0.3*m.PeakGBs(), 0, 1.8/1.4)
	if slow <= nominal {
		t.Fatalf("slower uncore must raise memory latency: %g vs %g", slow, nominal)
	}
	// But it must not scale the whole latency (DRAM core timing is
	// uncore-independent): below proportional scaling.
	if slow >= nominal*1.8/1.4 {
		t.Fatalf("uncore scaling too aggressive: %g vs %g", slow, nominal)
	}
}

func TestPlatformOrdering(t *testing.T) {
	// At the same absolute demand, Broadwell16 must queue far more
	// than Skylake18 — the mechanism behind Figs 16(b)/17.
	demand := 45.0 // GB/s, comfortable on SKL, heavy on BDW
	skl := NewModel(platform.Skylake18()).LatencyNS(demand, 0, 1)
	bdw := NewModel(platform.Broadwell16()).LatencyNS(demand, 0, 1)
	if bdw < skl*1.3 {
		t.Fatalf("Broadwell must be queue-bound at %g GB/s: skl=%g bdw=%g", demand, skl, bdw)
	}
}

func TestStressCurve(t *testing.T) {
	m := NewModel(platform.Skylake20())
	curve := m.StressCurve(50)
	if len(curve) != 50 {
		t.Fatalf("points=%d", len(curve))
	}
	if curve[0].BandwidthGBs != 0 || curve[0].LatencyNS != m.UnloadedNS() {
		t.Fatalf("curve origin wrong: %+v", curve[0])
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].LatencyNS <= curve[i-1].LatencyNS {
			t.Fatalf("curve not strictly increasing at %d", i)
		}
		if curve[i].BandwidthGBs <= curve[i-1].BandwidthGBs {
			t.Fatalf("bandwidth not increasing at %d", i)
		}
	}
	if last := curve[len(curve)-1].BandwidthGBs; last > m.PeakGBs() {
		t.Fatalf("curve exceeds peak: %g", last)
	}
}

func TestStressCurveMinPoints(t *testing.T) {
	if got := len(NewModelParams(100, 80).StressCurve(1)); got != 2 {
		t.Fatalf("degenerate point count: %d", got)
	}
}

func TestUtilizationBoundsProperty(t *testing.T) {
	m := NewModelParams(100, 80)
	f := func(demand, burst float64) bool {
		if demand < 0 {
			demand = -demand
		}
		if burst < 0 {
			burst = -burst
		}
		rho := m.Utilization(demand, burst)
		return rho >= 0 && rho <= maxRho
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyFiniteProperty(t *testing.T) {
	m := NewModelParams(100, 80)
	f := func(demand, burst float64) bool {
		if demand < 0 {
			demand = -demand
		}
		if burst < 0 {
			burst = -burst
		}
		l := m.LatencyNS(demand, burst, 1)
		return l >= m.UnloadedNS() && l < 1e6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
