// Package mem models the platform memory subsystem's bandwidth/latency
// trade-off: the characteristic "hockey-stick" curve of Fig 12, with a
// horizontal asymptote at the unloaded latency and exponential latency
// growth as demanded bandwidth approaches saturation.
//
// The model is the load-dependent server of classical queueing
// analysis: latency = unloaded + k·ρ/(1−ρ), with ρ the utilization of
// achievable peak bandwidth. Burstiness raises effective utilization,
// reproducing why Ads1/Ads2 sit above the stress-test curve (§2.4.5).
package mem

import (
	"softsku/internal/platform"
)

// Model is one platform's memory subsystem.
type Model struct {
	peakGBs    float64
	unloadedNS float64
	queueK     float64 // queueing-delay scale factor, ns
}

// queueK default: how many ns of queueing delay at ρ = 0.5.
const defaultQueueK = 14

// NewModel builds the memory model for a SKU.
func NewModel(sku *platform.SKU) *Model {
	return &Model{
		peakGBs:    sku.MemPeakGBs,
		unloadedNS: sku.MemUnloadedNS,
		queueK:     defaultQueueK,
	}
}

// NewModelParams builds a model from explicit parameters (tests,
// hypothetical platforms).
func NewModelParams(peakGBs, unloadedNS float64) *Model {
	return &Model{peakGBs: peakGBs, unloadedNS: unloadedNS, queueK: defaultQueueK}
}

// PeakGBs returns the achievable peak bandwidth.
func (m *Model) PeakGBs() float64 { return m.peakGBs }

// UnloadedNS returns the idle load-to-use latency.
func (m *Model) UnloadedNS() float64 { return m.unloadedNS }

// maxRho caps utilization: demanded bandwidth beyond ~98% of peak is
// simply not achieved (the memory system saturates).
const maxRho = 0.98

// Utilization converts a bandwidth demand to effective utilization,
// accounting for traffic burstiness. Burstiness b >= 0 inflates
// instantaneous load: bursty services see queueing as if running at
// (1+b)·ρ even though their average bandwidth is lower.
func (m *Model) Utilization(demandGBs, burstiness float64) float64 {
	rho := demandGBs / m.peakGBs * (1 + burstiness)
	if rho > maxRho {
		rho = maxRho
	}
	if rho < 0 {
		rho = 0
	}
	return rho
}

// LatencyNS returns the average memory access latency at the given
// bandwidth demand, burstiness, and uncore latency scale (>= 1 when
// the uncore runs below nominal frequency). The uncore clocks the
// on-die portion of the path (LLC miss handling, memory controller),
// which is roughly 40% of the unloaded latency.
func (m *Model) LatencyNS(demandGBs, burstiness, uncoreScale float64) float64 {
	rho := m.Utilization(demandGBs, burstiness)
	unloaded := m.unloadedNS * (0.6 + 0.4*uncoreScale)
	return unloaded + m.queueK*rho/(1-rho)*uncoreScale
}

// AchievedGBs returns the bandwidth the system actually delivers for a
// demand: demand itself below saturation, clamped at the achievable
// peak beyond it.
func (m *Model) AchievedGBs(demandGBs float64) float64 {
	limit := m.peakGBs * maxRho
	if demandGBs > limit {
		return limit
	}
	if demandGBs < 0 {
		return 0
	}
	return demandGBs
}

// Point is one (bandwidth, latency) sample of a stress curve.
type Point struct {
	BandwidthGBs float64
	LatencyNS    float64
}

// StressCurve reproduces the Intel Memory Latency Checker experiment
// that draws Fig 12's backdrop: sweep injected bandwidth from idle to
// saturation and record average latency, at nominal uncore frequency
// and no burstiness.
func (m *Model) StressCurve(points int) []Point {
	if points < 2 {
		points = 2
	}
	curve := make([]Point, points)
	for i := range curve {
		bw := float64(i) / float64(points-1) * m.peakGBs * maxRho
		curve[i] = Point{
			BandwidthGBs: bw,
			LatencyNS:    m.LatencyNS(bw, 0, 1),
		}
	}
	return curve
}
