// Package ods is an in-memory time-series store modelled on the
// Operational Data Store the paper uses for fleet-wide system metrics
// (§2.2): sampled metrics are appended per series and queried over
// time ranges with mean/percentile aggregation. µSKU's soft-SKU
// generator validates deployed configurations by comparing QPS series
// collected here over prolonged durations (§4).
package ods

import (
	"fmt"
	"sort"
	"sync"

	"softsku/internal/stats"
)

// Point is one sample of a series.
type Point struct {
	T float64 // seconds since epoch of the simulation
	V float64
}

// Store holds named time series. It is safe for concurrent use —
// every machine in the (simulated) fleet appends to it.
type Store struct {
	mu     sync.RWMutex
	series map[string][]Point
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{series: make(map[string][]Point)}
}

// Append records one sample. Samples must be appended in
// non-decreasing time order per series; out-of-order appends are
// rejected so range queries can binary-search.
func (s *Store) Append(name string, t, v float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	pts := s.series[name]
	if n := len(pts); n > 0 && pts[n-1].T > t {
		return fmt.Errorf("ods: out-of-order append to %q: %g after %g", name, t, pts[n-1].T)
	}
	s.series[name] = append(pts, Point{T: t, V: v})
	return nil
}

// Names returns all series names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.series))
	for n := range s.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of samples in a series.
func (s *Store) Len(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.series[name])
}

// Latest returns the most recent sample of a series.
func (s *Store) Latest(name string) (Point, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pts := s.series[name]
	if len(pts) == 0 {
		return Point{}, false
	}
	return pts[len(pts)-1], true
}

// Range returns a copy of the samples with t0 <= T < t1.
func (s *Store) Range(name string, t0, t1 float64) []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pts := s.series[name]
	lo := sort.Search(len(pts), func(i int) bool { return pts[i].T >= t0 })
	hi := sort.Search(len(pts), func(i int) bool { return pts[i].T >= t1 })
	out := make([]Point, hi-lo)
	copy(out, pts[lo:hi])
	return out
}

// Values returns just the values in [t0, t1).
func (s *Store) Values(name string, t0, t1 float64) []float64 {
	pts := s.Range(name, t0, t1)
	vs := make([]float64, len(pts))
	for i, p := range pts {
		vs[i] = p.V
	}
	return vs
}

// Mean aggregates a range; returns 0 for an empty range.
func (s *Store) Mean(name string, t0, t1 float64) float64 {
	return stats.Mean(s.Values(name, t0, t1))
}

// Percentile aggregates a range (p in 0..100); returns 0 for empty.
func (s *Store) Percentile(name string, t0, t1 float64, p float64) float64 {
	vs := s.Values(name, t0, t1)
	if len(vs) == 0 {
		return 0
	}
	return stats.Percentile(vs, p)
}

// Sample returns a stats.Sample over a range for CI computation.
func (s *Store) Sample(name string, t0, t1 float64) *stats.Sample {
	var sm stats.Sample
	sm.AddAll(s.Values(name, t0, t1))
	return &sm
}

// Prune drops samples older than keepAfter from every series, the way
// a retention policy bounds ODS storage.
func (s *Store) Prune(keepAfter float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, pts := range s.series {
		lo := sort.Search(len(pts), func(i int) bool { return pts[i].T >= keepAfter })
		if lo == 0 {
			continue
		}
		kept := make([]Point, len(pts)-lo)
		copy(kept, pts[lo:])
		s.series[name] = kept
	}
}
