// Package ods is an in-memory time-series store modelled on the
// Operational Data Store the paper uses for fleet-wide system metrics
// (§2.2): sampled metrics are appended per series and queried over
// time ranges with mean/percentile aggregation. µSKU's soft-SKU
// generator validates deployed configurations by comparing QPS series
// collected here over prolonged durations (§4).
package ods

import (
	"fmt"
	"sort"
	"sync"

	"softsku/internal/stats"
)

// Point is one sample of a series.
type Point struct {
	T float64 // seconds since epoch of the simulation
	V float64
}

// series holds one named sample sequence. With max == 0 it is a plain
// append-only slice; with max > 0 it is a ring buffer that drops the
// oldest sample when full, bounding memory for long fleet simulations.
type series struct {
	pts  []Point
	head int // index of the oldest live point
	n    int // live count
	max  int // 0 = unlimited
}

// at returns the i-th live point in time order (0 = oldest).
func (s *series) at(i int) Point {
	if len(s.pts) == 0 {
		return Point{}
	}
	return s.pts[(s.head+i)%len(s.pts)]
}

func (s *series) append(p Point) {
	if s.max > 0 && s.n == s.max {
		// Ring is full: overwrite the oldest slot.
		s.pts[s.head] = p
		s.head = (s.head + 1) % s.max
		return
	}
	s.pts = append(s.pts, p)
	s.n++
}

// linearize rewrites the ring into time order starting at index 0, so
// retention changes can re-slice it.
func (s *series) linearize() {
	if s.head == 0 {
		return
	}
	out := make([]Point, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.at(i)
	}
	s.pts, s.head = out, 0
}

// setMax applies a retention cap, dropping the oldest points if the
// series already exceeds it.
func (s *series) setMax(max int) {
	if max < 0 {
		max = 0
	}
	s.linearize()
	if max > 0 && s.n > max {
		kept := make([]Point, max)
		copy(kept, s.pts[s.n-max:])
		s.pts, s.n = kept, max
	}
	s.max = max
}

// dropOldest removes the k oldest points.
func (s *series) dropOldest(k int) {
	if k <= 0 {
		return
	}
	if k >= s.n {
		s.pts, s.head, s.n = nil, 0, 0
		return
	}
	if s.max > 0 && len(s.pts) == s.max {
		// Ring mode: advance the head; slots are reused in place.
		s.head = (s.head + k) % s.max
		s.n -= k
		// The ring now has free slots between tail and head; linearize
		// so append's full-test (n == max) stays correct.
		s.linearize()
		s.pts = s.pts[:s.n]
		return
	}
	kept := make([]Point, s.n-k)
	for i := range kept {
		kept[i] = s.at(k + i)
	}
	s.pts, s.head, s.n = kept, 0, s.n-k
}

// Store holds named time series. It is safe for concurrent use —
// every machine in the (simulated) fleet appends to it.
type Store struct {
	mu         sync.RWMutex
	series     map[string]*series
	defaultMax int // retention applied to newly created series
}

// NewStore returns an empty store with unlimited retention.
func NewStore() *Store {
	return &Store{series: make(map[string]*series)}
}

// SetDefaultRetention bounds every series created after this call to
// maxPoints samples (ring-buffer drop-oldest). 0 restores the default
// unlimited behaviour. Existing series are not affected; use
// SetRetention for those.
func (s *Store) SetDefaultRetention(maxPoints int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if maxPoints < 0 {
		maxPoints = 0
	}
	s.defaultMax = maxPoints
}

// SetRetention bounds one series to maxPoints samples, dropping the
// oldest immediately if it already holds more. 0 removes the bound.
// The series is created if it does not exist yet, so retention can be
// configured ahead of the first append.
func (s *Store) SetRetention(name string, maxPoints int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.series[name]
	if sr == nil {
		sr = &series{}
		s.series[name] = sr
	}
	sr.setMax(maxPoints)
}

func (s *Store) get(name string) *series {
	sr := s.series[name]
	if sr == nil {
		sr = &series{max: s.defaultMax}
		s.series[name] = sr
	}
	return sr
}

// Append records one sample. Samples must be appended in
// non-decreasing time order per series; out-of-order appends are
// rejected so range queries can binary-search.
func (s *Store) Append(name string, t, v float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.get(name)
	if sr.n > 0 && sr.at(sr.n-1).T > t {
		return fmt.Errorf("ods: out-of-order append to %q: %g after %g", name, t, sr.at(sr.n-1).T)
	}
	sr.append(Point{T: t, V: v})
	return nil
}

// Names returns all series names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.series))
	for n := range s.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of samples in a series.
func (s *Store) Len(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if sr := s.series[name]; sr != nil {
		return sr.n
	}
	return 0
}

// Latest returns the most recent sample of a series.
func (s *Store) Latest(name string) (Point, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sr := s.series[name]
	if sr == nil || sr.n == 0 {
		return Point{}, false
	}
	return sr.at(sr.n - 1), true
}

// Range returns a copy of the samples with t0 <= T < t1.
func (s *Store) Range(name string, t0, t1 float64) []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sr := s.series[name]
	if sr == nil {
		return nil
	}
	lo := sort.Search(sr.n, func(i int) bool { return sr.at(i).T >= t0 })
	hi := sort.Search(sr.n, func(i int) bool { return sr.at(i).T >= t1 })
	if hi < lo { // inverted range (t1 < t0) is empty
		hi = lo
	}
	out := make([]Point, hi-lo)
	for i := range out {
		out[i] = sr.at(lo + i)
	}
	return out
}

// Query returns a copy of the samples of name with from <= T < to. It
// is Range with existence reporting: the /debug/ods endpoint must
// distinguish an unknown series (client typo — an error) from a known
// series whose window is empty (a normal result).
func (s *Store) Query(name string, from, to float64) ([]Point, error) {
	s.mu.RLock()
	known := s.series[name] != nil
	s.mu.RUnlock()
	if !known {
		return nil, fmt.Errorf("ods: unknown series %q", name)
	}
	return s.Range(name, from, to), nil
}

// Values returns just the values in [t0, t1).
func (s *Store) Values(name string, t0, t1 float64) []float64 {
	pts := s.Range(name, t0, t1)
	vs := make([]float64, len(pts))
	for i, p := range pts {
		vs[i] = p.V
	}
	return vs
}

// Mean aggregates a range; returns 0 for an empty range.
func (s *Store) Mean(name string, t0, t1 float64) float64 {
	return stats.Mean(s.Values(name, t0, t1))
}

// Percentile aggregates a range (p in 0..100); returns 0 for an empty
// range and the sample itself for a single-point range — the tail
// queries (p99 over a validation window) the paper's fleet checks run.
func (s *Store) Percentile(name string, t0, t1 float64, p float64) float64 {
	vs := s.Values(name, t0, t1)
	if len(vs) == 0 {
		return 0
	}
	return stats.Percentile(vs, p)
}

// Sample returns a stats.Sample over a range for CI computation.
func (s *Store) Sample(name string, t0, t1 float64) *stats.Sample {
	var sm stats.Sample
	sm.AddAll(s.Values(name, t0, t1))
	return &sm
}

// Prune drops samples older than keepAfter from every series, the way
// a retention policy bounds ODS storage.
func (s *Store) Prune(keepAfter float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sr := range s.series {
		lo := sort.Search(sr.n, func(i int) bool { return sr.at(i).T >= keepAfter })
		sr.dropOldest(lo)
	}
}
