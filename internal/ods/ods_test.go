package ods

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestAppendAndRange(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		if err := s.Append("qps", float64(i), float64(i*100)); err != nil {
			t.Fatal(err)
		}
	}
	pts := s.Range("qps", 3, 7)
	if len(pts) != 4 || pts[0].T != 3 || pts[3].T != 6 {
		t.Fatalf("range = %v", pts)
	}
	if got := s.Mean("qps", 0, 10); got != 450 {
		t.Fatalf("mean = %g", got)
	}
	if got := s.Len("qps"); got != 10 {
		t.Fatalf("len = %d", got)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	s := NewStore()
	_ = s.Append("x", 5, 1)
	if err := s.Append("x", 3, 1); err == nil {
		t.Fatal("expected out-of-order error")
	}
	// Equal timestamps are allowed (multiple samples per tick).
	if err := s.Append("x", 5, 2); err != nil {
		t.Fatal(err)
	}
}

func TestLatest(t *testing.T) {
	s := NewStore()
	if _, ok := s.Latest("missing"); ok {
		t.Fatal("missing series should report !ok")
	}
	_ = s.Append("x", 1, 10)
	_ = s.Append("x", 2, 20)
	p, ok := s.Latest("x")
	if !ok || p.V != 20 {
		t.Fatalf("latest = %v %v", p, ok)
	}
}

func TestNamesSorted(t *testing.T) {
	s := NewStore()
	_ = s.Append("b", 0, 1)
	_ = s.Append("a", 0, 1)
	names := s.Names()
	if len(names) != 2 || names[0] != "a" {
		t.Fatalf("names = %v", names)
	}
}

func TestPercentile(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 100; i++ {
		_ = s.Append("lat", float64(i), float64(i))
	}
	if got := s.Percentile("lat", 0, 200, 99); got < 98 || got > 100 {
		t.Fatalf("p99 = %g", got)
	}
	if got := s.Percentile("missing", 0, 1, 50); got != 0 {
		t.Fatalf("missing percentile = %g", got)
	}
}

func TestPrune(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		_ = s.Append("x", float64(i), 1)
	}
	s.Prune(5)
	if got := s.Len("x"); got != 5 {
		t.Fatalf("after prune len = %d", got)
	}
	if pts := s.Range("x", 0, 100); pts[0].T != 5 {
		t.Fatalf("oldest after prune = %g", pts[0].T)
	}
}

func TestSampleCI(t *testing.T) {
	s := NewStore()
	for i := 0; i < 1000; i++ {
		_ = s.Append("m", float64(i), 100)
	}
	sm := s.Sample("m", 0, 1000)
	if sm.N() != 1000 || sm.Mean() != 100 {
		t.Fatalf("sample %v", sm)
	}
}

func TestConcurrentAppend(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("s%d", g)
			for i := 0; i < 1000; i++ {
				if err := s.Append(name, float64(i), float64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		if got := s.Len(fmt.Sprintf("s%d", g)); got != 1000 {
			t.Fatalf("series s%d len = %d", g, got)
		}
	}
}

func TestRangeHalfOpenProperty(t *testing.T) {
	f := func(n uint8) bool {
		s := NewStore()
		for i := 0; i < int(n%50)+1; i++ {
			_ = s.Append("x", float64(i), 1)
		}
		whole := s.Range("x", 0, 1000)
		split := append(s.Range("x", 0, 10), s.Range("x", 10, 1000)...)
		return len(whole) == len(split)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
