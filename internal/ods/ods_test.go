package ods

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestAppendAndRange(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		if err := s.Append("qps", float64(i), float64(i*100)); err != nil {
			t.Fatal(err)
		}
	}
	pts := s.Range("qps", 3, 7)
	if len(pts) != 4 || pts[0].T != 3 || pts[3].T != 6 {
		t.Fatalf("range = %v", pts)
	}
	if got := s.Mean("qps", 0, 10); got != 450 {
		t.Fatalf("mean = %g", got)
	}
	if got := s.Len("qps"); got != 10 {
		t.Fatalf("len = %d", got)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	s := NewStore()
	_ = s.Append("x", 5, 1)
	if err := s.Append("x", 3, 1); err == nil {
		t.Fatal("expected out-of-order error")
	}
	// Equal timestamps are allowed (multiple samples per tick).
	if err := s.Append("x", 5, 2); err != nil {
		t.Fatal(err)
	}
}

func TestLatest(t *testing.T) {
	s := NewStore()
	if _, ok := s.Latest("missing"); ok {
		t.Fatal("missing series should report !ok")
	}
	_ = s.Append("x", 1, 10)
	_ = s.Append("x", 2, 20)
	p, ok := s.Latest("x")
	if !ok || p.V != 20 {
		t.Fatalf("latest = %v %v", p, ok)
	}
}

func TestNamesSorted(t *testing.T) {
	s := NewStore()
	_ = s.Append("b", 0, 1)
	_ = s.Append("a", 0, 1)
	names := s.Names()
	if len(names) != 2 || names[0] != "a" {
		t.Fatalf("names = %v", names)
	}
}

func TestPercentile(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 100; i++ {
		_ = s.Append("lat", float64(i), float64(i))
	}
	if got := s.Percentile("lat", 0, 200, 99); got < 98 || got > 100 {
		t.Fatalf("p99 = %g", got)
	}
	if got := s.Percentile("missing", 0, 1, 50); got != 0 {
		t.Fatalf("missing percentile = %g", got)
	}
}

func TestPercentileEmptyRange(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 10; i++ {
		_ = s.Append("lat", float64(i), float64(i))
	}
	// Window entirely between samples / outside the series.
	if got := s.Percentile("lat", 3.5, 3.9, 99); got != 0 {
		t.Fatalf("empty in-between range p99 = %g, want 0", got)
	}
	if got := s.Percentile("lat", 100, 200, 50); got != 0 {
		t.Fatalf("out-of-range p50 = %g, want 0", got)
	}
	// Inverted range is empty too.
	if got := s.Percentile("lat", 9, 2, 50); got != 0 {
		t.Fatalf("inverted range p50 = %g, want 0", got)
	}
}

func TestPercentileSinglePoint(t *testing.T) {
	s := NewStore()
	_ = s.Append("lat", 5, 42)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := s.Percentile("lat", 5, 6, p); got != 42 {
			t.Fatalf("single-point p%g = %g, want 42", p, got)
		}
	}
}

func TestRetentionRingDropsOldest(t *testing.T) {
	s := NewStore()
	s.SetRetention("x", 10)
	for i := 0; i < 100; i++ {
		if err := s.Append("x", float64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Len("x"); got != 10 {
		t.Fatalf("len = %d, want 10", got)
	}
	pts := s.Range("x", 0, 1000)
	if len(pts) != 10 || pts[0].T != 90 || pts[9].T != 99 {
		t.Fatalf("range after wrap = %v", pts)
	}
	// Ordering is preserved across the wrap, so binary search works.
	if got := s.Mean("x", 95, 100); got != 97 {
		t.Fatalf("mean of last 5 = %g, want 97", got)
	}
	// Out-of-order appends are still rejected against the ring's tail.
	if err := s.Append("x", 50, 0); err == nil {
		t.Fatal("expected out-of-order error after wrap")
	}
	p, ok := s.Latest("x")
	if !ok || p.T != 99 {
		t.Fatalf("latest = %v %v", p, ok)
	}
}

func TestRetentionAppliedToExistingSeries(t *testing.T) {
	s := NewStore()
	for i := 0; i < 20; i++ {
		_ = s.Append("x", float64(i), float64(i))
	}
	s.SetRetention("x", 5)
	if got := s.Len("x"); got != 5 {
		t.Fatalf("len after cap = %d, want 5", got)
	}
	if pts := s.Range("x", 0, 100); pts[0].T != 15 {
		t.Fatalf("oldest after cap = %g, want 15", pts[0].T)
	}
	// Lifting the cap keeps growing without bound again.
	s.SetRetention("x", 0)
	for i := 20; i < 40; i++ {
		_ = s.Append("x", float64(i), float64(i))
	}
	if got := s.Len("x"); got != 25 {
		t.Fatalf("len after uncapping = %d, want 25", got)
	}
}

func TestDefaultRetention(t *testing.T) {
	s := NewStore()
	s.SetDefaultRetention(4)
	for i := 0; i < 10; i++ {
		_ = s.Append("a", float64(i), 1)
		_ = s.Append("b", float64(i), 1)
	}
	if s.Len("a") != 4 || s.Len("b") != 4 {
		t.Fatalf("default retention not applied: a=%d b=%d", s.Len("a"), s.Len("b"))
	}
}

func TestPruneRingSeries(t *testing.T) {
	s := NewStore()
	s.SetRetention("x", 8)
	for i := 0; i < 20; i++ { // ring wrapped; holds t=12..19
		_ = s.Append("x", float64(i), 1)
	}
	s.Prune(15)
	if got := s.Len("x"); got != 5 {
		t.Fatalf("after prune len = %d, want 5", got)
	}
	if pts := s.Range("x", 0, 100); pts[0].T != 15 {
		t.Fatalf("oldest after prune = %g", pts[0].T)
	}
	// The ring keeps working after a prune.
	for i := 20; i < 40; i++ {
		_ = s.Append("x", float64(i), 1)
	}
	if got := s.Len("x"); got != 8 {
		t.Fatalf("refilled len = %d, want 8", got)
	}
	if p, _ := s.Latest("x"); p.T != 39 {
		t.Fatalf("latest after refill = %g", p.T)
	}
}

func TestPrune(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		_ = s.Append("x", float64(i), 1)
	}
	s.Prune(5)
	if got := s.Len("x"); got != 5 {
		t.Fatalf("after prune len = %d", got)
	}
	if pts := s.Range("x", 0, 100); pts[0].T != 5 {
		t.Fatalf("oldest after prune = %g", pts[0].T)
	}
}

func TestSampleCI(t *testing.T) {
	s := NewStore()
	for i := 0; i < 1000; i++ {
		_ = s.Append("m", float64(i), 100)
	}
	sm := s.Sample("m", 0, 1000)
	if sm.N() != 1000 || sm.Mean() != 100 {
		t.Fatalf("sample %v", sm)
	}
}

func TestConcurrentAppend(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("s%d", g)
			for i := 0; i < 1000; i++ {
				if err := s.Append(name, float64(i), float64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		if got := s.Len(fmt.Sprintf("s%d", g)); got != 1000 {
			t.Fatalf("series s%d len = %d", g, got)
		}
	}
}

func TestRangeHalfOpenProperty(t *testing.T) {
	f := func(n uint8) bool {
		s := NewStore()
		for i := 0; i < int(n%50)+1; i++ {
			_ = s.Append("x", float64(i), 1)
		}
		whole := s.Range("x", 0, 1000)
		split := append(s.Range("x", 0, 10), s.Range("x", 10, 1000)...)
		return len(whole) == len(split)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQueryDistinguishesUnknownFromEmpty(t *testing.T) {
	s := NewStore()
	if _, err := s.Query("nope", 0, 10); err == nil {
		t.Fatal("Query on an unknown series should error")
	}
	if err := s.Append("qps", 5, 100); err != nil {
		t.Fatal(err)
	}
	pts, err := s.Query("qps", 0, 1) // known series, empty window
	if err != nil {
		t.Fatalf("Query on a known series errored: %v", err)
	}
	if len(pts) != 0 {
		t.Fatalf("empty window returned %v", pts)
	}
	pts, err = s.Query("qps", 0, 10)
	if err != nil || len(pts) != 1 || pts[0].V != 100 {
		t.Fatalf("Query = %v, %v", pts, err)
	}
}

// TestQueryWhileAppending is the /debug/ods serving pattern under
// -race: the mirror goroutine appends once a second while HTTP
// handlers call Names/Len/Latest/Query concurrently. The store must
// stay consistent — every Query result a handler sees is a clean copy
// in time order with no torn points.
func TestQueryWhileAppending(t *testing.T) {
	s := NewStore()
	s.SetDefaultRetention(64) // exercise the ring path too
	const series = 4
	const appends = 500
	var wg sync.WaitGroup
	for w := 0; w < series; w++ {
		name := fmt.Sprintf("telemetry/metric_%d", w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < appends; i++ {
				if err := s.Append(name, float64(i), float64(i)*2); err != nil {
					t.Errorf("append %s: %v", name, err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < appends; i++ {
				pts, err := s.Query(name, 0, 1e18)
				if err != nil {
					continue // series not created yet
				}
				for j, p := range pts {
					if p.V != p.T*2 {
						t.Errorf("%s: torn point %v at %d", name, p, j)
						return
					}
					if j > 0 && pts[j-1].T > p.T {
						t.Errorf("%s: out-of-order result %v after %v", name, p, pts[j-1])
						return
					}
				}
				s.Names()
				s.Len(name)
				s.Latest(name)
			}
		}()
	}
	wg.Wait()
	for w := 0; w < series; w++ {
		name := fmt.Sprintf("telemetry/metric_%d", w)
		pts, err := s.Query(name, 0, 1e18)
		if err != nil {
			t.Fatalf("final Query %s: %v", name, err)
		}
		if len(pts) != 64 {
			t.Fatalf("%s retained %d points, want 64", name, len(pts))
		}
		if last := pts[len(pts)-1]; last.T != appends-1 {
			t.Fatalf("%s last point %v, want T=%d", name, last, appends-1)
		}
	}
}
