// Package cache implements execution-driven set-associative cache
// models with true-LRU replacement, Intel CAT-style way limiting, and
// CDP code/data way partitioning — the structures behind the paper's
// MPKI characterization (Figs 8–10) and the CDP knob (§5(4), Fig 16).
//
// Caches are driven by synthetic address streams from
// internal/workload; misses are *emergent* from capacity, associativity
// and partitioning, never asserted.
package cache

import "fmt"

// Kind distinguishes instruction (code) from data accesses, the axis
// CDP partitions on and the paper's MPKI breakdowns report.
type Kind uint8

// Access kinds.
const (
	Code Kind = iota
	Data
	numKinds
)

// String names the kind as in the paper's figures.
func (k Kind) String() string {
	if k == Code {
		return "code"
	}
	return "data"
}

// Config describes one cache's geometry and insertion policy.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	BlockBytes int
	// BIP selects the behaviour of a non-inclusive LLC with
	// thrash-resistant insertion, like Intel's: prefetched lines are
	// inserted at the LRU position (with an occasional MRU insertion),
	// so speculative streaming cannot flush the demand working set;
	// demand fills insert at MRU; and hits do NOT refresh recency —
	// on a hit the line moves up to the L2, so the LLC copy ages
	// under insertion churn until it is reinstalled. Partitioning a
	// class into its own quiet ways therefore extends its lines'
	// lifetimes — the mechanism CDP exploits (§6.1(4)).
	BIP bool
}

// Stats counts demand accesses and misses, split by kind, plus
// prefetch fills.
type Stats struct {
	Accesses      [numKinds]uint64
	Misses        [numKinds]uint64
	PrefetchFills uint64
	PrefetchHits  uint64 // demand hits on prefetched lines
}

// MissRatio returns misses/accesses for one kind (0 if no accesses).
func (s Stats) MissRatio(k Kind) float64 {
	if s.Accesses[k] == 0 {
		return 0
	}
	return float64(s.Misses[k]) / float64(s.Accesses[k])
}

// TotalMisses sums misses over both kinds.
func (s Stats) TotalMisses() uint64 { return s.Misses[Code] + s.Misses[Data] }

// TotalAccesses sums accesses over both kinds.
func (s Stats) TotalAccesses() uint64 { return s.Accesses[Code] + s.Accesses[Data] }

// MPKI returns misses per kilo-instruction for one kind given the
// retired instruction count.
func (s Stats) MPKI(k Kind, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.Misses[k]) / float64(instructions) * 1000
}

type line struct {
	tag      uint64
	stamp    uint32
	valid    bool
	prefetch bool // installed by a prefetcher, not yet demand-hit
}

// Cache is a single set-associative cache with true-LRU replacement.
// It is not safe for concurrent use; the simulator serializes access.
type Cache struct {
	cfg      Config
	sets     int
	ways     int
	blockLg2 uint
	lines    []line // sets × ways, row-major
	clock    uint32

	// Way partitioning. wayLo/wayHi give the half-open way range each
	// kind may allocate into. Lookups always search all ways (CAT and
	// CDP restrict allocation, not hits).
	wayLo [numKinds]int
	wayHi [numKinds]int

	stats Stats
}

// New builds a cache. It panics on a degenerate geometry, which is a
// programming error in platform description.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.BlockBytes <= 0 {
		panic(fmt.Sprintf("cache %s: bad geometry %+v", cfg.Name, cfg))
	}
	sets := cfg.SizeBytes / (cfg.BlockBytes * cfg.Ways)
	if sets < 1 {
		sets = 1
	}
	lg2 := uint(0)
	for 1<<(lg2+1) <= cfg.BlockBytes {
		lg2++
	}
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		ways:     cfg.Ways,
		blockLg2: lg2,
		lines:    make([]line, sets*cfg.Ways),
	}
	c.ClearPartition()
	return c
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SetPartition dedicates dataWays ways to data and codeWays ways to
// code (Intel CDP). The sum must not exceed the associativity.
func (c *Cache) SetPartition(dataWays, codeWays int) error {
	if dataWays < 1 || codeWays < 1 || dataWays+codeWays > c.ways {
		return fmt.Errorf("cache %s: invalid partition data=%d code=%d of %d ways",
			c.cfg.Name, dataWays, codeWays, c.ways)
	}
	c.wayLo[Data], c.wayHi[Data] = 0, dataWays
	c.wayLo[Code], c.wayHi[Code] = dataWays, dataWays+codeWays
	return nil
}

// SetWayLimit restricts both kinds to the first n ways (Intel CAT),
// used for the Fig 10 LLC-capacity sweep.
func (c *Cache) SetWayLimit(n int) error {
	if n < 1 || n > c.ways {
		return fmt.Errorf("cache %s: way limit %d outside [1,%d]", c.cfg.Name, n, c.ways)
	}
	for k := Kind(0); k < numKinds; k++ {
		c.wayLo[k], c.wayHi[k] = 0, n
	}
	return nil
}

// ClearPartition restores the default shared-ways policy.
func (c *Cache) ClearPartition() {
	for k := Kind(0); k < numKinds; k++ {
		c.wayLo[k], c.wayHi[k] = 0, c.ways
	}
}

func (c *Cache) set(addr uint64) int {
	return int((addr >> c.blockLg2) % uint64(c.sets))
}

func (c *Cache) tag(addr uint64) uint64 { return addr >> c.blockLg2 }

// Access performs a demand access, returning true on hit. On miss the
// line is installed in the LRU way of the kind's allowed range.
func (c *Cache) Access(addr uint64, kind Kind) bool {
	c.stats.Accesses[kind]++
	c.clock++
	set := c.set(addr)
	tag := c.tag(addr)
	base := set * c.ways
	row := c.lines[base : base+c.ways]
	for i := range row {
		if row[i].valid && row[i].tag == tag {
			if !c.cfg.BIP {
				row[i].stamp = c.clock
			}
			if row[i].prefetch {
				// First demand touch promotes a speculative line.
				row[i].prefetch = false
				row[i].stamp = c.clock
				c.stats.PrefetchHits++
			}
			return true
		}
	}
	c.stats.Misses[kind]++
	c.install(row, tag, kind, false, false)
	return false
}

// Probe reports whether addr is resident without updating LRU state or
// statistics.
func (c *Cache) Probe(addr uint64) bool {
	set := c.set(addr)
	tag := c.tag(addr)
	base := set * c.ways
	for i := 0; i < c.ways; i++ {
		if c.lines[base+i].valid && c.lines[base+i].tag == tag {
			return true
		}
	}
	return false
}

// Prefetch installs addr without counting a demand access. It returns
// false if the line was already resident (a useless prefetch).
func (c *Cache) Prefetch(addr uint64, kind Kind) bool {
	if c.Probe(addr) {
		return false
	}
	c.clock++
	set := c.set(addr)
	base := set * c.ways
	c.install(c.lines[base:base+c.ways], c.tag(addr), kind, true, false)
	c.stats.PrefetchFills++
	return true
}

// InstallWarm installs addr at the MRU position regardless of policy,
// bypassing statistics. The simulator's functional warm-up uses it to
// seed steady-state resident sets.
func (c *Cache) InstallWarm(addr uint64, kind Kind) {
	if c.Probe(addr) {
		return
	}
	c.clock++
	set := c.set(addr)
	base := set * c.ways
	c.install(c.lines[base:base+c.ways], c.tag(addr), kind, false, true)
}

func (c *Cache) install(row []line, tag uint64, kind Kind, viaPrefetch, forceMRU bool) {
	lo, hi := c.wayLo[kind], c.wayHi[kind]
	victim := lo
	for i := lo; i < hi; i++ {
		if !row[i].valid {
			victim = i
			break
		}
		if row[i].stamp < row[victim].stamp {
			victim = i
		}
	}
	stamp := c.clock
	if c.cfg.BIP && viaPrefetch && !forceMRU && c.clock%32 != 0 {
		// LRU-position insertion: the speculative line is the set's
		// next victim unless a demand hit promotes it first.
		stamp = 1
	}
	row[victim] = line{tag: tag, stamp: stamp, valid: true, prefetch: viaPrefetch}
}

// ScrambleAges assigns every valid line a uniformly random age and
// advances the clock past them. Functional warm-up installs lines all
// at once; scrambling reproduces the steady-state age distribution so
// short measurement windows observe the true eviction flux (the
// oldest tail being replaced at the insertion rate) instead of a
// freshly-installed population that never ages out.
func (c *Cache) ScrambleAges(rnd func(n int) int) {
	span := uint32(len(c.lines)) * 4
	if span < 1024 {
		span = 1024
	}
	for i := range c.lines {
		if c.lines[i].valid {
			c.lines[i].stamp = uint32(rnd(int(span))) + 1
		}
	}
	c.clock += span + 1
}

// Flush invalidates all lines (e.g. across a reboot) without touching
// statistics.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (lines stay warm), used at the end of
// a measurement warm-up.
func (c *Cache) ResetStats() { c.stats = Stats{} }
