package cache

import (
	"fmt"

	"softsku/internal/platform"
)

// Level identifies where in the hierarchy an access was satisfied.
type Level int

// Hit levels, nearest first.
const (
	L1 Level = iota
	L2
	LLC
	Memory
	numLevels
)

// String names the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case LLC:
		return "LLC"
	default:
		return "Memory"
	}
}

// Hierarchy is the per-socket cache hierarchy of one server: private
// L1I/L1D and L2 per core, one shared LLC. It is the unit the
// simulator drives and the CDP/CAT knobs reconfigure.
type Hierarchy struct {
	sku  *platform.SKU
	L1I  []*Cache
	L1D  []*Cache
	L2s  []*Cache
	LLCs *Cache
}

// NewHierarchy builds the hierarchy for cores active cores of the
// given SKU (a socket's worth; the simulator models the per-socket
// view).
func NewHierarchy(sku *platform.SKU, cores int) *Hierarchy {
	return NewHierarchySized(sku, cores, sku.LLC)
}

// NewHierarchySized builds a hierarchy with an explicit LLC capacity.
// The simulator uses this to model N-core LLC sharing with a handful
// of representative threads: simulating k threads against an LLC of
// size LLC·k/N preserves per-thread capacity pressure exactly for
// symmetric workloads.
func NewHierarchySized(sku *platform.SKU, cores int, llcBytes int) *Hierarchy {
	if cores < 1 {
		cores = 1
	}
	minLLC := sku.LLCWays * sku.CacheBlock
	if llcBytes < minLLC {
		llcBytes = minLLC
	}
	h := &Hierarchy{
		sku: sku,
		L1I: make([]*Cache, cores),
		L1D: make([]*Cache, cores),
		L2s: make([]*Cache, cores),
	}
	for i := 0; i < cores; i++ {
		h.L1I[i] = New(Config{Name: fmt.Sprintf("L1I.%d", i), SizeBytes: sku.L1I, Ways: 8, BlockBytes: sku.CacheBlock})
		h.L1D[i] = New(Config{Name: fmt.Sprintf("L1D.%d", i), SizeBytes: sku.L1D, Ways: 8, BlockBytes: sku.CacheBlock})
		h.L2s[i] = New(Config{Name: fmt.Sprintf("L2.%d", i), SizeBytes: sku.L2, Ways: 16, BlockBytes: sku.CacheBlock})
	}
	h.LLCs = New(Config{Name: "LLC", SizeBytes: llcBytes, Ways: sku.LLCWays, BlockBytes: sku.CacheBlock, BIP: true})
	return h
}

// Cores returns the number of cores the hierarchy was built for.
func (h *Hierarchy) Cores() int { return len(h.L2s) }

// Access performs a demand access from core for addr, filling on the
// way down, and returns the level that satisfied it.
func (h *Hierarchy) Access(core int, addr uint64, kind Kind) Level {
	l1 := h.L1D[core]
	if kind == Code {
		l1 = h.L1I[core]
	}
	if l1.Access(addr, kind) {
		return L1
	}
	if h.L2s[core].Access(addr, kind) {
		return L2
	}
	if h.LLCs.Access(addr, kind) {
		return LLC
	}
	return Memory
}

// PrefetchL2 installs addr into core's L2 (and the LLC, as hardware
// prefetchers fetch through the shared cache). moved reports whether
// any line was installed; fromMemory reports whether the line had to
// be pulled from DRAM, i.e. the prefetch consumed memory bandwidth.
func (h *Hierarchy) PrefetchL2(core int, addr uint64, kind Kind) (moved, fromMemory bool) {
	fromMemory = h.LLCs.Prefetch(addr, kind)
	movedL2 := h.L2s[core].Prefetch(addr, kind)
	return movedL2 || fromMemory, fromMemory
}

// PrefetchL1 installs addr into core's L1 (DCU prefetchers), pulling
// through L2/LLC as needed. fromMemory reports DRAM bandwidth use.
func (h *Hierarchy) PrefetchL1(core int, addr uint64, kind Kind) (moved, fromMemory bool) {
	l1 := h.L1D[core]
	if kind == Code {
		l1 = h.L1I[core]
	}
	inL2 := h.L2s[core].Probe(addr)
	inLLC := h.LLCs.Probe(addr)
	moved = l1.Prefetch(addr, kind)
	if moved && !inL2 {
		h.L2s[core].Prefetch(addr, kind)
		if !inLLC {
			h.LLCs.Prefetch(addr, kind)
			fromMemory = true
		}
	}
	return moved, fromMemory
}

// ApplyCDP partitions the LLC's ways between data and code, or clears
// the partition when cfg is disabled.
func (h *Hierarchy) ApplyCDP(dataWays, codeWays int) error {
	if dataWays == 0 && codeWays == 0 {
		h.LLCs.ClearPartition()
		return nil
	}
	return h.LLCs.SetPartition(dataWays, codeWays)
}

// ApplyCAT limits the LLC to its first n ways (Fig 10 sweep).
func (h *Hierarchy) ApplyCAT(n int) error { return h.LLCs.SetWayLimit(n) }

// Flush invalidates every cache, as across a reboot.
func (h *Hierarchy) Flush() {
	for i := range h.L2s {
		h.L1I[i].Flush()
		h.L1D[i].Flush()
		h.L2s[i].Flush()
	}
	h.LLCs.Flush()
}

// ResetStats zeroes all counters while keeping lines warm.
func (h *Hierarchy) ResetStats() {
	for i := range h.L2s {
		h.L1I[i].ResetStats()
		h.L1D[i].ResetStats()
		h.L2s[i].ResetStats()
	}
	h.LLCs.ResetStats()
}

// LevelStats aggregates per-level counters across cores.
type LevelStats struct {
	L1I, L1D, L2, LLC Stats
}

// Stats sums the per-core counters into one LevelStats.
func (h *Hierarchy) Stats() LevelStats {
	var ls LevelStats
	add := func(dst *Stats, src Stats) {
		for k := Kind(0); k < numKinds; k++ {
			dst.Accesses[k] += src.Accesses[k]
			dst.Misses[k] += src.Misses[k]
		}
		dst.PrefetchFills += src.PrefetchFills
		dst.PrefetchHits += src.PrefetchHits
	}
	for i := range h.L2s {
		add(&ls.L1I, h.L1I[i].Stats())
		add(&ls.L1D, h.L1D[i].Stats())
		add(&ls.L2, h.L2s[i].Stats())
	}
	add(&ls.LLC, h.LLCs.Stats())
	return ls
}
