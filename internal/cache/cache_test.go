package cache

import (
	"testing"
	"testing/quick"

	"softsku/internal/platform"
	"softsku/internal/rng"
)

func tiny() *Cache {
	// 4 sets x 2 ways x 64B = 512B.
	return New(Config{Name: "t", SizeBytes: 512, Ways: 2, BlockBytes: 64})
}

func TestHitAfterMiss(t *testing.T) {
	c := tiny()
	if c.Access(0x1000, Data) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0x1000, Data) {
		t.Fatal("second access must hit")
	}
	if !c.Access(0x1030, Data) {
		t.Fatal("same-line access must hit")
	}
	s := c.Stats()
	if s.Accesses[Data] != 3 || s.Misses[Data] != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny() // 4 sets, 2 ways; addresses with the same set index conflict
	// Set stride: 4 sets * 64B = 256. Three lines mapping to set 0.
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Access(a, Data)
	c.Access(b, Data)
	c.Access(a, Data) // a most recent; b is LRU
	c.Access(d, Data) // evicts b
	if !c.Access(a, Data) {
		t.Fatal("a should survive (MRU)")
	}
	if c.Probe(b) {
		t.Fatal("b should have been evicted as LRU")
	}
}

func TestWorkingSetFitsVsOverflows(t *testing.T) {
	c := New(Config{Name: "l1", SizeBytes: 32 << 10, Ways: 8, BlockBytes: 64})
	// Working set half the cache: steady-state misses ~ 0.
	fits := func(lines int) float64 {
		c.Flush()
		for i := 0; i < lines; i++ { // warm-up round: exclude cold misses
			c.Access(uint64(i*64), Data)
		}
		c.ResetStats()
		for round := 0; round < 50; round++ {
			for i := 0; i < lines; i++ {
				c.Access(uint64(i*64), Data)
			}
		}
		s := c.Stats()
		return s.MissRatio(Data)
	}
	if mr := fits(256); mr > 0.01 { // 16 KiB in 32 KiB
		t.Fatalf("resident working set miss ratio %g", mr)
	}
	if mr := fits(1024); mr < 0.5 { // 64 KiB in 32 KiB, sequential sweep thrashes LRU
		t.Fatalf("overflowing working set miss ratio %g, want thrash", mr)
	}
}

func TestPartitionIsolation(t *testing.T) {
	c := New(Config{Name: "llc", SizeBytes: 64 << 10, Ways: 8, BlockBytes: 64})
	if err := c.SetPartition(6, 2); err != nil {
		t.Fatal(err)
	}
	// Fill code's 2 ways in set 0, then hammer data in the same set:
	// code lines must survive arbitrary data pressure.
	setStride := uint64(c.Sets() * 64)
	code1, code2 := uint64(0), setStride*100
	c.Access(code1, Code)
	c.Access(code2, Code)
	src := rng.New(1)
	for i := 0; i < 1000; i++ {
		c.Access(setStride*uint64(src.Intn(1000)+200), Data)
	}
	if !c.Probe(code1) || !c.Probe(code2) {
		t.Fatal("CDP must protect code ways from data evictions")
	}
}

func TestPartitionLookupStillHitsOtherSide(t *testing.T) {
	// CDP restricts allocation, not lookup: a line installed as data
	// before partitioning must still hit for later accesses.
	c := New(Config{Name: "llc", SizeBytes: 64 << 10, Ways: 8, BlockBytes: 64})
	c.Access(0x40, Data)
	if err := c.SetPartition(4, 4); err != nil {
		t.Fatal(err)
	}
	if !c.Access(0x40, Data) {
		t.Fatal("post-partition access must still find the line")
	}
}

func TestPartitionValidation(t *testing.T) {
	c := tiny()
	if err := c.SetPartition(2, 1); err == nil {
		t.Fatal("over-committed partition must error")
	}
	if err := c.SetPartition(0, 2); err == nil {
		t.Fatal("zero-way side must error")
	}
}

func TestWayLimitReducesCapacity(t *testing.T) {
	c := New(Config{Name: "llc", SizeBytes: 64 << 10, Ways: 8, BlockBytes: 64})
	run := func() float64 {
		c.Flush()
		c.ResetStats()
		src := rng.New(2)
		z := rng.NewZipf(src, 1024, 0.7) // 64 KiB working set
		for i := 0; i < 200000; i++ {
			c.Access(uint64(z.Next()*64), Data)
		}
		return c.Stats().MissRatio(Data)
	}
	full := run()
	if err := c.SetWayLimit(2); err != nil {
		t.Fatal(err)
	}
	limited := run()
	if limited <= full*1.2 {
		t.Fatalf("way limit should raise miss ratio: full=%g limited=%g", full, limited)
	}
	c.ClearPartition()
	restored := run()
	if restored > full*1.1 {
		t.Fatalf("ClearPartition should restore capacity: %g vs %g", restored, full)
	}
}

func TestWayLimitBounds(t *testing.T) {
	c := tiny()
	if err := c.SetWayLimit(0); err == nil {
		t.Fatal("limit 0 must error")
	}
	if err := c.SetWayLimit(3); err == nil {
		t.Fatal("limit above ways must error")
	}
}

func TestPrefetch(t *testing.T) {
	c := tiny()
	if !c.Prefetch(0x1000, Data) {
		t.Fatal("prefetch of absent line must move data")
	}
	if c.Prefetch(0x1000, Data) {
		t.Fatal("prefetch of resident line is useless")
	}
	if !c.Access(0x1000, Data) {
		t.Fatal("demand access after prefetch must hit")
	}
	s := c.Stats()
	if s.PrefetchFills != 1 || s.PrefetchHits != 1 {
		t.Fatalf("prefetch stats %+v", s)
	}
	if s.Misses[Data] != 0 {
		t.Fatal("prefetch-covered access should not count as demand miss")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := tiny()
	c.Access(0x0, Data)
	before := c.Stats()
	c.Probe(0x0)
	c.Probe(0x4000)
	if c.Stats() != before {
		t.Fatal("Probe must not change stats")
	}
}

func TestFlushInvalidatesKeepsStats(t *testing.T) {
	c := tiny()
	c.Access(0x0, Data)
	c.Flush()
	if c.Probe(0x0) {
		t.Fatal("flush must invalidate")
	}
	if c.Stats().Accesses[Data] != 1 {
		t.Fatal("flush must keep stats")
	}
	c.ResetStats()
	if c.Stats().TotalAccesses() != 0 {
		t.Fatal("ResetStats must zero counters")
	}
}

func TestStatsInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c := New(Config{Name: "p", SizeBytes: 4 << 10, Ways: 4, BlockBytes: 64})
		src := rng.New(seed)
		for i := 0; i < 2000; i++ {
			kind := Data
			if src.Bool(0.3) {
				kind = Code
			}
			c.Access(uint64(src.Intn(4096))*64, kind)
		}
		s := c.Stats()
		// Misses never exceed accesses, per kind.
		return s.Misses[Code] <= s.Accesses[Code] && s.Misses[Data] <= s.Accesses[Data] &&
			s.TotalAccesses() == 2000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMPKI(t *testing.T) {
	var s Stats
	s.Misses[Code] = 17
	if got := s.MPKI(Code, 10000); got != 1.7 {
		t.Fatalf("MPKI=%g", got)
	}
	if got := s.MPKI(Code, 0); got != 0 {
		t.Fatalf("MPKI with zero instructions = %g", got)
	}
}

func TestHierarchyFillPath(t *testing.T) {
	h := NewHierarchy(platform.Skylake18(), 2)
	if lvl := h.Access(0, 0x100000, Data); lvl != Memory {
		t.Fatalf("cold access hit %v", lvl)
	}
	if lvl := h.Access(0, 0x100000, Data); lvl != L1 {
		t.Fatalf("warm access hit %v, want L1", lvl)
	}
	// A different core misses L1/L2 but hits the shared LLC.
	if lvl := h.Access(1, 0x100000, Data); lvl != LLC {
		t.Fatalf("cross-core access hit %v, want LLC", lvl)
	}
}

func TestHierarchyCodeUsesL1I(t *testing.T) {
	h := NewHierarchy(platform.Skylake18(), 1)
	h.Access(0, 0x2000, Code)
	ls := h.Stats()
	if ls.L1I.Accesses[Code] != 1 || ls.L1D.TotalAccesses() != 0 {
		t.Fatalf("code access routed wrong: %+v", ls)
	}
}

func TestHierarchySharedLLCInterference(t *testing.T) {
	// Two cores with disjoint working sets interfere in the LLC:
	// aggregate footprint near LLC capacity raises per-core misses.
	sku := platform.Skylake18()
	run := func(cores int) float64 {
		h := NewHierarchy(sku, cores)
		src := rng.New(3)
		perCore := 300000 // lines; ~18 MiB each
		for i := 0; i < 400000; i++ {
			core := i % cores
			off := uint64(core) << 40
			h.Access(core, off+uint64(src.Intn(perCore))*64, Data)
		}
		s := h.LLCs.Stats()
		return s.MissRatio(Data)
	}
	one := run(1)
	two := run(2)
	if two <= one {
		t.Fatalf("LLC interference missing: 1-core %g vs 2-core %g", one, two)
	}
}

func TestHierarchyCDPAndCAT(t *testing.T) {
	h := NewHierarchy(platform.Skylake18(), 1)
	if err := h.ApplyCDP(6, 5); err != nil {
		t.Fatal(err)
	}
	if err := h.ApplyCDP(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.ApplyCAT(8); err != nil {
		t.Fatal(err)
	}
	if err := h.ApplyCAT(99); err == nil {
		t.Fatal("CAT beyond ways must error")
	}
}

func TestHierarchyPrefetchL1PullsThrough(t *testing.T) {
	h := NewHierarchy(platform.Skylake18(), 1)
	moved, fromMem := h.PrefetchL1(0, 0x9000, Data)
	if !moved || !fromMem {
		t.Fatalf("L1 prefetch from memory: moved=%v fromMem=%v", moved, fromMem)
	}
	if lvl := h.Access(0, 0x9000, Data); lvl != L1 {
		t.Fatalf("after L1 prefetch, demand hit at %v", lvl)
	}
	// Prefetching a now-resident line is a no-op with no DRAM traffic.
	moved, fromMem = h.PrefetchL1(0, 0x9000, Data)
	if moved || fromMem {
		t.Fatalf("repeat prefetch: moved=%v fromMem=%v", moved, fromMem)
	}
}

func TestHierarchyPrefetchL2(t *testing.T) {
	h := NewHierarchy(platform.Skylake18(), 1)
	moved, fromMem := h.PrefetchL2(0, 0x9000, Data)
	if !moved || !fromMem {
		t.Fatalf("first L2 prefetch: moved=%v fromMem=%v", moved, fromMem)
	}
	if lvl := h.Access(0, 0x9000, Data); lvl != L2 {
		t.Fatalf("after L2 prefetch, demand hit at %v", lvl)
	}
	// An L1 prefetch of an LLC-resident line moves data but not from DRAM.
	h2 := NewHierarchy(platform.Skylake18(), 2)
	h2.Access(1, 0x9000, Data) // core 1 pulls it into the shared LLC
	moved, fromMem = h2.PrefetchL1(0, 0x9000, Data)
	if !moved || fromMem {
		t.Fatalf("LLC-sourced prefetch: moved=%v fromMem=%v", moved, fromMem)
	}
}

func BenchmarkAccess(b *testing.B) {
	c := New(Config{Name: "llc", SizeBytes: 24 << 20, Ways: 11, BlockBytes: 64})
	src := rng.New(1)
	z := rng.NewZipf(src, 1<<20, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(z.Next())*64, Data)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := NewHierarchy(platform.Skylake18(), 18)
	src := rng.New(1)
	z := rng.NewZipf(src, 1<<20, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(i%18, uint64(z.Next())*64, Data)
	}
}
