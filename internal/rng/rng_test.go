package rng

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedIndependence(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("nearby seeds collided %d times", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded source produced repeats: %d unique of 100", len(seen))
	}
}

func TestSplitDeterministic(t *testing.T) {
	want := New(7).Split("cache").Uint64()
	if got := New(7).Split("cache").Uint64(); got != want {
		t.Fatalf("Split not deterministic: got %d want %d", got, want)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(7), New(7)
	a.Split("cache")
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestSplitLabelsDiffer(t *testing.T) {
	a := New(7)
	s1 := a.Split("tlb")
	s2 := a.Split("cache")
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("different labels produced identical sub-streams")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %g, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(6)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean %g, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("normal stddev %g, want ~3", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	s := New(8)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.1 {
		t.Fatalf("exponential mean %g, want ~5", mean)
	}
}

func TestExpNonNegative(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		if v := s.Exp(1); v < 0 {
			t.Fatalf("exponential produced negative %g", v)
		}
	}
}

func TestPoissonSmallMean(t *testing.T) {
	s := New(10)
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Poisson(2.5)
	}
	mean := float64(sum) / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("poisson(2.5) mean %g", mean)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	s := New(11)
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Poisson(500)
	}
	mean := float64(sum) / n
	if math.Abs(mean-500) > 2 {
		t.Fatalf("poisson(500) mean %g", mean)
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestParetoTail(t *testing.T) {
	s := New(12)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("pareto below minimum: %g", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(13)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("lognormal non-positive: %g", v)
		}
	}
}

func TestZipfBoundsProperty(t *testing.T) {
	f := func(seed uint64, rawN uint16) bool {
		n := int(rawN%1000) + 1
		z := NewZipf(New(seed), n, 0.9)
		for i := 0; i < 200; i++ {
			r := z.Next()
			if r < 0 || r >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(New(14), 10000, 0.99)
	const n = 100000
	hot := 0
	for i := 0; i < n; i++ {
		if z.Next() < 100 { // hottest 1% of ranks
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.3 {
		t.Fatalf("zipf(0.99) hottest 1%% got only %.2f of accesses, want skewed (>0.3)", frac)
	}
}

func TestZipfUnitThetaNudged(t *testing.T) {
	z := NewZipf(New(15), 100, 1.0)
	for i := 0; i < 1000; i++ {
		if r := z.Next(); r < 0 || r >= 100 {
			t.Fatalf("rank out of bounds: %d", r)
		}
	}
}

func TestZipfPanicsOnEmptySupport(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(New(1), 0, 0.9)
}

func TestBoolProbability(t *testing.T) {
	s := New(16)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %g", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z := NewZipf(New(1), 1<<20, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}

// firstDraws keys a stream by its first k outputs, the equality tests
// below use to detect aliased (identical) streams.
func firstDraws(seed uint64) [8]uint64 {
	var k [8]uint64
	s := New(seed)
	for i := range k {
		k[i] = s.Uint64()
	}
	return k
}

func TestDeriveStreamsPairwiseDistinct(t *testing.T) {
	// A grid of (seed, label) pairs deliberately including the XOR/add
	// structured cases (seed^tag, counter suffixes) that the old ad-hoc
	// derivations aliased on. Every derived stream must be distinct.
	seeds := []uint64{0, 1, 2, 7, 0x10ad, 0x10ad ^ 1, 1 << 63, ^uint64(0)}
	labels := []string{"", "load", "phase", "noise/control", "noise/treatment",
		"trial/sweep/thp/0", "trial/sweep/thp/1", "trial/sweep/shp/10",
		"ab", "ba", "a", "aa"}
	seen := make(map[[8]uint64]string)
	for _, s := range seeds {
		for _, l := range labels {
			key := firstDraws(Derive(s, l))
			id := fmt.Sprintf("seed=%#x label=%q", s, l)
			if prev, dup := seen[key]; dup {
				t.Fatalf("aliased streams: %s and %s draw identically", prev, id)
			}
			seen[key] = id
		}
	}
}

func TestDeriveResistsXORCancellation(t *testing.T) {
	// The concrete pre-fix collision class: seed^a vs seed^b style
	// derivations alias whenever a^b cancels. Derive must not.
	const seed = 99
	if Derive(seed^0x10ad, "x") == Derive(seed, "x") {
		t.Fatal("seed perturbation did not change the derived stream")
	}
	for n := uint64(1); n < 4096; n++ {
		if Derive(seed^n, "load") == Derive(seed, "load") {
			t.Fatalf("Derive aliases at seed xor %#x", n)
		}
	}
}

func TestFoldDistinctAcrossIndices(t *testing.T) {
	seen := make(map[[8]uint64]uint64)
	for n := uint64(0); n < 2048; n++ {
		key := firstDraws(Fold(5, n))
		if prev, dup := seen[key]; dup {
			t.Fatalf("Fold aliases indices %d and %d", prev, n)
		}
		seen[key] = n
	}
	if Fold(5, 1) == Fold(6, 1) {
		t.Fatal("Fold must depend on the seed")
	}
}

func TestSplitLabelsDistinct(t *testing.T) {
	// Split streams must be distinct per label, stable per (state,
	// label), and must not perturb or depend on parent consumption.
	p := New(3)
	a, b := p.Split("apply"), p.Split("drop")
	if firstDraws(0) == firstDraws(1) { // sanity on the key helper
		t.Fatal("firstDraws cannot distinguish seeds")
	}
	var da, db [8]uint64
	for i := range da {
		da[i], db[i] = a.Uint64(), b.Uint64()
	}
	if da == db {
		t.Fatal("Split streams for different labels alias")
	}
	again := New(3).Split("apply")
	for i := range da {
		if got := again.Uint64(); got != da[i] {
			t.Fatalf("Split not reproducible at draw %d", i)
		}
	}
}
