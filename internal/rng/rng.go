// Package rng provides deterministic pseudo-random number generation and
// the distribution samplers the SoftSKU simulators depend on.
//
// Every source of randomness in the repository flows through a seeded
// Source so that simulations, tests, and benchmarks are reproducible
// bit-for-bit across runs. The generator is xoshiro256**, seeded via
// SplitMix64; independent sub-streams for subsystems are derived with
// Split so that adding a consumer never perturbs another consumer's
// stream.
package rng

import "math"

// Source is a deterministic pseudo-random source implementing
// xoshiro256**. The zero value is not valid; use New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed via SplitMix64 so that nearby
// seeds produce uncorrelated streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	src.s0, src.s1, src.s2, src.s3 = next(), next(), next(), next()
	if src.s0|src.s1|src.s2|src.s3 == 0 {
		src.s0 = 1 // xoshiro must not be seeded with all zeros
	}
	return &src
}

// mix64 is the SplitMix64 finalizer: a full-avalanche bijection on
// uint64, so structured inputs (XORed tags, small counters) come out
// uncorrelated.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Derive maps (seed, label) to an independent sub-stream seed. The
// label is FNV-1a hashed and the two halves are each finalized with
// mix64 before combining, so the XOR-structured collisions that plain
// `seed ^ tag` derivations allow (two (seed, label) pairs whose
// differences cancel, aliasing their streams) cannot occur: any bit
// change in either input avalanches across the result.
func Derive(seed uint64, label string) uint64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return mix64(mix64(seed^0x736f6674736b75) + h)
}

// Fold maps (seed, n) to an independent sub-stream seed for numeric
// sub-stream families (time windows, shard indices) where a string
// label would allocate on a hot path. Like Derive, both inputs are
// mixed so index arithmetic cannot cancel against seed bits.
func Fold(seed, n uint64) uint64 {
	return mix64(mix64(seed^0x666f6c64) + n*0x9e3779b97f4a7c15)
}

// Split derives an independent sub-stream labelled by label. The parent
// stream is not advanced, so consumers can be added or removed without
// disturbing sibling streams. Derivation goes through Derive, so label
// hashes cannot cancel against parent-state bits.
func (s *Source) Split(label string) *Source {
	return New(Derive(s.s0^rotl(s.s2, 17), label))
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	return int64(s.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Marsaglia polar method.
func (s *Source) Norm(mean, stddev float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean <= 0.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp called with mean <= 0")
	}
	return -mean * math.Log(1-s.Float64())
}

// Poisson returns a Poisson-distributed count with the given mean. For
// large means a normal approximation is used, which is accurate to well
// under the simulation noise floor.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(s.Norm(mean, math.Sqrt(mean))))
		if n < 0 {
			return 0
		}
		return n
	}
	// Knuth's algorithm for small means.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// LogNormal returns a log-normally distributed value parameterized by
// the mean and standard deviation of the underlying normal.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// Pareto returns a Pareto-distributed value with minimum xm and shape
// alpha. Heavy-tailed service demands use this.
func (s *Source) Pareto(xm, alpha float64) float64 {
	return xm / math.Pow(1-s.Float64(), 1/alpha)
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^theta. It is used to give synthetic address streams a
// realistic hot/cold locality profile.
type Zipf struct {
	src   *Source
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipf returns a Zipf sampler over [0, n) with skew theta in (0, 1)
// U (1, inf). theta == 1 is nudged to avoid the harmonic singularity.
// It panics if n <= 0.
func NewZipf(src *Source, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf called with n <= 0")
	}
	if theta == 1 {
		theta = 0.99999
	}
	z := &Zipf{src: src, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// Next returns the next sampled rank in [0, n). Rank 0 is hottest.
func (z *Zipf) Next() int {
	// Gray et al.'s quick Zipf approximation, standard in YCSB-style
	// workload generators.
	u := z.src.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// N returns the sampler's support size.
func (z *Zipf) N() int { return z.n }

func zeta(n int, theta float64) float64 {
	// For large n, approximate the generalized harmonic number with the
	// integral; exact summation up to a cutoff keeps the head accurate.
	const cutoff = 10000
	sum := 0.0
	limit := n
	if limit > cutoff {
		limit = cutoff
	}
	for i := 1; i <= limit; i++ {
		sum += math.Pow(float64(i), -theta)
	}
	if n > cutoff {
		// Integral of x^-theta from cutoff to n.
		if theta != 1 {
			sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(cutoff), 1-theta)) / (1 - theta)
		} else {
			sum += math.Log(float64(n) / float64(cutoff))
		}
	}
	return sum
}
