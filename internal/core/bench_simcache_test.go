package core

import (
	"io"
	"testing"

	"softsku/internal/knob"
	"softsku/internal/sim"
)

// benchSweepCache measures one full four-knob tuning run with the
// characterization cache on or off. TestSimCacheBitIdentical proves
// the two configurations produce identical Results, so the pair
// isolates the cache's wall-clock and allocation effect; the
// windows/op metric is the ≥2x dedupe claim BENCH_simcache.json
// records. Each iteration starts from a cold cache — cross-run reuse
// would overstate the win.
func benchSweepCache(b *testing.B, mode SweepMode, enabled bool) {
	in := fastInput("Web", "Skylake18", knob.THP, knob.SHP, knob.CoreFreq, knob.Prefetch)
	in.Sweep = mode
	in.Parallel = 1
	prev := sim.SetCharacterizationCache(enabled)
	defer sim.SetCharacterizationCache(prev)
	b.ReportAllocs()
	windows := 0.0
	for i := 0; i < b.N; i++ {
		sim.ResetCharacterizationCache()
		before := sim.WindowsExecuted()
		tool, err := New(in)
		if err != nil {
			b.Fatal(err)
		}
		tool.SetLogger(io.Discard)
		if _, err := tool.Run(); err != nil {
			b.Fatal(err)
		}
		windows += sim.WindowsExecuted() - before
	}
	b.ReportMetric(windows/float64(b.N), "windows/op")
}

// The independent sweep bounds the win at control-arm dedupe alone
// (2T+2 windows → T+3 distinct ones, just under 2x); the hill climb
// adds cross-round revisits and each round's control being the prior
// winner, pushing past 2x.
func BenchmarkSweepCacheOff(b *testing.B) { benchSweepCache(b, SweepIndependent, false) }
func BenchmarkSweepCacheOn(b *testing.B)  { benchSweepCache(b, SweepIndependent, true) }
func BenchmarkClimbCacheOff(b *testing.B) { benchSweepCache(b, SweepHillClimb, false) }
func BenchmarkClimbCacheOn(b *testing.B)  { benchSweepCache(b, SweepHillClimb, true) }
