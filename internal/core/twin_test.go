package core

import (
	"bytes"
	"io"
	"testing"

	"softsku/internal/chaos"
	"softsku/internal/decision"
	"softsku/internal/knob"
	"softsku/internal/sim"
)

// twinRun executes one four-knob search from a cold characterization
// cache (the ladder's prune decisions depend on what the cache holds,
// so every comparison starts from the same empty state — exactly one
// process = one run in production) and returns the ledger bytes,
// composed SKU, window count, and twin-pruned arm count.
func twinRun(t *testing.T, mode SweepMode, twinOn bool, par int, withChaos bool) (ledger []byte, sku string, windows, pruned float64) {
	t.Helper()
	sim.ResetCharacterizationCache()
	in := fastInput("Web", "Skylake18", knob.THP, knob.SHP, knob.CoreFreq, knob.Prefetch)
	in.Sweep = mode
	in.Parallel = par
	in.Twin = twinOn
	wBefore, pBefore := sim.WindowsExecuted(), mConfigsTwinPruned.Value()
	tool, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	if withChaos {
		tool.SetChaos(chaos.New(42, chaos.DefaultConfig()))
	}
	led := decision.NewLedger()
	tool.SetRecorder(led)
	tool.SetLogger(io.Discard)
	res, err := tool.Run()
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := led.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), res.SoftSKU.String(),
		sim.WindowsExecuted() - wBefore, mConfigsTwinPruned.Value() - pBefore
}

// TestTwinPrunedSearchMatchesUnpruned is the tentpole acceptance test:
// on the four-knob Web/Skylake18 run, the twin-armed search must spend
// strictly fewer fresh characterization windows than the unpruned run
// of the same searcher — and still compose the identical soft SKU. The
// margins are conservative by design: the ladder may only discard arms
// whose predicted regression clears the rung's safety margin, so the
// winner path is never predicted away.
func TestTwinPrunedSearchMatchesUnpruned(t *testing.T) {
	for _, mode := range []SweepMode{SweepHillClimb, SweepHalving} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			_, offSKU, offWin, _ := twinRun(t, mode, false, 1, false)
			_, onSKU, onWin, onPruned := twinRun(t, mode, true, 1, false)
			t.Logf("%s: windows %v -> %v (twin pruned %v arms)", mode, offWin, onWin, onPruned)
			if onSKU != offSKU {
				t.Fatalf("twin pruning changed the composed SKU: %s vs %s", onSKU, offSKU)
			}
			if onPruned == 0 {
				t.Fatalf("twin pruned no arms on the four-knob run")
			}
			if onWin >= offWin {
				t.Fatalf("twin run spent %v windows, unpruned %v — ladder saved nothing", onWin, offWin)
			}
		})
	}
}

// TestTwinLedgerBitIdentical extends the determinism contract to the
// twin-armed pipeline: ledger bytes (twin_pruned events included),
// winner, and window count must be identical at -parallel 1 and 8,
// with and without chaos. Scoring, calibration, and cross-checks all
// run on serial phases against cache states fixed by the round
// structure, so worker scheduling cannot reach any prune decision.
func TestTwinLedgerBitIdentical(t *testing.T) {
	for _, withChaos := range []bool{false, true} {
		name := "plain"
		if withChaos {
			name = "chaos"
		}
		t.Run(name, func(t *testing.T) {
			serial, serialSKU, serialWin, _ := twinRun(t, SweepHillClimb, true, 1, withChaos)
			par, parSKU, parWin, _ := twinRun(t, SweepHillClimb, true, 8, withChaos)
			if serialSKU != parSKU {
				t.Fatalf("winner diverged: -parallel 1 chose %s, -parallel 8 chose %s", serialSKU, parSKU)
			}
			if serialWin != parWin {
				t.Fatalf("window count diverged: %v vs %v", serialWin, parWin)
			}
			if !bytes.Equal(serial, par) {
				t.Fatalf("twin ledger diverged between -parallel 1 and 8:\n%s",
					firstLineDiff(serial, par))
			}
			if !bytes.Contains(serial, []byte(`"twin_pruned"`)) {
				t.Fatal("twin run recorded no twin_pruned events")
			}
		})
	}
}

// TestTwinOffUnchanged pins the nil-evaluator guarantee: a run without
// the ladder produces byte-identical ledgers whether the twin code
// path exists or not — i.e. twin = off is the pre-ladder pipeline.
// (The cross-PR guarantee is the unchanged search_test ledger goldens;
// this test additionally asserts no twin events leak into an off run.)
func TestTwinOffUnchanged(t *testing.T) {
	led, _, _, pruned := twinRun(t, SweepHillClimb, false, 1, false)
	if pruned != 0 {
		t.Fatalf("twin-off run pruned %v arms", pruned)
	}
	if bytes.Contains(led, []byte("twin")) {
		t.Fatal("twin-off ledger mentions the twin")
	}
}
