package core

import (
	"io"
	"testing"

	"softsku/internal/knob"
	"softsku/internal/sim"
	"softsku/internal/telemetry"
)

// benchSearch measures one full four-knob tuning run per optimizer,
// cache on, cold per iteration — the search-efficiency comparison
// BENCH_search.json records (ROADMAP item 3). The figures of merit:
//
//   - windows/op: fresh characterization windows executed. The simcache
//     key is (config, run seed), so this counts *distinct* configs the
//     optimizer visited — the real cost of the search, since re-raced
//     survivors and repeat samples are cache hits.
//   - hits/op: characterization windows served from the cache — how
//     hard each optimizer leans on revisits.
//   - best_pct/op: the winner's measured gain over production
//     (VsProduction, the common objective across modes).
//   - pct_per_vhour: best_pct per virtual tuning hour — gain found per
//     simulated machine-hour of A/B time.
func benchSearch(b *testing.B, mode SweepMode) {
	in := fastInput("Web", "Skylake18", knob.THP, knob.SHP, knob.CoreFreq, knob.Prefetch)
	in.Sweep = mode
	in.Parallel = 1
	hits := telemetry.Default.Counter("softsku_sim_cache_hits_total",
		"Characterization windows served from the content-addressed cache.")
	b.ReportAllocs()
	var windows, hit, bestPct, perHour float64
	for i := 0; i < b.N; i++ {
		sim.ResetCharacterizationCache()
		wBefore, hBefore := sim.WindowsExecuted(), hits.Value()
		tool, err := New(in)
		if err != nil {
			b.Fatal(err)
		}
		tool.SetLogger(io.Discard)
		res, err := tool.Run()
		if err != nil {
			b.Fatal(err)
		}
		windows += sim.WindowsExecuted() - wBefore
		hit += hits.Value() - hBefore
		bestPct += res.VsProduction.DeltaPct
		if res.VirtualHours > 0 {
			perHour += res.VsProduction.DeltaPct / res.VirtualHours
		}
	}
	n := float64(b.N)
	b.ReportMetric(windows/n, "windows/op")
	b.ReportMetric(hit/n, "hits/op")
	b.ReportMetric(bestPct/n, "best_pct/op")
	b.ReportMetric(perHour/n, "pct_per_vhour")
}

func BenchmarkSearchIndependent(b *testing.B) { benchSearch(b, SweepIndependent) }
func BenchmarkSearchHill(b *testing.B)        { benchSearch(b, SweepHillClimb) }
func BenchmarkSearchHalving(b *testing.B)     { benchSearch(b, SweepHalving) }
func BenchmarkSearchCEM(b *testing.B)         { benchSearch(b, SweepCEM) }
