package core

import (
	"fmt"

	"softsku/internal/knob"
	"softsku/internal/platform"
	"softsku/internal/workload"
)

// BuildSpace is µSKU's A/B test configurator (§4): it assembles the
// design space for a microservice/platform pair, disabling knobs that
// do not apply — SHPs for services that never request them, reboot
// knobs (core count, SHP changes) for services whose infrastructure
// cannot tolerate reboots on live traffic, and platform-unsupported
// features.
func BuildSpace(sku *platform.SKU, prof *workload.Profile, only []knob.ID) *knob.Space {
	s := knob.NewSpace()

	// (1) Core frequency: 1.6 GHz to the platform maximum (§5).
	var coreF []knob.Setting
	for mhz := sku.MinCoreMHz; mhz <= sku.MaxCoreMHz; mhz += 100 {
		coreF = append(coreF, knob.IntSetting(fmt.Sprintf("%.1fGHz", float64(mhz)/1000), mhz))
	}
	s.Set(knob.CoreFreq, coreF...)

	// (2) Uncore frequency: 1.4–1.8 GHz (§5).
	var uncoreF []knob.Setting
	for mhz := sku.MinUncoreMHz; mhz <= sku.MaxUncoreMHz; mhz += 100 {
		uncoreF = append(uncoreF, knob.IntSetting(fmt.Sprintf("%.1fGHz", float64(mhz)/1000), mhz))
	}
	s.Set(knob.UncoreFreq, uncoreF...)

	// (3) Core count: 2 to the platform maximum (§5); requires reboots.
	var cores []knob.Setting
	for n := 2; n < sku.Cores(); n += 2 {
		cores = append(cores, knob.IntSetting(fmt.Sprintf("%d cores", n), n))
	}
	cores = append(cores, knob.IntSetting(fmt.Sprintf("%d cores", sku.Cores()), sku.Cores()))
	s.Set(knob.CoreCount, cores...)

	// (4) CDP: one dedicated way for data and the rest for code,
	// through one way for code and the rest for data (§5), plus off.
	if sku.SupportsRDT {
		cdp := []knob.Setting{knob.CDPSetting(knob.CDPConfig{})}
		for code := 1; code < sku.LLCWays; code++ {
			cdp = append(cdp, knob.CDPSetting(knob.CDPConfig{
				DataWays: sku.LLCWays - code,
				CodeWays: code,
			}))
		}
		s.Set(knob.CDP, cdp...)
	}

	// (5) Prefetchers: the five studied configurations (§5).
	var pf []knob.Setting
	for _, m := range knob.StudiedPrefetchConfigs() {
		pf = append(pf, knob.PrefetchSetting(m))
	}
	s.Set(knob.Prefetch, pf...)

	// (6) THP: madvise / always / never (§5).
	s.Set(knob.THP,
		knob.THPSetting(knob.THPMadvise),
		knob.THPSetting(knob.THPAlways),
		knob.THPSetting(knob.THPNever))

	// (7) SHP: 0..600 in 100-page steps (§5) — only for services that
	// use the static huge page APIs (µSKU disables it for Ads1, §4).
	if prof.SHPDemandChunks() > 0 {
		var shp []knob.Setting
		for n := 0; n <= 600; n += 100 {
			if n*2 > sku.HugePagePoolMiB {
				break
			}
			shp = append(shp, knob.IntSetting(fmt.Sprintf("%d SHPs", n), n))
		}
		s.Set(knob.SHP, shp...)
	}

	// Reboot-intolerant services cannot A/B-test boot-time knobs on
	// live traffic (§4, §6.1(3)).
	if !prof.RebootTolerant {
		s.Remove(knob.CoreCount)
		s.Remove(knob.SHP)
	}

	// Optional restriction to user-selected knobs.
	if len(only) > 0 {
		keep := map[knob.ID]bool{}
		for _, id := range only {
			keep[id] = true
		}
		for _, id := range knob.All() {
			if !keep[id] {
				s.Remove(id)
			}
		}
	}
	return s
}
