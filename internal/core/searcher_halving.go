package core

import (
	"fmt"
	"sort"

	"softsku/internal/abtest"
	"softsku/internal/decision"
	"softsku/internal/knob"
	"softsku/internal/rng"
)

// halvingSearcher implements successive halving over a sampled
// population of cross-knob configurations (AutoTune-style
// early-stopping of clearly-losing arms): race every live arm against
// the baseline on a shortened characterization budget, keep the top
// half by measured delta, double the budget, repeat until one arm
// remains — which races at the run's full budget before it is
// accepted.
//
// The simcache (DESIGN.md §11) is what makes the revisits nearly free:
// its key is (config, run seed), not the sample budget, so an arm that
// survives into a longer rung re-uses both machines' characterization
// windows — only the cheap sampling loop re-runs. Fresh windows are
// therefore bounded by the population size, not by rungs × arms.
//
// Determinism: the population is drawn from rng.Derive(seed,
// "search/halving/population") on the serial phase, tiny spaces
// enumerate instead of sampling, ranking sorts stably on (delta desc,
// population order), and rung arithmetic is integer — so the searcher
// is a pure function of (Input, seed) like everything else.
type halvingSearcher struct {
	t       *Tool
	pop     []knob.Config // sampled population; index is the stable arm id
	live    []int         // arm ids still racing, in population order
	rungs   int           // total rungs: ceil(log2(len(pop))), min 1
	done    bool
	best    knob.Config
	bestPct float64
}

const (
	// halvingPopulation is the default population size. It is chosen to
	// keep fresh characterization windows below the independent sweep's
	// count on the benchmark spaces while still covering multi-knob
	// interactions the one-knob-at-a-time sweep cannot see.
	halvingPopulation = 16
	// halvingMinSamples floors a shortened rung's per-arm sample cap:
	// below this the Welch test is pure noise and abtest's zero-value
	// hardening would re-patch tiny MinSamples anyway.
	halvingMinSamples = 60
)

func newHalvingSearcher(t *Tool) *halvingSearcher {
	h := &halvingSearcher{t: t, best: t.baseline}
	h.pop = t.samplePopulation(halvingPopulation, "search/halving/population")
	for i := range h.pop {
		h.live = append(h.live, i)
	}
	h.rungs = 1
	for 1<<uint(h.rungs) < len(h.pop) {
		h.rungs++
	}
	if len(h.pop) == 0 {
		h.done = true
	}
	return h
}

func (h *halvingSearcher) Name() string { return "successive halving" }

func (h *halvingSearcher) Done() bool { return h.done }

func (h *halvingSearcher) Best() (knob.Config, float64) { return h.best, h.bestPct }

// rungAB shortens the run's A/B budget for rung r: the per-arm sample
// cap halves once per remaining rung, so rung 0 races the full field
// cheaply and the final rung measures the survivors at full budget.
func (h *halvingSearcher) rungAB(r int) *abtest.Config {
	ab := h.t.in.AB
	div := 1 << uint(h.rungs-1-r)
	if div > 1 && ab.MaxSamples > 0 {
		c := ab.MaxSamples / div
		if c < halvingMinSamples {
			c = halvingMinSamples
		}
		if c < ab.MaxSamples {
			ab.MaxSamples = c
		}
		// abtest's zero-value hardening clamps MinSamples to MaxSamples,
		// but patches MinSamples < 2 up to its 300 default — keep the
		// floor explicit so a shortened rung stays short.
		if ab.MinSamples > ab.MaxSamples || ab.MinSamples < 2 {
			ab.MinSamples = ab.MaxSamples
		}
	}
	return &ab
}

func (h *halvingSearcher) Propose(round int) *SearchRound {
	if h.done || round >= h.rungs || len(h.live) == 0 {
		return nil
	}
	rd := &SearchRound{
		Span:    fmt.Sprintf("search.rung%d", round),
		Label:   fmt.Sprintf("halving/rung%d", round),
		Control: h.t.baseline,
		AB:      h.rungAB(round),
	}
	for _, id := range h.live {
		rd.Arms = append(rd.Arms, SearchArm{
			// The rung is part of the label, so a surviving arm's next
			// race draws fresh noise streams — survival must be confirmed
			// on new samples, not by replaying the lucky ones.
			Label:   fmt.Sprintf("halving/%d/%d", round, id),
			Config:  h.pop[id],
			Setting: fmt.Sprintf("arm%d", id),
		})
	}
	return rd
}

func (h *halvingSearcher) Observe(round int, outs []ArmOutcome) RoundVerdict {
	type scored struct {
		pos    int // index into outs / this rung's arms
		id     int // stable population id
		delta  float64
		better bool
	}
	var ranked []scored
	for pos, o := range outs {
		if !o.Measured() {
			continue
		}
		ranked = append(ranked, scored{
			pos: pos, id: h.live[pos],
			delta:  o.Outcome.DeltaPct,
			better: o.Outcome.Better(),
		})
	}
	// Stable: equal deltas keep population order, so the ranking is a
	// pure function of the outcomes.
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].delta > ranked[j].delta })

	var v RoundVerdict
	budget := h.rungAB(round).MaxSamples
	if len(ranked) == 0 {
		// Every arm pruned or skipped (sustained chaos): keep the
		// baseline rather than promoting an unmeasured config.
		h.done, h.live = true, nil
		v.Attrs = []SpanAttr{{Key: "arms", Value: 0}}
		v.Events = []decision.Event{decision.Converged(
			fmt.Sprintf("halving rung %d: no measurable arms; keeping baseline", round))}
		v.Logs = []string{fmt.Sprintf("halving rung %d: no measurable arms; keeping baseline", round)}
		return v
	}
	final := round == h.rungs-1 || len(ranked) == 1
	keep := (len(ranked) + 1) / 2
	if final {
		keep = 1
	}
	v.Accepted = make([]bool, len(outs))
	h.live = h.live[:0]
	for _, s := range ranked[:keep] {
		v.Accepted[s.pos] = true
		h.live = append(h.live, s.id)
	}
	sort.Ints(h.live) // next rung races survivors in population order
	top := ranked[0]
	v.Attrs = []SpanAttr{
		{Key: "arms", Value: len(ranked)},
		{Key: "survivors", Value: keep},
		{Key: "best_delta_pct", Value: top.delta},
	}
	if !final {
		v.Events = []decision.Event{decision.RungAdvanced(round, len(ranked), keep, budget)}
		v.Logs = []string{fmt.Sprintf("halving rung %d: %d arms -> %d survivors (cap %d samples/arm, best %+.2f%%)",
			round, len(ranked), keep, budget, top.delta)}
		return v
	}
	h.done = true
	if top.better {
		h.best, h.bestPct = h.pop[top.id], top.delta
		v.Events = []decision.Event{
			decision.RungAdvanced(round, len(ranked), keep, budget),
			decision.Converged(fmt.Sprintf("halving: arm%d wins after %d rungs (%+.2f%%)", top.id, round+1, top.delta)),
		}
		v.Logs = []string{fmt.Sprintf("halving converged after %d rungs: arm%d %s (%+.2f%%)",
			round+1, top.id, h.best, top.delta)}
	} else {
		// The last survivor never beat the baseline significantly.
		v.Accepted = nil
		v.Events = []decision.Event{
			decision.RungAdvanced(round, len(ranked), 0, budget),
			decision.Converged(fmt.Sprintf("halving: no arm improved on the baseline after %d rungs", round+1)),
		}
		v.Logs = []string{fmt.Sprintf("halving converged after %d rungs: keeping baseline", round+1)}
	}
	return v
}

// samplePopulation draws up to target distinct, realizable, non-
// baseline configurations from the rng stream named by label. Spaces
// no bigger than the target skip sampling and enumerate — every
// realizable point races.
//
// Samples mutate the baseline on a geometric number of knobs (half
// the draws move one knob, a quarter two, and so on): the production
// baseline is expert-tuned, so most of the win lives a small edit
// away, while the multi-mutation tail still probes the cross-knob
// interactions the independent sweep cannot see. Uniform sampling
// over the full cross product would put nearly every arm three-plus
// knobs from the baseline — overwhelmingly losing configurations.
// Runs on the serial phase (constructor time) only.
func (t *Tool) samplePopulation(target int, label string) []knob.Config {
	var pop []knob.Config
	if t.space.Size() <= target+1 {
		t.space.Enumerate(t.baseline, func(cfg knob.Config) bool {
			if cfg != t.baseline && t.sku.Validate(cfg) == nil {
				pop = append(pop, cfg)
			}
			return true
		})
		return pop
	}
	src := rng.New(rng.Derive(t.in.Seed, label))
	ids := t.space.Knobs()
	seen := map[knob.Config]bool{t.baseline: true}
	order := make([]int, len(ids))
	for tries := 0; len(pop) < target && tries < target*64; tries++ {
		k := 1
		for k < len(ids) && src.Bool(0.5) {
			k++
		}
		// Partial Fisher-Yates: the first k entries of order pick which
		// knobs mutate.
		for i := range order {
			order[i] = i
		}
		for i := 0; i < k; i++ {
			j := i + src.Intn(len(order)-i)
			order[i], order[j] = order[j], order[i]
		}
		cfg := t.baseline
		for _, oi := range order[:k] {
			id := ids[oi]
			values := t.space.Values[id]
			bi := indexOfSetting(values, t.baseline.Get(id))
			if len(values) < 2 {
				continue
			}
			// Draw among the non-baseline settings only.
			vi := src.Intn(len(values) - 1)
			if vi >= bi {
				vi++
			}
			cfg = cfg.With(id, values[vi])
		}
		if seen[cfg] {
			continue
		}
		seen[cfg] = true
		if t.sku.Validate(cfg) != nil {
			continue // unrealizable; doesn't consume a population slot
		}
		pop = append(pop, cfg)
	}
	return pop
}
