// Package core implements µSKU (§4, Fig 13): the design tool that
// discovers performant "soft SKUs" by A/B-testing configurable server
// knobs on production systems serving live traffic. It comprises the
// paper's four components — input-file parser, A/B test configurator,
// A/B tester, and soft-SKU generator — plus the extensions §5 and §7
// sketch: SHP binary search, exhaustive sweeps, and hill-climbing.
package core

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"softsku/internal/abtest"
	"softsku/internal/knob"
)

// SweepMode selects how the design space is explored (§4 "sweep
// configuration").
type SweepMode int

// Sweep modes.
const (
	// SweepIndependent scales knobs one-by-one against the baseline and
	// composes the winners — the mode the paper deploys, since code
	// pushes outpace exhaustive sweeps.
	SweepIndependent SweepMode = iota
	// SweepExhaustive explores the cross-product of knob settings.
	SweepExhaustive
	// SweepHillClimb greedily walks the space (§7's suggested heuristic).
	SweepHillClimb
	// SweepHalving races a sampled population of cross-knob configs on
	// shortened characterization windows, keeping the top half per rung
	// and lengthening windows as the field narrows (successive halving
	// — early-stopping of clearly-losing arms).
	SweepHalving
	// SweepCEM runs a cross-entropy-method population search: sample
	// configurations from per-knob categorical distributions, refit the
	// distributions on the elite fraction each generation.
	SweepCEM
)

// String names the mode as written in input files.
func (m SweepMode) String() string {
	switch m {
	case SweepIndependent:
		return "independent"
	case SweepExhaustive:
		return "exhaustive"
	case SweepHillClimb:
		return "hillclimb"
	case SweepHalving:
		return "halving"
	case SweepCEM:
		return "cem"
	default:
		return fmt.Sprintf("sweep(%d)", int(m))
	}
}

// ParseSweepMode parses a sweep-mode name as written in input files
// and flags. searchOnly restricts the accepted set to the adaptive
// searchers (the `-search` flag's vocabulary, which also admits the
// short form "hill").
func ParseSweepMode(val string, searchOnly bool) (SweepMode, error) {
	switch strings.ToLower(val) {
	case "hill", "hillclimb", "hill-climb", "hill_climb":
		return SweepHillClimb, nil
	case "halving", "successive-halving":
		return SweepHalving, nil
	case "cem", "population":
		return SweepCEM, nil
	}
	if !searchOnly {
		switch strings.ToLower(val) {
		case "independent":
			return SweepIndependent, nil
		case "exhaustive":
			return SweepExhaustive, nil
		}
		return SweepIndependent, fmt.Errorf("unknown sweep %q", val)
	}
	return SweepIndependent, fmt.Errorf("unknown search %q (want hill, halving, or cem)", val)
}

// Metric selects the performance estimate µSKU optimizes (§4: MIPS by
// default; extensible to service-specific metrics like QPS).
type Metric int

// Metrics.
const (
	MetricMIPS Metric = iota
	MetricQPS
	// MetricPerfPerWatt optimizes MIPS/W — the §7 extension to
	// energy-efficiency rather than pure performance.
	MetricPerfPerWatt
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricQPS:
		return "qps"
	case MetricPerfPerWatt:
		return "perfwatt"
	default:
		return "mips"
	}
}

// Input is µSKU's input file (§4): the target microservice, the
// hardware platform, and the sweep configuration.
type Input struct {
	Microservice string
	Platform     string
	Sweep        SweepMode
	Metric       Metric
	// Knobs restricts the sweep to the named knobs; empty means all
	// applicable knobs.
	Knobs []knob.ID
	Seed  uint64
	// Parallel is the trial worker count; <= 0 means GOMAXPROCS.
	// Results are bit-identical at any worker count for a given seed.
	Parallel int
	// Twin arms the tiered-fidelity ladder: search rounds consult the
	// calibrated analytical twin and prune candidates whose predicted
	// regression clears the safety margin, instead of measuring every
	// validated arm (DESIGN.md §16).
	Twin bool
	// AB overrides the default A/B tester configuration.
	AB abtest.Config
}

// DefaultInput returns an input with the prototype's defaults.
func DefaultInput(service, platform string) Input {
	return Input{
		Microservice: service,
		Platform:     platform,
		Sweep:        SweepIndependent,
		Metric:       MetricMIPS,
		Seed:         1,
		AB:           abtest.DefaultConfig(),
	}
}

// ParseInput reads the µSKU input-file format: one "key = value" pair
// per line, '#' comments. Recognized keys: microservice, platform,
// sweep (or search), metric, knobs (comma-separated), seed,
// max_samples, parallel, twin (on/off).
func ParseInput(text string) (Input, error) {
	in := Input{Sweep: SweepIndependent, Metric: MetricMIPS, Seed: 1, AB: abtest.DefaultConfig()}
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return in, fmt.Errorf("core: input line %d: expected key = value", lineNo)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "microservice", "service":
			in.Microservice = val
		case "platform":
			in.Platform = val
		case "sweep", "search":
			// "search" is the flag-facing alias (musku -search): it names
			// only the adaptive optimizers, with "hill" accepted for
			// hillclimb; "sweep" keeps the paper's vocabulary and accepts
			// every mode.
			mode, err := ParseSweepMode(val, key == "search")
			if err != nil {
				return in, fmt.Errorf("core: input line %d: %v", lineNo, err)
			}
			in.Sweep = mode
		case "metric":
			switch strings.ToLower(val) {
			case "mips":
				in.Metric = MetricMIPS
			case "qps":
				in.Metric = MetricQPS
			case "perfwatt", "perf/watt", "mips/watt":
				in.Metric = MetricPerfPerWatt
			default:
				return in, fmt.Errorf("core: input line %d: unknown metric %q", lineNo, val)
			}
		case "knobs":
			for _, name := range strings.Split(val, ",") {
				id, err := knob.ParseID(name)
				if err != nil {
					return in, fmt.Errorf("core: input line %d: %v", lineNo, err)
				}
				in.Knobs = append(in.Knobs, id)
			}
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return in, fmt.Errorf("core: input line %d: bad seed %q", lineNo, val)
			}
			in.Seed = n
		case "max_samples":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return in, fmt.Errorf("core: input line %d: bad max_samples %q", lineNo, val)
			}
			in.AB.MaxSamples = n
		case "parallel":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return in, fmt.Errorf("core: input line %d: bad parallel %q", lineNo, val)
			}
			in.Parallel = n
		case "twin":
			switch strings.ToLower(val) {
			case "on", "true", "1", "yes":
				in.Twin = true
			case "off", "false", "0", "no":
				in.Twin = false
			default:
				return in, fmt.Errorf("core: input line %d: bad twin %q (want on/off)", lineNo, val)
			}
		default:
			return in, fmt.Errorf("core: input line %d: unknown key %q", lineNo, key)
		}
	}
	if in.Microservice == "" {
		return in, fmt.Errorf("core: input file missing 'microservice'")
	}
	return in, nil
}

// Validate checks the input for internal consistency.
func (in Input) Validate() error {
	if in.Microservice == "" {
		return fmt.Errorf("core: no target microservice")
	}
	return nil
}
