package core

import (
	"bytes"
	"fmt"
	"testing"

	"softsku/internal/chaos"
	"softsku/internal/decision"
	"softsku/internal/knob"
)

// ledgerAt runs a full tuning pass with the flight recorder attached
// and returns the ledger serialized as JSONL.
func ledgerAt(t *testing.T, par int, withChaos bool) []byte {
	t.Helper()
	var in Input
	if withChaos {
		in = fastInput("Web", "Skylake18", knob.THP, knob.CoreFreq)
		in.AB.GuardrailPct = 1
	} else {
		in = fastInput("Web", "Skylake18", knob.THP, knob.SHP)
	}
	in.Parallel = par
	tool, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	if withChaos {
		tool.SetChaos(chaos.New(42, chaos.DefaultConfig()))
	}
	led := decision.NewLedger()
	tool.SetRecorder(led)
	if _, err := tool.Run(); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := led.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestLedgerBitIdentical is the flight recorder's acceptance test:
// the ledger two runs of the same core.Input and seed write must be
// byte-identical at -parallel 1 and -parallel 8, with and without a
// chaos engine attached — recording must ride the deterministic merge
// phase, never the scheduler.
func TestLedgerBitIdentical(t *testing.T) {
	for _, withChaos := range []bool{false, true} {
		name := "plain"
		if withChaos {
			name = "chaos"
		}
		t.Run(name, func(t *testing.T) {
			serial := ledgerAt(t, 1, withChaos)
			par := ledgerAt(t, 8, withChaos)
			if !bytes.Equal(serial, par) {
				t.Fatalf("ledger diverged between -parallel 1 and 8:\n%s",
					firstLineDiff(serial, par))
			}
			if len(serial) == 0 {
				t.Fatal("run recorded an empty ledger")
			}
		})
	}
}

func firstLineDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\nserial:   %s\nparallel: %s", i, al[i], bl[i])
		}
	}
	return "ledgers differ in length"
}

// TestLedgerRecordsFullRunShape walks a real run's ledger: causal
// links must be well-formed, the run must open and close, every
// measured trial must carry a four-metric evidence panel with a span-
// linkable evidence ID, and a counterfactual replay under the recorded
// objective must report zero divergences (the replay-identity law on
// production output, not just the synthetic fixture).
func TestLedgerRecordsFullRunShape(t *testing.T) {
	raw := ledgerAt(t, 4, false)
	events, err := decision.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ledger does not round-trip: %v", err)
	}
	if events[0].Kind != decision.KindRunStarted {
		t.Fatalf("first event is %s, want run_started", events[0].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != decision.KindRunFinished {
		t.Fatalf("last event is %s, want run_finished", last.Kind)
	}
	measured := 0
	for _, e := range events {
		if e.Kind != decision.KindTrialMeasured {
			continue
		}
		measured++
		if e.EvidenceID == "" {
			t.Errorf("seq %d (%s): no evidence ID linking ledger to trace span", e.Seq, e.Label)
		}
		if len(e.Evidence) != len(decision.KnownMetrics()) {
			t.Errorf("seq %d (%s): %d evidence panels, want %d", e.Seq, e.Label, len(e.Evidence), len(decision.KnownMetrics()))
		}
		for _, ev := range e.Evidence {
			if ev.Control.N == 0 || ev.Treatment.N == 0 {
				t.Errorf("seq %d: empty evidence moments for %s", e.Seq, ev.Metric)
			}
		}
	}
	if measured < 3 {
		t.Fatalf("only %d measured trials; fixture should sweep two knobs plus final validations", measured)
	}

	rep, err := decision.Replay(events, decision.Objective{})
	if err != nil {
		t.Fatalf("replay of a real ledger failed: %v", err)
	}
	if len(rep.Divergences) != 0 {
		t.Fatalf("replay under the recorded objective diverged: %+v", rep.Divergences)
	}
	if rep.Trials != measured {
		t.Fatalf("replay analyzed %d trials, want %d", rep.Trials, measured)
	}
}

// TestLedgerReplayP99OnRealRun replays a real mips-objective ledger
// under the p99 objective: the engine must work purely from recorded
// evidence (no simulator), analyze every sweep trial, and keep the
// recorded SKU string intact for the report.
func TestLedgerReplayP99OnRealRun(t *testing.T) {
	raw := ledgerAt(t, 4, false)
	events, err := decision.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := decision.Replay(events, decision.Objective{Metric: "p99"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials == 0 {
		t.Fatal("p99 replay analyzed no trials; evidence panels must cover p99")
	}
	if rep.Missing != 0 {
		t.Fatalf("%d trials lacked p99 evidence", rep.Missing)
	}
	if rep.RecordedSKU == "" {
		t.Fatal("replay report lost the recorded soft SKU")
	}
}
