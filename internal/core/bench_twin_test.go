package core

import (
	"io"
	"testing"

	"softsku/internal/knob"
	"softsku/internal/sim"
	"softsku/internal/telemetry"
)

// benchSearchTwin is benchSearch with the tiered-fidelity ladder armed
// (DESIGN.md §16): the same four-knob tuning run, but search rounds
// consult the calibrated analytical twin and prune arms whose predicted
// regression clears the rung's safety margin before any window runs.
// The figures of merit extend bench_search_test.go's:
//
//   - windows/op: fresh characterization windows — the ladder's whole
//     point is pushing this below the unpruned optimizer's count
//     (BENCH_search.json) while composing the identical soft SKU
//     (TestTwinPrunedSearchMatchesUnpruned proves identity).
//   - pruned/op: arms discarded on a prediction alone, each recorded as
//     a constructor-built twin_pruned ledger event.
//   - twin_err/op: the run's median |predicted − measured| cross-check
//     error in percent, accumulated against every window the run did
//     measure.
func benchSearchTwin(b *testing.B, mode SweepMode) {
	in := fastInput("Web", "Skylake18", knob.THP, knob.SHP, knob.CoreFreq, knob.Prefetch)
	in.Sweep = mode
	in.Parallel = 1
	in.Twin = true
	hits := telemetry.Default.Counter("softsku_sim_cache_hits_total",
		"Characterization windows served from the content-addressed cache.")
	b.ReportAllocs()
	var windows, hit, pruned, bestPct, medErr float64
	for i := 0; i < b.N; i++ {
		sim.ResetCharacterizationCache()
		wBefore, hBefore := sim.WindowsExecuted(), hits.Value()
		pBefore := mConfigsTwinPruned.Value()
		tool, err := New(in)
		if err != nil {
			b.Fatal(err)
		}
		tool.SetLogger(io.Discard)
		res, err := tool.Run()
		if err != nil {
			b.Fatal(err)
		}
		windows += sim.WindowsExecuted() - wBefore
		hit += hits.Value() - hBefore
		pruned += mConfigsTwinPruned.Value() - pBefore
		bestPct += res.VsProduction.DeltaPct
		if ev := tool.Evaluator(); ev != nil {
			if m := ev.MedianAbsErrPct(); m >= 0 {
				medErr += m
			}
		}
	}
	n := float64(b.N)
	b.ReportMetric(windows/n, "windows/op")
	b.ReportMetric(hit/n, "hits/op")
	b.ReportMetric(pruned/n, "pruned/op")
	b.ReportMetric(bestPct/n, "best_pct/op")
	b.ReportMetric(medErr/n, "twin_err/op")
}

func BenchmarkSearchTwinHill(b *testing.B)    { benchSearchTwin(b, SweepHillClimb) }
func BenchmarkSearchTwinHalving(b *testing.B) { benchSearchTwin(b, SweepHalving) }
