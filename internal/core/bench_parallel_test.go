package core

import (
	"io"
	"testing"

	"softsku/internal/knob"
)

// benchSweep measures one full tuning run (independent sweep over four
// knobs plus the two final validation trials, ~20 A/B trials total) at
// the given worker count. BENCH_parallel.json records the medians; the
// equivalence tests in parallel_test.go prove every worker count
// produces the same Result, so this benchmark measures pure wall-clock
// scaling of the trial phase.
func benchSweep(b *testing.B, par int) {
	in := fastInput("Web", "Skylake18", knob.THP, knob.SHP, knob.CoreFreq, knob.Prefetch)
	in.Parallel = par
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tool, err := New(in)
		if err != nil {
			b.Fatal(err)
		}
		tool.SetLogger(io.Discard)
		if _, err := tool.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepParallel1(b *testing.B) { benchSweep(b, 1) }
func BenchmarkSweepParallel4(b *testing.B) { benchSweep(b, 4) }
func BenchmarkSweepParallel8(b *testing.B) { benchSweep(b, 8) }
