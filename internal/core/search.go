package core

import (
	"fmt"

	"softsku/internal/abtest"
	"softsku/internal/decision"
	"softsku/internal/knob"
)

// hillClimb greedily walks the design space (§7: "better search
// heuristics (e.g., hill climbing) may be required"): from the
// production baseline, repeatedly move one knob one step in the
// direction of the best statistically significant improvement until no
// neighbour wins.
func (t *Tool) hillClimb(res *Result) (knob.Config, error) {
	current := t.baseline
	parent := t.span
	const maxRounds = 24
	for round := 0; round < maxRounds; round++ {
		type move struct {
			cfg   knob.Config
			id    knob.ID
			name  string
			delta float64
		}
		var best *move
		rs := parent.StartChild(fmt.Sprintf("sweep.round%d", round), "sweep")
		// One round = one parallel fan-out over every realizable
		// neighbour; the winning move is selected during the in-order
		// merge, so rounds chain identically to a serial climb.
		type step struct {
			id   knob.ID
			name string
		}
		var specs []trialSpec
		var steps []step
		for _, id := range t.space.Knobs() {
			values := t.space.Values[id]
			cur := indexOfSetting(values, current.Get(id))
			for _, ni := range []int{cur - 1, cur + 1} {
				if ni < 0 || ni >= len(values) {
					continue
				}
				cfg := current.With(id, values[ni])
				if err := t.sku.Validate(cfg); err != nil {
					mConfigsPruned.Inc()
					continue
				}
				mConfigsValidated.Inc()
				if id.RequiresReboot() {
					t.reboots++
				}
				specs = append(specs,
					t.newSpec(rs, fmt.Sprintf("hill/%d/%s/%d", round, id, ni), current, cfg))
				steps = append(steps, step{id: id, name: values[ni].Name})
			}
		}
		roundSeq := -1
		if t.rec != nil {
			roundSeq = t.rec.Record(t.decRoot,
				decision.SweepStarted(fmt.Sprintf("hill/%d", round), "", current.String()))
		}
		bestSpec := -1
		seqs := make([]int, len(specs))
		outs := make([]abtest.Outcome, len(specs))
		recorded := make([]bool, len(specs))
		results := t.runTrials(specs)
		for i, spec := range specs {
			out, err := t.mergeTrial(spec, results[i])
			if err != nil {
				if t.skipFault(err, steps[i].name) {
					t.recordSkip(roundSeq, spec, steps[i].name, err)
					continue
				}
				rs.End()
				return current, err
			}
			seqs[i] = t.recordTrial(roundSeq, spec, results[i], steps[i].id.String(), steps[i].name)
			outs[i], recorded[i] = out, true
			if out.Better() && (best == nil || out.DeltaPct > best.delta) {
				best = &move{cfg: spec.treatment, id: steps[i].id, name: steps[i].name, delta: out.DeltaPct}
				bestSpec = i
			}
		}
		if t.rec != nil {
			for i := range specs {
				if !recorded[i] {
					continue
				}
				if i == bestSpec {
					t.rec.Record(seqs[i], decision.ArmAccepted(steps[i].id.String(), steps[i].name, best.delta))
				} else {
					t.rec.Record(seqs[i], decision.ArmRejected(steps[i].id.String(), steps[i].name,
						outs[i].DeltaPct, outs[i].PValue, outs[i].Significant))
				}
			}
		}
		if best == nil {
			rs.Set("converged", true)
			rs.End()
			if t.rec != nil {
				t.rec.Record(roundSeq, decision.Converged(
					fmt.Sprintf("round %d: no neighbour improved on %s", round, current)))
			}
			t.logf("hill climb converged after %d rounds", round)
			break
		}
		rs.Set("move", fmt.Sprintf("%s -> %s", best.id, best.name))
		rs.Set("delta_pct", best.delta)
		rs.End()
		t.logf("hill climb round %d: %s -> %s (%+.2f%%)", round, best.id, best.name, best.delta)
		current = best.cfg
		res.ExhaustiveBest += best.delta
	}
	return current, nil
}

// indexOfSetting finds a setting's position in the candidate list, or
// the nearest candidate for values (like frequencies) that may sit
// between steps. Returns -1 only for an empty list.
func indexOfSetting(values []knob.Setting, s knob.Setting) int {
	for i, v := range values {
		if v == s {
			return i
		}
	}
	// Nearest by integer payload (frequencies, counts).
	best, bestDist := -1, 0
	for i, v := range values {
		d := v.Int - s.Int
		if d < 0 {
			d = -d
		}
		if best < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// BinarySearchSHP is the §5(7) extension: instead of the linear
// 100-page sweep, search the SHP count range with a ternary search
// over the (unimodal: rising to the demand point, falling with waste)
// response curve. Returns the best count found and the number of A/B
// tests spent.
func (t *Tool) BinarySearchSHP(lo, hi, step int) (int, int, error) {
	if t.prof.SHPDemandChunks() == 0 {
		return 0, 0, fmt.Errorf("core: %s does not use static huge pages", t.prof.Name)
	}
	if step < 1 {
		step = 1
	}
	quant := func(n int) int { return (n / step) * step }
	tests := 0
	// Ternary search is inherently adaptive — each probe depends on the
	// previous verdicts — so probes run through the sequential
	// runSingle path rather than the parallel pool.
	mean := func(n int) (float64, error) {
		cfg := t.baseline.With(knob.SHP, knob.IntSetting(fmt.Sprintf("%d", n), n))
		if err := t.sku.Validate(cfg); err != nil {
			return 0, err
		}
		mConfigsValidated.Inc()
		t.reboots++
		out, err := t.runSingle(t.span, fmt.Sprintf("shp-search/%d/%d", tests, n), t.baseline, cfg)
		if err != nil {
			return 0, err
		}
		tests++
		return out.Treatment.Mean(), nil
	}
	for hi-lo > 2*step {
		m1 := quant(lo + (hi-lo)/3)
		m2 := quant(lo + 2*(hi-lo)/3)
		if m2 <= m1 {
			m2 = m1 + step
		}
		v1, err := mean(m1)
		if err != nil {
			return 0, tests, err
		}
		v2, err := mean(m2)
		if err != nil {
			return 0, tests, err
		}
		if v1 < v2 {
			lo = m1
		} else {
			hi = m2
		}
	}
	best := quant((lo + hi) / 2)
	return best, tests, nil
}
