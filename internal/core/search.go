package core

import (
	"fmt"

	"softsku/internal/decision"
	"softsku/internal/knob"
)

// hillSearcher greedily walks the design space (§7: "better search
// heuristics (e.g., hill climbing) may be required"): from the
// production baseline, repeatedly move one knob one step in the
// direction of the best statistically significant improvement until no
// neighbour wins. It is the reference Searcher — the inline climber it
// replaced produced byte-for-byte this label scheme, event order, and
// log stream, and the equivalence tests hold it there.
type hillSearcher struct {
	t         *Tool
	current   knob.Config
	maxRounds int
	converged bool
	// compound accumulates accepted moves multiplicatively: a +2% move
	// on top of a +2% move is +4.04%, not +4% — per-round deltas are
	// measured against the previous round's winner, so they chain as
	// factors, never as a sum.
	compound float64
	arms     []hillArm // last proposed round's moves, indexed like Arms
}

type hillArm struct {
	cfg  knob.Config
	id   knob.ID
	name string
}

// hillMaxRounds bounds the climb: each round moves one knob one step,
// so the bound only binds on pathological spaces (oscillation cannot
// happen — every accepted move strictly improved on its predecessor).
const hillMaxRounds = 24

func newHillSearcher(t *Tool) *hillSearcher {
	return &hillSearcher{t: t, current: t.baseline, maxRounds: hillMaxRounds, compound: 1}
}

func (h *hillSearcher) Name() string { return "hill climb" }

func (h *hillSearcher) Done() bool { return h.converged }

// Best returns the configuration the climb stands on and the
// compounded gain of every accepted move, in percent.
func (h *hillSearcher) Best() (knob.Config, float64) {
	return h.current, (h.compound - 1) * 100
}

// Propose emits one round: every one-step neighbour of the current
// configuration, in design-space order. Unrealizable neighbours are
// included — the driver prunes them through sku.Validate so the
// pruned/validated telemetry stays accurate.
func (h *hillSearcher) Propose(round int) *SearchRound {
	if h.converged || round >= h.maxRounds {
		return nil
	}
	rd := &SearchRound{
		Span:    fmt.Sprintf("sweep.round%d", round),
		Label:   fmt.Sprintf("hill/%d", round),
		Control: h.current,
	}
	h.arms = h.arms[:0]
	for _, id := range h.t.space.Knobs() {
		values := h.t.space.Values[id]
		cur := indexOfSetting(values, h.current.Get(id))
		for _, ni := range []int{cur - 1, cur + 1} {
			if ni < 0 || ni >= len(values) {
				continue
			}
			rd.Arms = append(rd.Arms, SearchArm{
				Label:   fmt.Sprintf("hill/%d/%s/%d", round, id, ni),
				Config:  h.current.With(id, values[ni]),
				Knob:    id.String(),
				Setting: values[ni].Name,
			})
			h.arms = append(h.arms, hillArm{cfg: h.current.With(id, values[ni]), id: id, name: values[ni].Name})
		}
	}
	return rd
}

// Observe picks the best significantly-improving neighbour, or
// converges when none wins. The winning move is selected in arm order
// — ties keep the earlier arm — so rounds chain identically to a
// serial climb.
func (h *hillSearcher) Observe(round int, outs []ArmOutcome) RoundVerdict {
	best := -1
	for i, o := range outs {
		if !o.Measured() {
			continue
		}
		if o.Outcome.Better() && (best < 0 || o.Outcome.DeltaPct > outs[best].Outcome.DeltaPct) {
			best = i
		}
	}
	var v RoundVerdict
	if best < 0 {
		h.converged = true
		v.Attrs = []SpanAttr{{Key: "converged", Value: true}}
		v.Events = []decision.Event{decision.Converged(
			fmt.Sprintf("round %d: no neighbour improved on %s", round, h.current))}
		v.Logs = []string{fmt.Sprintf("hill climb converged after %d rounds", round)}
		return v
	}
	arm, delta := h.arms[best], outs[best].Outcome.DeltaPct
	v.Accepted = make([]bool, len(outs))
	v.Accepted[best] = true
	v.Attrs = []SpanAttr{
		{Key: "move", Value: fmt.Sprintf("%s -> %s", arm.id, arm.name)},
		{Key: "delta_pct", Value: delta},
	}
	v.Logs = []string{fmt.Sprintf("hill climb round %d: %s -> %s (%+.2f%%)", round, arm.id, arm.name, delta)}
	h.current = arm.cfg
	h.compound *= 1 + delta/100
	return v
}

// indexOfSetting finds a setting's position in the candidate list, or
// the nearest candidate for values (like frequencies) that may sit
// between steps. Returns -1 only for an empty list.
func indexOfSetting(values []knob.Setting, s knob.Setting) int {
	for i, v := range values {
		if v == s {
			return i
		}
	}
	// Nearest by integer payload (frequencies, counts).
	best, bestDist := -1, 0
	for i, v := range values {
		d := v.Int - s.Int
		if d < 0 {
			d = -d
		}
		if best < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// BinarySearchSHP is the §5(7) extension: instead of the linear
// 100-page sweep, search the SHP count range with a ternary search
// over the (unimodal: rising to the demand point, falling with waste)
// response curve. Returns the best count found and the number of A/B
// tests spent.
func (t *Tool) BinarySearchSHP(lo, hi, step int) (int, int, error) {
	if t.prof.SHPDemandChunks() == 0 {
		return 0, 0, fmt.Errorf("core: %s does not use static huge pages", t.prof.Name)
	}
	if step < 1 {
		step = 1
	}
	quant := func(n int) int { return (n / step) * step }
	tests := 0
	// Ternary search is inherently adaptive — each probe depends on the
	// previous verdicts — so probes run through the sequential
	// runSingle path rather than the parallel pool.
	mean := func(n int) (float64, error) {
		cfg := t.baseline.With(knob.SHP, knob.IntSetting(fmt.Sprintf("%d", n), n))
		if err := t.sku.Validate(cfg); err != nil {
			return 0, err
		}
		mConfigsValidated.Inc()
		t.reboots++
		out, err := t.runSingle(t.span, fmt.Sprintf("shp-search/%d/%d", tests, n), t.baseline, cfg)
		if err != nil {
			return 0, err
		}
		tests++
		return out.Treatment.Mean(), nil
	}
	for hi-lo > 2*step {
		// Quantizing the third-points can collapse m1 onto lo whenever
		// 2·step < hi-lo < 3·step with lo step-aligned; a winning lower
		// probe then sets lo = m1 = lo, and with a deterministic response
		// curve the same probes return the same verdict forever. Clamp
		// both probes to step-multiples strictly inside (lo, hi):
		// rounding m1 up to the first multiple above lo keeps m1 ≤
		// lo+step, and the loop guard gives m2 ≤ m1+step < lo+2·step <
		// hi — so every verdict strictly narrows the interval and the
		// search terminates on any curve.
		m1 := quant(lo + (hi-lo)/3)
		if m1 <= lo {
			m1 = quant(lo) + step // first step-multiple strictly above lo
		}
		m2 := quant(lo + 2*(hi-lo)/3)
		if m2 <= m1 {
			m2 = m1 + step
		}
		v1, err := mean(m1)
		if err != nil {
			return 0, tests, err
		}
		v2, err := mean(m2)
		if err != nil {
			return 0, tests, err
		}
		if v1 < v2 {
			lo = m1
		} else {
			hi = m2
		}
	}
	best := quant((lo + hi) / 2)
	return best, tests, nil
}
