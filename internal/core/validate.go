package core

import (
	"fmt"

	"softsku/internal/emon"
	"softsku/internal/knob"
	"softsku/internal/ods"
	"softsku/internal/platform"
	"softsku/internal/rng"
	"softsku/internal/sim"
	"softsku/internal/stats"
	"softsku/internal/telemetry"
)

// PushReport is one code push's soft-SKU-vs-production comparison
// during deployment validation.
type PushReport struct {
	Push     int
	SoftQPS  float64
	ProdQPS  float64
	DeltaPct float64
}

// Validation is the §4 soft-SKU generator's deployment check: after
// applying the chosen configuration to live servers, µSKU monitors
// fleet-wide QPS via ODS for prolonged durations — across code pushes
// and under diurnal load — to confirm the soft SKU's advantage is
// stable.
type Validation struct {
	Pushes          []PushReport
	MeanDeltaPct    float64
	StableAdvantage bool // every push showed an improvement
	Store           *ods.Store
}

// Validate deploys the soft SKU next to production servers and
// compares ODS-collected QPS across `pushes` simulated code pushes
// (each push re-seeds the workload: code layout and data placement
// shift, §4 "code evolves rapidly... repeat experiments across
// updates"). samplesPerPush QPS samples are spread across a full
// diurnal period per push.
func (t *Tool) Validate(softSKU knob.Config, pushes, samplesPerPush int) (*Validation, error) {
	if pushes < 1 {
		pushes = 1
	}
	if samplesPerPush < 10 {
		samplesPerPush = 10
	}
	v := &Validation{Store: ods.NewStore(), StableAdvantage: true}
	root := t.tracer.StartSpan("musku.validate", "validation")
	root.Set("pushes", pushes)
	root.Set("soft_sku", softSKU.String())
	defer root.End()
	// Mirror live telemetry alongside the QPS series so the validation
	// store is the one place fleet queries and metrics meet (§2.2's
	// ODS role). Sim throughput and EMON read volume are sampled at
	// each push boundary.
	mirror := telemetry.NewODSMirror(telemetry.Default, v.Store,
		"softsku_sim_seconds_per_wall_second",
		"softsku_sim_events_total",
		"softsku_emon_sample_reads_total",
		"softsku_abtest_trials_started_total")
	var deltas []float64
	for p := 0; p < pushes; p++ {
		ps := root.StartChild(fmt.Sprintf("push%d", p), "validation")
		// Label-derived streams (audited in PR 4): arithmetic like
		// seed+p*K or seed^tag can collide with other consumers' ad-hoc
		// seeds; rng.Derive keys every stream by a unique string instead.
		seed := rng.Derive(t.in.Seed, fmt.Sprintf("validate/push/%d", p))
		build := func(cfg knob.Config, arm string) (*emon.Sampler, error) {
			srv, err := platform.NewServer(t.sku, cfg)
			if err != nil {
				return nil, err
			}
			m, err := sim.NewMachine(srv, t.prof, seed)
			if err != nil {
				return nil, err
			}
			return emon.NewSampler(m, t.load, rng.Derive(seed, "noise/"+arm)), nil
		}
		soft, err := build(softSKU, "softsku")
		if err != nil {
			return nil, err
		}
		prod, err := build(t.baseline, "production")
		if err != nil {
			return nil, err
		}
		var softS, prodS stats.Sample
		start := t.vclock
		period := 86400.0 // one diurnal cycle per push
		for i := 0; i < samplesPerPush; i++ {
			at := start + float64(i)/float64(samplesPerPush)*period
			sq := soft.QPS(at)
			pq := prod.QPS(at)
			softS.Add(sq)
			prodS.Add(pq)
			if err := v.Store.Append(fmt.Sprintf("push%d/softsku.qps", p), at, sq); err != nil {
				return nil, err
			}
			if err := v.Store.Append(fmt.Sprintf("push%d/production.qps", p), at, pq); err != nil {
				return nil, err
			}
		}
		t.vclock = start + period
		delta := (softS.Mean()/prodS.Mean() - 1) * 100
		deltas = append(deltas, delta)
		v.Pushes = append(v.Pushes, PushReport{
			Push: p, SoftQPS: softS.Mean(), ProdQPS: prodS.Mean(), DeltaPct: delta,
		})
		if delta <= 0 {
			v.StableAdvantage = false
		}
		ps.Set("soft_qps", softS.Mean())
		ps.Set("prod_qps", prodS.Mean())
		ps.Set("delta_pct", delta)
		ps.End()
		//lint:ignore detflow the flush exports counter snapshots to the ODS mirror, observability only — no metric value flows into the validation verdict
		if err := mirror.Flush(t.vclock); err != nil {
			return nil, err
		}
		t.logf("push %d: soft SKU QPS %+.2f%% vs production", p, delta)
	}
	v.MeanDeltaPct = stats.Mean(deltas)
	return v, nil
}
