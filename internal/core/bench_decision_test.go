package core

import (
	"io"
	"testing"

	"softsku/internal/decision"
	"softsku/internal/knob"
)

// benchSweepRecorder measures one full tuning run (independent sweep
// over four knobs plus both final validations) with the decision
// flight recorder off vs on. Recording rides the serial merge phase:
// per trial it is one evidence capture (64 analytic panel reads, no
// simulation windows) plus a handful of struct appends, so the ledger
// must be ≈ free next to the trial sampling it annotates.
// BENCH_decision.json records the medians of `make bench-decision`.
func benchSweepRecorder(b *testing.B, record bool) {
	in := fastInput("Web", "Skylake18", knob.THP, knob.SHP, knob.CoreFreq, knob.Prefetch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tool, err := New(in)
		if err != nil {
			b.Fatal(err)
		}
		tool.SetLogger(io.Discard)
		if record {
			tool.SetRecorder(decision.NewLedger())
		}
		if _, err := tool.Run(); err != nil {
			b.Fatal(err)
		}
		if record {
			if n := tool.Recorder().Len(); n == 0 {
				b.Fatal("recorder captured no events")
			}
		}
	}
}

func BenchmarkSweepRecorderOff(b *testing.B) { benchSweepRecorder(b, false) }
func BenchmarkSweepRecorderOn(b *testing.B)  { benchSweepRecorder(b, true) }
