package core

import (
	"fmt"
	"runtime"

	"softsku/internal/abtest"
	"softsku/internal/chaos"
	"softsku/internal/decision"
	"softsku/internal/emon"
	"softsku/internal/knob"
	"softsku/internal/loadgen"
	"softsku/internal/platform"
	"softsku/internal/rng"
	"softsku/internal/sim"
	"softsku/internal/stats"
	"softsku/internal/telemetry"
)

// The parallel sweep runtime. A sweep is executed in three phases:
//
//  1. spec build (serial): walk the design space in its canonical
//     order, prune/validate, count reboots, and emit one trialSpec per
//     surviving candidate. Chaos child injectors are split off here so
//     their creation order is deterministic.
//  2. trial execution (parallel): runTrials shards the specs across a
//     bounded worker pool. Every trial is hermetic — its servers,
//     machines, samplers, load profile, fault streams, and virtual
//     clock derive purely from (run seed, trial label), never from
//     execution order.
//  3. merge (serial): results are folded into the Tool in spec order —
//     virtual-clock accounting, degradation counters, log lines, and
//     winner selection all see the exact sequence a serial run would
//     have produced.
//
// Phases 1 and 3 touch Tool state and must stay on the caller's
// goroutine; phase 2 may only read immutable Tool fields (in, prof,
// sku, baseline) and the trial's own spec.

// trialSpec is one A/B trial, fully specified before execution so
// trials can run in any order on any worker.
type trialSpec struct {
	label     string // unique within the run; seeds the trial's streams
	control   knob.Config
	treatment knob.Config
	ab        abtest.Config
	inj       chaos.Injector   // per-trial fault injector (nil: fault-free)
	parent    *telemetry.Span  // span the trial's spans nest under
	dec       *decision.Buffer // trial-local decision events (nil: not recording)
}

// trialResult is everything a trial hands back to the merge phase.
type trialResult struct {
	out      abtest.Outcome
	err      error
	elapsed  float64          // virtual seconds the trial consumed
	srv      *platform.Server // treatment server (nil on error)
	reverted bool             // guardrail tripped and treatment reverted
	logs     []string         // progress lines, replayed in merge order

	evid   []decision.Evidence // per-metric moment panels (recording only)
	evidID string              // deterministic ledger<->trace link id
}

// newSpec builds a trial spec from the tool's current A/B
// configuration. When the run is under a seeded chaos engine, the
// trial gets its own child injector — split off serially, here — so
// concurrent trials never contend for one fault stream; custom
// injectors are shared (workers() serializes those runs).
func (t *Tool) newSpec(parent *telemetry.Span, label string, control, treatment knob.Config) trialSpec {
	sp := trialSpec{
		label:     label,
		control:   control,
		treatment: treatment,
		ab:        t.in.AB,
		inj:       t.chaos,
		parent:    parent,
	}
	if eng, ok := t.chaos.(*chaos.Engine); ok {
		sp.inj = eng.Split("trial/" + label)
	}
	sp.ab.Chaos = sp.inj
	if t.rec != nil {
		// Each trial buffers its own decision events (abtest's
		// trial_started, guardrail_trip); the merge phase drains them
		// into the shared ledger in spec order, keeping the ledger
		// byte-identical at any worker count.
		sp.dec = &decision.Buffer{}
		sp.ab.Record = sp.dec
	}
	return sp
}

// workers resolves the worker count for this run. Zero or negative
// means GOMAXPROCS. Custom injectors (anything that is neither a
// seeded *chaos.Engine nor chaos.Disabled) may carry unsynchronized,
// order-dependent state, so those runs are pinned to one worker.
func (t *Tool) workers() int {
	if t.chaos != nil && t.chaos != chaos.Disabled {
		if _, ok := t.chaos.(*chaos.Engine); !ok {
			return 1
		}
	}
	if t.par <= 0 {
		//lint:ignore detflow worker count is result-invariant: trials merge by index order, so the pool size never reaches a verdict (pinned by the equivalence tests)
		return runtime.GOMAXPROCS(0)
	}
	return t.par
}

// metric maps the configured optimization metric onto a sampler.
func (t *Tool) metric(es *emon.Sampler) abtest.Sampler {
	switch t.in.Metric {
	case MetricQPS:
		return es.QPS
	case MetricPerfPerWatt:
		return es.MIPSPerWatt
	default:
		return es.MIPS
	}
}

// runTrial executes one hermetic A/B trial. Both arms run the same
// workload (shared workload seed, §4: "two identical servers ... that
// differ only in their knob configuration") against one shared load
// profile; everything stochastic — the load realization, the diurnal
// phase the trial starts at, and each arm's measurement-noise stream —
// derives from (run seed, trial label), so the trial's outcome is a
// pure function of its spec.
func (t *Tool) runTrial(spec trialSpec) trialResult {
	var res trialResult
	sp := spec.parent.StartChild("trial", "abtest")
	sp.Set("label", spec.label)
	sp.Set("control", spec.control.String())
	sp.Set("treatment", spec.treatment.String())
	defer sp.End()

	seed := rng.Derive(t.in.Seed, "trial/"+spec.label)
	load := loadgen.NewDiurnal(rng.Derive(seed, "load"))
	load.SetChaos(spec.inj)
	// Successive production experiments start wherever the diurnal cycle
	// happens to be; a per-trial phase draw models that without coupling
	// trials through a shared clock.
	start := rng.New(rng.Derive(seed, "phase")).Float64() * load.Period
	clock := start

	build := func(arm string, cfg knob.Config, deploy bool) (*emon.Sampler, *platform.Server, error) {
		ms := sp.StartChild("sim.machine", "sim")
		ms.Set("config", cfg.String())
		defer ms.End()
		var srv *platform.Server
		var err error
		if deploy && spec.inj != nil {
			// Treatment servers come from the production fleet: boot at
			// the control configuration, then deploy the candidate through
			// Apply — the path that can fault under injection.
			if srv, err = platform.NewServer(t.sku, spec.control); err == nil {
				srv.SetChaos(spec.inj)
				err = t.applyWithRetry(srv, cfg, &clock)
			}
		} else {
			srv, err = platform.NewServer(t.sku, cfg)
		}
		if err != nil {
			return nil, nil, err
		}
		m, err := sim.NewMachine(srv, t.prof, t.in.Seed)
		if err != nil {
			return nil, nil, err
		}
		return emon.NewSampler(m, load, rng.Derive(seed, "noise/"+arm)), srv, nil
	}

	cs, _, err := build("control", spec.control, false)
	if err == nil {
		var ts *emon.Sampler
		if ts, res.srv, err = build("treatment", spec.treatment, true); err == nil {
			var out abtest.Outcome
			out, clock = abtest.Run(spec.ab, t.metric(cs), t.metric(ts), clock)
			res.out = out
			if spec.dec != nil {
				// Evidence panels are captured before any guardrail revert
				// so they measure the configuration the trial actually ran.
				res.evidID = fmt.Sprintf("%016x", rng.Derive(t.in.Seed, "evidence/"+spec.label))
				sp.Set("evidence_id", res.evidID)
				res.evid = evidencePanels(cs.Machine(), ts.Machine(), seed, start, clock)
			}
			if out.GuardrailTripped {
				sp.Set("guardrail_tripped", true)
				res.reverted = true
				res.logs = append(res.logs,
					fmt.Sprintf("  guardrail tripped on %s: reverting to control", spec.treatment))
				t.revertServer(res.srv, spec.control, spec.inj, &clock, &res.logs)
			}
			sp.Set("samples_per_arm", out.Samples)
			sp.Set("control_mean", out.Control.Mean())
			sp.Set("treatment_mean", out.Treatment.Mean())
			sp.Set("delta_pct", out.DeltaPct)
			sp.Set("p_value", out.PValue)
			sp.Set("significant", out.Significant)
			sp.Set("virtual_sec", out.ElapsedSec)
		}
	}
	res.err = err
	res.elapsed = clock - start
	return res
}

// revertServer restores the control configuration on a tripped
// treatment server: a regressing configuration must not keep serving
// production traffic. The revert is break-glass — if injected faults
// block it past the retry budget, it is forced past the injector.
func (t *Tool) revertServer(srv *platform.Server, control knob.Config,
	inj chaos.Injector, clock *float64, logs *[]string) {
	if srv == nil {
		return
	}
	if err := t.applyWithRetry(srv, control, clock); err != nil {
		srv.SetChaos(nil)
		if _, ferr := srv.Apply(control); ferr != nil {
			// With the injector detached only validation can fail, and
			// control is the already-validated baseline — but if it does,
			// the treatment arm is still live and must be reported.
			*logs = append(*logs, fmt.Sprintf("  forced revert to control failed: %v", ferr))
		}
		srv.SetChaos(inj)
	}
}

// evidenceReads is the paired sample count per evidence panel: enough
// moments for a replayed Welch test to resolve multi-percent effects,
// cheap enough that recording stays nearly free next to a trial's
// hundreds-to-thousands of live samples.
const evidenceReads = 32

// evidencePanels re-measures both arms across the trial's virtual
// window on every candidate objective (mips, qps, perfwatt, p99) and
// returns the per-metric moment panels a counterfactual replay
// re-judges. Fresh load and noise streams are derived from the trial
// seed: the trial's own samplers have consumed an outcome-dependent
// number of draws, and its load profile's random walk cannot rewind to
// the window start — re-deriving keeps the panels a pure function of
// the spec. Injected load spikes are deliberately excluded so panel
// capture never perturbs the trial's chaos streams.
func evidencePanels(cm, tm *sim.Machine, seed uint64, start, end float64) []decision.Evidence {
	load := loadgen.NewDiurnal(rng.Derive(seed, "load"))
	cs := emon.NewSampler(cm, load, rng.Derive(seed, "evidence/control"))
	ts := emon.NewSampler(tm, load, rng.Derive(seed, "evidence/treatment"))
	window := end - start
	if window <= 0 {
		window = 1
	}
	var c, tr [4]stats.Sample
	for i := 0; i < evidenceReads; i++ {
		at := start + window*(float64(i)+0.5)/evidenceReads
		cp, tp := cs.ReadPanel(at), ts.ReadPanel(at)
		for j, v := range [4]float64{cp.MIPS, cp.QPS, cp.PerfWatt, cp.P99} {
			c[j].Add(v)
		}
		for j, v := range [4]float64{tp.MIPS, tp.QPS, tp.PerfWatt, tp.P99} {
			tr[j].Add(v)
		}
	}
	names := [4]string{"mips", "qps", "perfwatt", "p99"}
	out := make([]decision.Evidence, len(names))
	for j, n := range names {
		out[j] = decision.Evidence{
			Metric:    n,
			Control:   decision.Stat{N: c[j].N(), Mean: c[j].Mean(), Var: c[j].Variance()},
			Treatment: decision.Stat{N: tr[j].N(), Mean: tr[j].Mean(), Var: tr[j].Variance()},
		}
	}
	return out
}

// recordTrial appends one merged trial to the decision ledger: the
// trial_measured event with its evidence panels, the trial's buffered
// events (trial_started, guardrail_trip) rebased under it, and the
// revert if the guardrail fired. Must run on the serial merge phase.
// Returns the trial_measured sequence number, or -1 when not
// recording.
func (t *Tool) recordTrial(parent int, spec trialSpec, r trialResult, knobName, setting string) int {
	if t.rec == nil {
		return -1
	}
	seq := t.rec.Record(parent, decision.TrialMeasured(
		spec.label, knobName, setting, spec.control.String(), spec.treatment.String(),
		decision.TrialOutcome{
			DeltaPct:    r.out.DeltaPct,
			PValue:      r.out.PValue,
			Significant: r.out.Significant,
			Samples:     r.out.Samples,
			VirtualSec:  r.out.ElapsedSec,
			EvidenceID:  r.evidID,
			Evidence:    r.evid,
		}))
	if spec.dec != nil {
		spec.dec.DrainTo(t.rec, seq)
	}
	if r.reverted {
		t.rec.Record(seq, decision.Revert(spec.label, spec.control.String()))
	}
	return seq
}

// recordSkip appends a candidate abandoned after persistent faults,
// draining whatever the trial buffered before it died.
func (t *Tool) recordSkip(parent int, spec trialSpec, setting string, err error) {
	if t.rec == nil {
		return
	}
	seq := t.rec.Record(parent, decision.Skip(spec.label, setting, err.Error()))
	if spec.dec != nil {
		spec.dec.DrainTo(t.rec, seq)
	}
}

// runTrials executes every spec across the worker pool, returning
// results indexed like specs. Result slots are written by index, so
// the output is independent of scheduling.
func (t *Tool) runTrials(specs []trialSpec) []trialResult {
	results := make([]trialResult, len(specs))
	ParallelFor(t.workers(), len(specs), func(i int) {
		results[i] = t.runTrial(specs[i])
	})
	return results
}

// mergeTrial folds one trial's result into the tool, in spec order:
// virtual-clock accounting, buffered log replay, server registration,
// and guardrail bookkeeping. Must only be called from the merge phase.
func (t *Tool) mergeTrial(spec trialSpec, r trialResult) (abtest.Outcome, error) {
	t.vclock += r.elapsed
	for _, line := range r.logs {
		t.logf("%s", line)
	}
	if r.err != nil {
		return abtest.Outcome{}, r.err
	}
	t.servers[spec.treatment.String()] = r.srv
	if r.reverted {
		t.reverts++
		mGuardrailReverts.Inc()
	}
	return r.out, nil
}

// runSingle is the sequential build→run→merge path for call sites that
// need one outcome before deciding the next trial (ternary search, and
// any future adaptive strategy).
func (t *Tool) runSingle(parent *telemetry.Span, label string, control, treatment knob.Config) (abtest.Outcome, error) {
	spec := t.newSpec(parent, label, control, treatment)
	r := t.runTrial(spec)
	out, err := t.mergeTrial(spec, r)
	if err == nil {
		t.recordTrial(t.decRoot, spec, r, "", treatment.String())
	}
	return out, err
}
