package core

import (
	"io"
	"reflect"
	"testing"

	"softsku/internal/knob"
	"softsku/internal/sim"
)

// TestSimCacheBitIdentical is the tentpole acceptance test for the
// characterization cache: a full tuning run with the cache enabled
// must produce the exact Result struct, progress log, and chaos
// fingerprint that -sim-cache=off produces, at parallel=1 and 8, with
// chaos off and on. The cache is a pure memoization — if any input
// that reaches a window were missing from its key, one of these eight
// runs would diverge.
func TestSimCacheBitIdentical(t *testing.T) {
	type run struct {
		res *Result
		log string
		fp  string
	}
	do := func(cacheOn bool, par int, withChaos bool) run {
		prev := sim.SetCharacterizationCache(cacheOn)
		defer sim.SetCharacterizationCache(prev)
		sim.ResetCharacterizationCache()
		res, log, fp := runAt(t, par, withChaos)
		return run{res, log, fp}
	}
	for _, withChaos := range []bool{false, true} {
		for _, par := range []int{1, 8} {
			off := do(false, par, withChaos)
			on := do(true, par, withChaos)
			if !reflect.DeepEqual(on.res, off.res) {
				t.Fatalf("chaos=%v parallel=%d: cached result diverged from uncached:\ncached: %+v\nuncached: %+v",
					withChaos, par, on.res, off.res)
			}
			if on.log != off.log {
				t.Fatalf("chaos=%v parallel=%d: cached log diverged:\n--- cached ---\n%s--- uncached ---\n%s",
					withChaos, par, on.log, off.log)
			}
			if on.fp != off.fp {
				t.Fatalf("chaos=%v parallel=%d: fault schedules diverged:\ncached: %s\nuncached: %s",
					withChaos, par, on.fp, off.fp)
			}
		}
	}
}

// TestSimCacheDedupesWindows pins the perf claim behind the cache: one
// tuning run re-characterizes the same µarch configurations over and
// over — the control arm every trial, neighbours revisited across
// hill-climb rounds, each round's control equal to the previous
// round's winning treatment — so the cache must cut executed windows
// by at least 2x.
func TestSimCacheDedupesWindows(t *testing.T) {
	count := func(cacheOn bool) float64 {
		prev := sim.SetCharacterizationCache(cacheOn)
		defer sim.SetCharacterizationCache(prev)
		sim.ResetCharacterizationCache()
		before := sim.WindowsExecuted()
		in := fastInput("Web", "Skylake18", knob.THP, knob.SHP, knob.CoreFreq, knob.Prefetch)
		in.Sweep = SweepHillClimb
		in.Parallel = 4
		tool, err := New(in)
		if err != nil {
			t.Fatal(err)
		}
		tool.SetLogger(io.Discard)
		if _, err := tool.Run(); err != nil {
			t.Fatal(err)
		}
		return sim.WindowsExecuted() - before
	}
	off := count(false)
	on := count(true)
	if on <= 0 || off <= 0 {
		t.Fatalf("windows: on=%v off=%v", on, off)
	}
	if off < 2*on {
		t.Fatalf("cache saved too little: %v windows uncached vs %v cached (want ≥2x)", off, on)
	}
}
