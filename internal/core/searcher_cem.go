package core

import (
	"fmt"
	"sort"
	"strconv"

	"softsku/internal/decision"
	"softsku/internal/knob"
	"softsku/internal/rng"
)

// cemSearcher is a cross-entropy-method population search over the
// discrete knob space: each generation samples configurations from
// independent per-knob categorical distributions, measures them
// against the baseline, and refits the distributions toward the elite
// fraction — so probability mass flows onto setting combinations that
// win together, which is exactly the cross-knob interaction structure
// the one-knob-at-a-time sweep cannot represent.
//
// Determinism: generation g draws every sample from the stream
// rng.Derive(seed, "search/cem/gen/<g>") on the serial phase; knobs
// are always iterated in Space.Knobs() presentation order (the probs
// map is never ranged over); ranking is a stable sort on (delta desc,
// sample order); and the refit is fixed-order float arithmetic — a
// pure function of the measured outcomes.
//
// The distributions start biased toward the baseline (it is known-
// realizable and production-tuned), which concentrates early
// generations near it; as generations converge, re-sampled repeat
// configurations cost no fresh characterization windows — the
// simcache key is (config, run seed) — so total fresh windows grow
// with the number of *distinct* configurations visited, not with
// generations × population.
type cemSearcher struct {
	t     *Tool
	probs map[knob.ID][]float64 // per-knob categorical, indexed like space.Values

	gens     int     // generation budget
	pop      int     // samples per generation
	elites   int     // refit fraction
	alpha    float64 // refit smoothing: p' = (1-α)p + α·eliteFreq
	patience int     // stalled generations before stopping

	arms     []knob.Config // current generation, indexed like Arms
	stalled  int
	best     knob.Config
	bestPct  float64
	haveBest bool
	done     bool
}

const (
	cemGenerations = 6
	cemPopulation  = 6
	cemElites      = 3
	cemAlpha       = 0.7
	cemPatience    = 2
	// cemBaselineWeight is the initial probability mass on each knob's
	// baseline setting; the remainder spreads uniformly.
	cemBaselineWeight = 0.5
	// cemImproveEps is the minimum best-delta improvement (percentage
	// points) that resets the stall counter.
	cemImproveEps = 0.05
)

func newCEMSearcher(t *Tool) *cemSearcher {
	c := &cemSearcher{
		t:        t,
		probs:    map[knob.ID][]float64{},
		gens:     cemGenerations,
		pop:      cemPopulation,
		elites:   cemElites,
		alpha:    cemAlpha,
		patience: cemPatience,
		best:     t.baseline,
	}
	for _, id := range t.space.Knobs() {
		values := t.space.Values[id]
		if len(values) == 0 {
			continue
		}
		p := make([]float64, len(values))
		if len(values) == 1 {
			p[0] = 1
		} else {
			rest := (1 - cemBaselineWeight) / float64(len(values)-1)
			for i := range p {
				p[i] = rest
			}
			bi := indexOfSetting(values, t.baseline.Get(id))
			if bi >= 0 {
				p[bi] = cemBaselineWeight
			}
		}
		c.probs[id] = p
	}
	return c
}

func (c *cemSearcher) Name() string { return "cem" }

func (c *cemSearcher) Done() bool { return c.done }

func (c *cemSearcher) Best() (knob.Config, float64) {
	if !c.haveBest {
		return c.t.baseline, 0
	}
	return c.best, c.bestPct
}

// sampleOne draws one configuration from the current distributions.
func (c *cemSearcher) sampleOne(src *rng.Source) knob.Config {
	cfg := c.t.baseline
	for _, id := range c.t.space.Knobs() {
		values := c.t.space.Values[id]
		p := c.probs[id]
		if len(values) == 0 || len(p) != len(values) {
			continue
		}
		r := src.Float64()
		pick := len(p) - 1 // float residue lands on the last bucket
		acc := 0.0
		for i, pi := range p {
			acc += pi
			if r < acc {
				pick = i
				break
			}
		}
		cfg = cfg.With(id, values[pick])
	}
	return cfg
}

func (c *cemSearcher) Propose(round int) *SearchRound {
	if c.done || round >= c.gens {
		return nil
	}
	src := rng.New(rng.Derive(c.t.in.Seed, "search/cem/gen/"+strconv.Itoa(round)))
	seen := map[knob.Config]bool{c.t.baseline: true}
	c.arms = c.arms[:0]
	if c.haveBest && !seen[c.best] {
		// Elitism: the incumbent re-races every generation on fresh
		// noise streams, so the final winner is never a config the
		// search stopped measuring generations ago.
		seen[c.best] = true
		c.arms = append(c.arms, c.best)
	}
	for tries := 0; len(c.arms) < c.pop && tries < c.pop*64; tries++ {
		cfg := c.sampleOne(src)
		if seen[cfg] {
			continue
		}
		seen[cfg] = true
		if c.t.sku.Validate(cfg) != nil {
			continue // unrealizable; resample rather than waste an arm
		}
		c.arms = append(c.arms, cfg)
	}
	if len(c.arms) == 0 {
		// Distribution mass collapsed onto the baseline/unrealizable
		// corner — nothing left to measure.
		c.done = true
		return nil
	}
	rd := &SearchRound{
		Span:    fmt.Sprintf("search.gen%d", round),
		Label:   fmt.Sprintf("cem/gen%d", round),
		Control: c.t.baseline,
	}
	for i, cfg := range c.arms {
		rd.Arms = append(rd.Arms, SearchArm{
			Label:   fmt.Sprintf("cem/%d/%d", round, i),
			Config:  cfg,
			Setting: fmt.Sprintf("arm%d", i),
		})
	}
	return rd
}

func (c *cemSearcher) Observe(round int, outs []ArmOutcome) RoundVerdict {
	type scored struct {
		pos   int
		delta float64
	}
	var ranked []scored
	for pos, o := range outs {
		if !o.Measured() {
			continue
		}
		ranked = append(ranked, scored{pos: pos, delta: o.Outcome.DeltaPct})
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].delta > ranked[j].delta })

	var v RoundVerdict
	if len(ranked) == 0 {
		c.done = true
		v.Events = []decision.Event{decision.Converged(
			fmt.Sprintf("cem generation %d: no measurable arms; keeping %s", round, c.best))}
		v.Logs = []string{fmt.Sprintf("cem generation %d: no measurable arms", round)}
		return v
	}

	// Refit toward the elite fraction.
	ne := c.elites
	if ne > len(ranked) {
		ne = len(ranked)
	}
	elite := ranked[:ne]
	v.Accepted = make([]bool, len(outs))
	for _, e := range elite {
		v.Accepted[e.pos] = true
	}
	for _, id := range c.t.space.Knobs() {
		values := c.t.space.Values[id]
		p := c.probs[id]
		if len(values) == 0 || len(p) != len(values) {
			continue
		}
		counts := make([]float64, len(values))
		for _, e := range elite {
			if vi := indexOfSetting(values, c.arms[e.pos].Get(id)); vi >= 0 {
				counts[vi]++
			}
		}
		for i := range p {
			p[i] = (1-c.alpha)*p[i] + c.alpha*counts[i]/float64(ne)
		}
	}

	// Track the incumbent and the stall counter.
	top := ranked[0]
	improved := false
	if outs[top.pos].Outcome.Better() && (!c.haveBest || top.delta > c.bestPct) {
		if !c.haveBest || top.delta > c.bestPct+cemImproveEps {
			improved = true
		}
		c.best, c.bestPct, c.haveBest = c.arms[top.pos], top.delta, true
	}
	if improved {
		c.stalled = 0
	} else {
		c.stalled++
	}

	v.Attrs = []SpanAttr{
		{Key: "arms", Value: len(ranked)},
		{Key: "elites", Value: ne},
		{Key: "best_delta_pct", Value: top.delta},
	}
	v.Logs = []string{fmt.Sprintf("cem generation %d: %d arms, best %+.2f%% (incumbent %+.2f%%)",
		round, len(ranked), top.delta, c.bestPct)}
	if c.stalled >= c.patience || round == c.gens-1 {
		c.done = true
		why := fmt.Sprintf("stalled %d generations", c.stalled)
		if c.stalled < c.patience {
			why = "generation budget spent"
		}
		body := fmt.Sprintf("keeping baseline after %d generations (%s)", round+1, why)
		if c.haveBest {
			body = fmt.Sprintf("best %s (%+.2f%%) after %d generations (%s)",
				c.best, c.bestPct, round+1, why)
		}
		v.Events = []decision.Event{decision.Converged("cem: " + body)}
		v.Logs = append(v.Logs, "cem converged: "+body)
	}
	return v
}
