package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"softsku/internal/chaos"
	"softsku/internal/knob"
	"softsku/internal/rng"
)

// runAt executes a full tuning run at the given worker count and
// returns the result, the captured progress log, and the chaos
// fingerprint ("" when chaos is off).
func runAt(t *testing.T, par int, withChaos bool) (*Result, string, string) {
	t.Helper()
	var in Input
	if withChaos {
		in = fastInput("Web", "Skylake18", knob.THP, knob.CoreFreq)
		in.AB.GuardrailPct = 1
	} else {
		in = fastInput("Web", "Skylake18", knob.THP, knob.SHP)
	}
	in.Parallel = par
	tool, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	tool.SetLogger(&log)
	var eng *chaos.Engine
	if withChaos {
		eng = chaos.New(42, chaos.DefaultConfig())
		tool.SetChaos(eng)
	}
	res, err := tool.Run()
	if err != nil {
		t.Fatal(err)
	}
	fp := ""
	if eng != nil {
		fp = eng.Fingerprint()
	}
	return res, log.String(), fp
}

// TestParallelSweepBitIdenticalToSerial is the tentpole acceptance
// test: a full run at -parallel=8 must produce the exact Result struct
// — every sampled mean, p-value, clock reading, and log line — that
// -parallel=1 produces at the same seed.
func TestParallelSweepBitIdenticalToSerial(t *testing.T) {
	serialRes, serialLog, _ := runAt(t, 1, false)
	parRes, parLog, _ := runAt(t, 8, false)
	if !reflect.DeepEqual(serialRes, parRes) {
		t.Fatalf("parallel result diverged from serial:\nserial: %+v\nparallel: %+v", serialRes, parRes)
	}
	if serialLog != parLog {
		t.Fatalf("parallel log diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s", serialLog, parLog)
	}
}

// TestParallelSweepBitIdenticalUnderChaos repeats the equivalence
// check with a seeded fault engine and an armed guardrail: per-trial
// child injectors must decouple fault streams without changing the
// merged schedule, reverts, or composition.
func TestParallelSweepBitIdenticalUnderChaos(t *testing.T) {
	serialRes, serialLog, serialFP := runAt(t, 1, true)
	parRes, parLog, parFP := runAt(t, 8, true)
	if !reflect.DeepEqual(serialRes, parRes) {
		t.Fatalf("chaos result diverged:\nserial: %+v\nparallel: %+v", serialRes, parRes)
	}
	if serialLog != parLog {
		t.Fatalf("chaos log diverged:\n--- serial ---\n%s--- parallel ---\n%s", serialLog, parLog)
	}
	if serialFP != parFP {
		t.Fatalf("fault schedules diverged:\nserial: %s\nparallel: %s", serialFP, parFP)
	}
	if serialRes.Reverts == 0 {
		t.Fatal("fixture should exercise guardrail reverts (frequency regressions)")
	}
}

// TestParallelForCoversAllIndices pins the pool's contract: every
// index runs exactly once at any worker count, including the
// degenerate and oversubscribed shapes.
func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100} {
			hits := make([]int32, n)
			ParallelFor(workers, n, func(i int) { hits[i]++ })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

// TestSweepStreamSeedsPairwiseDistinct audits the whole run's derived
// stream space for aliasing: across every trial a full all-knob sweep
// would schedule (plus the final validations), the load, phase, and
// both noise streams — and the chaos child-engine roots — must all be
// pairwise distinct in their first 8 draws.
func TestSweepStreamSeedsPairwiseDistinct(t *testing.T) {
	in := fastInput("Web", "Skylake18")
	tool, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	var labels []string
	for _, id := range tool.space.Knobs() {
		for si, setting := range tool.space.Values[id] {
			if setting == tool.baseline.Get(id) {
				continue
			}
			labels = append(labels, fmt.Sprintf("sweep/%s/%d", id, si))
		}
	}
	labels = append(labels, "final/production", "final/stock")
	if len(labels) < 20 {
		t.Fatalf("fixture too small to be a meaningful audit: %d labels", len(labels))
	}
	draws := func(seed uint64) [8]uint64 {
		var d [8]uint64
		src := rng.New(seed)
		for i := range d {
			d[i] = src.Uint64()
		}
		return d
	}
	seen := make(map[[8]uint64]string)
	check := func(name string, seed uint64) {
		d := draws(seed)
		if prev, dup := seen[d]; dup {
			t.Fatalf("stream %s aliases stream %s (seed %#x)", name, prev, seed)
		}
		seen[d] = name
	}
	const chaosSeed = 42
	for _, lab := range labels {
		seed := rng.Derive(in.Seed, "trial/"+lab)
		for _, sub := range []string{"load", "phase", "noise/control", "noise/treatment"} {
			check(lab+"/"+sub, rng.Derive(seed, sub))
		}
		check(lab+"/chaos", rng.Derive(chaosSeed, "trial/"+lab))
	}
	// The streams already in use before this audit must stay clear too.
	check("load/validate", rng.Derive(in.Seed, "load/validate"))
}
