package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelFor runs fn(i) for every i in [0, n) across a bounded pool
// of worker goroutines. workers <= 0 means GOMAXPROCS; the pool is
// clamped to n, and workers <= 1 degenerates to a plain serial loop
// (no goroutines at all), so the serial path stays bit-identical to
// code written before this pool existed.
//
// Indices are handed out atomically in order, but fn invocations for
// different i may interleave arbitrarily — callers own determinism:
// each fn(i) must touch only state derived from i (results slots,
// per-trial seeds), never shared mutable state, and callers must merge
// results by index order, not completion order. That discipline is
// what makes parallel sweeps bit-identical to serial ones.
func ParallelFor(workers, n int, fn func(int)) {
	if workers <= 0 {
		//lint:ignore detflow worker count is result-invariant: index-ordered merge makes parallel sweeps bit-identical to serial (pinned by the equivalence tests)
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:ignore goroutine bounded worker pool; callers merge results in index order
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
