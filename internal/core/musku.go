package core

import (
	"fmt"
	"io"
	"sort"

	"softsku/internal/abtest"
	"softsku/internal/chaos"
	"softsku/internal/decision"
	"softsku/internal/knob"
	"softsku/internal/loadgen"
	"softsku/internal/platform"
	"softsku/internal/rng"
	"softsku/internal/sim"
	"softsku/internal/telemetry"
	"softsku/internal/workload"
)

// Design-space telemetry: how much of the space each tuning run
// sweeps, tests, and prunes away as unrealizable.
var (
	mKnobsSwept = telemetry.Default.Counter("softsku_core_knobs_swept_total",
		"Knob sweeps performed across tuning runs.")
	mConfigsValidated = telemetry.Default.Counter("softsku_core_configs_validated_total",
		"Candidate configurations that passed SKU validation and were measured.")
	mConfigsPruned = telemetry.Default.Counter("softsku_core_configs_pruned_total",
		"Candidate configurations pruned as unrealizable on the SKU.")
	mConfigsTwinPruned = telemetry.Default.Counter("softsku_core_configs_twin_pruned_total",
		"Candidate configurations discarded on a tiered-fidelity prediction, no window spent.")
	mRuns = telemetry.Default.Counter("softsku_core_runs_total",
		"Complete µSKU tuning runs.")

	// Robustness telemetry: adversity the tuner absorbed while sweeping
	// a faulty fleet.
	mApplyRetries = telemetry.Default.Counter("softsku_core_knob_applies_retried_total",
		"Transient knob-apply failures absorbed by retry with backoff.")
	mKnobsSkipped = telemetry.Default.Counter("softsku_core_knobs_skipped_total",
		"Candidate settings skipped after persistent apply faults.")
	mGuardrailReverts = telemetry.Default.Counter("softsku_guardrail_reverts_total",
		"Treatment arms reverted to control after a guardrail trip.")
)

// Point is one evaluated knob setting in the design-space map.
type Point struct {
	Setting    knob.Setting
	Outcome    abtest.Outcome
	IsBaseline bool
	Chosen     bool
}

// KnobSweep is the design-space map for one knob: every candidate
// setting's A/B outcome against the production baseline.
type KnobSweep struct {
	Knob     knob.ID
	Baseline knob.Setting
	Points   []Point
}

// Best returns the chosen point, or nil if the baseline was kept.
func (k KnobSweep) Best() *Point {
	for i := range k.Points {
		if k.Points[i].Chosen {
			return &k.Points[i]
		}
	}
	return nil
}

// Result is a complete µSKU run: the design-space map, the composed
// soft SKU, and its validation against production and stock servers.
type Result struct {
	Service  string
	Platform string
	Sweep    SweepMode
	Metric   Metric

	Baseline knob.Config // hand-tuned production configuration
	Stock    knob.Config // off-the-shelf configuration
	SoftSKU  knob.Config // µSKU's composed configuration

	Map []KnobSweep

	VsProduction abtest.Outcome
	VsStock      abtest.Outcome

	Reboots      int     // server reboots the sweep required
	VirtualHours float64 // virtual measurement time consumed
	// ExhaustiveBest is the search's own estimate of the winner's gain
	// over the baseline, in percent: the best single measurement for
	// exhaustive/halving/cem, the accepted moves compounded
	// multiplicatively for hillclimb (each round measures against the
	// previous winner, so per-round deltas chain as factors — +2% on
	// +2% is +4.04%, not +4%). Zero for the independent sweep.
	ExhaustiveBest float64

	// Degradation record when running under fault injection: candidate
	// settings the sweep skipped after persistent apply faults, and
	// treatment arms reverted to control by the guardrail.
	Skipped int
	Reverts int
}

// Tool is one µSKU instance bound to a microservice/platform pair.
type Tool struct {
	in       Input
	prof     *workload.Profile
	sku      *platform.SKU
	baseline knob.Config
	space    *knob.Space
	load     *loadgen.Profile // deployment-validation load (Validate)
	vclock   float64
	reboots  int
	logW     io.Writer
	par      int // trial worker count; <=0 means GOMAXPROCS

	servers map[string]*platform.Server // treatment servers by config

	chaos   chaos.Injector // nil: fault-free tuning
	skipped int            // settings abandoned after persistent faults
	reverts int            // guardrail-driven treatment reverts

	tracer *telemetry.Tracer // nil disables tracing
	span   *telemetry.Span   // current parent for trial/machine spans

	rec       *decision.Ledger // nil disables decision recording
	decRoot   int              // run_started seq; -1 outside a recorded run
	decParent int              // causal parent for run_started (-1: ledger root)

	eval Evaluator // nil: measure every validated arm (no ladder)
}

// New builds a µSKU tool from an input file. It rejects MIPS-metric
// runs against performance-introspective services (§4: MIPS is
// insufficient to measure Cache's throughput).
func New(in Input) (*Tool, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	base, err := workload.ByName(in.Microservice)
	if err != nil {
		return nil, err
	}
	platName := in.Platform
	if platName == "" {
		platName = base.Platform
	}
	sku, err := platform.ByName(platName)
	if err != nil {
		return nil, err
	}
	prof := workload.ForPlatform(base, sku.Name)
	return NewForService(in, prof, sku)
}

// NewForService builds a µSKU tool for an arbitrary (possibly
// user-defined) microservice profile on the given platform — the
// library's extension point for services beyond the paper's seven.
func NewForService(in Input, prof *workload.Profile, sku *platform.SKU) (*Tool, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if prof.IntrospectivePerf && in.Metric == MetricMIPS {
		return nil, fmt.Errorf(
			"core: %s is performance-introspective; MIPS is not proportional to its throughput — use metric = qps (§4)",
			prof.Name)
	}
	t := &Tool{
		in:        in,
		prof:      prof,
		sku:       sku,
		baseline:  sim.ProductionConfig(sku, prof),
		space:     BuildSpace(sku, prof, in.Knobs),
		load:      loadgen.NewDiurnal(rng.Derive(in.Seed, "load/validate")),
		par:       in.Parallel,
		servers:   make(map[string]*platform.Server),
		decRoot:   -1,
		decParent: -1,
	}
	return t, nil
}

// SetChaos attaches a fault injector to the whole tuning run: trial
// servers can fail knob applies and hang reboots, the A/B sampler can
// drop and corrupt reads, and the shared load profile grows injected
// traffic spikes. The tool degrades rather than aborts — applies are
// retried with capped exponential backoff, persistently faulted
// settings are skipped (Result.Skipped), and guardrail trips revert
// the treatment arm (Result.Reverts). nil (the default) runs the
// fault-free pipeline bit-for-bit.
func (t *Tool) SetChaos(inj chaos.Injector) {
	t.chaos = inj
	t.load.SetChaos(inj)
}

// SetRecorder attaches a decision ledger: Run appends every decision
// the tuner makes — trials measured with their multi-metric evidence
// panels, arms accepted and rejected, guardrail trips, reverts, skips
// — with causal parent links, as the flight record cmd/skutrace
// renders and replays. All appends happen on the run's serial phases
// (per-trial events buffer through decision.Buffer), so the ledger is
// byte-identical across worker counts. nil (the default) disables
// recording.
func (t *Tool) SetRecorder(l *decision.Ledger) {
	t.rec = l
	t.decRoot = -1
}

// Recorder returns the attached decision ledger (nil if none).
func (t *Tool) Recorder() *decision.Ledger { return t.rec }

// SetRecorderParent makes the run's run_started event a child of seq
// instead of a ledger root — the fleet controller nests each retune
// under the epoch's drift_detected event, so one soak ledger replays as
// a single causal tree. -1 (the default) records a root.
func (t *Tool) SetRecorderParent(seq int) { t.decParent = seq }

// SetParallel sets the trial worker count: each knob sweep's candidate
// trials are sharded across n goroutines, with results merged in
// design-space order so the outcome is bit-identical to a serial run
// at the same seed. n <= 0 (the default) means GOMAXPROCS; runs under
// a custom (non-Engine) chaos injector always use one worker.
func (t *Tool) SetParallel(n int) { t.par = n }

// SetLogger directs progress logging (nil disables it).
func (t *Tool) SetLogger(w io.Writer) { t.logW = w }

// SetTracer attaches a span tracer to the tool: Run records a root
// span, one child span per knob sweep, and grandchildren per A/B trial
// and per simulated-machine build, each annotated with knob settings,
// sampled means, and confidence-test verdicts. nil disables tracing
// (the default); every instrumentation site is nil-safe.
func (t *Tool) SetTracer(tr *telemetry.Tracer) { t.tracer = tr }

func (t *Tool) logf(format string, args ...interface{}) {
	if t.logW != nil {
		fmt.Fprintf(t.logW, format+"\n", args...)
	}
}

// Space returns the configured design space (for inspection).
func (t *Tool) Space() *knob.Space { return t.space }

// Baseline returns the production configuration µSKU measures against.
func (t *Tool) Baseline() knob.Config { return t.baseline }

// Apply retry policy for trial deployments: transient faults are
// retried with exponential backoff (charged to the trial's virtual
// clock), capped per attempt and bounded in count.
const (
	applyRetries    = 4
	applyBackoffSec = 5.0
	applyBackoffCap = 60.0
)

// applyWithRetry deploys cfg onto a trial server, absorbing transient
// injected faults (failed applies, stuck reboots). Backoff is charged
// to the caller's clock — trial-local under the parallel runtime, so
// concurrent retries never contend. Validation errors and faults that
// persist past the retry budget are returned.
func (t *Tool) applyWithRetry(srv *platform.Server, cfg knob.Config, clock *float64) error {
	backoff := applyBackoffSec
	for try := 0; ; try++ {
		_, err := srv.Apply(cfg)
		if err == nil {
			return nil
		}
		if !chaos.IsFault(err) || try >= applyRetries {
			return err
		}
		mApplyRetries.Inc()
		*clock += backoff
		backoff *= 2
		if backoff > applyBackoffCap {
			backoff = applyBackoffCap
		}
	}
}

// skipFault records a candidate setting abandoned because its trial
// faulted persistently, and reports whether err was such a fault.
func (t *Tool) skipFault(err error, what string) bool {
	if !chaos.IsFault(err) {
		return false
	}
	t.skipped++
	mKnobsSkipped.Inc()
	t.logf("  %s skipped: %v", what, err)
	return true
}

// Run executes the configured sweep and composes the soft SKU.
func (t *Tool) Run() (*Result, error) {
	mRuns.Inc()
	root := t.tracer.StartSpan("musku.run", "tuning")
	root.Set("service", t.prof.Name)
	root.Set("platform", t.sku.Name)
	root.Set("sweep", t.in.Sweep.String())
	root.Set("metric", t.in.Metric.String())
	t.span = root
	defer func() {
		t.span = nil
		root.End()
	}()
	res := &Result{
		Service:  t.prof.Name,
		Platform: t.sku.Name,
		Sweep:    t.in.Sweep,
		Metric:   t.in.Metric,
		Baseline: t.baseline,
		Stock:    sim.StockConfig(t.sku),
	}
	if t.rec != nil {
		conf := t.in.AB.Confidence
		if conf <= 0 || conf >= 1 {
			conf = 0.95 // mirror abtest's zero-value patching
		}
		t.decRoot = t.rec.Record(t.decParent, decision.RunStarted(
			t.prof.Name, t.sku.Name, t.in.Sweep.String(), t.in.Metric.String(),
			t.in.Seed, conf, t.in.AB.GuardrailPct))
	}
	if t.in.Twin && t.eval == nil {
		t.eval = t.newTwinEvaluator()
	}
	if t.eval != nil {
		// Calibrate the ladder against the run's anchor windows
		// (production and stock) — windows the run measures anyway as
		// round-one control and the final validations, so arming the twin
		// costs zero net windows. Serial, before any round: the fit is a
		// pure function of (SKU, profile, seed, metric).
		if err := t.eval.Calibrate(); err != nil {
			return nil, err
		}
		t.logf("twin: calibrated for %s on %s (metric %s)", t.prof.Name, t.sku.Name, t.in.Metric)
	}
	var composed knob.Config
	var err error
	switch t.in.Sweep {
	case SweepIndependent:
		composed, err = t.independentSweep(res)
	case SweepExhaustive:
		composed, err = t.exhaustiveSweep(res)
	case SweepHillClimb:
		composed, err = t.runSearch(res, newHillSearcher(t))
	case SweepHalving:
		composed, err = t.runSearch(res, newHalvingSearcher(t))
	case SweepCEM:
		composed, err = t.runSearch(res, newCEMSearcher(t))
	default:
		return nil, fmt.Errorf("core: unknown sweep mode %v", t.in.Sweep)
	}
	if err != nil {
		return nil, err
	}
	if err := t.sku.Validate(composed); err != nil {
		return nil, fmt.Errorf("core: composed soft SKU invalid: %w", err)
	}
	res.SoftSKU = composed
	// The sweep itself is what must fit between code pushes (§4); the
	// day-long deployment validations below are charged separately.
	res.VirtualHours = t.vclock / 3600

	// Final validation A/B tests: soft SKU vs hand-tuned production and
	// vs a stock re-install (§6.2, Fig 19). Knob benefits are
	// load-dependent (prefetching helps at the trough, hurts at the
	// bandwidth-saturated peak), so the final comparisons sample across
	// a full diurnal cycle rather than minutes at one phase — the
	// paper's "prolonged durations ... under diurnal load".
	vcfg := t.in.AB
	// The sweep's guardrail protects production from regressing trials;
	// the final deployment validations must instead measure the complete
	// delta across the diurnal cycle, so they never abort early.
	vcfg.GuardrailPct = 0
	if vcfg.MinSamples < 2000 {
		vcfg.MinSamples = 2000
	}
	if vcfg.MaxSamples < vcfg.MinSamples {
		vcfg.MaxSamples = vcfg.MinSamples
	}
	vcfg.SpacingSec = 86400.0 / float64(vcfg.MinSamples)
	save := t.in.AB
	t.in.AB = vcfg
	vspan := root.StartChild("validate.final", "tuning")
	specs := []trialSpec{
		t.newSpec(vspan, "final/production", t.baseline, composed),
		t.newSpec(vspan, "final/stock", res.Stock, composed),
	}
	t.in.AB = save
	// The final group measures the composed SKU; it chooses nothing,
	// and replay knows groups labeled "final" carry no winner.
	finSeq := -1
	if t.rec != nil {
		finSeq = t.rec.Record(t.decRoot, decision.SweepStarted("final", "", t.baseline.String()))
	}
	results := t.runTrials(specs)
	if res.VsProduction, err = t.mergeTrial(specs[0], results[0]); err != nil {
		vspan.End()
		return nil, err
	}
	t.recordTrial(finSeq, specs[0], results[0], "", "")
	if res.VsStock, err = t.mergeTrial(specs[1], results[1]); err != nil {
		vspan.End()
		return nil, err
	}
	t.recordTrial(finSeq, specs[1], results[1], "", "")
	vspan.Set("vs_production_pct", res.VsProduction.DeltaPct)
	vspan.Set("vs_stock_pct", res.VsStock.DeltaPct)
	vspan.End()
	if t.eval != nil {
		t.eval.CrossCheck(t.baseline)
		t.eval.CrossCheck(res.Stock)
		t.eval.CrossCheck(composed)
		if med := t.eval.MedianAbsErrPct(); med >= 0 {
			root.Set("twin_median_abs_err_pct", med)
			t.logf("  twin cross-check: median abs err %.2f%%", med)
		}
	}
	root.Set("soft_sku", composed.String())
	root.Set("reboots", t.reboots)
	res.Reboots = t.reboots
	res.Skipped = t.skipped
	res.Reverts = t.reverts
	if t.skipped > 0 || t.reverts > 0 {
		root.Set("skipped", t.skipped)
		root.Set("reverts", t.reverts)
		t.logf("  degradation: %d settings skipped, %d guardrail reverts", t.skipped, t.reverts)
	}
	if t.rec != nil {
		t.rec.Record(t.decRoot, decision.RunFinished(composed.String(),
			res.VsProduction.DeltaPct, res.VsStock.DeltaPct, t.skipped, t.reverts))
	}
	t.logf("soft SKU for %s on %s: %s", res.Service, res.Platform, composed)
	t.logf("  vs production: %s   vs stock: %s", res.VsProduction, res.VsStock)
	return res, nil
}

// independentSweep scales each knob one-by-one (§4): for every
// candidate setting it A/B-tests baseline-with-that-setting against
// the baseline, then the soft-SKU generator composes the most
// performant significant winner of each knob.
//
// Execution follows the three-phase parallel runtime (trial.go): the
// whole run's candidate trials are specified serially in design-space
// order, sharded across the worker pool, and merged back in that same
// order — so winner selection, logging, and clock accounting are
// bit-identical to a serial sweep.
func (t *Tool) independentSweep(res *Result) (knob.Config, error) {
	composed := t.baseline
	parent := t.span
	type entry struct {
		setting knob.Setting
		trial   int // index into specs; -1 for the baseline point
	}
	type plan struct {
		id      knob.ID
		ks      *telemetry.Span
		entries []entry
	}
	var specs []trialSpec
	var plans []plan
	for _, id := range t.space.Knobs() {
		mKnobsSwept.Inc()
		ks := parent.StartChild("sweep."+id.String(), "sweep")
		ks.Set("knob", id.String())
		ks.Set("baseline", t.baseline.Get(id).Name)
		ks.Set("settings", len(t.space.Values[id]))
		p := plan{id: id, ks: ks}
		for si, setting := range t.space.Values[id] {
			if setting == t.baseline.Get(id) {
				p.entries = append(p.entries, entry{setting: setting, trial: -1})
				continue
			}
			cfg := t.baseline.With(id, setting)
			if err := t.sku.Validate(cfg); err != nil {
				mConfigsPruned.Inc()
				continue // unrealizable point; µSKU skips it
			}
			mConfigsValidated.Inc()
			if id.RequiresReboot() {
				t.reboots++
			}
			specs = append(specs,
				t.newSpec(ks, fmt.Sprintf("sweep/%s/%d", id, si), t.baseline, cfg))
			p.entries = append(p.entries, entry{setting: setting, trial: len(specs) - 1})
		}
		plans = append(plans, p)
	}
	results := t.runTrials(specs)
	for pi, p := range plans {
		sweep := KnobSweep{Knob: p.id, Baseline: t.baseline.Get(p.id)}
		t.logf("sweeping %s (%d settings)", p.id, len(t.space.Values[p.id]))
		sweepSeq := -1
		if t.rec != nil {
			sweepSeq = t.rec.Record(t.decRoot,
				decision.SweepStarted("sweep/"+p.id.String(), p.id.String(), t.baseline.Get(p.id).Name))
		}
		var ptSeq []int // ledger seq per point (-1: baseline, unrecorded)
		bestIdx, bestDelta := -1, 0.0
		for _, en := range p.entries {
			if en.trial < 0 {
				sweep.Points = append(sweep.Points, Point{Setting: en.setting, IsBaseline: true})
				ptSeq = append(ptSeq, -1)
				continue
			}
			out, err := t.mergeTrial(specs[en.trial], results[en.trial])
			if err != nil {
				if t.skipFault(err, en.setting.Name) {
					t.recordSkip(sweepSeq, specs[en.trial], en.setting.Name, err)
					continue // degrade: drop the setting, not the sweep
				}
				for _, rest := range plans[pi:] {
					rest.ks.End()
				}
				return composed, err
			}
			sweep.Points = append(sweep.Points, Point{Setting: en.setting, Outcome: out})
			ptSeq = append(ptSeq, t.recordTrial(sweepSeq, specs[en.trial], results[en.trial], p.id.String(), en.setting.Name))
			t.logf("  %-12s %s", en.setting.Name, out)
			if out.Better() && out.DeltaPct > bestDelta {
				bestDelta = out.DeltaPct
				bestIdx = len(sweep.Points) - 1
			}
		}
		if t.rec != nil {
			for i := range sweep.Points {
				if sweep.Points[i].IsBaseline || ptSeq[i] < 0 {
					continue
				}
				if i == bestIdx {
					t.rec.Record(ptSeq[i], decision.ArmAccepted(p.id.String(), sweep.Points[i].Setting.Name, bestDelta))
				} else {
					o := sweep.Points[i].Outcome
					t.rec.Record(ptSeq[i], decision.ArmRejected(p.id.String(), sweep.Points[i].Setting.Name,
						o.DeltaPct, o.PValue, o.Significant))
				}
			}
			if bestIdx < 0 {
				t.rec.Record(sweepSeq, decision.BaselineKept(p.id.String(), sweep.Baseline.Name))
			}
		}
		if bestIdx >= 0 {
			sweep.Points[bestIdx].Chosen = true
			composed = composed.With(p.id, sweep.Points[bestIdx].Setting)
			t.logf("  -> chose %s (%+.2f%%)", sweep.Points[bestIdx].Setting.Name, bestDelta)
			p.ks.Set("chosen", sweep.Points[bestIdx].Setting.Name)
			p.ks.Set("delta_pct", bestDelta)
		} else {
			t.logf("  -> keeping production %s", sweep.Baseline.Name)
			p.ks.Set("chosen", sweep.Baseline.Name+" (kept)")
		}
		p.ks.End()
		res.Map = append(res.Map, sweep)
	}
	return composed, nil
}

// exhaustiveSweep explores the cross-product (§4). It refuses design
// spaces too large to finish between code pushes, as the paper notes
// exhaustive search is impractical for the full seven-knob space.
// Candidate points are enumerated serially, trialed in parallel, and
// scored in enumeration order.
func (t *Tool) exhaustiveSweep(res *Result) (knob.Config, error) {
	const maxPoints = 512
	if n := t.space.Size(); n > maxPoints {
		return t.baseline, fmt.Errorf(
			"core: exhaustive sweep over %d points cannot finish between code pushes; restrict 'knobs' (limit %d)",
			n, maxPoints)
	}
	var specs []trialSpec
	enum := 0
	t.space.Enumerate(t.baseline, func(cfg knob.Config) bool {
		enum++
		if cfg == t.baseline {
			return true
		}
		if err := t.sku.Validate(cfg); err != nil {
			mConfigsPruned.Inc()
			return true
		}
		mConfigsValidated.Inc()
		for _, id := range knob.Diff(t.baseline, cfg) {
			if id.RequiresReboot() {
				t.reboots++
				break
			}
		}
		specs = append(specs,
			t.newSpec(t.span, fmt.Sprintf("exhaustive/%d", enum-1), t.baseline, cfg))
		return true
	})
	type scored struct {
		cfg   knob.Config
		delta float64
	}
	best := scored{cfg: t.baseline}
	sweepSeq := -1
	if t.rec != nil {
		sweepSeq = t.rec.Record(t.decRoot, decision.SweepStarted("exhaustive", "", t.baseline.String()))
	}
	bestSpec := -1
	seqs := make([]int, len(specs))
	outs := make([]abtest.Outcome, len(specs))
	recorded := make([]bool, len(specs))
	results := t.runTrials(specs)
	for i, spec := range specs {
		out, err := t.mergeTrial(spec, results[i])
		if err != nil {
			if t.skipFault(err, spec.treatment.String()) {
				t.recordSkip(sweepSeq, spec, spec.treatment.String(), err)
				continue
			}
			return t.baseline, err
		}
		seqs[i] = t.recordTrial(sweepSeq, spec, results[i], "", spec.treatment.String())
		outs[i], recorded[i] = out, true
		if out.Better() && out.DeltaPct > best.delta {
			best = scored{cfg: spec.treatment, delta: out.DeltaPct}
			bestSpec = i
		}
	}
	if t.rec != nil {
		for i := range specs {
			if !recorded[i] {
				continue
			}
			if i == bestSpec {
				t.rec.Record(seqs[i], decision.ArmAccepted("", specs[i].treatment.String(), best.delta))
			} else {
				t.rec.Record(seqs[i], decision.ArmRejected("", specs[i].treatment.String(),
					outs[i].DeltaPct, outs[i].PValue, outs[i].Significant))
			}
		}
		if bestSpec < 0 {
			t.rec.Record(sweepSeq, decision.BaselineKept("", t.baseline.String()))
		}
	}
	res.ExhaustiveBest = best.delta
	t.logf("exhaustive best: %s (%+.2f%%)", best.cfg, best.delta)
	return best.cfg, nil
}

// FormatMap renders the design-space map as an aligned table.
func FormatMap(res *Result) string {
	var rows [][]string
	for _, sweep := range res.Map {
		for _, p := range sweep.Points {
			mark := ""
			if p.Chosen {
				mark = "<= chosen"
			}
			outcome := "baseline"
			if !p.IsBaseline {
				outcome = p.Outcome.String()
			}
			rows = append(rows, []string{sweep.Knob.String(), p.Setting.Name, outcome, mark})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return false }) // keep sweep order
	return formatTable([]string{"knob", "setting", "outcome", ""}, rows)
}

func formatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := ""
	emit := func(cells []string) {
		line := ""
		for i, c := range cells {
			for len(c) < widths[i] {
				c += " "
			}
			if i > 0 {
				line += "  "
			}
			line += c
		}
		for len(line) > 0 && line[len(line)-1] == ' ' {
			line = line[:len(line)-1]
		}
		out += line + "\n"
	}
	emit(header)
	for _, r := range rows {
		emit(r)
	}
	return out
}
