package core

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"softsku/internal/abtest"
	"softsku/internal/chaos"
	"softsku/internal/decision"
	"softsku/internal/knob"
	"softsku/internal/rng"
)

// TestBinarySearchSHPHazardBand pins the termination bug: with lo
// step-aligned and 2·step < hi-lo < 3·step, quantizing the lower
// third-point collapsed it onto lo (quant(200+43) = 200), so a "go
// right" verdict re-ran the identical probes forever. The fixed probes
// are clamped to step-multiples strictly inside (lo, hi), so every
// verdict narrows the interval.
func TestBinarySearchSHPHazardBand(t *testing.T) {
	tool, err := New(fastInput("Web", "Skylake18", knob.SHP))
	if err != nil {
		t.Fatal(err)
	}
	// lo=200 is step-aligned and hi-lo=130 sits in (100, 150): the
	// pre-fix code looped forever on this interval whenever the response
	// curve sent the search right (a regression hangs here until go
	// test's package timeout fires). The probe budget below is the
	// stronger assertion: termination in one or two probe pairs.
	best, tests, err := tool.BinarySearchSHP(200, 330, 50)
	if err != nil {
		t.Fatal(err)
	}
	if best < 200 || best > 330 {
		t.Fatalf("best %d escaped [lo, hi]", best)
	}
	if tests == 0 || tests > 4 {
		t.Fatalf("hazard-band interval should resolve in 1-2 probe pairs, spent %d tests", tests)
	}
}

// TestBinarySearchSHPProbesStayInterior sweeps every (lo, hi) shape
// around the step grid and asserts the probe budget stays within the
// interval-narrowing bound — the generalized form of the hazard-band
// regression. Each verdict must shrink hi-lo by at least one step, so
// the probe-pair count is bounded by (hi-lo)/step.
func TestBinarySearchSHPProbesStayInterior(t *testing.T) {
	tool, err := New(fastInput("Web", "Skylake18", knob.SHP))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ lo, hi, step int }{
		{200, 330, 50}, // hazard band, lo aligned
		{150, 280, 50}, // hazard band, lo aligned differently
		{0, 600, 50},   // the documented full range
		{100, 251, 50}, // hazard band, hi unaligned
		{0, 120, 50},   // barely above the 2·step guard
	} {
		_, tests, err := tool.BinarySearchSHP(c.lo, c.hi, c.step)
		if err != nil {
			t.Fatalf("(%d,%d,%d): %v", c.lo, c.hi, c.step, err)
		}
		if bound := 2 * ((c.hi - c.lo) / c.step); tests > bound {
			t.Fatalf("(%d,%d,%d): %d probes exceeds the narrowing bound %d", c.lo, c.hi, c.step, tests, bound)
		}
	}
}

// sigOutcome fabricates a significantly-better outcome with the given
// delta, for driving a Searcher's Observe directly.
func sigOutcome(deltaPct float64) ArmOutcome {
	return ArmOutcome{Outcome: abtest.Outcome{DeltaPct: deltaPct, Significant: true}}
}

// TestHillClimbCompoundsGains pins the compounding bugfix: per-round
// deltas are measured against the previous round's winner, so they
// chain multiplicatively. Two +10% rounds are +21% exactly — the old
// additive sum reported +20%.
func TestHillClimbCompoundsGains(t *testing.T) {
	tool, err := New(fastInput("Web", "Skylake18", knob.THP, knob.SHP))
	if err != nil {
		t.Fatal(err)
	}
	h := newHillSearcher(tool)
	for round := 0; round < 2; round++ {
		rd := h.Propose(round)
		if rd == nil || len(rd.Arms) == 0 {
			t.Fatalf("round %d proposed no arms", round)
		}
		outs := make([]ArmOutcome, len(rd.Arms))
		outs[0] = sigOutcome(10) // the first neighbour wins +10%
		for i := 1; i < len(outs); i++ {
			outs[i] = ArmOutcome{Outcome: abtest.Outcome{DeltaPct: -1}}
		}
		h.Observe(round, outs)
	}
	if _, gain := h.Best(); math.Abs(gain-21.0) > 1e-9 {
		t.Fatalf("two +10%% moves must compound to +21%%, got %+.6f%%", gain)
	}
}

// TestHillClimbGainMatchesLedger cross-checks the reported gain on a
// real run: Result.ExhaustiveBest must equal the product of the
// ledger's accepted moves (hill climb records ArmAccepted only for
// winning moves), compounded multiplicatively.
func TestHillClimbGainMatchesLedger(t *testing.T) {
	in := fastInput("Web", "Skylake18", knob.THP, knob.SHP)
	in.Sweep = SweepHillClimb
	tool, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	led := decision.NewLedger()
	tool.SetRecorder(led)
	res, err := tool.Run()
	if err != nil {
		t.Fatal(err)
	}
	compound := 1.0
	accepted := 0
	for _, e := range led.Events() {
		if e.Kind == decision.KindArmAccepted {
			compound *= 1 + e.DeltaPct/100
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("fixture should accept at least one move (THP always wins on Web)")
	}
	want := (compound - 1) * 100
	if math.Abs(res.ExhaustiveBest-want) > 1e-9 {
		t.Fatalf("ExhaustiveBest %+.6f%% != compounded ledger moves %+.6f%%", res.ExhaustiveBest, want)
	}
	// The additive sum differs from the compound whenever two or more
	// moves land; guard the fixture so the assertion above has teeth.
	if accepted > 1 {
		sum := 0.0
		for _, e := range led.Events() {
			if e.Kind == decision.KindArmAccepted {
				sum += e.DeltaPct
			}
		}
		if math.Abs(res.ExhaustiveBest-sum) < 1e-12 {
			t.Fatalf("gain %+.6f%% equals the additive sum; compounding regressed", res.ExhaustiveBest)
		}
	}
}

// TestSearchBudgetExhaustedEvent drives a climb whose round budget runs
// out before convergence: the driver must close the ledger with a
// terminal budget_exhausted event and log it, never just truncate.
func TestSearchBudgetExhaustedEvent(t *testing.T) {
	tool, err := New(fastInput("Web", "Skylake18", knob.THP, knob.SHP))
	if err != nil {
		t.Fatal(err)
	}
	led := decision.NewLedger()
	tool.SetRecorder(led)
	var logs bytes.Buffer
	tool.SetLogger(&logs)
	h := newHillSearcher(tool)
	h.maxRounds = 1 // Web improves on round 0, so the climb cannot converge in 1
	var res Result
	if _, err := tool.runSearch(&res, h); err != nil {
		t.Fatal(err)
	}
	if h.Done() {
		t.Fatal("fixture converged; it must exhaust the budget instead")
	}
	var term decision.Event
	for _, e := range led.Events() {
		if e.Kind == decision.KindBudgetExhausted {
			term = e
		}
	}
	if term.Kind == "" {
		t.Fatal("no budget_exhausted event recorded")
	}
	if term.Label != "hill climb" || term.Wave != 1 {
		t.Fatalf("terminal event misattributed: %+v", term)
	}
	if !strings.Contains(term.Detail, "best so far") {
		t.Fatalf("terminal event should carry the best-so-far config: %q", term.Detail)
	}
	if !strings.Contains(logs.String(), "round budget exhausted after 1 rounds") {
		t.Fatalf("budget exhaustion not logged:\n%s", logs.String())
	}
}

// searchLedgerAt mirrors ledgerAt for the adaptive searchers: run one
// tuning pass in the given mode and return the serialized ledger, the
// winning configuration, and the progress log.
func searchLedgerAt(t *testing.T, mode SweepMode, par int, withChaos bool) ([]byte, string, string) {
	t.Helper()
	var in Input
	if withChaos {
		in = fastInput("Web", "Skylake18", knob.THP, knob.CoreFreq)
		in.AB.GuardrailPct = 1
	} else {
		in = fastInput("Web", "Skylake18", knob.THP, knob.SHP)
	}
	in.Sweep = mode
	in.Parallel = par
	tool, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	if withChaos {
		tool.SetChaos(chaos.New(42, chaos.DefaultConfig()))
	}
	led := decision.NewLedger()
	tool.SetRecorder(led)
	var logs bytes.Buffer
	tool.SetLogger(&logs)
	res, err := tool.Run()
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := led.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), res.SoftSKU.String(), logs.String()
}

// TestSearcherLedgerBitIdentical extends the flight recorder's
// acceptance test to every pluggable searcher: winner, progress log,
// and ledger bytes must be identical at -parallel 1 and -parallel 8,
// with and without a chaos engine attached. This is the determinism
// contract each Searcher inherits from the runSearch driver.
func TestSearcherLedgerBitIdentical(t *testing.T) {
	for _, mode := range []SweepMode{SweepHillClimb, SweepHalving, SweepCEM} {
		for _, withChaos := range []bool{false, true} {
			name := mode.String() + "/plain"
			if withChaos {
				name = mode.String() + "/chaos"
			}
			t.Run(name, func(t *testing.T) {
				serial, serialWin, serialLog := searchLedgerAt(t, mode, 1, withChaos)
				par, parWin, parLog := searchLedgerAt(t, mode, 8, withChaos)
				if serialWin != parWin {
					t.Fatalf("winner diverged: -parallel 1 chose %s, -parallel 8 chose %s", serialWin, parWin)
				}
				if serialLog != parLog {
					t.Fatalf("progress log diverged:\nserial:\n%s\nparallel:\n%s", serialLog, parLog)
				}
				if !bytes.Equal(serial, par) {
					t.Fatalf("ledger diverged between -parallel 1 and 8:\n%s",
						firstLineDiff(serial, par))
				}
				if len(serial) == 0 {
					t.Fatal("run recorded an empty ledger")
				}
			})
		}
	}
}

// TestSearchRNGStreamsDoNotAlias asserts the searchers' label schemes
// never collapse two distinct streams onto one seed: population
// sampling, CEM generations, and every plausible trial label must
// derive pairwise-distinct rng roots from the same run seed (label
// schemes are observable behavior — see DESIGN.md §10).
func TestSearchRNGStreamsDoNotAlias(t *testing.T) {
	var labels []string
	labels = append(labels, "search/halving/population")
	for g := 0; g < cemGenerations; g++ {
		labels = append(labels, fmt.Sprintf("search/cem/gen/%d", g))
	}
	for round := 0; round < 6; round++ {
		for arm := 0; arm < halvingPopulation; arm++ {
			labels = append(labels, fmt.Sprintf("halving/%d/%d", round, arm))
		}
		for arm := 0; arm < cemPopulation; arm++ {
			labels = append(labels, fmt.Sprintf("cem/%d/%d", round, arm))
		}
		for _, id := range []knob.ID{knob.THP, knob.SHP, knob.CoreFreq} {
			for ni := 0; ni < 7; ni++ {
				labels = append(labels, fmt.Sprintf("hill/%d/%s/%d", round, id, ni))
			}
		}
	}
	for _, seed := range []uint64{1, 42} {
		seen := map[uint64]string{}
		for _, l := range labels {
			d := rng.Derive(seed, l)
			if prev, dup := seen[d]; dup {
				t.Fatalf("seed %d: labels %q and %q derive the same stream %#x", seed, prev, l, d)
			}
			seen[d] = l
		}
	}
}
