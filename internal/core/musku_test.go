package core

import (
	"strings"
	"testing"

	"softsku/internal/knob"
	"softsku/internal/platform"
	"softsku/internal/workload"
)

func TestBuildSpaceFullSeven(t *testing.T) {
	sku := platform.Skylake18()
	web, _ := workload.ByName("Web")
	s := BuildSpace(sku, web, nil)
	ids := s.Knobs()
	if len(ids) != 7 {
		t.Fatalf("Web on Skylake should expose all 7 knobs, got %v", ids)
	}
	// Paper ranges: 1.6–2.2 GHz core = 7 steps; 1.4–1.8 uncore = 5;
	// CDP off + 10 splits of 11 ways; 5 prefetch configs; 3 THP; 7 SHP.
	if n := len(s.Values[knob.CoreFreq]); n != 7 {
		t.Errorf("core freq settings = %d", n)
	}
	if n := len(s.Values[knob.UncoreFreq]); n != 5 {
		t.Errorf("uncore settings = %d", n)
	}
	if n := len(s.Values[knob.CDP]); n != 11 {
		t.Errorf("CDP settings = %d, want off + 10 splits", n)
	}
	if n := len(s.Values[knob.Prefetch]); n != 5 {
		t.Errorf("prefetch settings = %d", n)
	}
	if n := len(s.Values[knob.THP]); n != 3 {
		t.Errorf("THP settings = %d", n)
	}
	if n := len(s.Values[knob.SHP]); n != 7 {
		t.Errorf("SHP settings = %d, want 0..600 step 100", n)
	}
}

func TestBuildSpaceDisablesInapplicableKnobs(t *testing.T) {
	// Ads1 never allocates SHPs (§4) and its load-balancer design
	// cannot tolerate reboots (§6.1(3)) — so SHP and core count are out.
	sku := platform.Skylake18()
	ads1, _ := workload.ByName("Ads1")
	s := BuildSpace(sku, ads1, nil)
	for _, id := range s.Knobs() {
		if id == knob.SHP {
			t.Error("SHP must be disabled for Ads1")
		}
		if id == knob.CoreCount {
			t.Error("core count (reboot) must be disabled for Ads1")
		}
	}
}

func TestBuildSpaceKnobRestriction(t *testing.T) {
	sku := platform.Skylake18()
	web, _ := workload.ByName("Web")
	s := BuildSpace(sku, web, []knob.ID{knob.THP})
	ids := s.Knobs()
	if len(ids) != 1 || ids[0] != knob.THP {
		t.Fatalf("restricted space = %v", ids)
	}
}

func TestNewRejectsMIPSForCache(t *testing.T) {
	// §4: MIPS is not proportional to Cache's throughput.
	if _, err := New(DefaultInput("Cache1", "")); err == nil {
		t.Fatal("Cache1 with MIPS metric must be rejected")
	}
	in := DefaultInput("Cache1", "")
	in.Metric = MetricQPS
	if _, err := New(in); err != nil {
		t.Fatalf("Cache1 with QPS metric should work: %v", err)
	}
}

func TestNewDefaultsPlatformFromProfile(t *testing.T) {
	tool, err := New(DefaultInput("Ads2", ""))
	if err != nil {
		t.Fatal(err)
	}
	if tool.sku.Name != "Skylake20" {
		t.Fatalf("Ads2 should default to Skylake20, got %s", tool.sku.Name)
	}
}

// fastInput restricts knobs and shrinks the A/B budget so unit tests
// run in seconds.
func fastInput(svc, plat string, ids ...knob.ID) Input {
	in := DefaultInput(svc, plat)
	in.Knobs = ids
	in.AB.MinSamples = 150
	in.AB.MaxSamples = 1500
	return in
}

func TestIndependentSweepTHPSHP(t *testing.T) {
	tool, err := New(fastInput("Web", "Skylake18", knob.THP, knob.SHP))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tool.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Map) != 2 {
		t.Fatalf("expected 2 knob sweeps, got %d", len(res.Map))
	}
	// Fig 18: THP always wins; SHP sweet spot at 300 beats the 200
	// production reservation.
	thp := res.Map[0]
	if best := thp.Best(); best == nil || best.Setting.THP != knob.THPAlways {
		t.Errorf("THP sweep should choose always: %+v", thp)
	}
	shp := res.Map[1]
	if best := shp.Best(); best == nil || best.Setting.Int != 300 {
		got := "baseline"
		if best != nil {
			got = best.Setting.Name
		}
		t.Errorf("SHP sweep should choose 300, got %s", got)
	}
	if res.SoftSKU.THP != knob.THPAlways || res.SoftSKU.SHPCount != 300 {
		t.Errorf("composed soft SKU wrong: %v", res.SoftSKU)
	}
	if !res.VsProduction.Better() {
		t.Errorf("soft SKU must beat production: %v", res.VsProduction)
	}
	if res.Reboots == 0 {
		t.Error("SHP sweeps require reboots")
	}
	if res.VirtualHours <= 0 {
		t.Error("virtual tuning time must accumulate")
	}
}

func TestSweepKeepsProductionFrequency(t *testing.T) {
	// Fig 14: maximum core frequency is already optimal — µSKU should
	// match expert tuning and keep 2.2 GHz.
	tool, err := New(fastInput("Web", "Skylake18", knob.CoreFreq))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tool.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SoftSKU.CoreFreqMHz != 2200 {
		t.Fatalf("chose %d MHz, expert choice is 2200", res.SoftSKU.CoreFreqMHz)
	}
	// Every below-max setting must have been measured as a regression.
	for _, p := range res.Map[0].Points {
		if p.IsBaseline {
			continue
		}
		if !p.Outcome.Worse() {
			t.Errorf("setting %s should be significantly worse: %v", p.Setting.Name, p.Outcome)
		}
	}
}

func TestExhaustiveSweepSmallSpace(t *testing.T) {
	in := fastInput("Web", "Skylake18", knob.THP)
	in.Sweep = SweepExhaustive
	tool, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tool.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SoftSKU.THP != knob.THPAlways {
		t.Fatalf("exhaustive sweep should find THP always, got %v", res.SoftSKU.THP)
	}
}

func TestExhaustiveSweepRefusesHugeSpace(t *testing.T) {
	in := DefaultInput("Web", "Skylake18")
	in.Sweep = SweepExhaustive // full 7-knob cross product
	tool, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tool.Run(); err == nil ||
		!strings.Contains(err.Error(), "code pushes") {
		t.Fatalf("huge exhaustive space must be refused, got %v", err)
	}
}

func TestHillClimbImproves(t *testing.T) {
	in := fastInput("Web", "Skylake18", knob.THP, knob.SHP)
	in.Sweep = SweepHillClimb
	tool, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tool.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.VsProduction.Better() {
		t.Fatalf("hill climb should find an improvement: %v", res.VsProduction)
	}
}

func TestBinarySearchSHP(t *testing.T) {
	in := fastInput("Web", "Skylake18", knob.SHP)
	tool, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	best, tests, err := tool.BinarySearchSHP(0, 600, 50)
	if err != nil {
		t.Fatal(err)
	}
	if best < 200 || best > 450 {
		t.Fatalf("binary search found %d, expected near the 300 sweet spot", best)
	}
	if tests >= 13 {
		t.Fatalf("binary search should beat the 13-point linear sweep: %d tests", tests)
	}
}

func TestBinarySearchSHPRejectsNonUsers(t *testing.T) {
	tool, err := New(fastInput("Ads1", "Skylake18", knob.THP))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tool.BinarySearchSHP(0, 600, 50); err == nil {
		t.Fatal("Ads1 does not use SHPs; search must refuse")
	}
}

func TestValidateDeployment(t *testing.T) {
	in := fastInput("Web", "Skylake18", knob.THP)
	tool, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	soft := tool.Baseline().With(knob.THP, knob.THPSetting(knob.THPAlways)).
		With(knob.SHP, knob.IntSetting("300", 300))
	v, err := tool.Validate(soft, 3, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Pushes) != 3 {
		t.Fatalf("pushes = %d", len(v.Pushes))
	}
	if !v.StableAdvantage || v.MeanDeltaPct <= 0 {
		t.Fatalf("soft SKU advantage should be stable across code pushes: %+v", v.Pushes)
	}
	// ODS must hold both QPS series per push, plus the mirrored
	// telemetry series that share the store.
	qps, mirrored := 0, 0
	for _, n := range v.Store.Names() {
		switch {
		case strings.HasPrefix(n, "push"):
			qps++
		case strings.HasPrefix(n, "telemetry/"):
			mirrored++
		}
	}
	if qps != 6 {
		t.Fatalf("QPS series = %d, want 6 (%v)", qps, v.Store.Names())
	}
	if mirrored == 0 {
		t.Fatalf("no telemetry series mirrored into ODS: %v", v.Store.Names())
	}
	if v.Store.Len("push0/softsku.qps") != 48 {
		t.Fatalf("samples per push = %d", v.Store.Len("push0/softsku.qps"))
	}
	// Mirrored series carry one point per push.
	if got := v.Store.Len("telemetry/softsku_sim_events_total"); got != 3 {
		t.Fatalf("mirrored points = %d, want 3", got)
	}
}

func TestFormatMap(t *testing.T) {
	tool, err := New(fastInput("Web", "Skylake18", knob.THP))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tool.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := FormatMap(res)
	if !strings.Contains(out, "thp") || !strings.Contains(out, "always") {
		t.Fatalf("map table missing rows:\n%s", out)
	}
	if !strings.Contains(out, "<= chosen") {
		t.Fatalf("map table missing chosen marker:\n%s", out)
	}
}

func TestPerfPerWattMetric(t *testing.T) {
	// §7 extension: optimizing MIPS/W instead of MIPS flips the core
	// frequency choice for memory-bound Web — µSKU trades peak
	// performance for efficiency.
	in := fastInput("Web", "Skylake18", knob.CoreFreq)
	in.Metric = MetricPerfPerWatt
	tool, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tool.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SoftSKU.CoreFreqMHz >= 2200 {
		t.Fatalf("perf/watt tuning should pick a lower frequency, got %d MHz",
			res.SoftSKU.CoreFreqMHz)
	}
	if !res.VsProduction.Better() {
		t.Fatalf("efficiency soft SKU should beat production on MIPS/W: %v", res.VsProduction)
	}
}

func TestParsePerfWattMetric(t *testing.T) {
	in, err := ParseInput("microservice = Web\nmetric = perfwatt\n")
	if err != nil || in.Metric != MetricPerfPerWatt {
		t.Fatalf("parse perfwatt: %+v %v", in, err)
	}
}
