package core

import (
	"testing"

	"softsku/internal/chaos"
	"softsku/internal/knob"
	"softsku/internal/platform"
)

// failFirstN faults the first n knob applies, then heals — a transient
// deployment outage.
type failFirstN struct {
	chaos.Injector
	n int
}

func (f *failFirstN) ApplyFault(target string) error {
	if f.n > 0 {
		f.n--
		return &chaos.FaultError{Kind: "apply-failed", Target: target}
	}
	return nil
}

func TestApplyWithRetryAbsorbsTransientFaults(t *testing.T) {
	tool, err := New(fastInput("Web", "Skylake18", knob.THP))
	if err != nil {
		t.Fatal(err)
	}
	// Two consecutive failures sit well inside the retry budget.
	tool.SetChaos(&failFirstN{Injector: chaos.Disabled, n: 2})
	srv, err := platform.NewServer(tool.sku, tool.baseline)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetChaos(tool.chaos)
	target := tool.baseline.With(knob.THP, tool.space.Values[knob.THP][0])
	clock := 0.0
	if err := tool.applyWithRetry(srv, target, &clock); err != nil {
		t.Fatalf("transient faults must be absorbed: %v", err)
	}
	if srv.Config() != target {
		t.Fatalf("retry succeeded but config not applied: %v", srv.Config())
	}
	if clock <= 0 {
		t.Fatal("retries must charge backoff to the caller's virtual clock")
	}
}

func TestApplyWithRetryGivesUpOnPersistentFault(t *testing.T) {
	tool, err := New(fastInput("Web", "Skylake18", knob.THP))
	if err != nil {
		t.Fatal(err)
	}
	tool.SetChaos(chaos.New(1, chaos.Config{ApplyFailPct: 1}))
	srv, err := platform.NewServer(tool.sku, tool.baseline)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetChaos(tool.chaos)
	before := srv.Config()
	clock := 0.0
	err = tool.applyWithRetry(srv, tool.baseline.With(knob.THP, tool.space.Values[knob.THP][0]), &clock)
	if !chaos.IsFault(err) {
		t.Fatalf("persistent fault must surface as a chaos fault, got %v", err)
	}
	if srv.Config() != before {
		t.Fatal("failed applies must leave server state untouched")
	}
}

func TestSweepSkipsPersistentlyFaultedSetting(t *testing.T) {
	in := fastInput("Web", "Skylake18", knob.THP)
	tool, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	// Enough failures to exhaust one deployment's retry budget (5
	// attempts), then one more so the next deployment retries once and
	// recovers: exactly one candidate is skipped, the sweep continues.
	tool.SetChaos(&failFirstN{Injector: chaos.Disabled, n: applyRetries + 2})
	res, err := tool.Run()
	if err != nil {
		t.Fatalf("a faulted setting must degrade, not abort the run: %v", err)
	}
	if res.Skipped != 1 {
		t.Fatalf("expected exactly 1 skipped setting, got %d", res.Skipped)
	}
	// The untouched knobs must come through uncorrupted.
	if res.SoftSKU.CoreFreqMHz != 2200 {
		t.Fatalf("skip must not corrupt other knobs: %v", res.SoftSKU)
	}
}

func TestGuardrailRevertRestoresControlConfig(t *testing.T) {
	// Fig 14: every below-production frequency is a strong regression —
	// with a guardrail armed, each such trial must abort early and put
	// the treatment server back on the control configuration.
	in := fastInput("Web", "Skylake18", knob.CoreFreq)
	in.AB.GuardrailPct = 1
	tool, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tool.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Reverts == 0 {
		t.Fatal("regressing frequency settings should have tripped the guardrail")
	}
	if res.SoftSKU.CoreFreqMHz != 2200 {
		t.Fatalf("guardrail must not change the composition: chose %d MHz", res.SoftSKU.CoreFreqMHz)
	}
	// Round-trip: every reverted treatment server must decode back to
	// the control (baseline) configuration, not the config it trialed.
	reverted := 0
	for key, srv := range tool.servers {
		if got := srv.Config(); got.String() != key {
			if got != tool.baseline {
				t.Fatalf("server %q reverted to %v, want baseline %v", key, got, tool.baseline)
			}
			reverted++
		}
	}
	if reverted == 0 {
		t.Fatal("no trial server was actually reverted")
	}
	if reverted != res.Reverts {
		t.Fatalf("reverted servers %d != recorded reverts %d", reverted, res.Reverts)
	}
}

func TestRunSurvivesDefaultChaos(t *testing.T) {
	// Acceptance: a full tuning run completes under the default fault
	// mix, recording its degradation instead of aborting.
	in := fastInput("Web", "Skylake18", knob.THP, knob.CoreFreq)
	in.AB.GuardrailPct = 1
	tool, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	eng := chaos.New(42, chaos.DefaultConfig())
	tool.SetChaos(eng)
	res, err := tool.Run()
	if err != nil {
		t.Fatalf("run must survive default chaos: %v", err)
	}
	if res.SoftSKU.THP != knob.THPAlways || res.SoftSKU.CoreFreqMHz != 2200 {
		t.Fatalf("chaos must not corrupt the composition: %v", res.SoftSKU)
	}
	if res.Reverts == 0 {
		t.Fatal("guardrail reverts should have been recorded (frequency regressions)")
	}
	if len(eng.Events()) == 0 {
		t.Fatal("default chaos produced no fault events")
	}
}

func TestChaosRunsAreDeterministic(t *testing.T) {
	// Acceptance: same chaos seed ⇒ identical fault schedule AND
	// identical composed soft SKU.
	run := func(seed uint64) (string, string, int) {
		in := fastInput("Web", "Skylake18", knob.THP)
		in.AB.GuardrailPct = 1
		tool, err := New(in)
		if err != nil {
			t.Fatal(err)
		}
		eng := chaos.New(seed, chaos.DefaultConfig())
		tool.SetChaos(eng)
		res, err := tool.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.SoftSKU.String(), eng.Fingerprint(), len(eng.Events())
	}
	sku1, fp1, ev1 := run(7)
	sku2, fp2, ev2 := run(7)
	if sku1 != sku2 {
		t.Fatalf("same seed composed different soft SKUs: %s vs %s", sku1, sku2)
	}
	if fp1 != fp2 || ev1 != ev2 {
		t.Fatalf("same seed produced different fault schedules: %s (%d) vs %s (%d)", fp1, ev1, fp2, ev2)
	}
	if _, fp3, _ := run(8); fp3 == fp1 {
		t.Fatal("different seeds should produce different fault schedules")
	}
}
