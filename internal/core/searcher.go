package core

import (
	"softsku/internal/abtest"
	"softsku/internal/decision"
	"softsku/internal/knob"
)

// The pluggable search layer (ROADMAP item 3). A Searcher is a
// cross-knob optimizer that decides *which* configurations to measure;
// runSearch is the one driver that decides *how* — it owns the
// three-phase trial runtime (trial.go), SKU validation, reboot
// accounting, span lifecycle, and every ledger append, so all
// searchers inherit the determinism contract for free:
//
//   - Propose runs on the serial phase, so any randomness a searcher
//     draws must come from rng streams derived from (run seed, search
//     label) — never from execution order or a global source.
//   - Trial labels seed the trials' own streams, so a searcher's label
//     scheme is part of its observable behaviour (DESIGN.md §10).
//   - Observe sees outcomes in arm order, exactly as a serial run
//     would have produced them, and returns its verdicts as data; the
//     driver replays them into spans, logs, and the ledger in one
//     fixed order.
//
// hillSearcher (search.go), halvingSearcher (searcher_halving.go), and
// cemSearcher (searcher_cem.go) are the three implementations, wired
// through SweepMode / `musku -search`.

// SearchArm is one candidate configuration a searcher wants measured
// against the round's control.
type SearchArm struct {
	// Label uniquely names the trial within the run and seeds its rng
	// streams; changing a label scheme changes measured outcomes.
	Label  string
	Config knob.Config
	// Knob/Setting name the arm in ledger events: the moved knob and
	// setting for single-knob arms, or "" and a stable arm tag for
	// multi-knob arms.
	Knob    string
	Setting string
}

// SearchRound is one Propose result: a batch of arms that may run
// concurrently because no arm's spec depends on another's outcome.
type SearchRound struct {
	Span    string      // telemetry span name, e.g. "sweep.round3"
	Label   string      // ledger group label, e.g. "hill/3"
	Control knob.Config // configuration every arm is measured against
	Arms    []SearchArm
	// AB overrides the run's A/B budget for this round's trials —
	// successive halving shortens early rungs with it. nil keeps the
	// run's configuration.
	AB *abtest.Config
}

// ArmOutcome is one arm's measurement as seen by Observe. Exactly one
// of Pruned/TwinPruned/Skipped is set when Outcome is absent: pruned
// arms failed SKU validation and never ran; twin-pruned arms were
// discarded on a tiered-fidelity prediction before any window ran;
// skipped arms faulted persistently under chaos and were abandoned.
type ArmOutcome struct {
	Outcome    abtest.Outcome
	Pruned     bool
	TwinPruned bool
	Skipped    bool
}

// Measured reports whether the arm produced a usable outcome.
func (o ArmOutcome) Measured() bool { return !o.Pruned && !o.TwinPruned && !o.Skipped }

// SpanAttr is one key/value annotation for the round's span, applied
// in order.
type SpanAttr struct {
	Key   string
	Value interface{}
}

// RoundVerdict is everything a searcher decided about a round,
// returned as data so the driver can replay it deterministically.
type RoundVerdict struct {
	// Accepted marks the arms kept by this round (hill's winning move,
	// halving's surviving half, CEM's elite fraction); every other
	// measured arm is recorded as rejected. nil rejects all.
	Accepted []bool
	Attrs    []SpanAttr       // round-span annotations, in order
	Events   []decision.Event // extra ledger events under the round group
	Logs     []string         // progress lines, emitted after the span ends
}

// Searcher is a pluggable design-space optimizer. The driver calls
// Propose/Observe in lockstep until Propose returns nil (round budget
// spent) or Done reports the searcher converged on its own terms.
type Searcher interface {
	// Name labels the searcher in logs and terminal ledger events.
	Name() string
	// Propose returns round r's arms, or nil when the searcher has no
	// more rounds to spend (converged, or out of budget).
	Propose(round int) *SearchRound
	// Observe receives the round's outcomes, indexed like Arms, and
	// returns the searcher's verdicts. Called once per proposed round,
	// on the serial merge phase.
	Observe(round int, outs []ArmOutcome) RoundVerdict
	// Done reports convergence. A nil Propose with Done()==false means
	// the round budget ran out first — the driver records a terminal
	// budget_exhausted event so the ledger never just truncates.
	Done() bool
	// Best returns the best configuration found so far and its gain
	// over the baseline in percent (compounded across moves for
	// searchers that chain rounds).
	Best() (knob.Config, float64)
}

// runSearch drives one Searcher to completion over the parallel trial
// runtime. Per round: build specs serially in arm order (validate,
// count reboots, split chaos streams), fan the trials out, merge in
// arm order, hand the outcomes to Observe, and replay its verdict into
// the span, ledger, and log — the exact event order the inline hill
// climber produced before it was extracted behind this interface.
func (t *Tool) runSearch(res *Result, s Searcher) (knob.Config, error) {
	parent := t.span
	rounds := 0
	for round := 0; ; round++ {
		rd := s.Propose(round)
		if rd == nil {
			break
		}
		rounds++
		rs := parent.StartChild(rd.Span, "sweep")
		specs := make([]trialSpec, 0, len(rd.Arms))
		specIdx := make([]int, len(rd.Arms)) // arm -> spec index; -1 pruned
		outs := make([]ArmOutcome, len(rd.Arms))
		save := t.in.AB
		if rd.AB != nil {
			t.in.AB = *rd.AB
		}
		// Tiered-fidelity ladder (DESIGN.md §16): score the round's
		// control once, then let predictions veto arms before a spec —
		// and hence a window — exists for them. All on the serial phase,
		// so the prune set is fixed by the round structure, never by
		// worker scheduling.
		var ctrlScore float64
		var ctrlRung string
		ctrlOK := false
		if t.eval != nil {
			ctrlScore, ctrlRung, ctrlOK = t.eval.Score(rd.Control)
			ctrlOK = ctrlOK && ctrlScore > 0
		}
		var pruneEvents []decision.Event
		for i, arm := range rd.Arms {
			specIdx[i] = -1
			if err := t.sku.Validate(arm.Config); err != nil {
				mConfigsPruned.Inc()
				outs[i].Pruned = true
				continue
			}
			if ctrlOK {
				if armScore, rung, ok := t.eval.Score(arm.Config); ok {
					margin := t.eval.Margin(rung)
					if m := t.eval.Margin(ctrlRung); m > margin {
						margin = m
					}
					delta := (armScore - ctrlScore) / ctrlScore * 100
					if delta < -margin {
						mConfigsTwinPruned.Inc()
						outs[i].TwinPruned = true
						pruneEvents = append(pruneEvents, decision.TwinPruned(
							arm.Knob, arm.Setting, arm.Label, delta, margin, rung,
							ctrlScore, armScore, t.in.Metric.String()))
						continue
					}
				}
			}
			mConfigsValidated.Inc()
			for _, id := range knob.Diff(rd.Control, arm.Config) {
				if id.RequiresReboot() {
					t.reboots++
					break
				}
			}
			specs = append(specs, t.newSpec(rs, arm.Label, rd.Control, arm.Config))
			specIdx[i] = len(specs) - 1
		}
		t.in.AB = save
		roundSeq := -1
		if t.rec != nil {
			roundSeq = t.rec.Record(t.decRoot,
				decision.SweepStarted(rd.Label, "", rd.Control.String()))
			for _, e := range pruneEvents {
				t.rec.Record(roundSeq, e)
			}
		}
		results := t.runTrials(specs)
		seqs := make([]int, len(rd.Arms))
		recorded := make([]bool, len(rd.Arms))
		for i, arm := range rd.Arms {
			si := specIdx[i]
			if si < 0 {
				continue
			}
			out, err := t.mergeTrial(specs[si], results[si])
			if err != nil {
				if t.skipFault(err, arm.Setting) {
					t.recordSkip(roundSeq, specs[si], arm.Setting, err)
					outs[i].Skipped = true
					continue
				}
				rs.End()
				best, _ := s.Best()
				return best, err
			}
			seqs[i] = t.recordTrial(roundSeq, specs[si], results[si], arm.Knob, arm.Setting)
			outs[i].Outcome = out
			recorded[i] = true
		}
		if t.eval != nil {
			// Every window the round measured doubles as a cross-check
			// sample: the twin predicted these configurations microseconds
			// ago, the simulator just told the truth.
			t.eval.CrossCheck(rd.Control)
			for i, arm := range rd.Arms {
				if recorded[i] {
					t.eval.CrossCheck(arm.Config)
				}
			}
		}
		v := s.Observe(round, outs)
		if t.rec != nil {
			for i, arm := range rd.Arms {
				if !recorded[i] {
					continue
				}
				if i < len(v.Accepted) && v.Accepted[i] {
					t.rec.Record(seqs[i], decision.ArmAccepted(arm.Knob, arm.Setting, outs[i].Outcome.DeltaPct))
				} else {
					o := outs[i].Outcome
					t.rec.Record(seqs[i], decision.ArmRejected(arm.Knob, arm.Setting,
						o.DeltaPct, o.PValue, o.Significant))
				}
			}
		}
		for _, a := range v.Attrs {
			rs.Set(a.Key, a.Value)
		}
		rs.End()
		if t.rec != nil {
			for _, e := range v.Events {
				t.rec.Record(roundSeq, e)
			}
		}
		for _, line := range v.Logs {
			t.logf("%s", line)
		}
		if s.Done() {
			break
		}
	}
	best, gain := s.Best()
	res.ExhaustiveBest = gain
	if !s.Done() {
		// The round budget ran out before the searcher's own stopping
		// rule fired. Without a terminal event the ledger would just
		// truncate — indistinguishable from a crash in `skutrace tree`.
		if t.rec != nil {
			t.rec.Record(t.decRoot, decision.BudgetExhausted(s.Name(), rounds, best.String()))
		}
		t.logf("%s: round budget exhausted after %d rounds (best so far %s)", s.Name(), rounds, best)
	}
	return best, nil
}
