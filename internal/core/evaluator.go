package core

import (
	"softsku/internal/knob"
	"softsku/internal/twin"
)

// Evaluator is the tiered-fidelity ladder the search layer consults
// before spending a characterization window on a candidate (DESIGN.md
// §16): Score answers from the cheapest rung that can — an analytical
// twin prediction or an exact repricing of a cached window — and
// Margin says how much predicted regression that rung's answer must
// show before the driver may discard the candidate unmeasured. The
// contract mirrors the rest of the determinism story: every method is
// called only from the run's serial phases, and implementations must
// return identical answers at any -parallel and under chaos.
//
// twin.Evaluator is the production implementation; the interface is
// satisfied structurally so the twin package never imports core.
type Evaluator interface {
	// Calibrate fits the model against real windows for the run's anchor
	// configurations. Called once, on the serial phase, before any round.
	Calibrate() error
	// Score predicts the optimization metric for cfg. rung names the
	// fidelity level that answered; ok is false when no rung can.
	Score(cfg knob.Config) (score float64, rung string, ok bool)
	// Margin is the pruning safety margin (percent of the control score)
	// required of predictions from the given rung.
	Margin(rung string) float64
	// CrossCheck compares the model against a configuration whose window
	// was just measured, feeding the continuous error telemetry.
	CrossCheck(cfg knob.Config)
	// MedianAbsErrPct summarizes the cross-check error so far (-1 before
	// any check).
	MedianAbsErrPct() float64
}

// SetEvaluator attaches a tiered-fidelity evaluator to the tool: search
// rounds score every candidate arm against the round's control and
// discard — without measuring — arms whose predicted regression clears
// the rung's safety margin, recording each discard as a twin_pruned
// ledger event. nil (the default, unless the input file says `twin =
// on`) measures every validated arm, bit-identical to the pre-ladder
// pipeline.
func (t *Tool) SetEvaluator(e Evaluator) { t.eval = e }

// Evaluator returns the attached evaluator (nil if none).
func (t *Tool) Evaluator() Evaluator { return t.eval }

// newTwinEvaluator builds the default ladder — the analytical twin
// calibrated for this run's service, platform, seed, and metric.
func (t *Tool) newTwinEvaluator() Evaluator {
	return twin.NewEvaluator(t.sku, t.prof, t.in.Seed, t.prof.MaxCPUUtil,
		twin.MetricFor(t.in.Metric.String()))
}
