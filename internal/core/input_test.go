package core

import (
	"strings"
	"testing"

	"softsku/internal/knob"
)

func TestParseInputFull(t *testing.T) {
	in, err := ParseInput(`
# µSKU input file
microservice = Web
platform     = Skylake18
sweep        = independent
metric       = mips
knobs        = thp, shp
seed         = 42
max_samples  = 5000
`)
	if err != nil {
		t.Fatal(err)
	}
	if in.Microservice != "Web" || in.Platform != "Skylake18" {
		t.Fatalf("target: %+v", in)
	}
	if in.Sweep != SweepIndependent || in.Metric != MetricMIPS {
		t.Fatalf("modes: %+v", in)
	}
	if len(in.Knobs) != 2 || in.Knobs[0] != knob.THP || in.Knobs[1] != knob.SHP {
		t.Fatalf("knobs: %v", in.Knobs)
	}
	if in.Seed != 42 || in.AB.MaxSamples != 5000 {
		t.Fatalf("seed/samples: %+v", in)
	}
}

func TestParseInputDefaults(t *testing.T) {
	in, err := ParseInput("microservice = Ads1\n")
	if err != nil {
		t.Fatal(err)
	}
	if in.Sweep != SweepIndependent || in.Metric != MetricMIPS || in.Seed != 1 {
		t.Fatalf("defaults: %+v", in)
	}
	if in.AB.MaxSamples != 30000 {
		t.Fatalf("default sample cap: %d", in.AB.MaxSamples)
	}
}

func TestParseInputErrors(t *testing.T) {
	cases := []string{
		"",                              // missing microservice
		"microservice Web",              // no equals
		"microservice = Web\nsweep = x", // bad sweep
		"microservice = Web\nmetric = latency",
		"microservice = Web\nknobs = voltage",
		"microservice = Web\nseed = abc",
		"microservice = Web\nmax_samples = -1",
		"microservice = Web\nunknownkey = 1",
	}
	for i, c := range cases {
		if _, err := ParseInput(c); err == nil {
			t.Errorf("case %d: expected error for %q", i, c)
		}
	}
}

func TestParseInputSweepModes(t *testing.T) {
	for _, m := range []string{"independent", "exhaustive", "hillclimb", "halving", "cem"} {
		in, err := ParseInput("microservice = Web\nsweep = " + m)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.EqualFold(in.Sweep.String(), m) {
			t.Fatalf("round trip %q -> %v", m, in.Sweep)
		}
	}
}

func TestParseSweepMode(t *testing.T) {
	cases := []struct {
		val        string
		searchOnly bool
		want       SweepMode
		err        bool
	}{
		{"hill", true, SweepHillClimb, false},
		{"hill-climb", true, SweepHillClimb, false},
		{"hill_climb", false, SweepHillClimb, false},
		{"HALVING", true, SweepHalving, false},
		{"successive-halving", false, SweepHalving, false},
		{"cem", true, SweepCEM, false},
		{"population", true, SweepCEM, false},
		{"independent", false, SweepIndependent, false},
		{"exhaustive", false, SweepExhaustive, false},
		// The search vocabulary admits only the adaptive optimizers.
		{"independent", true, 0, true},
		{"exhaustive", true, 0, true},
		{"bogus", true, 0, true},
		{"bogus", false, 0, true},
	}
	for _, c := range cases {
		got, err := ParseSweepMode(c.val, c.searchOnly)
		if c.err {
			if err == nil {
				t.Errorf("ParseSweepMode(%q, %v): expected error", c.val, c.searchOnly)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseSweepMode(%q, %v) = %v, %v; want %v", c.val, c.searchOnly, got, err, c.want)
		}
	}
}

// TestParseInputSearchKey: the "search" key is the flag-facing alias —
// it accepts the adaptive optimizers (with the "hill" short form) and
// rejects the non-adaptive sweep modes.
func TestParseInputSearchKey(t *testing.T) {
	in, err := ParseInput("microservice = Web\nsearch = hill")
	if err != nil {
		t.Fatal(err)
	}
	if in.Sweep != SweepHillClimb {
		t.Fatalf("search = hill -> %v", in.Sweep)
	}
	if _, err := ParseInput("microservice = Web\nsearch = independent"); err == nil {
		t.Fatal("search key must reject non-adaptive modes")
	}
}
