package workload

import (
	"math"
	"testing"
	"testing/quick"

	"softsku/internal/cache"
	"softsku/internal/knob"
	"softsku/internal/tlb"
)

func TestAllProfilesValid(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
	if len(seen) != 7 {
		t.Fatalf("the paper characterizes 7 microservices, got %d", len(seen))
	}
}

func TestPlatformPlacement(t *testing.T) {
	// §2.2: Web, Feed1, Feed2, Ads1, Cache2 run on Skylake18;
	// Ads2 and Cache1 on Skylake20.
	want := map[string]string{
		"Web": "Skylake18", "Feed1": "Skylake18", "Feed2": "Skylake18",
		"Ads1": "Skylake18", "Cache2": "Skylake18",
		"Ads2": "Skylake20", "Cache1": "Skylake20",
	}
	for _, p := range All() {
		if p.Platform != want[p.Name] {
			t.Errorf("%s on %s, want %s", p.Name, p.Platform, want[p.Name])
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("Cache1")
	if err != nil || p.Name != "Cache1" {
		t.Fatalf("ByName: %v %v", p, err)
	}
	if _, err := ByName("Search"); err == nil {
		t.Fatal("expected error")
	}
}

func TestMixNormalize(t *testing.T) {
	m := InstructionMix{Branch: 20, FP: 0, Arith: 40, Load: 30, Store: 10}.Normalize()
	sum := m.Branch + m.FP + m.Arith + m.Load + m.Store
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("normalized sum %g", sum)
	}
	if math.Abs(m.MemFrac()-0.4) > 1e-12 {
		t.Fatalf("mem frac %g", m.MemFrac())
	}
}

func TestInstructionMixCharacter(t *testing.T) {
	// Fig 5: FP present only in ranking services; Feed1 dominated by it.
	for _, name := range []string{"Web", "Cache1", "Cache2"} {
		p, _ := ByName(name)
		if p.Mix.Normalize().FP != 0 {
			t.Errorf("%s must have no FP instructions", name)
		}
	}
	feed1, _ := ByName("Feed1")
	for _, name := range []string{"Feed2", "Ads1", "Ads2"} {
		p, _ := ByName(name)
		fp := p.Mix.Normalize().FP
		if fp <= 0 {
			t.Errorf("%s must include FP", name)
		}
		if fp >= feed1.Mix.Normalize().FP {
			t.Errorf("Feed1 must be the most FP-dominated, %s has %g", name, fp)
		}
	}
}

func TestAVXFrequencyCapOnlyAds1(t *testing.T) {
	// §6.1(1): Ads1's AVX use trips the power budget offset; Web does not.
	ads1, _ := ByName("Ads1")
	if ads1.AVXFrac() < 0.15 {
		t.Fatalf("Ads1 AVX fraction %g must trip the 0.15 offset threshold", ads1.AVXFrac())
	}
	web, _ := ByName("Web")
	if web.AVXFrac() >= 0.15 {
		t.Fatalf("Web AVX fraction %g must not trip the offset", web.AVXFrac())
	}
}

func TestDiversityOrdering(t *testing.T) {
	// The axes of diversity the paper leans on (Fig 1, Table 2).
	web, _ := ByName("Web")
	feed2, _ := ByName("Feed2")
	cache1, _ := ByName("Cache1")
	if !(cache1.PathLength < web.PathLength && web.PathLength < feed2.PathLength) {
		t.Fatal("path length ordering Cache1 < Web < Feed2 violated")
	}
	if cache1.CtxSwitchRate < 10*web.CtxSwitchRate {
		t.Fatal("Cache must context-switch at least 10x more than Web")
	}
	feed1, _ := ByName("Feed1")
	if feed1.RunningFrac < 0.9 || web.RunningFrac > 0.4 {
		t.Fatal("Fig 2a: Feed1 is a leaf (~95% running), Web is mostly blocked")
	}
	if cache1.MaxCPUUtil > 0.5 || web.MaxCPUUtil < 0.8 {
		t.Fatal("Fig 3: Cache runs at low utilization, Web at high")
	}
}

func TestBuildLayoutRegionsValid(t *testing.T) {
	for _, p := range All() {
		l := p.BuildLayout()
		if _, err := tlb.NewAddressSpace(l.Regions, knob.THPMadvise, 0); err != nil {
			t.Errorf("%s layout invalid: %v", p.Name, err)
		}
		if len(l.Text) != p.CodePools {
			t.Errorf("%s: %d text regions, want %d pools", p.Name, len(l.Text), p.CodePools)
		}
		if (l.SHPHeap >= 0) != (p.SHPHeap > 0) {
			t.Errorf("%s: SHP heap presence mismatch", p.Name)
		}
		for _, ti := range l.Text {
			if !l.Regions[ti].Code {
				t.Errorf("%s: text region not marked code", p.Name)
			}
		}
	}
}

func TestSHPDemand(t *testing.T) {
	web, _ := ByName("Web")
	// Web on Skylake: 256 MiB code (128 chunks) + 344 MiB slab (172) = 300.
	if got := web.SHPDemandChunks(); got != 300 {
		t.Fatalf("Web SHP demand = %d, want 300 (Fig 18b sweet spot)", got)
	}
	bdw := ForPlatform(web, "Broadwell16")
	if got := bdw.SHPDemandChunks(); got != 400 {
		t.Fatalf("Web(Broadwell) SHP demand = %d, want 400", got)
	}
	ads1, _ := ByName("Ads1")
	if got := ads1.SHPDemandChunks(); got != 0 {
		t.Fatalf("Ads1 does not use SHP APIs, demand = %d", got)
	}
}

func TestForPlatformDoesNotMutate(t *testing.T) {
	web := Web()
	before := web.SHPHeap
	_ = ForPlatform(web, "Broadwell16")
	if web.SHPHeap != before {
		t.Fatal("ForPlatform mutated the source profile")
	}
}

func newStream(name string, seed uint64) (*Profile, *Stream) {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p, NewStream(p, p.BuildLayout(), seed, 0, 1)
}

func TestStreamDeterminism(t *testing.T) {
	_, s1 := newStream("Web", 42)
	_, s2 := newStream("Web", 42)
	a1 := s1.Generate(nil, 5000)
	a2 := s2.Generate(nil, 5000)
	if len(a1) != len(a2) {
		t.Fatalf("lengths differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("access %d differs", i)
		}
	}
}

func TestStreamAccessesInRegions(t *testing.T) {
	for _, p := range All() {
		l := p.BuildLayout()
		as, err := tlb.NewAddressSpace(l.Regions, knob.THPAlways, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := NewStream(p, l, 7, 0, 1)
		accs := s.Generate(nil, 20000)
		for _, a := range accs {
			r := l.Regions[a.Region]
			if a.Addr < r.Base || a.Addr >= r.Base+r.Size {
				t.Fatalf("%s: access %#x outside region %s", p.Name, a.Addr, r.Name)
			}
			as.PageOf(int(a.Region), a.Addr) // must not panic
		}
	}
}

func TestStreamFetchRate(t *testing.T) {
	_, s := newStream("Web", 1)
	accs := s.Generate(nil, 80000)
	fetches := 0
	for _, a := range accs {
		if a.Type == tlb.Fetch {
			fetches++
		}
	}
	want := 80000 / instrPerFetch
	if fetches != want {
		t.Fatalf("fetches=%d want %d", fetches, want)
	}
}

func TestStreamMixMatchesProfile(t *testing.T) {
	p, s := newStream("Cache1", 3)
	const n = 200000
	accs := s.Generate(nil, n)
	loads, stores := 0, 0
	for _, a := range accs {
		switch a.Type {
		case tlb.Load:
			loads++
		case tlb.Store:
			stores++
		}
	}
	mix := p.Mix.Normalize()
	if got := float64(loads) / n; math.Abs(got-mix.Load) > 0.01 {
		t.Fatalf("load frac %g want %g", got, mix.Load)
	}
	if got := float64(stores) / n; math.Abs(got-mix.Store) > 0.01 {
		t.Fatalf("store frac %g want %g", got, mix.Store)
	}
}

func TestStreamKindsConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		_, s := newStream("Feed2", seed)
		for _, a := range s.Generate(nil, 5000) {
			codeOK := (a.Kind == cache.Code) == (a.Type == tlb.Fetch)
			if !codeOK {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchPoolRotatesText(t *testing.T) {
	p, _ := ByName("Cache1")
	l := p.BuildLayout()
	s := NewStream(p, l, 5, 0, 1)
	if s.Pool() != 0 {
		t.Fatalf("initial pool %d", s.Pool())
	}
	s.SwitchPool()
	if s.Pool() != 1 {
		t.Fatalf("pool after switch %d", s.Pool())
	}
	// Generated code accesses now come from text1.
	accs := s.Generate(nil, 64)
	for _, a := range accs {
		if a.Kind == cache.Code && int(a.Region) != l.Text[1] {
			t.Fatalf("code access from region %d, want %d", a.Region, l.Text[1])
		}
	}
	// Web has one pool; switching must stay at 0.
	webP, _ := ByName("Web")
	ws := NewStream(webP, webP.BuildLayout(), 5, 0, 1)
	ws.SwitchPool()
	if ws.Pool() != 0 {
		t.Fatal("single-pool service must not rotate")
	}
}

func TestSequentialityOrdering(t *testing.T) {
	// Feed1 (dense vectors) must produce far more sequential data
	// accesses than Cache1 (random keys).
	seqFrac := func(name string) float64 {
		_, s := newStream(name, 11)
		accs := s.Generate(nil, 100000)
		var last uint64
		seq, n := 0, 0
		for _, a := range accs {
			if a.Kind != cache.Data {
				continue
			}
			n++
			if a.Addr >= last && a.Addr-last <= 4096 {
				seq++
			}
			last = a.Addr
		}
		return float64(seq) / float64(n)
	}
	if f1, c1 := seqFrac("Feed1"), seqFrac("Cache1"); f1 < 2*c1 {
		t.Fatalf("Feed1 seq frac %g should dwarf Cache1's %g", f1, c1)
	}
}

func TestSHPHeapHoldsHottestObjects(t *testing.T) {
	p, s := newStream("Web", 13)
	l := p.BuildLayout()
	accs := s.Generate(nil, 200000)
	shp, heap := 0, 0
	for _, a := range accs {
		switch int(a.Region) {
		case l.SHPHeap:
			shp++
		case l.Heap:
			heap++
		}
	}
	// The SHP slab is ~17% of the data footprint but holds the hottest
	// Zipf ranks: it must see disproportionate traffic.
	frac := float64(shp) / float64(shp+heap)
	if frac < 0.3 {
		t.Fatalf("SHP slab traffic fraction %g, want the hot share (>0.3)", frac)
	}
}

func TestSPECReferenceData(t *testing.T) {
	specs := SPEC2006()
	if len(specs) != 12 {
		t.Fatalf("12 SPECint rows expected, got %d", len(specs))
	}
	for _, s := range specs {
		if s.IPC <= 0 {
			t.Errorf("%s: non-positive IPC", s.Name)
		}
		if s.L1DataMPKI < s.LLCDataMPKI {
			t.Errorf("%s: LLC MPKI exceeds L1 MPKI", s.Name)
		}
		if s.Mix.Normalize().FP != 0 {
			t.Errorf("%s: SPECint rows have no FP", s.Name)
		}
	}
	if len(GoogleServices()) == 0 {
		t.Fatal("missing Google reference rows")
	}
}

func BenchmarkStreamGenerate(b *testing.B) {
	_, s := newStream("Web", 1)
	buf := make([]Access, 0, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.Generate(buf[:0], 1000)
	}
}

func TestMapCodeLineStaysInText(t *testing.T) {
	for _, name := range []string{"Web", "Cache1"} {
		p, _ := ByName(name)
		l := p.BuildLayout()
		f := func(line uint32, pool uint8) bool {
			pl := int(pool) % p.CodePools
			addr := MapCodeLine(p, l, pl, uint64(line)%(p.CodeFootprint/64))
			r := l.Regions[l.Text[pl]]
			return addr >= r.Base && addr < r.Base+r.Size
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestMapCodeLineScatterBijective(t *testing.T) {
	// The JIT page permutation must not collide: distinct pages map to
	// distinct pages (footprint is preserved).
	p, _ := ByName("Web") // JITCode: scattered
	l := p.BuildLayout()
	const pages = 4096 // sample of the code cache
	seen := make(map[uint64]bool, pages)
	for pg := uint64(0); pg < pages; pg++ {
		addr := MapCodeLine(p, l, 0, pg*64) // line 0 of each page
		page := addr >> 12
		if seen[page] {
			t.Fatalf("page collision at input page %d", pg)
		}
		seen[page] = true
	}
}

func TestMapCodeLineContiguousForFileText(t *testing.T) {
	p, _ := ByName("Cache1") // file-backed text: no scatter
	l := p.BuildLayout()
	base := l.Regions[l.Text[0]].Base
	for line := uint64(0); line < 100; line++ {
		if got := MapCodeLine(p, l, 0, line); got != base+line*64 {
			t.Fatalf("file text must be laid out linearly: line %d at %#x", line, got)
		}
	}
}

func TestMapDataOffsetInBounds(t *testing.T) {
	for _, name := range []string{"Web", "Ads2"} {
		p, _ := ByName(name)
		l := p.BuildLayout()
		f := func(off uint64) bool {
			r, addr := MapDataOffset(p, l, off%p.DataFootprint)
			reg := l.Regions[r]
			return addr >= reg.Base && addr+64 <= reg.Base+reg.Size
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestPrivateSpansDisjoint(t *testing.T) {
	p, _ := ByName("Web")
	type span struct{ lo, hi uint64 }
	var spans []span
	for i := 0; i < 4; i++ {
		base, size := PrivateSpan(p, i, 4.5)
		if size == 0 {
			t.Fatal("Web has private state")
		}
		spans = append(spans, span{base, base + size})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				t.Fatalf("private spans %d and %d overlap", i, j)
			}
		}
	}
}

func TestPrivateSpanScalesWithCores(t *testing.T) {
	p, _ := ByName("Web")
	_, small := PrivateSpan(p, 0, 1)
	_, big := PrivateSpan(p, 0, 4.5)
	if big != uint64(4.5*float64(small)) {
		t.Fatalf("coreScale must scale the span: %d vs %d", small, big)
	}
	none, sz := PrivateSpan(&Profile{}, 0, 2)
	if none != 0 || sz != 0 {
		t.Fatal("no private bytes, no span")
	}
}

func TestSPECProfilesValid(t *testing.T) {
	profs := SPECProfiles()
	if len(profs) != 12 {
		t.Fatalf("profiles = %d", len(profs))
	}
	for _, p := range profs {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		sum := p.DataHot.Frac + p.DataMid.Frac + p.DataWarm.Frac
		if sum > 1.0001 {
			t.Errorf("%s: data tier fracs sum to %g", p.Name, sum)
		}
	}
}

func TestSPECProfileInversion(t *testing.T) {
	// mcf is the memory-hog: its derived cold fraction must dwarf
	// hmmer's (cache-friendly).
	byName := map[string]*Profile{}
	for _, p := range SPECProfiles() {
		byName[p.Name] = p
	}
	mcf, hmmer := byName["429.mcf"], byName["456.hmmer"]
	mcfCold := 1 - mcf.DataHot.Frac - mcf.DataMid.Frac - mcf.DataWarm.Frac
	hmmerCold := 1 - hmmer.DataHot.Frac - hmmer.DataMid.Frac - hmmer.DataWarm.Frac
	if mcfCold < 10*hmmerCold {
		t.Fatalf("mcf cold %g should dwarf hmmer cold %g", mcfCold, hmmerCold)
	}
	// xalancbmk has the big code footprint among SPECint rows.
	xalan := byName["483.xalancbmk"]
	if xalan.CodeMid.Frac+xalan.CodeWarm.Frac <= hmmer.CodeMid.Frac+hmmer.CodeWarm.Frac {
		t.Fatal("xalancbmk must derive more non-hot code than hmmer")
	}
}
