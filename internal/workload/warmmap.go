package workload

import "softsku/internal/tlb"

// Span-batched variants of MapDataOffset / MapCodeLine for the
// prefill's install loops. The per-line mappers re-resolve the region
// and the page permutation on every 64-byte line; these walk a span
// once, hoisting the region split and the per-4 KiB-page permutation
// lookup out of the inner loop while visiting byte-for-byte the same
// address sequence (warmmap_test.go proves equivalence line by line).

// ForEachDataLine calls fn with the mapped address of every line a
// `for off := lo; off < hi; off += 64` loop over MapDataOffset would
// visit, in the same order.
func ForEachDataLine(p *Profile, l Layout, lo, hi uint64, fn func(addr uint64)) {
	off := lo
	// Slab segment: offsets below the SHP heap boundary, if any.
	if l.SHPHeap >= 0 && off < p.SHPHeap {
		slabEnd := hi
		if p.SHPHeap < slabEnd {
			slabEnd = p.SHPHeap
		}
		reg := l.Regions[l.SHPHeap]
		if l.SlabPerm == nil {
			off = forEachContig(reg, off, slabEnd, 0, fn)
		} else {
			nperm := uint64(len(l.SlabPerm))
			for off < slabEnd {
				page := off >> tlb.PageShift4K
				pageEnd := (page + 1) << tlb.PageShift4K
				if pageEnd > slabEnd {
					pageEnd = slabEnd
				}
				pbase := uint64(l.SlabPerm[page%nperm]) << tlb.PageShift4K
				for ; off < pageEnd; off += lineBytes {
					po := pbase | (off & (tlb.PageSize4K - 1))
					if po+lineBytes > reg.Size {
						po %= reg.Size - lineBytes
					}
					fn(reg.Base + po)
				}
			}
		}
	}
	if off >= hi {
		return
	}
	// Heap segment: everything at or past the SHP boundary.
	var shift uint64
	if l.SHPHeap >= 0 {
		shift = p.SHPHeap
	}
	forEachContig(l.Regions[l.Heap], off, hi, shift, fn)
}

// forEachContig walks [off, end) stepping 64 bytes, mapping each offset
// to shift-adjusted region-relative position with MapDataOffset's tail
// wrap, and returns the first offset past the span (preserving the
// cursor's 64-byte phase for the caller).
func forEachContig(reg tlb.Region, off, end, shift uint64, fn func(addr uint64)) uint64 {
	for ; off < end; off += lineBytes {
		po := off - shift
		if po+lineBytes > reg.Size {
			po %= reg.Size - lineBytes
		}
		fn(reg.Base + po)
	}
	return off
}

// ForEachCodeLine calls fn with the address of code lines [0, lines) of
// the pool's text region, in index order, exactly as repeated
// MapCodeLine calls would.
func ForEachCodeLine(p *Profile, l Layout, pool int, lines uint64, fn func(addr uint64)) {
	base := l.Regions[l.Text[pool]].Base
	if l.CodePerm == nil {
		for line := uint64(0); line < lines; line++ {
			fn(base + line*lineBytes)
		}
		return
	}
	const linesPerPage = tlb.PageSize4K / lineBytes
	nperm := uint64(len(l.CodePerm))
	for line := uint64(0); line < lines; {
		page := line / linesPerPage
		pageEnd := (page + 1) * linesPerPage
		if pageEnd > lines {
			pageEnd = lines
		}
		pbase := base + uint64(l.CodePerm[page%nperm])<<tlb.PageShift4K
		for ; line < pageEnd; line++ {
			fn(pbase + (line%linesPerPage)*lineBytes)
		}
	}
}
