package workload

import (
	"softsku/internal/cache"
	"softsku/internal/rng"
	"softsku/internal/tlb"
)

// Access is one memory reference produced by a Stream: the unit the
// simulator pushes through the cache, TLB, and prefetch models.
type Access struct {
	Addr   uint64
	Region int32 // index into the Layout's regions
	Kind   cache.Kind
	Type   tlb.AccessType
	IP     uint64 // address of the accessing instruction
}

const (
	// instrPerFetch is how many instructions one I-cache line access
	// represents (a 32-byte fetch group of ~4-byte instructions).
	instrPerFetch = 8
	lineBytes     = 64

	// dataStreams is the number of strided data streams a thread
	// rotates between (arrays being walked by different loops).
	dataStreams = 4
	// streamRunAccesses bounds a strided run (one inner loop) before
	// the thread moves to another array.
	streamRunAccesses = 2048
)

// MapCodeLine maps a code line index within a text region to its
// address. JIT code caches scatter hot translations across the whole
// cache at page granularity (translations are emitted in request
// order, not heat order), so huge-page coverage of the code cache pays
// off gradually; linker-laid-out file text stays contiguous.
func MapCodeLine(p *Profile, l Layout, pool int, line uint64) uint64 {
	base := l.Regions[l.Text[pool]].Base
	if l.CodePerm == nil {
		return base + line*lineBytes
	}
	const linesPerPage = tlb.PageSize4K / lineBytes
	page := line / linesPerPage
	inPage := line % linesPerPage
	page = uint64(l.CodePerm[page%uint64(len(l.CodePerm))])
	return base + page<<tlb.PageShift4K + inPage*lineBytes
}

// MapDataOffset maps a byte offset within the combined data footprint
// to its (region, address). Offsets inside [0, SHPHeap) live in the
// SHP-backed hot slab with page-level scatter; the rest in the heap.
func MapDataOffset(p *Profile, l Layout, off uint64) (int32, uint64) {
	var r int32
	if l.SHPHeap >= 0 && off < p.SHPHeap {
		r = int32(l.SHPHeap)
		if l.SlabPerm != nil {
			page := off >> tlb.PageShift4K
			inPage := off & (tlb.PageSize4K - 1)
			page = uint64(l.SlabPerm[page%uint64(len(l.SlabPerm))])
			off = page<<tlb.PageShift4K | inPage
		}
	} else {
		r = int32(l.Heap)
		if l.SHPHeap >= 0 {
			off -= p.SHPHeap
		}
	}
	reg := l.Regions[r]
	if off+lineBytes > reg.Size {
		off %= reg.Size - lineBytes
	}
	return r, reg.Base + off
}

// PrivateSpan returns the byte range [base, base+span) of the data
// footprint holding thread idx's private request state, scaled so that
// each simulated thread stands in for coreScale real cores.
func PrivateSpan(p *Profile, idx int, coreScale float64) (base, span uint64) {
	if p.PrivateBytes == 0 {
		return 0, 0
	}
	if coreScale < 1 {
		coreScale = 1
	}
	span = uint64(float64(p.PrivateBytes) * coreScale)
	tail := uint64(idx+1) * span
	if tail < p.DataFootprint {
		base = p.DataFootprint - tail
	} else {
		base = p.DataFootprint / 2
	}
	return base, span
}

// Stream generates one worker thread's instruction and memory
// reference stream according to a Profile. It is deterministic given
// its seed. Not safe for concurrent use.
type Stream struct {
	prof   *Profile
	layout Layout
	src    *rng.Source

	pool      int    // current code pool (context switches rotate it)
	codeLine  uint64 // current line index within the pool's text
	codeLines uint64 // lines per text region
	fetchGap  int    // instructions since last I-fetch

	// Strided stream state: byte cursors over [0, SeqSpan).
	streams [dataStreams]uint64
	curStrm int
	runLeft int

	privBase uint64
	privSpan uint64

	stackLine uint64

	// Precomputed thresholds from the normalized mix and tier model.
	pLoad, pStore float64
	codeHotLines  uint64
	codeMidLines  uint64
	codeWarmLines uint64
	pCodeHot      float64 // cumulative tier thresholds
	pCodeMid      float64
	pCodeWarm     float64
	pDataHot      float64
	pDataMid      float64
	pDataWarm     float64
}

// NewStream builds a thread stream. pool assigns the thread to one of
// the profile's code pools. coreScale is activeCores/simThreads: each
// sim thread stands in for that many real cores' private footprints.
func NewStream(p *Profile, layout Layout, seed uint64, pool int, coreScale float64) *Stream {
	src := rng.New(seed)
	mix := p.Mix.Normalize()
	s := &Stream{
		prof:      p,
		layout:    layout,
		src:       src,
		pool:      pool % p.CodePools,
		codeLines: p.CodeFootprint / lineBytes,
		pLoad:     mix.Load,
		pStore:    mix.Load + mix.Store,
	}
	if s.codeLines == 0 {
		s.codeLines = 1
	}
	s.codeHotLines = max64(p.CodeHot.Bytes/lineBytes, 1)
	s.codeMidLines = max64(p.CodeMid.Bytes/lineBytes, 1)
	s.codeWarmLines = max64(p.CodeWarm.Bytes/lineBytes, 1)
	s.pCodeHot = p.CodeHot.Frac
	s.pCodeMid = s.pCodeHot + p.CodeMid.Frac
	s.pCodeWarm = s.pCodeMid + p.CodeWarm.Frac
	s.pDataHot = p.DataHot.Frac
	s.pDataMid = s.pDataHot + p.DataMid.Frac
	s.pDataWarm = s.pDataMid + p.DataWarm.Frac

	s.privBase, s.privSpan = PrivateSpan(p, pool, coreScale)
	for i := range s.streams {
		s.streams[i] = s.seqStart()
	}
	return s
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func (s *Stream) seqStart() uint64 {
	span := s.prof.SeqSpan
	if span == 0 {
		span = s.prof.DataFootprint
	}
	return uint64(s.src.Float64() * float64(span))
}

// Pool returns the thread's current code pool.
func (s *Stream) Pool() int { return s.pool }

// SwitchPool models a context switch to a thread of a different pool:
// subsequent code fetches come from different text (the L1I-thrash
// mechanism behind Cache1/Cache2's front-end stalls, §2.4.2).
func (s *Stream) SwitchPool() {
	if s.prof.CodePools > 1 {
		s.pool = (s.pool + 1) % s.prof.CodePools
	}
	// The new thread resumes at an unrelated code location.
	s.codeLine = s.jumpTarget()
}

// jumpTarget picks a code line by tier.
func (s *Stream) jumpTarget() uint64 {
	u := s.src.Float64()
	switch {
	case u < s.pCodeHot:
		return uint64(s.src.Float64() * float64(s.codeHotLines))
	case u < s.pCodeMid:
		return uint64(s.src.Float64() * float64(s.codeMidLines))
	case u < s.pCodeWarm:
		return uint64(s.src.Float64() * float64(s.codeWarmLines))
	default:
		return uint64(s.src.Float64() * float64(s.codeLines))
	}
}

// Generate appends the memory references of the next n instructions to
// buf and returns it. One I-cache access is produced per fetch group;
// data accesses follow the profile's instruction mix and tiered
// locality model.
func (s *Stream) Generate(buf []Access, n int) []Access {
	p := s.prof
	textRegion := int32(s.layout.Text[s.pool])
	textBase := s.layout.Regions[textRegion].Base
	for i := 0; i < n; i++ {
		// Instruction fetch, one line access per fetch group.
		s.fetchGap++
		if s.fetchGap >= instrPerFetch {
			s.fetchGap = 0
			ip := MapCodeLine(p, s.layout, s.pool, s.codeLine)
			buf = append(buf, Access{
				Addr: ip, Region: textRegion,
				Kind: cache.Code, Type: tlb.Fetch, IP: ip,
			})
			if s.src.Float64() < p.CodeSeqFrac {
				s.codeLine++
				if s.codeLine >= s.codeLines {
					s.codeLine = 0
				}
			} else {
				s.codeLine = s.jumpTarget()
			}
		}
		u := s.src.Float64()
		if u >= s.pStore {
			continue // non-memory instruction
		}
		at := tlb.Load
		if u >= s.pLoad {
			at = tlb.Store
		}
		buf = append(buf, s.dataAccess(at, textBase))
	}
	return buf
}

// dataAccess produces one load or store: stack, strided stream,
// private request state, or a tiered shared-heap access.
func (s *Stream) dataAccess(at tlb.AccessType, textBase uint64) Access {
	p := s.prof
	ip := textBase + s.codeLine*lineBytes
	u := s.src.Float64()
	if u < p.StackFrac {
		// Stack: cycle through a few hot lines; near-perfect locality.
		s.stackLine = (s.stackLine + 1) & 63
		r := int32(s.layout.Stack)
		return Access{
			Addr:   s.layout.Regions[r].Base + s.stackLine*lineBytes,
			Region: r, Kind: cache.Data, Type: at, IP: ip,
		}
	}
	u = (u - p.StackFrac) / (1 - p.StackFrac) // renormalize
	if u < p.DataSeqFrac {
		// Strided stream: one inner loop walks one array SeqStride
		// bytes at a time; sub-line steps give intra-line reuse and
		// page locality, and the stable per-stream IP lets the DCU IP
		// prefetcher lock on.
		if s.runLeft <= 0 {
			s.curStrm = (s.curStrm + 1) % dataStreams
			s.streams[s.curStrm] = s.seqStart()
			s.runLeft = streamRunAccesses
		}
		s.runLeft--
		k := s.curStrm
		s.streams[k] += p.SeqStride
		if s.streams[k] >= p.SeqSpan {
			s.streams[k] = 0
		}
		return s.dataAt(s.streams[k], at, textBase+uint64(k)*4)
	}
	u = (u - p.DataSeqFrac) / (1 - p.DataSeqFrac)
	if u < p.PrivateFrac {
		// Freshly allocated request state is written before it is read:
		// most private-span traffic is stores.
		if s.src.Bool(0.65) {
			at = tlb.Store
		}
		off := s.privBase + uint64(s.src.Float64()*float64(s.privSpan))
		return s.dataAt(off, at, ip)
	}
	// Shared heap, by locality tier.
	v := s.src.Float64()
	var off uint64
	switch {
	case v < s.pDataHot:
		off = uint64(s.src.Float64() * float64(p.DataHot.Bytes))
	case v < s.pDataMid:
		off = uint64(s.src.Float64() * float64(p.DataMid.Bytes))
	case v < s.pDataWarm:
		off = uint64(s.src.Float64() * float64(p.DataWarm.Bytes))
	default:
		off = uint64(s.src.Float64() * float64(p.DataFootprint))
	}
	return s.dataAt(off, at, ip)
}

func (s *Stream) dataAt(off uint64, at tlb.AccessType, ip uint64) Access {
	r, addr := MapDataOffset(s.prof, s.layout, off)
	return Access{Addr: addr, Region: r, Kind: cache.Data, Type: at, IP: ip}
}
