package workload

// SPECProfile inverts the calibration problem: given a benchmark's
// published counter profile (instruction mix and per-level MPKI), it
// constructs a runnable synthetic Profile whose tier fractions are
// chosen so the simulator reproduces those counters. This serves two
// purposes: the SPEC comparison columns of Figs 5-9/11 become runnable
// workloads rather than static rows, and — because the tier fractions
// are derived from first principles rather than hand-tuned — it
// validates that the tiered-locality model generalizes beyond the
// seven fleet services.
//
// Derivation: with a = data accesses per kilo-instruction, an access
// stream drawn from nested tiers sized to be L1-, L2-, LLC-resident
// and DRAM-bound produces
//
//	L1 MPKI  ≈ a·(mid + warm + cold)
//	L2 MPKI  ≈ a·(warm + cold)
//	LLC MPKI ≈ a·cold
//
// so the tier fractions follow from the MPKI differences. Code tiers
// derive the same way from the code-side MPKI at one access per fetch
// group.
func SPECProfile(ref SPECRef) *Profile {
	mix := ref.Mix.Normalize()
	dataAccessPerKI := (mix.Load + mix.Store) * 1000
	codeAccessPerKI := 1000.0 / instrPerFetch

	clamp01 := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	frac := func(mpki float64, perKI float64) float64 {
		if perKI <= 0 {
			return 0
		}
		return clamp01(mpki / perKI)
	}

	dataCold := frac(ref.LLCDataMPKI, dataAccessPerKI)
	dataWarm := clamp01(frac(ref.L2DataMPKI, dataAccessPerKI) - dataCold)
	dataMid := clamp01(frac(ref.L1DataMPKI, dataAccessPerKI) - dataWarm - dataCold)
	dataHot := clamp01(1 - dataMid - dataWarm - dataCold)

	codeCold := frac(ref.LLCCodeMPKI, codeAccessPerKI)
	codeWarm := clamp01(frac(ref.L2CodeMPKI, codeAccessPerKI) - codeCold)
	codeMid := clamp01(frac(ref.L1CodeMPKI, codeAccessPerKI) - codeWarm - codeCold)
	codeHot := clamp01(1 - codeMid - codeWarm - codeCold)

	// SPEC runs one process flat out: no downstream calls, no QoS
	// modulation, full utilization.
	return &Profile{
		Name:     ref.Name,
		Domain:   "spec2006",
		Platform: "Skylake20", // the paper measured SPEC on Skylake20

		PathLength:    1e9, // SPEC runs are long; queries are irrelevant
		RunningFrac:   1.0,
		WorkerThreads: 1,

		MaxCPUUtil:    1.0,
		KernelFrac:    0.01,
		QoSLatencyP99: 3600,

		CtxSwitchRate: 10,

		Mix:              ref.Mix,
		BranchMispredict: 0.01,

		CodeFootprint: 64 << 20,
		CodeHot:       Tier{Frac: codeHot, Bytes: 16 << 10},
		CodeMid:       Tier{Frac: codeMid, Bytes: 512 << 10},
		CodeWarm:      Tier{Frac: codeWarm, Bytes: 4 << 20},
		CodeSeqFrac:   0.70,
		CodePools:     1,

		DataFootprint: 2 << 30,
		DataHot:       Tier{Frac: dataHot, Bytes: 12 << 10},
		DataMid:       Tier{Frac: dataMid, Bytes: 512 << 10},
		DataWarm:      Tier{Frac: dataWarm, Bytes: 10 << 20},
		DataSeqFrac:   0,
		StackFrac:     0, // the hot tier already models register-adjacent reuse

		HeapMadvise: true,
		DepStallCPI: 0.10,
	}
}

// SPECProfiles returns runnable profiles for all twelve SPECint
// reference rows.
func SPECProfiles() []*Profile {
	refs := SPEC2006()
	out := make([]*Profile, len(refs))
	for i, r := range refs {
		out[i] = SPECProfile(r)
	}
	return out
}
