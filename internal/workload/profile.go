// Package workload defines the seven production microservices of the
// paper (§2.1) as synthetic workload models. A Profile captures the
// externally observable characteristics the paper measures —
// instruction mix, code/data footprints and locality, request
// timescales, downstream blocking, context-switch behaviour, QoS
// ceilings — and a Stream turns a profile into the per-thread
// instruction/address stream that drives the cache, TLB and prefetch
// simulators.
//
// Calibration contract: profile parameters are tuned so the *measured*
// characterization (run through internal/sim) lands in the bands the
// paper reports (Table 2, Figs 2–12). Tests in this package and in
// internal/sim assert those bands; nothing asserts the outcomes µSKU
// is later expected to discover.
package workload

import (
	"fmt"

	"softsku/internal/rng"
	"softsku/internal/tlb"
)

// Tier describes one nested locality tier: Frac of random accesses
// fall uniformly within the first Bytes of the footprint.
type Tier struct {
	Frac  float64
	Bytes uint64
}

// InstructionMix is the Fig 5 breakdown. Fractions are normalized by
// Normalize; they need not sum to exactly 1 in literals.
type InstructionMix struct {
	Branch float64
	FP     float64
	Arith  float64
	Load   float64
	Store  float64
}

// Normalize scales the mix to sum to 1.
func (m InstructionMix) Normalize() InstructionMix {
	sum := m.Branch + m.FP + m.Arith + m.Load + m.Store
	if sum == 0 {
		return m
	}
	m.Branch /= sum
	m.FP /= sum
	m.Arith /= sum
	m.Load /= sum
	m.Store /= sum
	return m
}

// MemFrac returns the fraction of instructions that access data
// memory.
func (m InstructionMix) MemFrac() float64 {
	n := m.Normalize()
	return n.Load + n.Store
}

// Profile is the complete synthetic model of one microservice.
type Profile struct {
	Name     string
	Domain   string // service domain (web, feed, ads, cache)
	Platform string // default production platform (Table 1 placement)

	// ---- Request-level model (Table 2, Fig 2) ----
	PathLength float64 // instructions per query
	// RunningFrac is the fraction of a request's latency spent
	// executing instructions; the rest is blocked on downstream I/O
	// (Fig 2a). Leaves are ~1.0.
	RunningFrac float64
	// DownstreamCalls and DownstreamLatency describe blocking I/O to
	// other microservices per query.
	DownstreamCalls   int
	DownstreamLatency float64 // seconds, mean per call
	// WorkerThreads is the service's thread pool size per server. Web
	// oversubscribes aggressively (§2.3.2).
	WorkerThreads int
	// ConcurrentPaths marks Cache-style services whose queries follow
	// concurrent execution paths (excluded from Fig 2a, §2.3.2).
	ConcurrentPaths bool

	// ---- QoS (Fig 3) ----
	// MaxCPUUtil is the highest CPU utilization the service may run at
	// before QoS constraints are violated; load balancers modulate
	// offered load to hold it (§2.3.3).
	MaxCPUUtil float64
	// KernelFrac is the fraction of busy CPU time spent in
	// kernel/IO-wait at peak (Fig 3).
	KernelFrac float64
	// QoSLatencyP99 is the p99 request latency SLO in seconds.
	QoSLatencyP99 float64

	// ---- Context switching (Fig 4) ----
	// CtxSwitchRate is context switches per second per busy core at
	// peak load.
	CtxSwitchRate float64

	// ---- Instruction mix (Fig 5) ----
	Mix InstructionMix
	// BranchMispredict is mispredictions per branch instruction.
	BranchMispredict float64

	// ---- Memory behaviour (Figs 8–12) ----
	//
	// Locality is modelled with nested tiers: a Tier{Frac, Bytes} says
	// "Frac of the (random) accesses fall uniformly within the first
	// Bytes of the footprint". Hot ⊂ warm ⊂ footprint, so the hottest
	// bytes sit at the lowest offsets — which is also where operators
	// place SHP-backed slabs. The remainder fraction spreads over the
	// whole footprint (the cold tail).
	CodeFootprint uint64  // bytes of total instruction footprint
	CodeHot       Tier    // inner loop bodies (L1I-resident)
	CodeMid       Tier    // frequently-run functions (L2-resident)
	CodeWarm      Tier    // the steady-state fetch working set (LLC-resident)
	CodeSeqFrac   float64 // fraction of sequential next-line fetch
	CodePools     int     // distinct thread pools running distinct code (Cache: >1)
	// JITCode marks an anonymous (JIT) code cache, which — unlike
	// file-backed text — is THP-eligible (Web's HHVM code cache).
	JITCode bool

	DataFootprint uint64 // bytes of total (shared) data footprint
	DataHot       Tier   // per-request metadata, allocator headers (L1-resident)
	DataMid       Tier   // hot shared structures (L2-resident)
	DataWarm      Tier   // the LLC-contended shared working set
	// DataSeqFrac of data accesses walk strided streams (prefetchable,
	// page-local) of SeqStride bytes per access over the first SeqSpan
	// bytes of the footprint (model weights, ad lists, feature arrays).
	DataSeqFrac float64
	SeqStride   uint64
	SeqSpan     uint64
	// PrivateFrac of data accesses touch per-core private request
	// state of PrivateBytes per active core — the footprint component
	// that grows with core count and bends Fig 15's scaling curve.
	PrivateFrac  float64
	PrivateBytes uint64
	StackFrac    float64 // fraction of data accesses to the (hot) stack

	// SHPHeap is the size of the hot slab the service explicitly backs
	// with statically allocated huge pages (0 if the service never
	// calls the SHP APIs, like Ads1 — §4).
	SHPHeap uint64
	// HeapMadvise reports whether the service madvise(MADV_HUGEPAGE)s
	// its heap, making it huge under the default THP=madvise policy.
	HeapMadvise bool

	// Burstiness inflates instantaneous memory-system load relative to
	// average bandwidth (Ads1/Ads2 — §2.4.5).
	Burstiness float64

	// DepStallCPI is the baseline backend dependency-stall cycles per
	// instruction from non-memory hazards (long FP chains, div, etc.).
	DepStallCPI float64

	// BEOverlap is the exposed fraction of data-miss latency for this
	// workload (memory-level parallelism); 0 selects the model default.
	// Vector-crunching services overlap misses deeply (low values).
	BEOverlap float64

	// IntrospectivePerf marks services (Cache) whose code is
	// introspective of performance: they execute extra exception-
	// handler instructions when QoS degrades, making MIPS an invalid
	// throughput metric (§4, §7).
	IntrospectivePerf bool

	// RebootTolerant reports whether the surrounding infrastructure
	// tolerates µSKU rebooting live servers (§4: some services cannot).
	RebootTolerant bool
}

// String returns the service name.
func (p *Profile) String() string { return p.Name }

// AVXFrac returns the fraction of AVX-class (floating point/SIMD)
// instructions, which trips the platform power budget's frequency
// offset when heavy.
func (p *Profile) AVXFrac() float64 { return p.Mix.Normalize().FP }

// Validate checks internal consistency.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile missing name")
	}
	if p.PathLength <= 0 {
		return fmt.Errorf("workload %s: non-positive path length", p.Name)
	}
	if p.RunningFrac <= 0 || p.RunningFrac > 1 {
		return fmt.Errorf("workload %s: RunningFrac %g outside (0,1]", p.Name, p.RunningFrac)
	}
	if p.MaxCPUUtil <= 0 || p.MaxCPUUtil > 1 {
		return fmt.Errorf("workload %s: MaxCPUUtil %g outside (0,1]", p.Name, p.MaxCPUUtil)
	}
	if p.CodeFootprint == 0 || p.DataFootprint == 0 {
		return fmt.Errorf("workload %s: zero footprint", p.Name)
	}
	if p.CodePools < 1 {
		return fmt.Errorf("workload %s: CodePools must be >= 1", p.Name)
	}
	if p.WorkerThreads < 1 {
		return fmt.Errorf("workload %s: no worker threads", p.Name)
	}
	for _, tc := range []struct {
		name           string
		hot, mid, warm Tier
		footprint      uint64
	}{
		{"code", p.CodeHot, p.CodeMid, p.CodeWarm, p.CodeFootprint},
		{"data", p.DataHot, p.DataMid, p.DataWarm, p.DataFootprint},
	} {
		sum := tc.hot.Frac + tc.mid.Frac + tc.warm.Frac
		if tc.hot.Frac < 0 || tc.mid.Frac < 0 || tc.warm.Frac < 0 || sum > 1 {
			return fmt.Errorf("workload %s: %s tier fractions invalid", p.Name, tc.name)
		}
		if !(tc.hot.Bytes <= tc.mid.Bytes && tc.mid.Bytes <= tc.warm.Bytes && tc.warm.Bytes <= tc.footprint) {
			return fmt.Errorf("workload %s: %s tiers must nest within the footprint", p.Name, tc.name)
		}
		if tc.hot.Bytes == 0 || tc.mid.Bytes == 0 || tc.warm.Bytes == 0 {
			return fmt.Errorf("workload %s: %s tier sizes must be positive", p.Name, tc.name)
		}
	}
	if p.SHPHeap > 0 && p.SHPHeap > p.DataFootprint {
		return fmt.Errorf("workload %s: SHP slab exceeds the data footprint", p.Name)
	}
	if p.DataSeqFrac > 0 {
		if p.SeqStride == 0 || p.SeqSpan == 0 || p.SeqSpan > p.DataFootprint {
			return fmt.Errorf("workload %s: sequential stream parameters invalid", p.Name)
		}
	}
	if p.PrivateFrac > 0 && p.PrivateBytes == 0 {
		return fmt.Errorf("workload %s: PrivateFrac without PrivateBytes", p.Name)
	}
	if p.StackFrac+p.PrivateFrac > 1 {
		return fmt.Errorf("workload %s: access-class fractions exceed 1", p.Name)
	}
	return nil
}

// Layout indices into the region slice built by BuildLayout, plus the
// page-permutation tables used to scatter hot pages (see MapCodeLine
// and MapDataOffset).
type Layout struct {
	Regions []tlb.Region
	Text    []int // one text region per code pool
	SHPHeap int   // -1 if absent
	Heap    int
	Stack   int

	// CodePerm scatters JIT code-cache pages; SlabPerm scatters SHP
	// slab pages. Both are uniform random permutations (seeded,
	// deterministic) so scattered pages spread evenly across cache
	// sets regardless of set count.
	CodePerm []uint32
	SlabPerm []uint32
}

// BuildLayout constructs the service's address-space regions. Region
// bases are spaced far apart so regions never overlap regardless of
// size.
func (p *Profile) BuildLayout() Layout {
	var l Layout
	l.SHPHeap = -1
	base := uint64(1) << 32
	const spacing = uint64(1) << 40
	add := func(r tlb.Region) int {
		r.Base = base
		base += spacing
		l.Regions = append(l.Regions, r)
		return len(l.Regions) - 1
	}
	for i := 0; i < p.CodePools; i++ {
		l.Text = append(l.Text, add(tlb.Region{
			Name: fmt.Sprintf("text%d", i),
			Size: p.CodeFootprint,
			Code: true,
			Anon: p.JITCode,
			// THP never backs executable mappings, so a JIT code cache
			// is SHP-backed when the service uses static huge pages.
			SHP: p.JITCode && p.SHPHeap > 0,
		}))
	}
	if p.SHPHeap > 0 {
		l.SHPHeap = add(tlb.Region{Name: "shpheap", Size: p.SHPHeap, Anon: true, SHP: true})
	}
	heapSize := p.DataFootprint
	if p.SHPHeap > 0 && heapSize > p.SHPHeap {
		heapSize -= p.SHPHeap
	}
	l.Heap = add(tlb.Region{Name: "heap", Size: heapSize, Anon: true, Madvise: p.HeapMadvise})
	l.Stack = add(tlb.Region{Name: "stack", Size: 8 << 20, Anon: true})
	if p.JITCode {
		l.CodePerm = pagePerm(p.CodeFootprint, 0x5eed1)
	}
	if p.SHPHeap > 0 {
		l.SlabPerm = pagePerm(p.SHPHeap, 0x5eed2)
	}
	return l
}

// pagePerm returns a deterministic uniform permutation of the 4 KiB
// page indices covering size bytes (Fisher-Yates with a fixed seed).
func pagePerm(size uint64, seed uint64) []uint32 {
	n := int(size >> 12)
	if n < 2 {
		return nil
	}
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	src := rng.New(seed)
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// SHPDemandChunks returns the number of 2 MiB static huge pages the
// service can productively consume: its SHP-backed code cache (JIT
// services) plus the explicit SHP heap slab. Reservations beyond this
// are wasted memory (Fig 18b's downslope).
func (p *Profile) SHPDemandChunks() int {
	if p.SHPHeap == 0 {
		return 0
	}
	chunks := func(b uint64) int { return int((b + (2 << 20) - 1) / (2 << 20)) }
	n := chunks(p.SHPHeap)
	if p.JITCode {
		n += chunks(p.CodeFootprint) * p.CodePools
	}
	return n
}
