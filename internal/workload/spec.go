package workload

// SPECRef is reference data for one SPEC CPU2006 benchmark, reproduced
// from the paper's own comparison measurements (Figs 5–9, 11, measured
// by the authors on Skylake20). These are *context columns* for the
// characterization figures, not systems under test; the values are
// static data, the same way the paper reproduces Google's published
// numbers.
type SPECRef struct {
	Name string
	Mix  InstructionMix
	IPC  float64

	L1DataMPKI  float64
	L1CodeMPKI  float64
	L2DataMPKI  float64
	L2CodeMPKI  float64
	LLCDataMPKI float64
	LLCCodeMPKI float64

	ITLBMPKI      float64
	DTLBLoadMPKI  float64
	DTLBStoreMPKI float64
}

// SPEC2006 returns the twelve SPECint CPU2006 reference rows used in
// the paper's comparison figures.
func SPEC2006() []SPECRef {
	return []SPECRef{
		{Name: "400.perlbench", Mix: InstructionMix{Branch: 21, FP: 0, Arith: 38, Load: 27, Store: 13}, IPC: 2.4, L1DataMPKI: 16, L1CodeMPKI: 3, L2DataMPKI: 2.1, L2CodeMPKI: 0.5, LLCDataMPKI: 0.4, LLCCodeMPKI: 0.01, ITLBMPKI: 0.2, DTLBLoadMPKI: 0.3, DTLBStoreMPKI: 0.1},
		{Name: "401.bzip2", Mix: InstructionMix{Branch: 13, FP: 0, Arith: 43, Load: 30, Store: 10}, IPC: 1.8, L1DataMPKI: 24, L1CodeMPKI: 0.1, L2DataMPKI: 6.5, L2CodeMPKI: 0.02, LLCDataMPKI: 1.8, LLCCodeMPKI: 0, ITLBMPKI: 0.01, DTLBLoadMPKI: 1.6, DTLBStoreMPKI: 0.4},
		{Name: "403.gcc", Mix: InstructionMix{Branch: 17, FP: 0, Arith: 36, Load: 29, Store: 18}, IPC: 1.4, L1DataMPKI: 28, L1CodeMPKI: 5, L2DataMPKI: 9.0, L2CodeMPKI: 1.2, LLCDataMPKI: 3.2, LLCCodeMPKI: 0.05, ITLBMPKI: 0.4, DTLBLoadMPKI: 2.8, DTLBStoreMPKI: 0.9},
		{Name: "429.mcf", Mix: InstructionMix{Branch: 24, FP: 0, Arith: 21, Load: 43, Store: 12}, IPC: 0.5, L1DataMPKI: 79, L1CodeMPKI: 0.1, L2DataMPKI: 49, L2CodeMPKI: 0.02, LLCDataMPKI: 26, LLCCodeMPKI: 0, ITLBMPKI: 0.01, DTLBLoadMPKI: 22, DTLBStoreMPKI: 2},
		{Name: "445.gobmk", Mix: InstructionMix{Branch: 19, FP: 0, Arith: 42, Load: 26, Store: 13}, IPC: 1.3, L1DataMPKI: 13, L1CodeMPKI: 9, L2DataMPKI: 2.4, L2CodeMPKI: 2.0, LLCDataMPKI: 0.6, LLCCodeMPKI: 0.1, ITLBMPKI: 0.7, DTLBLoadMPKI: 0.6, DTLBStoreMPKI: 0.2},
		{Name: "456.hmmer", Mix: InstructionMix{Branch: 5, FP: 0, Arith: 37, Load: 43, Store: 15}, IPC: 2.6, L1DataMPKI: 7, L1CodeMPKI: 0.1, L2DataMPKI: 1.1, L2CodeMPKI: 0.01, LLCDataMPKI: 0.3, LLCCodeMPKI: 0, ITLBMPKI: 0.01, DTLBLoadMPKI: 0.2, DTLBStoreMPKI: 0.05},
		{Name: "458.sjeng", Mix: InstructionMix{Branch: 22, FP: 0, Arith: 44, Load: 24, Store: 9}, IPC: 1.7, L1DataMPKI: 5, L1CodeMPKI: 3, L2DataMPKI: 0.9, L2CodeMPKI: 0.6, LLCDataMPKI: 0.4, LLCCodeMPKI: 0.05, ITLBMPKI: 0.2, DTLBLoadMPKI: 0.5, DTLBStoreMPKI: 0.1},
		{Name: "462.libquantum", Mix: InstructionMix{Branch: 18, FP: 0, Arith: 51, Load: 28, Store: 3}, IPC: 1.1, L1DataMPKI: 33, L1CodeMPKI: 0, L2DataMPKI: 33, L2CodeMPKI: 0, LLCDataMPKI: 27, LLCCodeMPKI: 0, ITLBMPKI: 0, DTLBLoadMPKI: 1.8, DTLBStoreMPKI: 0.1},
		{Name: "464.h264ref", Mix: InstructionMix{Branch: 9, FP: 0, Arith: 41, Load: 38, Store: 12}, IPC: 2.5, L1DataMPKI: 9, L1CodeMPKI: 1.5, L2DataMPKI: 1.5, L2CodeMPKI: 0.3, LLCDataMPKI: 0.4, LLCCodeMPKI: 0.01, ITLBMPKI: 0.1, DTLBLoadMPKI: 0.3, DTLBStoreMPKI: 0.1},
		{Name: "471.omnetpp", Mix: InstructionMix{Branch: 24, FP: 0, Arith: 30, Load: 29, Store: 16}, IPC: 0.8, L1DataMPKI: 31, L1CodeMPKI: 4, L2DataMPKI: 13, L2CodeMPKI: 0.8, LLCDataMPKI: 7.5, LLCCodeMPKI: 0.08, ITLBMPKI: 0.3, DTLBLoadMPKI: 6.1, DTLBStoreMPKI: 1.4},
		{Name: "473.astar", Mix: InstructionMix{Branch: 15, FP: 0, Arith: 34, Load: 38, Store: 11}, IPC: 0.9, L1DataMPKI: 25, L1CodeMPKI: 0.2, L2DataMPKI: 9.8, L2CodeMPKI: 0.05, LLCDataMPKI: 3.8, LLCCodeMPKI: 0, ITLBMPKI: 0.02, DTLBLoadMPKI: 5.2, DTLBStoreMPKI: 0.7},
		{Name: "483.xalancbmk", Mix: InstructionMix{Branch: 29, FP: 0, Arith: 31, Load: 31, Store: 8}, IPC: 1.6, L1DataMPKI: 22, L1CodeMPKI: 6, L2DataMPKI: 4.6, L2CodeMPKI: 1.5, LLCDataMPKI: 1.6, LLCCodeMPKI: 0.1, ITLBMPKI: 0.9, DTLBLoadMPKI: 2.9, DTLBStoreMPKI: 0.3},
	}
}

// GoogleRef is published per-service data from Kanev'15 and Ayers'18
// (measured on Haswell) that the paper uses as additional context in
// Figs 6–9.
type GoogleRef struct {
	Name        string
	Source      string // "Kanev15" or "Ayers18"
	IPC         float64
	L1DataMPKI  float64
	L1CodeMPKI  float64
	L2DataMPKI  float64
	L2CodeMPKI  float64
	LLCDataMPKI float64
	LLCCodeMPKI float64
}

// GoogleServices returns the published Google comparison rows.
func GoogleServices() []GoogleRef {
	return []GoogleRef{
		{Name: "Search1-Leaf", Source: "Ayers18", IPC: 1.1, L1DataMPKI: 27, L1CodeMPKI: 11, L2DataMPKI: 9, L2CodeMPKI: 4, LLCDataMPKI: 2.5, LLCCodeMPKI: 0.3},
		{Name: "Ads", Source: "Kanev15", IPC: 1.0},
		{Name: "Bigtable", Source: "Kanev15", IPC: 0.9},
		{Name: "Disk", Source: "Kanev15", IPC: 0.8},
		{Name: "Flight-search", Source: "Kanev15", IPC: 1.2},
		{Name: "Gmail", Source: "Kanev15", IPC: 0.7},
		{Name: "Gmail-fe", Source: "Kanev15", IPC: 0.6},
		{Name: "Video", Source: "Kanev15", IPC: 1.4},
		{Name: "Search1-Root", Source: "Kanev15", IPC: 1.0},
	}
}
