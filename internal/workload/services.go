package workload

import "fmt"

// The seven production microservices (§2.1), modelled with parameters
// calibrated against the paper's characterization. Each constructor
// documents which published observations pin its numbers.

// Web models the HipHop Virtual Machine front end: request-level
// parallelism over an oversubscribed PHP worker pool, an enormous JIT
// code footprint (extreme L1I/ITLB/LLC-code misses, ~37% front-end
// stalls, BTB-aliasing branch mispredictions), frequent blocking calls
// to other microservices (72% blocked), ms-scale latency, and the
// fleet's highest CPU utilization.
func Web() *Profile {
	return &Profile{
		Name:     "Web",
		Domain:   "web",
		Platform: "Skylake18",

		PathLength:        30e6,
		RunningFrac:       0.28,
		DownstreamCalls:   16,
		DownstreamLatency: 5e-3,
		WorkerThreads:     114, // oversubscribed until marginal throughput drops (§2.3.2)

		MaxCPUUtil:    0.92,
		KernelFrac:    0.08,
		QoSLatencyP99: 0.3,

		CtxSwitchRate: 900,

		Mix:              InstructionMix{Branch: 20, FP: 0, Arith: 36, Load: 27, Store: 17},
		BranchMispredict: 0.085, // BTB aliasing from the huge footprint (§2.4.1)

		CodeFootprint: 512 << 20, // JIT code cache + hot text
		CodeHot:       Tier{Frac: 0.62, Bytes: 16 << 10},
		CodeMid:       Tier{Frac: 0.19, Bytes: 768 << 10},
		CodeWarm:      Tier{Frac: 0.17, Bytes: 4 << 20},
		CodeSeqFrac:   0.55,
		CodePools:     1,
		JITCode:       true, // anonymous code cache: THP-eligible

		DataFootprint: 2 << 30,
		DataHot:       Tier{Frac: 0.914, Bytes: 12 << 10},
		DataMid:       Tier{Frac: 0.039, Bytes: 640 << 10},
		DataWarm:      Tier{Frac: 0.035, Bytes: 8 << 20},
		DataSeqFrac:   0.06, // request/response buffer streaming
		SeqStride:     16,
		SeqSpan:       120 << 20,
		PrivateFrac:   0.025,
		PrivateBytes:  400 << 10,
		StackFrac:     0.12,

		SHPHeap:     88 << 20, // hot slab: 44 chunks + 256 code-cache chunks = 300
		HeapMadvise: false,
		Burstiness:  0.05,

		DepStallCPI:       0.16,
		BEOverlap:         0.08,
		IntrospectivePerf: false,
		RebootTolerant:    true,
	}
}

// Feed1 models the News Feed ranking leaf: FP-dominated dense feature
// vector and model-weight traversal (highest FP mix, Fig 5), leaf
// behaviour (95% running), high LLC data MPKI (9.3) with *low* DTLB
// MPKI (5.8) thanks to dense page locality (§2.4.4), ms-scale latency.
func Feed1() *Profile {
	return &Profile{
		Name:     "Feed1",
		Domain:   "feed",
		Platform: "Skylake18",

		PathLength:        15e6,
		RunningFrac:       0.95,
		DownstreamCalls:   0,
		DownstreamLatency: 0,
		WorkerThreads:     40,

		MaxCPUUtil:    0.56,
		KernelFrac:    0.05,
		QoSLatencyP99: 0.05,

		CtxSwitchRate: 250,

		Mix:              InstructionMix{Branch: 7, FP: 45, Arith: 14, Load: 26, Store: 8},
		BranchMispredict: 0.008, // data-crunching loops predict well

		CodeFootprint: 2 << 20,
		CodeHot:       Tier{Frac: 0.92, Bytes: 16 << 10},
		CodeMid:       Tier{Frac: 0.07, Bytes: 256 << 10},
		CodeWarm:      Tier{Frac: 0.008, Bytes: 1 << 20},
		CodeSeqFrac:   0.90,
		CodePools:     1,

		DataFootprint: 4 << 30,
		DataHot:       Tier{Frac: 0.73, Bytes: 12 << 10},
		DataMid:       Tier{Frac: 0.12, Bytes: 512 << 10},
		DataWarm:      Tier{Frac: 0.05, Bytes: 4 << 20},
		DataSeqFrac:   0.70, // dense vectors: sequential, page-local, prefetchable
		SeqStride:     8,    // FP doubles
		SeqSpan:       16 << 20,
		PrivateFrac:   0.02,
		PrivateBytes:  512 << 10,
		StackFrac:     0.05,

		SHPHeap:     0,
		HeapMadvise: true,
		Burstiness:  0.02,

		DepStallCPI:       0.25, // long FP dependence chains
		BEOverlap:         0.10, // deep MLP: misses overlap heavily
		IntrospectivePerf: false,
		RebootTolerant:    true,
	}
}

// Feed2 models the News Feed aggregator: seconds-scale requests that
// fan out to leaf services and feature extractors (38% blocked),
// moderate footprints, modest memory bandwidth.
func Feed2() *Profile {
	return &Profile{
		Name:     "Feed2",
		Domain:   "feed",
		Platform: "Skylake18",

		PathLength:        400e6,
		RunningFrac:       0.62,
		DownstreamCalls:   40,
		DownstreamLatency: 5e-3,
		WorkerThreads:     64,

		MaxCPUUtil:    0.72,
		KernelFrac:    0.07,
		QoSLatencyP99: 5,

		CtxSwitchRate: 400,

		Mix:              InstructionMix{Branch: 18, FP: 12, Arith: 28, Load: 28, Store: 14},
		BranchMispredict: 0.02,

		CodeFootprint: 32 << 20,
		CodeHot:       Tier{Frac: 0.755, Bytes: 20 << 10},
		CodeMid:       Tier{Frac: 0.16, Bytes: 640 << 10},
		CodeWarm:      Tier{Frac: 0.08, Bytes: 1536 << 10},
		CodeSeqFrac:   0.65,
		CodePools:     1,

		DataFootprint: 2 << 30,
		DataHot:       Tier{Frac: 0.878, Bytes: 12 << 10},
		DataMid:       Tier{Frac: 0.06, Bytes: 640 << 10},
		DataWarm:      Tier{Frac: 0.05, Bytes: 8 << 20},
		DataSeqFrac:   0.15,
		SeqStride:     16,
		SeqSpan:       8 << 20,
		PrivateFrac:   0.04,
		PrivateBytes:  512 << 10,
		StackFrac:     0.10,

		SHPHeap:     0,
		HeapMadvise: true,
		Burstiness:  0.05,

		DepStallCPI:       0.15,
		IntrospectivePerf: false,
		RebootTolerant:    true,
	}
}

// Ads1 models the user-side ads ranker: FP-heavy ranking models whose
// AVX use trips the power budget's frequency offset (runs at 2.0 GHz,
// §6.1(1)), bursty memory traffic above the stress-test curve
// (§2.4.5), high LLC data and DTLB load misses, no SHP API use, and a
// load-balancing design that cannot tolerate core-count reboots (§6.1(3)).
func Ads1() *Profile {
	return &Profile{
		Name:     "Ads1",
		Domain:   "ads",
		Platform: "Skylake18",

		PathLength:        200e6,
		RunningFrac:       0.62,
		DownstreamCalls:   8,
		DownstreamLatency: 14e-3,
		WorkerThreads:     48,

		MaxCPUUtil:    0.46,
		KernelFrac:    0.06,
		QoSLatencyP99: 1.0,

		CtxSwitchRate: 350,

		Mix:              InstructionMix{Branch: 17, FP: 16, Arith: 27, Load: 27, Store: 13},
		BranchMispredict: 0.018,

		CodeFootprint: 24 << 20,
		CodeHot:       Tier{Frac: 0.775, Bytes: 20 << 10},
		CodeMid:       Tier{Frac: 0.17, Bytes: 512 << 10},
		CodeWarm:      Tier{Frac: 0.05, Bytes: 768 << 10},
		CodeSeqFrac:   0.62,
		CodePools:     1,

		DataFootprint: 8 << 30,
		DataHot:       Tier{Frac: 0.858, Bytes: 12 << 10},
		DataMid:       Tier{Frac: 0.07, Bytes: 768 << 10},
		DataWarm:      Tier{Frac: 0.06, Bytes: 10 << 20},
		DataSeqFrac:   0.08,
		SeqStride:     16,
		SeqSpan:       40 << 20,
		PrivateFrac:   0.05,
		PrivateBytes:  384 << 10,
		StackFrac:     0.08,

		SHPHeap:     0, // does not use the SHP allocation APIs (§4)
		HeapMadvise: true,
		Burstiness:  0.35,

		DepStallCPI:       0.22,
		BEOverlap:         0.18,
		IntrospectivePerf: false,
		RebootTolerant:    false,
	}
}

// Ads2 models the ad-side store: traverses a large sorted ad list
// (high streaming bandwidth on Skylake20, mostly covered by
// prefetchers), compute-bound leaf-like behaviour (90% running).
func Ads2() *Profile {
	return &Profile{
		Name:     "Ads2",
		Domain:   "ads",
		Platform: "Skylake20",

		PathLength:        120e6,
		RunningFrac:       0.90,
		DownstreamCalls:   2,
		DownstreamLatency: 6e-3,
		WorkerThreads:     80,

		MaxCPUUtil:    0.48,
		KernelFrac:    0.06,
		QoSLatencyP99: 0.5,

		CtxSwitchRate: 300,

		Mix:              InstructionMix{Branch: 18, FP: 12, Arith: 30, Load: 26, Store: 14},
		BranchMispredict: 0.015,

		CodeFootprint: 12 << 20,
		CodeHot:       Tier{Frac: 0.805, Bytes: 20 << 10},
		CodeMid:       Tier{Frac: 0.13, Bytes: 512 << 10},
		CodeWarm:      Tier{Frac: 0.06, Bytes: 1 << 20},
		CodeSeqFrac:   0.68,
		CodePools:     1,

		DataFootprint: 12 << 30,
		DataHot:       Tier{Frac: 0.885, Bytes: 12 << 10},
		DataMid:       Tier{Frac: 0.06, Bytes: 768 << 10},
		DataWarm:      Tier{Frac: 0.04, Bytes: 14 << 20},
		DataSeqFrac:   0.30, // sorted ad-list traversal
		SeqStride:     16,
		SeqSpan:       96 << 20,
		PrivateFrac:   0.03,
		PrivateBytes:  1 << 20,
		StackFrac:     0.06,

		SHPHeap:     0,
		HeapMadvise: true,
		Burstiness:  0.30,

		DepStallCPI:       0.14,
		BEOverlap:         0.12, // streaming traversal: deep MLP
		IntrospectivePerf: false,
		RebootTolerant:    true,
	}
}

// Cache1 models the inner distributed-memory caching tier: µs-scale
// requests at 100K+ QPS, extreme context-switch rates (up to 18% of
// CPU time, §2.3.4) across distinct thread pools whose code thrashes
// L1I (§2.4.2), low CPU utilization ceilings from strict latency QoS,
// high kernel time, and performance-introspective code that makes
// MIPS an unusable metric (§4).
func Cache1() *Profile {
	return &Profile{
		Name:     "Cache1",
		Domain:   "cache",
		Platform: "Skylake20",

		PathLength:        150e3,
		RunningFrac:       0.55,
		DownstreamCalls:   0,
		DownstreamLatency: 0,
		WorkerThreads:     96,
		ConcurrentPaths:   true,

		MaxCPUUtil:    0.36,
		KernelFrac:    0.34,
		QoSLatencyP99: 1e-3,

		CtxSwitchRate: 14000,

		Mix:              InstructionMix{Branch: 16, FP: 0, Arith: 39, Load: 27, Store: 18},
		BranchMispredict: 0.03,

		CodeFootprint: 6 << 20,
		CodeHot:       Tier{Frac: 0.40, Bytes: 16 << 10},
		CodeMid:       Tier{Frac: 0.40, Bytes: 448 << 10},
		CodeWarm:      Tier{Frac: 0.18, Bytes: 1200 << 10},
		CodeSeqFrac:   0.45, // parse/marshal control flow: poor fetch locality
		CodePools:     4,    // distinct thread pools run distinct code (§2.4.2)

		DataFootprint: 16 << 30,
		DataHot:       Tier{Frac: 0.848, Bytes: 16 << 10},
		DataMid:       Tier{Frac: 0.08, Bytes: 384 << 10},
		DataWarm:      Tier{Frac: 0.06, Bytes: 10 << 20},
		DataSeqFrac:   0.035, // large-value copies stream through DRAM
		SeqStride:     64,
		SeqSpan:       256 << 20,
		PrivateFrac:   0.04,
		PrivateBytes:  384 << 10,
		StackFrac:     0.10,

		SHPHeap:     0,
		HeapMadvise: true,
		Burstiness:  0.10,

		DepStallCPI:       0.10,
		BEOverlap:         0.12,
		IntrospectivePerf: true,
		RebootTolerant:    false,
	}
}

// Cache2 models the client-facing caching tier: like Cache1 but on
// Skylake18 with a smaller footprint and lower bandwidth demand
// (Fig 12 places Cache2 low on the Skylake18 curve).
func Cache2() *Profile {
	p := Cache1()
	p.Name = "Cache2"
	p.Platform = "Skylake18"
	p.PathLength = 120e3
	p.MaxCPUUtil = 0.40
	p.KernelFrac = 0.30
	p.CtxSwitchRate = 11000
	p.DataFootprint = 6 << 30
	p.DataWarm = Tier{Frac: 0.06, Bytes: 8 << 20}
	p.DataSeqFrac = 0.025
	p.SeqSpan = 32 << 20
	p.Mix = InstructionMix{Branch: 19, FP: 0, Arith: 36, Load: 27, Store: 18}
	return p
}

// All returns the seven microservices in the paper's presentation
// order.
func All() []*Profile {
	return []*Profile{Web(), Feed1(), Feed2(), Ads1(), Ads2(), Cache1(), Cache2()}
}

// ByName looks a service up by its paper name.
func ByName(name string) (*Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown microservice %q", name)
}

// ForPlatform returns the service profile as deployed on the named
// platform, applying per-platform production configuration deltas.
// Web on Broadwell16 provisions a larger SHP-backed hot slab (its
// production reservation is 488 pages vs Skylake's 200 — §6.1(7)).
func ForPlatform(p *Profile, platformName string) *Profile {
	q := *p
	q.Platform = platformName
	if p.Name == "Web" && platformName == "Broadwell16" {
		q.SHPHeap = 288 << 20 // 144 + 256 code chunks = 400-chunk demand
	}
	return &q
}
