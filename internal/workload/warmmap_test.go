package workload

import "testing"

// TestForEachDataLineEquivalence proves the span-batched data walk
// visits byte-for-byte the same addresses as the per-line mapper, for
// every service profile on its home platform and for spans chosen to
// cross every interesting boundary: the SHP slab/heap split, permuted
// 4 KiB pages, unaligned starts, and the tail wrap.
func TestForEachDataLineEquivalence(t *testing.T) {
	for _, base := range All() {
		p := ForPlatform(base, base.Platform)
		l := p.BuildLayout()
		spans := [][2]uint64{
			{0, 64 * 1024},
			{p.DataFootprint / 3, p.DataFootprint/3 + 256*1024},
			// Unaligned start, straddling permuted-page boundaries.
			{13, 13 + 128*1024},
		}
		if p.SHPHeap > 4096 {
			// Straddle the SHP slab / heap split, aligned and not.
			spans = append(spans,
				[2]uint64{p.SHPHeap - 64*1024, p.SHPHeap + 64*1024},
				[2]uint64{p.SHPHeap - 100, p.SHPHeap + 100})
		}
		// Tail wrap: spans running past the footprint end.
		spans = append(spans, [2]uint64{p.DataFootprint - 4096, p.DataFootprint + 64*1024})
		for _, sp := range spans {
			lo, hi := sp[0], sp[1]
			off := lo
			n := 0
			ForEachDataLine(p, l, lo, hi, func(addr uint64) {
				if off >= hi {
					t.Fatalf("%s span [%d,%d): extra address %#x past span end",
						p.Name, lo, hi, addr)
				}
				_, want := MapDataOffset(p, l, off)
				if addr != want {
					t.Fatalf("%s span [%d,%d): offset %d = %#x, want %#x",
						p.Name, lo, hi, off, addr, want)
				}
				off += 64
				n++
			})
			if want := int((hi - lo + 63) / 64); n != want {
				t.Fatalf("%s span [%d,%d): %d addresses, want %d", p.Name, lo, hi, n, want)
			}
		}
	}
}

// TestForEachCodeLineEquivalence does the same for the code walk,
// covering both permuted (JIT) and contiguous (linker-laid-out) text
// and partial final pages.
func TestForEachCodeLineEquivalence(t *testing.T) {
	for _, base := range All() {
		p := ForPlatform(base, base.Platform)
		l := p.BuildLayout()
		for pool := 0; pool < p.CodePools; pool++ {
			max := p.CodeWarm.Bytes / 64
			if lim := uint64(256 * 1024 / 64); max > lim {
				max = lim
			}
			for _, lines := range []uint64{0, 1, 63, 64, 65, 1000, max} {
				line := uint64(0)
				ForEachCodeLine(p, l, pool, lines, func(addr uint64) {
					if line >= lines {
						t.Fatalf("%s pool %d lines %d: extra address %#x",
							p.Name, pool, lines, addr)
					}
					if want := MapCodeLine(p, l, pool, line); addr != want {
						t.Fatalf("%s pool %d line %d = %#x, want %#x",
							p.Name, pool, line, addr, want)
					}
					line++
				})
				if line != lines {
					t.Fatalf("%s pool %d: %d addresses, want %d", p.Name, pool, line, lines)
				}
			}
		}
	}
}
