// Package prefetch implements the four hardware prefetchers of the
// paper's platforms (§5(5)): the L2 hardware (stream) prefetcher, the
// L2 adjacent-cache-line prefetcher, the L1-D DCU next-line
// prefetcher, and the L1-D DCU IP-stride prefetcher.
//
// Prefetchers observe each core's demand-access stream and speculate
// lines into the cache hierarchy. Their benefit (miss coverage) and
// cost (extra DRAM traffic) are both emergent: the Fig 17 result —
// turning prefetchers off wins only on bandwidth-starved Broadwell —
// falls out of the interaction with internal/mem's latency curve.
package prefetch

import (
	"softsku/internal/cache"
	"softsku/internal/knob"
)

// Stats counts prefetcher activity for one engine.
type Stats struct {
	Issued     uint64 // prefetches issued into the hierarchy
	Moved      uint64 // prefetches that actually installed a line
	FromMemory uint64 // prefetch fills sourced from DRAM (bandwidth cost)
}

const (
	streamTableSize = 16 // tracked 4 KiB page streams per core
	ipTableSize     = 64 // IP-stride entries per core
	streamDepth     = 4  // lines ahead once a stream is confirmed
	lineBytes       = 64
	pageBytes       = 4096
)

type streamEntry struct {
	page     uint64
	lastLine uint64 // line index within page
	dir      int    // +1 ascending, -1 descending, 0 unknown
	score    int    // confirmations; >= 1 triggers prefetch
	stamp    uint64
}

type ipEntry struct {
	ip       uint64
	lastAddr uint64
	stride   int64
	score    int
}

// Engine is one core's prefetcher complex. It is driven by the
// simulator on every demand access and issues prefetches into the
// shared hierarchy.
type Engine struct {
	mask  knob.PrefetchMask
	h     *cache.Hierarchy
	core  int
	clock uint64

	streams [streamTableSize]streamEntry
	ips     [ipTableSize]ipEntry

	stats Stats
}

// NewEngine builds a prefetcher complex for core, issuing into h with
// the given enable mask.
func NewEngine(h *cache.Hierarchy, core int, mask knob.PrefetchMask) *Engine {
	return &Engine{mask: mask, h: h, core: core}
}

// SetMask reconfigures which prefetchers are enabled (an MSR write).
func (e *Engine) SetMask(mask knob.PrefetchMask) { e.mask = mask }

// Mask returns the current enable mask.
func (e *Engine) Mask() knob.PrefetchMask { return e.mask }

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the counters.
func (e *Engine) ResetStats() { e.stats = Stats{} }

// OnAccess observes one demand access (after the hierarchy has
// serviced it) and issues any triggered prefetches. ip identifies the
// accessing instruction for the IP-stride prefetcher; level is where
// the demand access hit.
func (e *Engine) OnAccess(addr uint64, kind cache.Kind, ip uint64, level cache.Level) {
	if e.mask == knob.PrefetchNone {
		return
	}
	e.clock++
	if e.mask.Has(knob.PrefetchL2Adj) && level >= cache.LLC {
		// Fetch the buddy line of the 128-byte aligned pair.
		buddy := addr ^ lineBytes
		e.issueL2(buddy&^uint64(lineBytes-1), kind)
	}
	if e.mask.Has(knob.PrefetchL2HW) {
		e.stream(addr, kind)
	}
	if kind == cache.Data {
		if e.mask.Has(knob.PrefetchDCU) && level >= cache.L2 {
			// Next-line into L1-D on an L1 miss.
			e.issueL1(addr+lineBytes, kind)
		}
		if e.mask.Has(knob.PrefetchDCUIP) {
			e.ipStride(addr, ip, kind)
		}
	}
}

// stream implements the L2 hardware prefetcher: detect monotone line
// streams within a 4 KiB page and run ahead of them.
func (e *Engine) stream(addr uint64, kind cache.Kind) {
	page := addr / pageBytes
	line := (addr % pageBytes) / lineBytes
	// Find or allocate the page's stream entry (LRU).
	idx := -1
	victim := 0
	for i := range e.streams {
		if e.streams[i].page == page+1 { // +1 bias: zero means empty
			idx = i
			break
		}
		if e.streams[i].stamp < e.streams[victim].stamp {
			victim = i
		}
	}
	if idx < 0 {
		e.streams[victim] = streamEntry{page: page + 1, lastLine: line, stamp: e.clock}
		return
	}
	s := &e.streams[idx]
	s.stamp = e.clock
	dir := 0
	switch {
	case line == s.lastLine+1:
		dir = 1
	case line+1 == s.lastLine:
		dir = -1
	}
	if dir == 0 || (s.dir != 0 && dir != s.dir) {
		s.dir, s.score, s.lastLine = dir, 0, line
		return
	}
	s.dir = dir
	s.score++
	s.lastLine = line
	if s.score >= 1 {
		for d := 1; d <= streamDepth; d++ {
			next := int64(line) + int64(dir)*int64(d)
			if next < 0 || next >= pageBytes/lineBytes {
				break // streams do not cross page boundaries
			}
			e.issueL2(page*pageBytes+uint64(next)*lineBytes, kind)
		}
	}
}

// ipStride implements the DCU IP prefetcher: per-instruction stride
// detection with a small direct-mapped table.
func (e *Engine) ipStride(addr, ip uint64, kind cache.Kind) {
	ent := &e.ips[ip%ipTableSize]
	if ent.ip != ip {
		*ent = ipEntry{ip: ip, lastAddr: addr}
		return
	}
	stride := int64(addr) - int64(ent.lastAddr)
	ent.lastAddr = addr
	if stride == 0 {
		return
	}
	if stride == ent.stride {
		ent.score++
	} else {
		ent.stride = stride
		ent.score = 0
	}
	if ent.score >= 2 {
		target := int64(addr) + stride
		if target > 0 {
			e.issueL1(uint64(target), kind)
		}
	}
}

func (e *Engine) issueL2(addr uint64, kind cache.Kind) {
	e.stats.Issued++
	moved, fromMem := e.h.PrefetchL2(e.core, addr, kind)
	if moved {
		e.stats.Moved++
	}
	if fromMem {
		e.stats.FromMemory++
	}
}

func (e *Engine) issueL1(addr uint64, kind cache.Kind) {
	e.stats.Issued++
	moved, fromMem := e.h.PrefetchL1(e.core, addr, kind)
	if moved {
		e.stats.Moved++
	}
	if fromMem {
		e.stats.FromMemory++
	}
}
