package prefetch

import (
	"testing"

	"softsku/internal/cache"
	"softsku/internal/knob"
	"softsku/internal/platform"
	"softsku/internal/rng"
)

func newHier() *cache.Hierarchy {
	return cache.NewHierarchy(platform.Skylake18(), 1)
}

// drive runs a sequential sweep through the hierarchy with the given
// prefetch mask and returns (demand L1D miss ratio, dram prefetch fills).
func drive(mask knob.PrefetchMask, lines int, rounds int) (float64, uint64) {
	h := newHier()
	e := NewEngine(h, 0, mask)
	for r := 0; r < rounds; r++ {
		base := uint64(r) << 32 // fresh addresses every round: always cold
		for i := 0; i < lines; i++ {
			addr := base + uint64(i*64)
			lvl := h.Access(0, addr, cache.Data)
			e.OnAccess(addr, cache.Data, 7, lvl)
		}
	}
	s := h.Stats()
	mr := float64(s.L1D.Misses[cache.Data]) / float64(s.L1D.Accesses[cache.Data])
	return mr, e.Stats().FromMemory
}

func TestDisabledIssuesNothing(t *testing.T) {
	h := newHier()
	e := NewEngine(h, 0, knob.PrefetchNone)
	for i := 0; i < 1000; i++ {
		addr := uint64(i * 64)
		e.OnAccess(addr, cache.Data, 1, h.Access(0, addr, cache.Data))
	}
	if s := e.Stats(); s.Issued != 0 {
		t.Fatalf("disabled engine issued %d prefetches", s.Issued)
	}
}

func TestSequentialStreamCovered(t *testing.T) {
	offMR, _ := drive(knob.PrefetchNone, 512, 20)
	onMR, dram := drive(knob.PrefetchAll, 512, 20)
	if onMR >= offMR*0.7 {
		t.Fatalf("prefetchers should cover a sequential stream: off=%.3f on=%.3f", offMR, onMR)
	}
	if dram == 0 {
		t.Fatal("prefetch coverage must cost DRAM traffic")
	}
}

func TestDCUOnlyHelpsSequential(t *testing.T) {
	offMR, _ := drive(knob.PrefetchNone, 512, 20)
	dcuMR, _ := drive(knob.PrefetchDCU, 512, 20)
	if dcuMR >= offMR {
		t.Fatalf("DCU next-line should help sequential: off=%.3f dcu=%.3f", offMR, dcuMR)
	}
}

func TestRandomStreamGainsLittle(t *testing.T) {
	run := func(mask knob.PrefetchMask) (float64, uint64) {
		h := newHier()
		e := NewEngine(h, 0, mask)
		src := rng.New(9)
		for i := 0; i < 50000; i++ {
			addr := uint64(src.Intn(1<<30)) &^ 63 // random lines over 1 GiB
			lvl := h.Access(0, addr, cache.Data)
			e.OnAccess(addr, cache.Data, uint64(src.Intn(1000)), lvl)
		}
		s := h.Stats()
		return float64(s.L1D.Misses[cache.Data]) / float64(s.L1D.Accesses[cache.Data]), e.Stats().FromMemory
	}
	offMR, _ := run(knob.PrefetchNone)
	onMR, dram := run(knob.PrefetchAll)
	if offMR-onMR > 0.15 {
		t.Fatalf("random stream should not be highly coverable: off=%.3f on=%.3f", offMR, onMR)
	}
	if dram == 0 {
		t.Fatal("prefetchers still burn bandwidth on random streams (adjacent-line)")
	}
}

func TestIPStrideDetectsConstantStride(t *testing.T) {
	h := newHier()
	e := NewEngine(h, 0, knob.PrefetchDCUIP)
	const stride = 256
	misses := 0
	for i := 0; i < 2000; i++ {
		addr := uint64(0x100000 + i*stride)
		lvl := h.Access(0, addr, cache.Data)
		if lvl != cache.L1 {
			misses++
		}
		e.OnAccess(addr, cache.Data, 42, lvl) // same IP throughout
	}
	// With a 256B stride every line is new (4 accesses per line... no:
	// 256B stride = a new line each access). Without prefetch, all 2000
	// would miss; IP-stride should cover most after warm-up.
	if misses > 400 {
		t.Fatalf("IP-stride covered too little: %d misses of 2000", misses)
	}
	if e.Stats().Issued == 0 {
		t.Fatal("no prefetches issued")
	}
}

func TestIPStrideIgnoresUnstablePattern(t *testing.T) {
	h := newHier()
	e := NewEngine(h, 0, knob.PrefetchDCUIP)
	src := rng.New(3)
	for i := 0; i < 2000; i++ {
		addr := uint64(src.Intn(1 << 28))
		lvl := h.Access(0, addr, cache.Data)
		e.OnAccess(addr, cache.Data, 42, lvl)
	}
	s := e.Stats()
	if s.Issued > 200 {
		t.Fatalf("unstable strides should rarely trigger: issued=%d", s.Issued)
	}
}

func TestAdjacentLineBuddy(t *testing.T) {
	h := newHier()
	e := NewEngine(h, 0, knob.PrefetchL2Adj)
	addr := uint64(0x40000) // 128B-aligned; buddy is +64
	lvl := h.Access(0, addr, cache.Data)
	if lvl != cache.Memory {
		t.Fatalf("expected cold miss, got %v", lvl)
	}
	e.OnAccess(addr, cache.Data, 1, lvl)
	// Buddy must now be in L2.
	if got := h.Access(0, addr+64, cache.Data); got > cache.L2 {
		t.Fatalf("buddy line not prefetched: hit at %v", got)
	}
}

func TestStreamsStopAtPageBoundary(t *testing.T) {
	h := newHier()
	e := NewEngine(h, 0, knob.PrefetchL2HW)
	// Walk the last lines of a page; the prefetcher must not cross into
	// the next page.
	page := uint64(0x7000)
	for i := 58; i < 64; i++ {
		addr := page + uint64(i*64)
		e.OnAccess(addr, cache.Data, 1, h.Access(0, addr, cache.Data))
	}
	nextPage := page + 4096
	if h.LLCs.Probe(nextPage) {
		t.Fatal("stream prefetcher crossed a 4 KiB page boundary")
	}
}

func TestSetMask(t *testing.T) {
	e := NewEngine(newHier(), 0, knob.PrefetchAll)
	e.SetMask(knob.PrefetchNone)
	if e.Mask() != knob.PrefetchNone {
		t.Fatal("SetMask failed")
	}
}

func TestResetStats(t *testing.T) {
	h := newHier()
	e := NewEngine(h, 0, knob.PrefetchAll)
	for i := 0; i < 100; i++ {
		addr := uint64(i * 64)
		e.OnAccess(addr, cache.Data, 1, h.Access(0, addr, cache.Data))
	}
	e.ResetStats()
	if s := e.Stats(); s.Issued != 0 || s.FromMemory != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
}

func TestMovedNeverExceedsIssued(t *testing.T) {
	h := newHier()
	e := NewEngine(h, 0, knob.PrefetchAll)
	src := rng.New(4)
	for i := 0; i < 20000; i++ {
		var addr uint64
		if src.Bool(0.7) {
			addr = uint64(i * 64) // sequential component
		} else {
			addr = uint64(src.Intn(1 << 26))
		}
		e.OnAccess(addr, cache.Data, uint64(src.Intn(32)), h.Access(0, addr, cache.Data))
	}
	s := e.Stats()
	if s.Moved > s.Issued || s.FromMemory > s.Moved {
		t.Fatalf("stat invariant violated: %+v", s)
	}
}

func BenchmarkEngineSequential(b *testing.B) {
	h := newHier()
	e := NewEngine(h, 0, knob.PrefetchAll)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i * 64)
		e.OnAccess(addr, cache.Data, 7, h.Access(0, addr, cache.Data))
	}
}
