package knob

import (
	"testing"
	"testing/quick"
)

func TestIDStringRoundTrip(t *testing.T) {
	for _, id := range All() {
		got, err := ParseID(id.String())
		if err != nil {
			t.Fatalf("ParseID(%q): %v", id.String(), err)
		}
		if got != id {
			t.Fatalf("round trip %v -> %v", id, got)
		}
	}
}

func TestParseIDCaseInsensitive(t *testing.T) {
	id, err := ParseID("  CoreFreq ")
	if err != nil || id != CoreFreq {
		t.Fatalf("got %v, %v", id, err)
	}
}

func TestParseIDUnknown(t *testing.T) {
	if _, err := ParseID("voltage"); err == nil {
		t.Fatal("expected error for unknown knob")
	}
}

func TestRequiresReboot(t *testing.T) {
	want := map[ID]bool{
		CoreFreq: false, UncoreFreq: false, CoreCount: true,
		CDP: false, Prefetch: false, THP: false, SHP: true,
	}
	for id, w := range want {
		if id.RequiresReboot() != w {
			t.Errorf("%v reboot = %v, want %v", id, id.RequiresReboot(), w)
		}
	}
}

func TestPrefetchMaskNames(t *testing.T) {
	cases := map[PrefetchMask]string{
		PrefetchNone:                "all-off",
		PrefetchAll:                 "all-on",
		PrefetchDCU | PrefetchDCUIP: "dcu+dcuip",
		PrefetchDCU:                 "dcu-only",
		PrefetchL2HW | PrefetchDCU:  "l2hw+dcu",
		PrefetchL2Adj | PrefetchDCU: "l2adj+dcu",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%08b -> %q, want %q", m, got, want)
		}
	}
}

func TestStudiedPrefetchConfigsMatchPaper(t *testing.T) {
	cfgs := StudiedPrefetchConfigs()
	if len(cfgs) != 5 {
		t.Fatalf("paper studies 5 prefetcher configs, got %d", len(cfgs))
	}
	if cfgs[0] != PrefetchNone || cfgs[1] != PrefetchAll {
		t.Fatal("first two configs must be all-off, all-on")
	}
}

func TestPrefetchHas(t *testing.T) {
	m := PrefetchL2HW | PrefetchDCU
	if !m.Has(PrefetchDCU) || m.Has(PrefetchDCUIP) {
		t.Fatal("Has logic wrong")
	}
	if !m.Has(PrefetchNone) {
		t.Fatal("every mask has the empty mask")
	}
}

func TestTHPRoundTrip(t *testing.T) {
	for _, m := range []THPMode{THPMadvise, THPAlways, THPNever} {
		got, err := ParseTHP(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip %v: got %v err %v", m, got, err)
		}
	}
	if _, err := ParseTHP("sometimes"); err == nil {
		t.Fatal("expected error")
	}
}

func TestCDPConfig(t *testing.T) {
	var off CDPConfig
	if off.Enabled() || off.String() != "off" {
		t.Fatal("zero CDP should be off")
	}
	c := CDPConfig{DataWays: 6, CodeWays: 5}
	if !c.Enabled() || c.Ways() != 11 || c.String() != "{6,5}" {
		t.Fatalf("CDP render: %v ways=%d", c, c.Ways())
	}
}

func TestConfigWithGet(t *testing.T) {
	base := Config{CoreFreqMHz: 2200, UncoreFreqMHz: 1800, Cores: 18,
		Prefetch: PrefetchAll, THP: THPMadvise}
	c := base.With(CoreFreq, IntSetting("1.6GHz", 1600))
	if c.CoreFreqMHz != 1600 || base.CoreFreqMHz != 2200 {
		t.Fatal("With must not mutate the receiver")
	}
	c = c.With(CDP, CDPSetting(CDPConfig{DataWays: 6, CodeWays: 5}))
	if c.CDP.DataWays != 6 {
		t.Fatal("CDP not applied")
	}
	c = c.With(THP, THPSetting(THPAlways))
	if c.THP != THPAlways {
		t.Fatal("THP not applied")
	}
	c = c.With(Prefetch, PrefetchSetting(PrefetchNone))
	if c.Prefetch != PrefetchNone {
		t.Fatal("prefetch not applied")
	}
	c = c.With(SHP, IntSetting("300", 300))
	if c.SHPCount != 300 {
		t.Fatal("SHP not applied")
	}
}

func TestConfigWithGetRoundTripProperty(t *testing.T) {
	f := func(core, uncore uint16, cores, shp uint8) bool {
		c := Config{
			CoreFreqMHz:   int(core%1000) + 1600,
			UncoreFreqMHz: int(uncore%500) + 1400,
			Cores:         int(cores%20) + 1,
			SHPCount:      int(shp) * 10,
		}
		for _, id := range All() {
			if c.With(id, c.Get(id)) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiff(t *testing.T) {
	a := Config{CoreFreqMHz: 2200, Cores: 18}
	b := a.With(UncoreFreq, IntSetting("1.4GHz", 1400))
	ids := Diff(a, b)
	if len(ids) != 1 || ids[0] != UncoreFreq {
		t.Fatalf("diff=%v", ids)
	}
	if len(Diff(a, a)) != 0 {
		t.Fatal("self-diff must be empty")
	}
}

func TestSpaceEnumerate(t *testing.T) {
	s := NewSpace()
	s.Set(CoreFreq, IntSetting("1.6", 1600), IntSetting("2.2", 2200))
	s.Set(THP, THPSetting(THPMadvise), THPSetting(THPAlways), THPSetting(THPNever))
	if s.Size() != 6 {
		t.Fatalf("size=%d", s.Size())
	}
	if s.IndependentPoints() != 5 {
		t.Fatalf("independent points=%d", s.IndependentPoints())
	}
	var seen []Config
	s.Enumerate(Config{Cores: 4}, func(c Config) bool {
		seen = append(seen, c)
		return true
	})
	if len(seen) != 6 {
		t.Fatalf("enumerated %d", len(seen))
	}
	for _, c := range seen {
		if c.Cores != 4 {
			t.Fatal("base fields must carry through enumeration")
		}
	}
	// Early stop.
	count := 0
	s.Enumerate(Config{}, func(Config) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop at %d", count)
	}
}

func TestSpaceKnobsOrder(t *testing.T) {
	s := NewSpace()
	s.Set(SHP, IntSetting("0", 0))
	s.Set(CoreFreq, IntSetting("2.2", 2200))
	ids := s.Knobs()
	if len(ids) != 2 || ids[0] != CoreFreq || ids[1] != SHP {
		t.Fatalf("knob order: %v", ids)
	}
}

func TestSpaceRemove(t *testing.T) {
	s := NewSpace()
	s.Set(SHP, IntSetting("0", 0), IntSetting("100", 100))
	s.Remove(SHP)
	if len(s.Knobs()) != 0 {
		t.Fatal("Remove failed")
	}
}

func TestConfigString(t *testing.T) {
	c := Config{CoreFreqMHz: 2200, UncoreFreqMHz: 1800, Cores: 18,
		CDP: CDPConfig{DataWays: 6, CodeWays: 5}, Prefetch: PrefetchAll,
		THP: THPAlways, SHPCount: 300}
	got := c.String()
	for _, want := range []string{"2.2GHz", "1.8GHz", "cores=18", "{6,5}", "all-on", "always", "shp=300"} {
		if !contains(got, want) {
			t.Errorf("config string %q missing %q", got, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
