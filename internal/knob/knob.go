// Package knob defines the soft-SKU configuration design space: the
// seven coarse-grain server knobs µSKU tunes (§4–5 of the paper) and
// the configuration records the A/B tester sweeps.
//
// The seven knobs are: core frequency, uncore frequency, active core
// count, LLC code/data prioritization (CDP), hardware prefetcher
// enables, transparent huge pages (THP), and statically-allocated huge
// pages (SHP).
package knob

import (
	"fmt"
	"strings"
)

// ID identifies one of the seven tunable knobs.
type ID int

// The seven knobs, in the order the paper presents them.
const (
	CoreFreq ID = iota
	UncoreFreq
	CoreCount
	CDP
	Prefetch
	THP
	SHP
	numKnobs
)

// All lists every knob ID in presentation order.
func All() []ID {
	ids := make([]ID, numKnobs)
	for i := range ids {
		ids[i] = ID(i)
	}
	return ids
}

// String returns the knob's canonical lower-case name, as used in
// µSKU input files.
func (id ID) String() string {
	switch id {
	case CoreFreq:
		return "corefreq"
	case UncoreFreq:
		return "uncorefreq"
	case CoreCount:
		return "corecount"
	case CDP:
		return "cdp"
	case Prefetch:
		return "prefetch"
	case THP:
		return "thp"
	case SHP:
		return "shp"
	default:
		return fmt.Sprintf("knob(%d)", int(id))
	}
}

// ParseID parses a knob name as written in µSKU input files.
func ParseID(s string) (ID, error) {
	for _, id := range All() {
		if id.String() == strings.ToLower(strings.TrimSpace(s)) {
			return id, nil
		}
	}
	return 0, fmt.Errorf("knob: unknown knob %q", s)
}

// RequiresReboot reports whether changing this knob requires a server
// reboot (§4: core count changes go through the boot loader's isolcpus
// flag; SHP reservations happen at boot).
func (id ID) RequiresReboot() bool {
	return id == CoreCount || id == SHP
}

// PrefetchMask selects which of the four hardware prefetchers are
// enabled (§5(5)); bits mirror IA32_MISC_ENABLE-style controls.
type PrefetchMask uint8

// The four prefetchers on our platforms.
const (
	PrefetchL2HW  PrefetchMask = 1 << iota // L2 hardware (stream) prefetcher
	PrefetchL2Adj                          // L2 adjacent cache line prefetcher
	PrefetchDCU                            // L1-D next-line prefetcher
	PrefetchDCUIP                          // L1-D IP-stride prefetcher

	PrefetchNone PrefetchMask = 0
	PrefetchAll               = PrefetchL2HW | PrefetchL2Adj | PrefetchDCU | PrefetchDCUIP
)

// Has reports whether all prefetchers in m2 are enabled in m.
func (m PrefetchMask) Has(m2 PrefetchMask) bool { return m&m2 == m2 }

// String names the mask using the paper's five studied configurations
// where possible.
func (m PrefetchMask) String() string {
	switch m {
	case PrefetchNone:
		return "all-off"
	case PrefetchAll:
		return "all-on"
	case PrefetchDCU | PrefetchDCUIP:
		return "dcu+dcuip"
	case PrefetchDCU:
		return "dcu-only"
	case PrefetchL2HW | PrefetchDCU:
		return "l2hw+dcu"
	}
	var parts []string
	if m.Has(PrefetchL2HW) {
		parts = append(parts, "l2hw")
	}
	if m.Has(PrefetchL2Adj) {
		parts = append(parts, "l2adj")
	}
	if m.Has(PrefetchDCU) {
		parts = append(parts, "dcu")
	}
	if m.Has(PrefetchDCUIP) {
		parts = append(parts, "dcuip")
	}
	if len(parts) == 0 {
		return "all-off"
	}
	return strings.Join(parts, "+")
}

// StudiedPrefetchConfigs returns the five prefetcher configurations
// µSKU considers (§5(5)).
func StudiedPrefetchConfigs() []PrefetchMask {
	return []PrefetchMask{
		PrefetchNone,
		PrefetchAll,
		PrefetchDCU | PrefetchDCUIP,
		PrefetchDCU,
		PrefetchL2HW | PrefetchDCU,
	}
}

// THPMode is the transparent-huge-page policy (§5(6)).
type THPMode int

// The three THP policies µSKU considers.
const (
	THPMadvise THPMode = iota // enabled only for regions that request it (production default)
	THPAlways                 // enabled for all anonymous memory
	THPNever                  // disabled even if requested
)

// String returns the sysfs-style policy name.
func (m THPMode) String() string {
	switch m {
	case THPMadvise:
		return "madvise"
	case THPAlways:
		return "always"
	case THPNever:
		return "never"
	default:
		return fmt.Sprintf("thp(%d)", int(m))
	}
}

// ParseTHP parses a THP policy name.
func ParseTHP(s string) (THPMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "madvise":
		return THPMadvise, nil
	case "always":
		return THPAlways, nil
	case "never":
		return THPNever, nil
	}
	return 0, fmt.Errorf("knob: unknown THP mode %q", s)
}

// CDPConfig partitions LLC ways between data and code using Intel
// RDT's Code/Data Prioritization (§5(4)). The zero value means CDP is
// disabled and code/data share all ways.
type CDPConfig struct {
	DataWays int
	CodeWays int
}

// Enabled reports whether CDP partitioning is active.
func (c CDPConfig) Enabled() bool { return c.DataWays > 0 || c.CodeWays > 0 }

// Ways returns the total ways the partition spans.
func (c CDPConfig) Ways() int { return c.DataWays + c.CodeWays }

// String renders the paper's "{data, code}" labelling.
func (c CDPConfig) String() string {
	if !c.Enabled() {
		return "off"
	}
	return fmt.Sprintf("{%d,%d}", c.DataWays, c.CodeWays)
}

// Config is a complete soft-SKU knob assignment for one server.
type Config struct {
	CoreFreqMHz   int
	UncoreFreqMHz int
	Cores         int
	CDP           CDPConfig
	Prefetch      PrefetchMask
	THP           THPMode
	SHPCount      int // number of reserved 2 MiB static huge pages
}

// String renders the config compactly for design-space maps and logs.
func (c Config) String() string {
	return fmt.Sprintf("core=%.1fGHz uncore=%.1fGHz cores=%d cdp=%s pf=%s thp=%s shp=%d",
		float64(c.CoreFreqMHz)/1000, float64(c.UncoreFreqMHz)/1000,
		c.Cores, c.CDP, c.Prefetch, c.THP, c.SHPCount)
}

// With returns a copy of c with the single knob id set to the given
// setting value. It panics on a type mismatch, which indicates a
// programming error in sweep construction.
func (c Config) With(id ID, v Setting) Config {
	switch id {
	case CoreFreq:
		c.CoreFreqMHz = v.Int
	case UncoreFreq:
		c.UncoreFreqMHz = v.Int
	case CoreCount:
		c.Cores = v.Int
	case CDP:
		c.CDP = v.CDP
	case Prefetch:
		c.Prefetch = v.Prefetch
	case THP:
		c.THP = v.THP
	case SHP:
		c.SHPCount = v.Int
	default:
		panic(fmt.Sprintf("knob: With on unknown knob %v", id))
	}
	return c
}

// Get returns c's current setting for the given knob.
func (c Config) Get(id ID) Setting {
	switch id {
	case CoreFreq:
		return IntSetting(fmt.Sprintf("%.1fGHz", float64(c.CoreFreqMHz)/1000), c.CoreFreqMHz)
	case UncoreFreq:
		return IntSetting(fmt.Sprintf("%.1fGHz", float64(c.UncoreFreqMHz)/1000), c.UncoreFreqMHz)
	case CoreCount:
		return IntSetting(fmt.Sprintf("%d cores", c.Cores), c.Cores)
	case CDP:
		return CDPSetting(c.CDP)
	case Prefetch:
		return PrefetchSetting(c.Prefetch)
	case THP:
		return THPSetting(c.THP)
	case SHP:
		return IntSetting(fmt.Sprintf("%d SHPs", c.SHPCount), c.SHPCount)
	default:
		panic(fmt.Sprintf("knob: Get on unknown knob %v", id))
	}
}

// Diff lists the knobs on which a and b differ.
func Diff(a, b Config) []ID {
	var ids []ID
	for _, id := range All() {
		if a.Get(id) != b.Get(id) {
			ids = append(ids, id)
		}
	}
	return ids
}

// Setting is one candidate value for a knob: a tagged union with a
// display name. Exactly one payload field is meaningful for a given
// knob ID.
type Setting struct {
	Name     string
	Int      int
	CDP      CDPConfig
	Prefetch PrefetchMask
	THP      THPMode
}

// IntSetting builds a Setting holding an integer payload (frequencies
// in MHz, core counts, SHP counts).
func IntSetting(name string, v int) Setting { return Setting{Name: name, Int: v} }

// CDPSetting builds a Setting holding a CDP partition.
func CDPSetting(c CDPConfig) Setting { return Setting{Name: c.String(), CDP: c} }

// PrefetchSetting builds a Setting holding a prefetcher mask.
func PrefetchSetting(m PrefetchMask) Setting { return Setting{Name: m.String(), Prefetch: m} }

// THPSetting builds a Setting holding a THP policy.
func THPSetting(m THPMode) Setting { return Setting{Name: m.String(), THP: m} }

// Space enumerates the candidate settings for each knob on a given
// platform/microservice pair. Knobs absent from the map are held at
// their baseline value during sweeps (§4: µSKU disables knobs that do
// not apply, e.g. SHP on services that never request huge pages).
type Space struct {
	Values map[ID][]Setting
}

// NewSpace returns an empty design space.
func NewSpace() *Space { return &Space{Values: make(map[ID][]Setting)} }

// Set installs the candidate settings for one knob, replacing any
// previous candidates.
func (s *Space) Set(id ID, vals ...Setting) { s.Values[id] = vals }

// Remove disables a knob entirely (it will be skipped in sweeps).
func (s *Space) Remove(id ID) { delete(s.Values, id) }

// Knobs returns the IDs present in the space, in presentation order.
func (s *Space) Knobs() []ID {
	var ids []ID
	for _, id := range All() {
		if len(s.Values[id]) > 0 {
			ids = append(ids, id)
		}
	}
	return ids
}

// Size returns the number of points in the exhaustive cross-product.
func (s *Space) Size() int {
	size := 1
	for _, id := range s.Knobs() {
		size *= len(s.Values[id])
	}
	return size
}

// IndependentPoints returns the number of A/B tests an independent
// (one-knob-at-a-time) sweep performs.
func (s *Space) IndependentPoints() int {
	n := 0
	for _, id := range s.Knobs() {
		n += len(s.Values[id])
	}
	return n
}

// Enumerate calls fn for every configuration in the exhaustive
// cross-product, starting from base. Iteration order is deterministic.
// If fn returns false, enumeration stops early.
func (s *Space) Enumerate(base Config, fn func(Config) bool) {
	ids := s.Knobs()
	var rec func(i int, c Config) bool
	rec = func(i int, c Config) bool {
		if i == len(ids) {
			return fn(c)
		}
		for _, v := range s.Values[ids[i]] {
			if !rec(i+1, c.With(ids[i], v)) {
				return false
			}
		}
		return true
	}
	rec(0, base)
}
