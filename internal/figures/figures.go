// Package figures regenerates every table and figure of the paper's
// evaluation: each function runs the corresponding experiment on the
// simulated fleet and returns a rendered table, side by side with the
// paper's reported values where the paper gives them. The root-level
// benchmarks, cmd/characterize, and EXPERIMENTS.md all draw from here.
package figures

import (
	"fmt"
	"strings"

	"softsku/internal/platform"
	"softsku/internal/sim"
	"softsku/internal/workload"
)

// Table is one reproduced table or figure.
type Table struct {
	ID     string // e.g. "Table 2", "Fig 9"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	emit := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	emit(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	emit(sep)
	for _, r := range t.Rows {
		emit(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// serviceOrder is the paper's presentation order.
var serviceOrder = []string{"Web", "Feed1", "Feed2", "Ads1", "Ads2", "Cache1", "Cache2"}

// Context caches per-service machines, operating points and peak-load
// searches so the figure set reuses expensive work.
type Context struct {
	Seed     uint64
	machines map[string]*sim.Machine
	ops      map[string]sim.Operating
	peaks    map[string]sim.PeakLoad
}

// NewContext builds a figure context with the given seed.
func NewContext(seed uint64) *Context {
	return &Context{
		Seed:     seed,
		machines: make(map[string]*sim.Machine),
		ops:      make(map[string]sim.Operating),
		peaks:    make(map[string]sim.PeakLoad),
	}
}

// Machine returns the production-configured machine for a service on
// its default platform.
func (c *Context) Machine(svc string) *sim.Machine {
	if m, ok := c.machines[svc]; ok {
		return m
	}
	prof, err := workload.ByName(svc)
	if err != nil {
		panic(err)
	}
	m, err := MachineFor(prof.Name, prof.Platform, c.Seed)
	if err != nil {
		panic(err)
	}
	c.machines[svc] = m
	return m
}

// Operating returns the service's peak operating point.
func (c *Context) Operating(svc string) sim.Operating {
	if op, ok := c.ops[svc]; ok {
		return op
	}
	op := c.Machine(svc).SolvePeak()
	c.ops[svc] = op
	return op
}

// Peak returns the service's QoS-limited peak-load service simulation.
func (c *Context) Peak(svc string) sim.PeakLoad {
	if p, ok := c.peaks[svc]; ok {
		return p
	}
	p := c.Machine(svc).FindPeak(c.Seed)
	c.peaks[svc] = p
	return p
}

// MachineFor builds a production-configured machine for an arbitrary
// service/platform pair.
func MachineFor(svc, plat string, seed uint64) (*sim.Machine, error) {
	base, err := workload.ByName(svc)
	if err != nil {
		return nil, err
	}
	sku, err := platform.ByName(plat)
	if err != nil {
		return nil, err
	}
	prof := workload.ForPlatform(base, sku.Name)
	srv, err := platform.NewServer(sku, sim.ProductionConfig(sku, prof))
	if err != nil {
		return nil, err
	}
	return sim.NewMachine(srv, prof, seed)
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

// order10 renders a value as its order of magnitude, the way Table 2
// reports approximate scales.
func order10(v float64) string {
	if v <= 0 {
		return "0"
	}
	exp := 0
	for v >= 10 {
		v /= 10
		exp++
	}
	for v < 1 {
		v *= 10
		exp--
	}
	return fmt.Sprintf("O(1e%d)", exp)
}
