package figures

import (
	"fmt"

	"softsku/internal/core"
	"softsku/internal/knob"
	"softsku/internal/platform"
	"softsku/internal/sim"
	"softsku/internal/workload"
)

// The three µSKU evaluation targets (§5): Web on two hardware
// generations, plus Ads1.
var tuneTargets = []struct{ Service, Platform string }{
	{"Web", "Skylake18"},
	{"Web", "Broadwell16"},
	{"Ads1", "Skylake18"},
}

// fastAB shrinks the A/B budget for figure generation; individual knob
// effects here are percent-scale, well above the reduced resolution.
func fastAB(in *core.Input) {
	in.AB.MinSamples = 150
	in.AB.MaxSamples = 2000
}

// sweepKnob runs µSKU's independent sweep restricted to one knob for
// one target and returns the design-space map rows.
func sweepKnob(service, platform string, id knob.ID, seed uint64) (core.KnobSweep, error) {
	in := core.DefaultInput(service, platform)
	in.Seed = seed
	in.Knobs = []knob.ID{id}
	fastAB(&in)
	tool, err := core.New(in)
	if err != nil {
		return core.KnobSweep{}, err
	}
	res, err := tool.Run()
	if err != nil {
		return core.KnobSweep{}, err
	}
	if len(res.Map) == 0 {
		return core.KnobSweep{Knob: id}, nil
	}
	return res.Map[0], nil
}

// knobFigure renders one knob's A/B sweep across the three targets.
func knobFigure(id, title string, kid knob.ID, seed uint64, notes ...string) Table {
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"target", "setting", "Δ vs production", "chosen"},
		Notes:  notes,
	}
	for _, tgt := range tuneTargets {
		sweep, err := sweepKnob(tgt.Service, tgt.Platform, kid, seed)
		if err != nil {
			panic(err)
		}
		label := fmt.Sprintf("%s (%s)", tgt.Service, tgt.Platform)
		if len(sweep.Points) == 0 {
			t.Rows = append(t.Rows, []string{label, "-", "knob disabled for this target", ""})
			continue
		}
		for _, p := range sweep.Points {
			mark := ""
			if p.Chosen {
				mark = "<="
			}
			outcome := "production baseline"
			if !p.IsBaseline {
				outcome = p.Outcome.String()
			}
			t.Rows = append(t.Rows, []string{label, p.Setting.Name, outcome, mark})
		}
	}
	return t
}

// Fig14Frequency reproduces Fig 14: core and uncore frequency scaling.
func Fig14Frequency(seed uint64) Table {
	t := knobFigure("Fig 14a", "Core frequency scaling (µSKU A/B)", knob.CoreFreq, seed,
		"paper: throughput rises precipitously to 1.9 GHz, diminishing beyond; max is best",
		"Ads1's AVX use caps it at 2.0 GHz under the shared power budget")
	u := knobFigure("Fig 14b", "Uncore frequency scaling (µSKU A/B)", knob.UncoreFreq, seed,
		"paper: 1.8 GHz (maximum) is best for both services")
	t.Rows = append(t.Rows, []string{"--", "--", "-- uncore --", ""})
	t.Rows = append(t.Rows, u.Rows...)
	t.Notes = append(t.Notes, u.Notes...)
	t.ID = "Fig 14"
	t.Title = "Core and uncore frequency scaling"
	return t
}

// Fig15CoreCount reproduces Fig 15: core count scaling for Web on both
// platforms (Ads1 is excluded: its load balancing cannot meet QoS with
// fewer cores, and reboots are intolerable — §6.1(3)).
func Fig15CoreCount(seed uint64) Table {
	t := Table{
		ID:     "Fig 15",
		Title:  "Perf. trend with core count scaling (gain over 2 cores)",
		Header: []string{"target", "cores", "gain over 2 cores", "ideal"},
		Notes: []string{
			"paper: near-linear to ~8 cores, then LLC interference bends the curve",
			"Ads1 excluded (QoS constraints preclude reduced core counts, §6.1(3))",
		},
	}
	for _, tgt := range []struct{ Service, Platform string }{
		{"Web", "Skylake18"}, {"Web", "Broadwell16"},
	} {
		probe, err := MachineFor(tgt.Service, tgt.Platform, seed)
		if err != nil {
			panic(err)
		}
		maxCores := probe.Server().SKU().Cores()
		prodCfg := probe.Server().Config()
		base := 0.0
		counts := []int{2, 4, 8, 12, 16}
		if maxCores != 16 {
			counts = append(counts, maxCores)
		}
		for _, n := range counts {
			if n > maxCores {
				continue
			}
			cfg := prodCfg.With(knob.CoreCount, knob.IntSetting("n", n))
			mm, err := MachineFor2(tgt.Service, tgt.Platform, seed, cfg)
			if err != nil {
				panic(err)
			}
			mips := mm.SolvePeak().MIPS
			if n == 2 {
				base = mips
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s (%s)", tgt.Service, tgt.Platform),
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%.2fx", mips/base),
				fmt.Sprintf("%.1fx", float64(n)/2),
			})
		}
	}
	return t
}

// Fig16CDP reproduces Fig 16: the CDP partition sweep.
func Fig16CDP(seed uint64) Table {
	return knobFigure("Fig 16", "Perf. trend with CDP scaling {data ways, code ways}", knob.CDP, seed,
		"paper: Web(Skylake) +4.5% at {6,5}; Ads1 +2.5% at {9,2}; Web(Broadwell) no gain (bandwidth-saturated)",
		"measured winners match; magnitudes are smaller (see EXPERIMENTS.md)")
}

// Fig17Prefetcher reproduces Fig 17: the five prefetcher configurations.
func Fig17Prefetcher(seed uint64) Table {
	return knobFigure("Fig 17", "Perf. trends with varied prefetcher configurations", knob.Prefetch, seed,
		"paper: turning prefetchers off wins ~3% only on bandwidth-bound Web(Broadwell)")
}

// Fig18HugePages reproduces Fig 18: THP policies and the SHP sweep.
func Fig18HugePages(seed uint64) Table {
	t := knobFigure("Fig 18a", "Transparent huge pages (always / madvise / never)", knob.THP, seed,
		"paper: always ON gains 1.87% on Web(Skylake) only; never ≈ madvise")
	s := knobFigure("Fig 18b", "Statically-allocated huge pages (0..600)", knob.SHP, seed,
		"paper: sweet spots at 300 (Skylake, prod 200) and 400 (Broadwell, prod 488)")
	t.Rows = append(t.Rows, []string{"--", "--", "-- SHP --", ""})
	t.Rows = append(t.Rows, s.Rows...)
	t.Notes = append(t.Notes, s.Notes...)
	t.ID = "Fig 18"
	t.Title = "Huge page knobs (THP and SHP)"
	return t
}

// Fig19SoftSKU reproduces Fig 19: full µSKU runs composing soft SKUs
// for all three targets, compared against stock and hand-tuned
// production configurations.
func Fig19SoftSKU(seed uint64) Table {
	t := Table{
		ID:     "Fig 19",
		Title:  "Perf. gain with µSKU soft SKUs over stock and hand-tuned servers",
		Header: []string{"target", "soft SKU", "vs stock", "paper", "vs production", "paper"},
	}
	paper := map[string][2]string{
		"Web (Skylake18)":   {"+6.2%", "+4.5%"},
		"Web (Broadwell16)": {"+7.2%", "+3.0%"},
		"Ads1 (Skylake18)":  {"+2.5%", "+2.5%"},
	}
	for _, tgt := range tuneTargets {
		in := core.DefaultInput(tgt.Service, tgt.Platform)
		in.Seed = seed
		fastAB(&in)
		tool, err := core.New(in)
		if err != nil {
			panic(err)
		}
		res, err := tool.Run()
		if err != nil {
			panic(err)
		}
		label := fmt.Sprintf("%s (%s)", tgt.Service, tgt.Platform)
		p := paper[label]
		t.Rows = append(t.Rows, []string{
			label,
			res.SoftSKU.String(),
			fmt.Sprintf("%+.1f%%", res.VsStock.DeltaPct), p[0],
			fmt.Sprintf("%+.1f%%", res.VsProduction.DeltaPct), p[1],
		})
	}
	t.Notes = append(t.Notes,
		"µSKU's prototype takes 5-10 virtual hours per target (§6.2); gains are statistically significant at 95%")
	return t
}

// MachineFor2 builds a machine with an explicit configuration.
func MachineFor2(svc, plat string, seed uint64, cfg knob.Config) (*sim.Machine, error) {
	base, err := workload.ByName(svc)
	if err != nil {
		return nil, err
	}
	sku, err := platform.ByName(plat)
	if err != nil {
		return nil, err
	}
	prof := workload.ForPlatform(base, sku.Name)
	srv, err := platform.NewServer(sku, cfg)
	if err != nil {
		return nil, err
	}
	return sim.NewMachine(srv, prof, seed)
}
