package figures

import (
	"fmt"
	"strings"
	"testing"
)

func TestTable1Static(t *testing.T) {
	tab := Table1SKUs()
	out := tab.String()
	for _, want := range []string{"Skylake18", "Skylake20", "Broadwell16", "24.75 MiB", "18", "SMT"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig5Static(t *testing.T) {
	tab := Fig5Mix()
	if len(tab.Rows) != 7+12 {
		t.Fatalf("Fig 5 rows = %d, want 7 services + 12 SPEC", len(tab.Rows))
	}
}

func TestCharacterizationTables(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization tables are slow")
	}
	c := NewContext(7)
	for _, tab := range []Table{
		Table2Throughput(c), Fig1Diversity(c), Fig2Breakdown(c), Fig3CPUUtil(c),
		Fig4CtxSwitch(c), Fig6IPC(c), Fig7TopDown(c), Fig8L1L2(c), Fig9LLC(c),
		Fig11TLB(c), Fig12Bandwidth(c),
	} {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", tab.ID)
		}
		if got := len(tab.Header); got < 2 {
			t.Errorf("%s: header too narrow", tab.ID)
		}
		for _, r := range tab.Rows {
			if len(r) != len(tab.Header) {
				t.Errorf("%s: ragged row %v", tab.ID, r)
			}
		}
	}
	// Fig 1's diversity spreads must be large on the axes the paper
	// highlights: throughput and context switches span orders of
	// magnitude.
	div := Fig1Diversity(c)
	if !strings.Contains(div.String(), "Throughput") {
		t.Fatal("Fig 1 missing throughput row")
	}
}

func TestFig10Knee(t *testing.T) {
	if testing.Short() {
		t.Skip("CAT sweep is slow")
	}
	tab := Fig10Ways(7)
	if len(tab.Rows) != 5 {
		t.Fatalf("Fig 10 rows = %d", len(tab.Rows))
	}
}

func TestKnobFigureTHP(t *testing.T) {
	if testing.Short() {
		t.Skip("A/B sweeps are slow")
	}
	tab := Fig18HugePages(7)
	out := tab.String()
	if !strings.Contains(out, "always") || !strings.Contains(out, "SHP") {
		t.Fatalf("Fig 18 incomplete:\n%s", out)
	}
	if !strings.Contains(out, "<=") {
		t.Fatalf("Fig 18 should mark chosen settings:\n%s", out)
	}
}

func TestMachineFor2RejectsBadConfig(t *testing.T) {
	probe, err := MachineFor("Web", "Skylake18", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := probe.Server().Config()
	cfg.CoreFreqMHz = 99999
	if _, err := MachineFor2("Web", "Skylake18", 1, cfg); err == nil {
		t.Fatal("invalid config must be rejected")
	}
}

func TestFig15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("core scaling sweep is slow")
	}
	tab := Fig15CoreCount(7)
	// Gains must rise with cores and stay at or below ideal.
	var lastGain float64
	var lastTarget string
	for _, r := range tab.Rows {
		var gain, ideal float64
		if _, err := fmt.Sscanf(r[2], "%fx", &gain); err != nil {
			t.Fatalf("bad gain cell %q", r[2])
		}
		if _, err := fmt.Sscanf(r[3], "%fx", &ideal); err != nil {
			t.Fatalf("bad ideal cell %q", r[3])
		}
		if r[0] == lastTarget && gain < lastGain {
			t.Errorf("%s: gain fell from %.2f to %.2f", r[0], lastGain, gain)
		}
		if gain > ideal*1.02 {
			t.Errorf("%s at %s cores: gain %.2f exceeds ideal %.2f", r[0], r[1], gain, ideal)
		}
		lastGain, lastTarget = gain, r[0]
	}
}

func TestAblationSamplingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical ablation is slow-ish")
	}
	tab := AblationSampling(7)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The confidence-driven policy must detect at least as often as
	// fixed N=50.
	var adaptive, fixed50 int
	fmt.Sscanf(tab.Rows[0][1], "%d/", &adaptive)
	fmt.Sscanf(tab.Rows[1][1], "%d/", &fixed50)
	if adaptive < fixed50 {
		t.Fatalf("adaptive %d should beat fixed-50 %d", adaptive, fixed50)
	}
}
