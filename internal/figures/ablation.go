package figures

import (
	"fmt"

	"softsku/internal/abtest"
	"softsku/internal/cache"
	"softsku/internal/core"
	"softsku/internal/emon"
	"softsku/internal/knob"
	"softsku/internal/platform"
	"softsku/internal/rng"
	"softsku/internal/sim"
	"softsku/internal/stats"
	"softsku/internal/workload"
)

// AblationSearch compares the three sweep strategies (§4 sweep
// configuration, §7 exhaustive design-space sweep) on a reduced
// two-knob space: solution quality versus the number of A/B tests.
func AblationSearch(seed uint64) Table {
	t := Table{
		ID:     "Ablation A",
		Title:  "Sweep strategy: independent vs exhaustive vs hill-climbing (Web/Skylake18, THP x SHP)",
		Header: []string{"strategy", "soft SKU", "Δ vs production", "virtual hours"},
		Notes: []string{
			"§4: knob gains are not strictly additive, but knobs rarely co-vary strongly",
			"exhaustive refuses the full 7-knob space: it cannot finish between code pushes",
		},
	}
	for _, mode := range []core.SweepMode{core.SweepIndependent, core.SweepExhaustive, core.SweepHillClimb} {
		in := core.DefaultInput("Web", "Skylake18")
		in.Seed = seed
		in.Sweep = mode
		in.Knobs = []knob.ID{knob.THP, knob.SHP}
		fastAB(&in)
		tool, err := core.New(in)
		if err != nil {
			panic(err)
		}
		res, err := tool.Run()
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			mode.String(),
			fmt.Sprintf("thp=%s shp=%d", res.SoftSKU.THP, res.SoftSKU.SHPCount),
			fmt.Sprintf("%+.2f%%", res.VsProduction.DeltaPct),
			fmt.Sprintf("%.1f", res.VirtualHours),
		})
	}
	return t
}

// AblationSampling compares µSKU's sample-until-confidence stop rule
// against naive fixed-size sampling on a small (+0.5%) effect: the
// paper's motivation for copious fine-grain measurements.
func AblationSampling(seed uint64) Table {
	t := Table{
		ID:     "Ablation B",
		Title:  "Sampling policy: confidence-driven vs fixed-N on a +0.5% effect",
		Header: []string{"policy", "detected", "trials", "mean samples"},
	}
	const trials = 15
	run := func(name string, cfg abtest.Config) {
		detected := 0
		totalN := 0
		for i := 0; i < trials; i++ {
			src := rng.New(seed + uint64(i)*31)
			c := src.Split("c")
			tr := src.Split("t")
			control := func(float64) float64 { return 100 * (1 + c.Norm(0, 0.015)) }
			treatment := func(float64) float64 { return 100.5 * (1 + tr.Norm(0, 0.015)) }
			out, _ := abtest.Run(cfg, control, treatment, 0)
			if out.Better() {
				detected++
			}
			totalN += out.Samples
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d/%d", detected, trials),
			fmt.Sprintf("%d", trials),
			fmt.Sprintf("%d", totalN/trials),
		})
	}
	adaptive := abtest.DefaultConfig()
	run("confidence-driven (µSKU)", adaptive)
	fixed := abtest.DefaultConfig()
	fixed.MinSamples, fixed.MaxSamples = 50, 50
	run("fixed N=50", fixed)
	fixed.MinSamples, fixed.MaxSamples = 500, 500
	run("fixed N=500", fixed)
	return t
}

// AblationMetric demonstrates why MIPS is the wrong metric for Cache
// (§4, §7): under QoS pressure, Cache's exception handlers inflate
// MIPS while ODS-visible QPS falls.
func AblationMetric(seed uint64) Table {
	t := Table{
		ID:     "Ablation C",
		Title:  "Metric validity: MIPS vs QPS on Cache1 under rising load",
		Header: []string{"load factor", "MIPS", "QPS", "MIPS/QPS drift"},
		Notes:  []string{"µSKU therefore refuses metric=mips for Cache and requires metric=qps"},
	}
	m := ctxMachine("Cache1", seed)
	base := 0.0
	for _, f := range []float64{0.8, 0.9, 1.0, 1.05, 1.1, 1.15} {
		s := emon.NewSampler(m, fixedFactor(f), seed)
		var mips, qps stats.Sample
		for i := 0; i < 50; i++ {
			mips.Add(s.MIPS(float64(i)))
			qps.Add(s.QPS(float64(i)))
		}
		ratio := mips.Mean() / qps.Mean()
		if base == 0 {
			base = ratio
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", f), f0(mips.Mean()), f0(qps.Mean()),
			fmt.Sprintf("%+.1f%%", (ratio/base-1)*100),
		})
	}
	return t
}

// AblationSHPSearch compares the paper's linear SHP sweep with the
// §5(7) binary-search extension. At the paper's coarse 100-page step a
// linear sweep is cheap; the search pays off when operators want fine
// (25-page) resolution, where a linear sweep needs 24 tests.
func AblationSHPSearch(seed uint64) Table {
	t := Table{
		ID:     "Ablation D",
		Title:  "SHP search: linear sweeps vs binary search (Web/Skylake18)",
		Header: []string{"method", "resolution", "chosen SHPs", "A/B tests"},
		Notes: []string{
			"the response is nearly flat past the 300-chunk demand point, so fine-step choices within it are noise-equivalent",
		},
	}
	// Linear: the independent sweep's SHP knob.
	sweep, err := sweepKnob("Web", "Skylake18", knob.SHP, seed)
	if err != nil {
		panic(err)
	}
	linearChoice := "production (200)"
	if best := sweep.Best(); best != nil {
		linearChoice = best.Setting.Name
	}
	t.Rows = append(t.Rows, []string{"linear sweep", "100 pages", linearChoice, fmt.Sprintf("%d", len(sweep.Points)-1)})
	t.Rows = append(t.Rows, []string{"linear sweep", "25 pages", "(would need)", "24"})

	in := core.DefaultInput("Web", "Skylake18")
	in.Seed = seed
	in.Knobs = []knob.ID{knob.SHP}
	fastAB(&in)
	tool, err := core.New(in)
	if err != nil {
		panic(err)
	}
	best, tests, err := tool.BinarySearchSHP(0, 600, 25)
	if err != nil {
		panic(err)
	}
	t.Rows = append(t.Rows, []string{"binary search", "25 pages", fmt.Sprintf("%d SHPs", best), fmt.Sprintf("%d", tests)})
	return t
}

// fixedFactor pins the load factor for metric ablations.
type fixedFactor float64

// Factor implements emon.LoadSource.
func (f fixedFactor) Factor(float64) float64 { return float64(f) }

var _ emon.LoadSource = fixedFactor(1)

func ctxMachine(svc string, seed uint64) *sim.Machine {
	prof, err := workload.ByName(svc)
	if err != nil {
		panic(err)
	}
	m, err := MachineFor(svc, prof.Platform, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// ExtensionColocation implements the §7 "µSKU and co-location"
// direction: the pairwise interference matrix a µSKU-aware scheduler
// would consume when mapping service affinities.
func ExtensionColocation(seed uint64) Table {
	t := Table{
		ID:     "Extension E",
		Title:  "Co-location interference on Skylake18 (slowdown vs idle neighbour)",
		Header: []string{"pair", "slowdown A", "slowdown B"},
		Notes: []string{
			"§7: schedulers that map service affinities can be designed in a µSKU-aware manner",
			"two threads per service share one LLC; slowdown = solo IPC / shared IPC",
		},
	}
	sku := platformSkylake18()
	pairs := [][2]string{
		{"Web", "Web"}, {"Web", "Feed1"}, {"Web", "Feed2"}, {"Web", "Cache2"},
		{"Feed1", "Feed2"}, {"Cache2", "Cache2"},
	}
	for _, pr := range pairs {
		a, _ := workload.ByName(pr[0])
		b, _ := workload.ByName(pr[1])
		r, err := sim.Colocate(sku, a, b, seed)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s + %s", r.A, r.B),
			fmt.Sprintf("%.2fx", r.SlowdownA),
			fmt.Sprintf("%.2fx", r.SlowdownB),
		})
	}
	return t
}

// ExtensionEnergy implements the §7 energy direction: tuning Web's
// core frequency for MIPS/W instead of MIPS.
func ExtensionEnergy(seed uint64) Table {
	t := Table{
		ID:     "Extension F",
		Title:  "Energy-aware µSKU: core frequency tuned for MIPS vs MIPS/W (Web/Skylake18)",
		Header: []string{"metric", "chosen core freq", "Δ vs production (in its metric)"},
		Notes: []string{
			"§7: with support to measure power, µSKU can optimize energy efficiency",
			"memory-bound Web is more efficient below maximum frequency",
		},
	}
	for _, metric := range []core.Metric{core.MetricMIPS, core.MetricPerfPerWatt} {
		in := core.DefaultInput("Web", "Skylake18")
		in.Seed = seed
		in.Metric = metric
		in.Knobs = []knob.ID{knob.CoreFreq}
		fastAB(&in)
		tool, err := core.New(in)
		if err != nil {
			panic(err)
		}
		res, err := tool.Run()
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			metric.String(),
			fmt.Sprintf("%.1f GHz", float64(res.SoftSKU.CoreFreqMHz)/1000),
			fmt.Sprintf("%+.2f%%", res.VsProduction.DeltaPct),
		})
	}
	return t
}

func platformSkylake18() *platform.SKU { return platform.Skylake18() }

// ExtensionSPEC validates the simulator end to end: profiles derived
// purely from SPEC CPU2006's published counter rows (inverse
// calibration, workload.SPECProfile) are run through the full machine
// and compared against their sources — no hand-tuning anywhere.
func ExtensionSPEC(seed uint64) Table {
	t := Table{
		ID:     "Extension G",
		Title:  "Simulator validation: SPEC CPU2006 profiles round-tripped through the machine",
		Header: []string{"benchmark", "L1d sim/pub", "L1c sim/pub", "LLCd sim/pub", "LLCc sim/pub", "IPC sim/pub"},
		Notes: []string{
			"profiles are derived from the published rows alone (workload.SPECProfile); agreement validates the tiered-locality model",
		},
	}
	sku := platform.Skylake20()
	for _, ref := range workload.SPEC2006() {
		prof := workload.SPECProfile(ref)
		srv, err := platform.NewServer(sku, sim.ProductionConfig(sku, prof))
		if err != nil {
			panic(err)
		}
		m, err := sim.NewMachine(srv, prof, seed)
		if err != nil {
			panic(err)
		}
		op := m.Solve(1.0)
		r := op.Rates
		l1c, l1d := r.CacheMPKI(cache.L1)
		llcc, llcd := r.CacheMPKI(cache.LLC)
		t.Rows = append(t.Rows, []string{
			ref.Name,
			fmt.Sprintf("%.1f/%.1f", l1d, ref.L1DataMPKI),
			fmt.Sprintf("%.1f/%.1f", l1c, ref.L1CodeMPKI),
			fmt.Sprintf("%.1f/%.1f", llcd, ref.LLCDataMPKI),
			fmt.Sprintf("%.2f/%.2f", llcc, ref.LLCCodeMPKI),
			fmt.Sprintf("%.2f/%.2f", op.IPC, ref.IPC),
		})
	}
	return t
}
