package figures

import (
	"fmt"

	"softsku/internal/cache"
	"softsku/internal/mem"
	"softsku/internal/platform"
	"softsku/internal/workload"
)

// Table1SKUs reproduces Table 1: the key attributes of the three
// hardware platforms.
func Table1SKUs() Table {
	t := Table{
		ID:     "Table 1",
		Title:  "Skylake18, Skylake20, Broadwell16 key attributes",
		Header: []string{"attribute", "Skylake18", "Skylake20", "Broadwell16"},
	}
	skus := platform.FleetSKUs()
	row := func(name string, get func(*platform.SKU) string) {
		r := []string{name}
		for _, s := range skus {
			r = append(r, get(s))
		}
		t.Rows = append(t.Rows, r)
	}
	row("Microarchitecture", func(s *platform.SKU) string { return s.Microarch })
	row("Number of sockets", func(s *platform.SKU) string { return fmt.Sprintf("%d", s.Sockets) })
	row("Cores/socket", func(s *platform.SKU) string { return fmt.Sprintf("%d", s.CoresPerSocket) })
	row("SMT", func(s *platform.SKU) string { return fmt.Sprintf("%d", s.SMT) })
	row("Cache block size", func(s *platform.SKU) string { return fmt.Sprintf("%d B", s.CacheBlock) })
	row("L1-I$ (per core)", func(s *platform.SKU) string { return fmt.Sprintf("%d KiB", s.L1I>>10) })
	row("L1-D$ (per core)", func(s *platform.SKU) string { return fmt.Sprintf("%d KiB", s.L1D>>10) })
	row("Private L2$ (per core)", func(s *platform.SKU) string { return fmt.Sprintf("%d KiB", s.L2>>10) })
	row("Shared LLC (per socket)", func(s *platform.SKU) string { return fmt.Sprintf("%.2f MiB", float64(s.LLC)/(1<<20)) })
	row("LLC ways", func(s *platform.SKU) string { return fmt.Sprintf("%d", s.LLCWays) })
	return t
}

// Table2Throughput reproduces Table 2: per-service throughput, request
// latency, and path length scales, next to the paper's orders.
func Table2Throughput(c *Context) Table {
	t := Table{
		ID:     "Table 2",
		Title:  "Avg. request throughput, request latency, and path length",
		Header: []string{"µservice", "QPS", "paper", "latency", "paper", "insn/query", "paper"},
		Notes: []string{
			"measured at the QoS-limited peak of one server",
			"Web/Ads1 latency and Cache path length sit above the paper's order; see EXPERIMENTS.md",
		},
	}
	paper := map[string][3]string{
		"Web":    {"O(1e2)", "O(ms)", "O(1e6)"},
		"Feed1":  {"O(1e3)", "O(ms)", "O(1e9)"},
		"Feed2":  {"O(1e1)", "O(s)", "O(1e9)"},
		"Ads1":   {"O(1e1)", "O(ms)", "O(1e9)"},
		"Ads2":   {"O(1e2)", "O(ms)", "O(1e9)"},
		"Cache1": {"O(1e5)", "O(µs)", "O(1e3)"},
		"Cache2": {"O(1e5)", "O(µs)", "O(1e3)"},
	}
	for _, svc := range serviceOrder {
		peak := c.Peak(svc)
		prof := c.Machine(svc).Profile()
		lat := peak.Result.Latency.Mean()
		latStr := fmt.Sprintf("%.2g s", lat)
		switch {
		case lat < 1e-3:
			latStr = fmt.Sprintf("%.0f µs", lat*1e6)
		case lat < 1:
			latStr = fmt.Sprintf("%.0f ms", lat*1e3)
		}
		p := paper[svc]
		t.Rows = append(t.Rows, []string{
			svc, order10(peak.Result.QPS), p[0], latStr, p[1],
			order10(prof.PathLength), p[2],
		})
	}
	return t
}

// Fig1Diversity reproduces Fig 1: the spread (max/min ratio) of
// system-level and architectural traits across the seven services.
func Fig1Diversity(c *Context) Table {
	t := Table{
		ID:     "Fig 1",
		Title:  "Variation in system-level and architectural traits across µservices",
		Header: []string{"metric", "min", "max", "spread(x)"},
	}
	metrics := []struct {
		name string
		get  func(svc string) float64
	}{
		{"Throughput (QPS)", func(s string) float64 { return c.Peak(s).Result.QPS }},
		{"Req. latency (s)", func(s string) float64 { return c.Peak(s).Result.Latency.Mean() }},
		{"CPU util.", func(s string) float64 { return c.Peak(s).Result.Util }},
		{"Context switches (/s/core)", func(s string) float64 { return c.Peak(s).Result.CtxSwitchRate }},
		{"IPC", func(s string) float64 { return c.Operating(s).IPC }},
		{"LLC code MPKI", func(s string) float64 {
			m, _ := c.Operating(s).Rates.CacheMPKI(cache.LLC)
			if m < 0.01 {
				m = 0.01
			}
			return m
		}},
		{"ITLB MPKI", func(s string) float64 {
			m, _, _ := c.Operating(s).Rates.TLBMPKI()
			if m < 0.01 {
				m = 0.01
			}
			return m
		}},
		{"Mem. bandwidth util.", func(s string) float64 { return c.Operating(s).MemBWGBs }},
	}
	for _, m := range metrics {
		lo, hi := 0.0, 0.0
		for i, svc := range serviceOrder {
			v := m.get(svc)
			if i == 0 || v < lo {
				lo = v
			}
			if i == 0 || v > hi {
				hi = v
			}
		}
		t.Rows = append(t.Rows, []string{m.name, fmt.Sprintf("%.3g", lo), fmt.Sprintf("%.3g", hi), f1(hi / lo)})
	}
	return t
}

// Fig2Breakdown reproduces Fig 2: per-request latency breakdown, and
// Web's blocked-time split into queue/scheduler/IO components.
func Fig2Breakdown(c *Context) Table {
	t := Table{
		ID:     "Fig 2",
		Title:  "Request latency breakdown (running vs blocked; Web's blocked split)",
		Header: []string{"µservice", "running", "queue", "sched", "io", "paper run/blocked"},
		Notes:  []string{"Cache1/Cache2 omitted: concurrent execution paths (§2.3.2)"},
	}
	paper := map[string]string{
		"Web": "28/72", "Feed1": "95/5", "Feed2": "62/38", "Ads1": "62/38", "Ads2": "90/10",
	}
	for _, svc := range []string{"Web", "Feed1", "Feed2", "Ads1", "Ads2"} {
		r := c.Peak(svc).Result
		t.Rows = append(t.Rows, []string{
			svc, pct(r.RunFrac), pct(r.QueueFrac), pct(r.SchedFrac), pct(r.IOFrac), paper[svc],
		})
	}
	return t
}

// Fig3CPUUtil reproduces Fig 3: maximum achievable CPU utilization in
// user and kernel mode under QoS constraints.
func Fig3CPUUtil(c *Context) Table {
	t := Table{
		ID:     "Fig 3",
		Title:  "Max. achievable CPU utilization (user / kernel+IO)",
		Header: []string{"µservice", "util", "user", "kernel+io"},
		Notes:  []string{"load balancers modulate load to hold QoS (§2.3.3)"},
	}
	for _, svc := range serviceOrder {
		r := c.Peak(svc).Result
		t.Rows = append(t.Rows, []string{svc, pct(r.Util), pct(r.UserUtil), pct(r.KernelUtil)})
	}
	return t
}

// Fig4CtxSwitch reproduces Fig 4: the fraction of a CPU-second spent
// context switching, bracketed by the literature's switch-cost bounds.
func Fig4CtxSwitch(c *Context) Table {
	t := Table{
		ID:     "Fig 4",
		Title:  "Context switch penalty range (% of a CPU-second)",
		Header: []string{"µservice", "switches/s/core", "low (1µs)", "high (12µs)"},
		Notes:  []string{"bounds from prior work's measured switch latencies (§2.3.4)"},
	}
	for _, svc := range serviceOrder {
		rate := c.Peak(svc).Result.CtxSwitchRate
		t.Rows = append(t.Rows, []string{
			svc, f0(rate), pct(rate * 1e-6), pct(rate * 12e-6),
		})
	}
	return t
}

// Fig5Mix reproduces Fig 5: instruction-type breakdown across the
// microservices and the SPEC CPU2006 comparison rows.
func Fig5Mix() Table {
	t := Table{
		ID:     "Fig 5",
		Title:  "Instruction type breakdown (%)",
		Header: []string{"workload", "branch", "fp", "arith", "load", "store"},
	}
	for _, svc := range serviceOrder {
		prof, _ := workload.ByName(svc)
		m := prof.Mix.Normalize()
		t.Rows = append(t.Rows, []string{
			svc, pct(m.Branch), pct(m.FP), pct(m.Arith), pct(m.Load), pct(m.Store),
		})
	}
	for _, s := range workload.SPEC2006() {
		m := s.Mix.Normalize()
		t.Rows = append(t.Rows, []string{
			s.Name, pct(m.Branch), pct(m.FP), pct(m.Arith), pct(m.Load), pct(m.Store),
		})
	}
	return t
}

// Fig6IPC reproduces Fig 6: per-core IPC across the microservices and
// the comparison suites.
func Fig6IPC(c *Context) Table {
	t := Table{
		ID:     "Fig 6",
		Title:  "Per-core IPC",
		Header: []string{"workload", "IPC", "source"},
	}
	for _, svc := range serviceOrder {
		t.Rows = append(t.Rows, []string{svc, f2(c.Operating(svc).IPC), "measured"})
	}
	for _, s := range workload.SPEC2006() {
		t.Rows = append(t.Rows, []string{s.Name, f2(s.IPC), "SPEC2006 (measured on Skylake20, reproduced)"})
	}
	for _, g := range workload.GoogleServices() {
		t.Rows = append(t.Rows, []string{g.Name, f2(g.IPC), g.Source + " (published, Haswell)"})
	}
	return t
}

// Fig7TopDown reproduces Fig 7: the TMAM pipeline-slot breakdown.
func Fig7TopDown(c *Context) Table {
	t := Table{
		ID:     "Fig 7",
		Title:  "Top-down pipeline slot breakdown",
		Header: []string{"µservice", "retiring", "front-end", "bad spec", "back-end"},
		Notes:  []string{"paper: our µservices retire in only 22–40% of slots; Web/Cache lose ~37% to the front end"},
	}
	for _, svc := range serviceOrder {
		td := c.Operating(svc).TopDown
		t.Rows = append(t.Rows, []string{
			svc, pct(td.Retiring), pct(td.FrontEnd), pct(td.BadSpec), pct(td.BackEnd),
		})
	}
	return t
}

// Fig8L1L2 reproduces Fig 8: L1 and L2 code/data MPKI.
func Fig8L1L2(c *Context) Table {
	t := Table{
		ID:     "Fig 8",
		Title:  "L1 and L2 code & data MPKI",
		Header: []string{"workload", "L1 code", "L1 data", "L2 code", "L2 data"},
	}
	for _, svc := range serviceOrder {
		r := c.Operating(svc).Rates
		l1c, l1d := r.CacheMPKI(cache.L1)
		l2c, l2d := r.CacheMPKI(cache.L2)
		t.Rows = append(t.Rows, []string{svc, f1(l1c), f1(l1d), f1(l2c), f1(l2d)})
	}
	for _, s := range workload.SPEC2006() {
		t.Rows = append(t.Rows, []string{
			s.Name, f1(s.L1CodeMPKI), f1(s.L1DataMPKI), f1(s.L2CodeMPKI), f1(s.L2DataMPKI),
		})
	}
	return t
}

// Fig9LLC reproduces Fig 9: LLC code/data MPKI.
func Fig9LLC(c *Context) Table {
	t := Table{
		ID:     "Fig 9",
		Title:  "LLC code & data MPKI",
		Header: []string{"workload", "LLC code", "LLC data"},
		Notes:  []string{"paper: Web incurs ~1.7 LLC code MPKI — unusual in steady state"},
	}
	for _, svc := range serviceOrder {
		llcc, llcd := c.Operating(svc).Rates.CacheMPKI(cache.LLC)
		t.Rows = append(t.Rows, []string{svc, f2(llcc), f2(llcd)})
	}
	for _, s := range workload.SPEC2006() {
		t.Rows = append(t.Rows, []string{s.Name, f2(s.LLCCodeMPKI), f2(s.LLCDataMPKI)})
	}
	return t
}

// Fig10Ways reproduces Fig 10: LLC MPKI as CAT enables 2..max ways.
func Fig10Ways(seed uint64) Table {
	t := Table{
		ID:     "Fig 10",
		Title:  "LLC code+data MPKI vs enabled LLC ways (CAT)",
		Header: []string{"µservice", "2w", "4w", "6w", "8w", "10w", "11w"},
		Notes: []string{
			"Cache omitted: fails QoS at reduced capacity (§2.4.3)",
			"paper: a knee at ~8 ways captures the primary working set",
		},
	}
	for _, svc := range []string{"Web", "Feed1", "Feed2", "Ads1", "Ads2"} {
		prof, _ := workload.ByName(svc)
		row := []string{svc}
		for _, ways := range []int{2, 4, 6, 8, 10, 11} {
			m, err := MachineFor(svc, prof.Platform, seed)
			if err != nil {
				panic(err)
			}
			if err := m.SetCAT(ways); err != nil {
				panic(err)
			}
			r := m.Characterize()
			codeM, dataM := r.CacheMPKI(cache.LLC)
			row = append(row, f1(codeM+dataM))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig11TLB reproduces Fig 11: ITLB and DTLB (load/store) MPKI.
func Fig11TLB(c *Context) Table {
	t := Table{
		ID:     "Fig 11",
		Title:  "ITLB and DTLB (load & store) MPKI",
		Header: []string{"workload", "ITLB", "DTLB load", "DTLB store"},
		Notes:  []string{"paper: Web's JIT code cache drives drastically higher ITLB misses"},
	}
	for _, svc := range serviceOrder {
		itlb, dl, ds := c.Operating(svc).Rates.TLBMPKI()
		t.Rows = append(t.Rows, []string{svc, f2(itlb), f2(dl), f2(ds)})
	}
	for _, s := range workload.SPEC2006() {
		t.Rows = append(t.Rows, []string{s.Name, f2(s.ITLBMPKI), f2(s.DTLBLoadMPKI), f2(s.DTLBStoreMPKI)})
	}
	return t
}

// Fig12Bandwidth reproduces Fig 12: the loaded-latency stress curves
// of both Skylake platforms plus each service's operating point.
func Fig12Bandwidth(c *Context) Table {
	t := Table{
		ID:     "Fig 12",
		Title:  "Memory bandwidth vs latency: stress curves and operating points",
		Header: []string{"point", "bandwidth GB/s", "latency ns"},
	}
	for _, name := range []string{"Skylake18", "Skylake20"} {
		sku, _ := platform.ByName(name)
		for _, p := range mem.NewModel(sku).StressCurve(9) {
			t.Rows = append(t.Rows, []string{
				name + " stress", f1(p.BandwidthGBs), f0(p.LatencyNS),
			})
		}
	}
	for _, svc := range serviceOrder {
		op := c.Operating(svc)
		prof := c.Machine(svc).Profile()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (%s)", svc, prof.Platform), f1(op.MemBWGBs), f0(op.MemLatencyNS),
		})
	}
	t.Notes = append(t.Notes,
		"Ads1/Ads2 sit above the curve: bursty traffic (§2.4.5)",
		"services under-utilize bandwidth to avoid the latency knee")
	return t
}
