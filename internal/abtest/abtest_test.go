package abtest

import (
	"math"
	"testing"

	"softsku/internal/rng"
)

// noisy builds a sampler around mean with relative noise sigma and a
// shared "load" component both arms see.
func noisy(src *rng.Source, mean, sigma float64, shared func(t float64) float64) Sampler {
	return func(t float64) float64 {
		return mean * shared(t) * (1 + src.Norm(0, sigma))
	}
}

func flatLoad(float64) float64 { return 1 }

func TestDetectsRealDifference(t *testing.T) {
	cfg := DefaultConfig()
	src := rng.New(1)
	control := noisy(src.Split("c"), 100, 0.015, flatLoad)
	treatment := noisy(src.Split("t"), 102, 0.015, flatLoad) // +2%
	out, _ := Run(cfg, control, treatment, 0)
	if !out.Significant || !out.Better() {
		t.Fatalf("failed to detect +2%%: %v", out)
	}
	if math.Abs(out.DeltaPct-2) > 0.5 {
		t.Fatalf("delta estimate %.2f%%, want ~2%%", out.DeltaPct)
	}
	if out.Samples >= cfg.MaxSamples {
		t.Fatalf("a 2%% effect should resolve early, used %d samples", out.Samples)
	}
}

func TestDetectsSmallDifference(t *testing.T) {
	// The paper's point: effects of a few tenths of a percent need
	// copious samples but are resolvable.
	src := rng.New(2)
	out, _ := Run(DefaultConfig(), noisy(src.Split("c"), 100, 0.015, flatLoad),
		noisy(src.Split("t"), 100.5, 0.015, flatLoad), 0)
	if !out.Better() {
		t.Fatalf("failed to detect +0.5%%: %v", out)
	}
}

func TestNoFalsePositiveOnEqualArms(t *testing.T) {
	hits := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		src := rng.New(uint64(100 + i))
		out, _ := Run(DefaultConfig(), noisy(src.Split("c"), 100, 0.015, flatLoad),
			noisy(src.Split("t"), 100, 0.015, flatLoad), 0)
		if out.Significant {
			hits++
		}
	}
	// Sequential checking inflates alpha somewhat; demand it stays rare.
	if hits > 5 {
		t.Fatalf("%d/%d false positives on identical arms", hits, trials)
	}
}

func TestEqualArmsExhaustSampleCap(t *testing.T) {
	src := rng.New(3)
	cfg := DefaultConfig()
	out, _ := Run(cfg, noisy(src.Split("c"), 100, 0.015, flatLoad),
		noisy(src.Split("t"), 100, 0.015, flatLoad), 0)
	if out.Significant {
		t.Skip("this seed produced a (rare) sequential false positive")
	}
	if out.Samples != cfg.MaxSamples {
		t.Fatalf("inconclusive test should run to the cap: %d", out.Samples)
	}
}

func TestSharedLoadCancels(t *testing.T) {
	// A ±20% diurnal swing seen by BOTH arms must not prevent
	// resolving a 1.5% difference (the point of concurrent A/B).
	shared := func(t float64) float64 { return 1 + 0.2*math.Sin(t/300) }
	src := rng.New(4)
	out, _ := Run(DefaultConfig(), noisy(src.Split("c"), 100, 0.015, shared),
		noisy(src.Split("t"), 101.5, 0.015, shared), 0)
	if !out.Better() {
		t.Fatalf("shared load variation should cancel: %v", out)
	}
	if math.Abs(out.DeltaPct-1.5) > 0.6 {
		t.Fatalf("delta %.2f%%, want ~1.5%%", out.DeltaPct)
	}
}

func TestDetectsRegression(t *testing.T) {
	src := rng.New(5)
	out, _ := Run(DefaultConfig(), noisy(src.Split("c"), 100, 0.015, flatLoad),
		noisy(src.Split("t"), 97, 0.015, flatLoad), 0)
	if !out.Worse() || out.Better() {
		t.Fatalf("failed to flag -3%% regression: %v", out)
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	src := rng.New(6)
	cfg := DefaultConfig()
	out, end := Run(cfg, noisy(src.Split("c"), 100, 0.015, flatLoad),
		noisy(src.Split("t"), 105, 0.015, flatLoad), 1000)
	if end <= 1000+cfg.WarmupSec {
		t.Fatalf("end time %g must include warm-up and sampling", end)
	}
	wantEnd := 1000 + cfg.WarmupSec + float64(out.Samples)*cfg.SpacingSec
	if math.Abs(end-wantEnd) > 1e-6 {
		t.Fatalf("end %g, want %g", end, wantEnd)
	}
}

func TestWarmupDiscard(t *testing.T) {
	// Samples must only be drawn at t >= start + warmup.
	cfg := DefaultConfig()
	cfg.MaxSamples = 10
	cfg.MinSamples = 10
	minT := math.Inf(1)
	probe := func(t float64) float64 {
		if t < minT {
			minT = t
		}
		return 100
	}
	Run(cfg, probe, probe, 500)
	if minT < 500+cfg.WarmupSec {
		t.Fatalf("sampled during warm-up at t=%g", minT)
	}
}

func TestConfigDefaultsGuard(t *testing.T) {
	src := rng.New(8)
	cfg := Config{MaxSamples: 500, MinSamples: 10} // zero confidence/check
	out, _ := Run(cfg, noisy(src.Split("c"), 100, 0.01, flatLoad),
		noisy(src.Split("t"), 110, 0.01, flatLoad), 0)
	if !out.Better() {
		t.Fatalf("guarded defaults should still work: %v", out)
	}
}
