package abtest

import (
	"math"
	"testing"

	"softsku/internal/chaos"
	"softsku/internal/rng"
)

// noisy builds a sampler around mean with relative noise sigma and a
// shared "load" component both arms see.
func noisy(src *rng.Source, mean, sigma float64, shared func(t float64) float64) Sampler {
	return func(t float64) float64 {
		return mean * shared(t) * (1 + src.Norm(0, sigma))
	}
}

func flatLoad(float64) float64 { return 1 }

func TestDetectsRealDifference(t *testing.T) {
	cfg := DefaultConfig()
	src := rng.New(1)
	control := noisy(src.Split("c"), 100, 0.015, flatLoad)
	treatment := noisy(src.Split("t"), 102, 0.015, flatLoad) // +2%
	out, _ := Run(cfg, control, treatment, 0)
	if !out.Significant || !out.Better() {
		t.Fatalf("failed to detect +2%%: %v", out)
	}
	if math.Abs(out.DeltaPct-2) > 0.5 {
		t.Fatalf("delta estimate %.2f%%, want ~2%%", out.DeltaPct)
	}
	if out.Samples >= cfg.MaxSamples {
		t.Fatalf("a 2%% effect should resolve early, used %d samples", out.Samples)
	}
}

func TestDetectsSmallDifference(t *testing.T) {
	// The paper's point: effects of a few tenths of a percent need
	// copious samples but are resolvable.
	src := rng.New(2)
	out, _ := Run(DefaultConfig(), noisy(src.Split("c"), 100, 0.015, flatLoad),
		noisy(src.Split("t"), 100.5, 0.015, flatLoad), 0)
	if !out.Better() {
		t.Fatalf("failed to detect +0.5%%: %v", out)
	}
}

func TestNoFalsePositiveOnEqualArms(t *testing.T) {
	hits := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		src := rng.New(uint64(100 + i))
		out, _ := Run(DefaultConfig(), noisy(src.Split("c"), 100, 0.015, flatLoad),
			noisy(src.Split("t"), 100, 0.015, flatLoad), 0)
		if out.Significant {
			hits++
		}
	}
	// Sequential checking inflates alpha somewhat; demand it stays rare.
	if hits > 5 {
		t.Fatalf("%d/%d false positives on identical arms", hits, trials)
	}
}

func TestEqualArmsExhaustSampleCap(t *testing.T) {
	src := rng.New(3)
	cfg := DefaultConfig()
	out, _ := Run(cfg, noisy(src.Split("c"), 100, 0.015, flatLoad),
		noisy(src.Split("t"), 100, 0.015, flatLoad), 0)
	if out.Significant {
		t.Skip("this seed produced a (rare) sequential false positive")
	}
	if out.Samples != cfg.MaxSamples {
		t.Fatalf("inconclusive test should run to the cap: %d", out.Samples)
	}
}

func TestSharedLoadCancels(t *testing.T) {
	// A ±20% diurnal swing seen by BOTH arms must not prevent
	// resolving a 1.5% difference (the point of concurrent A/B).
	shared := func(t float64) float64 { return 1 + 0.2*math.Sin(t/300) }
	src := rng.New(4)
	out, _ := Run(DefaultConfig(), noisy(src.Split("c"), 100, 0.015, shared),
		noisy(src.Split("t"), 101.5, 0.015, shared), 0)
	if !out.Better() {
		t.Fatalf("shared load variation should cancel: %v", out)
	}
	if math.Abs(out.DeltaPct-1.5) > 0.6 {
		t.Fatalf("delta %.2f%%, want ~1.5%%", out.DeltaPct)
	}
}

func TestDetectsRegression(t *testing.T) {
	src := rng.New(5)
	out, _ := Run(DefaultConfig(), noisy(src.Split("c"), 100, 0.015, flatLoad),
		noisy(src.Split("t"), 97, 0.015, flatLoad), 0)
	if !out.Worse() || out.Better() {
		t.Fatalf("failed to flag -3%% regression: %v", out)
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	src := rng.New(6)
	cfg := DefaultConfig()
	out, end := Run(cfg, noisy(src.Split("c"), 100, 0.015, flatLoad),
		noisy(src.Split("t"), 105, 0.015, flatLoad), 1000)
	if end <= 1000+cfg.WarmupSec {
		t.Fatalf("end time %g must include warm-up and sampling", end)
	}
	wantEnd := 1000 + cfg.WarmupSec + float64(out.Samples)*cfg.SpacingSec
	if math.Abs(end-wantEnd) > 1e-6 {
		t.Fatalf("end %g, want %g", end, wantEnd)
	}
}

func TestWarmupDiscard(t *testing.T) {
	// Samples must only be drawn at t >= start + warmup.
	cfg := DefaultConfig()
	cfg.MaxSamples = 10
	cfg.MinSamples = 10
	minT := math.Inf(1)
	probe := func(t float64) float64 {
		if t < minT {
			minT = t
		}
		return 100
	}
	Run(cfg, probe, probe, 500)
	if minT < 500+cfg.WarmupSec {
		t.Fatalf("sampled during warm-up at t=%g", minT)
	}
}

func TestConfigDefaultsGuard(t *testing.T) {
	src := rng.New(8)
	cfg := Config{MaxSamples: 500, MinSamples: 10} // zero confidence/check
	out, _ := Run(cfg, noisy(src.Split("c"), 100, 0.01, flatLoad),
		noisy(src.Split("t"), 110, 0.01, flatLoad), 0)
	if !out.Better() {
		t.Fatalf("guarded defaults should still work: %v", out)
	}
}

func TestZeroConfigTerminates(t *testing.T) {
	// The zero Config must be patched, not trusted: SpacingSec=0 must
	// not freeze virtual time, MaxSamples=0 must not loop forever, and
	// Confidence=0 must not make every delta "significant".
	src := rng.New(9)
	out, end := Run(Config{}, noisy(src.Split("c"), 100, 0.015, flatLoad),
		noisy(src.Split("t"), 100, 0.015, flatLoad), 0)
	if out.Samples < 1 || out.Samples > 30000 {
		t.Fatalf("zero config sample count out of range: %d", out.Samples)
	}
	if math.IsNaN(out.DeltaPct) || math.IsNaN(out.PValue) {
		t.Fatalf("zero config produced NaN outcome: %v", out)
	}
	if end <= 0 || out.ElapsedSec <= 0 {
		t.Fatalf("zero config must still advance virtual time: end=%g", end)
	}
}

// oneArmCorrupt injects occasional multiplicative spikes into the
// treatment arm only, leaving everything else fault-free.
type oneArmCorrupt struct {
	chaos.Injector
	src  *rng.Source
	pct  float64
	mag  float64
	hits int
}

func (o *oneArmCorrupt) CorruptSample(arm string, v float64) (float64, bool) {
	if arm == "treatment" && o.src.Bool(o.pct) {
		o.hits++
		return v * o.mag, true
	}
	return v, false
}

func TestOutlierSpikeDoesNotFlipVerdict(t *testing.T) {
	// A real +2% treatment with 2% of its samples corrupted by large
	// spikes — in either direction — must still resolve as +~2%.
	for _, mag := range []float64{4.0, 0.25} {
		src := rng.New(11)
		inj := &oneArmCorrupt{Injector: chaos.Disabled, src: src.Split("chaos"), pct: 0.02, mag: mag}
		cfg := DefaultConfig()
		cfg.Chaos = inj
		out, _ := Run(cfg, noisy(src.Split("c"), 100, 0.015, flatLoad),
			noisy(src.Split("t"), 102, 0.015, flatLoad), 0)
		if inj.hits == 0 {
			t.Fatalf("mag %g: injector never fired", mag)
		}
		if out.OutliersRejected == 0 {
			t.Fatalf("mag %g: MAD filter rejected nothing despite %d corruptions", mag, inj.hits)
		}
		if !out.Better() {
			t.Fatalf("mag %g: corrupted samples flipped the verdict: %v", mag, out)
		}
		if math.Abs(out.DeltaPct-2) > 0.6 {
			t.Fatalf("mag %g: delta %.2f%%, want ~2%% despite corruption", mag, out.DeltaPct)
		}
	}
}

func TestGuardrailAbortsRegression(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GuardrailPct = 2
	src := rng.New(12)
	out, _ := Run(cfg, noisy(src.Split("c"), 100, 0.015, flatLoad),
		noisy(src.Split("t"), 90, 0.015, flatLoad), 0) // -10%: way past the rail
	if !out.GuardrailTripped {
		t.Fatalf("-10%% regression must trip a 2%% guardrail: %v", out)
	}
	if out.Samples >= cfg.MinSamples {
		t.Fatalf("guardrail must abort before MinSamples, used %d", out.Samples)
	}
	if !out.Worse() {
		t.Fatalf("tripped trial should still report a significant regression: %v", out)
	}
}

func TestGuardrailIgnoresImprovement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GuardrailPct = 2
	src := rng.New(13)
	out, _ := Run(cfg, noisy(src.Split("c"), 100, 0.015, flatLoad),
		noisy(src.Split("t"), 105, 0.015, flatLoad), 0)
	if out.GuardrailTripped {
		t.Fatalf("guardrail fired on a +5%% improvement: %v", out)
	}
	if !out.Better() {
		t.Fatalf("improvement should resolve normally: %v", out)
	}
}

// alwaysDropControl drops every read of the control arm's sampler.
type alwaysDropControl struct{ chaos.Injector }

func (alwaysDropControl) DropSample(arm string) bool { return arm == "control" }

func TestDropoutExhaustsRetries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chaos = alwaysDropControl{chaos.Disabled}
	out, end := Run(cfg, func(float64) float64 { return 100 },
		func(float64) float64 { return 100 }, 0)
	if !out.DroppedOut {
		t.Fatalf("permanent dropout must abandon the trial: %v", out)
	}
	if out.Samples != 0 {
		t.Fatalf("no samples should be recorded, got %d", out.Samples)
	}
	if out.Dropouts != cfg.MaxRetries+1 {
		t.Fatalf("dropouts %d, want %d (initial attempt + retries)", out.Dropouts, cfg.MaxRetries+1)
	}
	if end <= cfg.WarmupSec {
		t.Fatal("backoff must advance virtual time")
	}
}

func TestDropoutRetriesRecover(t *testing.T) {
	// Random 20% dropouts: retries absorb them and the trial still
	// resolves the underlying +10% difference.
	ccfg := chaos.Config{DropPct: 0.2}
	cfg := DefaultConfig()
	cfg.Chaos = chaos.New(21, ccfg)
	src := rng.New(14)
	out, _ := Run(cfg, noisy(src.Split("c"), 100, 0.015, flatLoad),
		noisy(src.Split("t"), 110, 0.015, flatLoad), 0)
	if out.DroppedOut {
		t.Fatalf("transient dropouts must not abandon the trial: %v", out)
	}
	if out.Dropouts == 0 {
		t.Fatal("DropPct=0.2 should have produced dropouts")
	}
	if !out.Better() {
		t.Fatalf("trial should still resolve +10%%: %v", out)
	}
}

func TestCleanRunRejectsNothing(t *testing.T) {
	// With no injector, the MAD filter must be invisible: clean
	// measurement noise never reaches 10 MADs.
	src := rng.New(15)
	out, _ := Run(DefaultConfig(), noisy(src.Split("c"), 100, 0.015, flatLoad),
		noisy(src.Split("t"), 103, 0.015, flatLoad), 0)
	if out.OutliersRejected != 0 || out.Dropouts != 0 {
		t.Fatalf("clean run recorded chaos artifacts: %v", out)
	}
	if out.GuardrailTripped || out.DroppedOut {
		t.Fatalf("clean run flagged robustness events: %v", out)
	}
}

// TestZeroControlRegressionTripsGuardrail is the regression test for
// the unguarded DeltaPct at a zero control mean. Pre-fix, the
// guardrail path skipped the comparison entirely when the control
// mean was 0 (the final DeltaPct stayed 0), so a treatment regressing
// against a zero-mean control metric sailed through the full sample
// budget with the early-abort silently disabled and Worse() false.
// The fix defines the zero-control delta as -Inf for a negative
// treatment, which trips any armed guardrail.
func TestZeroControlRegressionTripsGuardrail(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GuardrailPct = 2
	cfg.MinSamples = 100
	cfg.MaxSamples = 2000
	cfg.OutlierK = 0 // deterministic arms are not outliers
	// Control: a delta-style metric pinned at exactly 0 (e.g. "change
	// vs yesterday"), the value whose division the naive DeltaPct
	// cannot survive. Treatment: clearly regressing, with enough
	// alternation for a nonzero variance so Welch's test resolves.
	zero := func(float64) float64 { return 0 }
	regressing := func() Sampler {
		n := 0
		return func(float64) float64 {
			n++
			if n%2 == 0 {
				return -11.0
			}
			return -9.0
		}
	}
	out, _ := Run(cfg, zero, regressing(), 0)
	if !out.GuardrailTripped {
		t.Fatalf("zero-mean control + regressing treatment must trip the guardrail: %+v", out)
	}
	if out.Samples >= cfg.MaxSamples {
		t.Fatalf("guardrail must abort early, ran %d samples", out.Samples)
	}
	if !math.IsInf(out.DeltaPct, -1) {
		t.Fatalf("DeltaPct = %g, want -Inf for a regression against a zero control", out.DeltaPct)
	}
	if !out.Worse() {
		t.Fatal("a significant regression against a zero control must report Worse()")
	}
	if out.Better() {
		t.Fatal("Better() must be false")
	}
}

// TestDeltaPctZeroControlCases pins the explicit zero-control
// definition.
func TestDeltaPctZeroControlCases(t *testing.T) {
	if got := deltaPct(100, 102); got != 2 {
		t.Fatalf("deltaPct(100,102) = %g", got)
	}
	if got := deltaPct(0, 0); got != 0 {
		t.Fatalf("deltaPct(0,0) = %g, want 0", got)
	}
	if got := deltaPct(0, 5); !math.IsInf(got, 1) {
		t.Fatalf("deltaPct(0,5) = %g, want +Inf", got)
	}
	if got := deltaPct(0, -5); !math.IsInf(got, -1) {
		t.Fatalf("deltaPct(0,-5) = %g, want -Inf", got)
	}
	if got := deltaPct(-10, -5); math.IsNaN(got) {
		t.Fatal("negative control must not produce NaN")
	}
}

// seqScenario is one seed scenario for the sequential-stop regression
// test: an effect size and the verdict properties that matter to the
// search layer.
type seqScenario struct {
	name      string
	treatMean float64
	sigma     float64
	guardrail float64
	mustSave  bool // sequential must resolve on strictly fewer samples
}

// TestSequentialMatchesFullLength is the sequential-stop acceptance
// test: on every seed scenario — clear improvement, clear regression,
// sub-guardrail regression, null effect — the Sequential verdict
// (Better/Worse/Significant/GuardrailTripped) must match the
// fixed-horizon trial's on the identical sample stream, while never
// spending more samples.
func TestSequentialMatchesFullLength(t *testing.T) {
	scenarios := []seqScenario{
		{"improvement", 103, 0.015, 0, false},
		{"small-improvement", 100.8, 0.015, 0, false},
		{"regression", 97, 0.015, 0, false},
		{"regression-guarded", 97, 0.015, 1, false},      // guardrail must still trip
		{"mild-regression-guarded", 99, 0.015, 2, false}, // regression confirmed inside the guardrail
		{"null", 100, 0.015, 0, false},
		// Noisy arms: the fixed-horizon tester's overwhelming-evidence
		// rule needs tight relative CIs that high variance delays long
		// past the point where the Bonferroni CI has already excluded
		// zero — the regime the sequential rule exists for.
		{"noisy-improvement", 102, 0.1, 0, true},
		{"noisy-regression", 98.5, 0.08, 0, true},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			run := func(sequential bool) Outcome {
				cfg := DefaultConfig()
				cfg.GuardrailPct = sc.guardrail
				cfg.Sequential = sequential
				src := rng.New(7)
				out, _ := Run(cfg, noisy(src.Split("c"), 100, sc.sigma, flatLoad),
					noisy(src.Split("t"), sc.treatMean, sc.sigma, flatLoad), 0)
				return out
			}
			full := run(false)
			seq := run(true)
			if seq.Better() != full.Better() || seq.Worse() != full.Worse() {
				t.Fatalf("verdict diverged: sequential %v vs full %v", seq, full)
			}
			if seq.GuardrailTripped != full.GuardrailTripped {
				t.Fatalf("guardrail diverged: sequential %v vs full %v", seq, full)
			}
			if seq.Samples > full.Samples {
				t.Fatalf("sequential spent more samples (%d) than fixed horizon (%d)", seq.Samples, full.Samples)
			}
			if sc.mustSave && seq.Samples >= full.Samples {
				t.Fatalf("sequential saved nothing: %d vs %d samples", seq.Samples, full.Samples)
			}
			t.Logf("%s: %d -> %d samples (seq stop: %v)", sc.name, full.Samples, seq.Samples, seq.SeqStopped)
		})
	}
}

// TestSequentialOffBitIdentical pins the opt-in contract: with
// Sequential false the tester's outcome is unchanged field-for-field.
func TestSequentialOffBitIdentical(t *testing.T) {
	run := func() Outcome {
		src := rng.New(11)
		out, _ := Run(DefaultConfig(), noisy(src.Split("c"), 100, 0.015, flatLoad),
			noisy(src.Split("t"), 101, 0.015, flatLoad), 0)
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fixed-horizon run not reproducible: %v vs %v", a, b)
	}
	if a.SeqStopped {
		t.Fatal("Sequential=false run flagged SeqStopped")
	}
}
