// Package abtest implements µSKU's statistical A/B testing procedure
// (§4): compare two identical servers — same platform, same fleet,
// facing the same load — that differ only in one knob configuration.
// Samples are collected with warm-up discard and independence spacing
// until 95% confidence resolves the comparison; if ~30,000 samples do
// not suffice, the test concludes there is no statistically
// significant difference.
//
// Because the paper's tester runs against live production servers, the
// procedure is defended against the faults such servers actually
// produce (injectable via internal/chaos): corrupted counter samples
// are rejected by a MAD-based outlier filter, sampler dropouts are
// retried with capped exponential backoff, and a guardrail aborts a
// trial early when the treatment is regressing beyond a configured
// threshold — so a bad knob configuration is never left serving
// traffic for the full sample budget.
package abtest

import (
	"fmt"
	"math"
	"sort"

	"softsku/internal/chaos"
	"softsku/internal/decision"
	"softsku/internal/stats"
	"softsku/internal/telemetry"
)

// Trial telemetry: how many A/B tests ran, how they resolved, and the
// distributions of p-values and per-arm sample counts — the tuner's
// equivalent of the paper's per-trial measurement plumbing.
var (
	mTrialsStarted = telemetry.Default.Counter("softsku_abtest_trials_started_total",
		"A/B trials started.")
	mTrialsAccepted = telemetry.Default.Counter("softsku_abtest_trials_accepted_total",
		"A/B trials where the treatment was a significant improvement.")
	mTrialsRejected = telemetry.Default.Counter("softsku_abtest_trials_rejected_total",
		"A/B trials that were not significant or regressed.")
	mTrialPValue = telemetry.Default.Histogram("softsku_abtest_p_value",
		"Final Welch's t-test p-value per trial.")
	mTrialSamples = telemetry.Default.Histogram("softsku_abtest_samples_per_trial",
		"Samples collected per arm before each trial resolved.")

	mSeqStops = telemetry.Default.Counter("softsku_abtest_seq_stops_total",
		"Trials resolved early by the sequential stopping rule.")

	// Robustness telemetry: how much adversity each trial absorbed.
	mGuardrailTrips = telemetry.Default.Counter("softsku_guardrail_trips_total",
		"Trials aborted early because the treatment regressed past the guardrail.")
	mOutliersRejected = telemetry.Default.Counter("softsku_abtest_outliers_rejected_total",
		"Sample pairs rejected by the MAD outlier filter.")
	mSampleRetries = telemetry.Default.Counter("softsku_abtest_sample_retries_total",
		"Sampler-dropout retries (with backoff) during trials.")
)

// Config tunes the test procedure. The zero value is not valid as a
// policy, but Run patches every missing field to the prototype's
// default, so a zero Config degrades to DefaultConfig-like behavior
// rather than looping forever or dividing by zero.
type Config struct {
	Confidence float64 // e.g. 0.95
	MaxSamples int     // give-up cap per arm (~30,000 in the paper)
	MinSamples int     // never decide before this many per arm
	CheckEvery int     // significance re-check interval
	WarmupSec  float64 // cold-start discard before sampling (§4)
	SpacingSec float64 // spacing between samples for independence

	// Robustness: defenses for trials on faulty production servers.

	// GuardrailPct aborts the trial early — flagging the outcome so the
	// caller reverts the treatment arm — once the running delta is a
	// statistically significant regression beyond this many percent.
	// 0 disables the guardrail.
	GuardrailPct float64
	// Sequential arms the sequential stopping rule: at every CheckEvery
	// boundary past MinSamples the trial stops as soon as a
	// Bonferroni-corrected Welch confidence interval on the
	// treatment−control difference excludes zero from a side the rest of
	// the budget cannot change — a confirmed improvement, or a confirmed
	// regression the armed guardrail provably will not trip on. The
	// Bonferroni split over the checkpoint count keeps the family-wise
	// error at the configured level, so the early verdict agrees with
	// the full-length trial's (TestSequentialMatchesFullLength). Off by
	// default: the zero value keeps Run bit-identical to the
	// fixed-horizon tester.
	Sequential bool
	// OutlierK rejects a sample pair when either arm's value deviates
	// from its recent median by more than OutlierK times the median
	// absolute deviation. 0 disables rejection.
	OutlierK float64
	// MaxRetries bounds consecutive retry attempts when the sampler
	// drops a read; exceeding it abandons the trial (Outcome.DroppedOut).
	MaxRetries int
	// BackoffSec is the initial virtual-time backoff before a dropout
	// retry; it doubles per consecutive retry, capped at a minute.
	BackoffSec float64
	// Chaos injects sampler faults (dropouts, corrupted reads) into the
	// trial. nil — the default — runs fault-free and bit-identical to
	// the pre-chaos tester.
	Chaos chaos.Injector

	// Record receives the trial's decision events (trial_started, and
	// guardrail_trip if the trial aborts). Trials run on worker
	// goroutines, so callers pass a per-trial decision.Buffer and drain
	// it during their serial merge — never a shared Ledger, whose event
	// order would then depend on scheduling. nil disables recording.
	Record decision.Sink
}

// DefaultConfig mirrors the paper's prototype: 95% confidence, 30k
// sample cap, a few minutes of warm-up, spaced samples. Outlier
// rejection is armed at a threshold clean measurement noise cannot
// reach; the guardrail is off (opt in per run).
func DefaultConfig() Config {
	return Config{
		Confidence: 0.95,
		MaxSamples: 30000,
		MinSamples: 300,
		CheckEvery: 100,
		WarmupSec:  180,
		SpacingSec: 0.5,
		OutlierK:   10,
		MaxRetries: 5,
		BackoffSec: 1,
	}
}

// withDefaults patches invalid or zero fields to usable values — the
// zero-value hardening that keeps Run total.
func (c Config) withDefaults() Config {
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.95
	}
	if c.MaxSamples < 1 {
		c.MaxSamples = 30000
	}
	if c.MinSamples < 2 {
		c.MinSamples = 300
	}
	if c.MinSamples > c.MaxSamples {
		c.MinSamples = c.MaxSamples
	}
	if c.CheckEvery < 1 {
		c.CheckEvery = 100
	}
	if c.SpacingSec <= 0 {
		c.SpacingSec = 0.5
	}
	if c.WarmupSec < 0 {
		c.WarmupSec = 0
	}
	if c.OutlierK < 0 {
		c.OutlierK = 0
	}
	if c.MaxRetries < 1 {
		c.MaxRetries = 5
	}
	if c.BackoffSec <= 0 {
		c.BackoffSec = c.SpacingSec
	}
	return c
}

// Sampler produces one measurement of an arm at a virtual time. The
// two arms of a comparison are sampled at identical times so shared
// load variation cancels.
type Sampler func(t float64) float64

// Outcome reports one A/B comparison.
type Outcome struct {
	Control   stats.Sample
	Treatment stats.Sample

	Samples     int     // per arm (accepted; outliers excluded)
	PValue      float64 // Welch's t-test, two-sided
	Significant bool    // at the configured confidence
	DeltaPct    float64 // (treatment - control) / control * 100; ±Inf when the control mean is 0 (see deltaPct)
	ElapsedSec  float64 // virtual measurement time consumed

	// Robustness record of the trial.
	GuardrailTripped bool // aborted early: treatment regressed past the guardrail
	SeqStopped       bool // resolved early by the sequential stopping rule
	DroppedOut       bool // abandoned: sampler dropouts exhausted the retry budget
	OutliersRejected int  // sample pairs discarded by the MAD filter
	Dropouts         int  // sampler dropouts absorbed by retries
}

// deltaPct defines the treatment-vs-control percentage delta,
// including the zero-control edge the guardrail must survive: the
// naive (treatment-control)/control*100 is NaN when the control mean
// is 0, and NaN compares false against every threshold — silently
// disabling the guardrail and Better()/Worse(). The explicit
// definition: equal (both zero) is 0, a positive treatment over a
// zero control is +Inf (infinite relative improvement), a negative
// one is -Inf (a regression of unbounded relative size, which any
// armed guardrail must trip on).
func deltaPct(control, treatment float64) float64 {
	switch {
	case control != 0:
		return (treatment - control) / control * 100
	case treatment == 0:
		return 0
	case treatment > 0:
		return math.Inf(1)
	default:
		return math.Inf(-1)
	}
}

// Better reports whether the treatment is a statistically significant
// improvement.
func (o Outcome) Better() bool { return o.Significant && o.DeltaPct > 0 }

// Worse reports whether the treatment is a statistically significant
// regression.
func (o Outcome) Worse() bool { return o.Significant && o.DeltaPct < 0 }

// String renders the outcome for design-space maps and logs.
func (o Outcome) String() string {
	sig := "not significant"
	if o.Significant {
		sig = fmt.Sprintf("p=%.2g", o.PValue)
	}
	s := fmt.Sprintf("%+.2f%% (%s, n=%d)", o.DeltaPct, sig, o.Samples)
	if o.GuardrailTripped {
		s += " [guardrail]"
	}
	if o.SeqStopped {
		s += " [seq]"
	}
	if o.DroppedOut {
		s += " [dropped out]"
	}
	return s
}

// madWindow parameters: the filter keeps the last madWindow raw
// samples per arm (raw, not just accepted, so the estimate tracks
// genuine level shifts like load spikes instead of rejecting them
// forever), needs madMinFill values before it engages, and re-derives
// median/MAD every madRefresh samples.
const (
	madWindow  = 128
	madMinFill = 24
	madRefresh = 32
	maxBackoff = 60 // seconds; cap for dropout-retry backoff
)

// madEstimator is a rolling robust location/scale estimate of one
// arm's samples. Median-based, so it tolerates the very outliers it
// exists to catch.
type madEstimator struct {
	buf   []float64
	idx   int
	since int
	med   float64
	mad   float64
	have  bool
}

func (m *madEstimator) add(v float64) {
	if len(m.buf) < madWindow {
		m.buf = append(m.buf, v)
	} else {
		m.buf[m.idx] = v
		m.idx = (m.idx + 1) % madWindow
	}
	m.since++
	if len(m.buf) >= madMinFill && (!m.have || m.since >= madRefresh) {
		m.med, m.mad = medianMAD(m.buf)
		m.have = true
		m.since = 0
	}
}

// outlier reports whether v sits more than k MADs from the median.
// A zero MAD (constant stream) disables rejection rather than
// rejecting every deviation.
func (m *madEstimator) outlier(v, k float64) bool {
	return m.have && m.mad > 0 && math.Abs(v-m.med) > k*m.mad
}

func medianMAD(xs []float64) (med, mad float64) {
	n := len(xs)
	tmp := make([]float64, n)
	copy(tmp, xs)
	sort.Float64s(tmp)
	med = tmp[n/2]
	if n%2 == 0 {
		med = (tmp[n/2-1] + tmp[n/2]) / 2
	}
	for i, v := range tmp {
		tmp[i] = math.Abs(v - med)
	}
	sort.Float64s(tmp)
	mad = tmp[n/2]
	if n%2 == 0 {
		mad = (tmp[n/2-1] + tmp[n/2]) / 2
	}
	return med, mad
}

// nextSample draws one reading of an arm at *t, absorbing injected
// sampler dropouts with capped exponential backoff (virtual time
// advances while the collector recovers). Returns false when
// MaxRetries consecutive dropouts exhaust the budget.
func nextSample(cfg *Config, arm string, s Sampler, t *float64, out *Outcome) (float64, bool) {
	backoff := cfg.BackoffSec
	for try := 0; ; try++ {
		if cfg.Chaos != nil && cfg.Chaos.DropSample(arm) {
			out.Dropouts++
			if try >= cfg.MaxRetries {
				return 0, false
			}
			mSampleRetries.Inc()
			*t += backoff
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		v := s(*t)
		if cfg.Chaos != nil {
			v, _ = cfg.Chaos.CorruptSample(arm, v)
		}
		return v, true
	}
}

// Run performs one A/B comparison starting at virtual time startSec,
// returning the outcome and the virtual time at which sampling ended
// (so successive knob tests experience successive production load).
//
// With cfg.Chaos nil and the guardrail off, Run is bit-identical to
// the fault-unaware tester: same sampler call sequence, same stop
// rule, same outcome.
func Run(cfg Config, control, treatment Sampler, startSec float64) (Outcome, float64) {
	cfg = cfg.withDefaults()
	alpha := 1 - cfg.Confidence
	t := startSec + cfg.WarmupSec // discard cold-start observations
	mTrialsStarted.Inc()
	trialEv := -1
	if cfg.Record != nil {
		trialEv = cfg.Record.Record(-1,
			decision.TrialStarted(cfg.Confidence, cfg.MinSamples, cfg.MaxSamples, cfg.GuardrailPct))
	}

	var out Outcome
	var madC, madT *madEstimator
	if cfg.OutlierK > 0 {
		madC, madT = &madEstimator{}, &madEstimator{}
		if cfg.Chaos != nil && cfg.WarmupSec > 0 {
			// Seed the filters from reads spread across the warm-up
			// window (observational — never entering the statistics), so
			// an outlier in the first live samples cannot poison the
			// running means before rejection engages.
			step := cfg.WarmupSec / float64(madMinFill+1)
			for i := 1; i <= madMinFill; i++ {
				wt := startSec + float64(i)*step
				madC.add(control(wt))
				madT.add(treatment(wt))
			}
		}
	}

	// Outlier-rejected pairs consume time but not sample budget; the
	// attempt cap keeps the trial total even if the filter goes
	// pathological.
	maxAttempts := 2*cfg.MaxSamples + 64
	for attempt := 0; out.Samples < cfg.MaxSamples && attempt < maxAttempts; attempt++ {
		cv, ok := nextSample(&cfg, "control", control, &t, &out)
		if !ok {
			out.DroppedOut = true
			break
		}
		tv, ok := nextSample(&cfg, "treatment", treatment, &t, &out)
		if !ok {
			out.DroppedOut = true
			break
		}
		if madC != nil {
			madC.add(cv)
			madT.add(tv)
			// Reject the pair when either arm outlies, keeping the arms
			// paired in time.
			if madC.outlier(cv, cfg.OutlierK) || madT.outlier(tv, cfg.OutlierK) {
				out.OutliersRejected++
				mOutliersRejected.Inc()
				t += cfg.SpacingSec
				continue
			}
		}
		out.Control.Add(cv)
		out.Treatment.Add(tv)
		t += cfg.SpacingSec
		out.Samples++
		if out.Samples%cfg.CheckEvery == 0 {
			w := stats.WelchTTest(&out.Treatment, &out.Control)
			// Guardrail: a statistically significant regression past the
			// threshold aborts the trial immediately — the treatment arm
			// must not keep serving a bad configuration for the rest of
			// the sample budget.
			if cfg.GuardrailPct > 0 && out.Samples >= 30 && w.P < alpha {
				if delta := deltaPct(out.Control.Mean(), out.Treatment.Mean()); delta < -cfg.GuardrailPct {
					out.GuardrailTripped = true
					mGuardrailTrips.Inc()
					if cfg.Record != nil {
						cfg.Record.Record(trialEv,
							decision.GuardrailTrip(delta, out.Samples, cfg.GuardrailPct))
					}
					break
				}
			}
			// Sequential stopping rule: spend the error budget across the
			// remaining checkpoints (Bonferroni over the checkpoint count)
			// and stop the moment the corrected CI on the difference
			// excludes zero from a side the rest of the budget cannot
			// flip. A confirmed regression only stops early when the
			// guardrail is off or provably out of reach (the CI's lower
			// edge sits above the trip threshold) — otherwise sampling
			// continues so the guardrail can do its job.
			if cfg.Sequential && out.Samples >= cfg.MinSamples && w.DF > 0 {
				checks := (cfg.MaxSamples-cfg.MinSamples)/cfg.CheckEvery + 1
				if checks < 1 {
					checks = 1
				}
				se := math.Sqrt(
					out.Treatment.Variance()/float64(out.Treatment.N()) +
						out.Control.Variance()/float64(out.Control.N()))
				if se > 0 {
					tq := stats.TQuantile(1-alpha/float64(checks)/2, w.DF)
					diff := out.Treatment.Mean() - out.Control.Mean()
					lo, hi := diff-tq*se, diff+tq*se
					gr := -cfg.GuardrailPct / 100 * out.Control.Mean()
					if lo > 0 || (hi < 0 && (cfg.GuardrailPct <= 0 || lo > gr)) {
						out.SeqStopped = true
						mSeqStops.Inc()
						break
					}
				}
			}
			// Early stop only on overwhelming evidence (a stricter
			// threshold compensates for sequential peeking) with
			// tightly estimated means; otherwise keep sampling and let
			// the final test at the cap decide at the nominal level.
			if out.Samples >= cfg.MinSamples &&
				w.P < alpha*0.02 &&
				out.Control.RelCI(cfg.Confidence) < 0.005 &&
				out.Treatment.RelCI(cfg.Confidence) < 0.005 {
				break
			}
		}
	}
	w := stats.WelchTTest(&out.Treatment, &out.Control)
	out.PValue = w.P
	out.Significant = w.P < alpha
	out.DeltaPct = deltaPct(out.Control.Mean(), out.Treatment.Mean())
	out.ElapsedSec = t - startSec
	if out.Better() {
		mTrialsAccepted.Inc()
	} else {
		mTrialsRejected.Inc()
	}
	mTrialPValue.Observe(out.PValue)
	mTrialSamples.Observe(float64(out.Samples))
	return out, t
}
